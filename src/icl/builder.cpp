#include "icl/builder.hpp"

#include <cstdio>
#include <set>

namespace bb::icl {

ParamValue syms(std::vector<std::string> names) {
  ParamValue::List list;
  list.reserve(names.size());
  for (std::string& n : names) list.push_back(sym(std::move(n)));
  return ParamValue(std::move(list));
}

FieldDecl field(std::string name, int lo, int hi) {
  FieldDecl f;
  f.name = std::move(name);
  f.lo = lo;
  f.hi = hi;
  return f;
}

BuildItem item(std::string kind, std::string name, ParamList params) {
  BuildItem out;
  ElementDecl e;
  e.kind = std::move(kind);
  e.name = std::move(name);
  for (Param& p : params) {
    // The map keeps the first occurrence; the duplication itself is
    // recorded here, while declaration order still shows it.
    if (!e.params.emplace(p.first, std::move(p.second)).second) {
      out.problems.push_back("element '" + e.name + "' parameter '" + p.first +
                             "' given twice");
    }
  }
  out.node = CoreItem{std::move(e)};
  return out;
}

namespace {

/// Strip a BuildItem list into its AST nodes, collecting the problems.
std::vector<CoreItem> takeNodes(std::vector<BuildItem>& items,
                                std::vector<std::string>& problems) {
  std::vector<CoreItem> nodes;
  nodes.reserve(items.size());
  for (BuildItem& it : items) {
    nodes.push_back(std::move(it.node));
    problems.insert(problems.end(), std::make_move_iterator(it.problems.begin()),
                    std::make_move_iterator(it.problems.end()));
  }
  return nodes;
}

}  // namespace

BuildItem cond(std::string var, std::vector<BuildItem> thenItems,
               std::vector<BuildItem> elseItems) {
  BuildItem out;
  CondBlock c;
  c.var = std::move(var);
  c.thenItems = takeNodes(thenItems, out.problems);
  c.elseItems = takeNodes(elseItems, out.problems);
  out.node = CoreItem{std::move(c)};
  return out;
}

BuildItem condNot(std::string var, std::vector<BuildItem> thenItems,
                  std::vector<BuildItem> elseItems) {
  BuildItem it = cond(std::move(var), std::move(thenItems), std::move(elseItems));
  std::get<CondBlock>(it.node.node).negate = true;
  return it;
}

ChipBuilder::ChipBuilder(std::string name) { desc_.name = std::move(name); }

ChipBuilder& ChipBuilder::var(std::string name, bool value) {
  if (!desc_.vars.emplace(name, value).second) {
    pending_.error({}, "variable '" + name + "' declared twice");
  }
  return *this;
}

ChipBuilder& ChipBuilder::microcode(int width, std::vector<FieldDecl> fields) {
  desc_.microcode.width = width;
  for (FieldDecl& f : fields) desc_.microcode.fields.push_back(std::move(f));
  return *this;
}

ChipBuilder& ChipBuilder::field(std::string name, int lo, int hi) {
  desc_.microcode.fields.push_back(icl::field(std::move(name), lo, hi));
  return *this;
}

ChipBuilder& ChipBuilder::dataWidth(int width) {
  desc_.dataWidth = width;
  return *this;
}

ChipBuilder& ChipBuilder::bus(std::string name) {
  desc_.buses.push_back(std::move(name));
  return *this;
}

ChipBuilder& ChipBuilder::buses(std::vector<std::string> names) {
  for (std::string& n : names) desc_.buses.push_back(std::move(n));
  return *this;
}

ChipBuilder& ChipBuilder::element(std::string kind, std::string name, ParamList params) {
  return add(item(std::move(kind), std::move(name), std::move(params)));
}

ChipBuilder& ChipBuilder::add(BuildItem buildItem) {
  for (std::string& p : buildItem.problems) pending_.error({}, std::move(p));
  desc_.core.push_back(std::move(buildItem.node));
  return *this;
}

ChipBuilder& ChipBuilder::when(std::string var, std::vector<BuildItem> thenItems) {
  return add(cond(std::move(var), std::move(thenItems)));
}

ChipBuilder& ChipBuilder::whenNot(std::string var, std::vector<BuildItem> thenItems) {
  return add(condNot(std::move(var), std::move(thenItems)));
}

ChipBuilder& ChipBuilder::elseItems(std::vector<BuildItem> items) {
  CondBlock* block = desc_.core.empty()
                         ? nullptr
                         : std::get_if<CondBlock>(&desc_.core.back().node);
  if (block == nullptr) {
    pending_.error({}, "elseItems() without a preceding when()/whenNot()");
    return *this;
  }
  if (!block->elseItems.empty()) {
    pending_.error({}, "conditional on '" + block->var + "' already has an else branch");
    return *this;
  }
  std::vector<std::string> problems;
  block->elseItems = takeNodes(items, problems);
  for (std::string& p : problems) pending_.error({}, std::move(p));
  return *this;
}

core::Expected<ChipDesc> ChipBuilder::build() const {
  DiagnosticList diags = pending_;
  const bool structureOk = !diags.hasErrors();
  if (!validateChipDesc(desc_, diags) || !structureOk) {
    return core::Expected<ChipDesc>::failure(std::move(diags));
  }
  return core::Expected<ChipDesc>(desc_, std::move(diags));
}

ChipDesc ChipBuilder::buildOrDie() const {
  auto result = build();
  if (!result) {
    std::fprintf(stderr, "ChipBuilder::buildOrDie: invalid chip description:\n%s",
                 result.diagnostics().toString().c_str());
    std::abort();
  }
  return std::move(*result);
}

namespace {

/// Walk one item list for element-name uniqueness. The two branches of a
/// conditional are mutually exclusive, so the same name may appear in
/// both; names from either branch are visible (and reserved) afterwards.
void checkItems(const std::vector<CoreItem>& items, std::set<std::string>& names,
                DiagnosticList& diags, bool& ok) {
  for (const CoreItem& it : items) {
    if (const auto* e = std::get_if<ElementDecl>(&it.node)) {
      if (e->kind.empty()) {
        diags.error(e->loc, "element '" + e->name + "' has an empty kind");
        ok = false;
      }
      if (e->name.empty()) {
        diags.error(e->loc, "element of kind '" + e->kind + "' has an empty name");
        ok = false;
      } else if (!names.insert(e->name).second) {
        diags.error(e->loc, "duplicate element name '" + e->name + "'");
        ok = false;
      }
      for (const auto& [key, value] : e->params) {
        if (key.empty()) {
          diags.error(e->loc, "element '" + e->name + "' has an empty parameter name");
          ok = false;
        }
        (void)value;
      }
    } else if (const auto* c = std::get_if<CondBlock>(&it.node)) {
      if (c->var.empty()) {
        diags.error(c->loc, "conditional block with an empty variable name");
        ok = false;
      }
      if (c->thenItems.empty() && c->elseItems.empty()) {
        diags.warning(c->loc, "conditional on '" + c->var + "' has no items");
      }
      std::set<std::string> thenNames = names;
      std::set<std::string> elseNames = names;
      checkItems(c->thenItems, thenNames, diags, ok);
      checkItems(c->elseItems, elseNames, diags, ok);
      names.insert(thenNames.begin(), thenNames.end());
      names.insert(elseNames.begin(), elseNames.end());
    }
  }
}

}  // namespace

bool validateChipDesc(const ChipDesc& desc, DiagnosticList& diags) {
  bool ok = true;
  if (desc.name.empty()) {
    diags.error({}, "chip name is empty");
    ok = false;
  }

  const MicrocodeDecl& mc = desc.microcode;
  if (mc.width <= 0) {
    diags.error(mc.loc, "microcode width must be positive (got " +
                            std::to_string(mc.width) + ")");
    ok = false;
  }
  std::set<std::string> fieldNames;
  for (const FieldDecl& f : mc.fields) {
    if (f.name.empty()) {
      diags.error(f.loc, "microcode field with an empty name");
      ok = false;
    } else if (!fieldNames.insert(f.name).second) {
      diags.error(f.loc, "duplicate microcode field '" + f.name + "'");
      ok = false;
    }
    if (f.lo < 0 || f.hi < f.lo) {
      diags.error(f.loc, "field '" + f.name + "' has a bad bit range [" +
                             std::to_string(f.lo) + ":" + std::to_string(f.hi) + "]");
      ok = false;
    } else if (mc.width > 0 && f.hi >= mc.width) {
      diags.error(f.loc, "field '" + f.name + "' bits [" + std::to_string(f.lo) + ":" +
                             std::to_string(f.hi) + "] exceed microcode width " +
                             std::to_string(mc.width));
      ok = false;
    }
  }

  if (desc.dataWidth <= 0) {
    diags.error({}, "data width must be positive (got " +
                        std::to_string(desc.dataWidth) + ")");
    ok = false;
  }

  if (desc.buses.empty()) {
    diags.error({}, "chip declares no buses");
    ok = false;
  }
  std::set<std::string> busNames;
  for (const std::string& b : desc.buses) {
    if (b.empty()) {
      diags.error({}, "bus with an empty name");
      ok = false;
    } else if (!busNames.insert(b).second) {
      diags.error({}, "duplicate bus '" + b + "'");
      ok = false;
    }
  }

  if (desc.core.empty()) {
    diags.error({}, "chip core is empty");
    ok = false;
  }
  std::set<std::string> elementNames;
  checkItems(desc.core, elementNames, diags, ok);
  return ok;
}

}  // namespace bb::icl
