/// \file diagnostics.hpp
/// Source positions and user-facing diagnostics for the chip description
/// language. User-input problems are reported with positions and never
/// thrown; internal invariants use assertions.

#pragma once

#include <string>
#include <vector>

namespace bb::icl {

struct SourceLoc {
  int line = 0;    ///< 1-based; 0 means "no location"
  int column = 0;  ///< 1-based

  [[nodiscard]] std::string toString() const;
};

enum class Severity : std::uint8_t { Error, Warning, Note };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string toString() const;
};

/// Diagnostics accumulate in emission order and are never reordered:
/// `all()[i]` was reported before `all()[i+1]`, whatever the severities.
/// Merging (`append`) keeps that contract — the appended list's entries
/// follow the existing ones in their own original order, so compile
/// diagnostics and lint findings interleave deterministically.
class DiagnosticList {
 public:
  void error(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Error, loc, std::move(msg)});
  }
  void warning(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Warning, loc, std::move(msg)});
  }
  void note(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Note, loc, std::move(msg)});
  }
  /// Append a pre-built diagnostic (how lint findings arrive).
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  /// Append every entry of `other` after this list's entries, preserving
  /// both relative orders (stable merge-by-concatenation).
  void append(const DiagnosticList& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  }

  [[nodiscard]] bool hasErrors() const noexcept;
  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept { return diags_; }
  [[nodiscard]] std::string toString() const;
  void clear() noexcept { diags_.clear(); }

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace bb::icl
