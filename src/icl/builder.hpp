/// \file builder.hpp
/// Programmatic construction of chip descriptions. `ChipBuilder` is the
/// typed frontend next to the parser: instead of assembling ICL source
/// text and re-parsing it, call sites build an `icl::ChipDesc` value
/// directly —
///
///   auto desc = ChipBuilder("counter")
///                   .microcode(12, {field("op", 0, 3), field("sel", 4, 7)})
///                   .dataWidth(4)
///                   .buses({"A", "B"})
///                   .element("register", "R0",
///                            {{"in", sym("A")}, {"out", sym("B")},
///                             {"load", expr("op==1")}})
///                   .when("PROTOTYPE", {item("probe", "P0",
///                                            {{"bus", sym("A")}, {"bit", num(0)}})})
///                   .build();
///
/// `build()` validates the description (duplicate names, bit ranges,
/// empty sections) and returns `core::Expected<ChipDesc>` in the
/// session's error style: diagnostics explain a failure, never an
/// assert. The textual language remains one loader over the same type
/// (`ChipDesc::toString()` round-trips through `parseChip`).

#pragma once

#include "core/expected.hpp"
#include "icl/ast.hpp"

#include <string>
#include <utility>
#include <vector>

namespace bb::icl {

// ---- parameter-value helpers -------------------------------------------
// Mirror the four parameter shapes of the language: integers (`n = 8`),
// booleans, bare names (`in = A`, `op = misc`), quoted decode
// expressions (`load = "op==1"`), and name lists (`ops = [add, and]`).

[[nodiscard]] inline ParamValue num(long long v) { return ParamValue(v); }
[[nodiscard]] inline ParamValue flag(bool v) { return ParamValue(v); }
[[nodiscard]] inline ParamValue sym(std::string name) {
  return ParamValue(std::move(name), /*quoted=*/false);
}
[[nodiscard]] inline ParamValue expr(std::string text) {
  return ParamValue(std::move(text), /*quoted=*/true);
}
[[nodiscard]] ParamValue syms(std::vector<std::string> names);

/// One microcode field, `field("op", 0, 3)` == `field op [0:3];`.
[[nodiscard]] FieldDecl field(std::string name, int lo, int hi);

/// Element parameters in declaration order. Duplicate keys are diagnosed
/// at `ChipBuilder::build()` time; the first occurrence wins in the
/// meantime (`ElementDecl::params` is a map and cannot hold both).
using Param = std::pair<std::string, ParamValue>;
using ParamList = std::vector<Param>;

/// A core item under construction: the AST node plus any problems found
/// while building it (duplicate parameter keys, misuse inside nested
/// conditionals). The AST map collapses duplicates, so the problems are
/// recorded here — where the declaration order is still visible — and
/// carried along until `ChipBuilder::build()` surfaces them.
struct BuildItem {
  CoreItem node;
  std::vector<std::string> problems;
};

/// A core element as a standalone item, for nesting inside conditionals.
[[nodiscard]] BuildItem item(std::string kind, std::string name, ParamList params = {});
/// A conditional block as a standalone item: `if [!]var { then } else { else }`.
[[nodiscard]] BuildItem cond(std::string var, std::vector<BuildItem> thenItems,
                             std::vector<BuildItem> elseItems = {});
[[nodiscard]] BuildItem condNot(std::string var, std::vector<BuildItem> thenItems,
                                std::vector<BuildItem> elseItems = {});

/// Fluent, validated construction of a `ChipDesc`. Methods append in
/// call order (element order is placement order); structural misuse
/// (e.g. `elseItems()` with no preceding `when()`) is recorded and
/// surfaces as a `build()` error rather than throwing mid-chain.
class ChipBuilder {
 public:
  explicit ChipBuilder(std::string name);

  /// Declare a conditional-assembly variable with its default value.
  ChipBuilder& var(std::string name, bool value);

  /// Section 1: instruction width, optionally with all fields at once.
  ChipBuilder& microcode(int width, std::vector<FieldDecl> fields = {});
  /// Append one microcode field.
  ChipBuilder& field(std::string name, int lo, int hi);

  /// Section 2: data width and buses.
  ChipBuilder& dataWidth(int width);
  ChipBuilder& bus(std::string name);
  ChipBuilder& buses(std::vector<std::string> names);

  /// Section 3: core elements, in placement order.
  ChipBuilder& element(std::string kind, std::string name, ParamList params = {});
  /// Append a pre-built item (element or nested conditional).
  ChipBuilder& add(BuildItem buildItem);
  /// `if var { ... }` / `if !var { ... }` conditional-assembly blocks.
  ChipBuilder& when(std::string var, std::vector<BuildItem> thenItems);
  ChipBuilder& whenNot(std::string var, std::vector<BuildItem> thenItems);
  /// Attach an else branch to the most recent `when`/`whenNot`.
  ChipBuilder& elseItems(std::vector<BuildItem> items);

  /// Validate and hand over the description. On failure the diagnostics
  /// name every problem found (the builder keeps collecting past the
  /// first, like the parser's error recovery).
  [[nodiscard]] core::Expected<ChipDesc> build() const;

  /// Known-good input convenience for samples and tests: aborts with the
  /// diagnostics on stderr if the description does not validate.
  [[nodiscard]] ChipDesc buildOrDie() const;

 private:
  ChipDesc desc_;
  DiagnosticList pending_;  ///< structural misuse recorded as it happens
};

/// The validation `ChipBuilder::build()` runs, usable on hand-made
/// descriptions too. Appends to `diags`; returns false if any *error*
/// was added (warnings alone still validate).
bool validateChipDesc(const ChipDesc& desc, DiagnosticList& diags);

}  // namespace bb::icl
