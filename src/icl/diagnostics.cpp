#include "icl/diagnostics.hpp"

#include <sstream>

namespace bb::icl {

std::string SourceLoc::toString() const {
  if (line == 0) return "<no location>";
  return std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::toString() const {
  const char* sev = severity == Severity::Error     ? "error"
                    : severity == Severity::Warning ? "warning"
                                                    : "note";
  return loc.toString() + ": " + sev + ": " + message;
}

std::size_t DiagnosticList::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool DiagnosticList::hasErrors() const noexcept {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::Error) return true;
  }
  return false;
}

std::string DiagnosticList::toString() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.toString() << "\n";
  return os.str();
}

}  // namespace bb::icl
