#include "icl/eval.hpp"

#include "icl/lexer.hpp"

#include <algorithm>

namespace bb::icl {

namespace {

void assembleItems(const std::vector<CoreItem>& items,
                   const std::map<std::string, bool>& vars, DiagnosticList& diags,
                   std::vector<ElementDecl>& out) {
  for (const CoreItem& item : items) {
    if (const auto* e = std::get_if<ElementDecl>(&item.node)) {
      out.push_back(*e);
    } else if (const auto* c = std::get_if<CondBlock>(&item.node)) {
      auto it = vars.find(c->var);
      if (it == vars.end()) {
        diags.error(c->loc, "unknown conditional-assembly variable '" + c->var + "'");
        continue;
      }
      const bool taken = c->negate ? !it->second : it->second;
      assembleItems(taken ? c->thenItems : c->elseItems, vars, diags, out);
    }
  }
}

}  // namespace

std::vector<ElementDecl> assembleCore(const ChipDesc& chip,
                                      const std::map<std::string, bool>& overrides,
                                      DiagnosticList& diags) {
  std::map<std::string, bool> vars = chip.vars;
  for (const auto& [k, v] : overrides) vars[k] = v;
  std::vector<ElementDecl> out;
  assembleItems(chip.core, vars, diags, out);
  return out;
}

int Cube::literals() const noexcept {
  int n = 0;
  for (std::int8_t b : bits) {
    if (b >= 0) ++n;
  }
  return n;
}

bool Cube::matches(unsigned long long word) const noexcept {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] < 0) continue;
    const int bit = static_cast<int>((word >> i) & 1);
    if (bit != bits[i]) return false;
  }
  return true;
}

std::optional<Cube> Cube::intersect(const Cube& o) const noexcept {
  Cube out(width());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const std::int8_t a = bits[i];
    const std::int8_t b = o.bits[i];
    if (a < 0) {
      out.bits[i] = b;
    } else if (b < 0 || a == b) {
      out.bits[i] = a;
    } else {
      return std::nullopt;
    }
  }
  return out;
}

std::string Cube::toString() const {
  std::string s;
  for (std::size_t i = bits.size(); i-- > 0;) {
    s += bits[i] < 0 ? 'x' : static_cast<char>('0' + bits[i]);
  }
  return s;
}

bool SumOfProducts::matches(unsigned long long word) const noexcept {
  return std::any_of(cubes.begin(), cubes.end(),
                     [&](const Cube& c) { return c.matches(word); });
}

namespace {

/// Decode-expression parser over the shared lexer.
class DecodeParser {
 public:
  DecodeParser(std::vector<Token> toks, const MicrocodeDecl& mc, DiagnosticList& diags)
      : toks_(std::move(toks)), mc_(mc), diags_(diags) {}

  SumOfProducts parse() {
    SumOfProducts r = orExpr();
    if (!at(TokKind::EndOfFile)) {
      diags_.error(cur().loc, "trailing input in decode expression");
    }
    return r;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool at(TokKind k) const { return cur().kind == k; }
  bool accept(TokKind k) {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }

  static SumOfProducts orOf(SumOfProducts a, const SumOfProducts& b) {
    for (const Cube& c : b.cubes) {
      if (std::find(a.cubes.begin(), a.cubes.end(), c) == a.cubes.end()) a.cubes.push_back(c);
    }
    return a;
  }

  SumOfProducts andOf(const SumOfProducts& a, const SumOfProducts& b) {
    SumOfProducts r;
    for (const Cube& ca : a.cubes) {
      for (const Cube& cb : b.cubes) {
        if (auto i = ca.intersect(cb)) {
          if (std::find(r.cubes.begin(), r.cubes.end(), *i) == r.cubes.end()) {
            r.cubes.push_back(*i);
          }
        }
      }
    }
    return r;
  }

  SumOfProducts constant(bool v) {
    SumOfProducts r;
    if (v) r.cubes.push_back(Cube(mc_.width));
    return r;
  }

  SumOfProducts fieldEq(const FieldDecl& f, long long value, bool negated, SourceLoc loc) {
    const long long maxv = (1ll << f.bits()) - 1;
    if (value < 0 || value > maxv) {
      diags_.error(loc, "value " + std::to_string(value) + " out of range for field '" + f.name +
                            "' (0.." + std::to_string(maxv) + ")");
      return constant(false);
    }
    if (!negated) {
      Cube c(mc_.width);
      for (int b = f.lo; b <= f.hi; ++b) {
        c.bits[static_cast<std::size_t>(b)] =
            static_cast<std::int8_t>((value >> (b - f.lo)) & 1);
      }
      SumOfProducts r;
      r.cubes.push_back(std::move(c));
      return r;
    }
    // field != N  ==  OR over bits that differ from N's bit.
    SumOfProducts r;
    for (int b = f.lo; b <= f.hi; ++b) {
      Cube c(mc_.width);
      c.bits[static_cast<std::size_t>(b)] =
          static_cast<std::int8_t>(1 - ((value >> (b - f.lo)) & 1));
      r.cubes.push_back(std::move(c));
    }
    return r;
  }

  SumOfProducts atom() {
    if (accept(TokKind::LParen)) {
      SumOfProducts r = orExpr();
      if (!accept(TokKind::RParen)) diags_.error(cur().loc, "expected ')'");
      return r;
    }
    if (at(TokKind::Number)) {
      const long long v = cur().number;
      const SourceLoc loc = cur().loc;
      advance();
      if (v != 0 && v != 1) diags_.error(loc, "only 0/1 literals allowed");
      return constant(v != 0);
    }
    const bool neg = accept(TokKind::Bang);
    if (!at(TokKind::Ident)) {
      diags_.error(cur().loc, "expected field name in decode expression");
      advance();
      return constant(false);
    }
    const std::string name = cur().text;
    const SourceLoc loc = cur().loc;
    advance();
    const FieldDecl* f = mc_.field(name);
    if (f == nullptr) {
      diags_.error(loc, "unknown microcode field '" + name + "'");
      return constant(false);
    }
    if (at(TokKind::EqEq) || at(TokKind::BangEq)) {
      const bool ne = at(TokKind::BangEq);
      advance();
      if (!at(TokKind::Number)) {
        diags_.error(cur().loc, "expected number after comparison");
        return constant(false);
      }
      const long long v = cur().number;
      advance();
      if (neg) {
        diags_.error(loc, "'!' cannot prefix a comparison; use != instead");
        return constant(false);
      }
      return fieldEq(*f, v, ne, loc);
    }
    // Bare field: must be single-bit.
    if (f->bits() != 1) {
      diags_.error(loc, "bare use of multi-bit field '" + name + "' (use field==N)");
      return constant(false);
    }
    return fieldEq(*f, neg ? 0 : 1, false, loc);
  }

  SumOfProducts andExpr() {
    SumOfProducts r = atom();
    while (accept(TokKind::Amp)) r = andOf(r, atom());
    return r;
  }

  SumOfProducts orExpr() {
    SumOfProducts r = andExpr();
    while (accept(TokKind::Pipe)) r = orOf(r, andExpr());
    return r;
  }

  std::vector<Token> toks_;
  const MicrocodeDecl& mc_;
  DiagnosticList& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

SumOfProducts compileDecode(std::string_view expr, const MicrocodeDecl& mc,
                            DiagnosticList& diags) {
  std::vector<Token> toks = tokenize(expr, diags);
  DecodeParser p(std::move(toks), mc, diags);
  return p.parse();
}

}  // namespace bb::icl
