/// \file ast.hpp
/// Abstract syntax for the chip description — the "single page, high
/// level description of the integrated circuit" the compiler consumes.
/// Three sections, exactly as the paper specifies: (1) microcode width
/// and field decomposition, (2) data width and bus list, (3) the core
/// element list with parameters; plus global booleans for conditional
/// assembly.

#pragma once

#include "icl/diagnostics.hpp"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace bb::icl {

/// One microcode field, e.g. `field aluop [3:5];` — bits lo..hi inclusive.
struct FieldDecl {
  std::string name;
  int lo = 0;
  int hi = 0;
  SourceLoc loc;

  [[nodiscard]] int bits() const noexcept { return hi - lo + 1; }
};

/// Section 1: microcode instruction format.
struct MicrocodeDecl {
  int width = 0;
  std::vector<FieldDecl> fields;
  SourceLoc loc;

  [[nodiscard]] const FieldDecl* field(std::string_view name) const noexcept;
};

/// A parameter value in an element declaration.
class ParamValue {
 public:
  using List = std::vector<ParamValue>;

  ParamValue() = default;
  explicit ParamValue(long long n) : v_(n) {}
  explicit ParamValue(bool b) : v_(b) {}
  ParamValue(std::string s, bool quoted) : v_(std::move(s)), quoted_(quoted) {}
  explicit ParamValue(List l) : v_(std::move(l)) {}

  [[nodiscard]] bool isInt() const noexcept { return std::holds_alternative<long long>(v_); }
  [[nodiscard]] bool isBool() const noexcept { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool isName() const noexcept {
    return std::holds_alternative<std::string>(v_) && !quoted_;
  }
  [[nodiscard]] bool isString() const noexcept {
    return std::holds_alternative<std::string>(v_) && quoted_;
  }
  [[nodiscard]] bool isList() const noexcept { return std::holds_alternative<List>(v_); }

  [[nodiscard]] long long asInt(long long dflt = 0) const noexcept {
    return isInt() ? std::get<long long>(v_) : dflt;
  }
  [[nodiscard]] bool asBool(bool dflt = false) const noexcept {
    return isBool() ? std::get<bool>(v_) : dflt;
  }
  [[nodiscard]] const std::string& asText() const noexcept {
    static const std::string kEmpty;
    return std::holds_alternative<std::string>(v_) ? std::get<std::string>(v_) : kEmpty;
  }
  [[nodiscard]] const List& asList() const noexcept {
    static const List kEmpty;
    return isList() ? std::get<List>(v_) : kEmpty;
  }

  [[nodiscard]] std::string toString() const;

 private:
  std::variant<std::monostate, long long, bool, std::string, List> v_;
  bool quoted_ = false;
};

/// One core element: `register R0 (in = A, out = B);`
struct ElementDecl {
  std::string kind;  ///< generator name: register, alu, shifter, ...
  std::string name;  ///< instance name
  std::map<std::string, ParamValue> params;
  SourceLoc loc;

  [[nodiscard]] const ParamValue* param(std::string_view p) const noexcept;
};

struct CoreItem;

/// `if [!]VAR { ... } [else { ... }]` — the paper's conditional assembly.
struct CondBlock {
  std::string var;
  bool negate = false;
  std::vector<CoreItem> thenItems;
  std::vector<CoreItem> elseItems;
  SourceLoc loc;
};

struct CoreItem {
  std::variant<ElementDecl, CondBlock> node;
};

/// The whole chip description.
struct ChipDesc {
  std::string name;
  std::map<std::string, bool> vars;  ///< conditional-assembly booleans
  MicrocodeDecl microcode;
  int dataWidth = 0;
  std::vector<std::string> buses;
  std::vector<CoreItem> core;

  /// Render as ICL source. This rendering is CANONICAL and deterministic
  /// — it is the hashing contract of the content-addressed chip cache
  /// (`core::requestDigest` / `svc::ChipCache`): two descriptions of the
  /// same design produce byte-identical strings regardless of
  /// construction order. Concretely: `vars` and every element's `params`
  /// are sorted maps (insertion order never leaks into the text), while
  /// microcode fields, buses and core items keep declaration order
  /// because order there is semantic (field bit layout, bus index,
  /// element placement). Any change to this format invalidates every
  /// persisted digest, so extend it only deliberately and canonically
  /// (regression-tested by test_service.cpp / test_builder.cpp).
  [[nodiscard]] std::string toString() const;
};

}  // namespace bb::icl
