/// \file eval.hpp
/// Evaluation over the chip AST:
///   * conditional assembly — resolve `if VAR { ... }` blocks against the
///     global booleans ("at any time prior to actually compiling the
///     chip, the user may decide whether this is a prototype chip");
///   * decode expressions — compile a control line's decode function
///     (e.g. "aluop==2 & regsel!=0") into cubes over the microcode word,
///     the form Pass 2's two-tape machine consumes.

#pragma once

#include "icl/ast.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bb::icl {

/// Flatten the core list under the given variable assignment (overrides
/// take precedence over the defaults declared with `var`). Unknown
/// condition variables are diagnosed.
[[nodiscard]] std::vector<ElementDecl> assembleCore(
    const ChipDesc& chip, const std::map<std::string, bool>& overrides, DiagnosticList& diags);

/// One product term over the microcode word: per bit, 0, 1 or -1 (don't
/// care). A decode function is a sum (OR) of cubes.
struct Cube {
  std::vector<std::int8_t> bits;

  explicit Cube(int width = 0) : bits(static_cast<std::size_t>(width), -1) {}

  [[nodiscard]] int width() const noexcept { return static_cast<int>(bits.size()); }
  /// Number of cared-about bits (the PLA cost of the term).
  [[nodiscard]] int literals() const noexcept;
  /// True if the cube matches the concrete word.
  [[nodiscard]] bool matches(unsigned long long word) const noexcept;
  /// Intersection; nullopt when the cubes conflict on a bit.
  [[nodiscard]] std::optional<Cube> intersect(const Cube& o) const noexcept;
  /// Canonical text, MSB first, e.g. "x10x".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Cube&, const Cube&) = default;
};

/// A decode function in sum-of-products form.
struct SumOfProducts {
  std::vector<Cube> cubes;

  [[nodiscard]] bool matches(unsigned long long word) const noexcept;
  [[nodiscard]] bool alwaysFalse() const noexcept { return cubes.empty(); }
};

/// Compile a decode expression against the microcode format.
/// Grammar: or-expr of and-exprs of atoms; atoms are `field == N`,
/// `field != N`, bare single-bit `field`, `!field`, `(expr)`, `1`, `0`.
[[nodiscard]] SumOfProducts compileDecode(std::string_view expr, const MicrocodeDecl& mc,
                                          DiagnosticList& diags);

}  // namespace bb::icl
