#include "icl/parser.hpp"

namespace bb::icl {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, DiagnosticList& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  std::optional<ChipDesc> parse() {
    ChipDesc chip;
    bool sawMicrocode = false, sawData = false, sawBuses = false, sawCore = false;

    if (!expectKeyword("chip")) return std::nullopt;
    if (!expectIdent(chip.name, "chip name")) return std::nullopt;
    expect(TokKind::Semi);

    while (!at(TokKind::EndOfFile)) {
      if (atKeyword("var")) {
        parseVar(chip);
      } else if (atKeyword("microcode")) {
        parseMicrocode(chip);
        sawMicrocode = true;
      } else if (atKeyword("data")) {
        parseData(chip);
        sawData = true;
      } else if (atKeyword("buses")) {
        parseBuses(chip);
        sawBuses = true;
      } else if (atKeyword("core")) {
        parseCore(chip.core);
        sawCore = true;
      } else {
        diags_.error(cur().loc, "expected a section (var/microcode/data/buses/core), got " +
                                    std::string(tokKindName(cur().kind)) +
                                    (cur().text.empty() ? "" : " '" + cur().text + "'"));
        recoverToSemiOrBrace();
      }
    }

    if (!sawMicrocode) diags_.error({}, "missing 'microcode' section");
    if (!sawData) diags_.error({}, "missing 'data width' section");
    if (!sawBuses) diags_.error({}, "missing 'buses' section");
    if (!sawCore) diags_.error({}, "missing 'core' section");
    semanticChecks(chip);

    if (diags_.hasErrors()) return std::nullopt;
    return chip;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool at(TokKind k) const { return cur().kind == k; }
  bool atKeyword(std::string_view kw) const {
    return cur().kind == TokKind::Ident && cur().text == kw;
  }
  bool accept(TokKind k) {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }
  bool expect(TokKind k) {
    if (accept(k)) return true;
    diags_.error(cur().loc, "expected " + std::string(tokKindName(k)) + ", got " +
                                std::string(tokKindName(cur().kind)));
    return false;
  }
  bool expectKeyword(std::string_view kw) {
    if (atKeyword(kw)) {
      advance();
      return true;
    }
    diags_.error(cur().loc, "expected '" + std::string(kw) + "'");
    return false;
  }
  bool expectIdent(std::string& out, std::string_view what) {
    if (at(TokKind::Ident)) {
      out = cur().text;
      advance();
      return true;
    }
    diags_.error(cur().loc, "expected " + std::string(what));
    return false;
  }
  bool expectNumber(long long& out, std::string_view what) {
    if (at(TokKind::Number)) {
      out = cur().number;
      advance();
      return true;
    }
    diags_.error(cur().loc, "expected " + std::string(what));
    return false;
  }
  void recoverToSemiOrBrace() {
    while (!at(TokKind::EndOfFile) && !at(TokKind::Semi) && !at(TokKind::RBrace)) advance();
    accept(TokKind::Semi);
    accept(TokKind::RBrace);
  }

  void parseVar(ChipDesc& chip) {
    const SourceLoc varLoc = cur().loc;
    advance();  // var
    std::string name;
    if (!expectIdent(name, "variable name")) {
      recoverToSemiOrBrace();
      return;
    }
    expect(TokKind::Assign);
    bool value = false;
    if (atKeyword("true")) {
      value = true;
      advance();
    } else if (atKeyword("false")) {
      value = false;
      advance();
    } else if (at(TokKind::Number)) {
      value = cur().number != 0;
      advance();
    } else {
      diags_.error(cur().loc, "expected true/false");
      recoverToSemiOrBrace();
      return;
    }
    if (chip.vars.contains(name)) {
      diags_.warning(varLoc, "variable '" + name + "' redefined");
    }
    chip.vars[name] = value;
    expect(TokKind::Semi);
  }

  void parseMicrocode(ChipDesc& chip) {
    chip.microcode.loc = cur().loc;
    advance();  // microcode
    expectKeyword("width");
    long long w = 0;
    expectNumber(w, "microcode width");
    chip.microcode.width = static_cast<int>(w);
    if (!expect(TokKind::LBrace)) return;
    while (!at(TokKind::RBrace) && !at(TokKind::EndOfFile)) {
      if (!atKeyword("field")) {
        diags_.error(cur().loc, "expected 'field'");
        recoverToSemiOrBrace();
        continue;
      }
      FieldDecl f;
      f.loc = cur().loc;
      advance();
      if (!expectIdent(f.name, "field name")) {
        recoverToSemiOrBrace();
        continue;
      }
      expect(TokKind::LBracket);
      long long lo = 0, hi = 0;
      expectNumber(lo, "low bit");
      expect(TokKind::Colon);
      expectNumber(hi, "high bit");
      expect(TokKind::RBracket);
      expect(TokKind::Semi);
      f.lo = static_cast<int>(std::min(lo, hi));
      f.hi = static_cast<int>(std::max(lo, hi));
      chip.microcode.fields.push_back(std::move(f));
    }
    expect(TokKind::RBrace);
  }

  void parseData(ChipDesc& chip) {
    advance();  // data
    expectKeyword("width");
    long long w = 0;
    expectNumber(w, "data width");
    chip.dataWidth = static_cast<int>(w);
    expect(TokKind::Semi);
  }

  void parseBuses(ChipDesc& chip) {
    advance();  // buses
    do {
      std::string b;
      if (!expectIdent(b, "bus name")) break;
      chip.buses.push_back(std::move(b));
    } while (accept(TokKind::Comma));
    expect(TokKind::Semi);
  }

  void parseCore(std::vector<CoreItem>& items) {
    advance();  // core (or already consumed brace for nested)
    if (!expect(TokKind::LBrace)) return;
    parseItems(items);
    expect(TokKind::RBrace);
  }

  void parseItems(std::vector<CoreItem>& items) {
    while (!at(TokKind::RBrace) && !at(TokKind::EndOfFile)) {
      if (atKeyword("if")) {
        CondBlock cb;
        cb.loc = cur().loc;
        advance();
        cb.negate = accept(TokKind::Bang);
        if (!expectIdent(cb.var, "condition variable")) {
          recoverToSemiOrBrace();
          continue;
        }
        if (!expect(TokKind::LBrace)) continue;
        parseItems(cb.thenItems);
        expect(TokKind::RBrace);
        if (atKeyword("else")) {
          advance();
          if (expect(TokKind::LBrace)) {
            parseItems(cb.elseItems);
            expect(TokKind::RBrace);
          }
        }
        items.push_back(CoreItem{std::move(cb)});
        continue;
      }
      // element: KIND NAME [ (params) ] ;
      ElementDecl e;
      e.loc = cur().loc;
      if (!expectIdent(e.kind, "element kind")) {
        recoverToSemiOrBrace();
        continue;
      }
      if (!expectIdent(e.name, "element name")) {
        recoverToSemiOrBrace();
        continue;
      }
      if (accept(TokKind::LParen)) {
        if (!at(TokKind::RParen)) {
          do {
            std::string pname;
            if (!expectIdent(pname, "parameter name")) break;
            expect(TokKind::Assign);
            ParamValue v = parseValue();
            if (e.params.contains(pname)) {
              diags_.error(cur().loc, "duplicate parameter '" + pname + "'");
            }
            e.params.emplace(std::move(pname), std::move(v));
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen);
      }
      expect(TokKind::Semi);
      items.push_back(CoreItem{std::move(e)});
    }
  }

  ParamValue parseValue() {
    if (at(TokKind::Number)) {
      const long long v = cur().number;
      advance();
      return ParamValue(v);
    }
    if (atKeyword("true")) {
      advance();
      return ParamValue(true);
    }
    if (atKeyword("false")) {
      advance();
      return ParamValue(false);
    }
    if (at(TokKind::String)) {
      ParamValue v(cur().text, true);
      advance();
      return v;
    }
    if (at(TokKind::Ident)) {
      ParamValue v(cur().text, false);
      advance();
      return v;
    }
    if (accept(TokKind::LBracket)) {
      ParamValue::List list;
      if (!at(TokKind::RBracket)) {
        do {
          list.push_back(parseValue());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RBracket);
      return ParamValue(std::move(list));
    }
    diags_.error(cur().loc, "expected a value");
    advance();
    return {};
  }

  void semanticChecks(const ChipDesc& chip) {
    // Microcode fields inside the word and non-overlapping.
    std::vector<int> owner(static_cast<std::size_t>(std::max(chip.microcode.width, 0)), -1);
    for (std::size_t fi = 0; fi < chip.microcode.fields.size(); ++fi) {
      const FieldDecl& f = chip.microcode.fields[fi];
      if (f.lo < 0 || f.hi >= chip.microcode.width) {
        diags_.error(f.loc, "field '" + f.name + "' [" + std::to_string(f.lo) + ":" +
                                std::to_string(f.hi) + "] exceeds microcode width " +
                                std::to_string(chip.microcode.width));
        continue;
      }
      for (int b = f.lo; b <= f.hi; ++b) {
        if (owner[static_cast<std::size_t>(b)] >= 0) {
          diags_.error(f.loc,
                       "field '" + f.name + "' overlaps field '" +
                           chip.microcode.fields[static_cast<std::size_t>(
                                                     owner[static_cast<std::size_t>(b)])]
                               .name +
                           "' at bit " + std::to_string(b));
          break;
        }
        owner[static_cast<std::size_t>(b)] = static_cast<int>(fi);
      }
      for (std::size_t fj = 0; fj < fi; ++fj) {
        if (chip.microcode.fields[fj].name == f.name) {
          diags_.error(f.loc, "duplicate field name '" + f.name + "'");
        }
      }
    }
    if (chip.dataWidth <= 0 || chip.dataWidth > 64) {
      diags_.error({}, "data width must be in 1..64, got " + std::to_string(chip.dataWidth));
    }
    if (chip.buses.empty() || chip.buses.size() > 2) {
      // The paper: "at most two buses may run through any element".
      diags_.error({}, "need 1 or 2 buses, got " + std::to_string(chip.buses.size()));
    }
    for (std::size_t i = 0; i < chip.buses.size(); ++i) {
      for (std::size_t j = i + 1; j < chip.buses.size(); ++j) {
        if (chip.buses[i] == chip.buses[j]) {
          diags_.error({}, "duplicate bus name '" + chip.buses[i] + "'");
        }
      }
    }
    checkNames(chip.core);
  }

  void checkNames(const std::vector<CoreItem>& items) {
    for (const CoreItem& item : items) {
      if (const auto* e = std::get_if<ElementDecl>(&item.node)) {
        for (const std::string& n : elementNames_) {
          if (n == e->name) {
            diags_.error(e->loc, "duplicate element name '" + e->name + "'");
          }
        }
        elementNames_.push_back(e->name);
      } else if (const auto* c = std::get_if<CondBlock>(&item.node)) {
        // Names in both arms may collide with each other (only one arm is
        // assembled), but not with outer names — check each arm separately.
        checkNames(c->thenItems);
        checkNames(c->elseItems);
      }
    }
  }

  std::vector<Token> toks_;
  DiagnosticList& diags_;
  std::size_t pos_ = 0;
  std::vector<std::string> elementNames_;
};

}  // namespace

std::optional<ChipDesc> parseChip(std::string_view src, DiagnosticList& diags) {
  std::vector<Token> toks = tokenize(src, diags);
  if (diags.hasErrors()) return std::nullopt;
  Parser p(std::move(toks), diags);
  return p.parse();
}

}  // namespace bb::icl
