/// \file lexer.hpp
/// Tokenizer for the chip description language (our stand-in for the one
/// page of ICL the user wrote in 1979). Comments: `#` or `//` to end of
/// line.

#pragma once

#include "icl/diagnostics.hpp"

#include <string>
#include <string_view>
#include <vector>

namespace bb::icl {

enum class TokKind : std::uint8_t {
  Ident,
  Number,
  String,
  // punctuation
  Semi,       // ;
  Comma,      // ,
  LParen,     // (
  RParen,     // )
  LBrace,     // {
  RBrace,     // }
  LBracket,   // [
  RBracket,   // ]
  Assign,     // =
  Colon,      // :
  Bang,       // !
  Amp,        // &
  Pipe,       // |
  EqEq,       // ==
  BangEq,     // !=
  EndOfFile,
  Error,
};

[[nodiscard]] std::string_view tokKindName(TokKind k) noexcept;

struct Token {
  TokKind kind = TokKind::EndOfFile;
  std::string text;
  long long number = 0;
  SourceLoc loc;
};

/// Tokenize the whole input; lexical errors are reported into `diags`
/// and produce Error tokens (the parser recovers at the next ';').
[[nodiscard]] std::vector<Token> tokenize(std::string_view src, DiagnosticList& diags);

}  // namespace bb::icl
