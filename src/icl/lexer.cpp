#include "icl/lexer.hpp"

#include <cctype>

namespace bb::icl {

std::string_view tokKindName(TokKind k) noexcept {
  switch (k) {
    case TokKind::Ident: return "identifier";
    case TokKind::Number: return "number";
    case TokKind::String: return "string";
    case TokKind::Semi: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Assign: return "'='";
    case TokKind::Colon: return "':'";
    case TokKind::Bang: return "'!'";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::EqEq: return "'=='";
    case TokKind::BangEq: return "'!='";
    case TokKind::EndOfFile: return "end of input";
    case TokKind::Error: return "error";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view src, DiagnosticList& diags) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;

  auto loc = [&] { return SourceLoc{line, col}; };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    const SourceLoc at = loc();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string w;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        w += src[i];
        advance();
      }
      out.push_back({TokKind::Ident, std::move(w), 0, at});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      long long v = 0;
      std::string w;
      bool hex = false;
      if (c == '0' && i + 1 < src.size() && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        hex = true;
        w = "0x";
        advance(2);
        while (i < src.size() && std::isxdigit(static_cast<unsigned char>(src[i]))) {
          const char d = src[i];
          v = v * 16 + (std::isdigit(static_cast<unsigned char>(d))
                            ? d - '0'
                            : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10);
          w += d;
          advance();
        }
        if (w == "0x") {
          diags.error(at, "malformed hex literal");
          out.push_back({TokKind::Error, w, 0, at});
          continue;
        }
      } else {
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
          v = v * 10 + (src[i] - '0');
          w += src[i];
          advance();
        }
      }
      (void)hex;
      out.push_back({TokKind::Number, std::move(w), v, at});
      continue;
    }
    if (c == '"') {
      advance();
      std::string w;
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '"') {
          closed = true;
          advance();
          break;
        }
        if (src[i] == '\n') break;
        w += src[i];
        advance();
      }
      if (!closed) {
        diags.error(at, "unterminated string literal");
        out.push_back({TokKind::Error, w, 0, at});
        continue;
      }
      out.push_back({TokKind::String, std::move(w), 0, at});
      continue;
    }
    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    switch (c) {
      case ';': out.push_back({TokKind::Semi, ";", 0, at}); advance(); break;
      case ',': out.push_back({TokKind::Comma, ",", 0, at}); advance(); break;
      case '(': out.push_back({TokKind::LParen, "(", 0, at}); advance(); break;
      case ')': out.push_back({TokKind::RParen, ")", 0, at}); advance(); break;
      case '{': out.push_back({TokKind::LBrace, "{", 0, at}); advance(); break;
      case '}': out.push_back({TokKind::RBrace, "}", 0, at}); advance(); break;
      case '[': out.push_back({TokKind::LBracket, "[", 0, at}); advance(); break;
      case ']': out.push_back({TokKind::RBracket, "]", 0, at}); advance(); break;
      case ':': out.push_back({TokKind::Colon, ":", 0, at}); advance(); break;
      case '&': out.push_back({TokKind::Amp, "&", 0, at}); advance(); break;
      case '|': out.push_back({TokKind::Pipe, "|", 0, at}); advance(); break;
      case '=':
        if (two('=')) {
          out.push_back({TokKind::EqEq, "==", 0, at});
          advance(2);
        } else {
          out.push_back({TokKind::Assign, "=", 0, at});
          advance();
        }
        break;
      case '!':
        if (two('=')) {
          out.push_back({TokKind::BangEq, "!=", 0, at});
          advance(2);
        } else {
          out.push_back({TokKind::Bang, "!", 0, at});
          advance();
        }
        break;
      default:
        diags.error(at, std::string("unexpected character '") + c + "'");
        out.push_back({TokKind::Error, std::string(1, c), 0, at});
        advance();
        break;
    }
  }
  out.push_back({TokKind::EndOfFile, "", 0, loc()});
  return out;
}

}  // namespace bb::icl
