/// \file parser.hpp
/// Recursive-descent parser for the chip description language.

#pragma once

#include "icl/ast.hpp"
#include "icl/lexer.hpp"

#include <optional>

namespace bb::icl {

/// Parse a chip description. On error, diagnostics are filled and
/// nullopt is returned (the parser recovers at ';' / '}' boundaries to
/// report multiple errors in one run).
[[nodiscard]] std::optional<ChipDesc> parseChip(std::string_view src, DiagnosticList& diags);

}  // namespace bb::icl
