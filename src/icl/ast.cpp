#include "icl/ast.hpp"

#include <sstream>

namespace bb::icl {

const FieldDecl* MicrocodeDecl::field(std::string_view name) const noexcept {
  for (const FieldDecl& f : fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string ParamValue::toString() const {
  if (isInt()) return std::to_string(asInt());
  if (isBool()) return asBool() ? "true" : "false";
  if (isString()) return "\"" + asText() + "\"";
  if (isName()) return asText();
  if (isList()) {
    std::string s = "[";
    const List& l = asList();
    for (std::size_t i = 0; i < l.size(); ++i) {
      if (i) s += ", ";
      s += l[i].toString();
    }
    return s + "]";
  }
  return "<empty>";
}

const ParamValue* ElementDecl::param(std::string_view p) const noexcept {
  auto it = params.find(std::string(p));
  return it == params.end() ? nullptr : &it->second;
}

namespace {
void printItems(std::ostringstream& os, const std::vector<CoreItem>& items, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const CoreItem& item : items) {
    if (const auto* e = std::get_if<ElementDecl>(&item.node)) {
      os << pad << e->kind << ' ' << e->name << " (";
      bool first = true;
      for (const auto& [k, v] : e->params) {
        if (!first) os << ", ";
        first = false;
        os << k << " = " << v.toString();
      }
      os << ");\n";
    } else if (const auto* c = std::get_if<CondBlock>(&item.node)) {
      os << pad << "if " << (c->negate ? "!" : "") << c->var << " {\n";
      printItems(os, c->thenItems, indent + 2);
      if (!c->elseItems.empty()) {
        os << pad << "} else {\n";
        printItems(os, c->elseItems, indent + 2);
      }
      os << pad << "}\n";
    }
  }
}
}  // namespace

std::string ChipDesc::toString() const {
  std::ostringstream os;
  os << "chip " << name << ";\n";
  for (const auto& [k, v] : vars) os << "var " << k << " = " << (v ? "true" : "false") << ";\n";
  os << "microcode width " << microcode.width << " {\n";
  for (const FieldDecl& f : microcode.fields) {
    os << "  field " << f.name << " [" << f.lo << ":" << f.hi << "];\n";
  }
  os << "}\n";
  os << "data width " << dataWidth << ";\n";
  os << "buses ";
  for (std::size_t i = 0; i < buses.size(); ++i) {
    if (i) os << ", ";
    os << buses[i];
  }
  os << ";\ncore {\n";
  printItems(os, core, 2);
  os << "}\n";
  return os.str();
}

}  // namespace bb::icl
