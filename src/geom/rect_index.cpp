#include "geom/rect_index.hpp"

#include <algorithm>
#include <numeric>

namespace bb::geom {

namespace {

/// Floor division for possibly-negative offsets.
constexpr Coord floorDiv(Coord v, Coord d) noexcept {
  return v >= 0 ? v / d : -((-v + d - 1) / d);
}

}  // namespace

RectIndex::RectIndex(std::vector<Rect> rects, Coord cellSize)
    : rects_(std::move(rects)), cs_(cellSize) {
  build();
}

void RectIndex::build() {
  const std::size_t n = rects_.size();
  if (n == 0) {
    cs_ = 1;
    return;
  }
  const Rect bb = bboxOf(rects_);
  ox_ = bb.x0;
  oy_ = bb.y0;

  if (cs_ <= 0) {
    // Pitch the grid at the average rect extent so a typical feature
    // lands in O(1) cells and a typical cell holds O(1) features.
    Coord ext = 0;
    for (const Rect& r : rects_) ext += r.width() + r.height();
    cs_ = std::max<Coord>(ext / static_cast<Coord>(2 * n), 1);
  }
  // Cap the grid at ~4 cells per rect so degenerate inputs (one huge
  // bbox, thousands of tiny rects) cannot blow up memory.
  const std::int64_t maxCells = static_cast<std::int64_t>(4 * n + 64);
  for (;;) {
    nx_ = static_cast<std::int64_t>((bb.x1 - ox_) / cs_) + 1;
    ny_ = static_cast<std::int64_t>((bb.y1 - oy_) / cs_) + 1;
    if (nx_ * ny_ <= maxCells) break;
    cs_ *= 2;
  }

  // CSR fill: count entries per cell, prefix-sum, then place.
  start_.assign(static_cast<std::size_t>(nx_ * ny_) + 1, 0);
  auto cellRange = [&](const Rect& r, auto&& f) {
    const Coord gx0 = gridX(r.x0), gx1 = gridX(r.x1);
    const Coord gy0 = gridY(r.y0), gy1 = gridY(r.y1);
    for (Coord gy = gy0; gy <= gy1; ++gy) {
      for (Coord gx = gx0; gx <= gx1; ++gx) {
        f(static_cast<std::size_t>(gy * nx_ + gx));
      }
    }
  };
  for (const Rect& r : rects_) {
    cellRange(r, [&](std::size_t c) { ++start_[c + 1]; });
  }
  std::partial_sum(start_.begin(), start_.end(), start_.begin());
  items_.resize(start_.back());
  std::vector<std::uint32_t> fill(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    cellRange(rects_[i], [&](std::size_t c) {
      items_[fill[c]++] = static_cast<std::uint32_t>(i);
    });
  }
}

Coord RectIndex::gridX(Coord x) const noexcept { return floorDiv(x - ox_, cs_); }
Coord RectIndex::gridY(Coord y) const noexcept { return floorDiv(y - oy_, cs_); }

void RectIndex::queryTouching(const Rect& q, std::vector<int>& out) const {
  out.clear();
  if (rects_.empty()) return;
  // Clamp the query window to the grid; anything outside holds no rects.
  const Coord qx0 = std::max<Coord>(gridX(q.x0), 0);
  const Coord qx1 = std::min<Coord>(gridX(q.x1), nx_ - 1);
  const Coord qy0 = std::max<Coord>(gridY(q.y0), 0);
  const Coord qy1 = std::min<Coord>(gridY(q.y1), ny_ - 1);
  for (Coord gy = qy0; gy <= qy1; ++gy) {
    for (Coord gx = qx0; gx <= qx1; ++gx) {
      const std::size_t c = static_cast<std::size_t>(gy * nx_ + gx);
      for (std::uint32_t k = start_[c]; k < start_[c + 1]; ++k) {
        const std::uint32_t i = items_[k];
        const Rect& r = rects_[i];
        // A rect spanning several query cells would be reported once per
        // cell; only its first cell inside the window reports it. This
        // keeps queries stateless (and therefore thread-safe).
        if (std::max(gridX(r.x0), qx0) != gx || std::max(gridY(r.y0), qy0) != gy) continue;
        if (r.touches(q)) out.push_back(static_cast<int>(i));
      }
    }
  }
  // Ascending order so consumers visit rects exactly as a brute scan
  // would — equivalence with the reference paths is order-for-order.
  std::sort(out.begin(), out.end());
}

std::vector<int> RectIndex::queryTouching(const Rect& q) const {
  std::vector<int> out;
  queryTouching(q, out);
  return out;
}

void RectIndex::queryWithin(const Rect& q, Coord margin, std::vector<int>& out) const {
  // gap(a,b) <= m  <=>  a touches b expanded by m on every side.
  queryTouching(q.expandedXY(margin, margin), out);
}

std::vector<int> RectIndex::queryWithin(const Rect& q, Coord margin) const {
  std::vector<int> out;
  queryWithin(q, margin, out);
  return out;
}

namespace {

/// Path-halving union-find shared by both component implementations.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int a) noexcept {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) noexcept {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<int> parent_;
};

/// Number components by first-appearance order of their members. Any
/// union order over the same partition yields identical labels, which is
/// what makes indexed and brute results comparable bit-for-bit.
RectComponents label(UnionFind& uf, std::size_t n) {
  RectComponents rc;
  rc.componentOf.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const int root = uf.find(static_cast<int>(i));
    if (rc.componentOf[static_cast<std::size_t>(root)] < 0) {
      rc.componentOf[static_cast<std::size_t>(root)] = rc.count++;
    }
    rc.componentOf[i] = rc.componentOf[static_cast<std::size_t>(root)];
  }
  return rc;
}

}  // namespace

RectComponents connectedComponentsBrute(const std::vector<Rect>& rs) {
  const std::size_t n = rs.size();
  UnionFind uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rs[i].touches(rs[j])) uf.unite(static_cast<int>(i), static_cast<int>(j));
    }
  }
  return label(uf, n);
}

RectComponents connectedComponents(const std::vector<Rect>& rs) {
  const std::size_t n = rs.size();
  if (n <= 32) return connectedComponentsBrute(rs);  // not worth a grid
  const RectIndex idx(rs);
  UnionFind uf(n);
  std::vector<int> touching;
  for (std::size_t i = 0; i < n; ++i) {
    idx.queryTouching(rs[i], touching);
    for (int j : touching) {
      if (j > static_cast<int>(i)) uf.unite(static_cast<int>(i), j);
    }
  }
  return label(uf, n);
}

}  // namespace bb::geom
