/// \file transform.hpp
/// Rigid layout transforms: the dihedral group D4 (rotations by 90° and
/// mirrors) plus translation. Cell instances carry one `Transform`;
/// composing transforms while flattening a hierarchy is exact integer math.

#pragma once

#include "geom/geometry.hpp"

#include <array>
#include <string_view>

namespace bb::geom {

/// The eight rigid orientations of the square lattice.
enum class Orientation : std::uint8_t {
  R0 = 0,   ///< identity
  R90,      ///< rotate 90° counter-clockwise
  R180,     ///< rotate 180°
  R270,     ///< rotate 270° counter-clockwise
  MX,       ///< mirror about the x axis (y -> -y)
  MX90,     ///< mirror about x, then rotate 90°
  MY,       ///< mirror about the y axis (x -> -x)
  MY90,     ///< mirror about y, then rotate 90°
};

inline constexpr std::array<Orientation, 8> kAllOrientations = {
    Orientation::R0, Orientation::R90,  Orientation::R180, Orientation::R270,
    Orientation::MX, Orientation::MX90, Orientation::MY,   Orientation::MY90};

[[nodiscard]] std::string_view name(Orientation o) noexcept;

/// Apply an orientation to a point (about the origin).
[[nodiscard]] Point apply(Orientation o, Point p) noexcept;

/// Group composition: `compose(a, b)` is "apply b, then a".
[[nodiscard]] Orientation compose(Orientation a, Orientation b) noexcept;

/// Group inverse.
[[nodiscard]] Orientation inverse(Orientation o) noexcept;

/// A rigid transform: orientation about the origin followed by translation.
struct Transform {
  Orientation orient = Orientation::R0;
  Point offset{};

  [[nodiscard]] static Transform translate(Point d) noexcept { return {Orientation::R0, d}; }

  [[nodiscard]] Point operator()(Point p) const noexcept { return apply(orient, p) + offset; }
  [[nodiscard]] Rect operator()(const Rect& r) const noexcept;
  [[nodiscard]] Polygon operator()(const Polygon& p) const;
  [[nodiscard]] Path operator()(const Path& p) const;

  /// Composition: `(a * b)(p) == a(b(p))`.
  [[nodiscard]] Transform operator*(const Transform& b) const noexcept;
  [[nodiscard]] Transform inverted() const noexcept;

  friend bool operator==(const Transform&, const Transform&) = default;
};

}  // namespace bb::geom
