#include "geom/geometry.hpp"

#include <cassert>
#include <cstdlib>

namespace bb::geom {

Rect Rect::expanded(Coord m) const noexcept { return expandedXY(m, m); }

Rect Rect::unionWith(const Rect& o) const noexcept {
  if (isEmpty()) return o;
  if (o.isEmpty()) return *this;
  Rect r;
  r.x0 = std::min(x0, o.x0);
  r.y0 = std::min(y0, o.y0);
  r.x1 = std::max(x1, o.x1);
  r.y1 = std::max(y1, o.y1);
  return r;
}

std::optional<Rect> Rect::intersectWith(const Rect& o) const noexcept {
  if (!overlaps(o)) return std::nullopt;
  Rect r;
  r.x0 = std::max(x0, o.x0);
  r.y0 = std::max(y0, o.y0);
  r.x1 = std::min(x1, o.x1);
  r.y1 = std::min(y1, o.y1);
  return r;
}

Rect Polygon::bbox() const noexcept {
  if (pts.empty()) return {};
  Rect r{pts[0].x, pts[0].y, pts[0].x, pts[0].y};
  for (const Point& p : pts) {
    r.x0 = std::min(r.x0, p.x);
    r.y0 = std::min(r.y0, p.y);
    r.x1 = std::max(r.x1, p.x);
    r.y1 = std::max(r.y1, p.y);
  }
  return r;
}

Coord Polygon::signedDoubleArea() const noexcept {
  Coord a = 0;
  const std::size_t n = pts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = pts[i];
    const Point& q = pts[(i + 1) % n];
    a += p.x * q.y - q.x * p.y;
  }
  return a;
}

Coord Polygon::area() const noexcept {
  const Coord a = signedDoubleArea();
  return (a < 0 ? -a : a) / 2;
}

Polygon Polygon::translated(Point d) const {
  Polygon p;
  p.pts.reserve(pts.size());
  for (Point q : pts) p.pts.push_back(q + d);
  return p;
}

bool Polygon::contains(Point p) const noexcept {
  // Standard even-odd ray cast; points exactly on an edge count as inside
  // (connectivity must be inclusive).
  bool inside = false;
  const std::size_t n = pts.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = pts[i];
    const Point& b = pts[j];
    // On-segment check (axis-parallel or general).
    const Coord cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if (cross == 0 && p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
        p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y)) {
      return true;
    }
    if ((a.y > p.y) != (b.y > p.y)) {
      // Exact rational comparison: x-intersection vs p.x.
      const Coord num = (b.x - a.x) * (p.y - a.y);
      const Coord den = (b.y - a.y);
      // x_int = a.x + num/den ; compare p.x < x_int without division.
      const Coord lhs = (p.x - a.x) * den;
      if ((den > 0) ? (lhs < num) : (lhs > num)) inside = !inside;
    }
  }
  return inside;
}

Rect Path::bbox() const noexcept {
  if (pts.empty()) return {};
  const Coord h = width / 2;
  Rect r{pts[0].x, pts[0].y, pts[0].x, pts[0].y};
  for (const Point& p : pts) {
    r.x0 = std::min(r.x0, p.x);
    r.y0 = std::min(r.y0, p.y);
    r.x1 = std::max(r.x1, p.x);
    r.y1 = std::max(r.y1, p.y);
  }
  return r.expanded(h);
}

Coord Path::length() const noexcept {
  Coord total = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) total += manhattan(pts[i - 1], pts[i]);
  return total;
}

std::vector<Rect> Path::toRects() const {
  std::vector<Rect> out;
  out.reserve(pts.size() <= 1 ? pts.size() : pts.size() - 1);
  const Coord h = width / 2;
  if (pts.size() == 1) {
    out.push_back(Rect::fromCenter(pts[0], width, width));
    return out;
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const Point a = pts[i - 1];
    const Point b = pts[i];
    if (a.y == b.y) {
      // Horizontal: extend by half-width at each end (square caps).
      out.emplace_back(std::min(a.x, b.x) - h, a.y - h, std::max(a.x, b.x) + h, a.y + h);
    } else if (a.x == b.x) {
      out.emplace_back(a.x - h, std::min(a.y, b.y) - h, a.x + h, std::max(a.y, b.y) + h);
    } else {
      // Diagonal segments are not used by the generators; cover with bbox
      // so downstream passes remain conservative rather than blind.
      Rect r{a.x, a.y, b.x, b.y};
      out.push_back(r.expanded(h));
    }
  }
  return out;
}

Path Path::translated(Point d) const {
  Path p;
  p.width = width;
  p.pts.reserve(pts.size());
  for (Point q : pts) p.pts.push_back(q + d);
  return p;
}

Rect bboxOf(const std::vector<Rect>& rs) noexcept {
  if (rs.empty()) return {};
  // Direct min/max accumulation: no per-rect isEmpty branches, and a
  // single pass the compiler can vectorize (this runs per index build).
  Rect acc = rs[0];
  for (const Rect& r : rs) {
    acc.x0 = std::min(acc.x0, r.x0);
    acc.y0 = std::min(acc.y0, r.y0);
    acc.x1 = std::max(acc.x1, r.x1);
    acc.y1 = std::max(acc.y1, r.y1);
  }
  return acc;
}

// connectedComponents lives in rect_index.cpp (it routes through the
// spatial index; the brute reference implementation sits beside it).

// The production unionArea is the O(n log n) boundary sweep in
// sweep.cpp; this is the original O(n^2) slab scan, kept verbatim as the
// reference the equivalence tests and bench_union_scaling diff against.
Coord unionAreaBrute(const std::vector<Rect>& rs) {
  // Coordinate-compression sweep over x slabs; within a slab, merge y
  // intervals. Exact and simple; cells hold at most a few thousand rects.
  // Empty rects are skipped in place rather than erased, so the input
  // stays untouched (DRC reuses one scratch vector across calls).
  std::vector<Coord> xs;
  xs.reserve(rs.size() * 2);
  for (const Rect& r : rs) {
    if (r.isEmpty()) continue;
    xs.push_back(r.x0);
    xs.push_back(r.x1);
  }
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  Coord total = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Coord xa = xs[i];
    const Coord xb = xs[i + 1];
    std::vector<std::pair<Coord, Coord>> spans;
    for (const Rect& r : rs) {
      if (r.isEmpty()) continue;
      if (r.x0 <= xa && r.x1 >= xb) spans.emplace_back(r.y0, r.y1);
    }
    std::sort(spans.begin(), spans.end());
    Coord covered = 0;
    Coord curLo = 0, curHi = 0;
    bool open = false;
    for (auto [lo, hi] : spans) {
      if (!open) {
        curLo = lo;
        curHi = hi;
        open = true;
      } else if (lo <= curHi) {
        curHi = std::max(curHi, hi);
      } else {
        covered += curHi - curLo;
        curLo = lo;
        curHi = hi;
      }
    }
    if (open) covered += curHi - curLo;
    total += covered * (xb - xa);
  }
  return total;
}

std::string toString(Point p) {
  return "(" + std::to_string(p.x) + "," + std::to_string(p.y) + ")";
}

std::string toString(const Rect& r) {
  return "[" + std::to_string(r.x0) + "," + std::to_string(r.y0) + " .. " +
         std::to_string(r.x1) + "," + std::to_string(r.y1) + "]";
}

}  // namespace bb::geom
