#include "geom/sweep.hpp"

#include <algorithm>
#include <cstdint>

namespace bb::geom::sweep {

namespace {

using detail::TreeNode;

/// Coverage-count tree over the elementary intervals of a compressed
/// y-edge list. Node i covers a range of elementary intervals; `count`
/// is how many open rects cover the whole node, `covered` the total
/// covered length beneath it.
///
/// The tree is 4-ary over a power-of-4-padded leaf domain: half the
/// depth of a binary tree, which halves the cache misses per update —
/// the update path is the hot loop of the whole sweep and the node
/// array outgrows L2 at chip scale. Padding leaves sit past the last
/// real y edge and have zero length, so they never contribute coverage
/// and updates (always within the real domain) never touch them. Works
/// on a caller-owned node buffer so CoverageQuery reuses the allocation
/// across calls.
class CoverTree {
 public:
  CoverTree(const std::vector<Coord>& ys, std::vector<TreeNode>& buf)
      : m_(ys.size() > 1 ? ys.size() - 1 : 0) {
    leaves_ = 1;
    while (leaves_ < m_) leaves_ *= 4;
    // Total nodes of a complete 4-ary tree with leaves_ leaves (0-based
    // heap: children of i are 4i+1 .. 4i+4).
    buf.assign(m_ ? (4 * leaves_ - 1) / 3 : 1, TreeNode{});
    nodes_ = buf.data();
    ys_ = ys.data();
  }

  /// Add `d` to the coverage count of elementary intervals [a, b).
  void add(std::size_t a, std::size_t b, int d) {
    if (m_ && a < b) addRec(0, 0, leaves_, a, b, d);
  }

  [[nodiscard]] Coord covered() const noexcept { return m_ ? nodes_[0].covered : 0; }

  /// Append the maximal covered y runs, ascending and merged.
  void coveredRuns(std::vector<std::pair<Coord, Coord>>& out) const {
    if (m_) runsRec(0, 0, leaves_, out);
  }

 private:
  /// y value of leaf boundary `i`, clamping the padded domain onto the
  /// last real edge (so padding spans have zero length).
  [[nodiscard]] Coord yAt(std::size_t i) const noexcept { return ys_[i < m_ ? i : m_]; }

  void addRec(std::size_t node, std::size_t lo, std::size_t hi, std::size_t a, std::size_t b,
              int d) {
    TreeNode& n = nodes_[node];
    if (a <= lo && hi <= b) {
      n.count += d;
    } else {
      const std::size_t q = (hi - lo) / 4;
      const std::size_t child = 4 * node + 1;
      for (std::size_t c = 0; c < 4; ++c) {
        const std::size_t clo = lo + c * q;
        const std::size_t chi = clo + q;
        if (a < chi && clo < b) addRec(child + c, clo, chi, a, b, d);
      }
    }
    if (n.count > 0) n.covered = yAt(hi) - yAt(lo);
    else if (hi - lo == 1) n.covered = 0;
    else {
      const std::size_t child = 4 * node + 1;
      n.covered = nodes_[child].covered + nodes_[child + 1].covered +
                  nodes_[child + 2].covered + nodes_[child + 3].covered;
    }
  }

  void runsRec(std::size_t node, std::size_t lo, std::size_t hi,
               std::vector<std::pair<Coord, Coord>>& out) const {
    const TreeNode& n = nodes_[node];
    if (n.count > 0) {
      // Fully-covered nodes are always inside the real domain (updates
      // never reach the padding), so no clamping is needed here.
      if (!out.empty() && out.back().second == ys_[lo]) out.back().second = ys_[hi];
      else out.emplace_back(ys_[lo], ys_[hi]);
      return;
    }
    if (n.covered == 0 || hi - lo == 1) return;
    const std::size_t q = (hi - lo) / 4;
    const std::size_t child = 4 * node + 1;
    for (std::size_t c = 0; c < 4; ++c) runsRec(child + c, lo + c * q, lo + (c + 1) * q, out);
  }

  TreeNode* nodes_ = nullptr;
  const Coord* ys_ = nullptr;
  std::size_t m_;        ///< real elementary interval count (ys.size() - 1)
  std::size_t leaves_;   ///< padded leaf count: smallest power of 4 >= m_
};

using Event = detail::SweepEvent;

std::uint32_t yIndex(const std::vector<Coord>& ys, Coord y) {
  return static_cast<std::uint32_t>(std::lower_bound(ys.begin(), ys.end(), y) - ys.begin());
}

/// Compress y edges and build the +1/-1 x events for every non-empty
/// rect. Empty rects are skipped in place; the input is untouched.
void buildEvents(const std::vector<Rect>& rs, std::vector<Coord>& ys, std::vector<Event>& evs) {
  ys.clear();
  evs.clear();
  ys.reserve(rs.size() * 2);
  for (const Rect& r : rs) {
    if (r.isEmpty()) continue;
    ys.push_back(r.y0);
    ys.push_back(r.y1);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  if (ys.empty()) return;
  evs.reserve(rs.size() * 2);
  for (const Rect& r : rs) {
    if (r.isEmpty()) continue;
    const std::uint32_t lo = yIndex(ys, r.y0);
    const std::uint32_t hi = yIndex(ys, r.y1);
    evs.push_back({r.x0, +1, lo, hi});
    evs.push_back({r.x1, -1, lo, hi});
  }
  std::sort(evs.begin(), evs.end(), [](const Event& a, const Event& b) { return a.x < b.x; });
}

}  // namespace

Coord unionArea(const std::vector<Rect>& rs) {
  std::vector<Coord> ys;
  std::vector<Event> evs;
  buildEvents(rs, ys, evs);
  if (evs.empty()) return 0;
  std::vector<TreeNode> buf;
  CoverTree t(ys, buf);
  Coord total = 0;
  Coord prevX = evs.front().x;
  std::size_t i = 0;
  while (i < evs.size()) {
    const Coord x = evs[i].x;
    total += t.covered() * (x - prevX);
    for (; i < evs.size() && evs[i].x == x; ++i) t.add(evs[i].lo, evs[i].hi, evs[i].delta);
    prevX = x;
  }
  return total;
}

std::vector<Rect> unionRects(const std::vector<Rect>& rs) {
  std::vector<Coord> ys;
  std::vector<Event> evs;
  std::vector<Rect> out;
  buildEvents(rs, ys, evs);
  if (evs.empty()) return out;
  std::vector<TreeNode> buf;
  CoverTree t(ys, buf);

  /// A y interval covered since slab edge `x`; `open` stays sorted by
  /// y0 (intervals are disjoint). An interval persists across a slab
  /// boundary only if its exact (y0, y1) pair is still a maximal
  /// covered run — any change closes it and opens the new run.
  struct OpenRun {
    Coord y0, y1, x;
  };
  std::vector<OpenRun> open, nextOpen;
  std::vector<std::pair<Coord, Coord>> runs;

  std::size_t i = 0;
  while (i < evs.size()) {
    const Coord x = evs[i].x;
    for (; i < evs.size() && evs[i].x == x; ++i) t.add(evs[i].lo, evs[i].hi, evs[i].delta);
    runs.clear();
    t.coveredRuns(runs);
    nextOpen.clear();
    std::size_t oi = 0, ri = 0;
    while (oi < open.size() && ri < runs.size()) {
      const auto ot = std::make_pair(open[oi].y0, open[oi].y1);
      if (ot == runs[ri]) {
        nextOpen.push_back(open[oi]);
        ++oi;
        ++ri;
      } else if (ot < runs[ri]) {
        out.emplace_back(open[oi].x, open[oi].y0, x, open[oi].y1);
        ++oi;
      } else {
        nextOpen.push_back({runs[ri].first, runs[ri].second, x});
        ++ri;
      }
    }
    for (; oi < open.size(); ++oi) out.emplace_back(open[oi].x, open[oi].y0, x, open[oi].y1);
    for (; ri < runs.size(); ++ri) nextOpen.push_back({runs[ri].first, runs[ri].second, x});
    open.swap(nextOpen);
  }
  // After the last event the coverage count is zero everywhere, so the
  // final iteration closed every open run; nothing is left dangling.
  return out;
}

std::optional<Rect> CoverageQuery::gap(const Rect& region, const std::vector<Rect>& rects) {
  if (region.isEmpty()) return std::nullopt;
  clipped_.clear();
  for (const Rect& r : rects) {
    if (auto c = r.intersectWith(region)) {
      if (*c == region) return std::nullopt;  // one rect covers it all
      clipped_.push_back(*c);
    }
  }
  if (clipped_.empty()) return region;

  ys_.clear();
  ys_.push_back(region.y0);
  ys_.push_back(region.y1);
  for (const Rect& c : clipped_) {
    ys_.push_back(c.y0);
    ys_.push_back(c.y1);
  }
  std::sort(ys_.begin(), ys_.end());
  ys_.erase(std::unique(ys_.begin(), ys_.end()), ys_.end());

  events_.clear();
  for (const Rect& c : clipped_) {
    const std::uint32_t lo = yIndex(ys_, c.y0);
    const std::uint32_t hi = yIndex(ys_, c.y1);
    events_.push_back({c.x0, +1, lo, hi});
    events_.push_back({c.x1, -1, lo, hi});
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.x < b.x; });

  CoverTree t(ys_, nodes_);
  const Coord want = region.height();

  // First uncovered y run of the slab [xa, xb), or nullopt if covered.
  auto gapInSlab = [&](Coord xa, Coord xb) -> std::optional<Rect> {
    if (xb <= xa || t.covered() == want) return std::nullopt;
    runs_.clear();
    t.coveredRuns(runs_);
    Coord y = region.y0;
    for (const auto& [a, b] : runs_) {
      if (a > y) return Rect{xa, y, xb, a};
      y = std::max(y, b);
      if (y >= region.y1) break;
    }
    if (y < region.y1) return Rect{xa, y, xb, region.y1};
    return std::nullopt;  // unreachable: covered() < want implies a gap
  };

  Coord prevX = region.x0;
  std::size_t i = 0;
  while (i < events_.size()) {
    const Coord x = events_[i].x;
    if (auto g = gapInSlab(prevX, x)) return g;
    for (; i < events_.size() && events_[i].x == x; ++i) {
      t.add(events_[i].lo, events_[i].hi, events_[i].delta);
    }
    prevX = x;
  }
  return gapInSlab(prevX, region.x1);
}

std::optional<Rect> CoverageQuery::gap(const Rect& region, const RectIndex& index) {
  index.queryTouching(region, cand_);
  touching_.clear();
  touching_.reserve(cand_.size());
  for (const int i : cand_) touching_.push_back(index.rect(static_cast<std::size_t>(i)));
  return gap(region, touching_);
}

std::optional<Rect> coverageGap(const Rect& region, const std::vector<Rect>& rects) {
  CoverageQuery q;
  return q.gap(region, rects);
}

std::optional<Rect> coverageGap(const Rect& region, const RectIndex& index) {
  CoverageQuery q;
  return q.gap(region, index);
}

}  // namespace bb::geom::sweep

namespace bb::geom {

// geom::unionArea is the sweep now; the slab-scan reference lives in
// geometry.cpp as unionAreaBrute.
Coord unionArea(const std::vector<Rect>& rs) { return sweep::unionArea(rs); }

}  // namespace bb::geom
