/// \file poly.hpp
/// Polygon-first geometry engine: exact integer boolean operations
/// (intersect / union / difference of polygon sets against rects and
/// each other), inward/outward offsetting, and bounded-error polyline
/// simplification.
///
/// The engine works on two interchangeable forms:
///
///  - `Polygon` / `PolySet`: vertex rings, the import/emission form
///    (CIF `P`, GDS BOUNDARY, SVG `<polygon>`).
///  - a *region*: pairwise-disjoint axis-aligned rects in
///    `sweep::unionRects` normal form — the analysis form every other
///    kernel in the repo already speaks (DRC probes, extraction pieces,
///    `RectIndex` buckets).
///
/// `rectDecompose` scans a rectilinear ring into a region (even-odd,
/// y-sorted horizontal-edge events); `regionToPolygons` stitches a
/// region's boundary back into rings (outer rings counter-clockwise,
/// holes clockwise). Booleans and offsets are computed on regions, so
/// every result is exact on the integer grid — no epsilons, no floats,
/// bit-identical across brute and indexed callers. The only
/// approximating path is `clipToRect` on a *non-rectilinear* polygon,
/// which falls back to Sutherland–Hodgman with floor-rounded edge
/// intersections (deterministic, documented; rectilinear input — the
/// overwhelming CIF case — stays exact).
///
/// Modeled on CuraEngine's polygon/polygonUtils boolean+offset API and
/// Simplify's area-bounded vertex removal, re-grounded on this repo's
/// exact-integer sweep machinery instead of ClipperLib.

#pragma once

#include "geom/geometry.hpp"

#include <vector>

namespace bb::geom {

/// Shoelace double area, signed: positive for counter-clockwise rings.
/// (Free-function twin of `Polygon::signedDoubleArea` so call sites that
/// only have a vertex ring in hand read as geometry, not method soup.)
[[nodiscard]] Coord polygonDoubleArea(const Polygon& p) noexcept;

/// Absolute enclosed area (double area / 2, exact for even double
/// areas; rectilinear rings always have even double area).
[[nodiscard]] Coord polygonArea(const Polygon& p) noexcept;

/// Ring orientation: true when the vertices wind counter-clockwise
/// (positive signed area). Degenerate (zero-area) rings are neither;
/// this returns false for them.
[[nodiscard]] bool isCounterClockwise(const Polygon& p) noexcept;

namespace poly {

/// A set of polygons. Rings emitted by `regionToPolygons` are
/// counter-clockwise for outer boundaries and clockwise for holes.
using PolySet = std::vector<Polygon>;

/// Collapse exact-duplicate and collinear vertices. The result traverses
/// the same boundary with the minimal vertex count; a ring that
/// degenerates (all vertices collinear) comes back with fewer than three
/// vertices, which callers should treat as "no area".
[[nodiscard]] Polygon cleanPolygon(const Polygon& p);

/// True when any two non-adjacent edges of the ring share a point, or
/// adjacent edges overlap beyond their shared endpoint — i.e. the ring
/// is not simple. Exact integer orientation tests; O(n^2), intended for
/// import-time validation, not hot loops.
[[nodiscard]] bool selfIntersects(const Polygon& p);

/// True when every edge (including the closing edge) is axis-parallel.
[[nodiscard]] bool isRectilinear(const Polygon& p) noexcept;

/// Decompose a rectilinear ring into its region: disjoint rects in
/// `sweep::unionRects` normal form covering exactly the even-odd
/// interior. Degenerate rings decompose to an empty region.
/// Precondition: `isRectilinear(p)` (checked; non-rectilinear input
/// returns the empty region so callers gate explicitly).
[[nodiscard]] std::vector<Rect> rectDecompose(const Polygon& p);

/// Union of the decompositions of every rectilinear polygon in `ps`
/// (even-odd per ring, union across rings), in normal form.
[[nodiscard]] std::vector<Rect> regionOf(const PolySet& ps);

/// Stitch a region's boundary back into vertex rings: outer boundaries
/// counter-clockwise, holes clockwise, collinear vertices merged.
/// Components that touch only at a point come back as separate simple
/// rings (the walk takes the leftmost turn at crossing vertices).
/// `region` must be pairwise-disjoint (any `unionRects` output is).
[[nodiscard]] PolySet regionToPolygons(const std::vector<Rect>& region);

/// Region booleans. Inputs and outputs are disjoint-rect regions in
/// normal form; all three are exact.
[[nodiscard]] std::vector<Rect> unionRegions(const std::vector<Rect>& a,
                                             const std::vector<Rect>& b);
[[nodiscard]] std::vector<Rect> intersectRegions(const std::vector<Rect>& a,
                                                 const std::vector<Rect>& b);
[[nodiscard]] std::vector<Rect> subtractRegions(const std::vector<Rect>& a,
                                                const std::vector<Rect>& b);

/// Polygon-set booleans over rectilinear sets: decompose, operate on
/// regions, stitch back. Holes in the result appear as clockwise rings.
[[nodiscard]] PolySet unite(const PolySet& a, const PolySet& b);
[[nodiscard]] PolySet intersect(const PolySet& a, const PolySet& b);
[[nodiscard]] PolySet subtract(const PolySet& a, const PolySet& b);

/// Clip one polygon to a rect window. Fast paths: a window containing
/// the polygon's bbox returns the polygon verbatim (same vertex objects
/// — full-chip emission stays byte-identical to the unclipped walk);
/// a window its bbox does not overlap returns the empty set. Otherwise
/// rectilinear polygons clip exactly (decompose → clip → stitch; the
/// result can be several disjoint rings, never a hole), and
/// non-rectilinear polygons fall back to Sutherland–Hodgman with
/// floor-rounded intersections. Zero-area contact (window edge or
/// corner grazing the polygon) clips to nothing.
[[nodiscard]] PolySet clipToRect(const Polygon& p, const Rect& window);

/// Minkowski dilation of a region by the Chebyshev square of radius
/// `d` >= 0: every rect grows by `d` on all four sides, then the union
/// is renormalized. Exact.
[[nodiscard]] std::vector<Rect> dilateRegion(const std::vector<Rect>& region, Coord d);

/// Morphological erosion by the same square: the set of points whose
/// `d`-neighborhood lies inside the region. Computed as the frame
/// complement trick `P \ dilate(frame \ P, d)`, so it is exact too.
[[nodiscard]] std::vector<Rect> erodeRegion(const std::vector<Rect>& region, Coord d);

/// Offset a rectilinear polygon set outward (dilate) or inward (erode)
/// by `d`, returning stitched rings. Outward offsets can close narrow
/// mouths (a hole then appears as a clockwise ring); inward offsets can
/// split one ring into several or erase it entirely.
[[nodiscard]] PolySet offsetOutward(const PolySet& ps, Coord d);
[[nodiscard]] PolySet offsetInward(const PolySet& ps, Coord d);

/// Simplify a ring by repeatedly removing the vertex whose removal
/// changes the enclosed area the least, while the *accumulated* double
/// area error stays within `maxDoubleAreaError` and at least three
/// vertices remain. Runs `cleanPolygon` first, so zero-cost vertices
/// (duplicates, collinear) always go. The bound is on area only — the
/// result is not guaranteed simple for pathological inputs.
[[nodiscard]] Polygon simplify(const Polygon& p, Coord maxDoubleAreaError);

}  // namespace poly
}  // namespace bb::geom
