/// \file segment_index.hpp
/// Grid-bucket spatial index over a fixed set of line segments —
/// `RectIndex`'s sibling for polygon edges (CuraEngine's SparseLineGrid
/// fills this role there).
///
/// The polygon DRC probes and the clip/offset benches ask "which edges
/// touch (or come within `m` of) this window?". `SegmentIndex` buckets
/// each segment into every grid cell its bbox overlaps and filters
/// candidates with an exact integer segment-vs-rect predicate, so the
/// answer is identical to a brute scan over all edges: ascending,
/// deduplicated, exactly filtered. Queries are const and touch no
/// mutable state; a built index can be shared across threads. The index
/// is a snapshot of the segments passed at construction.

#pragma once

#include "geom/geometry.hpp"

#include <cstdint>
#include <vector>

namespace bb::geom {

/// One closed line segment. Degenerate (point) segments are allowed and
/// behave as their single point.
struct Segment {
  Point a, b;

  [[nodiscard]] Rect bbox() const noexcept {
    return Rect{a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y};
  }
  [[nodiscard]] bool operator==(const Segment& o) const noexcept {
    return a == o.a && b == o.b;
  }
};

/// The closed edge ring of `p` as segments, in vertex order (edge i runs
/// from vertex i to vertex i+1; the last closes back to vertex 0).
[[nodiscard]] std::vector<Segment> edgesOf(const Polygon& p);

/// Exact predicate: does the closed segment share at least one point
/// with the closed rect `r`? Integer orientation tests only.
[[nodiscard]] bool segmentTouchesRect(const Segment& s, const Rect& r) noexcept;

class SegmentIndex {
 public:
  /// An empty index (all queries return nothing).
  SegmentIndex() = default;

  /// Index `segs`. `cellSize` == 0 picks a grid pitch from the average
  /// segment extent (clamped so the grid never exceeds ~4 cells per
  /// segment).
  explicit SegmentIndex(std::vector<Segment> segs, Coord cellSize = 0);

  [[nodiscard]] std::size_t size() const noexcept { return segs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return segs_.empty(); }
  [[nodiscard]] const Segment& segment(std::size_t i) const noexcept { return segs_[i]; }
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept { return segs_; }
  [[nodiscard]] Coord cellSize() const noexcept { return cs_; }

  /// Resident-size estimate (segment snapshot + CSR bucket arrays).
  [[nodiscard]] std::size_t approxBytes() const noexcept {
    return segs_.size() * sizeof(Segment) +
           (start_.size() + items_.size()) * sizeof(std::uint32_t);
  }

  /// Indices of all segments that touch `q` (a shared endpoint or edge
  /// crossing counts). Ascending, deduplicated, exactly filtered —
  /// identical to a brute scan, in the same order.
  [[nodiscard]] std::vector<int> queryTouching(const Rect& q) const;
  /// Scratch-buffer overload for hot loops (clears `out` first).
  void queryTouching(const Rect& q, std::vector<int>& out) const;

  /// Indices of all segments within Chebyshev distance `margin` of `q`
  /// (gap <= margin — the DRC spacing metric). `margin` 0 is
  /// `queryTouching`.
  [[nodiscard]] std::vector<int> queryWithin(const Rect& q, Coord margin) const;
  void queryWithin(const Rect& q, Coord margin, std::vector<int>& out) const;

 private:
  void build();
  [[nodiscard]] Coord gridX(Coord x) const noexcept;
  [[nodiscard]] Coord gridY(Coord y) const noexcept;

  std::vector<Segment> segs_;
  Coord cs_ = 1;           ///< grid pitch
  Coord ox_ = 0, oy_ = 0;  ///< grid origin (bbox lower-left)
  std::int64_t nx_ = 0, ny_ = 0;
  std::vector<std::uint32_t> start_;  ///< CSR offsets, nx*ny + 1
  std::vector<std::uint32_t> items_;  ///< segment indices, bucketed by cell
};

}  // namespace bb::geom
