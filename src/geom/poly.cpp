/// \file poly.cpp
/// Polygon engine implementation. See poly.hpp for the model: vertex
/// rings on the outside, disjoint-rect regions (sweep::unionRects
/// normal form) on the inside, exact integer arithmetic throughout.

#include "geom/poly.hpp"

#include "geom/rect_index.hpp"
#include "geom/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <utility>

namespace bb::geom {

Coord polygonDoubleArea(const Polygon& p) noexcept { return p.signedDoubleArea(); }

Coord polygonArea(const Polygon& p) noexcept { return p.area(); }

bool isCounterClockwise(const Polygon& p) noexcept { return p.signedDoubleArea() > 0; }

namespace poly {
namespace {

/// Cross product of (b - a) x (c - a): orientation of c relative to the
/// directed line a->b. Coordinates are chip-sized (well under 2^31), so
/// the products fit Coord exactly.
[[nodiscard]] Coord cross3(Point a, Point b, Point c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// p is on segment [a, b], given that a, b, p are collinear.
[[nodiscard]] bool onSegment(Point a, Point b, Point p) noexcept {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

/// Closed segments [p1,p2] and [p3,p4] share at least one point.
[[nodiscard]] bool segmentsIntersect(Point p1, Point p2, Point p3, Point p4) noexcept {
  const Coord d1 = cross3(p3, p4, p1);
  const Coord d2 = cross3(p3, p4, p2);
  const Coord d3 = cross3(p1, p2, p3);
  const Coord d4 = cross3(p1, p2, p4);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && onSegment(p3, p4, p1)) return true;
  if (d2 == 0 && onSegment(p3, p4, p2)) return true;
  if (d3 == 0 && onSegment(p1, p2, p3)) return true;
  if (d4 == 0 && onSegment(p1, p2, p4)) return true;
  return false;
}

/// Floor division (round toward negative infinity), exact for any sign.
[[nodiscard]] Coord floorDiv(Coord n, Coord d) noexcept {
  const Coord q = n / d;
  const Coord r = n % d;
  return (r != 0 && ((r < 0) != (d < 0))) ? q - 1 : q;
}

/// Cut `holes` (all properly overlapping rects allowed) out of `base`,
/// appending the remaining fragments to `out`. The classic four-way
/// split; fragments are disjoint by construction.
void cutOut(const Rect& base, const std::vector<Rect>& holes, std::vector<Rect>& out) {
  std::vector<Rect> frags{base};
  std::vector<Rect> next;
  for (const Rect& h : holes) {
    next.clear();
    for (const Rect& f : frags) {
      if (!f.overlaps(h)) {
        next.push_back(f);
        continue;
      }
      if (f.y1 > h.y1) next.push_back(Rect{f.x0, h.y1, f.x1, f.y1});
      if (f.y0 < h.y0) next.push_back(Rect{f.x0, f.y0, f.x1, h.y0});
      const Coord my0 = std::max(f.y0, h.y0);
      const Coord my1 = std::min(f.y1, h.y1);
      if (f.x0 < h.x0) next.push_back(Rect{f.x0, my0, h.x0, my1});
      if (f.x1 > h.x1) next.push_back(Rect{h.x1, my0, f.x1, my1});
    }
    frags.swap(next);
    if (frags.empty()) return;
  }
  out.insert(out.end(), frags.begin(), frags.end());
}

/// One directed boundary edge (interior on the left).
struct DirEdge {
  Point a, b;
};

struct PointLess {
  bool operator()(Point a, Point b) const noexcept {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  }
};

/// Axis direction of a boundary edge as a unit step.
[[nodiscard]] Point dirOf(const DirEdge& e) noexcept {
  const Coord dx = e.b.x - e.a.x;
  const Coord dy = e.b.y - e.a.y;
  return Point{dx > 0 ? 1 : (dx < 0 ? -1 : 0), dy > 0 ? 1 : (dy < 0 ? -1 : 0)};
}

/// Turn preference for the boundary walk: lower is taken first. With
/// interior on the left, preferring the leftmost turn keeps rings
/// simple — at a checkerboard crossing each loop stays on its own
/// component instead of stitching the two into a figure eight.
[[nodiscard]] int turnScore(Point din, Point dout) noexcept {
  const Coord cr = din.x * dout.y - din.y * dout.x;
  if (cr > 0) return 0;                              // left
  if (dout.x == din.x && dout.y == din.y) return 1;  // straight
  if (cr < 0) return 2;                              // right
  return 3;                                          // back (degenerate)
}

}  // namespace

Polygon cleanPolygon(const Polygon& p) {
  Polygon q;
  q.pts.reserve(p.pts.size());
  for (const Point& pt : p.pts) {
    if (q.pts.empty() || !(q.pts.back() == pt)) q.pts.push_back(pt);
  }
  while (q.pts.size() > 1 && q.pts.front() == q.pts.back()) q.pts.pop_back();
  // Drop collinear (and spike) vertices until stable; each pass can
  // expose new collinear triples at the seams of removed runs.
  bool changed = true;
  while (changed && q.pts.size() >= 3) {
    changed = false;
    std::vector<Point> kept;
    kept.reserve(q.pts.size());
    const std::size_t n = q.pts.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point prev = q.pts[(i + n - 1) % n];
      const Point next = q.pts[(i + 1) % n];
      if (cross3(prev, q.pts[i], next) == 0) {
        changed = true;
        continue;
      }
      kept.push_back(q.pts[i]);
    }
    q.pts.swap(kept);
  }
  if (q.pts.size() < 3) q.pts.clear();
  return q;
}

bool selfIntersects(const Polygon& p) {
  const std::size_t n = p.pts.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = p.pts[i];
    const Point b = p.pts[(i + 1) % n];
    for (std::size_t j = i + 1; j < n; ++j) {
      const Point c = p.pts[j];
      const Point d = p.pts[(j + 1) % n];
      const bool adjacent = (j == i + 1) || (i == 0 && j == n - 1);
      if (adjacent) {
        // Sharing the common endpoint is the ring structure; anything
        // more (collinear fold-back) makes the ring non-simple.
        const Point shared = (j == i + 1) ? b : a;
        const Point tipA = (j == i + 1) ? a : b;
        const Point tipB = (j == i + 1) ? d : c;
        if (cross3(shared, tipA, tipB) == 0 &&
            (tipA.x - shared.x) * (tipB.x - shared.x) +
                    (tipA.y - shared.y) * (tipB.y - shared.y) >
                0) {
          return true;
        }
        continue;
      }
      if (segmentsIntersect(a, b, c, d)) return true;
    }
  }
  return false;
}

bool isRectilinear(const Polygon& p) noexcept {
  const std::size_t n = p.pts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = p.pts[i];
    const Point b = p.pts[(i + 1) % n];
    if (a.x != b.x && a.y != b.y) return false;
  }
  return true;
}

std::vector<Rect> rectDecompose(const Polygon& p) {
  if (p.pts.size() < 3 || !isRectilinear(p)) return {};
  struct HEdge {
    Coord y, x0, x1;
  };
  std::vector<HEdge> edges;
  const std::size_t n = p.pts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = p.pts[i];
    const Point b = p.pts[(i + 1) % n];
    if (a.y == b.y && a.x != b.x) {
      edges.push_back({a.y, std::min(a.x, b.x), std::max(a.x, b.x)});
    }
  }
  if (edges.empty()) return {};
  std::sort(edges.begin(), edges.end(), [](const HEdge& l, const HEdge& r) {
    return l.y != r.y ? l.y < r.y : (l.x0 != r.x0 ? l.x0 < r.x0 : l.x1 < r.x1);
  });

  std::vector<Rect> out;
  std::vector<Coord> active;  // sorted x boundaries where parity flips
  std::vector<Coord> merged;
  Coord prevY = 0;
  std::size_t i = 0;
  while (i < edges.size()) {
    const Coord y = edges[i].y;
    if (!active.empty() && prevY < y) {
      for (std::size_t k = 0; k + 1 < active.size(); k += 2) {
        out.push_back(Rect{active[k], prevY, active[k + 1], y});
      }
    }
    // Toggle this scanline's intervals: the new boundary set is the
    // symmetric difference of the old boundaries with the edge
    // endpoints (pairs of equal values cancel).
    merged = active;
    while (i < edges.size() && edges[i].y == y) {
      merged.push_back(edges[i].x0);
      merged.push_back(edges[i].x1);
      ++i;
    }
    std::sort(merged.begin(), merged.end());
    active.clear();
    for (std::size_t k = 0; k < merged.size();) {
      if (k + 1 < merged.size() && merged[k] == merged[k + 1]) {
        k += 2;
      } else {
        active.push_back(merged[k]);
        ++k;
      }
    }
    prevY = y;
  }
  return sweep::unionRects(out);
}

std::vector<Rect> regionOf(const PolySet& ps) {
  std::vector<Rect> all;
  for (const Polygon& p : ps) {
    const std::vector<Rect> r = rectDecompose(p);
    all.insert(all.end(), r.begin(), r.end());
  }
  return sweep::unionRects(all);
}

PolySet regionToPolygons(const std::vector<Rect>& region) {
  std::vector<DirEdge> edges;
  {
    // Net vertical boundaries per x: +1 for a left edge (interior
    // east), -1 for a right edge. Runs are emitted between consecutive
    // breakpoints — never merged across a rect corner, so every
    // boundary vertex is an edge endpoint and the walk below sees
    // matched in/out degrees. (Collinear run joints merge when the
    // ring is built.)
    std::map<Coord, std::map<Coord, int>> vdiff;
    std::map<Coord, std::map<Coord, int>> hdiff;
    for (const Rect& r : region) {
      if (r.isEmpty()) continue;
      vdiff[r.x0][r.y0] += 1;
      vdiff[r.x0][r.y1] -= 1;
      vdiff[r.x1][r.y0] -= 1;
      vdiff[r.x1][r.y1] += 1;
      hdiff[r.y0][r.x0] += 1;
      hdiff[r.y0][r.x1] -= 1;
      hdiff[r.y1][r.x0] -= 1;
      hdiff[r.y1][r.x1] += 1;
    }
    for (const auto& [x, dm] : vdiff) {
      int s = 0;
      Coord prev = 0;
      bool have = false;
      for (const auto& [y, d] : dm) {
        if (have && s > 0) edges.push_back({Point{x, y}, Point{x, prev}});   // south
        if (have && s < 0) edges.push_back({Point{x, prev}, Point{x, y}});   // north
        s += d;
        prev = y;
        have = true;
      }
    }
    for (const auto& [y, dm] : hdiff) {
      int s = 0;
      Coord prev = 0;
      bool have = false;
      for (const auto& [x, d] : dm) {
        if (have && s > 0) edges.push_back({Point{prev, y}, Point{x, y}});   // east
        if (have && s < 0) edges.push_back({Point{x, y}, Point{prev, y}});   // west
        s += d;
        prev = x;
        have = true;
      }
    }
  }

  std::map<Point, std::vector<std::size_t>, PointLess> outAt;
  for (std::size_t i = 0; i < edges.size(); ++i) outAt[edges[i].a].push_back(i);

  PolySet rings;
  std::vector<char> used(edges.size(), 0);
  for (std::size_t start = 0; start < edges.size(); ++start) {
    if (used[start]) continue;
    Polygon ring;
    std::size_t cur = start;
    const Point origin = edges[start].a;
    while (true) {
      used[cur] = 1;
      ring.pts.push_back(edges[cur].a);
      const Point at = edges[cur].b;
      if (at == origin) break;
      const Point din = dirOf(edges[cur]);
      const auto it = outAt.find(at);
      std::size_t best = edges.size();
      int bestScore = 4;
      if (it != outAt.end()) {
        for (const std::size_t cand : it->second) {
          if (used[cand]) continue;
          const int score = turnScore(din, dirOf(edges[cand]));
          if (score < bestScore) {
            bestScore = score;
            best = cand;
          }
        }
      }
      if (best == edges.size()) break;  // defensive: open chain, drop ring
      cur = best;
    }
    Polygon cleaned = cleanPolygon(ring);
    if (cleaned.pts.size() >= 3) rings.push_back(std::move(cleaned));
  }
  return rings;
}

std::vector<Rect> unionRegions(const std::vector<Rect>& a, const std::vector<Rect>& b) {
  std::vector<Rect> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  return sweep::unionRects(all);
}

std::vector<Rect> intersectRegions(const std::vector<Rect>& a, const std::vector<Rect>& b) {
  std::vector<Rect> out;
  if (a.empty() || b.empty()) return out;
  if (b.size() >= 16) {
    const RectIndex idx{std::vector<Rect>(b)};
    std::vector<int> cand;
    for (const Rect& ra : a) {
      idx.queryTouching(ra, cand);
      for (const int j : cand) {
        if (const auto r = ra.intersectWith(b[static_cast<std::size_t>(j)])) {
          if (!r->isEmpty()) out.push_back(*r);
        }
      }
    }
  } else {
    for (const Rect& ra : a) {
      for (const Rect& rb : b) {
        if (const auto r = ra.intersectWith(rb)) {
          if (!r->isEmpty()) out.push_back(*r);
        }
      }
    }
  }
  return sweep::unionRects(out);
}

std::vector<Rect> subtractRegions(const std::vector<Rect>& a, const std::vector<Rect>& b) {
  std::vector<Rect> out;
  if (a.empty()) return out;
  if (b.empty()) return sweep::unionRects(a);
  std::vector<Rect> holes;
  for (const Rect& ra : a) {
    holes.clear();
    for (const Rect& rb : b) {
      if (ra.overlaps(rb)) holes.push_back(rb);
    }
    if (holes.empty()) {
      out.push_back(ra);
    } else {
      cutOut(ra, holes, out);
    }
  }
  return sweep::unionRects(out);
}

PolySet unite(const PolySet& a, const PolySet& b) {
  return regionToPolygons(unionRegions(regionOf(a), regionOf(b)));
}

PolySet intersect(const PolySet& a, const PolySet& b) {
  return regionToPolygons(intersectRegions(regionOf(a), regionOf(b)));
}

PolySet subtract(const PolySet& a, const PolySet& b) {
  return regionToPolygons(subtractRegions(regionOf(a), regionOf(b)));
}

PolySet clipToRect(const Polygon& p, const Rect& window) {
  if (p.pts.size() < 3 || window.isEmpty()) return {};
  const Rect bb = p.bbox();
  if (!bb.overlaps(window)) return {};   // edge/corner grazing has no area
  if (window.contains(bb)) return {p};   // verbatim fast path
  if (isRectilinear(p)) {
    std::vector<Rect> clipped;
    for (const Rect& r : rectDecompose(p)) {
      if (const auto ri = r.intersectWith(window)) {
        if (!ri->isEmpty()) clipped.push_back(*ri);
      }
    }
    return regionToPolygons(sweep::unionRects(clipped));
  }
  // Non-rectilinear fallback: Sutherland–Hodgman against the four
  // half-planes, intersections floor-rounded onto the grid —
  // deterministic, but no longer exact on the diagonal edges.
  std::vector<Point> ring = p.pts;
  std::vector<Point> next;
  // axis: 0 = x, 1 = y; keep points with coord*sign >= bound*sign.
  const auto clipHalfPlane = [&](int axis, Coord bound, Coord sign) {
    next.clear();
    const std::size_t n = ring.size();
    const auto coordOf = [axis](Point q) { return axis == 0 ? q.x : q.y; };
    const auto inside = [&](Point q) { return sign * coordOf(q) >= sign * bound; };
    const auto cut = [&](Point a, Point b) -> Point {
      // Intersection of segment a->b with the line coord == bound.
      const Coord da = coordOf(b) - coordOf(a);
      if (axis == 0) {
        const Coord y = a.y + floorDiv((b.y - a.y) * (bound - a.x), da);
        return Point{bound, y};
      }
      const Coord x = a.x + floorDiv((b.x - a.x) * (bound - a.y), da);
      return Point{x, bound};
    };
    for (std::size_t i = 0; i < n; ++i) {
      const Point a = ring[i];
      const Point b = ring[(i + 1) % n];
      if (inside(b)) {
        if (!inside(a)) next.push_back(cut(a, b));
        next.push_back(b);
      } else if (inside(a)) {
        next.push_back(cut(a, b));
      }
    }
    ring.swap(next);
  };
  clipHalfPlane(0, window.x0, 1);
  clipHalfPlane(0, window.x1, -1);
  clipHalfPlane(1, window.y0, 1);
  clipHalfPlane(1, window.y1, -1);
  Polygon out;
  out.pts = std::move(ring);
  Polygon cleaned = cleanPolygon(out);
  if (cleaned.pts.size() < 3 || cleaned.signedDoubleArea() == 0) return {};
  return {std::move(cleaned)};
}

std::vector<Rect> dilateRegion(const std::vector<Rect>& region, Coord d) {
  if (d <= 0) return sweep::unionRects(region);
  std::vector<Rect> grown;
  grown.reserve(region.size());
  for (const Rect& r : region) {
    if (!r.isEmpty()) grown.push_back(r.expandedXY(d, d));
  }
  return sweep::unionRects(grown);
}

std::vector<Rect> erodeRegion(const std::vector<Rect>& region, Coord d) {
  if (region.empty()) return {};
  if (d <= 0) return sweep::unionRects(region);
  const Rect frame = bboxOf(region).expanded(d + 1);
  std::vector<Rect> comp;
  cutOut(frame, region, comp);
  return subtractRegions(region, dilateRegion(comp, d));
}

PolySet offsetOutward(const PolySet& ps, Coord d) {
  return regionToPolygons(dilateRegion(regionOf(ps), d));
}

PolySet offsetInward(const PolySet& ps, Coord d) {
  return regionToPolygons(erodeRegion(regionOf(ps), d));
}

Polygon simplify(const Polygon& p, Coord maxDoubleAreaError) {
  Polygon q = cleanPolygon(p);
  if (q.pts.size() <= 3 || maxDoubleAreaError <= 0) return q;
  const std::size_t n = q.pts.size();
  std::vector<std::size_t> prev(n), next(n);
  std::vector<char> alive(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    prev[i] = (i + n - 1) % n;
    next[i] = (i + 1) % n;
  }
  const auto costOf = [&](std::size_t i) {
    return std::abs(cross3(q.pts[prev[i]], q.pts[i], q.pts[next[i]]));
  };
  std::size_t live = n;
  Coord budget = maxDoubleAreaError;
  while (live > 3) {
    std::size_t best = n;
    Coord bestCost = std::numeric_limits<Coord>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      const Coord c = costOf(i);
      if (c < bestCost) {
        bestCost = c;
        best = i;
      }
    }
    if (best == n || bestCost > budget) break;
    budget -= bestCost;
    alive[best] = 0;
    next[prev[best]] = next[best];
    prev[next[best]] = prev[best];
    --live;
  }
  Polygon out;
  out.pts.reserve(live);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) out.pts.push_back(q.pts[i]);
  }
  return cleanPolygon(out);
}

}  // namespace poly
}  // namespace bb::geom
