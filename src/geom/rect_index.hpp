/// \file rect_index.hpp
/// Grid-bucket spatial index over a fixed set of rectangles.
///
/// Every geometric kernel in the pipeline — DRC spacing/width checks,
/// extraction's net-piece merging, connectivity — asks the same question:
/// "which rectangles touch (or come within `m` of) this one?". Answering
/// it by scanning the whole layer makes full-chip checks quadratic in the
/// rect count. `RectIndex` buckets the rects on a uniform grid sized from
/// the average feature extent, so each query inspects only the handful of
/// cells the query window overlaps and runs in (near-)constant time.
///
/// Queries return indices in ascending order, deduplicated and exactly
/// filtered, so a consumer that switches a brute-force scan over to the
/// index visits the same rects in the same order — indexed and brute
/// results stay bit-identical (the equivalence tests assert this).
///
/// The index is a snapshot: it copies the rects at construction and never
/// observes later mutation of the source vector. Queries are const and
/// touch no mutable state, so a built index can be shared across threads.

#pragma once

#include "geom/geometry.hpp"

#include <cstdint>
#include <vector>

namespace bb::geom {

class RectIndex {
 public:
  /// An empty index (all queries return nothing).
  RectIndex() = default;

  /// Index `rects`. `cellSize` == 0 picks a grid pitch from the average
  /// rect extent (clamped so the grid never exceeds ~4 cells per rect).
  explicit RectIndex(std::vector<Rect> rects, Coord cellSize = 0);

  [[nodiscard]] std::size_t size() const noexcept { return rects_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rects_.empty(); }
  [[nodiscard]] const Rect& rect(std::size_t i) const noexcept { return rects_[i]; }
  [[nodiscard]] const std::vector<Rect>& rects() const noexcept { return rects_; }
  [[nodiscard]] Coord cellSize() const noexcept { return cs_; }

  /// Resident-size estimate (rect snapshot + CSR bucket arrays).
  [[nodiscard]] std::size_t approxBytes() const noexcept {
    return rects_.size() * sizeof(Rect) +
           (start_.size() + items_.size()) * sizeof(std::uint32_t);
  }

  /// Indices of all rects that touch `q` (shared edges/corners count —
  /// the electrical-connectivity predicate). Ascending, deduplicated.
  [[nodiscard]] std::vector<int> queryTouching(const Rect& q) const;
  /// Scratch-buffer overload for hot loops (clears `out` first).
  void queryTouching(const Rect& q, std::vector<int>& out) const;

  /// Indices of all rects within Chebyshev distance `margin` of `q`
  /// (gap <= margin, where gap is the larger of the axis separations —
  /// the DRC spacing metric). `margin` 0 is `queryTouching`.
  [[nodiscard]] std::vector<int> queryWithin(const Rect& q, Coord margin) const;
  void queryWithin(const Rect& q, Coord margin, std::vector<int>& out) const;

 private:
  void build();
  [[nodiscard]] Coord gridX(Coord x) const noexcept;
  [[nodiscard]] Coord gridY(Coord y) const noexcept;

  std::vector<Rect> rects_;
  Coord cs_ = 1;             ///< grid pitch
  Coord ox_ = 0, oy_ = 0;    ///< grid origin (bbox lower-left)
  std::int64_t nx_ = 0, ny_ = 0;
  std::vector<std::uint32_t> start_;  ///< CSR offsets, nx*ny + 1
  std::vector<std::uint32_t> items_;  ///< rect indices, bucketed by cell
};

/// Reference O(n^2) all-pairs connected components (the pre-index
/// implementation). Kept for the equivalence tests and scaling benches;
/// production code calls `connectedComponents`, which routes through a
/// RectIndex and produces bit-identical component labels.
[[nodiscard]] RectComponents connectedComponentsBrute(const std::vector<Rect>& rs);

}  // namespace bb::geom
