#include "geom/segment_index.hpp"

#include <algorithm>
#include <numeric>

namespace bb::geom {

namespace {

/// Floor division for possibly-negative offsets.
constexpr Coord floorDiv(Coord v, Coord d) noexcept {
  return v >= 0 ? v / d : -((-v + d - 1) / d);
}

/// Orientation of c relative to the directed line a->b.
constexpr Coord cross3(Point a, Point b, Point c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// Closed segments [p1,p2] and [p3,p4] share a point (collinear overlap
/// and shared endpoints count).
[[nodiscard]] bool segmentsTouch(Point p1, Point p2, Point p3, Point p4) noexcept {
  const auto onSeg = [](Point a, Point b, Point p) noexcept {
    return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
           std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
  };
  const Coord d1 = cross3(p3, p4, p1);
  const Coord d2 = cross3(p3, p4, p2);
  const Coord d3 = cross3(p1, p2, p3);
  const Coord d4 = cross3(p1, p2, p4);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && onSeg(p3, p4, p1)) return true;
  if (d2 == 0 && onSeg(p3, p4, p2)) return true;
  if (d3 == 0 && onSeg(p1, p2, p3)) return true;
  if (d4 == 0 && onSeg(p1, p2, p4)) return true;
  return false;
}

}  // namespace

std::vector<Segment> edgesOf(const Polygon& p) {
  std::vector<Segment> out;
  const std::size_t n = p.pts.size();
  if (n < 2) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Segment{p.pts[i], p.pts[(i + 1) % n]});
  }
  return out;
}

bool segmentTouchesRect(const Segment& s, const Rect& r) noexcept {
  if (!s.bbox().touches(r)) return false;
  if (r.contains(s.a) || r.contains(s.b)) return true;
  // Neither endpoint inside: the segment touches iff it meets one of
  // the rect's four sides.
  const Point c00{r.x0, r.y0}, c10{r.x1, r.y0}, c11{r.x1, r.y1}, c01{r.x0, r.y1};
  return segmentsTouch(s.a, s.b, c00, c10) || segmentsTouch(s.a, s.b, c10, c11) ||
         segmentsTouch(s.a, s.b, c11, c01) || segmentsTouch(s.a, s.b, c01, c00);
}

SegmentIndex::SegmentIndex(std::vector<Segment> segs, Coord cellSize)
    : segs_(std::move(segs)), cs_(cellSize) {
  build();
}

void SegmentIndex::build() {
  const std::size_t n = segs_.size();
  if (n == 0) {
    cs_ = 1;
    return;
  }
  // Direct min/max accumulation — NOT Rect::unionWith, which treats
  // zero-area rects as identity and would ignore every axis-parallel
  // segment's degenerate bbox.
  Rect bb = segs_[0].bbox();
  for (const Segment& s : segs_) {
    const Rect sb = s.bbox();
    bb.x0 = std::min(bb.x0, sb.x0);
    bb.y0 = std::min(bb.y0, sb.y0);
    bb.x1 = std::max(bb.x1, sb.x1);
    bb.y1 = std::max(bb.y1, sb.y1);
  }
  ox_ = bb.x0;
  oy_ = bb.y0;

  if (cs_ <= 0) {
    // Pitch the grid at the average segment extent so a typical edge
    // lands in O(1) cells and a typical cell holds O(1) edges.
    Coord ext = 0;
    for (const Segment& s : segs_) {
      const Rect sb = s.bbox();
      ext += sb.width() + sb.height();
    }
    cs_ = std::max<Coord>(ext / static_cast<Coord>(2 * n), 1);
  }
  // Cap the grid at ~4 cells per segment so degenerate inputs cannot
  // blow up memory.
  const std::int64_t maxCells = static_cast<std::int64_t>(4 * n + 64);
  for (;;) {
    nx_ = static_cast<std::int64_t>((bb.x1 - ox_) / cs_) + 1;
    ny_ = static_cast<std::int64_t>((bb.y1 - oy_) / cs_) + 1;
    if (nx_ * ny_ <= maxCells) break;
    cs_ *= 2;
  }

  // CSR fill: count entries per cell, prefix-sum, then place. A segment
  // occupies every cell its bbox overlaps (cheap, conservative; the
  // exact predicate filters at query time).
  start_.assign(static_cast<std::size_t>(nx_ * ny_) + 1, 0);
  auto cellRange = [&](const Segment& s, auto&& f) {
    const Rect sb = s.bbox();
    const Coord gx0 = gridX(sb.x0), gx1 = gridX(sb.x1);
    const Coord gy0 = gridY(sb.y0), gy1 = gridY(sb.y1);
    for (Coord gy = gy0; gy <= gy1; ++gy) {
      for (Coord gx = gx0; gx <= gx1; ++gx) {
        f(static_cast<std::size_t>(gy * nx_ + gx));
      }
    }
  };
  for (const Segment& s : segs_) {
    cellRange(s, [&](std::size_t c) { ++start_[c + 1]; });
  }
  std::partial_sum(start_.begin(), start_.end(), start_.begin());
  items_.resize(start_.back());
  std::vector<std::uint32_t> fill(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    cellRange(segs_[i], [&](std::size_t c) {
      items_[fill[c]++] = static_cast<std::uint32_t>(i);
    });
  }
}

Coord SegmentIndex::gridX(Coord x) const noexcept { return floorDiv(x - ox_, cs_); }
Coord SegmentIndex::gridY(Coord y) const noexcept { return floorDiv(y - oy_, cs_); }

void SegmentIndex::queryTouching(const Rect& q, std::vector<int>& out) const {
  out.clear();
  if (segs_.empty()) return;
  const Coord qx0 = std::max<Coord>(gridX(q.x0), 0);
  const Coord qx1 = std::min<Coord>(gridX(q.x1), nx_ - 1);
  const Coord qy0 = std::max<Coord>(gridY(q.y0), 0);
  const Coord qy1 = std::min<Coord>(gridY(q.y1), ny_ - 1);
  for (Coord gy = qy0; gy <= qy1; ++gy) {
    for (Coord gx = qx0; gx <= qx1; ++gx) {
      const std::size_t c = static_cast<std::size_t>(gy * nx_ + gx);
      for (std::uint32_t k = start_[c]; k < start_[c + 1]; ++k) {
        const std::uint32_t i = items_[k];
        const Rect sb = segs_[i].bbox();
        // Report a multi-cell segment only from its first cell inside
        // the query window — dedup without mutable state.
        if (std::max(gridX(sb.x0), qx0) != gx || std::max(gridY(sb.y0), qy0) != gy) {
          continue;
        }
        if (segmentTouchesRect(segs_[i], q)) out.push_back(static_cast<int>(i));
      }
    }
  }
  // Ascending order so consumers visit edges exactly as a brute scan
  // would — indexed and brute results stay bit-identical.
  std::sort(out.begin(), out.end());
}

std::vector<int> SegmentIndex::queryTouching(const Rect& q) const {
  std::vector<int> out;
  queryTouching(q, out);
  return out;
}

void SegmentIndex::queryWithin(const Rect& q, Coord margin, std::vector<int>& out) const {
  // gap(s, q) <= m  <=>  s touches q expanded by m on every side.
  queryTouching(q.expandedXY(margin, margin), out);
}

std::vector<int> SegmentIndex::queryWithin(const Rect& q, Coord margin) const {
  std::vector<int> out;
  queryWithin(q, margin, out);
  return out;
}

}  // namespace bb::geom
