#include "geom/transform.hpp"

namespace bb::geom {

std::string_view name(Orientation o) noexcept {
  switch (o) {
    case Orientation::R0: return "R0";
    case Orientation::R90: return "R90";
    case Orientation::R180: return "R180";
    case Orientation::R270: return "R270";
    case Orientation::MX: return "MX";
    case Orientation::MX90: return "MX90";
    case Orientation::MY: return "MY";
    case Orientation::MY90: return "MY90";
  }
  return "?";
}

Point apply(Orientation o, Point p) noexcept {
  switch (o) {
    case Orientation::R0: return p;
    case Orientation::R90: return {-p.y, p.x};
    case Orientation::R180: return {-p.x, -p.y};
    case Orientation::R270: return {p.y, -p.x};
    case Orientation::MX: return {p.x, -p.y};
    case Orientation::MX90: return {p.y, p.x};
    case Orientation::MY: return {-p.x, p.y};
    case Orientation::MY90: return {-p.y, -p.x};
  }
  return p;
}

namespace {
// Encode each orientation as (mirror, rotation) with action r(m(p)):
// index = mirror*4 + rot. Derive the composition table once, by checking
// the action on a probe pair of points that distinguishes all 8 elements.
struct MR {
  bool m;
  int r;
};

constexpr MR decode(Orientation o) noexcept {
  switch (o) {
    case Orientation::R0: return {false, 0};
    case Orientation::R90: return {false, 1};
    case Orientation::R180: return {false, 2};
    case Orientation::R270: return {false, 3};
    case Orientation::MX: return {true, 0};
    case Orientation::MX90: return {true, 1};
    case Orientation::MY: return {true, 2};
    case Orientation::MY90: return {true, 3};
  }
  return {false, 0};
}

constexpr Orientation encode(bool m, int r) noexcept {
  r = ((r % 4) + 4) % 4;
  if (!m) {
    constexpr Orientation rs[4] = {Orientation::R0, Orientation::R90, Orientation::R180,
                                   Orientation::R270};
    return rs[r];
  }
  constexpr Orientation ms[4] = {Orientation::MX, Orientation::MX90, Orientation::MY,
                                 Orientation::MY90};
  return ms[r];
}
}  // namespace

Orientation compose(Orientation a, Orientation b) noexcept {
  // a ∘ b where each acts as rot^r ∘ mirror^m. Using the dihedral
  // relations: rot^ra m^ma ∘ rot^rb m^mb = rot^(ra + (ma? -rb : rb)) m^(ma^mb).
  const MR A = decode(a);
  const MR B = decode(b);
  const int r = A.r + (A.m ? -B.r : B.r);
  return encode(A.m != B.m, r);
}

Orientation inverse(Orientation o) noexcept {
  const MR d = decode(o);
  if (d.m) return o;  // mirrors are involutions in this encoding
  return encode(false, -d.r);
}

Rect Transform::operator()(const Rect& r) const noexcept {
  const Point a = (*this)(Point{r.x0, r.y0});
  const Point b = (*this)(Point{r.x1, r.y1});
  return Rect{a.x, a.y, b.x, b.y};  // Rect ctor normalizes
}

Polygon Transform::operator()(const Polygon& p) const {
  Polygon out;
  out.pts.reserve(p.pts.size());
  for (Point q : p.pts) out.pts.push_back((*this)(q));
  return out;
}

Path Transform::operator()(const Path& p) const {
  Path out;
  out.width = p.width;
  out.pts.reserve(p.pts.size());
  for (Point q : p.pts) out.pts.push_back((*this)(q));
  return out;
}

Transform Transform::operator*(const Transform& b) const noexcept {
  Transform t;
  t.orient = compose(orient, b.orient);
  t.offset = apply(orient, b.offset) + offset;
  return t;
}

Transform Transform::inverted() const noexcept {
  Transform t;
  t.orient = inverse(orient);
  t.offset = apply(t.orient, Point{-offset.x, -offset.y});
  return t;
}

}  // namespace bb::geom
