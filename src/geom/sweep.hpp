/// \file sweep.hpp
/// Boundary-sweep geometry core: exact union area, maximal union
/// decomposition and coverage-gap queries over axis-aligned rects.
///
/// All three primitives share one machine: a sweep over the distinct x
/// edges of the input, maintaining per-slab y coverage in a
/// coverage-count segment tree built over the compressed y edges. Each
/// rect contributes one +1 event at `x0` and one -1 event at `x1`, so a
/// full sweep is O(n log n) — this replaced the O(n^2) slab scan that
/// was the last quadratic core in the verification pipeline (DRC
/// coverage checks, utilization metrics, hole subtraction).
///
/// Everything here is exact integer arithmetic on `Coord`, like the rest
/// of the geometry substrate: results are bit-identical to the brute
/// reference paths (`geom::unionAreaBrute`, `extract::subtractRectsBrute`),
/// which the equivalence tests and `bench_union_scaling` assert on every
/// run. Empty rects are skipped in place — inputs are never reordered or
/// erased, so callers can reuse one scratch vector across calls (DRC
/// does).

#pragma once

#include "geom/geometry.hpp"
#include "geom/rect_index.hpp"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace bb::geom::sweep {

/// Exact area of the union of `rs` in O(n log n). The canonical
/// implementation behind `geom::unionArea`.
[[nodiscard]] Coord unionArea(const std::vector<Rect>& rs);

/// Maximal x-slab decomposition of the union of `rs`: pairwise-disjoint
/// rects whose union is exactly the input union. Each output rect spans
/// a maximal x run over which its exact y interval stays covered, so
/// horizontally-abutting input rects merge and a rect is never split
/// until its y cross-section actually changes. Output size is
/// output-sensitive (worst case O(n^2) for n interleaved strips, O(n)
/// for typical artwork); rects are emitted in (closing-x, then y) order,
/// deterministically.
[[nodiscard]] std::vector<Rect> unionRects(const std::vector<Rect>& rs);

namespace detail {
/// One coverage-tree node: open-rect count over the node's whole range,
/// covered length beneath it. Count and length live side by side
/// because every tree walk reads both — one cache line, not two.
struct TreeNode {
  std::int32_t count = 0;
  Coord covered = 0;
};

/// One sweep event: a rect's vertical edge. `delta` +1 opens the rect's
/// y span at x, -1 closes it; `lo`/`hi` index the compressed y edges
/// (leaf range [lo, hi)).
struct SweepEvent {
  Coord x = 0;
  std::int32_t delta = 0;
  std::uint32_t lo = 0, hi = 0;
};
}  // namespace detail

/// Reusable coverage query: "is `region` fully covered by these rects,
/// and if not, where is a hole?". Holds its scratch buffers across
/// calls so per-rect DRC coverage checks never reallocate; one instance
/// per thread (it is stateful scratch, not shared state).
class CoverageQuery {
 public:
  /// First uncovered sub-rect of `region` (lowest x slab, then lowest y
  /// run), or nullopt when the rects cover `region` exactly. The
  /// witness is one maximal uncovered run within one slab — a
  /// convenient counterexample for diagnostics, not the full gap set.
  /// An empty `region` is trivially covered.
  [[nodiscard]] std::optional<Rect> gap(const Rect& region, const std::vector<Rect>& rects);

  /// Index-backed overload: considers only rects touching `region`
  /// (non-touching rects contribute no coverage, so the answer is
  /// identical to scanning the whole set). This is the incremental
  /// per-feature coverage primitive the DRC width/gate/contact checks
  /// use against the per-layer `RectIndex`.
  [[nodiscard]] std::optional<Rect> gap(const Rect& region, const RectIndex& index);

  /// Convenience: full-coverage predicate.
  [[nodiscard]] bool covers(const Rect& region, const std::vector<Rect>& rects) {
    return !gap(region, rects).has_value();
  }
  [[nodiscard]] bool covers(const Rect& region, const RectIndex& index) {
    return !gap(region, index).has_value();
  }

 private:
  std::vector<Coord> ys_;
  std::vector<detail::SweepEvent> events_;
  std::vector<Rect> clipped_;
  std::vector<Rect> touching_;
  std::vector<int> cand_;
  std::vector<detail::TreeNode> nodes_;
  std::vector<std::pair<Coord, Coord>> runs_;
};

/// One-shot helpers (construct a CoverageQuery internally; hot loops
/// should hold their own instance).
[[nodiscard]] std::optional<Rect> coverageGap(const Rect& region, const std::vector<Rect>& rects);
[[nodiscard]] std::optional<Rect> coverageGap(const Rect& region, const RectIndex& index);

}  // namespace bb::geom::sweep
