/// \file geometry.hpp
/// Integer-grid geometry primitives for mask layout.
///
/// All coordinates are integers on a quarter-lambda grid
/// (`kUnitsPerLambda` units == one Mead–Conway lambda). Using a fixed
/// integer grid keeps every geometric predicate exact — there is no
/// floating point anywhere in the layout pipeline, mirroring the CIF
/// convention of integer centimicrons.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bb::geom {

/// Layout coordinate. 64-bit so chip-scale sums (wire lengths, areas in
/// units^2) never overflow.
using Coord = std::int64_t;

/// Grid resolution: 4 units per lambda (quarter-lambda grid).
inline constexpr Coord kUnitsPerLambda = 4;

/// Convert a lambda count to grid units.
[[nodiscard]] constexpr Coord lambda(Coord n) noexcept { return n * kUnitsPerLambda; }

/// Convert half-lambdas to grid units (many Mead–Conway features sit on
/// half-lambda centers).
[[nodiscard]] constexpr Coord halfLambda(Coord n) noexcept { return n * (kUnitsPerLambda / 2); }

/// A point on the layout grid.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
  constexpr Point operator+(Point o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Point& operator+=(Point o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Point& operator-=(Point o) noexcept { x -= o.x; y -= o.y; return *this; }
};

/// Floor-halve: rounds toward -inf, unlike `/ 2` which truncates toward
/// zero. Midpoints computed this way are translation-invariant — a cell
/// placed in negative coordinate space gets the same (relative) center
/// as its positive-space twin. C++20 guarantees arithmetic shift on
/// signed integers.
[[nodiscard]] constexpr Coord floorHalf(Coord v) noexcept { return v >> 1; }

/// Manhattan distance between two points — the wire-length metric used by
/// the Roto-Router.
[[nodiscard]] constexpr Coord manhattan(Point a, Point b) noexcept {
  const Coord dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// An axis-aligned rectangle, stored normalized (x0<=x1, y0<=y1).
/// Empty rectangles (zero width or height) are representable; `isEmpty`
/// reports them.
struct Rect {
  Coord x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  Rect() = default;
  constexpr Rect(Coord ax0, Coord ay0, Coord ax1, Coord ay1) noexcept
      : x0(std::min(ax0, ax1)), y0(std::min(ay0, ay1)),
        x1(std::max(ax0, ax1)), y1(std::max(ay0, ay1)) {}

  /// Rectangle from center point, width and height (CIF "B" semantics).
  [[nodiscard]] static constexpr Rect fromCenter(Point c, Coord w, Coord h) noexcept {
    return Rect{c.x - w / 2, c.y - h / 2, c.x + w - w / 2, c.y + h - h / 2};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  [[nodiscard]] constexpr Coord width() const noexcept { return x1 - x0; }
  [[nodiscard]] constexpr Coord height() const noexcept { return y1 - y0; }
  [[nodiscard]] constexpr Coord area() const noexcept { return width() * height(); }
  [[nodiscard]] constexpr bool isEmpty() const noexcept { return x0 >= x1 || y0 >= y1; }
  /// Midpoint, rounded toward -inf on odd extents so the result is
  /// translation-invariant (plain `/ 2` would bias negative-space rects
  /// up/right relative to positive-space ones).
  [[nodiscard]] constexpr Point center() const noexcept {
    return {floorHalf(x0 + x1), floorHalf(y0 + y1)};
  }
  [[nodiscard]] constexpr Point lowerLeft() const noexcept { return {x0, y0}; }
  [[nodiscard]] constexpr Point upperRight() const noexcept { return {x1, y1}; }

  /// True if the interiors overlap (shared edges do not count).
  [[nodiscard]] constexpr bool overlaps(const Rect& o) const noexcept {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
  /// True if the rectangles touch or overlap (shared edges count) —
  /// the electrical-connectivity predicate.
  [[nodiscard]] constexpr bool touches(const Rect& o) const noexcept {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
  [[nodiscard]] constexpr bool contains(Point p) const noexcept {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  [[nodiscard]] constexpr bool contains(const Rect& o) const noexcept {
    return o.x0 >= x0 && o.x1 <= x1 && o.y0 >= y0 && o.y1 <= y1;
  }

  [[nodiscard]] constexpr Rect translated(Point d) const noexcept {
    return Rect{x0 + d.x, y0 + d.y, x1 + d.x, y1 + d.y};
  }
  /// Grow by `m` on every side (negative shrinks; may produce empty).
  [[nodiscard]] Rect expanded(Coord m) const noexcept;
  /// Grow by `dx` horizontally and `dy` vertically (negative shrinks;
  /// an over-shrunk axis collapses to its midline). The margin-query
  /// primitive of the spatial index: `a.gap(b) <= m` is exactly
  /// `a.touches(b.expandedXY(m, m))`.
  [[nodiscard]] constexpr Rect expandedXY(Coord dx, Coord dy) const noexcept {
    Rect r;
    r.x0 = x0 - dx;
    r.y0 = y0 - dy;
    r.x1 = x1 + dx;
    r.y1 = y1 + dy;
    if (r.x0 > r.x1) r.x0 = r.x1 = floorHalf(x0 + x1);
    if (r.y0 > r.y1) r.y0 = r.y1 = floorHalf(y0 + y1);
    return r;
  }

  /// Smallest rectangle covering both (treats empty as identity).
  [[nodiscard]] Rect unionWith(const Rect& o) const noexcept;
  /// Overlap region, or nullopt when interiors are disjoint.
  [[nodiscard]] std::optional<Rect> intersectWith(const Rect& o) const noexcept;
};

/// A simple polygon (implicitly closed, vertices in order).
/// Bristle Blocks cells are overwhelmingly rectilinear but CIF permits
/// arbitrary polygons, so we keep the general form.
struct Polygon {
  std::vector<Point> pts;

  [[nodiscard]] Rect bbox() const noexcept;
  /// Signed area * 2 (shoelace); positive for counter-clockwise.
  [[nodiscard]] Coord signedDoubleArea() const noexcept;
  [[nodiscard]] Coord area() const noexcept;
  [[nodiscard]] Polygon translated(Point d) const;
  [[nodiscard]] bool contains(Point p) const noexcept;
};

/// A wire: an open poly-line with a width (CIF "W" semantics, square
/// extensions at the ends). Segments are expected to be axis-parallel;
/// `toRects` decomposes the path into covering rectangles.
struct Path {
  std::vector<Point> pts;
  Coord width = 0;

  [[nodiscard]] Rect bbox() const noexcept;
  /// Total centerline length (Manhattan).
  [[nodiscard]] Coord length() const noexcept;
  /// Decompose into axis-aligned rectangles (one per segment, with
  /// half-width square end extensions so corners are covered).
  [[nodiscard]] std::vector<Rect> toRects() const;
  [[nodiscard]] Path translated(Point d) const;
};

/// Compute the bounding box of a set of rectangles (empty input -> empty rect).
[[nodiscard]] Rect bboxOf(const std::vector<Rect>& rs) noexcept;

/// Merge touching/overlapping rectangles into maximal disjoint regions
/// ("connected components" under `touches`). Returns one representative
/// bbox per component plus component membership. Used by extraction.
/// Near-linear via a RectIndex (see rect_index.hpp, which also declares
/// the reference `connectedComponentsBrute` the equivalence tests use).
struct RectComponents {
  std::vector<int> componentOf;   ///< component index per input rect
  int count = 0;                  ///< number of components
};
[[nodiscard]] RectComponents connectedComponents(const std::vector<Rect>& rs);

/// Exact area of the union of rectangles. O(n log n): an x-event sweep
/// over a y-compressed coverage-count tree (see sweep.hpp, which also
/// provides union decomposition and coverage-gap queries). Used for
/// utilization metrics and the DRC coverage checks. Non-destructive:
/// empty rects are skipped in place, so callers can reuse their vector
/// (and its capacity) across calls.
[[nodiscard]] Coord unionArea(const std::vector<Rect>& rs);

/// Reference O(n^2) slab-scan union area (the pre-sweep implementation,
/// kept verbatim). The equivalence tests and `bench_union_scaling`
/// assert it matches `unionArea` bit-for-bit on every run; DRC's
/// `useSpatialIndex = false` reference path still calls it.
[[nodiscard]] Coord unionAreaBrute(const std::vector<Rect>& rs);

[[nodiscard]] std::string toString(Point p);
[[nodiscard]] std::string toString(const Rect& r);

}  // namespace bb::geom
