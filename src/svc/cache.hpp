/// \file cache.hpp
/// Content-addressed chip cache — the memory behind the compile service.
///
/// Entries are immutable compiled chips keyed by `core::requestDigest`:
/// the FNV-1a digest of the canonical `icl::ChipDesc::toString()` (the
/// documented hashing contract — deterministic, construction-order
/// independent) folded with the full `CompileOptions` fingerprint. Two
/// requests for the same design with the same options share one entry;
/// the same design with different options never collides on purpose.
///
/// Replacement is LRU under a byte budget: every entry is charged its
/// `CompiledChip::approxBytes()` (or an explicit size), a lookup bumps
/// the entry to most-recently-used, and an insert evicts from the cold
/// end until the budget holds. One entry larger than the whole budget is
/// refused outright (never cached) rather than evicting everything else
/// for a chip that can't fit anyway. All operations are mutex-guarded;
/// handles are `shared_ptr<const CompiledChip>`, so an evicted chip stays
/// alive for whoever is still emitting from it.

#pragma once

#include "core/chip.hpp"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace bb::svc {

using ChipHandle = std::shared_ptr<const core::CompiledChip>;

/// Counters, all monotonic except the gauges (`entries`, `bytes`).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;      ///< entries pushed out by the budget
  std::uint64_t rejectedOversize = 0;  ///< single entries larger than the budget
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t budgetBytes = 0;

  [[nodiscard]] double hitRate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ChipCache {
 public:
  /// `budgetBytes` == 0 disables caching entirely (every find misses,
  /// every insert is rejected) — useful for measuring cold-path cost.
  explicit ChipCache(std::size_t budgetBytes) : budget_(budgetBytes) {}

  ChipCache(const ChipCache&) = delete;
  ChipCache& operator=(const ChipCache&) = delete;

  /// Lookup; a hit bumps the entry to most-recently-used. Null on miss.
  [[nodiscard]] ChipHandle find(std::uint64_t key);

  /// Insert (or replace) under `key`. `bytes` == 0 charges
  /// `chip->approxBytes()`. Evicts LRU entries until the budget holds;
  /// refuses (and drops) an entry that alone exceeds the budget.
  void insert(std::uint64_t key, ChipHandle chip, std::size_t bytes = 0);

  /// Present without touching recency or hit/miss counters.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t budgetBytes() const noexcept { return budget_; }
  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    ChipHandle chip;
    std::size_t bytes = 0;
  };

  void evictUntilFits();  // caller holds mu_

  const std::size_t budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  CacheStats stats_;
};

}  // namespace bb::svc
