#include "svc/cache.hpp"

namespace bb::svc {

ChipHandle ChipCache::find(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recently-used
  return it->second->chip;
}

void ChipCache::insert(std::uint64_t key, ChipHandle chip, std::size_t bytes) {
  if (chip == nullptr) return;
  if (bytes == 0) bytes = chip->approxBytes();
  const std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_) {
    ++stats_.rejectedOversize;
    // An existing (smaller) entry under this key stays — it still fits.
    return;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(chip), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  ++stats_.insertions;
  evictUntilFits();
}

void ChipCache::evictUntilFits() {
  while (bytes_ > budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool ChipCache::contains(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

void ChipCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

std::size_t ChipCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t ChipCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

CacheStats ChipCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  out.budgetBytes = budget_;
  return out;
}

}  // namespace bb::svc
