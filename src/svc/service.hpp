/// \file service.hpp
/// The compile service — the long-running front door the production
/// story needs: concurrent compile/emit/viewport requests over one
/// process-wide content-addressed chip cache, instead of a batch CLI
/// that recompiles the world every invocation.
///
/// A `CompileService` composes the pieces the repo already has:
///  * requests carry source text or a typed `icl::ChipDesc` plus
///    per-request `CompileOptions` — exactly a `CompileSession`'s inputs;
///  * results are cached in a `ChipCache` keyed by
///    `core::requestDigest` (canonical description text + options
///    fingerprint), so identical designs are never compiled twice;
///  * duplicate concurrent requests for the same key are single-flighted:
///    one thread compiles, the rest wait on the result instead of
///    burning cores on identical work;
///  * `compileAll` runs a request batch as *pipelined stage tasks* on
///    the process-shared `core::ThreadPool`: each request's compile is
///    a chain of per-stage tasks, so one chip's parse overlaps another
///    chip's pass2, every request still goes through the cache and the
///    single-flight gate, and a request that dedups against an
///    in-flight twin parks a completion callback instead of blocking a
///    pool worker;
///  * `viewport` answers pan/zoom requests on cached chips by streaming
///    `layout::View` tiles through the `reps::EmitterOptions` path — a
///    warm viewport request runs zero compile stages (asserted by tests
///    and the service load bench via `ServiceStats::compilesExecuted`).
///
/// Thread safety: every public method may be called concurrently.
/// Chips entering the cache are prewarmed (`flatTop`/`flatCore`
/// flattens, the `hierTop` hierarchical index, and their spatial
/// indexes built) before they become visible, so concurrent viewport
/// queries — flat or hierarchical — only ever perform const reads on
/// shared chips.

#pragma once

#include "core/options.hpp"
#include "core/session.hpp"
#include "reps/emitter.hpp"
#include "svc/cache.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace bb::svc {

struct ServiceOptions {
  /// Lane width for `compileAll` on the process-shared
  /// `core::ThreadPool` (0 = full pool width: workers + caller). A
  /// *budget on one pool*, not a thread count: requests whose compiles
  /// go parallel underneath (threaded DRC via `DrcOptions::threads`,
  /// parallel tile emission) draw from the same pool, so nesting never
  /// multiplies threads or oversubscribes the machine.
  unsigned threads = 0;
  /// Chip-cache byte budget (0 disables caching).
  std::size_t cacheBudgetBytes = 64ull << 20;
  /// Prewarm flattens + spatial indexes before a chip enters the cache
  /// (on for services sharing chips across threads; off saves the
  /// prewarm cost in single-threaded embedding).
  bool prewarmChips = true;
};

/// One compile request: a design (typed description, or source text to
/// parse) plus the options to compile it under.
struct CompileRequest {
  std::string name;                   ///< label for logs/reports
  std::string source;                 ///< ICL text (ignored when desc set)
  std::optional<icl::ChipDesc> desc;  ///< typed description (preferred)
  core::CompileOptions opts;

  [[nodiscard]] static CompileRequest ofSource(std::string name, std::string source,
                                               core::CompileOptions opts = {}) {
    CompileRequest r;
    r.name = std::move(name);
    r.source = std::move(source);
    r.opts = std::move(opts);
    return r;
  }
  [[nodiscard]] static CompileRequest ofDesc(icl::ChipDesc desc,
                                             core::CompileOptions opts = {}) {
    CompileRequest r;
    r.name = desc.name;
    r.desc = std::move(desc);
    r.opts = std::move(opts);
    return r;
  }
};

struct CompileResponse {
  ChipHandle chip;  ///< null on failure (see diags)
  icl::DiagnosticList diags;
  std::uint64_t key = 0;      ///< content address (0 when unkeyable: parse failed)
  bool cacheHit = false;      ///< served straight from the chip cache
  bool deduped = false;       ///< waited on an identical in-flight compile
  std::chrono::nanoseconds latency{};

  [[nodiscard]] bool ok() const noexcept { return chip != nullptr; }
};

/// A lint request: identifies a chip like a compile request, plus the
/// analysis options. Any `lint` block inside `chip.opts` is ignored —
/// the chip is compiled *without* lint (sharing its cache entry with
/// plain compiles of the same design) and the analysis is keyed and
/// cached separately, so re-linting a warm chip under new rule options
/// never re-runs a compile stage.
struct LintRequest {
  CompileRequest chip;
  lint::LintOptions lint;
};

struct LintResponse {
  std::shared_ptr<const lint::LintReport> report;  ///< null when the compile failed
  icl::DiagnosticList diags;                       ///< compile diagnostics
  std::uint64_t key = 0;      ///< report content address (chip key + lint options)
  std::uint64_t chipKey = 0;  ///< the underlying chip's content address
  bool chipCacheHit = false;   ///< the chip came from the cache (no stages ran)
  bool reportCacheHit = false; ///< the report came from the report cache (no rules ran)
  std::chrono::nanoseconds latency{};

  [[nodiscard]] bool ok() const noexcept { return report != nullptr; }
};

/// A viewport (pan/zoom) request: identifies a chip like a compile
/// request, plus the window to stream and the format to stream it in.
struct ViewportRequest {
  CompileRequest chip;
  std::string format = "cif";  ///< any registered emitter name
  std::optional<geom::Rect> window;  ///< unset = whole artwork
  geom::Coord tileSize = 0;
  bool mergeTiles = false;
  /// Clip window-crossing polygons to the window (`geom::poly`); off
  /// streams whole bbox-touching polygons (the pre-clip behavior).
  bool clipPolygons = true;
  /// Serve the window from the chip's hierarchical index
  /// (`CompiledChip::hierTop`) instead of the full flatten: only the
  /// instances whose bboxes touch the window are resolved (asserted via
  /// `cell::HierIndex::instancesMaterialized`). Prewarmed chips build
  /// the index before entering the cache, so a warm hierarchical
  /// viewport still runs zero compile stages and const reads only.
  bool hierarchical = false;
};

struct EmitResponse {
  std::string payload;  ///< the emitted artifact (empty on failure)
  icl::DiagnosticList diags;
  std::uint64_t key = 0;
  bool ok = false;
  bool cacheHit = false;  ///< the chip came from the cache (no stages ran)
  std::chrono::nanoseconds latency{};
};

/// Request-level counters (the cache keeps its own byte/entry stats).
struct ServiceStats {
  std::uint64_t compileRequests = 0;
  std::uint64_t emitRequests = 0;
  std::uint64_t viewportRequests = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t compilesExecuted = 0;  ///< full pipeline runs (cache misses)
  std::uint64_t dedupedInFlight = 0;   ///< requests that waited on a twin
  std::uint64_t failures = 0;          ///< compiles that produced no chip
  std::uint64_t lintRequests = 0;
  std::uint64_t lintReportHits = 0;    ///< lint answers served from the report cache
  /// Snapshot of `core::ThreadPool::global().tasksExecuted()` — total
  /// pool tasks ever run process-wide (not just by this service).
  std::uint64_t poolTasksExecuted = 0;
  /// Snapshot of `threadsSpawned()`: worker threads ever created by the
  /// shared pool. Flat across a warm serving phase proves the hot path
  /// spawned zero threads (asserted by the service load bench).
  std::uint64_t poolThreadsSpawned = 0;

  [[nodiscard]] double hitRate() const noexcept {
    const double total = static_cast<double>(cacheHits + cacheMisses);
    return total > 0 ? static_cast<double>(cacheHits) / total : 0.0;
  }
};

class CompileService {
 public:
  explicit CompileService(ServiceOptions opts = {});

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Compile (or fetch) the requested chip. Concurrent calls with the
  /// same content address are single-flighted.
  [[nodiscard]] CompileResponse compile(const CompileRequest& req);

  /// Run a request mix as pipelined stage tasks on the shared pool;
  /// responses come back in request order, each `latency` measured from
  /// `compileAll` entry (sojourn time). At most `ServiceOptions::threads`
  /// lanes are admitted at once, but stages interleave freely across
  /// lanes, so small requests stream past big ones. Failed requests
  /// carry diagnostics, never abort the batch.
  [[nodiscard]] std::vector<CompileResponse> compileAll(std::vector<CompileRequest> reqs);

  /// Compile (or fetch) and emit in `format` with full emitter options.
  [[nodiscard]] EmitResponse emit(const CompileRequest& req, std::string_view format,
                                  const reps::EmitterOptions& eopts = {});

  /// Statically analyze the requested chip (compiling or fetching it
  /// first). Reports are cached by chip key + lint-option fingerprint;
  /// on a warm chip cache this runs zero compile stages, and on a warm
  /// report cache zero rules.
  [[nodiscard]] LintResponse lint(const LintRequest& req);

  /// The map-server endpoint: stream the requested window of the chip's
  /// artwork, tile by tile, through the windowed emitter path. On a warm
  /// cache this runs zero compile stages — pan/zoom over a compiled chip
  /// costs only index queries over the window's geometry.
  [[nodiscard]] EmitResponse viewport(const ViewportRequest& req);

  /// The content address `compile(req)` would use; nullopt when the
  /// request's source text does not parse.
  [[nodiscard]] std::optional<std::uint64_t> keyFor(const CompileRequest& req) const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] ChipCache& cache() noexcept { return cache_; }
  [[nodiscard]] const ChipCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }

 private:
  struct BatchState;

  [[nodiscard]] EmitResponse emitImpl(const CompileRequest& req, std::string_view format,
                                      const reps::EmitterOptions& eopts);

  // Pipelined compileAll machinery: admit a lane, run one request's
  // cache/claim step, chain its compile stages, retire it.
  void batchAdmit(BatchState& b);
  void batchStep(BatchState& b, std::size_t i);
  void batchStage(BatchState& b, std::size_t i,
                  std::shared_ptr<core::CompileSession> sess, std::uint64_t key);
  void batchDone(BatchState& b, std::size_t i);

  /// Retire a claimed key: record stats, publish the outcome to blocking
  /// twins (cv_) and to parked batch waiters (their callbacks run here,
  /// on the claimant's thread, after mu_ is released).
  void finishKey(std::uint64_t key, const ChipHandle& handle);

  ServiceOptions opts_;
  ChipCache cache_;

  mutable std::mutex mu_;  ///< guards stats_, in-flight set, key waiters
  std::condition_variable cv_;
  std::unordered_set<std::uint64_t> inflight_;
  /// Parked completion callbacks of batch requests that deduped against
  /// an in-flight key; invoked by `finishKey` with the claimant's result
  /// (null handle = the claimant failed, waiters retry).
  std::unordered_map<std::uint64_t, std::vector<std::function<void(const ChipHandle&)>>>
      keyWaiters_;
  /// Lint reports by report key (chip key + lint-option fingerprint);
  /// guarded by mu_. Reports are small (findings, not geometry), so no
  /// byte budget — the chip cache's eviction pressure bounds variety.
  /// (Qualified: the `lint` member function shadows the namespace here.)
  std::unordered_map<std::uint64_t, std::shared_ptr<const bb::lint::LintReport>> lintReports_;
  ServiceStats stats_;
};

}  // namespace bb::svc
