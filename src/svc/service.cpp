#include "svc/service.hpp"

#include "core/fingerprint.hpp"
#include "core/workqueue.hpp"
#include "icl/parser.hpp"

#include <sstream>
#include <utility>

namespace bb::svc {

namespace {

using Clock = std::chrono::steady_clock;

void mergeInto(icl::DiagnosticList& dst, const icl::DiagnosticList& src) {
  for (const icl::Diagnostic& d : src.all()) {
    switch (d.severity) {
      case icl::Severity::Error: dst.error(d.loc, d.message); break;
      case icl::Severity::Warning: dst.warning(d.loc, d.message); break;
      case icl::Severity::Note: dst.note(d.loc, d.message); break;
    }
  }
}

/// The request's typed description: the one it carries, or its source
/// text parsed (diagnostics land in `diags`). Nullopt when unparseable.
std::optional<icl::ChipDesc> resolveDesc(const CompileRequest& req,
                                         icl::DiagnosticList& diags) {
  if (req.desc.has_value()) return req.desc;
  auto parsed = icl::parseChip(req.source, diags);
  if (!parsed) return std::nullopt;
  return std::move(*parsed);
}

}  // namespace

CompileService::CompileService(ServiceOptions opts)
    : opts_(opts), cache_(opts.cacheBudgetBytes) {}

std::optional<std::uint64_t> CompileService::keyFor(const CompileRequest& req) const {
  icl::DiagnosticList diags;
  const std::optional<icl::ChipDesc> desc = resolveDesc(req, diags);
  if (!desc.has_value()) return std::nullopt;
  return core::requestDigest(*desc, req.opts);
}

CompileResponse CompileService::compile(const CompileRequest& req) {
  const auto t0 = Clock::now();
  CompileResponse resp;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compileRequests;
  }

  // Canonicalize the design first: source text is parsed once, and the
  // parsed description is both the cache key's input and the compile's,
  // so a source request and its typed twin share one cache entry.
  const std::optional<icl::ChipDesc> desc = resolveDesc(req, resp.diags);
  if (!desc.has_value()) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
    resp.latency = Clock::now() - t0;
    return resp;
  }
  resp.key = core::requestDigest(*desc, req.opts);

  // Cache lookup + single-flight claim. Whoever claims the key compiles;
  // twins wait and re-check the cache when the compiler finishes.
  bool weCompile = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (ChipHandle hit = cache_.find(resp.key)) {
        ++stats_.cacheHits;
        resp.chip = std::move(hit);
        resp.cacheHit = true;
        resp.latency = Clock::now() - t0;
        return resp;
      }
      if (inflight_.insert(resp.key).second) {
        ++stats_.cacheMisses;
        weCompile = true;
        break;
      }
      ++stats_.dedupedInFlight;
      resp.deduped = true;
      cv_.wait(lock);
    }
  }
  (void)weCompile;

  // Compile outside the lock: the service stays responsive while a big
  // chip builds. The session is over the canonical description, so the
  // result is bit-identical to the typed-frontend path.
  core::CompileSession session(*desc, req.opts);
  auto result = session.run();
  ChipHandle handle;
  if (result) {
    handle = ChipHandle(std::move(*result));
    if (opts_.prewarmChips) {
      // Build the flattens and per-layer spatial indexes before the chip
      // becomes shared: later viewport/emit reads are then const-only.
      handle->flatTop().buildIndexes();
      handle->flatCore().buildIndexes();
    }
    cache_.insert(resp.key, handle);
  }
  mergeInto(resp.diags, result.diagnostics());

  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compilesExecuted;
    if (handle == nullptr) ++stats_.failures;
    inflight_.erase(resp.key);
  }
  cv_.notify_all();

  resp.chip = std::move(handle);
  resp.latency = Clock::now() - t0;
  return resp;
}

std::vector<CompileResponse> CompileService::compileAll(std::vector<CompileRequest> reqs) {
  std::vector<CompileResponse> out(reqs.size());
  core::runWorkQueue(reqs.size(), opts_.threads,
                     [&](std::size_t i) { out[i] = compile(reqs[i]); });
  return out;
}

EmitResponse CompileService::emit(const CompileRequest& req, std::string_view format,
                                  const reps::EmitterOptions& eopts) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.emitRequests;
  }
  return emitImpl(req, format, eopts);
}

EmitResponse CompileService::emitImpl(const CompileRequest& req, std::string_view format,
                                      const reps::EmitterOptions& eopts) {
  const auto t0 = Clock::now();
  EmitResponse resp;
  CompileResponse compiled = compile(req);
  resp.diags = std::move(compiled.diags);
  resp.key = compiled.key;
  resp.cacheHit = compiled.cacheHit;
  if (!compiled.ok()) {
    resp.latency = Clock::now() - t0;
    return resp;
  }
  std::ostringstream os;
  if (!reps::EmitterRegistry::global().emit(*compiled.chip, format, os, eopts)) {
    resp.diags.error({}, "unknown emitter format '" + std::string(format) + "'");
    resp.latency = Clock::now() - t0;
    return resp;
  }
  resp.payload = std::move(os).str();
  resp.ok = true;
  resp.latency = Clock::now() - t0;
  return resp;
}

EmitResponse CompileService::viewport(const ViewportRequest& req) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.viewportRequests;
  }
  reps::EmitterOptions eopts;
  eopts.window = req.window;
  eopts.tileSize = req.tileSize;
  eopts.mergeTiles = req.mergeTiles;
  return emitImpl(req.chip, req.format, eopts);
}

ServiceStats CompileService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace bb::svc
