#include "svc/service.hpp"

#include "core/fingerprint.hpp"
#include "core/pool.hpp"
#include "icl/parser.hpp"
#include "lint/lint.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

namespace bb::svc {

namespace {

using Clock = std::chrono::steady_clock;

void mergeInto(icl::DiagnosticList& dst, const icl::DiagnosticList& src) {
  for (const icl::Diagnostic& d : src.all()) {
    switch (d.severity) {
      case icl::Severity::Error: dst.error(d.loc, d.message); break;
      case icl::Severity::Warning: dst.warning(d.loc, d.message); break;
      case icl::Severity::Note: dst.note(d.loc, d.message); break;
    }
  }
}

/// The request's typed description: the one it carries, or its source
/// text parsed (diagnostics land in `diags`). Nullopt when unparseable.
std::optional<icl::ChipDesc> resolveDesc(const CompileRequest& req,
                                         icl::DiagnosticList& diags) {
  if (req.desc.has_value()) return req.desc;
  auto parsed = icl::parseChip(req.source, diags);
  if (!parsed) return std::nullopt;
  return std::move(*parsed);
}

}  // namespace

CompileService::CompileService(ServiceOptions opts)
    : opts_(opts), cache_(opts.cacheBudgetBytes) {}

std::optional<std::uint64_t> CompileService::keyFor(const CompileRequest& req) const {
  icl::DiagnosticList diags;
  const std::optional<icl::ChipDesc> desc = resolveDesc(req, diags);
  if (!desc.has_value()) return std::nullopt;
  return core::requestDigest(*desc, req.opts);
}

CompileResponse CompileService::compile(const CompileRequest& req) {
  const auto t0 = Clock::now();
  CompileResponse resp;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compileRequests;
  }

  // Canonicalize the design first: source text is parsed once, and the
  // parsed description is both the cache key's input and the compile's,
  // so a source request and its typed twin share one cache entry.
  const std::optional<icl::ChipDesc> desc = resolveDesc(req, resp.diags);
  if (!desc.has_value()) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
    resp.latency = Clock::now() - t0;
    return resp;
  }
  resp.key = core::requestDigest(*desc, req.opts);

  // Cache lookup + single-flight claim. Whoever claims the key compiles;
  // twins wait and re-check the cache when the compiler finishes.
  bool weCompile = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (ChipHandle hit = cache_.find(resp.key)) {
        ++stats_.cacheHits;
        resp.chip = std::move(hit);
        resp.cacheHit = true;
        resp.latency = Clock::now() - t0;
        return resp;
      }
      if (inflight_.insert(resp.key).second) {
        ++stats_.cacheMisses;
        weCompile = true;
        break;
      }
      ++stats_.dedupedInFlight;
      resp.deduped = true;
      cv_.wait(lock);
    }
  }
  (void)weCompile;

  // Compile outside the lock: the service stays responsive while a big
  // chip builds. The session is over the canonical description, so the
  // result is bit-identical to the typed-frontend path.
  core::CompileSession session(*desc, req.opts);
  auto result = session.run();
  ChipHandle handle;
  if (result) {
    handle = ChipHandle(std::move(*result));
    if (opts_.prewarmChips) {
      // Build the flattens, the hierarchical index and the per-layer
      // spatial indexes before the chip becomes shared: later
      // viewport/emit reads (flat or hierarchical) are then const-only.
      handle->flatTop().buildIndexes();
      handle->flatCore().buildIndexes();
      handle->hierTop().buildIndexes();
    }
    cache_.insert(resp.key, handle);
  }
  mergeInto(resp.diags, result.diagnostics());
  finishKey(resp.key, handle);

  resp.chip = std::move(handle);
  resp.latency = Clock::now() - t0;
  return resp;
}

void CompileService::finishKey(std::uint64_t key, const ChipHandle& handle) {
  std::vector<std::function<void(const ChipHandle&)>> waiters;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compilesExecuted;
    if (handle == nullptr) ++stats_.failures;
    inflight_.erase(key);
    if (const auto it = keyWaiters_.find(key); it != keyWaiters_.end()) {
      waiters = std::move(it->second);
      keyWaiters_.erase(it);
    }
  }
  cv_.notify_all();
  for (const auto& w : waiters) w(handle);
}

/// One pipelined compileAll call: shared by every task the batch
/// schedules. Lives on the calling thread's stack — `compileAll` does
/// not return until `remaining` hits zero, so captured references into
/// it stay valid for every task and parked callback.
struct CompileService::BatchState {
  std::vector<CompileRequest>& reqs;
  std::vector<CompileResponse>& out;
  core::TaskGroup group;
  Clock::time_point start = Clock::now();
  std::atomic<std::size_t> next{0};  ///< lane-admission cursor
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining;  ///< requests not yet retired; guarded by mu

  BatchState(std::vector<CompileRequest>& reqs, std::vector<CompileResponse>& out)
      : reqs(reqs), out(out), remaining(reqs.size()) {}
};

void CompileService::batchAdmit(BatchState& b) {
  const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
  if (i >= b.reqs.size()) return;
  b.group.run([this, &b, i] { batchStep(b, i); });
}

void CompileService::batchDone(BatchState& b, std::size_t i) {
  b.out[i].latency = Clock::now() - b.start;  // sojourn, not service time
  {
    const std::lock_guard<std::mutex> lock(b.mu);
    --b.remaining;
  }
  b.cv.notify_all();
  batchAdmit(b);  // keep the lane busy
}

void CompileService::batchStep(BatchState& b, std::size_t i) {
  // A retry (after a failed claimant) starts from a clean response;
  // only the deduped flag survives, it records history.
  const bool wasDeduped = b.out[i].deduped;
  b.out[i] = CompileResponse{};
  CompileResponse& resp = b.out[i];
  resp.deduped = wasDeduped;

  const CompileRequest& req = b.reqs[i];
  const std::optional<icl::ChipDesc> desc = resolveDesc(req, resp.diags);
  if (!desc.has_value()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
    }
    batchDone(b, i);
    return;
  }
  resp.key = core::requestDigest(*desc, req.opts);

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (ChipHandle hit = cache_.find(resp.key)) {
      ++stats_.cacheHits;
      resp.chip = std::move(hit);
      resp.cacheHit = true;
      lock.unlock();
      batchDone(b, i);
      return;
    }
    if (!inflight_.insert(resp.key).second) {
      // A twin holds this key. Unlike `compile()`, don't block a pool
      // task on it — park a callback and yield the thread; `finishKey`
      // fires it with the claimant's outcome.
      ++stats_.dedupedInFlight;
      resp.deduped = true;
      keyWaiters_[resp.key].push_back([this, &b, i](const ChipHandle& handle) {
        if (handle != nullptr) {
          {
            const std::lock_guard<std::mutex> lock2(mu_);
            ++stats_.cacheHits;
          }
          b.out[i].chip = handle;
          b.out[i].cacheHit = true;
          batchDone(b, i);
        } else {
          // Claimant failed: re-run the step (mirrors the blocking
          // path's wake-and-recheck loop; this request may claim now).
          b.group.run([this, &b, i] { batchStep(b, i); });
        }
      });
      return;
    }
    ++stats_.cacheMisses;
  }

  // We claimed the key: compile as a chain of per-stage tasks so other
  // requests' stages interleave with this one's.
  batchStage(b, i, std::make_shared<core::CompileSession>(*desc, req.opts), resp.key);
}

void CompileService::batchStage(BatchState& b, std::size_t i,
                                std::shared_ptr<core::CompileSession> sess,
                                std::uint64_t key) {
  sess->runNext();
  if (!sess->failed() && !sess->finished()) {
    b.group.run([this, &b, i, sess = std::move(sess), key] { batchStage(b, i, sess, key); });
    return;
  }
  CompileResponse& resp = b.out[i];
  ChipHandle handle;
  if (sess->finished()) {
    handle = ChipHandle(sess->takeChip());
    if (opts_.prewarmChips) {
      handle->flatTop().buildIndexes();
      handle->flatCore().buildIndexes();
      handle->hierTop().buildIndexes();
    }
    cache_.insert(key, handle);
  }
  mergeInto(resp.diags, sess->diagnostics());
  finishKey(key, handle);
  resp.chip = std::move(handle);
  batchDone(b, i);
}

std::vector<CompileResponse> CompileService::compileAll(std::vector<CompileRequest> reqs) {
  std::vector<CompileResponse> out(reqs.size());
  if (reqs.empty()) return out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.compileRequests += reqs.size();
  }

  core::ThreadPool& pool = core::ThreadPool::global();
  const unsigned poolWidth = pool.workerCount() + 1;
  const unsigned width =
      opts_.threads == 0 ? poolWidth : std::min(opts_.threads, poolWidth);

  BatchState b(reqs, out);
  const std::size_t lanes = std::min<std::size_t>(width, reqs.size());
  for (std::size_t l = 0; l < lanes; ++l) batchAdmit(b);

  // The caller participates as a lane worker via group.wait(). The group
  // can drain while requests are still parked on an external claimant's
  // key (their callbacks arrive from that thread), so retire the batch
  // on `remaining`, not on task count.
  for (;;) {
    b.group.wait();
    std::unique_lock<std::mutex> lk(b.mu);
    if (b.remaining == 0) break;
    b.cv.wait_for(lk, std::chrono::milliseconds(1),
                  [&] { return b.remaining == 0; });
    if (b.remaining == 0) break;
  }
  return out;
}

EmitResponse CompileService::emit(const CompileRequest& req, std::string_view format,
                                  const reps::EmitterOptions& eopts) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.emitRequests;
  }
  return emitImpl(req, format, eopts);
}

EmitResponse CompileService::emitImpl(const CompileRequest& req, std::string_view format,
                                      const reps::EmitterOptions& eopts) {
  const auto t0 = Clock::now();
  EmitResponse resp;
  CompileResponse compiled = compile(req);
  resp.diags = std::move(compiled.diags);
  resp.key = compiled.key;
  resp.cacheHit = compiled.cacheHit;
  if (!compiled.ok()) {
    resp.latency = Clock::now() - t0;
    return resp;
  }
  std::ostringstream os;
  if (!reps::EmitterRegistry::global().emit(*compiled.chip, format, os, eopts)) {
    resp.diags.error({}, "unknown emitter format '" + std::string(format) + "'");
    resp.latency = Clock::now() - t0;
    return resp;
  }
  resp.payload = std::move(os).str();
  resp.ok = true;
  resp.latency = Clock::now() - t0;
  return resp;
}

LintResponse CompileService::lint(const LintRequest& req) {
  const auto t0 = Clock::now();
  LintResponse resp;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lintRequests;
  }

  // Compile (or fetch) the chip *without* lint options: the chip cache
  // entry is the same one plain compiles of this design use, so a warm
  // cache answers with zero compile stages. (`bb::lint` is written out
  // below because the member function shadows the namespace.)
  CompileRequest creq = req.chip;
  creq.opts.lint = bb::lint::LintOptions{};
  CompileResponse compiled = compile(creq);
  resp.diags = std::move(compiled.diags);
  resp.chipKey = compiled.key;
  resp.chipCacheHit = compiled.cacheHit;
  if (!compiled.ok()) {
    resp.latency = Clock::now() - t0;
    return resp;
  }

  // Report key: the chip's content address folded with the
  // result-affecting lint options (thread width excluded by design).
  core::Digest d{compiled.key};
  d.update(std::string_view{"bb-lint-report-v1"});
  core::updateDigest(d, req.lint);
  resp.key = d.value();

  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = lintReports_.find(resp.key); it != lintReports_.end()) {
      ++stats_.lintReportHits;
      resp.report = it->second;
      resp.reportCacheHit = true;
    }
  }
  if (resp.report == nullptr) {
    // Concurrent misses on one key may both analyze; the run is pure and
    // deterministic, so the duplicated work is identical and harmless
    // (no single-flight needed for an in-memory analysis).
    auto report = std::make_shared<const bb::lint::LintReport>(
        bb::lint::lintChip(*compiled.chip, req.lint));
    {
      const std::lock_guard<std::mutex> lock(mu_);
      lintReports_.emplace(resp.key, report);
    }
    resp.report = std::move(report);
  }
  resp.latency = Clock::now() - t0;
  return resp;
}

EmitResponse CompileService::viewport(const ViewportRequest& req) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.viewportRequests;
  }
  reps::EmitterOptions eopts;
  eopts.window = req.window;
  eopts.tileSize = req.tileSize;
  eopts.mergeTiles = req.mergeTiles;
  eopts.clipPolygons = req.clipPolygons;
  eopts.hierarchical = req.hierarchical;
  return emitImpl(req.chip, req.format, eopts);
}

ServiceStats CompileService::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  s.poolTasksExecuted = core::ThreadPool::global().tasksExecuted();
  s.poolThreadsSpawned = core::ThreadPool::global().threadsSpawned();
  return s;
}

}  // namespace bb::svc
