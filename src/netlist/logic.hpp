/// \file logic.hpp
/// Gate-level logic model — the paper's "Logic" representation ("a logic
/// diagram of the chip in the TTL style") and the substrate the simulator
/// executes. Element generators emit one LogicModel fragment per element;
/// the compiler links fragments over the shared buses and control lines.
///
/// The primitive set models the two-phase nMOS discipline directly:
/// precharged buses with wired pull-downs, clock-qualified pass latches,
/// and static inverting gates.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bb::netlist {

/// Logic levels: unknown propagates, Z only appears on undriven buses.
enum class Level : std::uint8_t { L0, L1, LX, LZ };

[[nodiscard]] char levelChar(Level l) noexcept;
[[nodiscard]] Level levelFromBool(bool b) noexcept;

/// Primitive kinds.
enum class GateKind : std::uint8_t {
  Inv,        ///< out = not in[0]
  Buf,        ///< out = in[0]
  Nand,       ///< out = not (and of inputs)
  Nor,        ///< out = not (or of inputs)
  And,        ///< out = and of inputs
  Or,         ///< out = or of inputs
  Xor,        ///< out = parity of inputs
  Latch,      ///< in[1] high -> out = in[0]; else hold (pass-gate latch)
  Precharge,  ///< in[0] (clock) high -> bus out precharges toward 1
  PullDown,   ///< in all high -> bus out pulled to 0 (series chain)
  Drive,      ///< in[1] high -> bus out driven to in[0] (pad / port driver)
  Const0,
  Const1,
};

[[nodiscard]] std::string_view gateName(GateKind k) noexcept;

/// True for kinds whose output is a bus contribution (wired logic)
/// rather than a plain combinational drive.
[[nodiscard]] bool isBusDriver(GateKind k) noexcept;

struct Gate {
  GateKind kind = GateKind::Inv;
  std::vector<int> in;
  int out = -1;
  std::string name;  ///< for diagrams and debug
};

/// A gate-level netlist with named signals.
class LogicModel {
 public:
  /// Create or look up a signal.
  int signal(const std::string& name);
  /// Create an anonymous internal signal.
  int internalSignal(const std::string& hint = {});
  /// Mark a signal as a precharged bus wire (resolved by wired logic).
  void markBus(int sig);

  void add(GateKind kind, std::vector<int> in, int out, std::string name = {});

  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] std::size_t signalCount() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& signalName(int s) const noexcept {
    return names_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool isBus(int s) const noexcept { return isBus_[static_cast<std::size_t>(s)]; }
  [[nodiscard]] int findSignal(const std::string& name) const noexcept;

  /// Merge another model into this one, connecting signals by name
  /// (shared names unify; this is how elements link over buses).
  void merge(const LogicModel& other);

  /// TTL-style logic diagram (text).
  [[nodiscard]] std::string toText() const;

  /// Gate count by kind (for reports).
  [[nodiscard]] std::map<std::string, std::size_t> histogram() const;

 private:
  std::vector<std::string> names_;
  std::vector<bool> isBus_;
  std::map<std::string, int> byName_;
  std::vector<Gate> gates_;
  int anon_ = 0;
};

}  // namespace bb::netlist
