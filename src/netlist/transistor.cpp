#include "netlist/transistor.hpp"

#include <sstream>

namespace bb::netlist {

std::string_view kindName(TransKind k) noexcept {
  return k == TransKind::Enhancement ? "enh" : "dep";
}

int TransistorNetlist::netByName(const std::string& name) {
  auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const int id = static_cast<int>(nets_.size());
  nets_.push_back(Net{name, true});
  byName_[name] = id;
  return id;
}

int TransistorNetlist::anonNet() {
  const int id = static_cast<int>(nets_.size());
  nets_.push_back(Net{"n" + std::to_string(anon_++), false});
  return id;
}

void TransistorNetlist::rename(int net, const std::string& name) {
  if (net < 0 || net >= static_cast<int>(nets_.size())) return;
  byName_.erase(nets_[static_cast<std::size_t>(net)].name);
  nets_[static_cast<std::size_t>(net)].name = name;
  nets_[static_cast<std::size_t>(net)].isNamed = true;
  byName_[name] = net;
}

std::size_t TransistorNetlist::enhancementCount() const noexcept {
  std::size_t n = 0;
  for (const Transistor& t : trans_) {
    if (t.kind == TransKind::Enhancement) ++n;
  }
  return n;
}

std::size_t TransistorNetlist::depletionCount() const noexcept {
  return trans_.size() - enhancementCount();
}

int TransistorNetlist::findNet(const std::string& name) const noexcept {
  auto it = byName_.find(name);
  return it == byName_.end() ? -1 : it->second;
}

std::string TransistorNetlist::toText() const {
  std::ostringstream os;
  os << "transistor diagram: " << trans_.size() << " devices ("
     << enhancementCount() << " enh, " << depletionCount() << " dep), " << nets_.size()
     << " nets\n";
  int i = 0;
  for (const Transistor& t : trans_) {
    auto nn = [&](int id) -> std::string {
      return id >= 0 && id < static_cast<int>(nets_.size())
                 ? nets_[static_cast<std::size_t>(id)].name
                 : "?";
    };
    os << "M" << i++ << ' ' << kindName(t.kind) << " g=" << nn(t.gate) << " s=" << nn(t.source)
       << " d=" << nn(t.drain) << " w/l=" << t.width << '/' << t.length << " at "
       << geom::toString(t.at) << "\n";
  }
  return os.str();
}

}  // namespace bb::netlist
