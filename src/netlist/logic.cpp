#include "netlist/logic.hpp"

#include <sstream>

namespace bb::netlist {

char levelChar(Level l) noexcept {
  switch (l) {
    case Level::L0: return '0';
    case Level::L1: return '1';
    case Level::LX: return 'X';
    case Level::LZ: return 'Z';
  }
  return '?';
}

Level levelFromBool(bool b) noexcept { return b ? Level::L1 : Level::L0; }

std::string_view gateName(GateKind k) noexcept {
  switch (k) {
    case GateKind::Inv: return "INV";
    case GateKind::Buf: return "BUF";
    case GateKind::Nand: return "NAND";
    case GateKind::Nor: return "NOR";
    case GateKind::And: return "AND";
    case GateKind::Or: return "OR";
    case GateKind::Xor: return "XOR";
    case GateKind::Latch: return "LATCH";
    case GateKind::Precharge: return "PRECHG";
    case GateKind::PullDown: return "PULLDN";
    case GateKind::Drive: return "DRIVE";
    case GateKind::Const0: return "CONST0";
    case GateKind::Const1: return "CONST1";
  }
  return "?";
}

bool isBusDriver(GateKind k) noexcept {
  return k == GateKind::Precharge || k == GateKind::PullDown || k == GateKind::Drive;
}

int LogicModel::signal(const std::string& name) {
  auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.push_back(name);
  isBus_.push_back(false);
  byName_[name] = id;
  return id;
}

int LogicModel::internalSignal(const std::string& hint) {
  std::string name = (hint.empty() ? "w" : hint) + "$" + std::to_string(anon_++);
  while (byName_.contains(name)) name += "'";
  return signal(name);
}

void LogicModel::markBus(int sig) { isBus_[static_cast<std::size_t>(sig)] = true; }

void LogicModel::add(GateKind kind, std::vector<int> in, int out, std::string name) {
  gates_.push_back(Gate{kind, std::move(in), out, std::move(name)});
}

int LogicModel::findSignal(const std::string& name) const noexcept {
  auto it = byName_.find(name);
  return it == byName_.end() ? -1 : it->second;
}

void LogicModel::merge(const LogicModel& other) {
  std::vector<int> remap(other.names_.size());
  for (std::size_t i = 0; i < other.names_.size(); ++i) {
    remap[i] = signal(other.names_[i]);
    if (other.isBus_[i]) markBus(remap[i]);
  }
  for (const Gate& g : other.gates_) {
    Gate ng = g;
    for (int& s : ng.in) s = remap[static_cast<std::size_t>(s)];
    ng.out = remap[static_cast<std::size_t>(g.out)];
    gates_.push_back(std::move(ng));
  }
}

std::string LogicModel::toText() const {
  std::ostringstream os;
  os << "logic diagram: " << gates_.size() << " gates, " << names_.size() << " signals\n";
  for (const Gate& g : gates_) {
    os << "  " << gateName(g.kind) << ' ' << names_[static_cast<std::size_t>(g.out)] << " <- ";
    for (std::size_t i = 0; i < g.in.size(); ++i) {
      if (i) os << ", ";
      os << names_[static_cast<std::size_t>(g.in[i])];
    }
    if (!g.name.empty()) os << "    (" << g.name << ')';
    os << "\n";
  }
  return os.str();
}

std::map<std::string, std::size_t> LogicModel::histogram() const {
  std::map<std::string, std::size_t> h;
  for (const Gate& g : gates_) ++h[std::string(gateName(g.kind))];
  return h;
}

}  // namespace bb::netlist
