#include "netlist/spice.hpp"

#include <cctype>
#include <sstream>

namespace bb::netlist {

std::string writeSpice(const TransistorNetlist& nl, const SpiceOptions& opts) {
  std::ostringstream os;
  os << "* " << opts.title << "\n";
  os << ".model nenh nmos (vto=1.0)\n";
  os << ".model ndep nmos (vto=-3.0)\n";
  const double micronsPerUnit = opts.lambdaMicrons / opts.unitsPerLambda;
  auto netName = [&](int id) -> std::string {
    if (id < 0 || id >= static_cast<int>(nl.nets().size())) return "0";
    std::string n = nl.nets()[static_cast<std::size_t>(id)].name;
    // SPICE node names: keep alnum and underscore.
    for (char& c : n) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return n;
  };
  int i = 0;
  for (const Transistor& t : nl.transistors()) {
    // Mx drain gate source bulk model W= L=
    os << 'M' << i++ << ' ' << netName(t.drain) << ' ' << netName(t.gate) << ' '
       << netName(t.source) << " 0 " << (t.kind == TransKind::Enhancement ? "nenh" : "ndep")
       << " w=" << static_cast<double>(t.width) * micronsPerUnit << "u"
       << " l=" << static_cast<double>(t.length) * micronsPerUnit << "u\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace bb::netlist
