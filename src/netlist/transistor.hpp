/// \file transistor.hpp
/// Transistor-level netlist — the paper's "Transistors" representation.
/// Produced by geometric extraction (src/extract) or directly by element
/// generators; consumed by the SPICE writer and LVS-lite cross-checks.

#pragma once

#include "geom/geometry.hpp"

#include <map>
#include <string>
#include <vector>

namespace bb::netlist {

/// nMOS device kinds: enhancement switches and depletion pull-up loads.
enum class TransKind : std::uint8_t { Enhancement, Depletion };

[[nodiscard]] std::string_view kindName(TransKind k) noexcept;

/// A net (node) in the transistor netlist.
struct Net {
  std::string name;
  /// True for nets tied to a rail or clock (named by a bristle).
  bool isNamed = false;
};

/// One transistor with geometric W/L (grid units).
struct Transistor {
  TransKind kind = TransKind::Enhancement;
  int gate = -1;
  int source = -1;
  int drain = -1;
  geom::Coord width = 0;   ///< channel width, grid units
  geom::Coord length = 0;  ///< channel length, grid units
  geom::Point at;          ///< gate location (for diagrams/debug)
};

/// The transistor diagram of a cell or chip.
class TransistorNetlist {
 public:
  /// Create or look up a net by name.
  int netByName(const std::string& name);
  /// Create an anonymous net (named n<k>).
  int anonNet();
  void rename(int net, const std::string& name);

  void add(Transistor t) { trans_.push_back(t); }

  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const std::vector<Transistor>& transistors() const noexcept { return trans_; }
  [[nodiscard]] std::size_t enhancementCount() const noexcept;
  [[nodiscard]] std::size_t depletionCount() const noexcept;
  [[nodiscard]] int findNet(const std::string& name) const noexcept;

  /// Human-readable transistor diagram (one device per line).
  [[nodiscard]] std::string toText() const;

 private:
  std::vector<Net> nets_;
  std::vector<Transistor> trans_;
  std::map<std::string, int> byName_;
  int anon_ = 0;
};

}  // namespace bb::netlist
