/// \file spice.hpp
/// SPICE deck writer for extracted transistor netlists, so the chips this
/// compiler produces can be handed to a circuit simulator — the paper's
/// "hooks for the circuit simulator", completed.

#pragma once

#include "netlist/transistor.hpp"

#include <string>

namespace bb::netlist {

struct SpiceOptions {
  std::string title = "bristle blocks extracted netlist";
  /// Lambda in microns, used to scale W/L from grid units.
  double lambdaMicrons = 2.5;
  int unitsPerLambda = 4;
};

[[nodiscard]] std::string writeSpice(const TransistorNetlist& nl, const SpiceOptions& opts = {});

}  // namespace bb::netlist
