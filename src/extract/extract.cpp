#include "extract/extract.hpp"

#include "geom/poly.hpp"
#include "geom/rect_index.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <tuple>

namespace bb::extract {

namespace {

using geom::Coord;
using geom::Rect;
using geom::RectIndex;
using tech::Layer;

/// Disjoint-set over an arbitrary number of conductor pieces.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<int> parent_;
};

/// A conductor piece: a rect on a conducting layer.
struct Piece {
  Layer layer;
  Rect r;
};

/// Conductor-layer slot (Diffusion/Poly/Metal -> 0/1/2), -1 otherwise.
int condSlot(Layer l) noexcept {
  switch (l) {
    case Layer::Diffusion: return 0;
    case Layer::Poly: return 1;
    case Layer::Metal: return 2;
    default: return -1;
  }
}

/// The region a polygon occupies for connectivity: its exact rect
/// decomposition when rectilinear, its bbox as a documented conservative
/// stand-in otherwise (the DRC polygon units use the same convention).
std::vector<Rect> polygonRegion(const geom::Polygon& p) {
  if (geom::poly::isRectilinear(p)) return geom::poly::rectDecompose(p);
  return {p.bbox()};
}

/// Candidate source abstracting indexed vs reference iteration: visits
/// the indices of every rect in `rects` touching `q`, ascending — the
/// same order either way, which keeps extraction (source/drain pick
/// order, first-piece-wins label resolution) bit-identical across modes.
class TouchSource {
 public:
  /// Own an index over a derived rect set (gate regions, net pieces).
  TouchSource(const std::vector<Rect>& rects, bool useIndex) : rects_(rects) {
    if (useIndex) {
      owned_.emplace(rects);
      index_ = &*owned_;
    }
  }
  /// Borrow a prebuilt index (a FlatLayout's cached per-layer index);
  /// null runs the reference scan.
  TouchSource(const std::vector<Rect>& rects, const RectIndex* borrowed)
      : rects_(rects), index_(borrowed) {}

  template <typename F>
  void forTouching(const Rect& q, F&& f) const {
    if (index_) {
      index_->queryTouching(q, scratch_);
      for (const int i : scratch_) f(i);
    } else {
      for (std::size_t i = 0; i < rects_.size(); ++i) {
        if (rects_[i].touches(q)) f(static_cast<int>(i));
      }
    }
  }

 private:
  const std::vector<Rect>& rects_;
  std::optional<RectIndex> owned_;
  const RectIndex* index_ = nullptr;
  mutable std::vector<int> scratch_;
};

/// Source over a layout layer, reusing the FlatLayout's cached index.
TouchSource layerSource(const cell::FlatLayout& flat, Layer l, bool useIndex) {
  return {flat.on(l), useIndex ? &flat.indexOn(l) : nullptr};
}

}  // namespace

namespace {

/// Split `r` around `cut` (their overlap region) into up to four rects,
/// in [above, below, left, right] order. Degenerate slices — a hole edge
/// flush with the fragment edge yields a zero-extent band — are skipped
/// at emit time rather than filtered afterwards, so the live set never
/// carries zero-area fragments through later holes (they used to inflate
/// `next.reserve` churn before the final erase_if dropped them).
template <typename Emit>
void splitAround(const Rect& r, const Rect& cut, Emit&& emit) {
  const auto piece = [&emit](Coord x0, Coord y0, Coord x1, Coord y1) {
    if (x0 < x1 && y0 < y1) emit(Rect{x0, y0, x1, y1});
  };
  piece(r.x0, cut.y1, r.x1, r.y1);        // above
  piece(r.x0, r.y0, r.x1, cut.y0);        // below
  piece(r.x0, cut.y0, cut.x0, cut.y1);    // left
  piece(cut.x1, cut.y0, r.x1, cut.y1);    // right
}

/// Below this many holes a RectIndex costs more to build than the scans
/// it saves; the sequential reference is used verbatim.
constexpr std::size_t kSubtractIndexThreshold = 16;

}  // namespace

std::vector<Rect> subtractRectsBrute(const Rect& base, const std::vector<Rect>& holes) {
  std::vector<Rect> live;
  if (!base.isEmpty()) live.push_back(base);
  for (const Rect& h : holes) {
    std::vector<Rect> next;
    next.reserve(live.size());
    for (const Rect& r : live) {
      auto cut = r.intersectWith(h);
      if (!cut) {
        next.push_back(r);
        continue;
      }
      splitAround(r, *cut, [&next](const Rect& p) { next.push_back(p); });
    }
    live = std::move(next);
  }
  // Safety net: emit-time skipping means no empties should survive.
  std::erase_if(live, [](const Rect& r) { return r.isEmpty(); });
  return live;
}

std::vector<Rect> subtractRects(const Rect& base, const std::vector<Rect>& holes) {
  if (base.isEmpty()) return {};
  if (holes.size() < kSubtractIndexThreshold) return subtractRectsBrute(base, holes);

  // Index the holes once, then split each fragment only against the
  // holes touching it, lowest hole index first. Applying the lowest
  // overlapping hole to a fragment and recursing on its pieces with the
  // remaining holes builds exactly the same fragment tree as the
  // sequential reference (splitting preserves relative order and a
  // non-overlapping hole is a no-op there), so values AND order match
  // subtractRectsBrute bit-for-bit — the tests and bench assert it.
  const geom::RectIndex idx(holes);
  std::vector<Rect> out;
  struct Frame {
    Rect r;
    int fromHole;  ///< holes below this index were already applied
  };
  std::vector<Frame> stack{{base, 0}};
  std::vector<int> cand;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    idx.queryTouching(f.r, cand);  // ascending hole indices
    int h = -1;
    std::optional<Rect> cut;
    for (const int j : cand) {
      if (j < f.fromHole) continue;
      if ((cut = holes[static_cast<std::size_t>(j)].intersectWith(f.r))) {
        h = j;
        break;
      }
    }
    if (h < 0) {
      out.push_back(f.r);
      continue;
    }
    // DFS emission order == reference order: push pieces reversed.
    Rect pieces[4];
    int n = 0;
    splitAround(f.r, *cut, [&pieces, &n](const Rect& p) { pieces[n++] = p; });
    for (int k = n - 1; k >= 0; --k) stack.push_back({pieces[k], h + 1});
  }
  // Safety net, mirroring the reference path.
  std::erase_if(out, [](const Rect& r) { return r.isEmpty(); });
  return out;
}

ExtractResult extractFlat(const cell::FlatLayout& flat, const std::vector<NetLabel>& labels,
                          const ExtractOptions& opts) {
  ExtractResult res;
  const bool useIdx = opts.useSpatialIndex;

  // --- 1. gates: poly over diffusion, not under a buried contact --------
  struct GateRegion {
    Rect r;
    bool depletion = false;
  };
  std::vector<GateRegion> gates;
  const TouchSource diffSource = layerSource(flat, Layer::Diffusion, useIdx);
  const TouchSource buriedSource = layerSource(flat, Layer::Buried, useIdx);
  const TouchSource implantSource = layerSource(flat, Layer::Implant, useIdx);
  for (const Rect& p : flat.on(Layer::Poly)) {
    diffSource.forTouching(p, [&](int di) {
      const Rect& d = flat.on(Layer::Diffusion)[static_cast<std::size_t>(di)];
      auto g = p.intersectWith(d);
      if (!g) return;
      bool buried = false;
      buriedSource.forTouching(*g, [&](int) { buried = true; });
      if (buried) return;
      GateRegion gr{*g, false};
      implantSource.forTouching(gr.r, [&](int ii) {
        if (flat.on(Layer::Implant)[static_cast<std::size_t>(ii)].contains(gr.r)) {
          gr.depletion = true;
        }
      });
      gates.push_back(gr);
    });
  }
  // Dedup identical gate regions (overlapping source rects).
  std::sort(gates.begin(), gates.end(), [](const GateRegion& a, const GateRegion& b) {
    return std::tie(a.r.x0, a.r.y0, a.r.x1, a.r.y1) < std::tie(b.r.x0, b.r.y0, b.r.x1, b.r.y1);
  });
  gates.erase(std::unique(gates.begin(), gates.end(),
                          [](const GateRegion& a, const GateRegion& b) { return a.r == b.r; }),
              gates.end());

  // --- 2. fracture diffusion at gates ------------------------------------
  std::vector<Rect> gateRects;
  gateRects.reserve(gates.size());
  for (const GateRegion& g : gates) gateRects.push_back(g.r);
  const TouchSource gateSource(gateRects, useIdx);

  std::vector<Piece> pieces;
  std::vector<Rect> holes;
  for (const Rect& d : flat.on(Layer::Diffusion)) {
    holes.clear();
    gateSource.forTouching(d, [&](int i) {
      const Rect& g = gateRects[static_cast<std::size_t>(i)];
      if (g.overlaps(d)) holes.push_back(g);
    });
    std::sort(holes.begin(), holes.end(), [](const Rect& a, const Rect& b) {
      return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
    });
    holes.erase(std::unique(holes.begin(), holes.end()), holes.end());
    for (const Rect& frag : subtractRects(d, holes)) {
      pieces.push_back({Layer::Diffusion, frag});
    }
  }
  for (const Rect& p : flat.on(Layer::Poly)) pieces.push_back({Layer::Poly, p});
  for (const Rect& m : flat.on(Layer::Metal)) pieces.push_back({Layer::Metal, m});
  // Polygon geometry on conductor layers joins connectivity as region
  // pieces appended after the rects (stable piece order keeps net ids
  // deterministic). Polygons are pure interconnect here: a polygon-drawn
  // poly shape over diffusion does NOT form a gate, and polygon-drawn
  // diffusion is not fractured at gates — drawing transistors with P
  // commands is out of this extractor's scope.
  for (const auto& [pl, poly] : flat.polygons) {
    if (condSlot(pl) < 0) continue;
    for (const Rect& frag : polygonRegion(poly)) pieces.push_back({pl, frag});
  }

  // --- 3. connectivity ----------------------------------------------------
  std::vector<Rect> pieceRects;
  pieceRects.reserve(pieces.size());
  for (const Piece& p : pieces) pieceRects.push_back(p.r);
  const TouchSource pieceSource(pieceRects, useIdx);

  UnionFind uf(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    pieceSource.forTouching(pieces[i].r, [&](int j) {
      if (j <= static_cast<int>(i)) return;
      if (pieces[static_cast<std::size_t>(j)].layer != pieces[i].layer) return;
      uf.unite(static_cast<int>(i), j);
    });
  }
  auto connectAcross = [&](const Rect& via, Layer a, Layer b) {
    int firstA = -1, firstB = -1;
    pieceSource.forTouching(via, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer == a) {
        if (firstA < 0) firstA = i;
        else uf.unite(i, firstA);
      }
      if (p.layer == b) {
        if (firstB < 0) firstB = i;
        else uf.unite(i, firstB);
      }
    });
    if (firstA >= 0 && firstB >= 0) uf.unite(firstA, firstB);
  };
  for (const Rect& cut : flat.on(Layer::Contact)) {
    // A cut connects metal to whichever of poly/diff lies under it.
    bool hasPoly = false, hasDiff = false;
    pieceSource.forTouching(cut, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      hasPoly |= p.layer == Layer::Poly;
      hasDiff |= p.layer == Layer::Diffusion;
    });
    if (hasPoly) connectAcross(cut, Layer::Metal, Layer::Poly);
    if (hasDiff && !hasPoly) connectAcross(cut, Layer::Metal, Layer::Diffusion);
  }
  for (const Rect& b : flat.on(Layer::Buried)) {
    connectAcross(b, Layer::Poly, Layer::Diffusion);
  }

  // --- 4. net ids ----------------------------------------------------------
  std::map<int, int> rootToNet;
  auto netOfPiece = [&](int idx) -> int {
    const int root = uf.find(idx);
    auto it = rootToNet.find(root);
    if (it != rootToNet.end()) return it->second;
    const int id = res.netlist.anonNet();
    rootToNet[root] = id;
    return id;
  };

  // Labels first, so named nets get their bristle names. Every label's
  // resolution (or failure to resolve: net -1, an unconnected port) is
  // recorded for the ERC rules.
  res.labelBindings.reserve(labels.size());
  for (const NetLabel& lbl : labels) {
    int bound = -1;
    pieceSource.forTouching(Rect{lbl.at.x, lbl.at.y, lbl.at.x, lbl.at.y}, [&](int i) {
      if (bound >= 0) return;
      if (pieces[static_cast<std::size_t>(i)].layer == lbl.layer &&
          pieces[static_cast<std::size_t>(i)].r.contains(lbl.at)) {
        bound = netOfPiece(i);
        res.netlist.rename(bound, lbl.name);
      }
    });
    res.labelBindings.push_back({lbl.name, lbl.layer, lbl.at, bound});
  }

  // --- 5. transistors --------------------------------------------------------
  for (const GateRegion& g : gates) {
    // Gate net: poly piece overlapping the gate region.
    int gateNet = -1;
    pieceSource.forTouching(g.r, [&](int i) {
      if (gateNet >= 0) return;
      if (pieces[static_cast<std::size_t>(i)].layer == Layer::Poly &&
          pieces[static_cast<std::size_t>(i)].r.overlaps(g.r)) {
        gateNet = netOfPiece(i);
      }
    });
    // Source/drain: diffusion fragments touching the gate region.
    std::vector<int> sd;
    pieceSource.forTouching(g.r, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer != Layer::Diffusion) return;
      const int net = netOfPiece(i);
      if (std::find(sd.begin(), sd.end(), net) == sd.end()) sd.push_back(net);
    });
    netlist::Transistor t;
    t.kind = g.depletion ? netlist::TransKind::Depletion : netlist::TransKind::Enhancement;
    t.gate = gateNet;
    t.at = g.r.center();
    // Channel length runs along the poly direction (gate dimension between
    // the two diffusion fragments); infer from fragment adjacency:
    // fragments to the left/right -> length = g width in x, width = y.
    bool horizontalFlow = false;
    pieceSource.forTouching(g.r, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer != Layer::Diffusion) return;
      if (p.r.x1 <= g.r.x0 || p.r.x0 >= g.r.x1) horizontalFlow = true;
    });
    if (horizontalFlow) {
      t.length = g.r.width();
      t.width = g.r.height();
    } else {
      t.length = g.r.height();
      t.width = g.r.width();
    }
    if (sd.size() >= 2) {
      t.source = sd[0];
      t.drain = sd[1];
    } else if (sd.size() == 1) {
      t.source = t.drain = sd[0];
      ++res.unresolvedGates;
    } else {
      ++res.unresolvedGates;
    }
    res.netlist.add(t);
  }

  // Every conductor piece is an electrical node even if no device or label
  // touched it; materialize those nets so netCount reports true node count.
  for (std::size_t i = 0; i < pieces.size(); ++i) netOfPiece(static_cast<int>(i));
  res.netCount = rootToNet.size();

  // --- 6. per-net ERC classification ---------------------------------------
  res.netInfo.resize(res.netlist.nets().size());
  const auto reachesBoundary = [&opts](const Rect& r) {
    if (!opts.boundary) return false;
    const Rect& b = *opts.boundary;
    return r.x0 <= b.x0 || r.x1 >= b.x1 || r.y0 <= b.y0 || r.y1 >= b.y1;
  };
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    NetInfo& info = res.netInfo[static_cast<std::size_t>(netOfPiece(static_cast<int>(i)))];
    if (info.pieces == 0) info.at = p.r.center();
    ++info.pieces;
    info.layerMask |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(p.layer));
    info.touchesBoundary = info.touchesBoundary || reachesBoundary(p.r);
  }
  for (const netlist::Transistor& t : res.netlist.transistors()) {
    if (t.gate >= 0) ++res.netInfo[static_cast<std::size_t>(t.gate)].gates;
    if (t.source >= 0) ++res.netInfo[static_cast<std::size_t>(t.source)].terminals;
    if (t.drain >= 0) ++res.netInfo[static_cast<std::size_t>(t.drain)].terminals;
  }
  for (std::size_t i = 0; i < res.netInfo.size(); ++i) {
    res.netInfo[i].named = res.netlist.nets()[i].isNamed;
  }

  if (opts.keepPieces) {
    res.pieces.reserve(pieces.size());
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      res.pieces.push_back({pieces[i].layer, pieces[i].r, netOfPiece(static_cast<int>(i))});
    }
  }
  return res;
}

namespace {

/// One stitching source: a unique cell's (or the residual's) local
/// extraction plus per-conductor-layer piece indexes and a local-net ->
/// representative-piece table. Shared by every placement of the unit.
struct StitchSrc {
  ExtractResult res;
  std::array<std::vector<int>, 3> layerPieces;  ///< slot -> local piece ids
  std::array<RectIndex, 3> layerIdx;            ///< over those pieces' rects
  std::vector<int> netRep;                      ///< local net -> first piece
};

StitchSrc buildStitchSrc(const cell::FlatLayout& flat, const ExtractOptions& base) {
  StitchSrc x;
  ExtractOptions uo = base;
  uo.boundary.reset();
  uo.hierarchical = false;
  uo.keepPieces = true;
  x.res = extractFlat(flat, {}, uo);
  std::array<std::vector<Rect>, 3> rects;
  x.netRep.assign(x.res.netlist.nets().size(), -1);
  for (std::size_t i = 0; i < x.res.pieces.size(); ++i) {
    const auto& p = x.res.pieces[i];
    const int k = condSlot(p.layer);
    x.layerPieces[static_cast<std::size_t>(k)].push_back(static_cast<int>(i));
    rects[static_cast<std::size_t>(k)].push_back(p.r);
    if (x.netRep[static_cast<std::size_t>(p.net)] < 0) {
      x.netRep[static_cast<std::size_t>(p.net)] = static_cast<int>(i);
    }
  }
  for (std::size_t k = 0; k < 3; ++k) x.layerIdx[k] = RectIndex(std::move(rects[k]));
  return x;
}

/// Closed-box intersection: non-null whenever the boxes touch (a shared
/// edge yields a degenerate strip — exactly the abutment window).
std::optional<Rect> closedIntersect(const Rect& a, const Rect& b) noexcept {
  Rect r;
  r.x0 = std::max(a.x0, b.x0);
  r.y0 = std::max(a.y0, b.y0);
  r.x1 = std::min(a.x1, b.x1);
  r.y1 = std::min(a.y1, b.y1);
  if (r.x0 > r.x1 || r.y0 > r.y1) return std::nullopt;
  return r;
}

}  // namespace

ExtractResult extractHier(const cell::HierIndex& hier, const std::vector<NetLabel>& labels,
                          const ExtractOptions& opts) {
  ExtractResult res;
  const auto& us = hier.units();
  const auto& ps = hier.placements();
  const std::size_t P = ps.size();

  // --- 1. each unique cell extracted ONCE; the residual is one more source.
  std::vector<StitchSrc> unitX;
  unitX.reserve(us.size());
  for (const cell::HierUnit& u : us) unitX.push_back(buildStitchSrc(u.flat, opts));
  const StitchSrc residX = buildStitchSrc(hier.residual(), opts);

  // Global piece slots: every placement replicates its unit's pieces;
  // source P is the residual.
  const auto srcX = [&](std::size_t s) -> const StitchSrc& {
    return s < P ? unitX[ps[s].unit] : residX;
  };
  const auto srcT = [&](std::size_t s) -> geom::Transform {
    return s < P ? ps[s].t : geom::Transform{};
  };
  std::vector<std::size_t> off(P + 2, 0);
  for (std::size_t s = 0; s <= P; ++s) off[s + 1] = off[s] + srcX(s).res.pieces.size();

  UnionFind uf(off[P + 1]);
  // Within-source connectivity, replicated from the local extraction.
  for (std::size_t s = 0; s <= P; ++s) {
    const StitchSrc& x = srcX(s);
    for (std::size_t i = 0; i < x.res.pieces.size(); ++i) {
      const int rep = x.netRep[static_cast<std::size_t>(x.res.pieces[i].net)];
      uf.unite(static_cast<int>(off[s] + i), static_cast<int>(off[s]) + rep);
    }
  }

  /// Visit (global id, world rect) of source `s`'s pieces on slot `k`
  /// touching world rect `w` (local-index ascending).
  const auto forPieces = [&](std::size_t s, int k, const Rect& w, auto&& f) {
    const StitchSrc& x = srcX(s);
    const geom::Transform t = srcT(s);
    const Rect lw = s < P ? t.inverted()(w) : w;
    const auto ks = static_cast<std::size_t>(k);
    std::vector<int> cand;
    x.layerIdx[ks].queryTouching(lw, cand);
    for (const int qi : cand) {
      const int lp = x.layerPieces[ks][static_cast<std::size_t>(qi)];
      f(static_cast<int>(off[s]) + lp, t(x.res.pieces[static_cast<std::size_t>(lp)].r));
    }
  };

  // --- 2. boundary stitching over interacting source pairs ---------------
  const auto srcBBox = [&](std::size_t s) {
    return s < P ? ps[s].worldBBox : hier.residual().bbox();
  };
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < P; ++i) {
    hier.forEachPlacementNear(ps[i].worldBBox, 0, [&](std::size_t j) {
      if (j > i) pairs.emplace_back(i, j);
    });
  }
  if (hier.residual().totalCount() > 0) {
    const Rect rb = hier.residual().bbox();
    for (std::size_t i = 0; i < P; ++i) {
      if (rb.touches(ps[i].worldBBox)) pairs.emplace_back(i, P);
    }
  }
  std::sort(pairs.begin(), pairs.end());

  // Stitch pruning: every union the pair walk can perform needs geometry
  // in the shared window. An abutment join unites pieces that share a
  // point, and that point lies in both sources' bboxes — i.e. in the
  // window — so BOTH pieces touch it; a via join only fires for vias
  // touching the window. A pair with no conductor slot populated by
  // both sources inside the window and no via of either source reaching
  // it is therefore provably a no-op and skipped outright (the common
  // case in dense tilings where cells abut along blank seams).
  const auto anyPieceTouching = [&](std::size_t s, int k, const Rect& wr) {
    const StitchSrc& x = srcX(s);
    const Rect lw = s < P ? srcT(s).inverted()(wr) : wr;
    std::vector<int> cand;
    x.layerIdx[static_cast<std::size_t>(k)].queryTouching(lw, cand);
    return !cand.empty();
  };
  const auto anyViaTouching = [&](std::size_t s, Layer vl, const Rect& wr) {
    const cell::FlatLayout& fl = s < P ? us[ps[s].unit].flat : hier.residual();
    const Rect lw = s < P ? srcT(s).inverted()(wr) : wr;
    std::vector<int> cand;
    fl.indexOn(vl).queryTouching(lw, cand);
    return !cand.empty();
  };

  for (const auto& [a, b] : pairs) {
    const auto w = closedIntersect(srcBBox(a), srcBBox(b));
    if (!w) continue;
    bool seam = false;
    for (int k = 0; k < 3 && !seam; ++k) {
      seam = anyPieceTouching(a, k, *w) && anyPieceTouching(b, k, *w);
    }
    if (!seam) {
      seam = anyViaTouching(a, Layer::Contact, *w) || anyViaTouching(b, Layer::Contact, *w) ||
             anyViaTouching(a, Layer::Buried, *w) || anyViaTouching(b, Layer::Buried, *w);
    }
    if (!seam) continue;

    // Same-layer abutment: a's pieces in the window vs b's touching them.
    for (int k = 0; k < 3; ++k) {
      forPieces(a, k, *w, [&](int ga, const Rect& ra) {
        forPieces(b, k, ra, [&](int gb, const Rect&) { uf.unite(ga, gb); });
      });
    }

    // Boundary-straddling vias, with the flat checker's exact rules: a
    // contact joins metal to poly if any poly lies under it, else to
    // diffusion; a buried contact always joins poly to diffusion. All
    // same-layer pieces touching the via are united (flat does the same).
    const auto viaJoin = [&](const Rect& via, bool isCut) {
      bool hasPoly = false, hasDiff = false;
      for (const std::size_t s : {a, b}) {
        forPieces(s, 1, via, [&](int, const Rect&) { hasPoly = true; });
        forPieces(s, 0, via, [&](int, const Rect&) { hasDiff = true; });
      }
      const auto gather = [&](int k, int& first) {
        for (const std::size_t s : {a, b}) {
          forPieces(s, k, via, [&](int g, const Rect&) {
            if (first < 0) {
              first = g;
            } else {
              uf.unite(g, first);
            }
          });
        }
      };
      int firstMetal = -1, firstPoly = -1, firstDiff = -1;
      if (isCut) {
        if (hasPoly) {
          gather(2, firstMetal);
          gather(1, firstPoly);
          if (firstMetal >= 0 && firstPoly >= 0) uf.unite(firstMetal, firstPoly);
        } else if (hasDiff) {
          gather(2, firstMetal);
          gather(0, firstDiff);
          if (firstMetal >= 0 && firstDiff >= 0) uf.unite(firstMetal, firstDiff);
        }
      } else {
        gather(1, firstPoly);
        gather(0, firstDiff);
        if (firstPoly >= 0 && firstDiff >= 0) uf.unite(firstPoly, firstDiff);
      }
    };
    const auto viasOf = [&](std::size_t s, Layer vl, bool isCut) {
      const cell::FlatLayout& fl = s < P ? us[ps[s].unit].flat : hier.residual();
      const geom::Transform t = srcT(s);
      const Rect lw = s < P ? t.inverted()(*w) : *w;
      const RectIndex& idx = fl.indexOn(vl);
      for (const int qi : idx.queryTouching(lw)) {
        viaJoin(t(idx.rect(static_cast<std::size_t>(qi))), isCut);
      }
    };
    viasOf(a, Layer::Contact, true);
    viasOf(b, Layer::Contact, true);
    viasOf(a, Layer::Buried, false);
    viasOf(b, Layer::Buried, false);
  }

  // --- 3. net ids: labels (bound at world coordinates) first -------------
  std::map<int, int> rootToNet;
  const auto netOfGlobal = [&](int g) -> int {
    const int root = uf.find(g);
    const auto it = rootToNet.find(root);
    if (it != rootToNet.end()) return it->second;
    const int id = res.netlist.anonNet();
    rootToNet[root] = id;
    return id;
  };
  res.labelBindings.reserve(labels.size());
  for (const NetLabel& lbl : labels) {
    int bound = -1;
    const int k = condSlot(lbl.layer);
    if (k >= 0) {
      const Rect pr{lbl.at.x, lbl.at.y, lbl.at.x, lbl.at.y};
      const auto tryBind = [&](std::size_t s) {
        if (bound >= 0) return;
        forPieces(s, k, pr, [&](int g, const Rect& wr) {
          if (bound >= 0 || !wr.contains(lbl.at)) return;
          bound = netOfGlobal(g);
          res.netlist.rename(bound, lbl.name);
        });
      };
      tryBind(P);  // top-level wiring owns most labels; placements next
      hier.forEachPlacementNear(pr, 0, [&](std::size_t s) { tryBind(s); });
    }
    res.labelBindings.push_back({lbl.name, lbl.layer, lbl.at, bound});
  }

  // --- 4. transistors: replicate each unit's devices per placement -------
  const auto emitDevices = [&](std::size_t s) {
    const StitchSrc& x = srcX(s);
    const geom::Transform t = srcT(s);
    const auto remap = [&](int localNet) -> int {
      if (localNet < 0) return -1;
      return netOfGlobal(static_cast<int>(off[s]) +
                         x.netRep[static_cast<std::size_t>(localNet)]);
    };
    for (const netlist::Transistor& lt : x.res.netlist.transistors()) {
      netlist::Transistor g = lt;  // kind and W/L are rigid-invariant
      g.at = t(lt.at);
      g.gate = remap(lt.gate);
      g.source = remap(lt.source);
      g.drain = remap(lt.drain);
      res.netlist.add(g);
    }
    res.unresolvedGates += x.res.unresolvedGates;
  };
  for (std::size_t s = 0; s < P; ++s) emitDevices(s);
  emitDevices(P);

  // Materialize every remaining node so netCount is the true node count.
  for (std::size_t s = 0; s <= P; ++s) {
    for (std::size_t i = 0; i < srcX(s).res.pieces.size(); ++i) {
      (void)netOfGlobal(static_cast<int>(off[s] + i));
    }
  }
  res.netCount = rootToNet.size();

  // --- 5. per-net ERC classification (world coordinates) -----------------
  res.netInfo.resize(res.netlist.nets().size());
  const auto reachesBoundary = [&opts](const Rect& r) {
    if (!opts.boundary) return false;
    const Rect& bd = *opts.boundary;
    return r.x0 <= bd.x0 || r.x1 >= bd.x1 || r.y0 <= bd.y0 || r.y1 >= bd.y1;
  };
  if (opts.keepPieces) res.pieces.reserve(off[P + 1]);
  for (std::size_t s = 0; s <= P; ++s) {
    const StitchSrc& x = srcX(s);
    const geom::Transform t = srcT(s);
    for (std::size_t i = 0; i < x.res.pieces.size(); ++i) {
      const auto& pc = x.res.pieces[i];
      const Rect wr = t(pc.r);
      const int net = netOfGlobal(static_cast<int>(off[s] + i));
      NetInfo& info = res.netInfo[static_cast<std::size_t>(net)];
      if (info.pieces == 0) info.at = wr.center();
      ++info.pieces;
      info.layerMask |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(pc.layer));
      info.touchesBoundary = info.touchesBoundary || reachesBoundary(wr);
      if (opts.keepPieces) res.pieces.push_back({pc.layer, wr, net});
    }
  }
  for (const netlist::Transistor& t : res.netlist.transistors()) {
    if (t.gate >= 0) ++res.netInfo[static_cast<std::size_t>(t.gate)].gates;
    if (t.source >= 0) ++res.netInfo[static_cast<std::size_t>(t.source)].terminals;
    if (t.drain >= 0) ++res.netInfo[static_cast<std::size_t>(t.drain)].terminals;
  }
  for (std::size_t i = 0; i < res.netInfo.size(); ++i) {
    res.netInfo[i].named = res.netlist.nets()[i].isNamed;
  }
  return res;
}

bool netlistsEquivalent(const ExtractResult& a, const ExtractResult& b, std::string* why) {
  const auto fail = [&](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  if (a.netCount != b.netCount) {
    return fail("net count " + std::to_string(a.netCount) + " vs " +
                std::to_string(b.netCount));
  }
  const auto& ta = a.netlist.transistors();
  const auto& tb = b.netlist.transistors();
  if (ta.size() != tb.size()) {
    return fail("transistor count " + std::to_string(ta.size()) + " vs " +
                std::to_string(tb.size()));
  }

  // Intrinsic device keys (location, kind, W/L): rank both lists; the
  // sorted key sequences must match exactly.
  using Key = std::tuple<Coord, Coord, int, Coord, Coord>;
  const auto ranked = [](const std::vector<netlist::Transistor>& ts) {
    std::vector<std::pair<Key, int>> ks(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      ks[i] = {Key{ts[i].at.x, ts[i].at.y, static_cast<int>(ts[i].kind), ts[i].length,
                   ts[i].width},
               static_cast<int>(i)};
    }
    std::sort(ks.begin(), ks.end());
    return ks;
  };
  const auto ka = ranked(ta);
  const auto kb = ranked(tb);
  for (std::size_t i = 0; i < ka.size(); ++i) {
    if (ka[i].first != kb[i].first) {
      return fail("transistor multisets differ at rank " + std::to_string(i));
    }
  }

  // Rename-independent connectivity: each net's signature is the sorted
  // set of (device rank, role) it touches, with source/drain folded to
  // one role (extraction picks them arbitrarily). The signature
  // multisets must match.
  const auto signatures = [](const ExtractResult& r,
                             const std::vector<std::pair<Key, int>>& ks) {
    const auto& ts = r.netlist.transistors();
    std::vector<int> rankOf(ts.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      rankOf[static_cast<std::size_t>(ks[i].second)] = static_cast<int>(i);
    }
    std::vector<std::vector<std::pair<int, int>>> sig(r.netlist.nets().size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const int rk = rankOf[i];
      if (ts[i].gate >= 0) sig[static_cast<std::size_t>(ts[i].gate)].push_back({rk, 0});
      if (ts[i].source >= 0) sig[static_cast<std::size_t>(ts[i].source)].push_back({rk, 1});
      if (ts[i].drain >= 0) sig[static_cast<std::size_t>(ts[i].drain)].push_back({rk, 1});
    }
    for (auto& s : sig) std::sort(s.begin(), s.end());
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  if (signatures(a, ka) != signatures(b, kb)) {
    return fail("net connection signatures differ");
  }
  if (why) why->clear();
  return true;
}

std::vector<NetLabel> labelsOf(const cell::Cell& c) {
  std::vector<NetLabel> labels;
  labels.reserve(c.bristles().size());
  for (const cell::Bristle& b : c.bristles()) {
    labels.push_back(NetLabel{b.net.empty() ? b.name : b.net, b.layer, b.pos});
  }
  return labels;
}

ExtractResult extractCell(const cell::Cell& c, const ExtractOptions& opts) {
  const std::vector<NetLabel> labels =
      opts.labelFromBristles ? labelsOf(c) : std::vector<NetLabel>{};
  if (opts.hierarchical) {
    const cell::HierIndex hier(c);
    return extractHier(hier, labels, opts);
  }
  return extractFlat(cell::flatten(c), labels, opts);
}

}  // namespace bb::extract
