#include "extract/extract.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace bb::extract {

namespace {

using geom::Coord;
using geom::Rect;
using tech::Layer;

/// Disjoint-set over an arbitrary number of conductor pieces.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<int> parent_;
};

/// A conductor piece: a rect on a conducting layer.
struct Piece {
  Layer layer;
  Rect r;
};

/// Uniform-grid spatial index over pieces: makes connectivity extraction
/// near-linear instead of quadratic in the piece count (chip-scale cores
/// have tens of thousands of pieces).
class GridIndex {
 public:
  GridIndex(const std::vector<Piece>& pieces, Coord cellSize)
      : pieces_(pieces), cs_(cellSize) {
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      visitCells(pieces[i].r, [&](long long key) { grid_[key].push_back(static_cast<int>(i)); });
    }
  }

  /// Visit the indices of pieces whose rect may touch `r` (may repeat).
  template <typename F>
  void forCandidates(const Rect& r, F&& f) const {
    visitCells(r, [&](long long key) {
      auto it = grid_.find(key);
      if (it == grid_.end()) return;
      for (int i : it->second) f(i);
    });
  }

 private:
  template <typename F>
  void visitCells(const Rect& r, F&& f) const {
    const Coord gx0 = floorDiv(r.x0), gx1 = floorDiv(r.x1);
    const Coord gy0 = floorDiv(r.y0), gy1 = floorDiv(r.y1);
    for (Coord gx = gx0; gx <= gx1; ++gx) {
      for (Coord gy = gy0; gy <= gy1; ++gy) {
        f((gx << 24) ^ (gy & 0xffffff));
      }
    }
  }
  Coord floorDiv(Coord v) const {
    return v >= 0 ? v / cs_ : -((-v + cs_ - 1) / cs_);
  }

  const std::vector<Piece>& pieces_;
  Coord cs_;
  std::map<long long, std::vector<int>> grid_;
};

}  // namespace

std::vector<Rect> subtractRects(const Rect& base, const std::vector<Rect>& holes) {
  std::vector<Rect> live{base};
  for (const Rect& h : holes) {
    std::vector<Rect> next;
    for (const Rect& r : live) {
      auto cut = r.intersectWith(h);
      if (!cut) {
        next.push_back(r);
        continue;
      }
      // Split r into up to four rects around the cut.
      if (r.y1 > cut->y1) next.emplace_back(r.x0, cut->y1, r.x1, r.y1);        // above
      if (r.y0 < cut->y0) next.emplace_back(r.x0, r.y0, r.x1, cut->y0);        // below
      if (r.x0 < cut->x0) next.emplace_back(r.x0, cut->y0, cut->x0, cut->y1);  // left
      if (r.x1 > cut->x1) next.emplace_back(cut->x1, cut->y0, r.x1, cut->y1);  // right
    }
    live = std::move(next);
  }
  std::erase_if(live, [](const Rect& r) { return r.isEmpty(); });
  return live;
}

ExtractResult extractFlat(const cell::FlatLayout& flat, const std::vector<NetLabel>& labels) {
  ExtractResult res;

  // --- 1. gates: poly over diffusion, not under a buried contact --------
  struct GateRegion {
    Rect r;
    bool depletion = false;
  };
  std::vector<GateRegion> gates;
  std::vector<Piece> diffPieces;
  for (const Rect& d : flat.on(Layer::Diffusion)) diffPieces.push_back({Layer::Diffusion, d});
  const GridIndex diffIndex(diffPieces, geom::lambda(64));
  for (const Rect& p : flat.on(Layer::Poly)) {
    std::vector<int> cand;
    diffIndex.forCandidates(p, [&](int i) { cand.push_back(i); });
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    for (int di : cand) {
      const Rect& d = diffPieces[static_cast<std::size_t>(di)].r;
      auto g = p.intersectWith(d);
      if (!g) continue;
      bool buried = false;
      for (const Rect& b : flat.on(Layer::Buried)) {
        if (b.touches(*g)) {
          buried = true;
          break;
        }
      }
      if (buried) continue;
      GateRegion gr{*g, false};
      for (const Rect& im : flat.on(Layer::Implant)) {
        if (im.contains(gr.r)) {
          gr.depletion = true;
          break;
        }
      }
      gates.push_back(gr);
    }
  }
  // Dedup identical gate regions (overlapping source rects).
  std::sort(gates.begin(), gates.end(), [](const GateRegion& a, const GateRegion& b) {
    return std::tie(a.r.x0, a.r.y0, a.r.x1, a.r.y1) < std::tie(b.r.x0, b.r.y0, b.r.x1, b.r.y1);
  });
  gates.erase(std::unique(gates.begin(), gates.end(),
                          [](const GateRegion& a, const GateRegion& b) { return a.r == b.r; }),
              gates.end());

  // --- 2. fracture diffusion at gates ------------------------------------
  std::vector<Piece> gatePieces;
  gatePieces.reserve(gates.size());
  for (const GateRegion& g : gates) gatePieces.push_back({Layer::Poly, g.r});
  const GridIndex gateIndex(gatePieces, geom::lambda(64));

  std::vector<Piece> pieces;
  std::vector<Rect> holes;
  for (const Rect& d : flat.on(Layer::Diffusion)) {
    holes.clear();
    gateIndex.forCandidates(d, [&](int i) {
      const Rect& g = gatePieces[static_cast<std::size_t>(i)].r;
      if (g.overlaps(d)) holes.push_back(g);
    });
    std::sort(holes.begin(), holes.end(), [](const Rect& a, const Rect& b) {
      return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
    });
    holes.erase(std::unique(holes.begin(), holes.end()), holes.end());
    for (const Rect& frag : subtractRects(d, holes)) {
      pieces.push_back({Layer::Diffusion, frag});
    }
  }
  for (const Rect& p : flat.on(Layer::Poly)) pieces.push_back({Layer::Poly, p});
  for (const Rect& m : flat.on(Layer::Metal)) pieces.push_back({Layer::Metal, m});

  // --- 3. connectivity ----------------------------------------------------
  UnionFind uf(pieces.size());
  const GridIndex index(pieces, geom::lambda(64));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    index.forCandidates(pieces[i].r, [&](int j) {
      if (j <= static_cast<int>(i)) return;
      if (pieces[static_cast<std::size_t>(j)].layer != pieces[i].layer) return;
      if (pieces[i].r.touches(pieces[static_cast<std::size_t>(j)].r)) {
        uf.unite(static_cast<int>(i), j);
      }
    });
  }
  auto connectAcross = [&](const Rect& via, Layer a, Layer b) {
    int firstA = -1, firstB = -1;
    index.forCandidates(via, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (!p.r.touches(via)) return;
      if (p.layer == a) {
        if (firstA < 0) firstA = i;
        else uf.unite(i, firstA);
      }
      if (p.layer == b) {
        if (firstB < 0) firstB = i;
        else uf.unite(i, firstB);
      }
    });
    if (firstA >= 0 && firstB >= 0) uf.unite(firstA, firstB);
  };
  for (const Rect& cut : flat.on(Layer::Contact)) {
    // A cut connects metal to whichever of poly/diff lies under it.
    bool hasPoly = false, hasDiff = false;
    index.forCandidates(cut, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (!p.r.touches(cut)) return;
      hasPoly |= p.layer == Layer::Poly;
      hasDiff |= p.layer == Layer::Diffusion;
    });
    if (hasPoly) connectAcross(cut, Layer::Metal, Layer::Poly);
    if (hasDiff && !hasPoly) connectAcross(cut, Layer::Metal, Layer::Diffusion);
  }
  for (const Rect& b : flat.on(Layer::Buried)) {
    connectAcross(b, Layer::Poly, Layer::Diffusion);
  }

  // --- 4. net ids ----------------------------------------------------------
  std::map<int, int> rootToNet;
  auto netOfPiece = [&](int idx) -> int {
    const int root = uf.find(idx);
    auto it = rootToNet.find(root);
    if (it != rootToNet.end()) return it->second;
    const int id = res.netlist.anonNet();
    rootToNet[root] = id;
    return id;
  };

  // Labels first, so named nets get their bristle names.
  for (const NetLabel& lbl : labels) {
    bool done = false;
    index.forCandidates(Rect{lbl.at.x, lbl.at.y, lbl.at.x, lbl.at.y}, [&](int i) {
      if (done) return;
      if (pieces[static_cast<std::size_t>(i)].layer == lbl.layer &&
          pieces[static_cast<std::size_t>(i)].r.contains(lbl.at)) {
        res.netlist.rename(netOfPiece(i), lbl.name);
        done = true;
      }
    });
  }

  // --- 5. transistors --------------------------------------------------------
  for (const GateRegion& g : gates) {
    // Gate net: poly piece overlapping the gate region.
    int gateNet = -1;
    index.forCandidates(g.r, [&](int i) {
      if (gateNet >= 0) return;
      if (pieces[static_cast<std::size_t>(i)].layer == Layer::Poly &&
          pieces[static_cast<std::size_t>(i)].r.overlaps(g.r)) {
        gateNet = netOfPiece(i);
      }
    });
    // Source/drain: diffusion fragments touching the gate region.
    std::vector<int> sd;
    index.forCandidates(g.r, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer != Layer::Diffusion) return;
      if (p.r.touches(g.r)) {
        const int net = netOfPiece(i);
        if (std::find(sd.begin(), sd.end(), net) == sd.end()) sd.push_back(net);
      }
    });
    netlist::Transistor t;
    t.kind = g.depletion ? netlist::TransKind::Depletion : netlist::TransKind::Enhancement;
    t.gate = gateNet;
    t.at = g.r.center();
    // Channel length runs along the poly direction (gate dimension between
    // the two diffusion fragments); infer from fragment adjacency:
    // fragments to the left/right -> length = g width in x, width = y.
    bool horizontalFlow = false;
    index.forCandidates(g.r, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer != Layer::Diffusion || !p.r.touches(g.r)) return;
      if (p.r.x1 <= g.r.x0 || p.r.x0 >= g.r.x1) horizontalFlow = true;
    });
    if (horizontalFlow) {
      t.length = g.r.width();
      t.width = g.r.height();
    } else {
      t.length = g.r.height();
      t.width = g.r.width();
    }
    if (sd.size() >= 2) {
      t.source = sd[0];
      t.drain = sd[1];
    } else if (sd.size() == 1) {
      t.source = t.drain = sd[0];
      ++res.unresolvedGates;
    } else {
      ++res.unresolvedGates;
    }
    res.netlist.add(t);
  }

  // Every conductor piece is an electrical node even if no device or label
  // touched it; materialize those nets so netCount reports true node count.
  for (std::size_t i = 0; i < pieces.size(); ++i) netOfPiece(static_cast<int>(i));
  res.netCount = rootToNet.size();
  return res;
}

ExtractResult extractCell(const cell::Cell& c, const ExtractOptions& opts) {
  std::vector<NetLabel> labels;
  if (opts.labelFromBristles) {
    for (const cell::Bristle& b : c.bristles()) {
      labels.push_back(NetLabel{b.net.empty() ? b.name : b.net, b.layer, b.pos});
    }
  }
  return extractFlat(cell::flatten(c), labels);
}

}  // namespace bb::extract
