#include "extract/extract.hpp"

#include "geom/rect_index.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>

namespace bb::extract {

namespace {

using geom::Coord;
using geom::Rect;
using geom::RectIndex;
using tech::Layer;

/// Disjoint-set over an arbitrary number of conductor pieces.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<int> parent_;
};

/// A conductor piece: a rect on a conducting layer.
struct Piece {
  Layer layer;
  Rect r;
};

/// Candidate source abstracting indexed vs reference iteration: visits
/// the indices of every rect in `rects` touching `q`, ascending — the
/// same order either way, which keeps extraction (source/drain pick
/// order, first-piece-wins label resolution) bit-identical across modes.
class TouchSource {
 public:
  /// Own an index over a derived rect set (gate regions, net pieces).
  TouchSource(const std::vector<Rect>& rects, bool useIndex) : rects_(rects) {
    if (useIndex) {
      owned_.emplace(rects);
      index_ = &*owned_;
    }
  }
  /// Borrow a prebuilt index (a FlatLayout's cached per-layer index);
  /// null runs the reference scan.
  TouchSource(const std::vector<Rect>& rects, const RectIndex* borrowed)
      : rects_(rects), index_(borrowed) {}

  template <typename F>
  void forTouching(const Rect& q, F&& f) const {
    if (index_) {
      index_->queryTouching(q, scratch_);
      for (const int i : scratch_) f(i);
    } else {
      for (std::size_t i = 0; i < rects_.size(); ++i) {
        if (rects_[i].touches(q)) f(static_cast<int>(i));
      }
    }
  }

 private:
  const std::vector<Rect>& rects_;
  std::optional<RectIndex> owned_;
  const RectIndex* index_ = nullptr;
  mutable std::vector<int> scratch_;
};

/// Source over a layout layer, reusing the FlatLayout's cached index.
TouchSource layerSource(const cell::FlatLayout& flat, Layer l, bool useIndex) {
  return {flat.on(l), useIndex ? &flat.indexOn(l) : nullptr};
}

}  // namespace

namespace {

/// Split `r` around `cut` (their overlap region) into up to four rects,
/// in [above, below, left, right] order. Degenerate slices — a hole edge
/// flush with the fragment edge yields a zero-extent band — are skipped
/// at emit time rather than filtered afterwards, so the live set never
/// carries zero-area fragments through later holes (they used to inflate
/// `next.reserve` churn before the final erase_if dropped them).
template <typename Emit>
void splitAround(const Rect& r, const Rect& cut, Emit&& emit) {
  const auto piece = [&emit](Coord x0, Coord y0, Coord x1, Coord y1) {
    if (x0 < x1 && y0 < y1) emit(Rect{x0, y0, x1, y1});
  };
  piece(r.x0, cut.y1, r.x1, r.y1);        // above
  piece(r.x0, r.y0, r.x1, cut.y0);        // below
  piece(r.x0, cut.y0, cut.x0, cut.y1);    // left
  piece(cut.x1, cut.y0, r.x1, cut.y1);    // right
}

/// Below this many holes a RectIndex costs more to build than the scans
/// it saves; the sequential reference is used verbatim.
constexpr std::size_t kSubtractIndexThreshold = 16;

}  // namespace

std::vector<Rect> subtractRectsBrute(const Rect& base, const std::vector<Rect>& holes) {
  std::vector<Rect> live;
  if (!base.isEmpty()) live.push_back(base);
  for (const Rect& h : holes) {
    std::vector<Rect> next;
    next.reserve(live.size());
    for (const Rect& r : live) {
      auto cut = r.intersectWith(h);
      if (!cut) {
        next.push_back(r);
        continue;
      }
      splitAround(r, *cut, [&next](const Rect& p) { next.push_back(p); });
    }
    live = std::move(next);
  }
  // Safety net: emit-time skipping means no empties should survive.
  std::erase_if(live, [](const Rect& r) { return r.isEmpty(); });
  return live;
}

std::vector<Rect> subtractRects(const Rect& base, const std::vector<Rect>& holes) {
  if (base.isEmpty()) return {};
  if (holes.size() < kSubtractIndexThreshold) return subtractRectsBrute(base, holes);

  // Index the holes once, then split each fragment only against the
  // holes touching it, lowest hole index first. Applying the lowest
  // overlapping hole to a fragment and recursing on its pieces with the
  // remaining holes builds exactly the same fragment tree as the
  // sequential reference (splitting preserves relative order and a
  // non-overlapping hole is a no-op there), so values AND order match
  // subtractRectsBrute bit-for-bit — the tests and bench assert it.
  const geom::RectIndex idx(holes);
  std::vector<Rect> out;
  struct Frame {
    Rect r;
    int fromHole;  ///< holes below this index were already applied
  };
  std::vector<Frame> stack{{base, 0}};
  std::vector<int> cand;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    idx.queryTouching(f.r, cand);  // ascending hole indices
    int h = -1;
    std::optional<Rect> cut;
    for (const int j : cand) {
      if (j < f.fromHole) continue;
      if ((cut = holes[static_cast<std::size_t>(j)].intersectWith(f.r))) {
        h = j;
        break;
      }
    }
    if (h < 0) {
      out.push_back(f.r);
      continue;
    }
    // DFS emission order == reference order: push pieces reversed.
    Rect pieces[4];
    int n = 0;
    splitAround(f.r, *cut, [&pieces, &n](const Rect& p) { pieces[n++] = p; });
    for (int k = n - 1; k >= 0; --k) stack.push_back({pieces[k], h + 1});
  }
  // Safety net, mirroring the reference path.
  std::erase_if(out, [](const Rect& r) { return r.isEmpty(); });
  return out;
}

ExtractResult extractFlat(const cell::FlatLayout& flat, const std::vector<NetLabel>& labels,
                          const ExtractOptions& opts) {
  ExtractResult res;
  const bool useIdx = opts.useSpatialIndex;

  // --- 1. gates: poly over diffusion, not under a buried contact --------
  struct GateRegion {
    Rect r;
    bool depletion = false;
  };
  std::vector<GateRegion> gates;
  const TouchSource diffSource = layerSource(flat, Layer::Diffusion, useIdx);
  const TouchSource buriedSource = layerSource(flat, Layer::Buried, useIdx);
  const TouchSource implantSource = layerSource(flat, Layer::Implant, useIdx);
  for (const Rect& p : flat.on(Layer::Poly)) {
    diffSource.forTouching(p, [&](int di) {
      const Rect& d = flat.on(Layer::Diffusion)[static_cast<std::size_t>(di)];
      auto g = p.intersectWith(d);
      if (!g) return;
      bool buried = false;
      buriedSource.forTouching(*g, [&](int) { buried = true; });
      if (buried) return;
      GateRegion gr{*g, false};
      implantSource.forTouching(gr.r, [&](int ii) {
        if (flat.on(Layer::Implant)[static_cast<std::size_t>(ii)].contains(gr.r)) {
          gr.depletion = true;
        }
      });
      gates.push_back(gr);
    });
  }
  // Dedup identical gate regions (overlapping source rects).
  std::sort(gates.begin(), gates.end(), [](const GateRegion& a, const GateRegion& b) {
    return std::tie(a.r.x0, a.r.y0, a.r.x1, a.r.y1) < std::tie(b.r.x0, b.r.y0, b.r.x1, b.r.y1);
  });
  gates.erase(std::unique(gates.begin(), gates.end(),
                          [](const GateRegion& a, const GateRegion& b) { return a.r == b.r; }),
              gates.end());

  // --- 2. fracture diffusion at gates ------------------------------------
  std::vector<Rect> gateRects;
  gateRects.reserve(gates.size());
  for (const GateRegion& g : gates) gateRects.push_back(g.r);
  const TouchSource gateSource(gateRects, useIdx);

  std::vector<Piece> pieces;
  std::vector<Rect> holes;
  for (const Rect& d : flat.on(Layer::Diffusion)) {
    holes.clear();
    gateSource.forTouching(d, [&](int i) {
      const Rect& g = gateRects[static_cast<std::size_t>(i)];
      if (g.overlaps(d)) holes.push_back(g);
    });
    std::sort(holes.begin(), holes.end(), [](const Rect& a, const Rect& b) {
      return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
    });
    holes.erase(std::unique(holes.begin(), holes.end()), holes.end());
    for (const Rect& frag : subtractRects(d, holes)) {
      pieces.push_back({Layer::Diffusion, frag});
    }
  }
  for (const Rect& p : flat.on(Layer::Poly)) pieces.push_back({Layer::Poly, p});
  for (const Rect& m : flat.on(Layer::Metal)) pieces.push_back({Layer::Metal, m});

  // --- 3. connectivity ----------------------------------------------------
  std::vector<Rect> pieceRects;
  pieceRects.reserve(pieces.size());
  for (const Piece& p : pieces) pieceRects.push_back(p.r);
  const TouchSource pieceSource(pieceRects, useIdx);

  UnionFind uf(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    pieceSource.forTouching(pieces[i].r, [&](int j) {
      if (j <= static_cast<int>(i)) return;
      if (pieces[static_cast<std::size_t>(j)].layer != pieces[i].layer) return;
      uf.unite(static_cast<int>(i), j);
    });
  }
  auto connectAcross = [&](const Rect& via, Layer a, Layer b) {
    int firstA = -1, firstB = -1;
    pieceSource.forTouching(via, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer == a) {
        if (firstA < 0) firstA = i;
        else uf.unite(i, firstA);
      }
      if (p.layer == b) {
        if (firstB < 0) firstB = i;
        else uf.unite(i, firstB);
      }
    });
    if (firstA >= 0 && firstB >= 0) uf.unite(firstA, firstB);
  };
  for (const Rect& cut : flat.on(Layer::Contact)) {
    // A cut connects metal to whichever of poly/diff lies under it.
    bool hasPoly = false, hasDiff = false;
    pieceSource.forTouching(cut, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      hasPoly |= p.layer == Layer::Poly;
      hasDiff |= p.layer == Layer::Diffusion;
    });
    if (hasPoly) connectAcross(cut, Layer::Metal, Layer::Poly);
    if (hasDiff && !hasPoly) connectAcross(cut, Layer::Metal, Layer::Diffusion);
  }
  for (const Rect& b : flat.on(Layer::Buried)) {
    connectAcross(b, Layer::Poly, Layer::Diffusion);
  }

  // --- 4. net ids ----------------------------------------------------------
  std::map<int, int> rootToNet;
  auto netOfPiece = [&](int idx) -> int {
    const int root = uf.find(idx);
    auto it = rootToNet.find(root);
    if (it != rootToNet.end()) return it->second;
    const int id = res.netlist.anonNet();
    rootToNet[root] = id;
    return id;
  };

  // Labels first, so named nets get their bristle names. Every label's
  // resolution (or failure to resolve: net -1, an unconnected port) is
  // recorded for the ERC rules.
  res.labelBindings.reserve(labels.size());
  for (const NetLabel& lbl : labels) {
    int bound = -1;
    pieceSource.forTouching(Rect{lbl.at.x, lbl.at.y, lbl.at.x, lbl.at.y}, [&](int i) {
      if (bound >= 0) return;
      if (pieces[static_cast<std::size_t>(i)].layer == lbl.layer &&
          pieces[static_cast<std::size_t>(i)].r.contains(lbl.at)) {
        bound = netOfPiece(i);
        res.netlist.rename(bound, lbl.name);
      }
    });
    res.labelBindings.push_back({lbl.name, lbl.layer, lbl.at, bound});
  }

  // --- 5. transistors --------------------------------------------------------
  for (const GateRegion& g : gates) {
    // Gate net: poly piece overlapping the gate region.
    int gateNet = -1;
    pieceSource.forTouching(g.r, [&](int i) {
      if (gateNet >= 0) return;
      if (pieces[static_cast<std::size_t>(i)].layer == Layer::Poly &&
          pieces[static_cast<std::size_t>(i)].r.overlaps(g.r)) {
        gateNet = netOfPiece(i);
      }
    });
    // Source/drain: diffusion fragments touching the gate region.
    std::vector<int> sd;
    pieceSource.forTouching(g.r, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer != Layer::Diffusion) return;
      const int net = netOfPiece(i);
      if (std::find(sd.begin(), sd.end(), net) == sd.end()) sd.push_back(net);
    });
    netlist::Transistor t;
    t.kind = g.depletion ? netlist::TransKind::Depletion : netlist::TransKind::Enhancement;
    t.gate = gateNet;
    t.at = g.r.center();
    // Channel length runs along the poly direction (gate dimension between
    // the two diffusion fragments); infer from fragment adjacency:
    // fragments to the left/right -> length = g width in x, width = y.
    bool horizontalFlow = false;
    pieceSource.forTouching(g.r, [&](int i) {
      const Piece& p = pieces[static_cast<std::size_t>(i)];
      if (p.layer != Layer::Diffusion) return;
      if (p.r.x1 <= g.r.x0 || p.r.x0 >= g.r.x1) horizontalFlow = true;
    });
    if (horizontalFlow) {
      t.length = g.r.width();
      t.width = g.r.height();
    } else {
      t.length = g.r.height();
      t.width = g.r.width();
    }
    if (sd.size() >= 2) {
      t.source = sd[0];
      t.drain = sd[1];
    } else if (sd.size() == 1) {
      t.source = t.drain = sd[0];
      ++res.unresolvedGates;
    } else {
      ++res.unresolvedGates;
    }
    res.netlist.add(t);
  }

  // Every conductor piece is an electrical node even if no device or label
  // touched it; materialize those nets so netCount reports true node count.
  for (std::size_t i = 0; i < pieces.size(); ++i) netOfPiece(static_cast<int>(i));
  res.netCount = rootToNet.size();

  // --- 6. per-net ERC classification ---------------------------------------
  res.netInfo.resize(res.netlist.nets().size());
  const auto reachesBoundary = [&opts](const Rect& r) {
    if (!opts.boundary) return false;
    const Rect& b = *opts.boundary;
    return r.x0 <= b.x0 || r.x1 >= b.x1 || r.y0 <= b.y0 || r.y1 >= b.y1;
  };
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    NetInfo& info = res.netInfo[static_cast<std::size_t>(netOfPiece(static_cast<int>(i)))];
    if (info.pieces == 0) info.at = p.r.center();
    ++info.pieces;
    info.layerMask |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(p.layer));
    info.touchesBoundary = info.touchesBoundary || reachesBoundary(p.r);
  }
  for (const netlist::Transistor& t : res.netlist.transistors()) {
    if (t.gate >= 0) ++res.netInfo[static_cast<std::size_t>(t.gate)].gates;
    if (t.source >= 0) ++res.netInfo[static_cast<std::size_t>(t.source)].terminals;
    if (t.drain >= 0) ++res.netInfo[static_cast<std::size_t>(t.drain)].terminals;
  }
  for (std::size_t i = 0; i < res.netInfo.size(); ++i) {
    res.netInfo[i].named = res.netlist.nets()[i].isNamed;
  }
  return res;
}

std::vector<NetLabel> labelsOf(const cell::Cell& c) {
  std::vector<NetLabel> labels;
  labels.reserve(c.bristles().size());
  for (const cell::Bristle& b : c.bristles()) {
    labels.push_back(NetLabel{b.net.empty() ? b.name : b.net, b.layer, b.pos});
  }
  return labels;
}

ExtractResult extractCell(const cell::Cell& c, const ExtractOptions& opts) {
  return extractFlat(cell::flatten(c),
                     opts.labelFromBristles ? labelsOf(c) : std::vector<NetLabel>{}, opts);
}

}  // namespace bb::extract
