/// \file extract.hpp
/// Geometric circuit extraction: turn flattened mask artwork back into a
/// transistor netlist. This powers the "Transistors" representation and
/// the LVS-lite cross-check between what the generators drew and what
/// their logic models claim.
///
/// Recognition rules (Mead–Conway nMOS):
///   * poly over diffusion        -> enhancement transistor channel
///   * ... covered by implant     -> depletion transistor (pull-up load)
///   * contact cut                -> connects metal to poly or diffusion
///   * buried contact             -> connects poly to diffusion
/// Diffusion is fractured at gates so source and drain become distinct
/// nets; connectivity is the touching relation per layer plus contacts.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "cell/hier_index.hpp"
#include "netlist/transistor.hpp"

#include <string>
#include <vector>

namespace bb::extract {

/// A label seeding a net name at a location/layer (from bristles).
struct NetLabel {
  std::string name;
  tech::Layer layer = tech::Layer::Metal;
  geom::Point at;
};

struct ExtractOptions {
  /// Use cell bristles as net labels.
  bool labelFromBristles = true;
  /// Route the piece-touching / via / contact merging through spatial
  /// indexes (near-linear, identical netlists). Off runs the reference
  /// all-pairs scans, kept for the equivalence tests and scaling benches.
  bool useSpatialIndex = true;
  /// Abutment boundary for ERC classification. When set, a net with any
  /// conductor piece reaching the boundary frame is marked
  /// `NetInfo::touchesBoundary` — the paper's per-cell interface
  /// contract: wiring that reaches the edge is connected on the far
  /// side, so the ERC rules don't report it floating/undriven.
  std::optional<geom::Rect> boundary;
  /// `extractCell` routes through `extractHier`: each unique repeated
  /// cell is extracted ONCE and the per-cell netlists are stitched at
  /// the boundary nets, so work scales with unique-cell geometry. The
  /// flat path is the equivalence oracle (`netlistsEquivalent`).
  bool hierarchical = false;
  /// Record every conductor piece with its net id in
  /// `ExtractResult::pieces` (the raw material hierarchical stitching
  /// and the piece-level tests consume).
  bool keepPieces = false;
};

/// Per-net classification, computed alongside the netlist. This is the
/// raw material of the ERC rules (`bb::lint`): a gate load with no
/// driving terminal is a floating input, a net with neither is dead
/// geometry. Indexed by net id (`TransistorNetlist` net index).
struct NetInfo {
  std::size_t pieces = 0;     ///< conductor pieces merged into the net
  std::size_t gates = 0;      ///< transistor gates on the net (loads)
  std::size_t terminals = 0;  ///< transistor sources/drains (drivers)
  bool named = false;         ///< a label resolved onto the net
  /// A piece reaches the abutment boundary (`ExtractOptions::boundary`):
  /// the net is interface wiring, connected on the far side by contract.
  bool touchesBoundary = false;
  std::uint8_t layerMask = 0; ///< bit per tech::Layer with a piece here
  geom::Point at;             ///< representative location (first piece)
};

/// How one input label resolved: the net it landed on, or -1 when no
/// conductor piece contains the label point on its layer (an
/// unconnected declared port — ERC reports these).
struct LabelBinding {
  std::string name;
  tech::Layer layer = tech::Layer::Metal;
  geom::Point at;
  int net = -1;
};

struct ExtractResult {
  netlist::TransistorNetlist netlist;
  /// Number of distinct electrical nodes found.
  std::size_t netCount = 0;
  /// Gates whose source/drain could not be resolved (degenerate layout).
  std::size_t unresolvedGates = 0;
  /// Per-net ERC classification, indexed by net id.
  std::vector<NetInfo> netInfo;
  /// Resolution of every input label, in input order.
  std::vector<LabelBinding> labelBindings;
  /// One conductor piece (post gate-fracturing) with its resolved net;
  /// filled only under `ExtractOptions::keepPieces`.
  struct PieceRec {
    tech::Layer layer = tech::Layer::Metal;
    geom::Rect r;
    int net = -1;
  };
  std::vector<PieceRec> pieces;
};

/// Extract a cell (flattens hierarchy, labels nets from its bristles).
[[nodiscard]] ExtractResult extractCell(const cell::Cell& c, const ExtractOptions& opts = {});

/// Net labels a cell's bristles seed (what `extractCell` uses); exposed
/// so callers holding a cached FlatLayout can call `extractFlat` without
/// re-flattening.
[[nodiscard]] std::vector<NetLabel> labelsOf(const cell::Cell& c);

/// Extract pre-flattened artwork with explicit labels.
[[nodiscard]] ExtractResult extractFlat(const cell::FlatLayout& flat,
                                        const std::vector<NetLabel>& labels,
                                        const ExtractOptions& opts = {});

/// Hierarchy-aware extraction: each unique cell's netlist is extracted
/// ONCE, then replicated per placement and stitched at the boundary —
/// same-layer abutment plus boundary-straddling contacts/buried joins —
/// through a global union-find over (placement, local-net) slots.
/// Labels bind at world coordinates.
///
/// Equivalent to `extractFlat` of the full flatten (up to net renaming
/// and transistor order — compare with `netlistsEquivalent`) on
/// *well-formed* hierarchies: contacts and transistors wholly inside
/// their cell (what the generators produce and DRC's contact rules
/// enforce); cross-cell connection happens by layer abutment or through
/// boundary-straddling vias whose own cell provides the contacted
/// layers.
[[nodiscard]] ExtractResult extractHier(const cell::HierIndex& hier,
                                        const std::vector<NetLabel>& labels,
                                        const ExtractOptions& opts = {});

/// True when two extraction results describe the same circuit up to net
/// renaming and transistor order: equal node counts, equal transistor
/// multisets keyed by (location, kind, W/L), and matching per-net
/// connection signatures (which transistors each net touches, as gate or
/// source/drain). On mismatch, `why` (when non-null) gets a one-line
/// reason. The hier-vs-flat equivalence gate of `bench_hier_scaling`.
[[nodiscard]] bool netlistsEquivalent(const ExtractResult& a, const ExtractResult& b,
                                      std::string* why = nullptr);

/// Rectangle difference: `base` minus all `holes`, as a rect decomposition.
/// Exposed for tests; extraction uses it to fracture diffusion at gates.
/// Large hole sets are pre-filtered through a RectIndex so each live
/// fragment is only split against the holes actually touching it (the
/// sequential reference re-tests every fragment against every hole);
/// fragment values and order are bit-identical to `subtractRectsBrute`.
/// Degenerate cuts (hole edge flush with a base edge) are skipped at
/// emit time, so no zero-area fragments are ever materialized.
[[nodiscard]] std::vector<geom::Rect> subtractRects(const geom::Rect& base,
                                                    const std::vector<geom::Rect>& holes);

/// Reference sequential subtraction (hole-by-hole over the whole live
/// set — O(holes x fragments)). Kept for the equivalence tests and
/// `bench_union_scaling`, which assert `subtractRects` matches it
/// bit-for-bit, order included.
[[nodiscard]] std::vector<geom::Rect> subtractRectsBrute(const geom::Rect& base,
                                                         const std::vector<geom::Rect>& holes);

}  // namespace bb::extract
