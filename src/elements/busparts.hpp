/// \file busparts.hpp
/// Compiler-inserted bus infrastructure cells (precharge columns).

#pragma once

#include "elements/element.hpp"

namespace bb::elements {

struct PrechargeResult {
  cell::Cell* column = nullptr;
  ControlLine control;  ///< the phi2-qualified precharge control line
};

/// Build a precharge column for the given buses at the common pitch.
[[nodiscard]] PrechargeResult buildPrechargeColumn(const ElementContext& ctx,
                                                   const std::string& name, bool busA,
                                                   bool busB);

/// Emit the precharge gates for one bus segment into the logic model.
void emitPrechargeLogic(netlist::LogicModel& lm, const std::string& ctlName,
                        const std::string& busPrefix, int dataWidth);

}  // namespace bb::elements
