/// \file alu.cpp
/// The arithmetic-logic unit element. Operands are latched from the two
/// buses during phi1; the function evaluates during phi2 (the paper's
/// example of a precharged processing element — here the carry chain is
/// the Manchester-style precharged path); the result register drives a
/// bus on a later phi1.
///
/// The logic model is exact (ripple carry + op mux). The cell artwork is
/// assembled from the kit with one pass-gate column per operation select,
/// which reproduces the real cell's density and control geometry; see
/// DESIGN.md ("density-faithful" substitution note).

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

#include <algorithm>

namespace bb::elements {

namespace {

const std::vector<std::string>& supportedOps() {
  static const std::vector<std::string> ops = {"add", "sub", "and", "or",
                                               "xor", "passa", "passb"};
  return ops;
}

class AluElement final : public Element {
 public:
  AluElement(std::string name, int busA, int busB, int busOut, std::string opField,
             std::vector<std::string> ops, std::string loadDecode, std::string driveDecode)
      : Element(std::move(name)),
        busA_(busA),
        busB_(busB),
        busOut_(busOut),
        opField_(std::move(opField)),
        ops_(std::move(ops)),
        load_(std::move(loadDecode)),
        drive_(std::move(driveDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "alu"; }

  [[nodiscard]] geom::Coord naturalPitch(const ElementContext&) const override {
    // The function block needs extra vertical room: the widest core cell
    // in a typical chip, which makes the ALU drive the common pitch.
    return contract().naturalPitch + lam(8);
  }

  GeneratedElement generate(const ElementContext& ctx) override {
    SliceBuilder sb(*ctx.lib, name() + ".slice", naturalPitch(ctx));
    GeneratedElement ge;
    // Operand A latch chain.
    const int uLa = sb.addBusTap(busA_ == 0 ? BusTrack::A : BusTrack::B);
    sb.addInv(true, true);
    sb.addM2D(/*railEast=*/false);  // the b tap starts a fresh node
    // Operand B latch chain.
    const int uLb = sb.addBusTap(busB_ == 0 ? BusTrack::A : BusTrack::B);
    sb.addInv(true, true);
    sb.addM2D();
    ge.controls.push_back(ControlLine{name() + ".lda", load_, 1, sb.controlX(uLa)});
    ge.controls.push_back(ControlLine{name() + ".ldb", load_, 1, sb.controlX(uLb)});
    // One select pass column per operation (phi2-qualified).
    for (std::size_t k = 0; k < ops_.size(); ++k) {
      const int u = sb.addPass();
      ge.controls.push_back(ControlLine{name() + ".op_" + ops_[k],
                                        opField_ + "==" + std::to_string(k), 2,
                                        sb.controlX(u)});
    }
    // Function block depth: inverter pair (carry kill / propagate stand-in).
    sb.addInv(true, true);
    sb.addM2D();
    // Result drive chain.
    sb.addRailGate();
    const int uDr = sb.addBusTap(busOut_ == 0 ? BusTrack::A : BusTrack::B, true, true);
    ge.controls.push_back(ControlLine{name() + ".dr", drive_, 1, sb.controlX(uDr)});

    cell::Cell* slice = sb.finish();
    slice = fitSlice(ctx, slice);
    slice->setDoc("alu bit slice: operand latches, " + std::to_string(ops_.size()) +
                  " op selects, precharged function block, result drive");

    std::vector<cell::Cell*> slices(static_cast<std::size_t>(ctx.dataWidth), slice);
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[busA_] = true;
    ge.usesBus[busB_] = true;
    ge.usesBus[busOut_] = true;
    for (const ControlLine& cl : ge.controls) {
      ge.column->addBristle(cell::Bristle{cl.name, cell::BristleFlavor::Control,
                                          cell::Side::North,
                                          {cl.xOffset, ge.column->height()},
                                          tech::Layer::Poly, lam(2), cl.decode, cl.phase,
                                          cl.name});
    }
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    using netlist::GateKind;
    const int lda = lm.signal(name() + ".lda");
    const int ldb = lm.signal(name() + ".ldb");
    const int dr = lm.signal(name() + ".dr");
    const int phi2 = lm.signal("phi2");
    std::vector<int> opSig;
    opSig.reserve(ops_.size());
    for (const std::string& op : ops_) opSig.push_back(lm.signal(name() + ".op_" + op));

    // Carry chain (c0 = 0 for add, 1 for sub via b inversion).
    int carry = lm.signal(name() + ".c0");
    const int subIdx = opIndex("sub");
    if (subIdx >= 0) {
      lm.add(GateKind::Buf, {opSig[static_cast<std::size_t>(subIdx)]}, carry,
             name() + ".carryin");
    } else {
      lm.add(GateKind::Const0, {}, carry);
    }

    for (int i = 0; i < ctx.dataWidth; ++i) {
      const std::string bi = std::to_string(i);
      const int inA = lm.signal(busSignal(ctx, busA_, i));
      const int inB = lm.signal(busSignal(ctx, busB_, i));
      const int out = lm.signal(busSignal(ctx, busOut_, i));
      lm.markBus(inA);
      lm.markBus(inB);
      lm.markBus(out);
      const int a = lm.signal(name() + ".a" + bi);
      const int braw = lm.signal(name() + ".braw" + bi);
      const int b = lm.signal(name() + ".b" + bi);
      lm.add(GateKind::Latch, {inA, lda}, a, name() + ".opA");
      lm.add(GateKind::Latch, {inB, ldb}, braw, name() + ".opB");
      // Subtraction inverts B into the adder (b XOR sub).
      if (subIdx >= 0) {
        lm.add(GateKind::Xor, {braw, opSig[static_cast<std::size_t>(subIdx)]}, b);
      } else {
        lm.add(GateKind::Buf, {braw}, b);
      }
      const int p = lm.signal(name() + ".p" + bi);
      const int g = lm.signal(name() + ".g" + bi);
      lm.add(GateKind::Xor, {a, b}, p);
      lm.add(GateKind::And, {a, b}, g);
      const int sum = lm.signal(name() + ".sum" + bi);
      lm.add(GateKind::Xor, {p, carry}, sum);
      const int cnext = lm.signal(name() + ".c" + std::to_string(i + 1));
      const int pc = lm.internalSignal(name() + ".pc");
      lm.add(GateKind::And, {p, carry}, pc);
      lm.add(GateKind::Or, {g, pc}, cnext);
      carry = cnext;

      // Result mux over the enabled operations.
      std::vector<int> terms;
      for (std::size_t k = 0; k < ops_.size(); ++k) {
        const int f = lm.internalSignal(name() + ".f");
        const std::string& op = ops_[k];
        if (op == "add" || op == "sub") {
          lm.add(GateKind::And, {opSig[k], sum}, f);
        } else if (op == "and") {
          const int t = lm.internalSignal(name() + ".and");
          lm.add(GateKind::And, {a, braw}, t);
          lm.add(GateKind::And, {opSig[k], t}, f);
        } else if (op == "or") {
          const int t = lm.internalSignal(name() + ".or");
          lm.add(GateKind::Or, {a, braw}, t);
          lm.add(GateKind::And, {opSig[k], t}, f);
        } else if (op == "xor") {
          const int t = lm.internalSignal(name() + ".xor");
          lm.add(GateKind::Xor, {a, braw}, t);
          lm.add(GateKind::And, {opSig[k], t}, f);
        } else if (op == "passa") {
          lm.add(GateKind::And, {opSig[k], a}, f);
        } else {  // passb
          lm.add(GateKind::And, {opSig[k], braw}, f);
        }
        terms.push_back(f);
      }
      const int r = lm.signal(name() + ".r" + bi);
      lm.add(GateKind::Or, std::move(terms), r);
      // Result register: transparent during phi2, holds through phi1.
      const int rl = lm.signal(name() + ".rl" + bi);
      const int rb = lm.signal(name() + ".rb" + bi);
      lm.add(GateKind::Latch, {r, phi2}, rl, name() + ".result");
      lm.add(GateKind::Inv, {rl}, rb);
      lm.add(GateKind::PullDown, {dr, rb}, out, name() + ".drive");
    }
    // Expose the final carry for probes / flags.
    lm.add(GateKind::Buf, {carry}, lm.signal(name() + ".cout"));
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    std::string ops;
    for (const std::string& op : ops_) {
      if (!ops.empty()) ops += ",";
      ops += op;
    }
    return "alu '" + name() + "': " + std::to_string(ctx.dataWidth) + "-bit, ops {" + ops +
           "} selected by field '" + opField_ + "'; operands latch (phi1) when [" + load_ +
           "], result drives (phi1) when [" + drive_ + "]";
  }

 private:
  [[nodiscard]] int opIndex(std::string_view op) const noexcept {
    for (std::size_t k = 0; k < ops_.size(); ++k) {
      if (ops_[k] == op) return static_cast<int>(k);
    }
    return -1;
  }

  int busA_;
  int busB_;
  int busOut_;
  std::string opField_;
  std::vector<std::string> ops_;
  std::string load_;
  std::string drive_;
};

}  // namespace

std::unique_ptr<Element> makeAlu(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                 icl::DiagnosticList& diags) {
  const int a = busParam(decl, chip, "a", 0, diags);
  const int b = busParam(decl, chip, "b", chip.buses.size() > 1 ? 1 : 0, diags);
  const int out = busParam(decl, chip, "out", 0, diags);
  const icl::ParamValue* opf = decl.param("op");
  std::string opField = "?";
  if (opf == nullptr || !opf->isName()) {
    diags.error(decl.loc, "alu '" + decl.name + "': missing 'op' field parameter");
  } else {
    opField = opf->asText();
    if (chip.microcode.field(opField) == nullptr) {
      diags.error(decl.loc, "alu '" + decl.name + "': unknown microcode field '" + opField + "'");
    }
  }
  std::vector<std::string> ops;
  if (const icl::ParamValue* list = decl.param("ops"); list != nullptr && list->isList()) {
    for (const icl::ParamValue& v : list->asList()) {
      const std::string& op = v.asText();
      if (std::find(supportedOps().begin(), supportedOps().end(), op) ==
          supportedOps().end()) {
        diags.error(decl.loc, "alu '" + decl.name + "': unsupported op '" + op + "'");
        continue;
      }
      ops.push_back(op);
    }
  }
  if (ops.empty()) ops = {"add", "and", "or", "passa"};
  const icl::FieldDecl* f = chip.microcode.field(opField);
  if (f != nullptr && (1ll << f->bits()) < static_cast<long long>(ops.size())) {
    diags.error(decl.loc, "alu '" + decl.name + "': op field '" + opField + "' has only " +
                              std::to_string(f->bits()) + " bits for " +
                              std::to_string(ops.size()) + " ops");
  }
  std::string load = decodeParam(decl, "load", chip, true, diags);
  std::string drive = decodeParam(decl, "drive", chip, true, diags);
  return std::make_unique<AluElement>(decl.name, a, b, out, std::move(opField), std::move(ops),
                                      std::move(load), std::move(drive));
}

}  // namespace bb::elements
