/// \file control_buffer.hpp
/// Control-buffer row assembly for Pass 2.

#pragma once

#include "elements/element.hpp"

namespace bb::elements {

struct BufferRow {
  cell::Cell* cell = nullptr;
  geom::Coord height = 0;
};

/// Build the buffer row: one clock-qualified buffer per control line,
/// centred on the line's x offset, plus the two metal clock lines and
/// their pad-request bristles.
[[nodiscard]] BufferRow buildBufferRow(cell::CellLibrary& lib, const std::string& name,
                                       const std::vector<ControlLine>& controls,
                                       geom::Coord rowWidth);

/// Logic: ctl = decodeSignal AND phi<phase>.
void emitBufferLogic(netlist::LogicModel& lm, const ControlLine& cl,
                     const std::string& decodeSignal);

}  // namespace bb::elements
