/// \file shifter.cpp
/// The shifter element: loads a word from one bus and drives it shifted
/// by `dist` onto the other. Vacated positions fill with zero. The logic
/// model wires the cross-bit connections exactly; the artwork carries one
/// drive chain per slice (the diagonal interconnect of a barrel shifter
/// is approximated by the kit — see DESIGN.md).

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

namespace bb::elements {

namespace {

class ShifterElement final : public Element {
 public:
  ShifterElement(std::string name, int busIn, int busOut, int dist, bool left,
                 std::string loadDecode, std::string driveDecode)
      : Element(std::move(name)),
        busIn_(busIn),
        busOut_(busOut),
        dist_(dist),
        left_(left),
        load_(std::move(loadDecode)),
        drive_(std::move(driveDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "shifter"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    SliceBuilder sb(*ctx.lib, name() + ".slice", naturalPitch(ctx));
    const int uLoad = sb.addBusTap(busIn_ == 0 ? BusTrack::A : BusTrack::B);
    sb.addInv(true, true);
    sb.addM2D();
    sb.addRailGate();
    const int uDrive = sb.addBusTap(busOut_ == 0 ? BusTrack::A : BusTrack::B, true, true);
    cell::Cell* slice = sb.finish();
    slice->setDoc("shifter bit slice");
    slice = fitSlice(ctx, slice);

    GeneratedElement ge;
    std::vector<cell::Cell*> slices(static_cast<std::size_t>(ctx.dataWidth), slice);
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[busIn_] = true;
    ge.usesBus[busOut_] = true;
    ge.controls = {
        ControlLine{name() + ".ld", load_, 1, sb.controlX(uLoad)},
        ControlLine{name() + ".dr", drive_, 1, sb.controlX(uDrive)},
    };
    for (const ControlLine& cl : ge.controls) {
      ge.column->addBristle(cell::Bristle{cl.name, cell::BristleFlavor::Control,
                                          cell::Side::North,
                                          {cl.xOffset, ge.column->height()},
                                          tech::Layer::Poly, lam(2), cl.decode, cl.phase,
                                          cl.name});
    }
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    using netlist::GateKind;
    const int ld = lm.signal(name() + ".ld");
    const int dr = lm.signal(name() + ".dr");
    std::vector<int> vb(static_cast<std::size_t>(ctx.dataWidth));
    for (int i = 0; i < ctx.dataWidth; ++i) {
      const int in = lm.signal(busSignal(ctx, busIn_, i));
      lm.markBus(in);
      const int v = lm.signal(name() + ".v" + std::to_string(i));
      lm.add(GateKind::Latch, {in, ld}, v, name() + ".hold");
      vb[static_cast<std::size_t>(i)] = lm.signal(name() + ".vb" + std::to_string(i));
      lm.add(GateKind::Inv, {v}, vb[static_cast<std::size_t>(i)]);
    }
    for (int j = 0; j < ctx.dataWidth; ++j) {
      const int out = lm.signal(busSignal(ctx, busOut_, j));
      lm.markBus(out);
      const int src = left_ ? j - dist_ : j + dist_;
      if (src >= 0 && src < ctx.dataWidth) {
        lm.add(GateKind::PullDown, {dr, vb[static_cast<std::size_t>(src)]}, out,
               name() + ".drive");
      } else {
        // Vacated bit: drive a zero.
        lm.add(GateKind::PullDown, {dr}, out, name() + ".fill0");
      }
    }
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    return "shifter '" + name() + "': " + std::to_string(ctx.dataWidth) + "-bit shift " +
           (left_ ? "left" : "right") + " by " + std::to_string(dist_) +
           "; load (phi1) when [" + load_ + "], drive (phi1) when [" + drive_ + "]";
  }

 private:
  int busIn_;
  int busOut_;
  int dist_;
  bool left_;
  std::string load_;
  std::string drive_;
};

}  // namespace

std::unique_ptr<Element> makeShifter(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                     icl::DiagnosticList& diags) {
  const int in = busParam(decl, chip, "in", 0, diags);
  const int out = busParam(decl, chip, "out", chip.buses.size() > 1 ? 1 : 0, diags);
  const long long dist = intParam(decl, "dist", 1, 0, 63, diags);
  bool left = true;
  if (const icl::ParamValue* d = decl.param("dir"); d != nullptr) {
    if (d->asText() == "right") left = false;
    else if (d->asText() != "left") {
      diags.error(decl.loc, "shifter '" + decl.name + "': dir must be left or right");
    }
  }
  std::string load = decodeParam(decl, "load", chip, true, diags);
  std::string drive = decodeParam(decl, "drive", chip, true, diags);
  return std::make_unique<ShifterElement>(decl.name, in, out, static_cast<int>(dist), left,
                                          std::move(load), std::move(drive));
}

}  // namespace bb::elements
