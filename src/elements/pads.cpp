#include "elements/pads.hpp"

#include "elements/slicekit.hpp"

namespace bb::elements {

std::string_view padKindName(PadKind k) noexcept {
  switch (k) {
    case PadKind::In: return "pad_in";
    case PadKind::Out: return "pad_out";
    case PadKind::Bidir: return "pad_bidir";
    case PadKind::Vdd: return "pad_vdd";
    case PadKind::Gnd: return "pad_gnd";
    case PadKind::Clock: return "pad_clock";
  }
  return "pad";
}

PadKind padKindForFlavor(cell::BristleFlavor f) noexcept {
  switch (f) {
    case cell::BristleFlavor::PadIn: return PadKind::In;
    case cell::BristleFlavor::PadOut: return PadKind::Out;
    case cell::BristleFlavor::PadBidir: return PadKind::Bidir;
    case cell::BristleFlavor::PadVdd: return PadKind::Vdd;
    case cell::BristleFlavor::PadGnd: return PadKind::Gnd;
    case cell::BristleFlavor::PadClock: return PadKind::Clock;
    case cell::BristleFlavor::Microcode: return PadKind::In;
    case cell::BristleFlavor::Probe: return PadKind::Out;
    default: return PadKind::In;
  }
}

geom::Coord padSize() noexcept { return lam(60); }
geom::Coord padPinWidth() noexcept { return lam(4); }

cell::Cell* padCell(cell::CellLibrary& lib, PadKind k) {
  const std::string name = std::string(padKindName(k));
  if (const cell::Cell* existing = lib.find(name)) {
    return const_cast<cell::Cell*>(existing);  // library cells are shared
  }
  cell::Cell* c = lib.create(name);
  using geom::Rect;
  using tech::Layer;
  const geom::Coord s = padSize();
  // Bonding square: full metal with an overglass opening inset 8L.
  c->addRect(Layer::Metal, Rect{0, 0, s, s - lam(14)});
  c->addRect(Layer::Glass, Rect{lam(8), lam(8), s - lam(8), s - lam(22)});
  // Driver strip between bond area and pin (stylized input-protection /
  // driver region: poly resistor for inputs, wide diff pull for outputs).
  if (k == PadKind::In || k == PadKind::Clock || k == PadKind::Bidir) {
    c->addRect(Layer::Poly, Rect{s / 2 - lam(1), s - lam(14), s / 2 + lam(1), s});
    c->setOwnPower(0.0);
  } else if (k == PadKind::Out) {
    c->addRect(Layer::Poly, Rect{s / 2 - lam(1), s - lam(14), s / 2 + lam(1), s});
    c->setOwnPower(tech::electrical().pullup_current_ua * 4);  // big driver
  } else {
    // Supply pads: metal strap to the pin.
    c->addRect(Layer::Metal, Rect{s / 2 - lam(2), s - lam(15), s / 2 + lam(2), s});
  }
  cell::Bristle pin;
  pin.name = "pin";
  pin.flavor = cell::BristleFlavor::Control;  // generic attachment point
  pin.side = cell::Side::North;
  pin.pos = {s / 2, s};
  pin.layer = (k == PadKind::Vdd || k == PadKind::Gnd) ? Layer::Metal : Layer::Poly;
  pin.width = padPinWidth();
  c->addBristle(std::move(pin));
  c->setBoundary(Rect{0, 0, s, s});
  c->setDoc(std::string(padKindName(k)) + " cell");
  return c;
}

void emitPadLogic(netlist::LogicModel& lm, PadKind k, const std::string& padName,
                  const std::string& net) {
  const std::string ext = "pad." + padName;
  switch (k) {
    case PadKind::In:
      // External value in, inverted onto the requesting lane (ports expect
      // the inverted polarity; see ports.cpp).
      lm.add(netlist::GateKind::Inv, {lm.signal(ext)}, lm.signal(net), padName);
      break;
    case PadKind::Out:
      lm.add(netlist::GateKind::Inv, {lm.signal(net)}, lm.signal(ext), padName);
      break;
    case PadKind::Bidir:
      lm.add(netlist::GateKind::Buf, {lm.signal(net)}, lm.signal(ext), padName);
      break;
    case PadKind::Clock:
      // Clocks are primary inputs driven by the testbench directly.
      break;
    case PadKind::Vdd:
    case PadKind::Gnd:
      break;
  }
}

}  // namespace bb::elements
