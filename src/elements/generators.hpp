/// \file generators.hpp
/// Factory functions for the concrete element generators, plus shared
/// helpers for reading element parameters.

#pragma once

#include "elements/element.hpp"

namespace bb::elements {

[[nodiscard]] std::unique_ptr<Element> makeRegister(const icl::ElementDecl&, const icl::ChipDesc&,
                                                    icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeRegfile(const icl::ElementDecl&, const icl::ChipDesc&,
                                                   icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeAlu(const icl::ElementDecl&, const icl::ChipDesc&,
                                               icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeShifter(const icl::ElementDecl&, const icl::ChipDesc&,
                                                   icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeInPort(const icl::ElementDecl&, const icl::ChipDesc&,
                                                  icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeOutPort(const icl::ElementDecl&, const icl::ChipDesc&,
                                                   icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeConstant(const icl::ElementDecl&, const icl::ChipDesc&,
                                                    icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeProbe(const icl::ElementDecl&, const icl::ChipDesc&,
                                                 icl::DiagnosticList&);
[[nodiscard]] std::unique_ptr<Element> makeBusStop(const icl::ElementDecl&, const icl::ChipDesc&,
                                                   icl::DiagnosticList&);

/// Shared parameter helpers (diagnose-and-default semantics).

/// Read a bus parameter ("in = A"): returns 0 for the first chip bus,
/// 1 for the second; diagnoses unknown names. `dflt` used when missing.
[[nodiscard]] int busParam(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                           std::string_view param, int dflt, icl::DiagnosticList& diags);

/// Read a decode-expression parameter (string); diagnoses when missing
/// and `required`.
[[nodiscard]] std::string decodeParam(const icl::ElementDecl& decl, std::string_view param,
                                      const icl::ChipDesc& chip, bool required,
                                      icl::DiagnosticList& diags);

/// Read an integer parameter with range checking.
[[nodiscard]] long long intParam(const icl::ElementDecl& decl, std::string_view param,
                                 long long dflt, long long lo, long long hi,
                                 icl::DiagnosticList& diags);

/// Canonical bus signal name for logic models: the segment prefix from
/// the context plus the bit index (e.g. "busA3").
[[nodiscard]] std::string busSignal(const ElementContext& ctx, int busIndex, int bit);

/// Stretch a freshly generated slice (built at its natural pitch) to the
/// common pitch and widen its supply rails per the context — the paper's
/// "each cell is stretched (a painless operation) to fit all other
/// cells". Returns the adopted, stretched slice.
[[nodiscard]] cell::Cell* fitSlice(const ElementContext& ctx, cell::Cell* slice);

/// Stack per-bit slice cells into one column cell (slice i at
/// y = i * pitch, pitch taken from each slice's boundary height).
[[nodiscard]] cell::Cell* stackSlices(cell::CellLibrary& lib, const std::string& name,
                                      const std::vector<cell::Cell*>& slices);

}  // namespace bb::elements
