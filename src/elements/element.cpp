#include "elements/element.hpp"

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"
#include "cell/stretch.hpp"
#include "icl/eval.hpp"

#include <algorithm>

namespace bb::elements {

void ParameterBallot::voteMax(const std::string& param, geom::Coord value) {
  auto it = max_.find(param);
  if (it == max_.end() || it->second < value) max_[param] = value;
}

void ParameterBallot::voteSum(const std::string& param, double value) { sum_[param] += value; }

geom::Coord ParameterBallot::maxOf(const std::string& param, geom::Coord dflt) const {
  auto it = max_.find(param);
  return it == max_.end() ? dflt : it->second;
}

double ParameterBallot::sumOf(const std::string& param) const {
  auto it = sum_.find(param);
  return it == sum_.end() ? 0.0 : it->second;
}

void Element::vote(ParameterBallot& ballot, const ElementContext& ctx) const {
  // Default vote: my natural pitch is a floor for the common pitch.
  ballot.voteMax("pitch", naturalPitch(ctx));
}

geom::Coord Element::naturalPitch(const ElementContext&) const {
  return contract().naturalPitch;
}

std::string Element::describe(const ElementContext&) const {
  return std::string(kind()) + " element '" + name() + "'";
}

std::vector<std::string> knownElementKinds() {
  return {"register", "regfile", "alu",      "shifter", "inport",
          "outport",  "constant", "probe",   "busstop"};
}

std::unique_ptr<Element> makeElement(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                     icl::DiagnosticList& diags) {
  if (decl.kind == "register") return makeRegister(decl, chip, diags);
  if (decl.kind == "regfile") return makeRegfile(decl, chip, diags);
  if (decl.kind == "alu") return makeAlu(decl, chip, diags);
  if (decl.kind == "shifter") return makeShifter(decl, chip, diags);
  if (decl.kind == "inport") return makeInPort(decl, chip, diags);
  if (decl.kind == "outport") return makeOutPort(decl, chip, diags);
  if (decl.kind == "constant") return makeConstant(decl, chip, diags);
  if (decl.kind == "probe") return makeProbe(decl, chip, diags);
  if (decl.kind == "busstop") return makeBusStop(decl, chip, diags);
  std::string known;
  for (const std::string& k : knownElementKinds()) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  diags.error(decl.loc, "unknown element kind '" + decl.kind + "' (known: " + known + ")");
  return nullptr;
}

}  // namespace bb::elements

// --- shared parameter helpers -------------------------------------------

namespace bb::elements {

int busParam(const icl::ElementDecl& decl, const icl::ChipDesc& chip, std::string_view param,
             int dflt, icl::DiagnosticList& diags) {
  const icl::ParamValue* v = decl.param(param);
  if (v == nullptr) return dflt;
  if (!v->isName()) {
    diags.error(decl.loc, "element '" + decl.name + "': parameter '" + std::string(param) +
                              "' must be a bus name");
    return dflt;
  }
  for (std::size_t i = 0; i < chip.buses.size(); ++i) {
    if (chip.buses[i] == v->asText()) return static_cast<int>(i);
  }
  diags.error(decl.loc, "element '" + decl.name + "': unknown bus '" + v->asText() + "'");
  return dflt;
}

std::string decodeParam(const icl::ElementDecl& decl, std::string_view param,
                        const icl::ChipDesc& chip, bool required, icl::DiagnosticList& diags) {
  const icl::ParamValue* v = decl.param(param);
  if (v == nullptr || (!v->isString() && !v->isName())) {
    if (required) {
      diags.error(decl.loc, "element '" + decl.name + "': missing decode parameter '" +
                                std::string(param) + "'");
    }
    return "0";
  }
  // Validate the expression compiles against the microcode format.
  icl::DiagnosticList local;
  (void)icl::compileDecode(v->asText(), chip.microcode, local);
  if (local.hasErrors()) {
    diags.error(decl.loc, "element '" + decl.name + "', parameter '" + std::string(param) +
                              "': bad decode expression: " + local.all().front().message);
    return "0";
  }
  return v->asText();
}

long long intParam(const icl::ElementDecl& decl, std::string_view param, long long dflt,
                   long long lo, long long hi, icl::DiagnosticList& diags) {
  const icl::ParamValue* v = decl.param(param);
  if (v == nullptr) return dflt;
  if (!v->isInt() || v->asInt() < lo || v->asInt() > hi) {
    diags.error(decl.loc, "element '" + decl.name + "': parameter '" + std::string(param) +
                              "' must be an integer in " + std::to_string(lo) + ".." +
                              std::to_string(hi));
    return dflt;
  }
  return v->asInt();
}

std::string busSignal(const ElementContext& ctx, int busIndex, int bit) {
  return ctx.busPrefix[busIndex] + std::to_string(bit);
}

namespace {
geom::Coord lineAt(const cell::Cell& c, std::string_view name) {
  for (const cell::StretchLine& sl : c.stretchLines()) {
    if (sl.name == name) return sl.at;
  }
  return -1;
}
}  // namespace

cell::Cell* fitSlice(const ElementContext& ctx, cell::Cell* slice) {
  cell::Cell cur = *slice;
  const geom::Coord natural = cur.height();
  if (ctx.pitch > natural) {
    cur = cell::stretched(cur, cell::StretchAxis::Y, lineAt(cur, "pitch"),
                          ctx.pitch - natural);
  }
  if (ctx.railWiden > 0) {
    cur = cell::stretched(cur, cell::StretchAxis::Y, lineAt(cur, "gnd-widen"), ctx.railWiden);
    cur = cell::stretched(cur, cell::StretchAxis::Y, lineAt(cur, "vdd-widen"), ctx.railWiden);
  }
  return ctx.lib->adopt(std::move(cur));
}

cell::Cell* stackSlices(cell::CellLibrary& lib, const std::string& name,
                        const std::vector<cell::Cell*>& slices) {
  cell::Cell* col = lib.create(name);
  geom::Coord y = 0;
  geom::Coord w = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    col->addInstance(slices[i], geom::Transform::translate({0, y}),
                     "bit" + std::to_string(i));
    y += slices[i]->height();
    w = std::max(w, slices[i]->width());
  }
  col->setBoundary(geom::Rect{0, 0, w, y});
  return col;
}

}  // namespace bb::elements
