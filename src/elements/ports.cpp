/// \file ports.cpp
/// I/O port elements — the cells that "require an input from a pad" and
/// therefore carry pad-request bristles. The local data (where the pad
/// connects, what kind) lives here; everything global (pad placement,
/// routing) is decided by Pass 3.
///
/// Pad signals travel vertically on poly lanes; lane i terminates at bit
/// slice i, and lane x positions grow with the bit index so no slice's
/// stub ever crosses a foreign lane (see slicekit.hpp).

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

namespace bb::elements {

namespace {

class InPortElement final : public Element {
 public:
  InPortElement(std::string name, int bus, std::string driveDecode)
      : Element(std::move(name)), bus_(bus), drive_(std::move(driveDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "inport"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    GeneratedElement ge;
    std::vector<cell::Cell*> slices;
    geom::Coord ctlX = 0;
    for (int i = 0; i < ctx.dataWidth; ++i) {
      SliceBuilder sb(*ctx.lib, name() + ".slice" + std::to_string(i), naturalPitch(ctx));
      const int uDrive = sb.addBusTap(bus_ == 0 ? BusTrack::A : BusTrack::B);
      sb.addPullStub();
      for (int j = 0; j < i; ++j) sb.addSpacer(/*carryStub=*/true, /*carryRail=*/false);
      sb.addLane(0, lam(33), /*stubWest=*/true);  // own lane, from the south
      for (int j = i + 1; j < ctx.dataWidth; ++j) {
        sb.addLane(0, naturalPitch(ctx), false);  // feedthrough of higher lanes
      }
      ctlX = sb.controlX(uDrive);
      slices.push_back(fitSlice(ctx, sb.finish()));
    }
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[bus_] = true;
    ge.controls = {ControlLine{name() + ".dr", drive_, 1, ctlX}};
    ge.column->addBristle(cell::Bristle{ge.controls[0].name, cell::BristleFlavor::Control,
                                        cell::Side::North, {ctlX, ge.column->height()},
                                        tech::Layer::Poly, lam(2), drive_, 1,
                                        ge.controls[0].name});
    // One pad request per bit, on the south edge at the lane position.
    for (int i = 0; i < ctx.dataWidth; ++i) {
      const geom::Coord laneX = (2 + static_cast<geom::Coord>(i)) * contract().unitW + lam(8);
      cell::Bristle b;
      b.name = name() + ".pad" + std::to_string(i);
      b.flavor = cell::BristleFlavor::PadIn;
      b.side = cell::Side::South;
      b.pos = {laneX, 0};
      b.layer = tech::Layer::Poly;
      b.width = lam(2);
      b.net = name() + ".padbar" + std::to_string(i);
      ge.column->addBristle(std::move(b));
    }
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    const int dr = lm.signal(name() + ".dr");
    for (int i = 0; i < ctx.dataWidth; ++i) {
      const int out = lm.signal(busSignal(ctx, bus_, i));
      lm.markBus(out);
      const int padbar = lm.signal(name() + ".padbar" + std::to_string(i));
      lm.add(netlist::GateKind::PullDown, {dr, padbar}, out, name() + ".drive");
    }
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    return "input port '" + name() + "': " + std::to_string(ctx.dataWidth) +
           " pads drive the bus (phi1) when [" + drive_ + "]";
  }

 private:
  int bus_;
  std::string drive_;
};

class OutPortElement final : public Element {
 public:
  OutPortElement(std::string name, int bus, std::string sampleDecode)
      : Element(std::move(name)), bus_(bus), sample_(std::move(sampleDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "outport"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    GeneratedElement ge;
    std::vector<cell::Cell*> slices;
    geom::Coord ctlX = 0;
    for (int i = 0; i < ctx.dataWidth; ++i) {
      SliceBuilder sb(*ctx.lib, name() + ".slice" + std::to_string(i), naturalPitch(ctx));
      const int uS = sb.addBusTap(bus_ == 0 ? BusTrack::A : BusTrack::B);
      sb.addInv(true, true);
      sb.addM2P();
      for (int j = 0; j < i; ++j) sb.addSpacer(true, false);
      sb.addLane(0, lam(33), true);
      for (int j = i + 1; j < ctx.dataWidth; ++j) sb.addLane(0, naturalPitch(ctx), false);
      ctlX = sb.controlX(uS);
      slices.push_back(fitSlice(ctx, sb.finish()));
    }
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[bus_] = true;
    ge.controls = {ControlLine{name() + ".smp", sample_, 1, ctlX}};
    ge.column->addBristle(cell::Bristle{ge.controls[0].name, cell::BristleFlavor::Control,
                                        cell::Side::North, {ctlX, ge.column->height()},
                                        tech::Layer::Poly, lam(2), sample_, 1,
                                        ge.controls[0].name});
    for (int i = 0; i < ctx.dataWidth; ++i) {
      const geom::Coord laneX = (3 + static_cast<geom::Coord>(i)) * contract().unitW + lam(8);
      cell::Bristle b;
      b.name = name() + ".pad" + std::to_string(i);
      b.flavor = cell::BristleFlavor::PadOut;
      b.side = cell::Side::South;
      b.pos = {laneX, 0};
      b.layer = tech::Layer::Poly;
      b.width = lam(2);
      b.net = name() + ".sb" + std::to_string(i);
      ge.column->addBristle(std::move(b));
    }
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    const int smp = lm.signal(name() + ".smp");
    for (int i = 0; i < ctx.dataWidth; ++i) {
      const int in = lm.signal(busSignal(ctx, bus_, i));
      lm.markBus(in);
      const int s = lm.signal(name() + ".s" + std::to_string(i));
      const int sb = lm.signal(name() + ".sb" + std::to_string(i));
      lm.add(netlist::GateKind::Latch, {in, smp}, s, name() + ".sample");
      lm.add(netlist::GateKind::Inv, {s}, sb);
    }
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    return "output port '" + name() + "': " + std::to_string(ctx.dataWidth) +
           " pads sample the bus (phi1) when [" + sample_ + "]";
  }

 private:
  int bus_;
  std::string sample_;
};

class ProbeElement final : public Element {
 public:
  ProbeElement(std::string name, int bus, int bit)
      : Element(std::move(name)), bus_(bus), bit_(bit) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "probe"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    GeneratedElement ge;
    std::vector<cell::Cell*> slices;
    geom::Coord ctlX = lam(8);
    for (int i = 0; i < ctx.dataWidth; ++i) {
      SliceBuilder sb(*ctx.lib, name() + ".slice" + std::to_string(i), naturalPitch(ctx));
      if (i == bit_) {
        const int uS = sb.addBusTap(bus_ == 0 ? BusTrack::A : BusTrack::B);
        sb.addInv(true, true);
        sb.addM2P();
        sb.addLane(lam(31), naturalPitch(ctx), true);  // lane exits north
        ctlX = sb.controlX(uS);
      } else {
        sb.addSpacer(false, false);
        sb.addSpacer(false, false);
        sb.addSpacer(false, false);
        if (i > bit_) {
          sb.addLane(0, naturalPitch(ctx), false);
        } else {
          sb.addSpacer(false, false);
        }
      }
      slices.push_back(fitSlice(ctx, sb.finish()));
    }
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[bus_] = true;
    ge.controls = {ControlLine{name() + ".smp", "1", 1, ctlX}};
    ge.column->addBristle(cell::Bristle{ge.controls[0].name, cell::BristleFlavor::Control,
                                        cell::Side::North, {ctlX, ge.column->height()},
                                        tech::Layer::Poly, lam(2), "1", 1,
                                        ge.controls[0].name});
    cell::Bristle b;
    b.name = name() + ".pad";
    b.flavor = cell::BristleFlavor::Probe;
    b.side = cell::Side::North;
    b.pos = {3 * contract().unitW + lam(8), ge.column->height()};
    b.layer = tech::Layer::Poly;
    b.width = lam(2);
    b.net = name() + ".sb";
    ge.column->addBristle(std::move(b));
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    const int smp = lm.signal(name() + ".smp");
    const int in = lm.signal(busSignal(ctx, bus_, bit_));
    lm.markBus(in);
    const int s = lm.signal(name() + ".s");
    const int sb = lm.signal(name() + ".sb");
    lm.add(netlist::GateKind::Latch, {in, smp}, s, name() + ".sample");
    lm.add(netlist::GateKind::Inv, {s}, sb);
  }

  [[nodiscard]] std::string describe(const ElementContext&) const override {
    return "probe '" + name() + "': routes bus bit " + std::to_string(bit_) +
           " to a pad (prototype observation point)";
  }

 private:
  int bus_;
  int bit_;
};

}  // namespace

std::unique_ptr<Element> makeInPort(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                    icl::DiagnosticList& diags) {
  const int bus = busParam(decl, chip, "bus", 0, diags);
  std::string drive = decodeParam(decl, "drive", chip, true, diags);
  return std::make_unique<InPortElement>(decl.name, bus, std::move(drive));
}

std::unique_ptr<Element> makeOutPort(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                     icl::DiagnosticList& diags) {
  const int bus = busParam(decl, chip, "bus", 0, diags);
  std::string sample = decodeParam(decl, "sample", chip, true, diags);
  return std::make_unique<OutPortElement>(decl.name, bus, std::move(sample));
}

std::unique_ptr<Element> makeProbe(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                   icl::DiagnosticList& diags) {
  const int bus = busParam(decl, chip, "bus", 0, diags);
  const long long bit = intParam(decl, "bit", 0, 0, 63, diags);
  if (bit >= chip.dataWidth) {
    diags.error(decl.loc, "probe '" + decl.name + "': bit " + std::to_string(bit) +
                              " exceeds data width " + std::to_string(chip.dataWidth));
  }
  return std::make_unique<ProbeElement>(decl.name, bus, static_cast<int>(bit));
}

}  // namespace bb::elements
