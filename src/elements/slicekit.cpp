#include "elements/slicekit.hpp"

#include <cassert>

namespace bb::elements {

namespace {
using geom::Point;
using geom::Rect;
using tech::Layer;

/// Static pull-up current of one depletion load (uA).
double loadCurrent() { return tech::electrical().pullup_current_ua; }
}  // namespace

const SliceContract& contract() noexcept {
  static const SliceContract c{};
  return c;
}

SliceBuilder::SliceBuilder(cell::CellLibrary& lib, std::string name, Coord pitch)
    : lib_(lib), cell_(lib.create(std::move(name))), pitch_(pitch) {
  assert(pitch >= contract().naturalPitch);
}

Coord SliceBuilder::x0() const noexcept {
  return static_cast<Coord>(units_) * contract().unitW;
}

Coord SliceBuilder::controlX(int idx) const noexcept {
  return static_cast<Coord>(idx) * contract().unitW + lam(8);
}

Coord SliceBuilder::width() const noexcept {
  return static_cast<Coord>(units_) * contract().unitW;
}

int SliceBuilder::addInv(bool railInput, bool outEast) {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  if (railInput) {
    // Buried contact joins the west data rail to the input poly; the
    // stored value sits on this gate's capacitance (dynamic storage).
    c.addRect(Layer::Diffusion, Rect{x + lam(0), lam(23), x + lam(4), lam(27)});
    c.addRect(Layer::Poly, Rect{x + lam(0), lam(23), x + lam(4), lam(27)});
    c.addRect(Layer::Buried, Rect{x + lam(0), lam(23), x + lam(4), lam(27)});
    c.addRect(Layer::Poly, Rect{x + lam(2), lam(25), x + lam(12), lam(27)});  // gate lead
  } else {
    c.addRect(Layer::Poly, Rect{x + lam(0), lam(25), x + lam(12), lam(27)});  // west poly in
  }
  // Pull-down / pull-up diffusion column.
  c.addRect(Layer::Diffusion, Rect{x + lam(8), lam(2), x + lam(10), pitch_ - lam(4)});
  // GND connection.
  c.addRect(Layer::Diffusion, Rect{x + lam(7), lam(0), x + lam(11), lam(4)});
  c.addRect(Layer::Contact, Rect{x + lam(8), lam(1), x + lam(10), lam(3)});
  // Output node: diff pad, contact, metal strap to the depletion gate.
  c.addRect(Layer::Diffusion, Rect{x + lam(7), lam(28), x + lam(11), lam(32)});
  c.addRect(Layer::Contact, Rect{x + lam(8), lam(29), x + lam(10), lam(31)});
  c.addRect(Layer::Metal, Rect{x + lam(3), lam(28), x + lam(11), lam(32)});
  c.addRect(Layer::Metal, Rect{x + lam(3), lam(28), x + lam(7), lam(37)});
  // Depletion pull-up: gate strapped to the output (load configuration).
  c.addRect(Layer::Poly, Rect{x + lam(3), lam(33), x + lam(7), lam(37)});   // tab
  c.addRect(Layer::Contact, Rect{x + lam(4), lam(34), x + lam(6), lam(36)});
  c.addRect(Layer::Poly, Rect{x + lam(6), lam(33), x + lam(12), lam(35)});  // dep gate
  c.addRect(Layer::Implant, Rect{x + lam(6), lam(31), x + lam(12), lam(37)});
  // Vdd connection.
  c.addRect(Layer::Diffusion,
            Rect{x + lam(7), contract().vddY0(pitch_), x + lam(11), contract().vddY1(pitch_)});
  c.addRect(Layer::Contact, Rect{x + lam(8), contract().vddY0(pitch_) + lam(1), x + lam(10),
                                 contract().vddY0(pitch_) + lam(3)});
  if (outEast) {
    c.addRect(Layer::Metal, Rect{x + lam(11), lam(28), x + lam(16), lam(32)});
  }
  ++depletionLoads_;
  cell_->addOwnPower(loadCurrent());
  return units_++;
}

int SliceBuilder::addBusTap(BusTrack bus, bool flip, bool highRail) {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  const SliceContract& k = contract();
  // Vertical control poly (full height, at the unit center).
  c.addRect(Layer::Poly, Rect{x + lam(7), 0, x + lam(9), pitch_});
  // Bus contact pad: metal pad covering the track, cut, diffusion pad.
  // Taps are inset 2L from the unit edge so abutting columns keep the
  // 3L diffusion spacing across the seam (interface contract).
  const Coord padY0 = bus == BusTrack::A ? k.busAY0 - lam(1) : k.busBY0 - lam(1);
  const Coord tx = flip ? x + lam(10) : x + lam(2);  // pad west x
  c.addRect(Layer::Metal, Rect{tx, padY0, tx + lam(4), padY0 + lam(5)});
  c.addRect(Layer::Contact, Rect{tx + lam(1), padY0 + lam(1), tx + lam(3), padY0 + lam(3)});
  c.addRect(Layer::Diffusion, Rect{tx, padY0, tx + lam(4), padY0 + lam(4)});
  // Rail and tap riser. A bus tap is always a column-boundary unit
  // (first when unflipped, last when flipped), and rail y positions move
  // under pitch stretching, so the rail is inset 2L at the column edge to
  // keep the cross-seam diffusion spacing whatever the neighbour's
  // stretch (interface contract).
  const Coord railY0 = highRail ? lam(35) : k.railY0;
  const Coord railY1 = highRail ? lam(37) : k.railY1;
  const Coord rx0 = flip ? x : x + lam(2);
  const Coord rx1 = flip ? x + lam(14) : x + lam(16);
  c.addRect(Layer::Diffusion, Rect{rx0, railY0, rx1, railY1});
  c.addRect(Layer::Diffusion, Rect{tx + lam(1), padY0, tx + lam(3), railY1});
  return units_++;
}

int SliceBuilder::addPass() {
  const Coord x = x0();
  cell_->addRect(Layer::Poly, Rect{x + lam(7), 0, x + lam(9), pitch_});
  cell_->addRect(Layer::Diffusion, Rect{x, contract().railY0, x + lam(16), contract().railY1});
  return units_++;
}

int SliceBuilder::addM2D(bool railEast) {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  c.addRect(Layer::Metal, Rect{x, lam(28), x + lam(4), lam(32)});
  c.addRect(Layer::Contact, Rect{x + lam(1), lam(29), x + lam(3), lam(31)});
  c.addRect(Layer::Diffusion, Rect{x, lam(28), x + lam(4), lam(32)});
  c.addRect(Layer::Diffusion, Rect{x + lam(1), lam(23), x + lam(3), lam(32)});
  c.addRect(Layer::Diffusion,
            Rect{x + lam(1), lam(23), x + (railEast ? lam(16) : lam(14)), lam(25)});
  return units_++;
}

int SliceBuilder::addM2P() {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  c.addRect(Layer::Metal, Rect{x, lam(28), x + lam(4), lam(32)});
  c.addRect(Layer::Contact, Rect{x + lam(1), lam(29), x + lam(3), lam(31)});
  c.addRect(Layer::Poly, Rect{x, lam(28), x + lam(4), lam(32)});
  c.addRect(Layer::Poly, Rect{x + lam(2), lam(31), x + lam(16), lam(33)});  // stub east
  return units_++;
}

int SliceBuilder::addRailGate() {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  // Buried contact taps the west data rail onto poly.
  c.addRect(Layer::Diffusion, Rect{x + lam(0), lam(23), x + lam(4), lam(27)});
  c.addRect(Layer::Poly, Rect{x + lam(0), lam(23), x + lam(4), lam(27)});
  c.addRect(Layer::Buried, Rect{x + lam(0), lam(23), x + lam(4), lam(27)});
  c.addRect(Layer::Poly, Rect{x + lam(1), lam(25), x + lam(3), lam(33)});   // riser
  c.addRect(Layer::Poly, Rect{x + lam(1), lam(31), x + lam(12), lam(33)});  // gate lead
  // Rail2 (east) down to GND through the gated transistor.
  c.addRect(Layer::Diffusion, Rect{x + lam(6), lam(35), x + lam(16), lam(37)});
  c.addRect(Layer::Diffusion, Rect{x + lam(8), lam(2), x + lam(10), lam(37)});
  c.addRect(Layer::Diffusion, Rect{x + lam(7), lam(0), x + lam(11), lam(4)});
  c.addRect(Layer::Contact, Rect{x + lam(8), lam(1), x + lam(10), lam(3)});
  return units_++;
}

int SliceBuilder::addPullStub() {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  // West data rail into pull-down to GND; gate fed from east poly stub.
  c.addRect(Layer::Diffusion, Rect{x, contract().railY0, x + lam(8), contract().railY1});
  c.addRect(Layer::Diffusion, Rect{x + lam(6), lam(2), x + lam(8), contract().railY1});
  c.addRect(Layer::Diffusion, Rect{x + lam(5), lam(0), x + lam(9), lam(4)});
  c.addRect(Layer::Contact, Rect{x + lam(6), lam(1), x + lam(8), lam(3)});
  c.addRect(Layer::Poly, Rect{x + lam(2), lam(13), x + lam(13), lam(15)});  // gate
  c.addRect(Layer::Poly, Rect{x + lam(9), lam(13), x + lam(11), lam(33)});  // riser
  c.addRect(Layer::Poly, Rect{x + lam(9), lam(31), x + lam(16), lam(33)});  // stub east
  return units_++;
}

int SliceBuilder::addPullVdd() {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  c.addRect(Layer::Diffusion, Rect{x, contract().railY0, x + lam(8), contract().railY1});
  c.addRect(Layer::Diffusion, Rect{x + lam(6), lam(2), x + lam(8), contract().railY1});
  c.addRect(Layer::Diffusion, Rect{x + lam(5), lam(0), x + lam(9), lam(4)});
  c.addRect(Layer::Contact, Rect{x + lam(6), lam(1), x + lam(8), lam(3)});
  c.addRect(Layer::Poly, Rect{x + lam(2), lam(13), x + lam(13), lam(15)});  // gate
  // Gate riser tied to Vdd (always on).
  c.addRect(Layer::Poly, Rect{x + lam(9), lam(13), x + lam(11), contract().vddY1(pitch_)});
  c.addRect(Layer::Poly, Rect{x + lam(8), contract().vddY0(pitch_), x + lam(12),
                              contract().vddY1(pitch_)});
  c.addRect(Layer::Contact, Rect{x + lam(9), contract().vddY0(pitch_) + lam(1), x + lam(11),
                                 contract().vddY0(pitch_) + lam(3)});
  // The metal surround is provided by the Vdd rail itself.
  return units_++;
}

int SliceBuilder::addPrecharge(bool busA, bool busB) {
  const Coord x = x0();
  cell::Cell& c = *cell_;
  const SliceContract& k = contract();
  // Vertical control poly (phi2) with a horizontal gate branch.
  c.addRect(Layer::Poly, Rect{x + lam(7), 0, x + lam(9), pitch_});
  c.addRect(Layer::Poly, Rect{x + lam(0), lam(25), x + lam(16), lam(27)});
  auto riser = [&](Coord rx, Coord fromY) {
    // rx = west edge of the 4L-wide pad column.
    c.addRect(Layer::Metal, Rect{x + rx, fromY - lam(1), x + rx + lam(4), fromY + lam(4)});
    c.addRect(Layer::Contact,
              Rect{x + rx + lam(1), fromY, x + rx + lam(3), fromY + lam(2)});
    c.addRect(Layer::Diffusion, Rect{x + rx, fromY - lam(1), x + rx + lam(4), fromY + lam(3)});
    // Diffusion up to the Vdd connection.
    c.addRect(Layer::Diffusion,
              Rect{x + rx + lam(1), fromY, x + rx + lam(3), contract().vddY1(pitch_)});
    c.addRect(Layer::Diffusion, Rect{x + rx, contract().vddY0(pitch_), x + rx + lam(4),
                                     contract().vddY1(pitch_)});
    c.addRect(Layer::Contact, Rect{x + rx + lam(1), contract().vddY0(pitch_) + lam(1),
                                   x + rx + lam(3), contract().vddY0(pitch_) + lam(3)});
  };
  if (busA) riser(lam(1), k.busAY0);
  if (busB) riser(lam(9), k.busBY0);
  return units_++;
}

int SliceBuilder::addLane(Coord y0, Coord y1, bool stubWest) {
  const Coord x = x0();
  cell_->addRect(Layer::Poly, Rect{x + lam(7), y0, x + lam(9), y1});
  if (stubWest) {
    cell_->addRect(Layer::Poly, Rect{x, lam(31), x + lam(9), lam(33)});
  }
  return units_++;
}

int SliceBuilder::addSpacer(bool carryStub, bool carryRail) {
  const Coord x = x0();
  if (carryStub) {
    cell_->addRect(Layer::Poly, Rect{x, lam(31), x + lam(16), lam(33)});
  }
  if (carryRail) {
    cell_->addRect(Layer::Diffusion, Rect{x, contract().railY0, x + lam(16), contract().railY1});
  }
  return units_++;
}

cell::Cell* SliceBuilder::finish(bool drawBusA, bool drawBusB) {
  const SliceContract& k = contract();
  const Coord w = width();
  cell::Cell& c = *cell_;
  // Supply rails and bus tracks across the full slice.
  c.addRect(Layer::Metal, Rect{0, k.gndY0, w, k.gndY1});
  c.addRect(Layer::Metal, Rect{0, contract().vddY0(pitch_), w, contract().vddY1(pitch_)});
  if (drawBusA) c.addRect(Layer::Metal, Rect{0, k.busAY0, w, k.busAY1});
  if (drawBusB) c.addRect(Layer::Metal, Rect{0, k.busBY0, w, k.busBY1});
  // The stretch corridor between bus region and logic, plus power-rail
  // widening lines inside the rails.
  // Widen lines sit 1 lambda inside a rail edge so contact cuts (which
  // must stay 2 lambda) translate rather than stretch.
  c.addStretch(cell::StretchAxis::Y, k.pitchStretchY, "pitch");
  c.addStretch(cell::StretchAxis::Y, k.gndY1 - lam(1), "gnd-widen");
  c.addStretch(cell::StretchAxis::Y, contract().vddY0(pitch_) + lam(1), "vdd-widen");
  c.setBoundary(Rect{0, 0, w, pitch_});
  return cell_;
}

Coord bufferRowHeight() noexcept { return lam(36); }

/// Metal clock distribution lines inside the buffer row: phi1 at
/// y [9,12]L, phi2 at y [17,20]L (drawn row-wide by Pass 2).
Coord bufferClockLineY0(int phase) noexcept { return phase == 1 ? lam(9) : lam(17); }

cell::Cell* buildControlBuffer(cell::CellLibrary& lib, int phase) {
  // One cell per phase variant. The decode output enters as poly from the
  // north; a pass transistor gated by the tapped clock line qualifies it;
  // the control line exits south as poly. Clocks are distributed in METAL
  // so the channel diffusion crosses the other phase's line harmlessly.
  cell::Cell* c = lib.create(phase == 1 ? "ctlbuf_ph1" : "ctlbuf_ph2");
  using tech::Layer;
  // South: qualified control exit (poly) through a buried contact.
  c->addRect(Layer::Poly, Rect{lam(6), lam(0), lam(8), lam(3)});
  c->addRect(Layer::Poly, Rect{lam(5), lam(1), lam(9), lam(5)});
  c->addRect(Layer::Diffusion, Rect{lam(5), lam(1), lam(9), lam(5)});
  c->addRect(Layer::Buried, Rect{lam(5), lam(1), lam(9), lam(5)});
  // Pass-transistor channel.
  c->addRect(Layer::Diffusion, Rect{lam(6), lam(5), lam(8), lam(29)});
  // Clock tap on this phase's metal line + poly gate lead.
  const Coord y0 = bufferClockLineY0(phase);
  c->addRect(Layer::Metal, Rect{lam(0), y0 - lam(1), lam(4), y0 + lam(4)});
  c->addRect(Layer::Contact, Rect{lam(1), y0, lam(3), y0 + lam(2)});
  c->addRect(Layer::Poly, Rect{lam(0), y0 - lam(1), lam(4), y0 + lam(4)});
  c->addRect(Layer::Poly, Rect{lam(0), y0, lam(10), y0 + lam(2)});
  // North: decode input through the upper buried contact.
  c->addRect(Layer::Poly, Rect{lam(5), lam(26), lam(9), lam(30)});
  c->addRect(Layer::Diffusion, Rect{lam(5), lam(26), lam(9), lam(30)});
  c->addRect(Layer::Buried, Rect{lam(5), lam(26), lam(9), lam(30)});
  c->addRect(Layer::Poly, Rect{lam(6), lam(30), lam(8), lam(36)});
  c->setBoundary(Rect{0, 0, lam(14), bufferRowHeight()});
  c->setDoc(std::string("control buffer, phase ") + (phase == 1 ? "1" : "2") +
            ": qualifies the decoded control line with the clock");
  return c;
}

}  // namespace bb::elements
