/// \file element.hpp
/// Core element interface — the paper's "data processing elements, such
/// as memories, shifters, and arithmetic-logic units".
///
/// Each element is a *procedural cell generator*: given the global
/// parameters (data width, common pitch, microcode format) it produces
/// its column cell (a stack of stretchable bit slices), its control
/// requirements (decode function + phase per control line), its logic
/// model fragment, and its text description. Elements first *vote* on
/// global parameters, then are executed in order by Pass 1.

#pragma once

#include "cell/library.hpp"
#include "icl/ast.hpp"
#include "icl/diagnostics.hpp"
#include "netlist/logic.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bb::elements {

/// Global parameters visible to every element during generation.
struct ElementContext {
  int dataWidth = 8;
  int busCount = 2;
  geom::Coord pitch = 0;  ///< common slice pitch; 0 during measurement
  geom::Coord railWiden = 0;  ///< extra supply-rail width from the power vote
  const icl::MicrocodeDecl* microcode = nullptr;
  cell::CellLibrary* lib = nullptr;
  /// Logic-signal prefixes of the bus segments passing this element.
  /// Bus stops advance the prefix ("busA" -> "busA#2"), keeping each
  /// segment a distinct electrical node in the logic model.
  std::string busPrefix[2] = {"busA", "busB"};
};

/// One control line the element needs from the instruction decoder.
struct ControlLine {
  std::string name;    ///< fully qualified, e.g. "R0.ld"
  std::string decode;  ///< decode function over microcode fields
  int phase = 1;       ///< clock phase qualifying the signal (1 or 2)
  geom::Coord xOffset = 0;  ///< x of the control poly within the column
};

/// The result of executing one element's generator.
struct GeneratedElement {
  cell::Cell* column = nullptr;
  std::vector<ControlLine> controls;
  bool usesBus[2] = {false, false};
  /// True if the bus segment stops after this element (busstop pseudo
  /// element); a new segment (with fresh precharge) starts beyond it.
  bool stopsBus[2] = {false, false};
  /// Static current demand in uA (also available via column->powerDemand).
  double power_ua = 0.0;
};

/// The parameter ballot of Pass 1: "all of the elements vote on the
/// values of global parameters" before any cell is generated.
/// Max-votes resolve to the largest proposal; sum-votes accumulate.
class ParameterBallot {
 public:
  void voteMax(const std::string& param, geom::Coord value);
  void voteSum(const std::string& param, double value);

  [[nodiscard]] geom::Coord maxOf(const std::string& param, geom::Coord dflt = 0) const;
  [[nodiscard]] double sumOf(const std::string& param) const;

 private:
  std::map<std::string, geom::Coord> max_;
  std::map<std::string, double> sum_;
};

/// Base class of every core element generator.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Phase 0: vote on global parameters.
  virtual void vote(ParameterBallot& ballot, const ElementContext& ctx) const;

  /// Phase 1a: report the natural (unstretched) pitch of this element's
  /// slices so the compiler can find the widest one.
  [[nodiscard]] virtual geom::Coord naturalPitch(const ElementContext& ctx) const;

  /// Phase 1b: produce the column cell at ctx.pitch (>= naturalPitch).
  [[nodiscard]] virtual GeneratedElement generate(const ElementContext& ctx) = 0;

  /// Emit this element's logic-model fragment (TTL-style logic rep and
  /// simulation substrate). Control inputs are the qualified control
  /// signals named as in GeneratedElement::controls.
  virtual void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const = 0;

  /// One-paragraph description for the Text representation.
  [[nodiscard]] virtual std::string describe(const ElementContext& ctx) const;

 private:
  std::string name_;
};

/// Instantiate an element from its declaration. Unknown kinds and missing
/// parameters are diagnosed; returns nullptr on error.
[[nodiscard]] std::unique_ptr<Element> makeElement(const icl::ElementDecl& decl,
                                                   const icl::ChipDesc& chip,
                                                   icl::DiagnosticList& diags);

/// The list of element kinds the library knows (for diagnostics and docs).
[[nodiscard]] std::vector<std::string> knownElementKinds();

}  // namespace bb::elements
