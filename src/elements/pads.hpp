/// \file pads.hpp
/// The pad cell library. "When the chip is compiled, the appropriate pad
/// is automatically placed on the chip and a wire is routed between the
/// pad and the cell" — Pass 3 picks cells from here based on the flavor
/// of each pad-request bristle.

#pragma once

#include "cell/library.hpp"
#include "netlist/logic.hpp"

namespace bb::elements {

enum class PadKind : std::uint8_t { In, Out, Bidir, Vdd, Gnd, Clock };

[[nodiscard]] std::string_view padKindName(PadKind k) noexcept;

/// Map a pad-request bristle flavor to the pad cell kind.
[[nodiscard]] PadKind padKindForFlavor(cell::BristleFlavor f) noexcept;

/// Build (or fetch, if already built) the pad cell of the given kind.
/// Pad cells are drawn with their bonding square at the outer (south)
/// edge and a "pin" bristle at the inner (north) edge; Pass 3 orients
/// them so the pin faces the core.
[[nodiscard]] cell::Cell* padCell(cell::CellLibrary& lib, PadKind k);

/// Pad geometry constants.
[[nodiscard]] geom::Coord padSize() noexcept;     ///< square side
[[nodiscard]] geom::Coord padPinWidth() noexcept;

/// Emit the pad's logic fragment: input pads invert the external signal
/// onto the requesting net ("<net>"), output pads invert the net onto the
/// external signal "pad.<name>".
void emitPadLogic(netlist::LogicModel& lm, PadKind k, const std::string& padName,
                  const std::string& net);

}  // namespace bb::elements
