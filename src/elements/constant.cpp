/// \file constant.cpp
/// The constant element — a "smart cell" in the paper's sense: it
/// computes its own layout from its value. Bits that are 1 need no
/// silicon at all (the precharged bus already reads high); bits that are
/// 0 get a gated pull-down chain. A constant of all-ones is two spacer
/// columns wide and draws no power.

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

namespace bb::elements {

namespace {

class ConstantElement final : public Element {
 public:
  ConstantElement(std::string name, int bus, unsigned long long value, std::string driveDecode)
      : Element(std::move(name)), bus_(bus), value_(value), drive_(std::move(driveDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "constant"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    GeneratedElement ge;
    std::vector<cell::Cell*> slices;
    geom::Coord ctlX = lam(8);
    for (int i = 0; i < ctx.dataWidth; ++i) {
      SliceBuilder sb(*ctx.lib, name() + ".slice" + std::to_string(i), naturalPitch(ctx));
      if (((value_ >> i) & 1) == 0) {
        const int u = sb.addBusTap(bus_ == 0 ? BusTrack::A : BusTrack::B);
        sb.addPullVdd();
        ctlX = sb.controlX(u);
      } else {
        // A 1 bit: the precharged bus already carries it. The control
        // poly still runs through so the column is uniform.
        const int u = sb.addPass();
        sb.addSpacer(false, false);
        ctlX = sb.controlX(u);
      }
      slices.push_back(fitSlice(ctx, sb.finish()));
    }
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[bus_] = true;
    ge.controls = {ControlLine{name() + ".dr", drive_, 1, ctlX}};
    ge.column->addBristle(cell::Bristle{ge.controls[0].name, cell::BristleFlavor::Control,
                                        cell::Side::North, {ctlX, ge.column->height()},
                                        tech::Layer::Poly, lam(2), drive_, 1,
                                        ge.controls[0].name});
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    const int dr = lm.signal(name() + ".dr");
    for (int i = 0; i < ctx.dataWidth; ++i) {
      if (((value_ >> i) & 1) != 0) continue;
      const int out = lm.signal(busSignal(ctx, bus_, i));
      lm.markBus(out);
      lm.add(netlist::GateKind::PullDown, {dr}, out, name() + ".zero");
    }
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    return "constant '" + name() + "': drives " + std::to_string(value_) + " (" +
           std::to_string(ctx.dataWidth) + "-bit) when [" + drive_ + "]";
  }

 private:
  int bus_;
  unsigned long long value_;
  std::string drive_;
};

class BusStopElement final : public Element {
 public:
  BusStopElement(std::string name, int bus) : Element(std::move(name)), bus_(bus) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "busstop"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    SliceBuilder sb(*ctx.lib, name() + ".slice", naturalPitch(ctx));
    sb.addSpacer(false, false);
    cell::Cell* slice = sb.finish(/*drawBusA=*/bus_ != 0, /*drawBusB=*/bus_ != 1);
    slice->setDoc("bus stop: the bus track is interrupted here");
    slice = fitSlice(ctx, slice);

    GeneratedElement ge;
    std::vector<cell::Cell*> slices(static_cast<std::size_t>(ctx.dataWidth), slice);
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.stopsBus[bus_] = true;
    ge.power_ua = 0;
    return ge;
  }

  void emitLogic(netlist::LogicModel&, const ElementContext&) const override {
    // Purely structural: the compiler splits the bus signal prefix here.
  }

  [[nodiscard]] std::string describe(const ElementContext&) const override {
    return "bus stop '" + name() + "': ends bus " + std::to_string(bus_) +
           "'s segment; a fresh segment (with its own precharge) serves the rest of the core";
  }

 private:
  int bus_;
};

}  // namespace

std::unique_ptr<Element> makeConstant(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                      icl::DiagnosticList& diags) {
  const int bus = busParam(decl, chip, "bus", 0, diags);
  const long long value = intParam(decl, "value", 0, 0, (1ll << 62), diags);
  std::string drive = decodeParam(decl, "drive", chip, true, diags);
  if (chip.dataWidth < 64 && value >= (1ll << chip.dataWidth)) {
    diags.warning(decl.loc, "constant '" + decl.name + "': value " + std::to_string(value) +
                                " truncated to " + std::to_string(chip.dataWidth) + " bits");
  }
  return std::make_unique<ConstantElement>(decl.name, bus,
                                           static_cast<unsigned long long>(value),
                                           std::move(drive));
}

std::unique_ptr<Element> makeBusStop(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                     icl::DiagnosticList& diags) {
  const int bus = busParam(decl, chip, "bus", 0, diags);
  return std::make_unique<BusStopElement>(decl.name, bus);
}

}  // namespace bb::elements
