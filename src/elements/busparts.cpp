/// \file busparts.cpp
/// Compiler-inserted bus infrastructure: the precharge column placed at
/// the start of every bus segment ("bus precharge circuits must be added
/// for each bus. Details like these need not be specified by the user,
/// but are added by the compiler").

#include "elements/busparts.hpp"

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

namespace bb::elements {

PrechargeResult buildPrechargeColumn(const ElementContext& ctx, const std::string& name,
                                     bool busA, bool busB) {
  SliceBuilder sb(*ctx.lib, name + ".slice", contract().naturalPitch);
  const int u = sb.addPrecharge(busA, busB);
  cell::Cell* slice = sb.finish();
  slice->setDoc("bus precharge slice (phi2 pulls the bus toward Vdd)");
  slice = fitSlice(ctx, slice);

  std::vector<cell::Cell*> slices(static_cast<std::size_t>(ctx.dataWidth), slice);
  PrechargeResult res;
  res.column = stackSlices(*ctx.lib, name, slices);
  res.column->setDoc("precharge column '" + name + "' (" + (busA ? "busA " : "") +
                     (busB ? "busB" : "") + ")");
  res.control = ControlLine{name + ".pre", "1", 2, sb.controlX(u)};
  res.column->addBristle(cell::Bristle{res.control.name, cell::BristleFlavor::Control,
                                       cell::Side::North,
                                       {res.control.xOffset, res.column->height()},
                                       tech::Layer::Poly, lam(2), "1", 2, res.control.name});
  return res;
}

void emitPrechargeLogic(netlist::LogicModel& lm, const std::string& ctlName,
                        const std::string& busPrefix, int dataWidth) {
  const int pre = lm.signal(ctlName);
  for (int i = 0; i < dataWidth; ++i) {
    const int bus = lm.signal(busPrefix + std::to_string(i));
    lm.markBus(bus);
    lm.add(netlist::GateKind::Precharge, {pre}, bus, ctlName);
  }
}

}  // namespace bb::elements
