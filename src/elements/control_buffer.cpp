/// \file control_buffer.cpp
/// Pass 2 support: assembly of the control-buffer row that sits along
/// the core's north edge. "First, control buffers to drive the control
/// lines are inserted along the edge of the core. The timing is also
/// added to the control signals by the buffers."

#include "elements/control_buffer.hpp"

#include "elements/slicekit.hpp"

namespace bb::elements {

BufferRow buildBufferRow(cell::CellLibrary& lib, const std::string& name,
                         const std::vector<ControlLine>& controls, geom::Coord rowWidth) {
  BufferRow row;
  row.cell = lib.create(name);
  cell::Cell* ph1 = buildControlBuffer(lib, 1);
  cell::Cell* ph2 = buildControlBuffer(lib, 2);
  const geom::Coord h = bufferRowHeight();

  // The two metal clock distribution lines run the full row width; each
  // buffer taps its phase's line.
  for (int phase = 1; phase <= 2; ++phase) {
    const geom::Coord y0 = bufferClockLineY0(phase);
    row.cell->addRect(tech::Layer::Metal, geom::Rect{0, y0, rowWidth, y0 + lam(3)});
  }

  for (const ControlLine& cl : controls) {
    // Centre the 14L buffer cell on the control line's x.
    const geom::Coord x = cl.xOffset - lam(7);
    row.cell->addInstance(cl.phase == 1 ? ph1 : ph2, geom::Transform::translate({x, 0}),
                          "buf:" + cl.name);
  }

  // The clock lines request clock-driver pads at the row's east end.
  for (int phase = 1; phase <= 2; ++phase) {
    const geom::Coord y0 = bufferClockLineY0(phase);
    cell::Bristle b;
    b.name = phase == 1 ? "phi1" : "phi2";
    b.flavor = cell::BristleFlavor::PadClock;
    b.side = cell::Side::East;
    b.pos = {rowWidth, y0 + lam(1)};
    b.layer = tech::Layer::Metal;
    b.width = lam(3);
    b.net = b.name;
    row.cell->addBristle(std::move(b));
  }

  row.cell->setBoundary(geom::Rect{0, 0, rowWidth, h});
  row.cell->setDoc("control buffer row: " + std::to_string(controls.size()) +
                   " clock-qualified control drivers");
  row.height = h;
  return row;
}

void emitBufferLogic(netlist::LogicModel& lm, const ControlLine& cl,
                     const std::string& decodeSignal) {
  const int dec = lm.signal(decodeSignal);
  const int phi = lm.signal(cl.phase == 1 ? "phi1" : "phi2");
  const int out = lm.signal(cl.name);
  lm.add(netlist::GateKind::And, {dec, phi}, out, "buf:" + cl.name);
}

}  // namespace bb::elements
