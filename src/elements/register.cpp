/// \file register.cpp
/// The register element: a master/slave dynamic register bit per slice.
///
/// Data path per bit (six kit units):
///   busIn --pass(load)--> M (gate storage) --inv--> Mb --metal-->
///   rail --pass(phi2)--> S (gate storage) --gates--> pull-down chain
///   driven onto busOut through pass(drive).
/// M holds the loaded value; S = not M after phi2; driving pulls the
/// precharged bus low exactly when the stored bit is 0.

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

namespace bb::elements {

namespace {

class RegisterElement final : public Element {
 public:
  RegisterElement(std::string name, int busIn, int busOut, std::string loadDecode,
                  std::string driveDecode)
      : Element(std::move(name)),
        busIn_(busIn),
        busOut_(busOut),
        load_(std::move(loadDecode)),
        drive_(std::move(driveDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "register"; }

  GeneratedElement generate(const ElementContext& ctx) override {
    SliceBuilder sb(*ctx.lib, name() + ".slice", naturalPitch(ctx));
    const int uLoad = sb.addBusTap(busIn_ == 0 ? BusTrack::A : BusTrack::B);
    sb.addInv(/*railInput=*/true, /*outEast=*/true);
    sb.addM2D();
    const int uPh2 = sb.addPass();
    sb.addRailGate();
    const int uDrive = sb.addBusTap(busOut_ == 0 ? BusTrack::A : BusTrack::B,
                                    /*flip=*/true, /*highRail=*/true);
    cell::Cell* slice = sb.finish();
    slice->setDoc("register bit slice (master/slave dynamic storage)");
    slice = fitSlice(ctx, slice);

    GeneratedElement ge;
    std::vector<cell::Cell*> slices(static_cast<std::size_t>(ctx.dataWidth), slice);
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[busIn_] = true;
    ge.usesBus[busOut_] = true;
    ge.controls = {
        ControlLine{name() + ".ld", load_, 1, sb.controlX(uLoad)},
        ControlLine{name() + ".ph2", "1", 2, sb.controlX(uPh2)},
        ControlLine{name() + ".dr", drive_, 1, sb.controlX(uDrive)},
    };
    for (const ControlLine& cl : ge.controls) {
      ge.column->addBristle(cell::Bristle{cl.name, cell::BristleFlavor::Control,
                                          cell::Side::North,
                                          {cl.xOffset, ge.column->height()},
                                          tech::Layer::Poly, lam(2), cl.decode, cl.phase,
                                          cl.name});
    }
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    const int ld = lm.signal(name() + ".ld");
    const int ph2 = lm.signal(name() + ".ph2");
    const int dr = lm.signal(name() + ".dr");
    for (int i = 0; i < ctx.dataWidth; ++i) {
      const int in = lm.signal(busSignal(ctx, busIn_, i));
      const int out = lm.signal(busSignal(ctx, busOut_, i));
      lm.markBus(in);
      lm.markBus(out);
      const int m = lm.signal(name() + ".m" + std::to_string(i));
      const int mb = lm.signal(name() + ".mb" + std::to_string(i));
      const int s = lm.signal(name() + ".s" + std::to_string(i));
      lm.add(netlist::GateKind::Latch, {in, ld}, m, name() + ".master");
      lm.add(netlist::GateKind::Inv, {m}, mb);
      lm.add(netlist::GateKind::Latch, {mb, ph2}, s, name() + ".slave");
      lm.add(netlist::GateKind::PullDown, {dr, s}, out, name() + ".drive");
    }
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    return "register '" + name() + "': " + std::to_string(ctx.dataWidth) +
           "-bit dynamic register; load (phi1) when [" + load_ + "], drive (phi1) when [" +
           drive_ + "]";
  }

 private:
  int busIn_;
  int busOut_;
  std::string load_;
  std::string drive_;
};

}  // namespace

std::unique_ptr<Element> makeRegister(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                      icl::DiagnosticList& diags) {
  const int in = busParam(decl, chip, "in", 0, diags);
  const int out = busParam(decl, chip, "out", chip.buses.size() > 1 ? 1 : 0, diags);
  std::string load = decodeParam(decl, "load", chip, true, diags);
  std::string drive = decodeParam(decl, "drive", chip, true, diags);
  return std::make_unique<RegisterElement>(decl.name, in, out, std::move(load),
                                           std::move(drive));
}

}  // namespace bb::elements
