/// \file slicekit.hpp
/// The low-level cell kit — the equivalent of the paper's human-designed
/// "low level cells" entered in a standard cell design language. The kit
/// holds the interface contract every slice obeys and a set of 14-lambda
/// unit columns (inverter, bus tap, pass gate, pull-down, ...) that the
/// element generators compose into bit slices.
///
/// Every unit's geometry was designed against the Mead–Conway rules and
/// is DRC-clean by construction; the unit coordinates below are part of
/// the interface contract (e.g. the data rail is always diffusion at
/// y = [23,25] lambda so any unit's east rail meets its neighbour's).

#pragma once

#include "cell/cell.hpp"
#include "cell/library.hpp"
#include "tech/rules.hpp"

namespace bb::elements {

using geom::Coord;

/// Lambda helper (grid units per lambda).
[[nodiscard]] constexpr Coord lam(Coord n) noexcept { return geom::lambda(n); }

/// The standard slice interface contract (all values in grid units).
struct SliceContract {
  Coord unitW = lam(16);        ///< width of one kit unit column
  Coord gndY0 = lam(0);         ///< GND rail [gndY0, gndY1]
  Coord gndY1 = lam(4);
  Coord busAY0 = lam(8);        ///< bus A metal track
  Coord busAY1 = lam(11);
  Coord busBY0 = lam(15);       ///< bus B metal track
  Coord busBY1 = lam(18);
  Coord pitchStretchY = lam(20);  ///< stretch corridor for pitch matching
  Coord railY0 = lam(23);       ///< data rail (diffusion)
  Coord railY1 = lam(25);
  Coord stubY0 = lam(31);       ///< poly stub track (lane connections)
  Coord stubY1 = lam(33);
  Coord naturalPitch = lam(48); ///< minimum slice pitch
  /// Vdd rail sits at [pitch-7, pitch-3] lambda.
  [[nodiscard]] Coord vddY0(Coord pitch) const noexcept { return pitch - lam(7); }
  [[nodiscard]] Coord vddY1(Coord pitch) const noexcept { return pitch - lam(3); }
};

[[nodiscard]] const SliceContract& contract() noexcept;

/// Which bus a unit taps.
enum class BusTrack : std::uint8_t { A, B };

/// Builder for one bit slice assembled from kit units. The builder draws
/// the supply rails and bus tracks across the final width, places unit
/// geometry at successive 14-lambda windows, and declares the standard
/// stretch lines. All `add*` calls append one unit and return the unit's
/// window index.
class SliceBuilder {
 public:
  /// `pitch` = slice height (>= contract().naturalPitch).
  SliceBuilder(cell::CellLibrary& lib, std::string name, Coord pitch);

  /// Inverter unit. If `railInput` the input comes from the west data
  /// rail through a buried contact (and stores on the gate); otherwise
  /// the input is a poly lead at the west edge (y [25,27]L).
  /// If `outEast`, the output metal is extended to the east edge
  /// (y [28,32]L) for a following M2D/M2P unit.
  int addInv(bool railInput, bool outEast);

  /// Bus tap: pass transistor between `bus` and the data rail, gated by a
  /// full-height vertical control poly at the unit center. `flip` places
  /// the tap east of the gate (bus joins the east rail segment).
  /// `highRail` uses the upper rail2 track (y [35,37]L) instead of the
  /// data rail — the drive-chain configuration.
  int addBusTap(BusTrack bus, bool flip = false, bool highRail = false);

  /// Plain pass gate on the data rail (vertical control poly).
  int addPass();

  /// Metal (west, y [28,32]L) to data-rail converter. With `railEast`
  /// the rail continues to the east edge (to feed a following PASS or
  /// RAILGATE); without, it stops 2L short (the next unit starts a fresh
  /// electrical node).
  int addM2D(bool railEast = true);

  /// Metal (west, y [28,32]L) to poly stub (east, y [31,33]L) converter.
  int addM2P();

  /// Rail-gated pull-down: west data rail value (via buried contact)
  /// gates a transistor between rail2 (east, y [35,37]L) and GND.
  int addRailGate();

  /// Pull-down from west data rail to GND, gate fed from the east poly
  /// stub (y [31,33]L). Used with a lane carrying the gating signal.
  int addPullStub();

  /// Pull-down from west data rail to GND with the gate tied to Vdd
  /// (always on) — constant-0 bus driver tail.
  int addPullVdd();

  /// Precharge unit: both buses get an enhancement pull-up to Vdd gated
  /// by the unit's vertical control poly (the phi2 line).
  int addPrecharge(bool busA, bool busB);

  /// Vertical poly lane at the unit center spanning [y0, y1]. With
  /// `stubWest`, a poly stub connects the lane to the west edge at the
  /// stub track (y [31,33]L must lie within [y0, y1]).
  int addLane(Coord y0, Coord y1, bool stubWest);

  /// Empty unit window, optionally continuing the poly stub track and/or
  /// the data rail across it.
  int addSpacer(bool carryStub, bool carryRail);

  /// Finish: draw rails/bus tracks across all units, set boundary and
  /// stretch lines. `drawBusA/B` control whether the bus tracks are drawn
  /// (a busstop slice omits them).
  cell::Cell* finish(bool drawBusA = true, bool drawBusB = true);

  /// Center x of the vertical control poly of unit `idx`.
  [[nodiscard]] Coord controlX(int idx) const noexcept;
  [[nodiscard]] int unitCount() const noexcept { return units_; }
  [[nodiscard]] Coord width() const noexcept;
  [[nodiscard]] cell::Cell* cell() noexcept { return cell_; }

 private:
  Coord x0() const noexcept;  ///< west edge of the current unit window

  cell::CellLibrary& lib_;
  cell::Cell* cell_;
  Coord pitch_;
  int units_ = 0;
  int depletionLoads_ = 0;
};

/// Build the control-buffer cell (Pass 2). Height 28L, width 14L; decode
/// poly enters the north edge, the qualified control poly exits south,
/// and the cell taps the phase-`phase` metal clock line that runs
/// horizontally through the buffer row (phi1 at y [7,10]L, phi2 at
/// y [13,16]L).
[[nodiscard]] cell::Cell* buildControlBuffer(cell::CellLibrary& lib, int phase);

/// Height of the buffer row cell.
[[nodiscard]] Coord bufferRowHeight() noexcept;

/// South edge y of the phase-1 / phase-2 metal clock lines within the
/// buffer row (Pass 2 draws them across the row; buffers tap them).
[[nodiscard]] Coord bufferClockLineY0(int phase) noexcept;

}  // namespace bb::elements
