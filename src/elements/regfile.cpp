/// \file regfile.cpp
/// The register-file (memory) element: n register rows sharing the buses.
/// Row selection happens in the instruction decoder — each row's load and
/// drive control lines carry a decode function conjoined with
/// `select == row`, so no address logic exists in the core at all (the
/// decoder PLA absorbs it; this is the Bristle Blocks way).

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

namespace bb::elements {

namespace {

class RegfileElement final : public Element {
 public:
  RegfileElement(std::string name, int n, std::string selectField, int busIn, int busOut,
                 std::string readDecode, std::string writeDecode)
      : Element(std::move(name)),
        n_(n),
        select_(std::move(selectField)),
        busIn_(busIn),
        busOut_(busOut),
        read_(std::move(readDecode)),
        write_(std::move(writeDecode)) {}

  [[nodiscard]] std::string_view kind() const noexcept override { return "regfile"; }

  [[nodiscard]] std::string rowLoadDecode(int r) const {
    return "(" + write_ + ") & " + select_ + "==" + std::to_string(r);
  }
  [[nodiscard]] std::string rowDriveDecode(int r) const {
    return "(" + read_ + ") & " + select_ + "==" + std::to_string(r);
  }

  GeneratedElement generate(const ElementContext& ctx) override {
    SliceBuilder sb(*ctx.lib, name() + ".slice", naturalPitch(ctx));
    GeneratedElement ge;
    for (int r = 0; r < n_; ++r) {
      const std::string rn = name() + ".r" + std::to_string(r);
      const int uLoad = sb.addBusTap(busIn_ == 0 ? BusTrack::A : BusTrack::B);
      sb.addInv(true, true);
      sb.addM2D();
      const int uPh2 = sb.addPass();
      sb.addRailGate();
      const int uDrive = sb.addBusTap(busOut_ == 0 ? BusTrack::A : BusTrack::B, true, true);
      ge.controls.push_back(ControlLine{rn + ".ld", rowLoadDecode(r), 1, sb.controlX(uLoad)});
      ge.controls.push_back(ControlLine{rn + ".ph2", "1", 2, sb.controlX(uPh2)});
      ge.controls.push_back(ControlLine{rn + ".dr", rowDriveDecode(r), 1, sb.controlX(uDrive)});
    }
    cell::Cell* slice = sb.finish();
    slice->setDoc("register-file bit slice: " + std::to_string(n_) + " storage rows");
    slice = fitSlice(ctx, slice);

    std::vector<cell::Cell*> slices(static_cast<std::size_t>(ctx.dataWidth), slice);
    ge.column = stackSlices(*ctx.lib, name(), slices);
    ge.column->setDoc(describe(ctx));
    ge.usesBus[busIn_] = true;
    ge.usesBus[busOut_] = true;
    for (const ControlLine& cl : ge.controls) {
      ge.column->addBristle(cell::Bristle{cl.name, cell::BristleFlavor::Control,
                                          cell::Side::North,
                                          {cl.xOffset, ge.column->height()},
                                          tech::Layer::Poly, lam(2), cl.decode, cl.phase,
                                          cl.name});
    }
    ge.power_ua = ge.column->powerDemand();
    return ge;
  }

  void emitLogic(netlist::LogicModel& lm, const ElementContext& ctx) const override {
    for (int r = 0; r < n_; ++r) {
      const std::string rn = name() + ".r" + std::to_string(r);
      const int ld = lm.signal(rn + ".ld");
      const int ph2 = lm.signal(rn + ".ph2");
      const int dr = lm.signal(rn + ".dr");
      for (int i = 0; i < ctx.dataWidth; ++i) {
        const int in = lm.signal(busSignal(ctx, busIn_, i));
        const int out = lm.signal(busSignal(ctx, busOut_, i));
        lm.markBus(in);
        lm.markBus(out);
        const int m = lm.signal(rn + ".m" + std::to_string(i));
        const int mb = lm.signal(rn + ".mb" + std::to_string(i));
        const int s = lm.signal(rn + ".s" + std::to_string(i));
        lm.add(netlist::GateKind::Latch, {in, ld}, m, rn + ".master");
        lm.add(netlist::GateKind::Inv, {m}, mb);
        lm.add(netlist::GateKind::Latch, {mb, ph2}, s, rn + ".slave");
        lm.add(netlist::GateKind::PullDown, {dr, s}, out, rn + ".drive");
      }
    }
  }

  [[nodiscard]] std::string describe(const ElementContext& ctx) const override {
    return "register file '" + name() + "': " + std::to_string(n_) + " x " +
           std::to_string(ctx.dataWidth) + " bits, selected by field '" + select_ +
           "'; write when [" + write_ + "], read when [" + read_ + "]";
  }

 private:
  int n_;
  std::string select_;
  int busIn_;
  int busOut_;
  std::string read_;
  std::string write_;
};

}  // namespace

std::unique_ptr<Element> makeRegfile(const icl::ElementDecl& decl, const icl::ChipDesc& chip,
                                     icl::DiagnosticList& diags) {
  const long long n = intParam(decl, "n", 4, 1, 64, diags);
  const icl::ParamValue* sel = decl.param("select");
  std::string selName;
  if (sel == nullptr || !sel->isName()) {
    diags.error(decl.loc, "regfile '" + decl.name + "': missing 'select' field parameter");
    selName = "?";
  } else {
    selName = sel->asText();
    const icl::FieldDecl* f = chip.microcode.field(selName);
    if (f == nullptr) {
      diags.error(decl.loc, "regfile '" + decl.name + "': unknown microcode field '" + selName +
                                "'");
    } else if ((1ll << f->bits()) < n) {
      diags.error(decl.loc, "regfile '" + decl.name + "': field '" + selName + "' has only " +
                                std::to_string(f->bits()) + " bits for " + std::to_string(n) +
                                " rows");
    }
  }
  const int in = busParam(decl, chip, "in", 0, diags);
  const int out = busParam(decl, chip, "out", chip.buses.size() > 1 ? 1 : 0, diags);
  std::string rd = decodeParam(decl, "read", chip, true, diags);
  std::string wr = decodeParam(decl, "write", chip, true, diags);
  return std::make_unique<RegfileElement>(decl.name, static_cast<int>(n), std::move(selName),
                                          in, out, std::move(rd), std::move(wr));
}

}  // namespace bb::elements
