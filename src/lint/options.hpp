/// \file options.hpp
/// Options for the static design analyzer (`bb::lint`). Split from
/// lint.hpp so `core::CompileOptions` can embed a `LintOptions` without
/// dragging the rule framework (and the extraction stack behind it)
/// into every core header.

#pragma once

#include "icl/diagnostics.hpp"

#include <string>
#include <vector>

namespace bb::lint {

struct LintOptions {
  /// Run lint as part of `CompileSession` finalize (opt-in).
  bool enabled = false;
  /// Reporting floor. Severities order Error < Warning < Note; findings
  /// strictly below the floor (numerically greater) are counted in
  /// `LintReport::belowFloor` but not reported. The default floor hides
  /// the Note-tier rules, whose patterns occur benignly in real chips.
  icl::Severity minSeverity = icl::Severity::Warning;
  /// Rules to run, by registry name; empty = every registered rule.
  std::vector<std::string> rules;
  /// Suppressions: "rule" silences a rule everywhere, "rule@path" one
  /// object (paths as in `Finding::chipPath`, e.g. "small/net#12").
  std::vector<std::string> suppress;
  /// Honour the paper's abutment contract: a net whose geometry reaches
  /// the core boundary is interface wiring, connected on the far side,
  /// so the connectivity ERC rules do not report it. Off treats the
  /// artwork as the entire circuit (right for standalone cells).
  bool boundaryConditions = true;
  /// Width budget on the shared `core::ThreadPool` for the rule fan-out
  /// (1 = serial on the caller, 0 = full pool width). Reports are
  /// byte-identical at any width, so this is never fingerprinted.
  unsigned threads = 1;
};

}  // namespace bb::lint
