/// \file lint.hpp
/// `bb::lint` — the rule-based static design analyzer. Two tiers share
/// one framework:
///
///  * **frontend lint** reads the `icl::ChipDesc` alone: unused or
///    undriven buses, unreferenced microcode fields, duplicate-effect
///    parameters, conditional-assembly branches no variable assignment
///    can reach, suspicious widths vs `dataWidth`;
///  * **ERC** reads the extracted transistor netlist of the compiled
///    artwork: floating gates, self-connected gates, undriven/unloaded
///    nets, isolated geometry islands, VDD/GND shorts, unconnected
///    declared ports.
///
/// The framework mirrors the `reps::Emitter` registry: `Rule` instances
/// are discoverable by name in a shared-mutex `RuleRegistry`; each run
/// produces `Finding`s filtered by severity floor and suppressions into
/// a `LintReport` with deterministic ordering (rules sorted by name,
/// findings in each rule's emission order), so the JSON report is
/// byte-identical whether rules ran serially or fanned out over the
/// shared `core::ThreadPool`.

#pragma once

#include "core/chip.hpp"
#include "core/digest.hpp"
#include "extract/extract.hpp"
#include "lint/options.hpp"

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bb::lint {

/// One problem a rule found.
struct Finding {
  std::string rule;                                ///< registry name of the rule
  icl::Severity severity = icl::Severity::Warning;
  icl::SourceLoc loc;       ///< description position (line 0 for geometric findings)
  std::string chipPath;     ///< "chip/object", the suppression / dedup address
  std::string message;
  geom::Point at{};         ///< layout location (ERC findings; see hasAt)
  bool hasAt = false;

  /// Line-independent identity: rule + chipPath + message, so a finding
  /// keeps its fingerprint when unrelated edits move source lines. This
  /// is what CI diffs against a baseline report.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
  [[nodiscard]] std::string toString() const;
};

/// Everything a rule may look at. Frontend rules read `desc()`; ERC
/// rules read `extraction()`, which is computed lazily exactly once and
/// shared by every ERC rule in the run (thread-safe via `std::call_once`).
class LintContext {
 public:
  /// Frontend-only context (no artwork).
  LintContext(std::string chipName, const icl::ChipDesc* desc, const LintOptions& opts);
  /// Full context: description (may be null for bare cells) + artwork.
  LintContext(std::string chipName, const icl::ChipDesc* desc,
              const cell::FlatLayout* flat, std::vector<extract::NetLabel> labels,
              std::optional<geom::Rect> boundary, const LintOptions& opts);

  LintContext(const LintContext&) = delete;
  LintContext& operator=(const LintContext&) = delete;

  /// The chip label findings are addressed under ("<chip()>/object").
  [[nodiscard]] const std::string& chip() const noexcept { return chipName_; }
  /// Null when linting bare artwork (frontend rules skip themselves).
  [[nodiscard]] const icl::ChipDesc* desc() const noexcept { return desc_; }
  /// True when artwork is available (ERC rules skip themselves otherwise).
  [[nodiscard]] bool hasArtwork() const noexcept { return flat_ != nullptr; }
  /// The shared extraction of the artwork; null when `!hasArtwork()`.
  [[nodiscard]] const extract::ExtractResult* extraction() const;
  [[nodiscard]] const LintOptions& options() const noexcept { return *opts_; }

 private:
  std::string chipName_;
  const icl::ChipDesc* desc_ = nullptr;
  const cell::FlatLayout* flat_ = nullptr;
  std::vector<extract::NetLabel> labels_;
  std::optional<geom::Rect> boundary_;
  const LintOptions* opts_;
  mutable std::once_flag once_;
  mutable std::optional<extract::ExtractResult> ex_;
};

/// One analysis rule. Implementations must be const-stateless: `check`
/// runs concurrently with other rules over the same context.
class Rule {
 public:
  virtual ~Rule() = default;

  /// Registry key, e.g. "erc-floating-gate".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// One-line human description for listings.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  /// True for ERC rules, which need compiled artwork; frontend rules
  /// run on the description alone.
  [[nodiscard]] virtual bool needsArtwork() const noexcept { return false; }

  /// Append findings. Emission order must be deterministic — it is part
  /// of the report's byte-identity contract.
  virtual void check(const LintContext& ctx, std::vector<Finding>& out) const = 0;
};

/// Name -> rule. The global registry is pre-populated with every
/// built-in rule; callers may add their own (a same-name rule shadows
/// the earlier one). Lookups take a shared lock and registration an
/// exclusive one, mirroring `reps::EmitterRegistry`; rules are never
/// destroyed while the registry lives, so a found pointer stays valid.
class RuleRegistry {
 public:
  RuleRegistry() = default;

  /// The process-wide registry with all built-in rules registered.
  [[nodiscard]] static RuleRegistry& global();

  /// Register a rule under its own name (shadows a same-name one).
  void add(std::unique_ptr<Rule> rule);

  /// Null when no rule has that name.
  [[nodiscard]] const Rule* find(std::string_view name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string_view> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Register every built-in rule into `reg` (used by `global()`; exposed
/// so tests can build an isolated registry).
void registerBuiltinRules(RuleRegistry& reg);

/// The result of one lint run.
struct LintReport {
  std::string chip;
  std::vector<Finding> findings;      ///< deterministic order (see lint.hpp intro)
  std::vector<std::string> rulesRun;  ///< sorted rule names that executed
  std::size_t suppressed = 0;         ///< findings silenced by `LintOptions::suppress`
  std::size_t belowFloor = 0;         ///< findings below `LintOptions::minSeverity`

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }

  /// Machine-readable report (SARIF-like): rule id, severity, location,
  /// message, stable fingerprint per finding. Deterministic bytes — CI
  /// diffs two reports textually.
  [[nodiscard]] std::string toJson() const;
  /// One line per finding plus a totals line.
  [[nodiscard]] std::string summary() const;
  /// Append the findings to a diagnostic list (severity mapped 1:1), so
  /// lint results interleave with compile diagnostics deterministically.
  void toDiagnostics(icl::DiagnosticList& out) const;
};

// ---- entry points --------------------------------------------------------

/// Frontend lint only: analyze a description without compiling it.
[[nodiscard]] LintReport lintDesc(const icl::ChipDesc& desc, const LintOptions& opts = {},
                                  const RuleRegistry& reg = RuleRegistry::global());

/// Full lint of a compiled chip: frontend rules over its description,
/// ERC rules over the extracted core artwork. With
/// `LintOptions::boundaryConditions` the core's abutment box exempts
/// interface wiring from the connectivity rules.
[[nodiscard]] LintReport lintChip(const core::CompiledChip& chip, const LintOptions& opts = {},
                                  const RuleRegistry& reg = RuleRegistry::global());

/// ERC over a standalone cell (flattens, labels nets from bristles).
/// The cell's explicit boundary is used for the abutment exemption when
/// set; with only an implicit shape bbox, every outer rect would touch
/// it, so no exemption is applied.
[[nodiscard]] LintReport lintCell(const cell::Cell& c, const LintOptions& opts = {},
                                  const RuleRegistry& reg = RuleRegistry::global());

/// ERC over pre-flattened artwork with explicit labels.
[[nodiscard]] LintReport lintFlat(std::string chipName, const cell::FlatLayout& flat,
                                  const std::vector<extract::NetLabel>& labels,
                                  std::optional<geom::Rect> boundary,
                                  const LintOptions& opts = {},
                                  const RuleRegistry& reg = RuleRegistry::global());

}  // namespace bb::lint
