#include "lint/lint.hpp"

#include "core/pool.hpp"

#include <algorithm>
#include <sstream>

namespace bb::lint {

namespace {

std::string_view severityName(icl::Severity s) noexcept {
  switch (s) {
    case icl::Severity::Error: return "error";
    case icl::Severity::Warning: return "warning";
    case icl::Severity::Note: return "note";
  }
  return "unknown";
}

/// JSON string escaping (control chars, quotes, backslash).
void appendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
}

}  // namespace

// ---- Finding -------------------------------------------------------------

std::uint64_t Finding::fingerprint() const noexcept {
  // Deliberately excludes loc/at: a finding keeps its identity when
  // unrelated edits move source lines or shift layout coordinates.
  core::Digest d;
  d.update(std::string_view{rule});
  d.update(std::string_view{chipPath});
  d.update(std::string_view{message});
  return d.value();
}

std::string Finding::toString() const {
  std::ostringstream os;
  os << severityName(severity) << ": " << chipPath << ": [" << rule << "] " << message;
  if (loc.line > 0) os << " (" << loc.toString() << ")";
  if (hasAt) os << " @(" << at.x << "," << at.y << ")";
  return os.str();
}

// ---- LintContext ---------------------------------------------------------

LintContext::LintContext(std::string chipName, const icl::ChipDesc* desc,
                         const LintOptions& opts)
    : chipName_(std::move(chipName)), desc_(desc), opts_(&opts) {}

LintContext::LintContext(std::string chipName, const icl::ChipDesc* desc,
                         const cell::FlatLayout* flat, std::vector<extract::NetLabel> labels,
                         std::optional<geom::Rect> boundary, const LintOptions& opts)
    : chipName_(std::move(chipName)),
      desc_(desc),
      flat_(flat),
      labels_(std::move(labels)),
      boundary_(boundary),
      opts_(&opts) {}

const extract::ExtractResult* LintContext::extraction() const {
  if (flat_ == nullptr) return nullptr;
  std::call_once(once_, [this] {
    extract::ExtractOptions eo;
    eo.boundary = boundary_;
    ex_.emplace(extract::extractFlat(*flat_, labels_, eo));
  });
  return &*ex_;
}

// ---- RuleRegistry --------------------------------------------------------

// Defined in rules_frontend.cpp / rules_erc.cpp.
void registerFrontendRules(RuleRegistry& reg);
void registerErcRules(RuleRegistry& reg);

void registerBuiltinRules(RuleRegistry& reg) {
  registerFrontendRules(reg);
  registerErcRules(reg);
}

RuleRegistry& RuleRegistry::global() {
  static RuleRegistry* reg = [] {
    auto* r = new RuleRegistry();
    registerBuiltinRules(*r);
    return r;
  }();
  return *reg;
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  const std::unique_lock lock(mu_);
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view name) const {
  const std::shared_lock lock(mu_);
  // Back-to-front so a later registration shadows an earlier one.
  for (auto it = rules_.rbegin(); it != rules_.rend(); ++it) {
    if ((*it)->name() == name) return it->get();
  }
  return nullptr;
}

std::vector<std::string_view> RuleRegistry::names() const {
  std::vector<std::string_view> out;
  {
    const std::shared_lock lock(mu_);
    out.reserve(rules_.size());
    for (const auto& r : rules_) out.push_back(r->name());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t RuleRegistry::size() const {
  const std::shared_lock lock(mu_);
  return rules_.size();
}

// ---- LintReport ----------------------------------------------------------

std::string LintReport::toJson() const {
  std::string out;
  out += "{\n  \"version\": \"bb-lint-1\",\n  \"chip\": ";
  appendJsonString(out, chip);
  out += ",\n  \"rulesRun\": [";
  for (std::size_t i = 0; i < rulesRun.size(); ++i) {
    if (i > 0) out += ", ";
    appendJsonString(out, rulesRun[i]);
  }
  out += "],\n  \"suppressed\": " + std::to_string(suppressed);
  out += ",\n  \"belowFloor\": " + std::to_string(belowFloor);
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i > 0 ? ",\n    {" : "\n    {";
    out += "\"rule\": ";
    appendJsonString(out, f.rule);
    out += ", \"severity\": ";
    appendJsonString(out, severityName(f.severity));
    out += ", \"path\": ";
    appendJsonString(out, f.chipPath);
    if (f.loc.line > 0) {
      out += ", \"line\": " + std::to_string(f.loc.line);
      out += ", \"column\": " + std::to_string(f.loc.column);
    }
    if (f.hasAt) {
      out += ", \"x\": " + std::to_string(f.at.x);
      out += ", \"y\": " + std::to_string(f.at.y);
    }
    out += ", \"message\": ";
    appendJsonString(out, f.message);
    out += ", \"fingerprint\": ";
    appendJsonString(out, core::Digest{f.fingerprint()}.hex());
    out += "}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string LintReport::summary() const {
  std::ostringstream os;
  for (const Finding& f : findings) os << f.toString() << "\n";
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  for (const Finding& f : findings) {
    if (f.severity == icl::Severity::Error) ++errors;
    else if (f.severity == icl::Severity::Warning) ++warnings;
    else ++notes;
  }
  os << chip << ": " << errors << " error(s), " << warnings << " warning(s), " << notes
     << " note(s); " << suppressed << " suppressed, " << belowFloor << " below floor\n";
  return os.str();
}

void LintReport::toDiagnostics(icl::DiagnosticList& out) const {
  for (const Finding& f : findings) {
    out.add({f.severity, f.loc, "[" + f.rule + "] " + f.chipPath + ": " + f.message});
  }
}

// ---- the run -------------------------------------------------------------

namespace {

LintReport runLint(const LintContext& ctx, const LintOptions& opts, const RuleRegistry& reg) {
  LintReport report;
  report.chip = ctx.chip();

  // Select applicable rules, sorted by name — the determinism anchor.
  std::vector<const Rule*> rules;
  for (const std::string_view name : reg.names()) {
    if (!opts.rules.empty() &&
        std::find(opts.rules.begin(), opts.rules.end(), name) == opts.rules.end()) {
      continue;
    }
    const Rule* r = reg.find(name);
    if (r == nullptr) continue;
    if (r->needsArtwork() && !ctx.hasArtwork()) continue;
    if (!r->needsArtwork() && ctx.desc() == nullptr) continue;
    rules.push_back(r);
  }

  // Fan the rules out over the shared pool into per-rule slots, then
  // concatenate in rule order: the report is byte-identical at any
  // width. Grain 1 — a rule is the unit of work. The ERC rules share
  // one lazily-extracted netlist via LintContext::extraction().
  std::vector<std::vector<Finding>> slots(rules.size());
  core::ThreadPool::global().parallelFor(
      rules.size(), 1, [&](std::size_t i) { rules[i]->check(ctx, slots[i]); }, opts.threads);

  for (std::size_t i = 0; i < rules.size(); ++i) {
    report.rulesRun.emplace_back(rules[i]->name());
    for (Finding& f : slots[i]) {
      const bool suppressedRule =
          std::find(opts.suppress.begin(), opts.suppress.end(), f.rule) != opts.suppress.end();
      const bool suppressedInstance =
          std::find(opts.suppress.begin(), opts.suppress.end(), f.rule + "@" + f.chipPath) !=
          opts.suppress.end();
      if (suppressedRule || suppressedInstance) {
        ++report.suppressed;
      } else if (static_cast<int>(f.severity) > static_cast<int>(opts.minSeverity)) {
        ++report.belowFloor;
      } else {
        report.findings.push_back(std::move(f));
      }
    }
  }
  return report;
}

}  // namespace

LintReport lintDesc(const icl::ChipDesc& desc, const LintOptions& opts,
                    const RuleRegistry& reg) {
  const LintContext ctx(desc.name, &desc, opts);
  return runLint(ctx, opts, reg);
}

LintReport lintChip(const core::CompiledChip& chip, const LintOptions& opts,
                    const RuleRegistry& reg) {
  if (chip.core == nullptr) return lintDesc(chip.desc, opts, reg);
  std::optional<geom::Rect> boundary;
  if (opts.boundaryConditions) boundary = chip.core->boundary();
  const LintContext ctx(chip.desc.name, &chip.desc, &chip.flatCore(),
                        extract::labelsOf(*chip.core), boundary, opts);
  return runLint(ctx, opts, reg);
}

LintReport lintCell(const cell::Cell& c, const LintOptions& opts, const RuleRegistry& reg) {
  const cell::FlatLayout flat = cell::flatten(c);
  std::optional<geom::Rect> boundary;
  // Only an explicit abutment box is an interface contract; the implicit
  // shape bbox always touches the outermost geometry and would exempt it.
  if (opts.boundaryConditions && c.hasExplicitBoundary()) boundary = c.boundary();
  const LintContext ctx(c.name(), nullptr, &flat, extract::labelsOf(c), boundary, opts);
  return runLint(ctx, opts, reg);
}

LintReport lintFlat(std::string chipName, const cell::FlatLayout& flat,
                    const std::vector<extract::NetLabel>& labels,
                    std::optional<geom::Rect> boundary, const LintOptions& opts,
                    const RuleRegistry& reg) {
  const LintContext ctx(std::move(chipName), nullptr, &flat, labels, boundary, opts);
  return runLint(ctx, opts, reg);
}

}  // namespace bb::lint
