/// \file rules_erc.cpp
/// Electrical-rule-check rules: analyses over the extracted transistor
/// netlist of compiled (or hand-built) artwork. All of them read the
/// per-net classification `extract::NetInfo` computed by the extractor,
/// shared across rules through `LintContext::extraction()`.
///
/// Two exemptions keep real chips clean without losing defect
/// sensitivity:
///  * named nets (rails, clocks, ports — labelled by bristles) are
///    driven/observed externally by definition;
///  * nets touching the abutment boundary (`LintOptions::
///    boundaryConditions`) are interface wiring, connected on the far
///    side by the paper's per-cell contract — the same principle the
///    DRC's boundary conditions apply to spacing.

#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <string>

namespace bb::lint {

namespace {

std::string netPath(const LintContext& ctx, std::size_t net) {
  return ctx.chip() + "/net#" + std::to_string(net);
}

/// Skip nets outside the connectivity rules' jurisdiction (see intro).
bool exempt(const extract::NetInfo& n) noexcept { return n.named || n.touchesBoundary; }

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool isPowerName(const std::string& name) {
  const std::string l = lowered(name);
  return l == "vdd" || l == "vcc" || l == "pwr";
}

bool isGroundName(const std::string& name) {
  const std::string l = lowered(name);
  return l == "gnd" || l == "vss" || l == "ground";
}

/// Common shape of the per-net rules: scan `netInfo` in net order.
class NetRule : public Rule {
 public:
  [[nodiscard]] bool needsArtwork() const noexcept final { return true; }
  void check(const LintContext& ctx, std::vector<Finding>& out) const final {
    const extract::ExtractResult* ex = ctx.extraction();
    if (ex == nullptr) return;
    for (std::size_t i = 0; i < ex->netInfo.size(); ++i) checkNet(ctx, *ex, i, out);
  }

 protected:
  virtual void checkNet(const LintContext& ctx, const extract::ExtractResult& ex,
                        std::size_t net, std::vector<Finding>& out) const = 0;
};

class FloatingGateRule final : public NetRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "erc-floating-gate";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a transistor gate on an isolated conductor piece — the input floats";
  }

 protected:
  void checkNet(const LintContext& ctx, const extract::ExtractResult& ex, std::size_t net,
                std::vector<Finding>& out) const override {
    const extract::NetInfo& n = ex.netInfo[net];
    if (exempt(n) || n.gates == 0 || n.terminals != 0 || n.pieces != 1) return;
    out.push_back({std::string(name()), icl::Severity::Warning, {}, netPath(ctx, net),
                   std::to_string(n.gates) +
                       " gate(s) on a single disconnected conductor piece — the input floats",
                   n.at, true});
  }
};

class UndrivenNetRule final : public NetRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "erc-undriven-net"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a wired net with gate loads but no driving source/drain";
  }

 protected:
  void checkNet(const LintContext& ctx, const extract::ExtractResult& ex, std::size_t net,
                std::vector<Finding>& out) const override {
    const extract::NetInfo& n = ex.netInfo[net];
    if (exempt(n) || n.gates == 0 || n.terminals != 0 || n.pieces < 2) return;
    out.push_back({std::string(name()), icl::Severity::Warning, {}, netPath(ctx, net),
                   "net of " + std::to_string(n.pieces) + " pieces drives " +
                       std::to_string(n.gates) + " gate(s) but has no source/drain on it",
                   n.at, true});
  }
};

class UnloadedNetRule final : public NetRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "erc-unloaded-net"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a net with transistor terminals but no gate listening";
  }

 protected:
  void checkNet(const LintContext& ctx, const extract::ExtractResult& ex, std::size_t net,
                std::vector<Finding>& out) const override {
    const extract::NetInfo& n = ex.netInfo[net];
    if (exempt(n) || n.terminals == 0 || n.gates != 0) return;
    // Note tier: pass-transistor bus wiring legitimately has terminals
    // with the listening gates elsewhere on the bus (every sample chip
    // has such nets).
    out.push_back({std::string(name()), icl::Severity::Note, {}, netPath(ctx, net),
                   "net with " + std::to_string(n.terminals) +
                       " source/drain terminal(s) reaches no gate",
                   n.at, true});
  }
};

class IsolatedIslandRule final : public NetRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "erc-isolated-island";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "conductor geometry connected to no transistor at all";
  }

 protected:
  void checkNet(const LintContext& ctx, const extract::ExtractResult& ex, std::size_t net,
                std::vector<Finding>& out) const override {
    const extract::NetInfo& n = ex.netInfo[net];
    if (exempt(n) || n.pieces == 0 || n.terminals != 0 || n.gates != 0) return;
    out.push_back({std::string(name()), icl::Severity::Warning, {}, netPath(ctx, net),
                   "island of " + std::to_string(n.pieces) +
                       " conductor piece(s) connects to nothing",
                   n.at, true});
  }
};

class SelfGateRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "erc-self-connected-gate";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "an enhancement transistor whose gate is tied to its own source/drain";
  }
  [[nodiscard]] bool needsArtwork() const noexcept override { return true; }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const extract::ExtractResult* ex = ctx.extraction();
    if (ex == nullptr) return;
    const auto& trans = ex->netlist.transistors();
    for (std::size_t i = 0; i < trans.size(); ++i) {
      const netlist::Transistor& t = trans[i];
      // Depletion devices strap gate to source by design (pull-up loads);
      // on an enhancement switch the same strap is a diode-connected
      // mistake in nMOS logic.
      if (t.kind != netlist::TransKind::Enhancement || t.gate < 0) continue;
      if (t.gate != t.source && t.gate != t.drain) continue;
      out.push_back({std::string(name()), icl::Severity::Warning, {},
                     ctx.chip() + "/transistor#" + std::to_string(i),
                     "enhancement gate is tied to its own " +
                         std::string(t.gate == t.source ? "source" : "drain"),
                     t.at, true});
    }
  }
};

class RailShortRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "erc-rail-short"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a power and a ground label resolving to the same electrical net";
  }
  [[nodiscard]] bool needsArtwork() const noexcept override { return true; }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const extract::ExtractResult* ex = ctx.extraction();
    if (ex == nullptr) return;
    // First power / ground label per net, in label order.
    std::map<int, std::string> power;
    std::map<int, std::string> ground;
    for (const extract::LabelBinding& lb : ex->labelBindings) {
      if (lb.net < 0) continue;
      if (isPowerName(lb.name)) power.emplace(lb.net, lb.name);
      if (isGroundName(lb.name)) ground.emplace(lb.net, lb.name);
    }
    for (const auto& [net, pname] : power) {
      const auto g = ground.find(net);
      if (g == ground.end()) continue;
      out.push_back({std::string(name()), icl::Severity::Error, {},
                     netPath(ctx, static_cast<std::size_t>(net)),
                     "power label '" + pname + "' and ground label '" + g->second +
                         "' resolve to the same net — supply short",
                     ex->netInfo[static_cast<std::size_t>(net)].at, true});
    }
  }
};

class UnconnectedPortRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "erc-unconnected-port";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a declared port label that lands on no conductor geometry";
  }
  [[nodiscard]] bool needsArtwork() const noexcept override { return true; }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const extract::ExtractResult* ex = ctx.extraction();
    if (ex == nullptr) return;
    for (const extract::LabelBinding& lb : ex->labelBindings) {
      if (lb.net >= 0) continue;
      out.push_back({std::string(name()), icl::Severity::Warning, {},
                     ctx.chip() + "/port:" + lb.name,
                     "port '" + lb.name + "' resolves to no conductor on its layer",
                     lb.at, true});
    }
  }
};

}  // namespace

void registerErcRules(RuleRegistry& reg) {
  reg.add(std::make_unique<FloatingGateRule>());
  reg.add(std::make_unique<UndrivenNetRule>());
  reg.add(std::make_unique<UnloadedNetRule>());
  reg.add(std::make_unique<IsolatedIslandRule>());
  reg.add(std::make_unique<SelfGateRule>());
  reg.add(std::make_unique<RailShortRule>());
  reg.add(std::make_unique<UnconnectedPortRule>());
}

}  // namespace bb::lint
