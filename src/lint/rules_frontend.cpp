/// \file rules_frontend.cpp
/// Frontend lint rules: analyses over the `icl::ChipDesc` alone —
/// no compilation, no artwork. Each rule walks the description
/// deterministically (declaration order; `std::map` params iterate in
/// key order), so finding order is stable by construction.

#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>

namespace bb::lint {

namespace {

using icl::ChipDesc;
using icl::CondBlock;
using icl::CoreItem;
using icl::ElementDecl;
using icl::ParamValue;

/// Visit every element declaration, both branches of every conditional
/// (lint reasons about the whole description, not one assembly).
void forEachElement(const std::vector<CoreItem>& items,
                    const std::function<void(const ElementDecl&)>& fn) {
  for (const CoreItem& item : items) {
    if (const auto* e = std::get_if<ElementDecl>(&item.node)) {
      fn(*e);
    } else if (const auto* c = std::get_if<CondBlock>(&item.node)) {
      forEachElement(c->thenItems, fn);
      forEachElement(c->elseItems, fn);
    }
  }
}

/// How an element kind touches buses, by parameter name. Mirrors the
/// built-in element generators; unknown kinds are handled conservatively
/// by the callers (any name param naming a bus counts as read+drive).
struct BusParam {
  const char* param;
  bool reads;
  bool drives;
};

const std::map<std::string_view, std::vector<BusParam>>& busTable() {
  static const std::map<std::string_view, std::vector<BusParam>> kTable = {
      {"inport", {{"bus", false, true}}},
      {"outport", {{"bus", true, false}}},
      {"register", {{"in", true, false}, {"out", false, true}}},
      {"alu", {{"a", true, false}, {"b", true, false}, {"out", false, true}}},
      {"regfile", {{"in", true, false}, {"out", false, true}}},
      {"shifter", {{"in", true, false}, {"out", false, true}}},
      {"constant", {{"bus", false, true}}},
      {"busstop", {{"bus", false, false}}},  // segments the bus: a use, not an access
      {"probe", {{"bus", true, false}}},
  };
  return kTable;
}

struct BusUse {
  std::size_t reads = 0;
  std::size_t drives = 0;
  std::size_t other = 0;  ///< referenced without data flow (busstop)
};

std::map<std::string, BusUse> busUsage(const ChipDesc& desc) {
  std::map<std::string, BusUse> use;
  for (const std::string& b : desc.buses) use[b];
  forEachElement(desc.core, [&use](const ElementDecl& e) {
    const auto it = busTable().find(e.kind);
    if (it != busTable().end()) {
      for (const BusParam& bp : it->second) {
        const ParamValue* v = e.param(bp.param);
        if (v == nullptr || !v->isName()) continue;
        const auto bu = use.find(v->asText());
        if (bu == use.end()) continue;
        if (bp.reads) ++bu->second.reads;
        if (bp.drives) ++bu->second.drives;
        if (!bp.reads && !bp.drives) ++bu->second.other;
      }
    } else {
      // Unknown generator: any name parameter naming a bus might do
      // anything with it — count both directions so the bus rules stay
      // quiet rather than guessing wrong.
      for (const auto& [pname, v] : e.params) {
        (void)pname;
        if (!v.isName()) continue;
        const auto bu = use.find(v.asText());
        if (bu == use.end()) continue;
        ++bu->second.reads;
        ++bu->second.drives;
      }
    }
  });
  return use;
}

/// All identifiers referenced by a parameter value: the whole text of a
/// name param, identifier tokens of a quoted decode expression, lists
/// recursively. This is how microcode-field references are found.
void collectIdentifiers(const ParamValue& v, std::set<std::string>& out) {
  if (v.isName()) {
    out.insert(v.asText());
  } else if (v.isString()) {
    const std::string& s = v.asText();
    std::size_t i = 0;
    while (i < s.size()) {
      if (std::isalpha(static_cast<unsigned char>(s[i])) != 0 || s[i] == '_') {
        std::size_t j = i + 1;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) != 0 || s[j] == '_')) {
          ++j;
        }
        out.insert(s.substr(i, j - i));
        i = j;
      } else {
        ++i;
      }
    }
  } else if (v.isList()) {
    for (const ParamValue& e : v.asList()) collectIdentifiers(e, out);
  }
}

int bitsFor(long long n) noexcept {
  int bits = 0;
  while ((1LL << bits) < n && bits < 62) ++bits;
  return bits;
}

std::string busPath(const LintContext& ctx, const std::string& bus) {
  return ctx.chip() + "/bus:" + bus;
}

// ---- the rules -----------------------------------------------------------

class UnusedBusRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "front-unused-bus"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a declared bus no core element references";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const auto use = busUsage(*ctx.desc());
    for (const std::string& b : ctx.desc()->buses) {
      const BusUse& u = use.at(b);
      if (u.reads + u.drives + u.other == 0) {
        out.push_back({std::string(name()), icl::Severity::Warning, {}, busPath(ctx, b),
                       "bus '" + b + "' is declared but no element references it"});
      }
    }
  }
};

class UndrivenBusRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "front-undriven-bus";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a bus that elements read but nothing ever drives";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const auto use = busUsage(*ctx.desc());
    for (const std::string& b : ctx.desc()->buses) {
      const BusUse& u = use.at(b);
      if (u.reads > 0 && u.drives == 0) {
        out.push_back({std::string(name()), icl::Severity::Warning, {}, busPath(ctx, b),
                       "bus '" + b + "' is read by " + std::to_string(u.reads) +
                           " element(s) but nothing drives it"});
      }
    }
  }
};

class UnreadBusRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "front-unread-bus"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a bus that elements drive but nothing ever reads";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const auto use = busUsage(*ctx.desc());
    for (const std::string& b : ctx.desc()->buses) {
      const BusUse& u = use.at(b);
      if (u.drives > 0 && u.reads == 0) {
        // Note tier: write-only buses occur legitimately (observation
        // buses, partially assembled prototypes).
        out.push_back({std::string(name()), icl::Severity::Note, {}, busPath(ctx, b),
                       "bus '" + b + "' is driven by " + std::to_string(u.drives) +
                           " element(s) but nothing reads it"});
      }
    }
  }
};

class UnusedFieldRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "front-unused-field";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a microcode field no decode expression or element references";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    std::set<std::string> referenced;
    forEachElement(ctx.desc()->core, [&referenced](const ElementDecl& e) {
      for (const auto& [pname, v] : e.params) {
        (void)pname;
        collectIdentifiers(v, referenced);
      }
    });
    for (const icl::FieldDecl& f : ctx.desc()->microcode.fields) {
      if (referenced.count(f.name) == 0) {
        // Note tier: spare fields are routine in real microcode formats
        // (the paper's own small chip reserves one).
        out.push_back({std::string(name()), icl::Severity::Note, f.loc,
                       ctx.chip() + "/field:" + f.name,
                       "microcode field '" + f.name + "' [" + std::to_string(f.lo) + ":" +
                           std::to_string(f.hi) + "] is never referenced"});
      }
    }
  }
};

class DuplicateEffectRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "front-duplicate-effect";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "two parameters of one element with the identical decode expression";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    forEachElement(ctx.desc()->core, [&](const ElementDecl& e) {
      // params is a std::map: pairs come out in key order, deterministically.
      for (auto a = e.params.begin(); a != e.params.end(); ++a) {
        if (!a->second.isString()) continue;
        for (auto b = std::next(a); b != e.params.end(); ++b) {
          if (!b->second.isString() || a->second.asText() != b->second.asText()) continue;
          out.push_back({std::string(name()), icl::Severity::Warning, e.loc,
                         ctx.chip() + "/" + e.name,
                         "parameters '" + a->first + "' and '" + b->first + "' of " + e.kind +
                             " '" + e.name + "' have the identical decode \"" +
                             a->second.asText() + "\" — both effects fire together"});
        }
      }
    });
  }
};

class DeadBranchRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "front-dead-branch"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "a conditional-assembly branch no variable assignment can reach";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    std::map<std::string, bool> path;  // var -> value fixed on this path
    walk(ctx, ctx.desc()->core, path, out);
  }

 private:
  void walk(const LintContext& ctx, const std::vector<CoreItem>& items,
            std::map<std::string, bool>& path, std::vector<Finding>& out) const {
    for (const CoreItem& item : items) {
      const auto* c = std::get_if<CondBlock>(&item.node);
      if (c == nullptr) continue;
      const auto known = path.find(c->var);
      const bool fixed = known != path.end();
      const bool fixedValue = fixed && known->second;
      // The then branch runs when var == !negate, the else branch when
      // var == negate. A path that already fixes the variable makes one
      // of them unreachable under every assignment.
      const bool thenDead = fixed && fixedValue != !c->negate;
      const bool elseDead = fixed && fixedValue != c->negate;
      const std::string guard = (c->negate ? "if !" : "if ") + c->var;
      const auto restore = [&path, c, fixed, fixedValue] {
        if (fixed) path[c->var] = fixedValue;
        else path.erase(c->var);
      };
      const auto deadFinding = [&](std::string_view branch) {
        out.push_back({std::string(name()), icl::Severity::Warning, c->loc,
                       ctx.chip() + "/" + c->var,
                       std::string(branch) + "-branch of '" + guard +
                           "' is unreachable: an enclosing conditional already fixes " +
                           c->var + " = " + (fixedValue ? "true" : "false")});
      };
      if (thenDead && !c->thenItems.empty()) {
        deadFinding("then");  // report once, do not descend into dead code
      } else if (!thenDead) {
        path[c->var] = !c->negate;
        walk(ctx, c->thenItems, path, out);
        restore();
      }
      if (elseDead && !c->elseItems.empty()) {
        deadFinding("else");
      } else if (!elseDead && !c->elseItems.empty()) {
        path[c->var] = c->negate;
        walk(ctx, c->elseItems, path, out);
        restore();
      }
    }
  }
};

class WidthRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "front-width"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "suspicious bit positions, constants or field widths vs dataWidth";
  }
  void check(const LintContext& ctx, std::vector<Finding>& out) const override {
    const ChipDesc& desc = *ctx.desc();
    const long long dw = desc.dataWidth;
    forEachElement(desc.core, [&](const ElementDecl& e) {
      const std::string path = ctx.chip() + "/" + e.name;
      if (e.kind == "probe") {
        const ParamValue* bit = e.param("bit");
        if (bit != nullptr && bit->isInt() && (bit->asInt() < 0 || bit->asInt() >= dw)) {
          out.push_back({std::string(name()), icl::Severity::Warning, e.loc, path,
                         "probe '" + e.name + "' watches bit " + std::to_string(bit->asInt()) +
                             " of a " + std::to_string(dw) + "-bit bus"});
        }
      } else if (e.kind == "constant") {
        const ParamValue* value = e.param("value");
        if (value != nullptr && value->isInt() && dw > 0 && dw < 62 &&
            (value->asInt() < 0 || value->asInt() >= (1LL << dw))) {
          out.push_back({std::string(name()), icl::Severity::Warning, e.loc, path,
                         "constant '" + e.name + "' value " + std::to_string(value->asInt()) +
                             " does not fit in " + std::to_string(dw) + " bits"});
        }
      } else if (e.kind == "shifter") {
        const ParamValue* dist = e.param("dist");
        if (dist != nullptr && dist->isInt() && (dist->asInt() < 0 || dist->asInt() >= dw)) {
          out.push_back({std::string(name()), icl::Severity::Warning, e.loc, path,
                         "shifter '" + e.name + "' distance " + std::to_string(dist->asInt()) +
                             " exceeds the " + std::to_string(dw) + "-bit data path"});
        }
      } else if (e.kind == "regfile") {
        const ParamValue* n = e.param("n");
        const ParamValue* select = e.param("select");
        if (n != nullptr && n->isInt() && select != nullptr && select->isName()) {
          const icl::FieldDecl* f = desc.microcode.field(select->asText());
          if (f != nullptr && f->bits() < bitsFor(n->asInt())) {
            out.push_back({std::string(name()), icl::Severity::Warning, e.loc, path,
                           "regfile '" + e.name + "' select field '" + select->asText() +
                               "' has " + std::to_string(f->bits()) + " bit(s) but " +
                               std::to_string(n->asInt()) + " registers need " +
                               std::to_string(bitsFor(n->asInt()))});
          }
        }
      }
    });
  }
};

}  // namespace

void registerFrontendRules(RuleRegistry& reg) {
  reg.add(std::make_unique<UnusedBusRule>());
  reg.add(std::make_unique<UndrivenBusRule>());
  reg.add(std::make_unique<UnreadBusRule>());
  reg.add(std::make_unique<UnusedFieldRule>());
  reg.add(std::make_unique<DuplicateEffectRule>());
  reg.add(std::make_unique<DeadBranchRule>());
  reg.add(std::make_unique<WidthRule>());
}

}  // namespace bb::lint
