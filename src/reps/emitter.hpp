/// \file emitter.hpp
/// One interface for every output path. The seed scattered five ways of
/// getting artifacts out of a compiled chip (CIF and GDS writers, the
/// SVG renderer, the SPICE deck, and the text/sticks/block
/// representations) behind five unrelated signatures; the `Emitter`
/// registry unifies them: every backend is discoverable by name and
/// writes to a `std::ostream`, so tools can enumerate and select output
/// formats at run time.

#pragma once

#include "core/chip.hpp"
#include "geom/geometry.hpp"

#include <iosfwd>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bb::reps {

/// Windowed-emission parameters, plumbed through the registry so any
/// emitter can stream a viewport of a `CompileSession` result. The
/// geometry backends (cif, gds, svg, sticks-svg) honour these via
/// `layout::View`; non-geometry backends (spice, text, ...) ignore them.
/// Default-constructed options mean full-chip emission and are
/// bit-identical to the plain `emit(chip, os)` path.
struct EmitterOptions {
  /// Viewport in layout coordinates (chip coordinates for cif/gds/svg,
  /// core coordinates for sticks-svg). Unset: the whole artwork.
  std::optional<geom::Rect> window;
  /// Streaming tile pitch; 0 = one tile covering the window.
  geom::Coord tileSize = 0;
  /// Merge each tile's rects into disjoint maximal pieces.
  bool mergeTiles = false;
  /// Clip window-crossing polygons to the window (`geom::poly`); off
  /// keeps the pre-clip reference behavior (bbox filter, emit whole).
  bool clipPolygons = true;
  /// Route geometry through the chip's hierarchical index instead of the
  /// full flatten. Full-chip cif/gds become `writeCifHier`/`writeGdsHier`
  /// (symbol calls / SREF+AREF, never a flattened copy); windowed cif/gds
  /// open the `View` over `CompiledChip::hierTop()`, so the viewport
  /// resolves only window-touching instances. Non-geometry backends (and
  /// svg, which renders from the cell tree already) ignore it.
  bool hierarchical = false;

  /// True when any windowing/streaming behaviour was requested.
  [[nodiscard]] bool windowed() const noexcept {
    return window.has_value() || tileSize > 0 || mergeTiles;
  }
};

class Emitter {
 public:
  virtual ~Emitter() = default;

  /// Registry key, e.g. "cif", "gds", "svg", "spice", "text".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Suggested file extension (no dot), e.g. "cif", "sp", "svg".
  [[nodiscard]] virtual std::string_view fileExtension() const noexcept = 0;
  /// True when the output is a byte stream (GDSII), not text.
  [[nodiscard]] virtual bool binary() const noexcept { return false; }
  /// One-line human description for listings.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Write the chip's artifact in this format.
  virtual void emit(const core::CompiledChip& chip, std::ostream& os) const = 0;

  /// Windowed emission. The default implementation ignores the options
  /// and emits the full artifact, so emitters without a geometric
  /// output need not override; the built-in geometry backends stream
  /// the requested viewport through `layout::View`.
  virtual void emit(const core::CompiledChip& chip, std::ostream& os,
                    const EmitterOptions& opts) const {
    (void)opts;
    emit(chip, os);
  }

  /// Convenience: emit to a string.
  [[nodiscard]] std::string emitToString(const core::CompiledChip& chip) const;
  [[nodiscard]] std::string emitToString(const core::CompiledChip& chip,
                                         const EmitterOptions& opts) const;
};

/// Name -> emitter. The global registry is pre-populated with every
/// built-in backend; callers may add their own (a same-name emitter
/// shadows the earlier one). Lookups take a shared lock and
/// registration an exclusive one, so any number of service/batch
/// threads can resolve and emit concurrently without serializing on
/// the registry, even while another thread registers; emitters are
/// never destroyed while the registry lives, so a found pointer stays
/// valid.
class EmitterRegistry {
 public:
  EmitterRegistry() = default;

  /// The process-wide registry with all built-in emitters registered.
  [[nodiscard]] static EmitterRegistry& global();

  /// Register an emitter under its own name (shadows a same-name one).
  void add(std::unique_ptr<Emitter> emitter);

  /// Null when no emitter has that name.
  [[nodiscard]] const Emitter* find(std::string_view name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string_view> names() const;
  [[nodiscard]] std::size_t size() const;

  /// Emit by name; false when the name is unknown.
  bool emit(const core::CompiledChip& chip, std::string_view name, std::ostream& os) const;
  /// Windowed emit by name — streams the viewport described by `opts`
  /// (geometry backends honour it, others emit in full).
  bool emit(const core::CompiledChip& chip, std::string_view name, std::ostream& os,
            const EmitterOptions& opts) const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Emitter>> emitters_;
};

/// Register every built-in backend into `reg` (used by `global()`;
/// exposed so tests can build an isolated registry).
void registerBuiltinEmitters(EmitterRegistry& reg);

}  // namespace bb::reps
