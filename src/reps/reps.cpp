#include "reps/reps.hpp"

#include "extract/extract.hpp"
#include "layout/cif.hpp"
#include "layout/gds.hpp"
#include "layout/svg.hpp"
#include "reps/blockrep.hpp"
#include "reps/sticks.hpp"
#include "reps/textrep.hpp"

#include <sstream>

namespace bb::reps {

std::string_view representationName(Representation r) noexcept {
  switch (r) {
    case Representation::Layout: return "layout";
    case Representation::Sticks: return "sticks";
    case Representation::Transistors: return "transistors";
    case Representation::Logic: return "logic";
    case Representation::Text: return "text";
    case Representation::Simulation: return "simulation";
    case Representation::Block: return "block";
  }
  return "?";
}

int RepresentationSet::populatedCount() const noexcept {
  int n = 0;
  if (!cif.empty() && !gds.empty() && !layoutSvg.empty()) ++n;
  if (!sticksText.empty()) ++n;
  if (!transistorText.empty()) ++n;
  if (!logicText.empty()) ++n;
  if (!userManual.empty()) ++n;
  if (!simulationText.empty()) ++n;
  if (!blockText.empty()) ++n;
  return n;
}

namespace {

std::string simulationSummary(const core::CompiledChip& chip) {
  std::ostringstream os;
  os << "simulation model: " << chip.logic.gates().size() << " gates over "
     << chip.logic.signalCount() << " signals\n";
  for (const auto& [kind, n] : chip.logic.histogram()) {
    os << "  " << kind << ": " << n << "\n";
  }
  os << "drive mc0.." << chip.desc.microcode.width - 1
     << " and clock phi1/phi2 to execute microcode; buses busA<i>/busB<i>.\n";
  return os.str();
}

std::string transistorSummary(const core::CompiledChip& chip) {
  // Extract the core (the decoder's stylized loads extract too, but the
  // core is the electrically faithful part).
  const extract::ExtractResult ex =
      extract::extractFlat(chip.flatCore(), extract::labelsOf(*chip.core));
  std::ostringstream os;
  os << "extracted from core artwork:\n" << ex.netlist.toText();
  return os.str();
}

}  // namespace

RepresentationSet generateAll(const core::CompiledChip& chip) {
  RepresentationSet rs;
  rs.cif = layout::writeCif(*chip.top);
  rs.gds = layout::writeGds(*chip.top);
  layout::SvgOptions svgo;
  svgo.title = chip.desc.name;
  svgo.pixelsPerUnit = 0.25;
  rs.layoutSvg = layout::renderSvg(*chip.top, svgo);
  const std::vector<Stick> sticks = sticksOf(chip.flatCore());
  rs.sticksText = sticksText(sticks);
  rs.sticksSvg = sticksSvg(sticks);
  rs.transistorText = transistorSummary(chip);
  rs.logicText = chip.logic.toText();
  rs.userManual = reps::userManual(chip);
  rs.simulationText = simulationSummary(chip);
  rs.blockText = blockDiagram(chip) + "\n" + logicalDiagram(chip);
  return rs;
}

std::string generateText(const core::CompiledChip& chip, Representation r) {
  switch (r) {
    case Representation::Layout: return layout::writeCif(*chip.top);
    case Representation::Sticks:
      return sticksText(sticksOf(chip.flatCore()));
    case Representation::Transistors: return transistorSummary(chip);
    case Representation::Logic: return chip.logic.toText();
    case Representation::Text: return userManual(chip);
    case Representation::Simulation: return simulationSummary(chip);
    case Representation::Block: return blockDiagram(chip) + "\n" + logicalDiagram(chip);
  }
  return {};
}

}  // namespace bb::reps
