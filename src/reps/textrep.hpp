/// \file textrep.hpp
/// Text representation generator.

#pragma once

#include "core/chip.hpp"

#include <string>

namespace bb::reps {

[[nodiscard]] std::string userManual(const core::CompiledChip& chip);

}  // namespace bb::reps
