/// \file reps.hpp
/// The seven representations. "Bristle Blocks is designed to handle the
/// following seven representations: Layout, Sticks, Transistors, Logic,
/// Text, Simulation, Block." Every compiled chip can produce all of
/// them; this is the dispatcher.

#pragma once

#include "core/chip.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace bb::reps {

enum class Representation : std::uint8_t {
  Layout = 0,   ///< the actual chip masks (CIF / GDS / SVG)
  Sticks,       ///< single-width-line topology diagram
  Transistors,  ///< extracted transistor diagram
  Logic,        ///< TTL-style logic diagram
  Text,         ///< hierarchical "user's manual"
  Simulation,   ///< executable logic model summary
  Block,        ///< block diagram of buses and core elements
};

inline constexpr std::array<Representation, 7> kAllRepresentations = {
    Representation::Layout,      Representation::Sticks, Representation::Transistors,
    Representation::Logic,       Representation::Text,   Representation::Simulation,
    Representation::Block};

[[nodiscard]] std::string_view representationName(Representation r) noexcept;

/// Everything generated for one chip.
struct RepresentationSet {
  std::string cif;           ///< Layout (CIF 2.0 mask set)
  std::vector<std::uint8_t> gds;  ///< Layout (GDSII stream)
  std::string layoutSvg;     ///< Layout (human-viewable)
  std::string sticksText;
  std::string sticksSvg;
  std::string transistorText;
  std::string logicText;
  std::string userManual;
  std::string simulationText;
  std::string blockText;

  /// Count of non-empty artifacts (the PCT80 bench checks this is 7/7).
  [[nodiscard]] int populatedCount() const noexcept;
};

/// Generate every representation for the chip.
[[nodiscard]] RepresentationSet generateAll(const core::CompiledChip& chip);

/// Generate a single representation's primary text artifact.
[[nodiscard]] std::string generateText(const core::CompiledChip& chip, Representation r);

}  // namespace bb::reps
