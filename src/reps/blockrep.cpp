#include "reps/blockrep.hpp"

#include <algorithm>
#include <sstream>

namespace bb::reps {

std::string blockDiagram(const core::CompiledChip& chip) {
  std::ostringstream os;
  std::size_t north = 0, south = 0, east = 0, west = 0;
  for (const core::PadPlacement& p : chip.pads) {
    switch (p.side) {
      case cell::Side::North: ++north; break;
      case cell::Side::South: ++south; break;
      case cell::Side::East: ++east; break;
      case cell::Side::West: ++west; break;
    }
  }
  os << "physical format — chip '" << chip.desc.name << "'\n";
  os << "+--------------------[ " << north << " pads ]--------------------+\n";
  os << "|                                                      |\n";
  os << "|   +----------------------------------------------+   |\n";
  os << "|   |                  DECODER (" << chip.pla.termCount() << " terms)"
     << std::string(std::max<int>(1, 14 - static_cast<int>(std::to_string(chip.pla.termCount()).size())), ' ')
     << "|   |\n";
  os << "|   +----------------------------------------------+   |\n";
  os << "|   |      control buffers (" << chip.controls.size() << " lines)              |   |\n";
  os << "| " << west << " +----------------------------------------------+ " << east << " |\n";
  os << "|   |                    CORE                      |   |\n";
  os << "|   |  ";
  std::string row;
  for (const core::PlacedElement& pe : chip.placed) {
    if (!row.empty()) row += "|";
    row += pe.name;
  }
  if (row.size() > 42) row = row.substr(0, 39) + "...";
  os << "[" << row << "]" << std::string(std::max<int>(1, 42 - static_cast<int>(row.size())), ' ')
     << "|   |\n";
  os << "|   +----------------------------------------------+   |\n";
  os << "|                                                      |\n";
  os << "+--------------------[ " << south << " pads ]--------------------+\n";
  return os.str();
}

std::string logicalDiagram(const core::CompiledChip& chip) {
  std::ostringstream os;
  os << "logical format — chip '" << chip.desc.name << "'\n\n";
  // Upper bus line.
  const std::string busA = chip.desc.buses.empty() ? "A" : chip.desc.buses[0];
  const std::string busB = chip.desc.buses.size() > 1 ? chip.desc.buses[1] : "";
  os << "  " << busA << " ==";
  for (const core::PlacedElement& pe : chip.placed) {
    os << (pe.usesBus[0] ? "=[*]=" : "=====");
  }
  os << "==>\n";
  os << "       ";
  for (const core::PlacedElement& pe : chip.placed) {
    std::string n = pe.name.substr(0, 4);
    n.resize(5, ' ');
    os << n;
  }
  os << "\n";
  if (!busB.empty()) {
    os << "  " << busB << " ==";
    for (const core::PlacedElement& pe : chip.placed) {
      os << (pe.usesBus[1] ? "=[*]=" : "=====");
    }
    os << "==>\n";
  }
  os << "\n  control signals enter each element from the decoder above;\n";
  os << "  microcode (" << chip.desc.microcode.width
     << " bits) enters the decoder twice per clock cycle\n";
  os << "  (phi1-qualified and phi2-qualified control sets).\n";
  return os.str();
}

}  // namespace bb::reps
