#include "reps/sticks.hpp"

#include "layout/svg.hpp"

#include <map>
#include <sstream>

namespace bb::reps {

std::vector<Stick> sticksOf(const cell::FlatLayout& flat, const layout::ViewOptions& view) {
  const layout::View v{flat, view};
  std::vector<Stick> out;
  for (tech::Layer l : tech::kAllLayers) {
    v.forEachTileParallel(l, [&](std::size_t, std::size_t, const std::vector<geom::Rect>& rs) {
      for (const geom::Rect& r : rs) {
        Stick s;
        s.layer = l;
        if (r.width() >= r.height()) {
          s.a = {r.x0, (r.y0 + r.y1) / 2};
          s.b = {r.x1, (r.y0 + r.y1) / 2};
        } else {
          s.a = {(r.x0 + r.x1) / 2, r.y0};
          s.b = {(r.x0 + r.x1) / 2, r.y1};
        }
        out.push_back(s);
      }
    });
  }
  for (const auto& [l, p] : v.polygons()) {
    const geom::Rect r = p->bbox();
    out.push_back(Stick{l, {r.x0, (r.y0 + r.y1) / 2}, {r.x1, (r.y0 + r.y1) / 2}});
  }
  return out;
}

std::string sticksText(const std::vector<Stick>& sticks) {
  std::map<tech::Layer, std::size_t> perLayer;
  geom::Coord totalLen = 0;
  for (const Stick& s : sticks) {
    ++perLayer[s.layer];
    totalLen += geom::manhattan(s.a, s.b);
  }
  std::ostringstream os;
  os << "sticks diagram: " << sticks.size() << " sticks, total length "
     << totalLen / geom::kUnitsPerLambda << "L\n";
  for (const auto& [l, n] : perLayer) {
    os << "  " << tech::layerName(l) << ": " << n << "\n";
  }
  return os.str();
}

std::string sticksSvg(const std::vector<Stick>& sticks, double pixelsPerUnit,
                      const std::string& title) {
  geom::Rect bb{};
  bool first = true;
  for (const Stick& s : sticks) {
    const geom::Rect r{s.a.x, s.a.y, s.b.x, s.b.y};
    bb = first ? r : bb.unionWith(r);
    first = false;
  }
  std::ostringstream os;
  const double w = static_cast<double>(bb.width()) * pixelsPerUnit + 20;
  const double h = static_cast<double>(bb.height()) * pixelsPerUnit + 20;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
     << "\">\n";
  if (!title.empty()) os << "<title>" << layout::xmlEscape(title) << "</title>\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
  auto X = [&](geom::Coord v) { return (static_cast<double>(v - bb.x0)) * pixelsPerUnit + 10; };
  auto Y = [&](geom::Coord v) { return (static_cast<double>(bb.y1 - v)) * pixelsPerUnit + 10; };
  for (const Stick& s : sticks) {
    if (s.a == s.b) {
      os << "<circle cx=\"" << X(s.a.x) << "\" cy=\"" << Y(s.a.y) << "\" r=\"1.5\" fill=\""
         << tech::displayColor(s.layer) << "\"/>\n";
    } else {
      os << "<line x1=\"" << X(s.a.x) << "\" y1=\"" << Y(s.a.y) << "\" x2=\"" << X(s.b.x)
         << "\" y2=\"" << Y(s.b.y) << "\" stroke=\"" << tech::displayColor(s.layer)
         << "\" stroke-width=\"1\"/>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace bb::reps
