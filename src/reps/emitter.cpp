#include "reps/emitter.hpp"

#include "cell/flatten.hpp"
#include "extract/extract.hpp"
#include "layout/cif.hpp"
#include "layout/gds.hpp"
#include "layout/svg.hpp"
#include "netlist/spice.hpp"
#include "reps/reps.hpp"
#include "reps/sticks.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <sstream>

namespace bb::reps {

std::string Emitter::emitToString(const core::CompiledChip& chip) const {
  std::ostringstream os;
  emit(chip, os);
  return os.str();
}

std::string Emitter::emitToString(const core::CompiledChip& chip,
                                  const EmitterOptions& opts) const {
  std::ostringstream os;
  emit(chip, os, opts);
  return os.str();
}

namespace {

/// The registry-level window/tile/merge knobs as View parameters.
layout::ViewOptions toViewOptions(const EmitterOptions& o) {
  return layout::ViewOptions{o.window, o.tileSize, o.mergeTiles, o.clipPolygons};
}

/// Declarative backend: name/extension/flags plus an emit function, so
/// each built-in is a table row instead of a subclass. The optional
/// windowed function makes a backend viewport-aware; without one,
/// windowed requests fall back to full emission.
class FnEmitter final : public Emitter {
 public:
  using EmitFn = void (*)(const core::CompiledChip&, std::ostream&);
  using WindowedEmitFn = void (*)(const core::CompiledChip&, std::ostream&,
                                  const EmitterOptions&);

  FnEmitter(std::string_view name, std::string_view ext, std::string_view desc,
            bool binary, EmitFn fn, WindowedEmitFn wfn = nullptr)
      : name_(name), ext_(ext), desc_(desc), binary_(binary), fn_(fn), wfn_(wfn) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::string_view fileExtension() const noexcept override { return ext_; }
  [[nodiscard]] bool binary() const noexcept override { return binary_; }
  [[nodiscard]] std::string_view description() const noexcept override { return desc_; }
  void emit(const core::CompiledChip& chip, std::ostream& os) const override {
    fn_(chip, os);
  }
  void emit(const core::CompiledChip& chip, std::ostream& os,
            const EmitterOptions& opts) const override {
    if (wfn_ != nullptr && (opts.windowed() || opts.hierarchical)) {
      wfn_(chip, os, opts);
    } else {
      fn_(chip, os);
    }
  }

 private:
  std::string_view name_, ext_, desc_;
  bool binary_;
  EmitFn fn_;
  WindowedEmitFn wfn_;
};

void emitCif(const core::CompiledChip& chip, std::ostream& os) {
  os << layout::writeCif(*chip.top);
}

void emitCifWindowed(const core::CompiledChip& chip, std::ostream& os,
                     const EmitterOptions& opts) {
  if (opts.hierarchical) {
    if (opts.windowed()) {
      // Lazy viewport: the View resolves only window-touching instances.
      os << layout::writeCif(layout::View{chip.hierTop(), toViewOptions(opts)});
    } else {
      os << layout::writeCifHier(*chip.top);
    }
    return;
  }
  os << layout::writeCif(chip.flatTop(), toViewOptions(opts));
}

void emitGds(const core::CompiledChip& chip, std::ostream& os) {
  const std::vector<std::uint8_t> bytes = layout::writeGds(*chip.top);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

void emitGdsWindowed(const core::CompiledChip& chip, std::ostream& os,
                     const EmitterOptions& opts) {
  std::vector<std::uint8_t> bytes;
  if (opts.hierarchical) {
    if (opts.windowed()) {
      // Lazy viewport: the View resolves only window-touching instances.
      bytes = layout::writeGds(layout::View{chip.hierTop(), toViewOptions(opts)});
    } else {
      bytes = layout::writeGdsHier(*chip.top);
    }
  } else {
    bytes = layout::writeGds(chip.flatTop(), toViewOptions(opts));
  }
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

void emitSvg(const core::CompiledChip& chip, std::ostream& os) {
  layout::SvgOptions opts;
  opts.title = chip.desc.name;
  opts.pixelsPerUnit = 0.25;
  os << layout::renderSvg(*chip.top, opts);
}

void emitSvgWindowed(const core::CompiledChip& chip, std::ostream& os,
                     const EmitterOptions& eopts) {
  layout::SvgOptions opts;
  opts.title = chip.desc.name;
  opts.pixelsPerUnit = 0.25;
  opts.view = toViewOptions(eopts);
  // The Cell overload keeps the boundary outline and bristle markers of
  // the plain svg path; markers outside the window are skipped there.
  os << layout::renderSvg(*chip.top, opts);
}

void emitSpice(const core::CompiledChip& chip, std::ostream& os) {
  const extract::ExtractResult ex =
      extract::extractFlat(chip.flatCore(), extract::labelsOf(*chip.core));
  netlist::SpiceOptions opts;
  opts.title = chip.desc.name + " extracted netlist";
  os << netlist::writeSpice(ex.netlist, opts);
}

void emitSticksSvg(const core::CompiledChip& chip, std::ostream& os) {
  os << sticksSvg(sticksOf(chip.flatCore()));
}

void emitSticksSvgWindowed(const core::CompiledChip& chip, std::ostream& os,
                           const EmitterOptions& opts) {
  os << sticksSvg(sticksOf(chip.flatCore(), toViewOptions(opts)), 0.5, chip.desc.name);
}

template <Representation R>
void emitRepText(const core::CompiledChip& chip, std::ostream& os) {
  os << generateText(chip, R);
}

}  // namespace

void registerBuiltinEmitters(EmitterRegistry& reg) {
  reg.add(std::make_unique<FnEmitter>(
      "cif", "cif", "CIF 2.0 mask set (the 1979 deliverable)", false, &emitCif,
      &emitCifWindowed));
  reg.add(std::make_unique<FnEmitter>(
      "gds", "gds", "GDSII stream for modern downstream tools", true, &emitGds,
      &emitGdsWindowed));
  reg.add(std::make_unique<FnEmitter>(
      "svg", "svg", "human-viewable layout, Mead-Conway colours", false, &emitSvg,
      &emitSvgWindowed));
  reg.add(std::make_unique<FnEmitter>(
      "spice", "sp", "SPICE deck of the extracted core netlist", false, &emitSpice));
  reg.add(std::make_unique<FnEmitter>(
      "text", "txt", "hierarchical user's manual", false,
      &emitRepText<Representation::Text>));
  reg.add(std::make_unique<FnEmitter>(
      "sticks", "txt", "single-width-line topology diagram", false,
      &emitRepText<Representation::Sticks>));
  reg.add(std::make_unique<FnEmitter>(
      "sticks-svg", "svg", "sticks topology diagram, rendered", false,
      &emitSticksSvg, &emitSticksSvgWindowed));
  reg.add(std::make_unique<FnEmitter>(
      "transistors", "txt", "extracted transistor diagram", false,
      &emitRepText<Representation::Transistors>));
  reg.add(std::make_unique<FnEmitter>(
      "block", "txt", "block diagram of buses and core elements", false,
      &emitRepText<Representation::Block>));
  reg.add(std::make_unique<FnEmitter>(
      "logic", "txt", "TTL-style logic model listing", false,
      &emitRepText<Representation::Logic>));
  reg.add(std::make_unique<FnEmitter>(
      "simulation", "txt", "executable logic model summary", false,
      &emitRepText<Representation::Simulation>));
}

EmitterRegistry& EmitterRegistry::global() {
  static EmitterRegistry reg;  // holds a mutex, so fill in place (no move)
  static const bool initialized = [] {
    registerBuiltinEmitters(reg);
    return true;
  }();
  (void)initialized;
  return reg;
}

void EmitterRegistry::add(std::unique_ptr<Emitter> emitter) {
  if (emitter == nullptr) return;
  const std::unique_lock<std::shared_mutex> lock(mu_);
  emitters_.push_back(std::move(emitter));
}

const Emitter* EmitterRegistry::find(std::string_view name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  // Latest registration wins, so a user emitter can shadow a built-in.
  for (auto it = emitters_.rbegin(); it != emitters_.rend(); ++it) {
    if ((*it)->name() == name) return it->get();
  }
  return nullptr;
}

std::vector<std::string_view> EmitterRegistry::names() const {
  std::vector<std::string_view> out;
  {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(emitters_.size());
    for (const auto& e : emitters_) out.push_back(e->name());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t EmitterRegistry::size() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return emitters_.size();
}

bool EmitterRegistry::emit(const core::CompiledChip& chip, std::string_view name,
                           std::ostream& os) const {
  const Emitter* e = find(name);
  if (e == nullptr) return false;
  e->emit(chip, os);
  return true;
}

bool EmitterRegistry::emit(const core::CompiledChip& chip, std::string_view name,
                           std::ostream& os, const EmitterOptions& opts) const {
  const Emitter* e = find(name);
  if (e == nullptr) return false;
  e->emit(chip, os, opts);
  return true;
}

}  // namespace bb::reps
