/// \file sticks.hpp
/// Sticks diagrams: "the same topology as the layout, but with all of the
/// features reduced to single-width lines. The resulting diagram is much
/// easier to comprehend than the full layout diagram."

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "layout/view.hpp"

#include <string>

namespace bb::reps {

/// One stick: a centerline on a layer.
struct Stick {
  tech::Layer layer;
  geom::Point a;
  geom::Point b;

  friend bool operator==(const Stick&, const Stick&) = default;
};

/// Reduce flattened artwork to sticks: every rectangle becomes its long
/// centerline (squares become points, kept as zero-length sticks so
/// contacts stay visible). Geometry streams from a `layout::View` over
/// the per-layer spatial indexes, so `view` can restrict the diagram to
/// a viewport window (and/or merge rects first); the default view is the
/// whole artwork and reproduces the raw-vector walk exactly.
[[nodiscard]] std::vector<Stick> sticksOf(const cell::FlatLayout& flat,
                                          const layout::ViewOptions& view = {});

/// Text summary (counts per layer + extents).
[[nodiscard]] std::string sticksText(const std::vector<Stick>& sticks);

/// SVG rendering with the Mead–Conway colours, single-width lines. The
/// optional title is user text and is XML-escaped (`layout::xmlEscape`).
[[nodiscard]] std::string sticksSvg(const std::vector<Stick>& sticks, double pixelsPerUnit = 0.5,
                                    const std::string& title = {});

}  // namespace bb::reps
