/// \file blockrep.hpp
/// Block diagram: "the arrangement of the buses and core elements" —
/// Figures 1 and 2 of the paper, regenerated for any compiled chip.

#pragma once

#include "core/chip.hpp"

#include <string>

namespace bb::reps {

/// ASCII block diagram (physical format: pads / decoder / core).
[[nodiscard]] std::string blockDiagram(const core::CompiledChip& chip);

/// Logical-format diagram: buses through elements, control from above.
[[nodiscard]] std::string logicalDiagram(const core::CompiledChip& chip);

}  // namespace bb::reps
