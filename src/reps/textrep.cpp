/// \file textrep.cpp
/// The Text representation: "a hierarchical description of the chip that
/// can be used as a 'user's manual' for the completed chip."

#include "reps/textrep.hpp"

#include <sstream>

namespace bb::reps {

std::string userManual(const core::CompiledChip& chip) {
  std::ostringstream os;
  os << "==========================================================\n";
  os << " USER'S MANUAL — chip '" << chip.desc.name << "'\n";
  os << " compiled by the Bristle Blocks silicon compiler\n";
  os << "==========================================================\n\n";

  os << "1. MICROCODE FORMAT (" << chip.desc.microcode.width << " bits)\n";
  for (const icl::FieldDecl& f : chip.desc.microcode.fields) {
    os << "   [" << f.hi << ":" << f.lo << "]  " << f.name << " (" << f.bits() << " bits)\n";
  }
  os << "\n2. DATA PATH\n";
  os << "   data width: " << chip.desc.dataWidth << " bits\n";
  os << "   buses:      ";
  for (std::size_t i = 0; i < chip.desc.buses.size(); ++i) {
    if (i) os << ", ";
    os << chip.desc.buses[i] << " (" << chip.stats.busSegments[i] << " segment"
       << (chip.stats.busSegments[i] > 1 ? "s" : "") << ")";
  }
  os << "\n\n3. CORE ELEMENTS (west to east)\n";
  for (const core::PlacedElement& pe : chip.placed) {
    os << "   " << pe.name << " [" << pe.kind << "] at x="
       << pe.x / geom::kUnitsPerLambda << "L\n";
    if (pe.column != nullptr && !pe.column->doc().empty()) {
      os << "      " << pe.column->doc() << "\n";
    }
    for (const elements::ControlLine& cl : pe.controls) {
      os << "      control " << cl.name << " (phi" << cl.phase << ") when [" << cl.decode
         << "]\n";
    }
  }
  os << "\n4. INSTRUCTION DECODER\n";
  os << "   " << chip.pla.termCount() << " product terms over " << chip.desc.microcode.width
     << " microcode bits driving " << chip.controls.size() << " control lines\n";
  os << "   (raw cubes " << chip.tapeStats.rawCubes << " -> shared "
     << chip.tapeStats.sharedTerms << " -> merged " << chip.tapeStats.finalTerms << " in "
     << chip.tapeStats.mergePasses << " passes)\n";
  os << "\n5. PADS (" << chip.pads.size() << ")\n";
  for (const core::PadPlacement& p : chip.pads) {
    os << "   " << p.name << " -> " << p.padCellName << " on " << cell::sideName(p.side)
       << " side, wire " << p.wireLength / geom::kUnitsPerLambda << "L\n";
  }
  os << "\n6. TIMING\n";
  os << "   two-phase non-overlapping clock; phi1 transfers data over the buses,\n";
  os << "   phi2 operates the processing elements while the buses precharge.\n";
  os << "   Microcode must be valid on the quarter preceding phi1.\n";
  os << "\n7. ELECTRICAL\n";
  os << "   static supply current " << chip.stats.power_ua / 1000.0 << " mA; supply rails "
     << chip.stats.powerRailWidth / geom::kUnitsPerLambda << "L wide\n";
  return os.str();
}

}  // namespace bb::reps
