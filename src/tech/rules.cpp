#include "tech/rules.hpp"

namespace bb::tech {

using geom::lambda;

geom::Coord RuleDeck::minWidth(Layer l) const noexcept {
  for (const WidthRule& r : widths) {
    if (r.layer == l) return r.min;
  }
  return 0;
}

geom::Coord RuleDeck::minSpacing(Layer a, Layer b) const noexcept {
  for (const SpacingRule& r : spacings) {
    if ((r.a == a && r.b == b) || (r.a == b && r.b == a)) return r.min;
  }
  return 0;
}

const RuleDeck& meadConwayRules() {
  static const RuleDeck deck = [] {
    RuleDeck d;
    d.widths = {
        {Layer::Diffusion, lambda(2), "W.diff.2"},
        {Layer::Poly, lambda(2), "W.poly.2"},
        {Layer::Metal, lambda(3), "W.metal.3"},
        {Layer::Implant, lambda(2), "W.implant.2"},
        {Layer::Contact, lambda(2), "W.contact.2"},
    };
    d.spacings = {
        {Layer::Diffusion, Layer::Diffusion, lambda(3), "S.diff.diff.3"},
        {Layer::Poly, Layer::Poly, lambda(2), "S.poly.poly.2"},
        {Layer::Metal, Layer::Metal, lambda(3), "S.metal.metal.3"},
        {Layer::Poly, Layer::Diffusion, lambda(1), "S.poly.diff.1"},
        {Layer::Contact, Layer::Contact, lambda(2), "S.cut.cut.2"},
    };
    d.composite = CompositeRules{
        .polyGateExtension = lambda(2),
        .diffGateExtension = lambda(2),
        .contactSize = lambda(2),
        .contactSurround = lambda(1),
        .implantGateOverlap = geom::halfLambda(3),  // 1.5 lambda
    };
    return d;
  }();
  return deck;
}

const WireDefaults& wireDefaults() noexcept {
  static const WireDefaults w{};
  return w;
}

}  // namespace bb::tech
