/// \file rules.hpp
/// Mead–Conway lambda design rules for nMOS. The DRC engine consumes this
/// table; element generators consult it so generated geometry is correct
/// by construction. All distances are in grid units (see geom::lambda).

#pragma once

#include "geom/geometry.hpp"
#include "tech/layers.hpp"

#include <string>
#include <vector>

namespace bb::tech {

/// One width rule: every feature on `layer` must be at least `min` wide.
struct WidthRule {
  Layer layer;
  geom::Coord min;
  std::string name;
};

/// One spacing rule: disjoint features on `a` and `b` must be at least
/// `min` apart (a == b for same-layer spacing).
struct SpacingRule {
  Layer a;
  Layer b;
  geom::Coord min;
  std::string name;
};

/// Composite transistor / contact construction rules.
struct CompositeRules {
  geom::Coord polyGateExtension;   ///< poly must extend 2λ past diffusion
  geom::Coord diffGateExtension;   ///< diffusion must extend 2λ past poly
  geom::Coord contactSize;         ///< contact cut is exactly 2λ square
  geom::Coord contactSurround;     ///< conducting layer surround 1λ
  geom::Coord implantGateOverlap;  ///< implant must overlap gate by 1.5λ (we use ceil: 2λ on λ/4 grid is exact 1.5λ = 6 units)
};

/// The full rule deck.
struct RuleDeck {
  std::vector<WidthRule> widths;
  std::vector<SpacingRule> spacings;
  CompositeRules composite;

  /// Minimum width for a layer (0 if unruled).
  [[nodiscard]] geom::Coord minWidth(Layer l) const noexcept;
  /// Minimum spacing between two layers (0 if unruled).
  [[nodiscard]] geom::Coord minSpacing(Layer a, Layer b) const noexcept;
};

/// The canonical Mead–Conway nMOS deck:
///   diffusion width 2λ, spacing 3λ; poly width 2λ, spacing 2λ;
///   metal width 3λ, spacing 3λ; poly-diffusion spacing 1λ;
///   contact 2λ with 1λ surround; gate extensions 2λ.
[[nodiscard]] const RuleDeck& meadConwayRules();

/// Standard wire widths used by the element generators.
struct WireDefaults {
  geom::Coord diffusion = geom::lambda(2);
  geom::Coord poly = geom::lambda(2);
  geom::Coord metal = geom::lambda(3);
  geom::Coord powerRail = geom::lambda(4);  ///< grows with power demand
};

[[nodiscard]] const WireDefaults& wireDefaults() noexcept;

}  // namespace bb::tech
