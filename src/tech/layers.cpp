#include "tech/layers.hpp"

namespace bb::tech {

std::string_view cifName(Layer l) noexcept {
  switch (l) {
    case Layer::Diffusion: return "ND";
    case Layer::Poly: return "NP";
    case Layer::Metal: return "NM";
    case Layer::Implant: return "NI";
    case Layer::Contact: return "NC";
    case Layer::Buried: return "NB";
    case Layer::Glass: return "NG";
  }
  return "??";
}

std::optional<Layer> layerFromCif(std::string_view name) noexcept {
  for (Layer l : kAllLayers) {
    if (cifName(l) == name) return l;
  }
  return std::nullopt;
}

int gdsNumber(Layer l) noexcept {
  switch (l) {
    case Layer::Diffusion: return 1;
    case Layer::Poly: return 2;
    case Layer::Metal: return 3;
    case Layer::Implant: return 4;
    case Layer::Contact: return 5;
    case Layer::Buried: return 6;
    case Layer::Glass: return 7;
  }
  return 0;
}

std::string_view layerName(Layer l) noexcept {
  switch (l) {
    case Layer::Diffusion: return "diffusion";
    case Layer::Poly: return "poly";
    case Layer::Metal: return "metal";
    case Layer::Implant: return "implant";
    case Layer::Contact: return "contact";
    case Layer::Buried: return "buried";
    case Layer::Glass: return "glass";
  }
  return "?";
}

std::string_view displayColor(Layer l) noexcept {
  switch (l) {
    case Layer::Diffusion: return "#2e8b57";  // green
    case Layer::Poly: return "#d03030";       // red
    case Layer::Metal: return "#3060d0";      // blue
    case Layer::Implant: return "#d0c020";    // yellow
    case Layer::Contact: return "#202020";    // black
    case Layer::Buried: return "#8b5a2b";     // brown
    case Layer::Glass: return "#909090";      // gray
  }
  return "#000000";
}

bool isConducting(Layer l) noexcept {
  switch (l) {
    case Layer::Diffusion:
    case Layer::Poly:
    case Layer::Metal:
      return true;
    default:
      return false;
  }
}

const Electrical& electrical() noexcept {
  static const Electrical e{};
  return e;
}

}  // namespace bb::tech
