/// \file layers.hpp
/// The nMOS mask layer stack of Mead & Conway (1978), the process Bristle
/// Blocks compiled for. Layer identities, CIF names, GDS numbers, display
/// colors and electrical roles live here so every other module agrees on
/// what "poly" means.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace bb::tech {

/// nMOS mask layers (Mead–Conway naming).
enum class Layer : std::uint8_t {
  Diffusion = 0,  ///< ND — n+ diffusion (green)
  Poly,           ///< NP — polysilicon (red)
  Metal,          ///< NM — metal (blue)
  Implant,        ///< NI — depletion implant (yellow)
  Contact,        ///< NC — contact cut (black)
  Buried,         ///< NB — buried contact (brown)
  Glass,          ///< NG — overglass openings (gray)
};

inline constexpr std::size_t kLayerCount = 7;

inline constexpr std::array<Layer, kLayerCount> kAllLayers = {
    Layer::Diffusion, Layer::Poly,   Layer::Metal, Layer::Implant,
    Layer::Contact,   Layer::Buried, Layer::Glass};

/// Mead–Conway CIF layer name (ND, NP, NM, NI, NC, NB, NG).
[[nodiscard]] std::string_view cifName(Layer l) noexcept;

/// Parse a CIF layer name back to a Layer.
[[nodiscard]] std::optional<Layer> layerFromCif(std::string_view name) noexcept;

/// GDSII layer number assignment (our own stable mapping).
[[nodiscard]] int gdsNumber(Layer l) noexcept;

/// Human-readable name ("diffusion", "poly", ...).
[[nodiscard]] std::string_view layerName(Layer l) noexcept;

/// Mead–Conway colour-pencil convention, as an SVG colour.
[[nodiscard]] std::string_view displayColor(Layer l) noexcept;

/// True for the layers that carry signals (participate in connectivity).
[[nodiscard]] bool isConducting(Layer l) noexcept;

/// Electrical constants for the 1978-vintage nMOS process; used by the
/// power-estimation hooks of procedural cells.
struct Electrical {
  double vdd_volts = 5.0;
  /// Sheet resistance, ohms/square.
  double rs_diffusion = 10.0;
  double rs_poly = 50.0;
  double rs_metal = 0.03;
  /// Area capacitance, fF per lambda^2 (lambda = 2.5um).
  double cap_gate = 2.5;
  double cap_diffusion = 0.6;
  double cap_metal = 0.2;
  /// Static current of one depletion pull-up at ratio 4:1, microamps.
  double pullup_current_ua = 50.0;
};

[[nodiscard]] const Electrical& electrical() noexcept;

}  // namespace bb::tech
