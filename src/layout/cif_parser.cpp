#include "layout/cif_parser.hpp"

#include "geom/poly.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

namespace bb::layout {

namespace {

/// Token scanner over CIF text. CIF separates commands with ';'; within a
/// command, integers and letters are self-delimiting.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == ',')) {
      ++pos_;
    }
  }

  bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

  char peek() {
    skipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char get() {
    skipWs();
    return pos_ < text_.size() ? text_[pos_++] : '\0';
  }

  /// Skip a parenthesized comment.
  void skipComment() {
    int depth = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '(') ++depth;
      if (c == ')') {
        if (--depth <= 0) return;
      }
    }
  }

  std::optional<long long> number() {
    skipWs();
    bool neg = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      neg = text_[pos_] == '-';
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return std::nullopt;
    }
    long long v = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_++] - '0');
    }
    return neg ? -v : v;
  }

  std::string word() {
    skipWs();
    std::string w;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_' || text_[pos_] == '+' ||
                                   text_[pos_] == '#' || text_[pos_] == '.' ||
                                   text_[pos_] == '-')) {
      w += text_[pos_++];
    }
    return w;
  }

  /// Consume to the terminating ';'.
  void finishCommand() {
    while (pos_ < text_.size() && text_[pos_] != ';') {
      if (text_[pos_] == '(') skipComment();
      else ++pos_;
    }
    if (pos_ < text_.size()) ++pos_;  // eat ';'
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

geom::Orientation orientFromOps(bool mx, bool my, int rot) {
  // Build the orientation by composing CIF ops in order: we track the net
  // effect as one of our 8 orientations. mx: x->-x (our MY); my: y->-y
  // (our MX); rot in quarter turns CCW applied last.
  geom::Orientation o = geom::Orientation::R0;
  if (mx) o = geom::compose(geom::Orientation::MY, o);
  if (my) o = geom::compose(geom::Orientation::MX, o);
  const geom::Orientation rots[4] = {geom::Orientation::R0, geom::Orientation::R90,
                                     geom::Orientation::R180, geom::Orientation::R270};
  o = geom::compose(rots[((rot % 4) + 4) % 4], o);
  return o;
}

}  // namespace

CifParseResult parseCif(std::string_view text, cell::CellLibrary& lib) {
  CifParseResult res;
  Scanner sc(text);
  std::map<int, cell::Cell*> symbols;
  cell::Cell* current = nullptr;
  bool inSymbol = false;
  int currentId = -1;
  std::string pendingName;
  tech::Layer layer = tech::Layer::Metal;
  cell::Cell* lastDefined = nullptr;
  int topCallId = -1;

  auto fail = [&](const std::string& msg) {
    res.ok = false;
    res.error = msg;
    return res;
  };

  // Cell creation is deferred until the first content command so the
  // `9 <name>;` extension (which writeCif emits right after DS) can name
  // the cell before it exists.
  auto ensureCurrent = [&]() -> cell::Cell* {
    if (current == nullptr && inSymbol) {
      const std::string name =
          pendingName.empty() ? "cif_" + std::to_string(currentId) : pendingName;
      current = lib.create(name);
      symbols[currentId] = current;
    }
    return current;
  };

  while (!sc.atEnd()) {
    const char c = sc.peek();
    if (c == '(') {
      sc.get();
      // Already consumed '('; put the comment skipper to work from here.
      int depth = 1;
      while (!sc.atEnd() && depth > 0) {
        const char d = sc.get();
        if (d == '(') ++depth;
        if (d == ')') --depth;
      }
      sc.finishCommand();
      continue;
    }
    if (c == 'D') {
      sc.get();
      const char which = sc.get();
      if (which == 'S') {
        auto id = sc.number();
        if (!id) return fail("DS without id");
        sc.number();  // scale num (optional)
        sc.number();  // scale den
        currentId = static_cast<int>(*id);
        inSymbol = true;
        current = nullptr;
        pendingName.clear();
        sc.finishCommand();
      } else if (which == 'F') {
        if (!inSymbol) return fail("DF without DS");
        lastDefined = ensureCurrent();
        current = nullptr;
        inSymbol = false;
        currentId = -1;
        sc.finishCommand();
      } else if (which == 'D') {
        sc.finishCommand();  // DD (delete definitions) — ignored
      } else {
        return fail(std::string("unknown D command: D") + which);
      }
      continue;
    }
    if (c == '9') {
      sc.get();
      pendingName = sc.word();
      sc.finishCommand();
      continue;
    }
    if (c == 'L') {
      sc.get();
      const std::string lay = sc.word();
      auto l = tech::layerFromCif(lay);
      if (!l) return fail("unknown CIF layer " + lay);
      layer = *l;
      sc.finishCommand();
      continue;
    }
    if (c == 'B') {
      sc.get();
      auto w = sc.number();
      auto h = sc.number();
      auto cx = sc.number();
      auto cy = sc.number();
      if (!w || !h || !cx || !cy) return fail("malformed B command");
      if (ensureCurrent() == nullptr) return fail("B outside DS");
      current->addRect(layer, geom::Rect{*cx - *w / 2, *cy - *h / 2, *cx - *w / 2 + *w,
                                         *cy - *h / 2 + *h});
      sc.finishCommand();
      continue;
    }
    if (c == 'W') {
      sc.get();
      auto w = sc.number();
      if (!w) return fail("malformed W command");
      geom::Path p;
      p.width = *w;
      while (true) {
        auto x = sc.number();
        if (!x) break;
        auto y = sc.number();
        if (!y) return fail("odd coordinate count in W");
        p.pts.push_back({*x, *y});
      }
      if (ensureCurrent() == nullptr) return fail("W outside DS");
      current->addPath(layer, std::move(p));
      sc.finishCommand();
      continue;
    }
    if (c == 'P') {
      sc.get();
      geom::Polygon p;
      while (true) {
        auto x = sc.number();
        if (!x) break;
        auto y = sc.number();
        if (!y) return fail("odd coordinate count in P");
        p.pts.push_back({*x, *y});
      }
      if (ensureCurrent() == nullptr) return fail("P outside DS");
      // Import validation: collapse duplicate/collinear vertices, then
      // reject rings that have no area or cross themselves — downstream
      // clipping, DRC and extraction all assume simple rings. These are
      // diagnostics on the input deck, not assertions.
      geom::Polygon cleaned = geom::poly::cleanPolygon(p);
      if (cleaned.pts.size() < 3) {
        return fail("degenerate P polygon (no enclosed area)");
      }
      if (geom::poly::selfIntersects(cleaned)) {
        return fail("self-intersecting P polygon");
      }
      current->addPolygon(layer, std::move(cleaned));
      sc.finishCommand();
      continue;
    }
    if (c == 'C') {
      sc.get();
      auto id = sc.number();
      if (!id) return fail("C without symbol id");
      bool mx = false, my = false;
      int rot = 0;
      geom::Point t{};
      while (true) {
        const char op = sc.peek();
        if (op == 'T') {
          sc.get();
          auto x = sc.number();
          auto y = sc.number();
          if (!x || !y) return fail("malformed T in C");
          t = {*x, *y};
        } else if (op == 'R') {
          sc.get();
          auto ax = sc.number();
          auto ay = sc.number();
          if (!ax || !ay) return fail("malformed R in C");
          if (*ax > 0 && *ay == 0) rot += 0;
          else if (*ax == 0 && *ay > 0) rot += 1;
          else if (*ax < 0 && *ay == 0) rot += 2;
          else if (*ax == 0 && *ay < 0) rot += 3;
          else return fail("non-manhattan rotation in C");
        } else if (op == 'M') {
          sc.get();
          const char axis = sc.get();
          if (axis == 'X') mx = true;
          else if (axis == 'Y') my = true;
          else return fail("malformed M in C");
        } else {
          break;
        }
      }
      if (!inSymbol) {
        topCallId = static_cast<int>(*id);
      } else if (ensureCurrent() != nullptr) {
        auto it = symbols.find(static_cast<int>(*id));
        if (it == symbols.end()) return fail("call of undefined symbol " + std::to_string(*id));
        current->addInstance(it->second, geom::Transform{orientFromOps(mx, my, rot), t});
      }
      sc.finishCommand();
      continue;
    }
    if (c == 'E') {
      sc.get();
      break;
    }
    // Unknown/unsupported command (0-8 user extensions etc.) — skip.
    sc.get();
    sc.finishCommand();
  }

  res.ok = true;
  if (topCallId >= 0 && symbols.contains(topCallId)) {
    res.top = symbols[topCallId];
  } else {
    res.top = lastDefined;
  }
  if (res.top == nullptr) return CifParseResult{false, "no symbols defined", nullptr};
  return res;
}

}  // namespace bb::layout
