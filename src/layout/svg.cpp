#include "layout/svg.hpp"

#include <sstream>

namespace bb::layout {

std::string xmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

namespace {

void openDoc(std::ostringstream& os, const geom::Rect& bb, const SvgOptions& opts) {
  const double s = opts.pixelsPerUnit;
  const double w = static_cast<double>(bb.width()) * s + 20;
  const double h = static_cast<double>(bb.height()) * s + 20;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  if (!opts.title.empty()) os << "<title>" << xmlEscape(opts.title) << "</title>\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#f8f8f4\"/>\n";
}

struct Mapper {
  geom::Rect bb;
  double s;
  [[nodiscard]] double x(geom::Coord v) const { return (static_cast<double>(v - bb.x0)) * s + 10; }
  [[nodiscard]] double y(geom::Coord v) const {
    // SVG y grows downward; layout y grows upward.
    return (static_cast<double>(bb.y1 - v)) * s + 10;
  }
};

void emitRect(std::ostringstream& os, const Mapper& m, const geom::Rect& r, tech::Layer l,
              double opacity) {
  os << "<rect x=\"" << m.x(r.x0) << "\" y=\"" << m.y(r.y1) << "\" width=\""
     << static_cast<double>(r.width()) * m.s << "\" height=\""
     << static_cast<double>(r.height()) * m.s << "\" fill=\"" << tech::displayColor(l)
     << "\" fill-opacity=\"" << opacity << "\"/>\n";
}

void emitFlat(std::ostringstream& os, const Mapper& m, const View& view, double opacity) {
  // Draw in stack order: diffusion, implant, buried, poly, contact, metal, glass.
  const tech::Layer order[] = {tech::Layer::Diffusion, tech::Layer::Implant, tech::Layer::Buried,
                               tech::Layer::Poly,      tech::Layer::Contact, tech::Layer::Metal,
                               tech::Layer::Glass};
  for (tech::Layer l : order) {
    view.forEachTileParallel(l, [&](std::size_t, std::size_t, const std::vector<geom::Rect>& rs) {
      for (const geom::Rect& r : rs) emitRect(os, m, r, l, opacity);
    });
  }
  // Polygon pieces under the View's clipping policy (window-crossing
  // rings clipped, fully-inside rings verbatim).
  for (const auto& [l, p] : view.windowPolygons()) {
    os << "<polygon points=\"";
    for (geom::Point q : p.pts) os << m.x(q.x) << ',' << m.y(q.y) << ' ';
    os << "\" fill=\"" << tech::displayColor(l) << "\" fill-opacity=\"" << opacity << "\"/>\n";
  }
}

void emitOverlayPoint(std::ostringstream& os, const Mapper& m, const SvgOverlayPoint& p) {
  // The color is caller-supplied text too — escape it like the label.
  const std::string color = xmlEscape(p.color);
  os << "<circle cx=\"" << m.x(p.at.x) << "\" cy=\"" << m.y(p.at.y)
     << "\" r=\"3\" fill=\"" << color << "\"/>\n";
  if (!p.label.empty()) {
    os << "<text x=\"" << m.x(p.at.x) + 4 << "\" y=\"" << m.y(p.at.y) - 3
       << "\" font-size=\"8\" fill=\"" << color << "\">" << xmlEscape(p.label) << "</text>\n";
  }
}

/// True when the overlay point should be drawn: always for a full render,
/// only inside the viewport for a windowed one.
bool overlayVisible(const SvgOptions& opts, geom::Point at) {
  return !opts.view.window || opts.view.window->contains(at);
}

}  // namespace

std::string renderSvg(const cell::Cell& top, const SvgOptions& opts) {
  const cell::FlatLayout flat = cell::flatten(top);
  std::vector<SvgOverlayPoint> overlay;
  if (opts.drawBristles) {
    for (const cell::Bristle& b : top.bristles()) {
      overlay.push_back({b.pos, b.name, "#aa00aa"});
    }
  }
  std::ostringstream os;
  const geom::Rect bb =
      opts.view.window ? *opts.view.window : top.boundary().unionWith(flat.bbox());
  openDoc(os, bb, opts);
  const Mapper m{bb, opts.pixelsPerUnit};
  emitFlat(os, m, View{flat, opts.view}, opts.fillOpacity);
  if (opts.drawBoundary) {
    const geom::Rect b = top.boundary();
    os << "<rect x=\"" << m.x(b.x0) << "\" y=\"" << m.y(b.y1) << "\" width=\""
       << static_cast<double>(b.width()) * m.s << "\" height=\""
       << static_cast<double>(b.height()) * m.s
       << "\" fill=\"none\" stroke=\"#444\" stroke-dasharray=\"4 3\"/>\n";
  }
  for (const SvgOverlayPoint& p : overlay) {
    if (overlayVisible(opts, p.at)) emitOverlayPoint(os, m, p);
  }
  os << "</svg>\n";
  return os.str();
}

std::string renderSvg(const cell::FlatLayout& flat, const std::vector<SvgOverlayPoint>& overlay,
                      const SvgOptions& opts) {
  std::ostringstream os;
  geom::Rect bb;
  if (opts.view.window) {
    bb = *opts.view.window;
  } else {
    bb = flat.bbox();
    for (const SvgOverlayPoint& p : overlay) {
      bb = bb.unionWith(geom::Rect{p.at.x, p.at.y, p.at.x, p.at.y});
    }
  }
  openDoc(os, bb, opts);
  const Mapper m{bb, opts.pixelsPerUnit};
  emitFlat(os, m, View{flat, opts.view}, opts.fillOpacity);
  for (const SvgOverlayPoint& p : overlay) {
    if (overlayVisible(opts, p.at)) emitOverlayPoint(os, m, p);
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace bb::layout
