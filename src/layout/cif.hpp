/// \file cif.hpp
/// Caltech Intermediate Form (CIF 2.0) writer — the mask interchange
/// format of Mead & Conway; the actual deliverable of the 1979 Bristle
/// Blocks system was a CIF mask set. Hierarchy is preserved: every cell
/// becomes a DS/DF symbol, instances become C calls with transforms.

#pragma once

#include "cell/cell.hpp"
#include "cell/library.hpp"

#include <string>

namespace bb::layout {

struct CifOptions {
  /// Distance scale: layout units are multiplied by num/den to obtain
  /// centimicrons. Default: quarter-lambda grid at lambda = 2.5 um
  /// (62.5 centimicrons per unit = 125/2).
  int scaleNum = 125;
  int scaleDen = 2;
  /// Emit `9 <name>;` symbol-name extension lines.
  bool symbolNames = true;
  /// Emit human-readable comments.
  bool comments = true;
};

/// Write `top` and its whole hierarchy as a CIF file ending in `E`.
[[nodiscard]] std::string writeCif(const cell::Cell& top, const CifOptions& opts = {});

/// Statistics of a written mask set (for reports and tests).
struct CifStats {
  std::size_t symbols = 0;
  std::size_t boxes = 0;
  std::size_t wires = 0;
  std::size_t polygons = 0;
  std::size_t calls = 0;
};
[[nodiscard]] CifStats cifStats(const std::string& cif);

}  // namespace bb::layout
