/// \file cif.hpp
/// Caltech Intermediate Form (CIF 2.0) writer — the mask interchange
/// format of Mead & Conway; the actual deliverable of the 1979 Bristle
/// Blocks system was a CIF mask set. Hierarchy is preserved: every cell
/// becomes a DS/DF symbol, instances become C calls with transforms.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "cell/library.hpp"
#include "layout/view.hpp"

#include <string>

namespace bb::layout {

struct CifOptions {
  /// Distance scale: layout units are multiplied by num/den to obtain
  /// centimicrons. Default: quarter-lambda grid at lambda = 2.5 um
  /// (62.5 centimicrons per unit = 125/2).
  int scaleNum = 125;
  int scaleDen = 2;
  /// Emit `9 <name>;` symbol-name extension lines.
  bool symbolNames = true;
  /// Emit human-readable comments.
  bool comments = true;
};

/// Write `top` and its whole hierarchy as a CIF file ending in `E`.
[[nodiscard]] std::string writeCif(const cell::Cell& top, const CifOptions& opts = {});

/// Hierarchical mask output, spelled out: one DS/DF symbol per unique
/// cell and a C call per instance — never a flattened copy — so the
/// file size scales with unique-cell geometry plus instance count, not
/// the flattened rect count (the GDS counterpart is `writeGdsHier`).
/// Today `writeCif(Cell)` already preserves hierarchy, so this is that
/// writer under the name the hierarchical-compile API promises; callers
/// choosing flat vs hier emission pair `writeCif(FlatLayout)` with
/// `writeCifHier`. Area-identical to the flat emission of the same cell
/// (the round-trip tests parse it back and compare per-layer union
/// areas).
[[nodiscard]] std::string writeCifHier(const cell::Cell& top, const CifOptions& opts = {});

/// Write a View's artwork as one CIF symbol (DS 1), geometry streamed
/// tile by tile — the windowed-emission path, and (through the
/// `View(HierIndex)` constructor) the lazy-viewport path that never
/// materializes the full flatten. Boxes come out in the View's
/// deterministic tile order; each window-touching polygon is emitted
/// whole from exactly its owner tile (`View::polygonsOwnedBy`), after
/// that tile's boxes. A default single-tile whole-artwork view is
/// bit-identical to walking the raw layer vectors front to back; with
/// merging the boxes are the disjoint maximal pieces instead (note
/// merged/clipped boxes can have odd extents, whose CIF centers round
/// down — the same quarter-lambda caveat as the hierarchical writer).
[[nodiscard]] std::string writeCif(const View& v, const CifOptions& opts = {});

/// Convenience: open a View over `flat` with `view` and write it.
[[nodiscard]] std::string writeCif(const cell::FlatLayout& flat, const ViewOptions& view,
                                   const CifOptions& opts = {});

/// Statistics of a written mask set (for reports and tests).
struct CifStats {
  std::size_t symbols = 0;
  std::size_t boxes = 0;
  std::size_t wires = 0;
  std::size_t polygons = 0;
  std::size_t calls = 0;
};
[[nodiscard]] CifStats cifStats(const std::string& cif);

}  // namespace bb::layout
