/// \file cif.hpp
/// Caltech Intermediate Form (CIF 2.0) writer — the mask interchange
/// format of Mead & Conway; the actual deliverable of the 1979 Bristle
/// Blocks system was a CIF mask set. Hierarchy is preserved: every cell
/// becomes a DS/DF symbol, instances become C calls with transforms.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "cell/library.hpp"
#include "layout/view.hpp"

#include <string>

namespace bb::layout {

struct CifOptions {
  /// Distance scale: layout units are multiplied by num/den to obtain
  /// centimicrons. Default: quarter-lambda grid at lambda = 2.5 um
  /// (62.5 centimicrons per unit = 125/2).
  int scaleNum = 125;
  int scaleDen = 2;
  /// Emit `9 <name>;` symbol-name extension lines.
  bool symbolNames = true;
  /// Emit human-readable comments.
  bool comments = true;
};

/// Write `top` and its whole hierarchy as a CIF file ending in `E`.
[[nodiscard]] std::string writeCif(const cell::Cell& top, const CifOptions& opts = {});

/// Write flattened artwork as one CIF symbol (DS 1), geometry streamed
/// tile by tile from a `layout::View` — the windowed-emission path.
/// Boxes come out in the View's deterministic tile order; polygons whose
/// bbox touches the window are emitted whole after each layer's boxes.
/// The default `view` (whole-artwork window, one tile, no merging) is
/// bit-identical to walking the raw layer vectors front to back; with
/// `view.merge` the boxes are the disjoint maximal pieces instead (note
/// merged/clipped boxes can have odd extents, whose CIF centers round
/// down — the same quarter-lambda caveat as the hierarchical writer).
[[nodiscard]] std::string writeCif(const cell::FlatLayout& flat, const ViewOptions& view,
                                   const CifOptions& opts = {});

/// Statistics of a written mask set (for reports and tests).
struct CifStats {
  std::size_t symbols = 0;
  std::size_t boxes = 0;
  std::size_t wires = 0;
  std::size_t polygons = 0;
  std::size_t calls = 0;
};
[[nodiscard]] CifStats cifStats(const std::string& cif);

}  // namespace bb::layout
