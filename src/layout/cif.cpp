#include "layout/cif.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace bb::layout {

namespace {

using cell::Cell;
using geom::Orientation;

/// Collect cells bottom-up (children before parents), each once.
void collect(const Cell& c, std::vector<const Cell*>& order,
             std::map<const Cell*, int>& ids) {
  if (ids.contains(&c)) return;
  for (const cell::Instance& i : c.instances()) collect(*i.cell, order, ids);
  ids[&c] = static_cast<int>(order.size()) + 1;  // CIF symbols are 1-based
  order.push_back(&c);
}

/// CIF transform suffix for one of our D4 orientations. CIF applies the
/// listed operations left to right; CIF MX negates x, MY negates y.
std::string cifOrient(Orientation o) {
  switch (o) {
    case Orientation::R0: return "";
    case Orientation::R90: return " R 0 1";
    case Orientation::R180: return " R -1 0";
    case Orientation::R270: return " R 0 -1";
    case Orientation::MX: return " M Y";        // our MX: y -> -y
    case Orientation::MX90: return " M Y R 0 1";
    case Orientation::MY: return " M X";        // our MY: x -> -x
    case Orientation::MY90: return " M X R 0 1";
  }
  return "";
}

}  // namespace

std::string writeCif(const Cell& top, const CifOptions& opts) {
  std::vector<const Cell*> order;
  std::map<const Cell*, int> ids;
  collect(top, order, ids);

  std::ostringstream os;
  if (opts.comments) {
    os << "( Bristle Blocks silicon compiler -- CIF 2.0 mask set );\n";
    os << "( top cell: " << top.name() << " );\n";
  }
  for (const Cell* c : order) {
    os << "DS " << ids[c] << ' ' << opts.scaleNum << ' ' << opts.scaleDen << ";\n";
    if (opts.symbolNames) os << "9 " << c->name() << ";\n";
    // Group shapes by layer to minimize L commands.
    for (tech::Layer l : tech::kAllLayers) {
      bool wroteLayer = false;
      auto needLayer = [&] {
        if (!wroteLayer) {
          os << "L " << tech::cifName(l) << ";\n";
          wroteLayer = true;
        }
      };
      for (const cell::Shape& s : c->shapes()) {
        if (s.layer != l) continue;
        std::visit(
            [&](const auto& g) {
              using T = std::decay_t<decltype(g)>;
              if constexpr (std::is_same_v<T, geom::Rect>) {
                needLayer();
                // B length width xcenter ycenter — CIF centers may be
                // half-integral in layout units; double the coordinate
                // system would be needed. Our generators keep all rects
                // even-sized on the quarter-lambda grid, so centers are
                // exact.
                os << "B " << g.width() << ' ' << g.height() << ' ' << g.center().x << ' '
                   << g.center().y << ";\n";
              } else if constexpr (std::is_same_v<T, geom::Polygon>) {
                needLayer();
                os << "P";
                for (geom::Point p : g.pts) os << ' ' << p.x << ' ' << p.y;
                os << ";\n";
              } else {
                needLayer();
                os << "W " << g.width;
                for (geom::Point p : g.pts) os << ' ' << p.x << ' ' << p.y;
                os << ";\n";
              }
            },
            s.geo);
      }
    }
    for (const cell::Instance& i : c->instances()) {
      os << "C " << ids[i.cell] << cifOrient(i.placement.orient) << " T "
         << i.placement.offset.x << ' ' << i.placement.offset.y << ";\n";
    }
    os << "DF;\n";
  }
  os << "C " << ids[&top] << ";\n";
  os << "E\n";
  return os.str();
}

std::string writeCifHier(const Cell& top, const CifOptions& opts) { return writeCif(top, opts); }

std::string writeCif(const View& v, const CifOptions& opts) {
  std::ostringstream os;
  if (opts.comments) {
    os << "( Bristle Blocks silicon compiler -- CIF 2.0 mask set );\n";
    os << "( flat artwork, window " << geom::toString(v.window()) << " );\n";
  }
  os << "DS 1 " << opts.scaleNum << ' ' << opts.scaleDen << ";\n";
  if (opts.symbolNames) os << "9 flat;\n";
  for (tech::Layer l : tech::kAllLayers) {
    bool wroteLayer = false;
    auto needLayer = [&] {
      if (!wroteLayer) {
        os << "L " << tech::cifName(l) << ";\n";
        wroteLayer = true;
      }
    };
    v.forEachTileParallel(l, [&](std::size_t tx, std::size_t ty,
                                 const std::vector<geom::Rect>& rs) {
      for (const geom::Rect& r : rs) {
        needLayer();
        os << "B " << r.width() << ' ' << r.height() << ' ' << r.center().x << ' '
           << r.center().y << ";\n";
      }
      // This tile's polygon pieces (window-clipped under the default
      // clipPolygons policy), each emitted from exactly one owner tile.
      for (const auto& [pl, p] : v.windowPolygonsOwnedBy(tx, ty)) {
        if (pl != l) continue;
        needLayer();
        os << "P";
        for (geom::Point q : p->pts) os << ' ' << q.x << ' ' << q.y;
        os << ";\n";
      }
    });
  }
  os << "DF;\n";
  os << "C 1;\n";
  os << "E\n";
  return os.str();
}

std::string writeCif(const cell::FlatLayout& flat, const ViewOptions& view,
                     const CifOptions& opts) {
  return writeCif(View{flat, view}, opts);
}

CifStats cifStats(const std::string& cif) {
  CifStats st;
  std::istringstream is(cif);
  std::string line;
  while (std::getline(is, line)) {
    // Skip leading whitespace.
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    switch (line[i]) {
      case 'D':
        if (line.compare(i, 2, "DS") == 0) ++st.symbols;
        break;
      case 'B': ++st.boxes; break;
      case 'W': ++st.wires; break;
      case 'P': ++st.polygons; break;
      case 'C': ++st.calls; break;
      default: break;
    }
  }
  return st;
}

}  // namespace bb::layout
