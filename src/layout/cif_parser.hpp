/// \file cif_parser.hpp
/// A CIF 2.0 reader for the dialect writeCif emits (DS/DF, 9-names, L, B,
/// W, P, C with R/M/T transforms, E). Used for round-trip verification of
/// the mask pipeline and to import library cells kept as CIF on disk.

#pragma once

#include "cell/library.hpp"

#include <string>

namespace bb::layout {

struct CifParseResult {
  bool ok = false;
  std::string error;
  /// The top cell: the symbol called by the top-level `C` command, or the
  /// last defined symbol when no top-level call is present.
  cell::Cell* top = nullptr;
};

/// Parse `text` into `lib`. Symbol ids are mapped to fresh cells; `9`
/// name extensions give cells their names (falling back to "cif_<id>").
CifParseResult parseCif(std::string_view text, cell::CellLibrary& lib);

}  // namespace bb::layout
