/// \file view.hpp
/// Windowed, tile-streaming view over flattened artwork — the emission-side
/// counterpart of the per-layer spatial indexes.
///
/// Every mask writer used to walk the raw flattened layer vectors front to
/// back, so emitting a small viewport of a huge chip cost as much as
/// emitting the whole chip. A `View` is a viewport window plus a tile grid
/// over a `cell::FlatLayout`: it yields each layer's geometry tile by tile
/// in a deterministic order, answering "what is inside this window?" with
/// `FlatLayout::indexOn(layer)` window queries instead of full scans, so
/// emission cost tracks the geometry in the window (output-sensitive), not
/// the chip size. All four geometry writers (CIF, GDS, SVG, sticks-SVG)
/// stream from a View; full-chip emission is simply the `window == bbox`,
/// single-tile special case and is bit-identical to the raw walk.
///
/// Two streaming modes:
///  * unmerged (default): original rects, unclipped, each emitted exactly
///    once — a rect touching several tiles belongs to the tile containing
///    its window-clamped lower-left corner. With the default single tile
///    the order is exactly the source-vector order (the index returns
///    ascending indices), which is what makes full emission byte-identical
///    to the pre-View writers.
///  * merged: each tile's geometry is clipped to the tile and decomposed
///    with `geom::sweep::unionRects` into disjoint maximal rects — fewer,
///    overlap-free boxes whose union area per layer equals the raw union
///    area exactly (the equivalence tests assert this via
///    `sweep::unionArea`). Merged output is clipped to the window.
///
/// Polygons (which only CIF import produces today) stream through the
/// `geom::poly` clipping engine: with the default `clipPolygons`, a
/// polygon crossing the window boundary is clipped to the window
/// (`geom::poly::clipToRect`) and its pieces emitted instead of the
/// whole ring, while a polygon fully inside the window passes through
/// verbatim — so full-chip emission stays byte-identical to the raw
/// walk. With `clipPolygons` off, the pre-clip reference behavior:
/// bbox-filter against the window and emit survivors whole
/// (conservative over-emission rather than silent loss). Either way,
/// tiled writers assign each emitted piece to exactly one owner tile
/// (`windowPolygonsOwnedBy`, the same window-clamped lower-left rule
/// the rects use), so a boundary-spanning piece is never re-emitted
/// per touching tile.
///
/// A View can also be opened over a `cell::HierIndex` instead of a full
/// flatten: the constructor resolves ONLY the placements whose bounding
/// boxes touch the window (plus the residual geometry in the window)
/// into a private FlatLayout, so a viewport over an NxN array
/// materializes O(window) geometry, never the whole flatten. The
/// index's instance-materialization counter records how many placements
/// were resolved — the svc viewport tests assert through it.

#pragma once

#include "cell/flatten.hpp"
#include "cell/hier_index.hpp"
#include "geom/geometry.hpp"

#include <memory>

#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace bb::layout {

/// Window/tile/merge parameters for a View (and, via
/// `reps::EmitterOptions`, for any registered emitter).
struct ViewOptions {
  /// Viewport in layout coordinates. Unset: the whole artwork
  /// (`flat.bbox()`), i.e. full-chip emission.
  std::optional<geom::Rect> window;
  /// Tile pitch of the streaming grid. 0: one tile covering the window.
  geom::Coord tileSize = 0;
  /// Merge each tile's rects into disjoint maximal pieces
  /// (`sweep::unionRects`), clipped to the tile. Off: original rects.
  bool merge = false;
  /// Clip window-crossing polygons to the window (`geom::poly::clipToRect`)
  /// and emit the pieces; fully-inside polygons pass through verbatim.
  /// Off: the pre-clip reference behavior — bbox filter, emit whole.
  bool clipPolygons = true;
};

class View {
 public:
  /// `flat` must outlive the View (it is not copied). Building a View is
  /// cheap; the per-layer indexes are built lazily by FlatLayout on the
  /// first query of each layer.
  explicit View(const cell::FlatLayout& flat, ViewOptions opts = {});

  /// Open a view over hierarchical artwork WITHOUT flattening it: only
  /// the residual geometry inside the window plus the placements whose
  /// world bboxes touch the window are materialized (into a private
  /// layout this View owns), and `hier.noteMaterialized` records how
  /// many placements were resolved. `hier` may be released after
  /// construction. An unset `opts.window` views `hier.bbox()` — the
  /// full-chip case, equivalent to a flat View but still built from
  /// per-unit index queries.
  explicit View(const cell::HierIndex& hier, ViewOptions opts = {});

  [[nodiscard]] const cell::FlatLayout& flat() const noexcept { return *flat_; }
  [[nodiscard]] const geom::Rect& window() const noexcept { return window_; }
  [[nodiscard]] bool merged() const noexcept { return opts_.merge; }

  [[nodiscard]] std::size_t tilesX() const noexcept { return tilesX_; }
  [[nodiscard]] std::size_t tilesY() const noexcept { return tilesY_; }
  [[nodiscard]] std::size_t tileCount() const noexcept { return tilesX_ * tilesY_; }
  /// Tile (tx, ty)'s cell, clipped to the window (the last row/column
  /// absorbs the remainder, so tiles partition the window exactly).
  [[nodiscard]] geom::Rect tileRect(std::size_t tx, std::size_t ty) const noexcept;

  /// Stream layer `l` tile by tile in deterministic order: rows bottom-up,
  /// tiles left-to-right within a row. `fn(tx, ty, rects)` — `rects` is a
  /// scratch buffer reused across tiles (copy what must outlive the call).
  /// Unmerged: original rects touching the window, each exactly once,
  /// ascending source order within a tile. Merged: disjoint maximal
  /// pieces of the tile-clipped union.
  using TileFn =
      std::function<void(std::size_t tx, std::size_t ty, const std::vector<geom::Rect>&)>;
  void forEachTile(tech::Layer l, const TileFn& fn) const;

  /// `forEachTile` with the per-tile *collection* (index query, corner
  /// filtering or clip+union) fanned out over the process-shared
  /// `core::ThreadPool` into per-worker buffers. `fn` itself still runs
  /// sequentially on the calling thread, in exactly `forEachTile`'s
  /// deterministic tile order, so the streamed output is byte-identical
  /// to the sequential walk — the writers switch between the two freely.
  /// Single-tile views (the full-chip emission default) take the
  /// sequential path unchanged; safe to call from inside a pool task
  /// (nested parallelism shares the one pool budget).
  void forEachTileParallel(tech::Layer l, const TileFn& fn) const;

  /// Layer `l`'s whole windowed geometry in one vector, in tile order
  /// (the streaming order flattened).
  [[nodiscard]] std::vector<geom::Rect> rectsOn(tech::Layer l) const;

  /// Polygons whose bounding box touches the window, whole and in source
  /// order. Windowed emission emits these un-clipped — conservative
  /// over-emission rather than silent loss.
  [[nodiscard]] std::vector<std::pair<tech::Layer, const geom::Polygon*>> polygons() const;

  /// The window-touching polygons OWNED by tile (tx, ty): the tile
  /// containing the polygon bbox's window-clamped lower-left corner,
  /// exactly the rect owner rule — so a tiled writer emits each polygon
  /// exactly once, from one tile, instead of once per touching tile.
  /// Source order within the tile. Linear in the polygon count per call
  /// (polygons are rare — CIF import only — and not spatially indexed).
  [[nodiscard]] std::vector<std::pair<tech::Layer, const geom::Polygon*>> polygonsOwnedBy(
      std::size_t tx, std::size_t ty) const;

  /// The window's polygon geometry under the clipping policy, in source
  /// order: with `clipPolygons`, window-crossing polygons are replaced
  /// by their window-clipped pieces (fully-inside polygons verbatim,
  /// zero-area grazers dropped); without, whole bbox-touching polygons.
  /// Built once on first use and cached (thread-safe); the returned
  /// reference lives as long as the View.
  [[nodiscard]] const std::vector<std::pair<tech::Layer, geom::Polygon>>& windowPolygons()
      const;

  /// `windowPolygons()` restricted to the pieces OWNED by tile (tx, ty)
  /// — the tile containing the piece bbox's window-clamped lower-left
  /// corner, exactly the rect owner rule — so a tiled writer emits each
  /// piece exactly once. Pointers reference the `windowPolygons` cache.
  [[nodiscard]] std::vector<std::pair<tech::Layer, const geom::Polygon*>>
  windowPolygonsOwnedBy(std::size_t tx, std::size_t ty) const;

 private:
  /// Tile column/row owning window-clamped coordinate `v` along an axis
  /// starting at `lo` with `count` tiles of pitch `pitch`.
  [[nodiscard]] static std::size_t tileOf(geom::Coord v, geom::Coord lo, geom::Coord pitch,
                                          std::size_t count) noexcept;

  /// Collect tile (tx, ty)'s geometry for layer index `idx` into `out`
  /// (`cand`/`clipped` are caller scratch). The shared kernel of the
  /// sequential and parallel tile walks; const reads only, so distinct
  /// tiles collect concurrently.
  void collectTile(const geom::RectIndex& idx, std::size_t tx, std::size_t ty,
                   std::vector<int>& cand, std::vector<geom::Rect>& clipped,
                   std::vector<geom::Rect>& out) const;

  /// Size the tile grid from `window_` (shared by both constructors).
  void initGrid() noexcept;

  const cell::FlatLayout* flat_;
  /// Set by the HierIndex constructor: the window-resolved geometry this
  /// View materialized and owns (`flat_` points at it).
  std::shared_ptr<const cell::FlatLayout> owned_;
  ViewOptions opts_;
  geom::Rect window_;
  geom::Coord pitchX_ = 1, pitchY_ = 1;
  std::size_t tilesX_ = 1, tilesY_ = 1;
  /// Lazily-built window polygon pieces (see `windowPolygons`). Guarded
  /// by `piecesOnce_` so concurrent emitters sharing one View are safe.
  mutable std::once_flag piecesOnce_;
  mutable std::vector<std::pair<tech::Layer, geom::Polygon>> pieces_;
};

}  // namespace bb::layout
