/// \file gds.hpp
/// GDSII stream-format writer. GDSII postdates the paper (the 1979 system
/// emitted CIF) but is the format today's downstream tools expect, so the
/// library offers both. The writer preserves hierarchy: one structure per
/// cell, SREFs for instances.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "layout/view.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace bb::layout {

struct GdsOptions {
  std::string libName = "BRISTLE";
  /// Database user unit in meters per layout unit. Quarter-lambda grid at
  /// lambda = 2.5um: one unit = 0.625um.
  double unitMeters = 0.625e-6;
  /// Database units per user unit.
  double dbPerUser = 1000.0;
  /// Structure name used by the flat (windowed) writer.
  std::string flatStructName = "FLAT";
};

/// Serialize `top` and its hierarchy to a GDSII byte stream.
[[nodiscard]] std::vector<std::uint8_t> writeGds(const cell::Cell& top,
                                                 const GdsOptions& opts = {});

/// Serialize flattened artwork as a single GDSII structure, geometry
/// streamed tile by tile from a `layout::View` — the windowed-emission
/// path. Boundaries come out in the View's deterministic tile order,
/// each layer's rects followed by its window-touching polygons. The
/// default `view` is bit-identical to walking the raw layer vectors;
/// `view.merge` emits the disjoint maximal pieces instead.
[[nodiscard]] std::vector<std::uint8_t> writeGds(const cell::FlatLayout& flat,
                                                 const ViewOptions& view,
                                                 const GdsOptions& opts = {});

/// Minimal structural decode of a GDSII stream (record walk) for tests:
/// counts of structures, boundaries, paths and srefs, plus structure names.
struct GdsStats {
  std::size_t structures = 0;
  std::size_t boundaries = 0;
  std::size_t paths = 0;
  std::size_t srefs = 0;
  std::vector<std::string> names;
  bool wellFormed = false;
};
[[nodiscard]] GdsStats gdsStats(const std::vector<std::uint8_t>& bytes);

}  // namespace bb::layout
