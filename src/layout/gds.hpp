/// \file gds.hpp
/// GDSII stream-format writer. GDSII postdates the paper (the 1979 system
/// emitted CIF) but is the format today's downstream tools expect, so the
/// library offers both. The writer preserves hierarchy: one structure per
/// cell, SREFs for instances.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "layout/view.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace bb::layout {

struct GdsOptions {
  std::string libName = "BRISTLE";
  /// Database user unit in meters per layout unit. Quarter-lambda grid at
  /// lambda = 2.5um: one unit = 0.625um.
  double unitMeters = 0.625e-6;
  /// Database units per user unit.
  double dbPerUser = 1000.0;
  /// Structure name used by the flat (windowed) writer.
  std::string flatStructName = "FLAT";
};

/// Serialize `top` and its hierarchy to a GDSII byte stream.
[[nodiscard]] std::vector<std::uint8_t> writeGds(const cell::Cell& top,
                                                 const GdsOptions& opts = {});

/// Hierarchical mask output with array compression: one structure per
/// unique cell (like `writeGds`), but each parent's instances are
/// grouped by (child, orientation) and any group forming a full
/// uniformly-spaced cartesian grid is emitted as a single AREF
/// (COLROW + three-point XY) instead of cols x rows SREFs — the shape
/// an NxN datapath array compiles to, making file size scale with
/// unique-cell geometry plus O(1) per array. Groups that don't form a
/// grid fall back to individual SREFs; the placed instance set (and so
/// the flattened artwork) is identical to `writeGds` either way.
[[nodiscard]] std::vector<std::uint8_t> writeGdsHier(const cell::Cell& top,
                                                     const GdsOptions& opts = {});

/// Serialize a View's artwork as a single GDSII structure, geometry
/// streamed tile by tile — the windowed-emission path, and (through the
/// `View(HierIndex)` constructor) the lazy-viewport path. Boundaries
/// come out in the View's deterministic tile order; each window-touching
/// polygon is emitted whole from exactly its owner tile
/// (`View::polygonsOwnedBy`), after that tile's rects. A default
/// single-tile whole-artwork view is bit-identical to walking the raw
/// layer vectors; merging emits the disjoint maximal pieces instead.
[[nodiscard]] std::vector<std::uint8_t> writeGds(const View& v, const GdsOptions& opts = {});

/// Convenience: open a View over `flat` with `view` and write it.
[[nodiscard]] std::vector<std::uint8_t> writeGds(const cell::FlatLayout& flat,
                                                 const ViewOptions& view,
                                                 const GdsOptions& opts = {});

/// Minimal structural decode of a GDSII stream (record walk) for tests:
/// counts of structures, boundaries, paths, srefs and arefs, plus
/// structure names.
struct GdsStats {
  std::size_t structures = 0;
  std::size_t boundaries = 0;
  std::size_t paths = 0;
  std::size_t srefs = 0;
  std::size_t arefs = 0;
  std::vector<std::string> names;
  bool wellFormed = false;
};
[[nodiscard]] GdsStats gdsStats(const std::vector<std::uint8_t>& bytes);

}  // namespace bb::layout
