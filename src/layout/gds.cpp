#include "layout/gds.hpp"

#include <cmath>
#include <cstring>
#include <map>

namespace bb::layout {

namespace {

using cell::Cell;

// GDSII record types (with implicit data type).
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kPath = 0x09,
  kSref = 0x0a,
  kLayer = 0x0d,
  kDatatype = 0x0e,
  kWidth = 0x0f,
  kXy = 0x10,
  kEndEl = 0x11,
  kSname = 0x12,
  kStrans = 0x1a,
  kAngle = 0x1c,
};

enum : std::uint8_t {
  kDtNone = 0x00,
  kDtI16 = 0x02,
  kDtI32 = 0x03,
  kDtF64 = 0x05,
  kDtAscii = 0x06,
};

class Emitter {
 public:
  void record(std::uint8_t type, std::uint8_t dtype, const std::vector<std::uint8_t>& payload) {
    const std::size_t len = payload.size() + 4;
    bytes_.push_back(static_cast<std::uint8_t>(len >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(len & 0xff));
    bytes_.push_back(type);
    bytes_.push_back(dtype);
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  }

  void i16(std::uint8_t type, std::vector<std::int16_t> vals) {
    std::vector<std::uint8_t> p;
    for (std::int16_t v : vals) {
      p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      p.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    record(type, kDtI16, p);
  }

  void i32(std::uint8_t type, const std::vector<std::int32_t>& vals) {
    std::vector<std::uint8_t> p;
    for (std::int32_t v : vals) {
      p.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
      p.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
      p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      p.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    record(type, kDtI32, p);
  }

  void f64(std::uint8_t type, const std::vector<double>& vals) {
    std::vector<std::uint8_t> p;
    for (double v : vals) {
      const auto r = real8(v);
      p.insert(p.end(), r.begin(), r.end());
    }
    record(type, kDtF64, p);
  }

  void ascii(std::uint8_t type, std::string s) {
    if (s.size() % 2 != 0) s.push_back('\0');  // records are even-length
    std::vector<std::uint8_t> p(s.begin(), s.end());
    record(type, kDtAscii, p);
  }

  void none(std::uint8_t type) { record(type, kDtNone, {}); }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

  /// GDSII excess-64 8-byte real.
  static std::array<std::uint8_t, 8> real8(double v) {
    std::array<std::uint8_t, 8> out{};
    if (v == 0.0) return out;
    const bool neg = v < 0;
    double m = neg ? -v : v;
    int exp = 0;
    while (m >= 1.0) {
      m /= 16.0;
      ++exp;
    }
    while (m < 1.0 / 16.0) {
      m *= 16.0;
      --exp;
    }
    // m in [1/16, 1); mantissa = m * 2^56 as 7 bytes.
    std::uint64_t mant = static_cast<std::uint64_t>(std::ldexp(m, 56));
    out[0] = static_cast<std::uint8_t>((neg ? 0x80 : 0x00) | ((exp + 64) & 0x7f));
    for (int i = 6; i >= 0; --i) {
      out[static_cast<std::size_t>(7 - i)] |= static_cast<std::uint8_t>((mant >> (8 * i)) & 0xff);
    }
    return out;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

void collect(const Cell& c, std::vector<const Cell*>& order, std::map<const Cell*, bool>& seen) {
  if (seen.contains(&c)) return;
  seen[&c] = true;
  for (const cell::Instance& i : c.instances()) collect(*i.cell, order, seen);
  order.push_back(&c);
}

std::vector<std::int32_t> rectXy(const geom::Rect& r) {
  return {static_cast<std::int32_t>(r.x0), static_cast<std::int32_t>(r.y0),
          static_cast<std::int32_t>(r.x1), static_cast<std::int32_t>(r.y0),
          static_cast<std::int32_t>(r.x1), static_cast<std::int32_t>(r.y1),
          static_cast<std::int32_t>(r.x0), static_cast<std::int32_t>(r.y1),
          static_cast<std::int32_t>(r.x0), static_cast<std::int32_t>(r.y0)};
}

/// GDS models placement as optional reflect-about-x followed by CCW
/// rotation. Our Orientation decomposes the same way.
struct GdsOrient {
  bool reflect;
  double angleDeg;
};

GdsOrient gdsOrient(geom::Orientation o) {
  using geom::Orientation;
  switch (o) {
    case Orientation::R0: return {false, 0};
    case Orientation::R90: return {false, 90};
    case Orientation::R180: return {false, 180};
    case Orientation::R270: return {false, 270};
    case Orientation::MX: return {true, 0};
    case Orientation::MX90: return {true, 90};
    case Orientation::MY: return {true, 180};
    case Orientation::MY90: return {true, 270};
  }
  return {false, 0};
}

}  // namespace

std::vector<std::uint8_t> writeGds(const Cell& top, const GdsOptions& opts) {
  std::vector<const Cell*> order;
  std::map<const Cell*, bool> seen;
  collect(top, order, seen);

  Emitter e;
  e.i16(kHeader, {600});
  // BGNLIB: creation + modification timestamps (12 i16). Fixed epoch so
  // output is deterministic and diffable.
  e.i16(kBgnLib, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kLibName, opts.libName);
  e.f64(kUnits, {1.0 / opts.dbPerUser, opts.unitMeters / opts.dbPerUser});

  for (const Cell* c : order) {
    e.i16(kBgnStr, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
    e.ascii(kStrName, c->name());
    for (const cell::Shape& s : c->shapes()) {
      const int layer = tech::gdsNumber(s.layer);
      std::visit(
          [&](const auto& g) {
            using T = std::decay_t<decltype(g)>;
            if constexpr (std::is_same_v<T, geom::Rect>) {
              e.none(kBoundary);
              e.i16(kLayer, {static_cast<std::int16_t>(layer)});
              e.i16(kDatatype, {0});
              e.i32(kXy, rectXy(g));
              e.none(kEndEl);
            } else if constexpr (std::is_same_v<T, geom::Polygon>) {
              e.none(kBoundary);
              e.i16(kLayer, {static_cast<std::int16_t>(layer)});
              e.i16(kDatatype, {0});
              std::vector<std::int32_t> xy;
              for (geom::Point p : g.pts) {
                xy.push_back(static_cast<std::int32_t>(p.x));
                xy.push_back(static_cast<std::int32_t>(p.y));
              }
              // GDS boundaries repeat the first point.
              if (!g.pts.empty()) {
                xy.push_back(static_cast<std::int32_t>(g.pts[0].x));
                xy.push_back(static_cast<std::int32_t>(g.pts[0].y));
              }
              e.i32(kXy, xy);
              e.none(kEndEl);
            } else {
              e.none(kPath);
              e.i16(kLayer, {static_cast<std::int16_t>(layer)});
              e.i16(kDatatype, {0});
              e.i32(kWidth, {static_cast<std::int32_t>(g.width)});
              std::vector<std::int32_t> xy;
              for (geom::Point p : g.pts) {
                xy.push_back(static_cast<std::int32_t>(p.x));
                xy.push_back(static_cast<std::int32_t>(p.y));
              }
              e.i32(kXy, xy);
              e.none(kEndEl);
            }
          },
          s.geo);
    }
    for (const cell::Instance& i : c->instances()) {
      e.none(kSref);
      e.ascii(kSname, i.cell->name());
      const GdsOrient go = gdsOrient(i.placement.orient);
      if (go.reflect || go.angleDeg != 0) {
        e.i16(kStrans, {static_cast<std::int16_t>(go.reflect ? -32768 : 0)});
        if (go.angleDeg != 0) e.f64(kAngle, {go.angleDeg});
      }
      e.i32(kXy, {static_cast<std::int32_t>(i.placement.offset.x),
                  static_cast<std::int32_t>(i.placement.offset.y)});
      e.none(kEndEl);
    }
    e.none(kEndStr);
  }
  e.none(kEndLib);
  return e.take();
}

std::vector<std::uint8_t> writeGds(const cell::FlatLayout& flat, const ViewOptions& view,
                                   const GdsOptions& opts) {
  const View v{flat, view};
  Emitter e;
  e.i16(kHeader, {600});
  e.i16(kBgnLib, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kLibName, opts.libName);
  e.f64(kUnits, {1.0 / opts.dbPerUser, opts.unitMeters / opts.dbPerUser});

  e.i16(kBgnStr, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kStrName, opts.flatStructName);
  const auto polys = v.polygons();
  for (tech::Layer l : tech::kAllLayers) {
    const auto layer = static_cast<std::int16_t>(tech::gdsNumber(l));
    v.forEachTileParallel(l, [&](std::size_t, std::size_t, const std::vector<geom::Rect>& rs) {
      for (const geom::Rect& r : rs) {
        e.none(kBoundary);
        e.i16(kLayer, {layer});
        e.i16(kDatatype, {0});
        e.i32(kXy, rectXy(r));
        e.none(kEndEl);
      }
    });
    for (const auto& [pl, p] : polys) {
      if (pl != l) continue;
      e.none(kBoundary);
      e.i16(kLayer, {layer});
      e.i16(kDatatype, {0});
      std::vector<std::int32_t> xy;
      for (geom::Point q : p->pts) {
        xy.push_back(static_cast<std::int32_t>(q.x));
        xy.push_back(static_cast<std::int32_t>(q.y));
      }
      if (!p->pts.empty()) {
        xy.push_back(static_cast<std::int32_t>(p->pts[0].x));
        xy.push_back(static_cast<std::int32_t>(p->pts[0].y));
      }
      e.i32(kXy, xy);
      e.none(kEndEl);
    }
  }
  e.none(kEndStr);
  e.none(kEndLib);
  return e.take();
}

GdsStats gdsStats(const std::vector<std::uint8_t>& bytes) {
  GdsStats st;
  std::size_t pos = 0;
  bool sawHeader = false, sawEndLib = false;
  std::string pendingName;
  while (pos + 4 <= bytes.size()) {
    const std::size_t len =
        (static_cast<std::size_t>(bytes[pos]) << 8) | static_cast<std::size_t>(bytes[pos + 1]);
    if (len < 4 || pos + len > bytes.size()) return st;  // malformed
    const std::uint8_t type = bytes[pos + 2];
    switch (type) {
      case kHeader: sawHeader = true; break;
      case kBgnStr: ++st.structures; break;
      case kStrName:
        pendingName.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                           bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
        while (!pendingName.empty() && pendingName.back() == '\0') pendingName.pop_back();
        st.names.push_back(pendingName);
        break;
      case kBoundary: ++st.boundaries; break;
      case kPath: ++st.paths; break;
      case kSref: ++st.srefs; break;
      case kEndLib: sawEndLib = true; break;
      default: break;
    }
    pos += len;
  }
  st.wellFormed = sawHeader && sawEndLib && pos == bytes.size();
  return st;
}

}  // namespace bb::layout
