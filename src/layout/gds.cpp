#include "layout/gds.hpp"

#include "geom/poly.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

namespace bb::layout {

namespace {

using cell::Cell;

// GDSII record types (with implicit data type).
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kPath = 0x09,
  kSref = 0x0a,
  kAref = 0x0b,
  kLayer = 0x0d,
  kDatatype = 0x0e,
  kWidth = 0x0f,
  kXy = 0x10,
  kEndEl = 0x11,
  kSname = 0x12,
  kColRow = 0x13,
  kStrans = 0x1a,
  kAngle = 0x1c,
};

enum : std::uint8_t {
  kDtNone = 0x00,
  kDtI16 = 0x02,
  kDtI32 = 0x03,
  kDtF64 = 0x05,
  kDtAscii = 0x06,
};

class Emitter {
 public:
  void record(std::uint8_t type, std::uint8_t dtype, const std::vector<std::uint8_t>& payload) {
    const std::size_t len = payload.size() + 4;
    bytes_.push_back(static_cast<std::uint8_t>(len >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(len & 0xff));
    bytes_.push_back(type);
    bytes_.push_back(dtype);
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  }

  void i16(std::uint8_t type, std::vector<std::int16_t> vals) {
    std::vector<std::uint8_t> p;
    for (std::int16_t v : vals) {
      p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      p.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    record(type, kDtI16, p);
  }

  void i32(std::uint8_t type, const std::vector<std::int32_t>& vals) {
    std::vector<std::uint8_t> p;
    for (std::int32_t v : vals) {
      p.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
      p.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
      p.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      p.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    record(type, kDtI32, p);
  }

  void f64(std::uint8_t type, const std::vector<double>& vals) {
    std::vector<std::uint8_t> p;
    for (double v : vals) {
      const auto r = real8(v);
      p.insert(p.end(), r.begin(), r.end());
    }
    record(type, kDtF64, p);
  }

  void ascii(std::uint8_t type, std::string s) {
    if (s.size() % 2 != 0) s.push_back('\0');  // records are even-length
    std::vector<std::uint8_t> p(s.begin(), s.end());
    record(type, kDtAscii, p);
  }

  void none(std::uint8_t type) { record(type, kDtNone, {}); }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

  /// GDSII excess-64 8-byte real.
  static std::array<std::uint8_t, 8> real8(double v) {
    std::array<std::uint8_t, 8> out{};
    if (v == 0.0) return out;
    const bool neg = v < 0;
    double m = neg ? -v : v;
    int exp = 0;
    while (m >= 1.0) {
      m /= 16.0;
      ++exp;
    }
    while (m < 1.0 / 16.0) {
      m *= 16.0;
      --exp;
    }
    // m in [1/16, 1); mantissa = m * 2^56 as 7 bytes.
    std::uint64_t mant = static_cast<std::uint64_t>(std::ldexp(m, 56));
    out[0] = static_cast<std::uint8_t>((neg ? 0x80 : 0x00) | ((exp + 64) & 0x7f));
    for (int i = 6; i >= 0; --i) {
      out[static_cast<std::size_t>(7 - i)] |= static_cast<std::uint8_t>((mant >> (8 * i)) & 0xff);
    }
    return out;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

void collect(const Cell& c, std::vector<const Cell*>& order, std::map<const Cell*, bool>& seen) {
  if (seen.contains(&c)) return;
  seen[&c] = true;
  for (const cell::Instance& i : c.instances()) collect(*i.cell, order, seen);
  order.push_back(&c);
}

std::vector<std::int32_t> rectXy(const geom::Rect& r) {
  return {static_cast<std::int32_t>(r.x0), static_cast<std::int32_t>(r.y0),
          static_cast<std::int32_t>(r.x1), static_cast<std::int32_t>(r.y0),
          static_cast<std::int32_t>(r.x1), static_cast<std::int32_t>(r.y1),
          static_cast<std::int32_t>(r.x0), static_cast<std::int32_t>(r.y1),
          static_cast<std::int32_t>(r.x0), static_cast<std::int32_t>(r.y0)};
}

/// GDS models placement as optional reflect-about-x followed by CCW
/// rotation. Our Orientation decomposes the same way.
struct GdsOrient {
  bool reflect;
  double angleDeg;
};

GdsOrient gdsOrient(geom::Orientation o) {
  using geom::Orientation;
  switch (o) {
    case Orientation::R0: return {false, 0};
    case Orientation::R90: return {false, 90};
    case Orientation::R180: return {false, 180};
    case Orientation::R270: return {false, 270};
    case Orientation::MX: return {true, 0};
    case Orientation::MX90: return {true, 90};
    case Orientation::MY: return {true, 180};
    case Orientation::MY90: return {true, 270};
  }
  return {false, 0};
}

/// Emit STRANS (+ ANGLE) for a placement orientation — shared by SREF
/// and AREF, which encode orientation identically.
void emitOrient(Emitter& e, geom::Orientation o) {
  const GdsOrient go = gdsOrient(o);
  if (go.reflect || go.angleDeg != 0) {
    e.i16(kStrans, {static_cast<std::int16_t>(go.reflect ? -32768 : 0)});
    if (go.angleDeg != 0) e.f64(kAngle, {go.angleDeg});
  }
}

/// GDSII caps an XY record at 8191 coordinate pairs (the 16-bit record
/// length counts bytes: (65535 - 4) / 8). A boundary repeats its first
/// point, so rings above 8190 vertices cannot be emitted in one record.
constexpr std::size_t kMaxXyPoints = 8191;

/// Emit one polygon as BOUNDARY record(s): directly when it fits, and
/// split by recursive bbox bisection (`geom::poly::clipToRect` halves)
/// when it would overflow the XY record — the writer never emits a
/// record whose length field wraps.
void emitPolyBoundary(Emitter& e, std::int16_t layer, const geom::Polygon& p) {
  if (p.pts.empty()) return;
  if (p.pts.size() + 1 > kMaxXyPoints) {
    const geom::Rect bb = p.bbox();
    const bool splitX = bb.width() >= bb.height();
    const geom::Coord mid = splitX ? geom::floorHalf(bb.x0 + bb.x1) : geom::floorHalf(bb.y0 + bb.y1);
    const geom::Rect lo = splitX ? geom::Rect{bb.x0, bb.y0, mid, bb.y1}
                                 : geom::Rect{bb.x0, bb.y0, bb.x1, mid};
    const geom::Rect hi = splitX ? geom::Rect{mid, bb.y0, bb.x1, bb.y1}
                                 : geom::Rect{bb.x0, mid, bb.x1, bb.y1};
    if (!lo.isEmpty() && !hi.isEmpty()) {
      for (const geom::Polygon& piece : geom::poly::clipToRect(p, lo)) {
        emitPolyBoundary(e, layer, piece);
      }
      for (const geom::Polygon& piece : geom::poly::clipToRect(p, hi)) {
        emitPolyBoundary(e, layer, piece);
      }
      return;
    }
    // Degenerate bbox (nothing to bisect): fall through and emit as-is
    // rather than recurse forever; such rings cannot occur from real
    // artwork.
  }
  e.none(kBoundary);
  e.i16(kLayer, {layer});
  e.i16(kDatatype, {0});
  std::vector<std::int32_t> xy;
  xy.reserve(2 * (p.pts.size() + 1));
  for (geom::Point q : p.pts) {
    xy.push_back(static_cast<std::int32_t>(q.x));
    xy.push_back(static_cast<std::int32_t>(q.y));
  }
  // GDS boundaries repeat the first point.
  xy.push_back(static_cast<std::int32_t>(p.pts[0].x));
  xy.push_back(static_cast<std::int32_t>(p.pts[0].y));
  e.i32(kXy, xy);
  e.none(kEndEl);
}

/// Emit one cell's own shapes (boundaries for rects/polygons, PATH for
/// paths) — shared by the flat-order and AREF-compressing writers.
void emitShapes(Emitter& e, const Cell& c) {
  for (const cell::Shape& s : c.shapes()) {
    const int layer = tech::gdsNumber(s.layer);
    std::visit(
        [&](const auto& g) {
          using T = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<T, geom::Rect>) {
            e.none(kBoundary);
            e.i16(kLayer, {static_cast<std::int16_t>(layer)});
            e.i16(kDatatype, {0});
            e.i32(kXy, rectXy(g));
            e.none(kEndEl);
          } else if constexpr (std::is_same_v<T, geom::Polygon>) {
            emitPolyBoundary(e, static_cast<std::int16_t>(layer), g);
          } else {
            e.none(kPath);
            e.i16(kLayer, {static_cast<std::int16_t>(layer)});
            e.i16(kDatatype, {0});
            e.i32(kWidth, {static_cast<std::int32_t>(g.width)});
            std::vector<std::int32_t> xy;
            for (geom::Point p : g.pts) {
              xy.push_back(static_cast<std::int32_t>(p.x));
              xy.push_back(static_cast<std::int32_t>(p.y));
            }
            e.i32(kXy, xy);
            e.none(kEndEl);
          }
        },
        s.geo);
  }
}

void emitSref(Emitter& e, const Cell& child, geom::Orientation o, geom::Point off) {
  e.none(kSref);
  e.ascii(kSname, child.name());
  emitOrient(e, o);
  e.i32(kXy,
        {static_cast<std::int32_t>(off.x), static_cast<std::int32_t>(off.y)});
  e.none(kEndEl);
}

/// A full uniformly-spaced cartesian grid fit over a set of placement
/// offsets (what one AREF can express).
struct GridFit {
  bool ok = false;
  std::int16_t cols = 0, rows = 0;
  geom::Coord dx = 0, dy = 0;
  geom::Point origin;
};

GridFit fitGrid(const std::vector<geom::Point>& offs) {
  GridFit fit;
  if (offs.size() < 2) return fit;  // a 1x1 "array" is just an SREF
  std::vector<geom::Coord> xs, ys;
  xs.reserve(offs.size());
  ys.reserve(offs.size());
  for (const geom::Point& p : offs) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  // Distinct offsets all drawn from xs x ys: count equality with the
  // full product means every combination is present exactly once.
  if (xs.size() * ys.size() != offs.size()) return fit;
  {
    std::vector<std::pair<geom::Coord, geom::Coord>> uniq;
    uniq.reserve(offs.size());
    for (const geom::Point& p : offs) uniq.emplace_back(p.x, p.y);
    std::sort(uniq.begin(), uniq.end());
    if (std::adjacent_find(uniq.begin(), uniq.end()) != uniq.end()) return fit;
  }
  if (xs.size() > 32767 || ys.size() > 32767) return fit;  // COLROW is i16
  const geom::Coord dx = xs.size() > 1 ? xs[1] - xs[0] : 0;
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] - xs[i] != dx) return fit;
  }
  const geom::Coord dy = ys.size() > 1 ? ys[1] - ys[0] : 0;
  for (std::size_t i = 1; i + 1 < ys.size(); ++i) {
    if (ys[i + 1] - ys[i] != dy) return fit;
  }
  fit.ok = true;
  fit.cols = static_cast<std::int16_t>(xs.size());
  fit.rows = static_cast<std::int16_t>(ys.size());
  fit.dx = dx;
  fit.dy = dy;
  fit.origin = {xs.front(), ys.front()};
  return fit;
}

}  // namespace

std::vector<std::uint8_t> writeGds(const Cell& top, const GdsOptions& opts) {
  std::vector<const Cell*> order;
  std::map<const Cell*, bool> seen;
  collect(top, order, seen);

  Emitter e;
  e.i16(kHeader, {600});
  // BGNLIB: creation + modification timestamps (12 i16). Fixed epoch so
  // output is deterministic and diffable.
  e.i16(kBgnLib, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kLibName, opts.libName);
  e.f64(kUnits, {1.0 / opts.dbPerUser, opts.unitMeters / opts.dbPerUser});

  for (const Cell* c : order) {
    e.i16(kBgnStr, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
    e.ascii(kStrName, c->name());
    emitShapes(e, *c);
    for (const cell::Instance& i : c->instances()) {
      emitSref(e, *i.cell, i.placement.orient, i.placement.offset);
    }
    e.none(kEndStr);
  }
  e.none(kEndLib);
  return e.take();
}

std::vector<std::uint8_t> writeGdsHier(const Cell& top, const GdsOptions& opts) {
  std::vector<const Cell*> order;
  std::map<const Cell*, bool> seen;
  collect(top, order, seen);

  Emitter e;
  e.i16(kHeader, {600});
  e.i16(kBgnLib, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kLibName, opts.libName);
  e.f64(kUnits, {1.0 / opts.dbPerUser, opts.unitMeters / opts.dbPerUser});

  for (const Cell* c : order) {
    e.i16(kBgnStr, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
    e.ascii(kStrName, c->name());
    emitShapes(e, *c);
    // Group instances by (child, orientation), first-appearance order;
    // a group forming a full uniform grid compresses to one AREF.
    struct Group {
      const Cell* child;
      geom::Orientation o;
      std::vector<geom::Point> offsets;
    };
    std::vector<Group> groups;
    std::map<std::pair<const Cell*, int>, std::size_t> groupOf;
    for (const cell::Instance& i : c->instances()) {
      const auto key = std::make_pair(i.cell, static_cast<int>(i.placement.orient));
      const auto [it, fresh] = groupOf.try_emplace(key, groups.size());
      if (fresh) groups.push_back({i.cell, i.placement.orient, {}});
      groups[it->second].offsets.push_back(i.placement.offset);
    }
    for (const Group& g : groups) {
      const GridFit fit = fitGrid(g.offsets);
      if (fit.ok) {
        e.none(kAref);
        e.ascii(kSname, g.child->name());
        emitOrient(e, g.o);
        e.i16(kColRow, {fit.cols, fit.rows});
        // Three-point XY: array origin, end of the column axis
        // (origin + cols * dx), end of the row axis (origin + rows * dy).
        const geom::Coord cx = fit.origin.x + static_cast<geom::Coord>(fit.cols) * fit.dx;
        const geom::Coord ry = fit.origin.y + static_cast<geom::Coord>(fit.rows) * fit.dy;
        e.i32(kXy, {static_cast<std::int32_t>(fit.origin.x),
                    static_cast<std::int32_t>(fit.origin.y), static_cast<std::int32_t>(cx),
                    static_cast<std::int32_t>(fit.origin.y),
                    static_cast<std::int32_t>(fit.origin.x), static_cast<std::int32_t>(ry)});
        e.none(kEndEl);
      } else {
        for (const geom::Point& off : g.offsets) emitSref(e, *g.child, g.o, off);
      }
    }
    e.none(kEndStr);
  }
  e.none(kEndLib);
  return e.take();
}

std::vector<std::uint8_t> writeGds(const View& v, const GdsOptions& opts) {
  Emitter e;
  e.i16(kHeader, {600});
  e.i16(kBgnLib, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kLibName, opts.libName);
  e.f64(kUnits, {1.0 / opts.dbPerUser, opts.unitMeters / opts.dbPerUser});

  e.i16(kBgnStr, {1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0});
  e.ascii(kStrName, opts.flatStructName);
  for (tech::Layer l : tech::kAllLayers) {
    const auto layer = static_cast<std::int16_t>(tech::gdsNumber(l));
    v.forEachTileParallel(l, [&](std::size_t tx, std::size_t ty,
                                 const std::vector<geom::Rect>& rs) {
      for (const geom::Rect& r : rs) {
        e.none(kBoundary);
        e.i16(kLayer, {layer});
        e.i16(kDatatype, {0});
        e.i32(kXy, rectXy(r));
        e.none(kEndEl);
      }
      // This tile's polygon pieces (window-clipped under the default
      // clipPolygons policy), each emitted from exactly one owner tile.
      for (const auto& [pl, p] : v.windowPolygonsOwnedBy(tx, ty)) {
        if (pl != l) continue;
        emitPolyBoundary(e, layer, *p);
      }
    });
  }
  e.none(kEndStr);
  e.none(kEndLib);
  return e.take();
}

std::vector<std::uint8_t> writeGds(const cell::FlatLayout& flat, const ViewOptions& view,
                                   const GdsOptions& opts) {
  return writeGds(View{flat, view}, opts);
}

GdsStats gdsStats(const std::vector<std::uint8_t>& bytes) {
  GdsStats st;
  std::size_t pos = 0;
  bool sawHeader = false, sawEndLib = false;
  std::string pendingName;
  while (pos + 4 <= bytes.size()) {
    const std::size_t len =
        (static_cast<std::size_t>(bytes[pos]) << 8) | static_cast<std::size_t>(bytes[pos + 1]);
    if (len < 4 || pos + len > bytes.size()) return st;  // malformed
    const std::uint8_t type = bytes[pos + 2];
    switch (type) {
      case kHeader: sawHeader = true; break;
      case kBgnStr: ++st.structures; break;
      case kStrName:
        pendingName.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                           bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
        while (!pendingName.empty() && pendingName.back() == '\0') pendingName.pop_back();
        st.names.push_back(pendingName);
        break;
      case kBoundary: ++st.boundaries; break;
      case kPath: ++st.paths; break;
      case kSref: ++st.srefs; break;
      case kAref: ++st.arefs; break;
      case kEndLib: sawEndLib = true; break;
      default: break;
    }
    pos += len;
  }
  st.wellFormed = sawHeader && sawEndLib && pos == bytes.size();
  return st;
}

}  // namespace bb::layout
