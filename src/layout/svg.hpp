/// \file svg.hpp
/// SVG rendering of layouts, for humans. Renders flattened artwork in the
/// Mead–Conway colour convention with optional bristle markers — the
/// modern stand-in for the pen plotter the 1979 system drew on.
///
/// Geometry streams from a `layout::View`, so a render can be windowed to
/// a viewport (only geometry reaching into `window` is drawn, found via
/// the per-layer spatial indexes), tiled, and optionally merged into
/// overlap-free maximal rects. The defaults reproduce the classic
/// full-chip render byte for byte.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "layout/view.hpp"

#include <string>

namespace bb::layout {

/// Escape text for embedding in XML/SVG character data or attribute
/// values (&, <, >, "). Port and label names are user-controlled, so
/// every string the SVG writers interpolate goes through this.
[[nodiscard]] std::string xmlEscape(std::string_view s);

struct SvgOptions {
  double pixelsPerUnit = 0.5;
  double fillOpacity = 0.55;
  bool drawBristles = true;
  bool drawBoundary = true;
  std::string title;
  /// Viewport/streaming parameters. When `view.window` is set the
  /// document is sized to the window and only geometry touching it is
  /// drawn (overlay markers outside the window are skipped); unset
  /// renders the whole artwork. `view.merge` draws the merged maximal
  /// rects instead of the raw ones.
  ViewOptions view;
};

/// Render a cell (flattened) to an SVG document.
[[nodiscard]] std::string renderSvg(const cell::Cell& top, const SvgOptions& opts = {});

/// Render pre-flattened artwork with an optional overlay of labelled
/// points (used by the sticks / block representations and pad-ring demos).
struct SvgOverlayPoint {
  geom::Point at;
  std::string label;
  std::string color = "#000000";
};
[[nodiscard]] std::string renderSvg(const cell::FlatLayout& flat,
                                    const std::vector<SvgOverlayPoint>& overlay,
                                    const SvgOptions& opts = {});

}  // namespace bb::layout
