/// \file svg.hpp
/// SVG rendering of layouts, for humans. Renders flattened artwork in the
/// Mead–Conway colour convention with optional bristle markers — the
/// modern stand-in for the pen plotter the 1979 system drew on.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"

#include <string>

namespace bb::layout {

struct SvgOptions {
  double pixelsPerUnit = 0.5;
  double fillOpacity = 0.55;
  bool drawBristles = true;
  bool drawBoundary = true;
  std::string title;
};

/// Render a cell (flattened) to an SVG document.
[[nodiscard]] std::string renderSvg(const cell::Cell& top, const SvgOptions& opts = {});

/// Render pre-flattened artwork with an optional overlay of labelled
/// points (used by the sticks / block representations and pad-ring demos).
struct SvgOverlayPoint {
  geom::Point at;
  std::string label;
  std::string color = "#000000";
};
[[nodiscard]] std::string renderSvg(const cell::FlatLayout& flat,
                                    const std::vector<SvgOverlayPoint>& overlay,
                                    const SvgOptions& opts = {});

}  // namespace bb::layout
