#include "layout/view.hpp"

#include "core/pool.hpp"
#include "geom/poly.hpp"
#include "geom/sweep.hpp"

namespace bb::layout {

View::View(const cell::FlatLayout& flat, ViewOptions opts)
    : flat_(&flat), opts_(std::move(opts)) {
  window_ = opts_.window ? *opts_.window : flat.bbox();
  initGrid();
}

View::View(const cell::HierIndex& hier, ViewOptions opts) : flat_(nullptr), opts_(std::move(opts)) {
  window_ = opts_.window ? *opts_.window : hier.bbox();
  // Resolve only what the window can see: residual geometry through the
  // per-layer indexes, then each placement whose world bbox touches the
  // window through its unit's indexes with the window pulled into unit
  // coordinates. Everything else in the hierarchy stays unmaterialized.
  auto owned = std::make_shared<cell::FlatLayout>();
  for (std::size_t li = 0; li < tech::kLayerCount; ++li) {
    const auto l = static_cast<tech::Layer>(li);
    const geom::RectIndex& idx = hier.residual().indexOn(l);
    auto& out = owned->on(l);
    for (const int i : idx.queryTouching(window_)) {
      out.push_back(idx.rect(static_cast<std::size_t>(i)));
    }
  }
  for (const auto& [pl, poly] : hier.residual().polygons) {
    if (poly.bbox().touches(window_)) owned->polygons.emplace_back(pl, poly);
  }
  std::uint64_t resolved = 0;
  hier.forEachPlacementNear(window_, 0, [&](std::size_t pi) {
    ++resolved;
    const cell::HierPlacement& p = hier.placements()[pi];
    const cell::HierUnit& u = hier.units()[p.unit];
    const geom::Rect lw = p.t.inverted()(window_);
    for (std::size_t li = 0; li < tech::kLayerCount; ++li) {
      const auto l = static_cast<tech::Layer>(li);
      const geom::RectIndex& idx = u.flat.indexOn(l);
      auto& out = owned->on(l);
      for (const int i : idx.queryTouching(lw)) {
        out.push_back(p.t(idx.rect(static_cast<std::size_t>(i))));
      }
    }
    for (const auto& [pl, poly] : u.flat.polygons) {
      if (poly.bbox().touches(lw)) owned->polygons.emplace_back(pl, p.t(poly));
    }
  });
  hier.noteMaterialized(resolved);
  owned_ = std::move(owned);
  flat_ = owned_.get();
  initGrid();
}

void View::initGrid() noexcept {
  const geom::Coord w = window_.width();
  const geom::Coord h = window_.height();
  if (opts_.tileSize > 0) {
    pitchX_ = pitchY_ = opts_.tileSize;
    tilesX_ = w > 0 ? static_cast<std::size_t>((w + pitchX_ - 1) / pitchX_) : 1;
    tilesY_ = h > 0 ? static_cast<std::size_t>((h + pitchY_ - 1) / pitchY_) : 1;
  } else {
    // One tile covering the window (pitch at least 1 so a degenerate
    // window still forms a well-defined 1x1 grid).
    pitchX_ = std::max<geom::Coord>(w, 1);
    pitchY_ = std::max<geom::Coord>(h, 1);
    tilesX_ = tilesY_ = 1;
  }
}

geom::Rect View::tileRect(std::size_t tx, std::size_t ty) const noexcept {
  const geom::Coord x0 = window_.x0 + static_cast<geom::Coord>(tx) * pitchX_;
  const geom::Coord y0 = window_.y0 + static_cast<geom::Coord>(ty) * pitchY_;
  const geom::Coord x1 = tx + 1 == tilesX_ ? window_.x1 : std::min(x0 + pitchX_, window_.x1);
  const geom::Coord y1 = ty + 1 == tilesY_ ? window_.y1 : std::min(y0 + pitchY_, window_.y1);
  return geom::Rect{x0, y0, std::max(x0, x1), std::max(y0, y1)};
}

std::size_t View::tileOf(geom::Coord v, geom::Coord lo, geom::Coord pitch,
                         std::size_t count) noexcept {
  if (v <= lo) return 0;
  const auto t = static_cast<std::size_t>((v - lo) / pitch);
  return t < count ? t : count - 1;
}

void View::collectTile(const geom::RectIndex& idx, std::size_t tx, std::size_t ty,
                       std::vector<int>& cand, std::vector<geom::Rect>& clipped,
                       std::vector<geom::Rect>& out) const {
  const geom::Rect tile = tileRect(tx, ty);
  idx.queryTouching(tile, cand);
  out.clear();
  if (!opts_.merge) {
    // Emit each rect from exactly one tile: the tile that contains
    // its window-clamped lower-left corner. The candidates arrive in
    // ascending source order, so with a single tile this degenerates
    // to the raw-vector walk the pre-View writers did.
    for (const int i : cand) {
      const geom::Rect& r = idx.rect(static_cast<std::size_t>(i));
      const geom::Coord ax = std::min(std::max(r.x0, window_.x0), window_.x1);
      const geom::Coord ay = std::min(std::max(r.y0, window_.y0), window_.y1);
      if (tileOf(ax, window_.x0, pitchX_, tilesX_) != tx) continue;
      if (tileOf(ay, window_.y0, pitchY_, tilesY_) != ty) continue;
      out.push_back(r);
    }
  } else {
    clipped.clear();
    for (const int i : cand) {
      const geom::Rect& r = idx.rect(static_cast<std::size_t>(i));
      if (const auto c = r.intersectWith(tile)) clipped.push_back(*c);
    }
    out = geom::sweep::unionRects(clipped);
  }
}

void View::forEachTile(tech::Layer l, const TileFn& fn) const {
  const geom::RectIndex& idx = flat_->indexOn(l);
  std::vector<int> cand;
  std::vector<geom::Rect> tileRects;
  std::vector<geom::Rect> clipped;
  for (std::size_t ty = 0; ty < tilesY_; ++ty) {
    for (std::size_t tx = 0; tx < tilesX_; ++tx) {
      collectTile(idx, tx, ty, cand, clipped, tileRects);
      fn(tx, ty, tileRects);
    }
  }
}

void View::forEachTileParallel(tech::Layer l, const TileFn& fn) const {
  const std::size_t tiles = tileCount();
  if (tiles <= 1) {
    forEachTile(l, fn);
    return;
  }
  // Force the layer's lazy index build on this thread before fanning
  // out; afterwards every collect is a const read.
  const geom::RectIndex& idx = flat_->indexOn(l);
  std::vector<std::vector<geom::Rect>> buf(tiles);
  core::ThreadPool::global().parallelFor(tiles, 1, [&](std::size_t t) {
    // Per-worker scratch, reused across all tiles a worker collects.
    thread_local std::vector<int> cand;
    thread_local std::vector<geom::Rect> clipped;
    collectTile(idx, t % tilesX_, t / tilesX_, cand, clipped, buf[t]);
  });
  // Stitch on the calling thread in the sequential walk's order, so the
  // streamed output is byte-identical to forEachTile.
  for (std::size_t ty = 0; ty < tilesY_; ++ty) {
    for (std::size_t tx = 0; tx < tilesX_; ++tx) {
      fn(tx, ty, buf[ty * tilesX_ + tx]);
    }
  }
}

std::vector<geom::Rect> View::rectsOn(tech::Layer l) const {
  std::vector<geom::Rect> out;
  forEachTile(l, [&out](std::size_t, std::size_t, const std::vector<geom::Rect>& rs) {
    out.insert(out.end(), rs.begin(), rs.end());
  });
  return out;
}

std::vector<std::pair<tech::Layer, const geom::Polygon*>> View::polygons() const {
  std::vector<std::pair<tech::Layer, const geom::Polygon*>> out;
  for (const auto& [l, p] : flat_->polygons) {
    if (p.bbox().touches(window_)) out.emplace_back(l, &p);
  }
  return out;
}

std::vector<std::pair<tech::Layer, const geom::Polygon*>> View::polygonsOwnedBy(
    std::size_t tx, std::size_t ty) const {
  std::vector<std::pair<tech::Layer, const geom::Polygon*>> out;
  for (const auto& [l, p] : flat_->polygons) {
    const geom::Rect b = p.bbox();
    if (!b.touches(window_)) continue;
    const geom::Coord ax = std::min(std::max(b.x0, window_.x0), window_.x1);
    const geom::Coord ay = std::min(std::max(b.y0, window_.y0), window_.y1);
    if (tileOf(ax, window_.x0, pitchX_, tilesX_) != tx) continue;
    if (tileOf(ay, window_.y0, pitchY_, tilesY_) != ty) continue;
    out.emplace_back(l, &p);
  }
  return out;
}

const std::vector<std::pair<tech::Layer, geom::Polygon>>& View::windowPolygons() const {
  std::call_once(piecesOnce_, [this] {
    for (const auto& [l, p] : flat_->polygons) {
      const geom::Rect b = p.bbox();
      if (!b.touches(window_)) continue;
      if (!opts_.clipPolygons) {
        pieces_.emplace_back(l, p);
        continue;
      }
      // clipToRect's fast path hands back the polygon verbatim when the
      // window contains it, so full-chip emission reproduces the source
      // vertex stream byte for byte.
      for (geom::Polygon& piece : geom::poly::clipToRect(p, window_)) {
        pieces_.emplace_back(l, std::move(piece));
      }
    }
  });
  return pieces_;
}

std::vector<std::pair<tech::Layer, const geom::Polygon*>> View::windowPolygonsOwnedBy(
    std::size_t tx, std::size_t ty) const {
  std::vector<std::pair<tech::Layer, const geom::Polygon*>> out;
  for (const auto& [l, p] : windowPolygons()) {
    const geom::Rect b = p.bbox();
    const geom::Coord ax = std::min(std::max(b.x0, window_.x0), window_.x1);
    const geom::Coord ay = std::min(std::max(b.y0, window_.y0), window_.y1);
    if (tileOf(ax, window_.x0, pitchX_, tilesX_) != tx) continue;
    if (tileOf(ay, window_.y0, pitchY_, tilesY_) != ty) continue;
    out.emplace_back(l, &p);
  }
  return out;
}

}  // namespace bb::layout
