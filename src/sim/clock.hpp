/// \file clock.hpp
/// The two-phase non-overlapping clock of the Bristle Blocks temporal
/// format: phi1 transfers data over the buses, phi2 operates the
/// processing elements (and precharges the buses for the next transfer).

#pragma once

#include "sim/simulator.hpp"

#include <string>

namespace bb::sim {

/// Drives phi1/phi2 through the four quarter-states of one clock cycle:
///   [phi1 high] -> [both low] -> [phi2 high] -> [both low]
class TwoPhaseClock {
 public:
  TwoPhaseClock(Simulator& sim, std::string phi1 = "phi1", std::string phi2 = "phi2");

  /// Advance one quarter-cycle and settle the simulator.
  void quarter();
  /// Run a full cycle (4 quarters).
  void cycle();
  /// Advance until the start of the next phi1-high quarter.
  void toPhi1();
  /// Advance until the start of the next phi2-high quarter.
  void toPhi2();

  [[nodiscard]] int quarterIndex() const noexcept { return q_; }
  [[nodiscard]] long long cycleCount() const noexcept { return cycles_; }
  [[nodiscard]] bool phi1High() const noexcept { return q_ == 0; }
  [[nodiscard]] bool phi2High() const noexcept { return q_ == 2; }

 private:
  void apply();

  Simulator& sim_;
  std::string phi1_, phi2_;
  int q_ = 3;  ///< last applied quarter; first quarter() moves to 0
  long long cycles_ = 0;
};

}  // namespace bb::sim
