#include "sim/signal.hpp"

namespace bb::sim {

namespace {
Level norm(Level a) noexcept { return a == Level::LZ ? Level::LX : a; }
}  // namespace

Level simNot(Level a) noexcept {
  switch (norm(a)) {
    case Level::L0: return Level::L1;
    case Level::L1: return Level::L0;
    default: return Level::LX;
  }
}

Level simAnd(Level a, Level b) noexcept {
  a = norm(a);
  b = norm(b);
  if (a == Level::L0 || b == Level::L0) return Level::L0;
  if (a == Level::L1 && b == Level::L1) return Level::L1;
  return Level::LX;
}

Level simOr(Level a, Level b) noexcept {
  a = norm(a);
  b = norm(b);
  if (a == Level::L1 || b == Level::L1) return Level::L1;
  if (a == Level::L0 && b == Level::L0) return Level::L0;
  return Level::LX;
}

Level simXor(Level a, Level b) noexcept {
  a = norm(a);
  b = norm(b);
  if (a == Level::LX || b == Level::LX) return Level::LX;
  return (a == b) ? Level::L0 : Level::L1;
}

bool isHigh(Level a) noexcept { return a == Level::L1; }
bool isLow(Level a) noexcept { return a == Level::L0; }
bool isKnown(Level a) noexcept { return a == Level::L0 || a == Level::L1; }

}  // namespace bb::sim
