#include "sim/testbench.hpp"

namespace bb::sim {

Testbench::Testbench(Simulator& sim, int mcBits, int dataBits)
    : sim_(sim), clk_(sim), mcBits_(mcBits), dataBits_(dataBits) {}

std::vector<TraceEntry> Testbench::run(const std::vector<unsigned long long>& program) {
  std::vector<TraceEntry> trace;
  trace.reserve(program.size());
  for (unsigned long long word : program) {
    // Present the microcode on the quarter preceding phi1 (the paper's
    // "phase preceding the phase when the instruction is to be executed").
    sim_.driveBus("mc", mcBits_, word);
    sim_.settle();
    // phi1: bus transfer happens; sample at the end of the quarter.
    clk_.toPhi1();
    TraceEntry e;
    e.cycle = clk_.cycleCount();
    e.microcode = word;
    e.busA = sim_.readBus("busA", dataBits_);
    e.busB = sim_.readBus("busB", dataBits_);
    trace.push_back(e);
    if (cb_) cb_(e, sim_);
    // phi2: elements operate; buses precharge.
    clk_.toPhi2();
    // Finish the cycle (both-low quarter) so the next word starts clean.
    clk_.quarter();
  }
  return trace;
}

}  // namespace bb::sim
