#include "sim/simulator.hpp"

#include <cassert>

namespace bb::sim {

using netlist::Gate;
using netlist::GateKind;

Simulator::Simulator(const netlist::LogicModel& model)
    : model_(model),
      values_(model.signalCount(), Level::LX),
      forced_(model.signalCount(), false) {}

void Simulator::set(int sig, Level v) {
  assert(sig >= 0 && sig < static_cast<int>(values_.size()));
  values_[static_cast<std::size_t>(sig)] = v;
  forced_[static_cast<std::size_t>(sig)] = true;
}

void Simulator::set(const std::string& name, Level v) {
  const int sig = model_.findSignal(name);
  assert(sig >= 0 && "unknown signal");
  set(sig, v);
}

void Simulator::release(int sig) { forced_[static_cast<std::size_t>(sig)] = false; }

Level Simulator::get(const std::string& name) const noexcept {
  const int sig = model_.findSignal(name);
  if (sig < 0) return Level::LX;
  return values_[static_cast<std::size_t>(sig)];
}

void Simulator::evalGate(const Gate& g, std::vector<Level>& next, std::vector<bool>& busPulledLow,
                         std::vector<bool>& busDrivenHigh,
                         std::vector<bool>& busPrecharged) const {
  auto in = [&](std::size_t i) { return values_[static_cast<std::size_t>(g.in[i])]; };
  const std::size_t out = static_cast<std::size_t>(g.out);
  switch (g.kind) {
    case GateKind::Inv:
      next[out] = simNot(in(0));
      break;
    case GateKind::Buf:
      next[out] = in(0);
      break;
    case GateKind::Nand: {
      Level v = Level::L1;
      for (std::size_t i = 0; i < g.in.size(); ++i) v = simAnd(v, in(i));
      next[out] = simNot(v);
      break;
    }
    case GateKind::Nor: {
      Level v = Level::L0;
      for (std::size_t i = 0; i < g.in.size(); ++i) v = simOr(v, in(i));
      next[out] = simNot(v);
      break;
    }
    case GateKind::And: {
      Level v = Level::L1;
      for (std::size_t i = 0; i < g.in.size(); ++i) v = simAnd(v, in(i));
      next[out] = v;
      break;
    }
    case GateKind::Or: {
      Level v = Level::L0;
      for (std::size_t i = 0; i < g.in.size(); ++i) v = simOr(v, in(i));
      next[out] = v;
      break;
    }
    case GateKind::Xor: {
      Level v = Level::L0;
      for (std::size_t i = 0; i < g.in.size(); ++i) v = simXor(v, in(i));
      next[out] = v;
      break;
    }
    case GateKind::Latch: {
      const Level en = in(1);
      if (isHigh(en)) {
        next[out] = in(0);
      } else if (!isKnown(en)) {
        // Unknown enable: output is unknown unless it already equals input.
        if (values_[out] != in(0)) next[out] = Level::LX;
      }
      // en low: hold.
      break;
    }
    case GateKind::Precharge: {
      if (isHigh(in(0))) busPrecharged[out] = true;
      break;
    }
    case GateKind::PullDown: {
      Level v = Level::L1;
      for (std::size_t i = 0; i < g.in.size(); ++i) v = simAnd(v, in(i));
      if (isHigh(v)) busPulledLow[out] = true;
      break;
    }
    case GateKind::Drive: {
      if (isHigh(in(1))) {
        if (isHigh(in(0))) busDrivenHigh[out] = true;
        else if (isLow(in(0))) busPulledLow[out] = true;
        // Driving X: leave as-is; resolution marks X below via both flags?
        // Conservative: an enabled drive of X makes the bus X; model by
        // setting both flags so resolution yields X.
        else {
          busPulledLow[out] = true;
          busDrivenHigh[out] = true;
        }
      }
      break;
    }
    case GateKind::Const0:
      next[out] = Level::L0;
      break;
    case GateKind::Const1:
      next[out] = Level::L1;
      break;
  }
}

int Simulator::settle() {
  const int cap = 4 + 2 * static_cast<int>(model_.gates().size());
  int sweeps = 0;
  bool changed = true;
  while (changed && sweeps < cap) {
    ++sweeps;
    changed = false;
    std::vector<Level> next = values_;
    std::vector<bool> pulledLow(values_.size(), false);
    std::vector<bool> drivenHigh(values_.size(), false);
    std::vector<bool> precharged(values_.size(), false);
    for (const Gate& g : model_.gates()) {
      evalGate(g, next, pulledLow, drivenHigh, precharged);
    }
    // Resolve buses by wired logic.
    for (std::size_t s = 0; s < values_.size(); ++s) {
      if (!model_.isBus(static_cast<int>(s))) continue;
      const bool low = pulledLow[s];
      const bool high = drivenHigh[s] || precharged[s];
      if (low && high) {
        // Pull-down fights precharge: the ratioed pull-down wins in nMOS,
        // but a simultaneous active Drive-high is a conflict -> X.
        next[s] = drivenHigh[s] ? Level::LX : Level::L0;
      } else if (low) {
        next[s] = Level::L0;
      } else if (high) {
        next[s] = Level::L1;
      }
      // Neither: dynamic hold (keep next[s] as carried over).
    }
    // Forced signals override everything.
    for (std::size_t s = 0; s < values_.size(); ++s) {
      if (forced_[s]) next[s] = values_[s];
    }
    if (next != values_) {
      std::size_t delta = 0;
      for (std::size_t s = 0; s < values_.size(); ++s) {
        if (next[s] != values_[s]) ++delta;
      }
      events_ += delta;
      values_ = std::move(next);
      changed = true;
    }
  }
  return sweeps;
}

unsigned long long Simulator::readBus(const std::string& base, int bits) const {
  unsigned long long v = 0;
  for (int i = 0; i < bits; ++i) {
    const Level l = get(base + std::to_string(i));
    if (isHigh(l)) v |= 1ull << i;
  }
  return v;
}

void Simulator::driveBus(const std::string& base, int bits, unsigned long long value) {
  for (int i = 0; i < bits; ++i) {
    const int sig = model_.findSignal(base + std::to_string(i));
    if (sig >= 0) set(sig, netlist::levelFromBool((value >> i) & 1));
  }
}

}  // namespace bb::sim
