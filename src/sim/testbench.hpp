/// \file testbench.hpp
/// Microcode-driven testbench: feeds a program (a sequence of microcode
/// words) to a compiled chip's logic model and samples its buses — this
/// is how "software can be written for the chip to explore the
/// feasibility of the design" before masks are made.
///
/// Timing follows the paper: "instructions enter the control buffers
/// through the decoder logic on the clock phase preceding the phase when
/// the instruction is to be executed", so the word is presented before
/// the phi1 transfer quarter of each cycle.

#pragma once

#include "sim/clock.hpp"
#include "sim/simulator.hpp"

#include <functional>
#include <string>
#include <vector>

namespace bb::sim {

struct TraceEntry {
  long long cycle = 0;
  unsigned long long microcode = 0;
  unsigned long long busA = 0;
  unsigned long long busB = 0;
};

class Testbench {
 public:
  /// `mcBits` microcode input signals named "mc<i>"; buses "busA<i>" /
  /// "busB<i>" of `dataBits` each.
  Testbench(Simulator& sim, int mcBits, int dataBits);

  /// Run the program; one microcode word per clock cycle. Returns the
  /// per-cycle trace (sampled at the end of phi1, when bus data is valid).
  std::vector<TraceEntry> run(const std::vector<unsigned long long>& program);

  /// Optional per-cycle callback (invoked after the phi1 sample).
  void onCycle(std::function<void(const TraceEntry&, Simulator&)> cb) { cb_ = std::move(cb); }

  [[nodiscard]] TwoPhaseClock& clock() noexcept { return clk_; }

 private:
  Simulator& sim_;
  TwoPhaseClock clk_;
  int mcBits_;
  int dataBits_;
  std::function<void(const TraceEntry&, Simulator&)> cb_;
};

}  // namespace bb::sim
