/// \file simulator.hpp
/// Event-driven 4-state logic simulator over a LogicModel — the paper's
/// "Simulation" representation, "so that software can be written for the
/// chip to explore the feasibility of the design". The 1979 system only
/// had hooks for this; it is implemented in full here.
///
/// Semantics per settle step:
///   * combinational gates evaluate with unit delay to a fixpoint;
///   * bus signals resolve by wired logic: any active PullDown/Drive-low
///     wins over precharge; an active Precharge (clock high) raises the
///     bus; with no driver the bus holds its charge (dynamic storage);
///   * LATCH passes input while enabled, holds otherwise.

#pragma once

#include "netlist/logic.hpp"
#include "sim/signal.hpp"

#include <string>
#include <vector>

namespace bb::sim {

class Simulator {
 public:
  explicit Simulator(const netlist::LogicModel& model);

  /// Force an input signal to a level (stays until changed).
  void set(int sig, Level v);
  void set(const std::string& name, Level v);
  void setBool(const std::string& name, bool v) { set(name, netlist::levelFromBool(v)); }

  /// Release a forced signal (reverts to model-driven).
  void release(int sig);

  [[nodiscard]] Level get(int sig) const noexcept {
    return values_[static_cast<std::size_t>(sig)];
  }
  [[nodiscard]] Level get(const std::string& name) const noexcept;
  [[nodiscard]] bool getBool(const std::string& name) const noexcept {
    return isHigh(get(name));
  }

  /// Propagate until stable. Returns the number of evaluation sweeps;
  /// sweeps are capped (oscillation guard) at 4 + 2 * gate count.
  int settle();

  /// Convenience: read an n-bit vector named base0..base{n-1} as unsigned.
  [[nodiscard]] unsigned long long readBus(const std::string& base, int bits) const;
  /// Drive an n-bit vector.
  void driveBus(const std::string& base, int bits, unsigned long long value);

  [[nodiscard]] const netlist::LogicModel& model() const noexcept { return model_; }
  [[nodiscard]] std::size_t eventCount() const noexcept { return events_; }

 private:
  void evalGate(const netlist::Gate& g, std::vector<Level>& next,
                std::vector<bool>& busPulledLow, std::vector<bool>& busDrivenHigh,
                std::vector<bool>& busPrecharged) const;

  const netlist::LogicModel& model_;
  std::vector<Level> values_;
  std::vector<bool> forced_;
  std::size_t events_ = 0;
};

}  // namespace bb::sim
