#include "sim/clock.hpp"

namespace bb::sim {

TwoPhaseClock::TwoPhaseClock(Simulator& sim, std::string phi1, std::string phi2)
    : sim_(sim), phi1_(std::move(phi1)), phi2_(std::move(phi2)) {
  // Establish both-low so the first quarter is a clean phi1 rise.
  sim_.set(phi1_, Level::L0);
  sim_.set(phi2_, Level::L0);
  sim_.settle();
}

void TwoPhaseClock::apply() {
  sim_.set(phi1_, q_ == 0 ? Level::L1 : Level::L0);
  sim_.set(phi2_, q_ == 2 ? Level::L1 : Level::L0);
  sim_.settle();
}

void TwoPhaseClock::quarter() {
  q_ = (q_ + 1) % 4;
  if (q_ == 0) ++cycles_;
  apply();
}

void TwoPhaseClock::cycle() {
  for (int i = 0; i < 4; ++i) quarter();
}

void TwoPhaseClock::toPhi1() {
  do {
    quarter();
  } while (q_ != 0);
}

void TwoPhaseClock::toPhi2() {
  do {
    quarter();
  } while (q_ != 2);
}

}  // namespace bb::sim
