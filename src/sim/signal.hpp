/// \file signal.hpp
/// Level algebra for the 4-state simulator.

#pragma once

#include "netlist/logic.hpp"

namespace bb::sim {

using netlist::Level;

/// Boolean ops over {0,1,X,Z}; Z is treated as X when consumed as input.
[[nodiscard]] Level simNot(Level a) noexcept;
[[nodiscard]] Level simAnd(Level a, Level b) noexcept;
[[nodiscard]] Level simOr(Level a, Level b) noexcept;
[[nodiscard]] Level simXor(Level a, Level b) noexcept;

/// True when the level is definitely high.
[[nodiscard]] bool isHigh(Level a) noexcept;
/// True when the level is definitely low.
[[nodiscard]] bool isLow(Level a) noexcept;
/// True when the level is 0 or 1.
[[nodiscard]] bool isKnown(Level a) noexcept;

}  // namespace bb::sim
