/// \file drc.hpp
/// Lambda design-rule checker.
///
/// Bristle Blocks exploits hierarchy: because cells agree on a standard
/// interface, design-rule checking can be performed on individual cells
/// as they are designed, "rather than on fully instantiated artwork".
/// The checker therefore runs on one cell's flattened artwork with the
/// cell boundary as the abutment condition: geometry that reaches the
/// boundary is interface wiring whose far side the contract guarantees.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "cell/hier_index.hpp"
#include "tech/rules.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace bb::drc {

/// One rule violation.
struct Violation {
  std::string rule;      ///< rule name, e.g. "S.metal.metal.3"
  tech::Layer layerA;
  tech::Layer layerB;    ///< == layerA for single-layer rules
  geom::Rect where;      ///< approximate violation region
  std::string message;
};

struct DrcOptions {
  /// Skip spacing violations where both shapes touch the cell boundary —
  /// the paper's per-cell boundary condition (the interface contract
  /// guarantees what is on the far side).
  bool boundaryConditions = true;
  /// Check transistor extension rules (poly/diff 2-lambda overhang).
  bool checkTransistors = true;
  /// Check contact construction (cut covered by both connected layers).
  bool checkContacts = true;
  /// Route geometric queries through the FlatLayout's per-layer spatial
  /// indexes: near-linear in the rect count instead of quadratic, with
  /// bit-identical violations. Off runs the reference all-pairs scans,
  /// kept for the equivalence tests and the scaling benches.
  bool useSpatialIndex = true;
  /// Width limit for the independent rule groups (each width rule, each
  /// spacing rule, the transistor and contact groups) on the shared
  /// persistent pool (`core::ThreadPool::global()`). 1 = serial, 0 =
  /// full pool width. This is a *budget on one process-wide pool*, not
  /// a thread count: a 4-wide service batch whose jobs each run DRC
  /// with threads=0 still uses one pool — nesting never multiplies
  /// threads the way the spawn-per-call scheduler did. Violations keep
  /// deck order regardless of width.
  unsigned threads = 1;
};

struct DrcReport {
  std::vector<Violation> violations;
  std::size_t shapesChecked = 0;
  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// A checker bound to one (deck, options) pair, reusable across any
/// number of chips: the rule-unit plan — one independent unit per width
/// rule and per spacing rule, plus the transistor and contact groups —
/// is resolved once at construction and shared by every `check()` call.
/// This is the per-deck setup a batch of jobs compiling under the same
/// `tech::RuleDeck` pays once instead of per chip (`BatchCompiler`'s
/// DRC stage holds exactly one of these). The deck must outlive the
/// checker; `check()` is const and safe to call concurrently for
/// distinct layouts.
class DeckChecker {
 public:
  explicit DeckChecker(const tech::RuleDeck& deck, DrcOptions opts = {});

  /// Check pre-flattened artwork with an explicit abutment boundary.
  /// `threadsOverride` replaces the bound options' width for that call
  /// only (same shape as `DrcOptions::threads`: 1 = serial, 0 = full
  /// pool width) — the batch tail uses it to fan a straggler chip's
  /// rule groups out over idle pool workers.
  [[nodiscard]] DrcReport check(const cell::FlatLayout& flat,
                                const geom::Rect& boundary) const;
  [[nodiscard]] DrcReport check(const cell::FlatLayout& flat, const geom::Rect& boundary,
                                unsigned threadsOverride) const;

  /// Hierarchy-aware check: each unique cell's interior is checked ONCE
  /// (against its own abutment boundary — the paper's per-cell DRC) and
  /// the violations replicated per placement with coordinates mapped
  /// through the placement transform; the residual gets the full rule
  /// set against the top boundary; then only the *interaction regions* —
  /// spacing rules across pairs of sources whose bboxes come within the
  /// rule margin — are pair-checked, with bridge material resolved
  /// across the whole hierarchy. Work scales with unique-cell geometry
  /// plus interaction area instead of instance count.
  ///
  /// Equivalent to the flat `check` on *well-formed* hierarchies: cells
  /// whose interiors stand alone (every rect at least min width, no
  /// transistor/contact split across a cell boundary) — which is what
  /// the generators produce and what `bench_hier_scaling` asserts.
  /// Violation order: placements in order (interior violations in deck
  /// order), then the residual, then interaction pairs; compare as sets
  /// against the flat reference.
  [[nodiscard]] DrcReport checkHier(const cell::HierIndex& hier) const;
  [[nodiscard]] DrcReport checkHier(const cell::HierIndex& hier,
                                    unsigned threadsOverride) const;

  [[nodiscard]] const tech::RuleDeck& deck() const noexcept { return *deck_; }
  [[nodiscard]] const DrcOptions& options() const noexcept { return opts_; }

 private:
  /// One independent, concurrently-runnable rule unit of the plan.
  /// PolyWidth/PolySpacing extend each width/spacing rule to polygon
  /// geometry (`FlatLayout::polygons`); they ride after the classic
  /// units and early-return on polygon-free layers, so chips without
  /// polygons keep their violation order byte-for-byte.
  struct Unit {
    enum class Kind : std::uint8_t {
      Width, Spacing, Transistors, Contacts, PolyWidth, PolySpacing
    };
    Kind kind;
    std::size_t index = 0;  ///< rule index within its deck family
  };

  const tech::RuleDeck* deck_;
  DrcOptions opts_;
  std::vector<Unit> units_;  ///< the shared per-deck plan
};

/// Check one cell (flattening its hierarchy) against the deck.
[[nodiscard]] DrcReport checkCell(const cell::Cell& c, const tech::RuleDeck& deck,
                                  const DrcOptions& opts = {});

/// Check pre-flattened artwork with an explicit abutment boundary.
/// One-shot convenience over a throwaway `DeckChecker`.
[[nodiscard]] DrcReport checkFlat(const cell::FlatLayout& flat, const geom::Rect& boundary,
                                  const tech::RuleDeck& deck, const DrcOptions& opts = {});

}  // namespace bb::drc
