/// \file drc.hpp
/// Lambda design-rule checker.
///
/// Bristle Blocks exploits hierarchy: because cells agree on a standard
/// interface, design-rule checking can be performed on individual cells
/// as they are designed, "rather than on fully instantiated artwork".
/// The checker therefore runs on one cell's flattened artwork with the
/// cell boundary as the abutment condition: geometry that reaches the
/// boundary is interface wiring whose far side the contract guarantees.

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "tech/rules.hpp"

#include <string>
#include <vector>

namespace bb::drc {

/// One rule violation.
struct Violation {
  std::string rule;      ///< rule name, e.g. "S.metal.metal.3"
  tech::Layer layerA;
  tech::Layer layerB;    ///< == layerA for single-layer rules
  geom::Rect where;      ///< approximate violation region
  std::string message;
};

struct DrcOptions {
  /// Skip spacing violations where both shapes touch the cell boundary —
  /// the paper's per-cell boundary condition (the interface contract
  /// guarantees what is on the far side).
  bool boundaryConditions = true;
  /// Check transistor extension rules (poly/diff 2-lambda overhang).
  bool checkTransistors = true;
  /// Check contact construction (cut covered by both connected layers).
  bool checkContacts = true;
  /// Route geometric queries through the FlatLayout's per-layer spatial
  /// indexes: near-linear in the rect count instead of quadratic, with
  /// bit-identical violations. Off runs the reference all-pairs scans,
  /// kept for the equivalence tests and the scaling benches.
  bool useSpatialIndex = true;
  /// Worker threads for the independent rule groups (each width rule,
  /// each spacing rule, the transistor and contact groups), scheduled on
  /// the batch work-queue. 1 = serial, 0 = hardware concurrency.
  /// Violations keep deck order regardless of thread count.
  unsigned threads = 1;
};

struct DrcReport {
  std::vector<Violation> violations;
  std::size_t shapesChecked = 0;
  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Check one cell (flattening its hierarchy) against the deck.
[[nodiscard]] DrcReport checkCell(const cell::Cell& c, const tech::RuleDeck& deck,
                                  const DrcOptions& opts = {});

/// Check pre-flattened artwork with an explicit abutment boundary.
[[nodiscard]] DrcReport checkFlat(const cell::FlatLayout& flat, const geom::Rect& boundary,
                                  const tech::RuleDeck& deck, const DrcOptions& opts = {});

}  // namespace bb::drc
