#include "drc/drc.hpp"

#include <algorithm>
#include <sstream>

namespace bb::drc {

namespace {

using geom::Coord;
using geom::Rect;
using tech::Layer;

/// Gap between two disjoint rectangles (Chebyshev-style: the larger of the
/// axis separations; 0 if they touch or overlap).
Coord gapBetween(const Rect& a, const Rect& b) noexcept {
  const Coord dx = std::max({a.x0 - b.x1, b.x0 - a.x1, Coord{0}});
  const Coord dy = std::max({a.y0 - b.y1, b.y0 - a.y1, Coord{0}});
  // Disjoint diagonally: Euclidean would be sqrt(dx^2+dy^2); the lambda
  // rules treat diagonal separation with the max metric, which is the
  // conservative Manhattan-grid convention.
  return std::max(dx, dy);
}

bool touchesBoundary(const Rect& r, const Rect& boundary) noexcept {
  return r.x0 <= boundary.x0 || r.x1 >= boundary.x1 || r.y0 <= boundary.y0 ||
         r.y1 >= boundary.y1;
}

/// True if `r` is fully covered by the union of `cover`.
bool coveredBy(const Rect& r, const std::vector<Rect>& cover) {
  if (r.isEmpty()) return true;
  std::vector<Rect> clipped;
  for (const Rect& c : cover) {
    if (auto i = c.intersectWith(r)) clipped.push_back(*i);
  }
  return geom::unionArea(std::move(clipped)) == r.area();
}

/// All poly-over-diffusion intersection regions (candidate gates).
std::vector<Rect> gateRegions(const cell::FlatLayout& flat) {
  std::vector<Rect> gates;
  for (const Rect& p : flat.on(Layer::Poly)) {
    for (const Rect& d : flat.on(Layer::Diffusion)) {
      if (auto g = p.intersectWith(d)) gates.push_back(*g);
    }
  }
  // Merge duplicates (several poly rects over one diff produce overlaps).
  std::sort(gates.begin(), gates.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
  });
  gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
  return gates;
}

}  // namespace

std::string DrcReport::summary() const {
  std::ostringstream os;
  os << violations.size() << " violation(s) over " << shapesChecked << " shapes";
  for (std::size_t i = 0; i < violations.size() && i < 10; ++i) {
    os << "\n  " << violations[i].rule << " at " << geom::toString(violations[i].where) << ": "
       << violations[i].message;
  }
  if (violations.size() > 10) os << "\n  ...";
  return os.str();
}

DrcReport checkFlat(const cell::FlatLayout& flat, const geom::Rect& boundary,
                    const tech::RuleDeck& deck, const DrcOptions& opts) {
  DrcReport rep;
  rep.shapesChecked = flat.totalCount();

  // --- width rules ----------------------------------------------------
  // Generators emit every feature at legal width directly (wires carry
  // their full width; rails are single rects), so the per-rect check is
  // exact for compiler output and still catches genuinely thin features.
  for (const tech::WidthRule& wr : deck.widths) {
    for (const Rect& r : flat.on(wr.layer)) {
      const Coord w = std::min(r.width(), r.height());
      if (w < wr.min) {
        // A thin rect fully inside a larger same-layer region is not a
        // violation (e.g. the contact-surround pad overlapping a rail).
        std::vector<Rect> others;
        for (const Rect& o : flat.on(wr.layer)) {
          if (o == r) continue;
          others.push_back(o);
        }
        if (!coveredBy(r, others)) {
          rep.violations.push_back({wr.name, wr.layer, wr.layer, r,
                                    "feature " + std::to_string(w) + " < min width " +
                                        std::to_string(wr.min)});
        }
      }
    }
  }

  // --- spacing rules ----------------------------------------------------
  for (const tech::SpacingRule& sr : deck.spacings) {
    const auto& as = flat.on(sr.a);
    const auto& bs = flat.on(sr.b);
    const bool same = sr.a == sr.b;
    for (std::size_t i = 0; i < as.size(); ++i) {
      for (std::size_t j = same ? i + 1 : 0; j < bs.size(); ++j) {
        const Rect& ra = as[i];
        const Rect& rb = bs[j];
        if (ra.touches(rb)) continue;  // same feature / intentional crossing
        const Coord gap = gapBetween(ra, rb);
        if (gap >= sr.min) continue;
        if (same) {
          // Two disjoint pieces bridged by other material on the layer are
          // one feature: skip if some rect touches both.
          bool bridged = false;
          for (const Rect& o : as) {
            if (o == ra || o == rb) continue;
            if (o.touches(ra) && o.touches(rb)) {
              // Only a true bridge joins them; a rect that merely spans the
              // gap region is enough for the lithography.
              bridged = true;
              break;
            }
          }
          if (bridged) continue;
        }
        if (opts.boundaryConditions && touchesBoundary(ra, boundary) &&
            touchesBoundary(rb, boundary)) {
          continue;  // interface wiring; contract guarantees the far side
        }
        rep.violations.push_back({sr.name, sr.a, sr.b, ra.unionWith(rb),
                                  "gap " + std::to_string(gap) + " < " + std::to_string(sr.min)});
      }
    }
  }

  // --- transistor construction ------------------------------------------
  if (opts.checkTransistors) {
    const auto& comp = deck.composite;
    for (const Rect& g : gateRegions(flat)) {
      // Poly must extend past the gate in its run direction, diffusion in
      // the orthogonal one; accept either orientation.
      const Rect extX{g.x0 - comp.polyGateExtension, g.y0, g.x1 + comp.polyGateExtension, g.y1};
      const Rect extY{g.x0, g.y0 - comp.polyGateExtension, g.x1, g.y1 + comp.polyGateExtension};
      const Rect dExtX{g.x0 - comp.diffGateExtension, g.y0, g.x1 + comp.diffGateExtension, g.y1};
      const Rect dExtY{g.x0, g.y0 - comp.diffGateExtension, g.x1, g.y1 + comp.diffGateExtension};
      const bool polyX = coveredBy(extX, flat.on(Layer::Poly));
      const bool polyY = coveredBy(extY, flat.on(Layer::Poly));
      const bool diffX = coveredBy(dExtX, flat.on(Layer::Diffusion));
      const bool diffY = coveredBy(dExtY, flat.on(Layer::Diffusion));
      const bool ok = (polyX && diffY) || (polyY && diffX);
      if (!ok) {
        // Buried contacts intentionally join poly and diffusion; their
        // overlap is not a transistor.
        bool buried = false;
        for (const Rect& b : flat.on(Layer::Buried)) {
          if (b.touches(g)) {
            buried = true;
            break;
          }
        }
        if (!buried) {
          rep.violations.push_back({"T.gate.ext", Layer::Poly, Layer::Diffusion, g,
                                    "gate lacks 2-lambda poly/diff extensions"});
        }
      }
    }
  }

  // --- contact construction ----------------------------------------------
  if (opts.checkContacts) {
    const auto& comp = deck.composite;
    for (const Rect& cut : flat.on(Layer::Contact)) {
      const Rect need = cut.expanded(comp.contactSurround);
      const bool metalOk = coveredBy(need, flat.on(Layer::Metal));
      const bool polyOk = coveredBy(need, flat.on(Layer::Poly));
      const bool diffOk = coveredBy(need, flat.on(Layer::Diffusion));
      if (!(metalOk && (polyOk || diffOk))) {
        rep.violations.push_back({"C.surround.1", Layer::Contact, Layer::Metal, cut,
                                  "cut not surrounded by metal and poly-or-diff"});
      }
    }
    for (const Rect& b : flat.on(Layer::Buried)) {
      const bool polyOk = coveredBy(b, flat.on(Layer::Poly));
      const bool diffOk = coveredBy(b, flat.on(Layer::Diffusion));
      if (!(polyOk && diffOk)) {
        rep.violations.push_back({"C.buried", Layer::Buried, Layer::Poly, b,
                                  "buried contact not covered by poly and diffusion"});
      }
    }
  }

  return rep;
}

DrcReport checkCell(const cell::Cell& c, const tech::RuleDeck& deck, const DrcOptions& opts) {
  return checkFlat(cell::flatten(c), c.boundary(), deck, opts);
}

}  // namespace bb::drc
