#include "drc/drc.hpp"

#include "core/workqueue.hpp"
#include "geom/poly.hpp"
#include "geom/segment_index.hpp"
#include "geom/sweep.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

namespace bb::drc {

namespace {

using geom::Coord;
using geom::Rect;
using geom::RectIndex;
using tech::Layer;

/// Gap between two disjoint rectangles (Chebyshev-style: the larger of the
/// axis separations; 0 if they touch or overlap).
Coord gapBetween(const Rect& a, const Rect& b) noexcept {
  const Coord dx = std::max({a.x0 - b.x1, b.x0 - a.x1, Coord{0}});
  const Coord dy = std::max({a.y0 - b.y1, b.y0 - a.y1, Coord{0}});
  // Disjoint diagonally: Euclidean would be sqrt(dx^2+dy^2); the lambda
  // rules treat diagonal separation with the max metric, which is the
  // conservative Manhattan-grid convention.
  return std::max(dx, dy);
}

bool touchesBoundary(const Rect& r, const Rect& boundary) noexcept {
  return r.x0 <= boundary.x0 || r.x1 >= boundary.x1 || r.y0 <= boundary.y0 ||
         r.y1 >= boundary.y1;
}

/// Reusable per-unit scratch so the hot loops never reallocate.
struct Scratch {
  std::vector<int> cand;
  std::vector<int> bridge;
  std::vector<Rect> clip;
  geom::sweep::CoverageQuery cq;
};

/// True if `r` is fully covered by the union of layer `l`. Indexed mode
/// asks the sweep's coverage query against the per-layer index — one
/// incremental O(k log k) gap probe over the k touching rects instead
/// of a clip + full union-area pass per feature. Non-touching rects
/// contribute no coverage, so the answer is exactly the brute scan's
/// (both are exact integer predicates).
bool coveredByLayer(const Rect& r, const cell::FlatLayout& flat, Layer l, bool useIndex,
                    Scratch& s) {
  if (r.isEmpty()) return true;
  if (useIndex) return s.cq.covers(r, flat.indexOn(l));
  s.clip.clear();
  for (const Rect& c : flat.on(l)) {
    if (auto i = c.intersectWith(r)) s.clip.push_back(*i);
  }
  return geom::unionAreaBrute(s.clip) == r.area();
}

/// True if any rect on layer `l` touches `q`.
bool anyTouching(const Rect& q, const cell::FlatLayout& flat, Layer l, bool useIndex,
                 Scratch& s) {
  if (useIndex) {
    flat.indexOn(l).queryTouching(q, s.cand);
    return !s.cand.empty();
  }
  for (const Rect& b : flat.on(l)) {
    if (b.touches(q)) return true;
  }
  return false;
}

/// True if the thin rect `r` (== layer[self]) is fully covered by the
/// rest of its layer — a sliver inside a larger same-layer region is one
/// feature, not a violation. The self rect is skipped by index and exact
/// geometric duplicates by value (a duplicate is the same feature and
/// must not count as covering itself).
bool thinRectCovered(std::size_t self, const Rect& r, const cell::FlatLayout& flat, Layer l,
                     bool useIndex, Scratch& s) {
  const auto& layer = flat.on(l);
  if (useIndex) {
    // Incremental coverage probe: candidates from the index, self and
    // exact duplicates filtered, gap query clips internally.
    flat.indexOn(l).queryTouching(r, s.cand);
    s.clip.clear();
    for (const int j : s.cand) {
      const auto js = static_cast<std::size_t>(j);
      if (js == self || layer[js] == r) continue;
      s.clip.push_back(layer[js]);
    }
    return s.cq.covers(r, s.clip);
  }
  s.clip.clear();
  s.clip.reserve(layer.size());
  for (std::size_t j = 0; j < layer.size(); ++j) {
    if (j == self || layer[j] == r) continue;
    if (auto i = layer[j].intersectWith(r)) s.clip.push_back(*i);
  }
  return geom::unionAreaBrute(s.clip) == r.area();
}

void runWidthRule(const tech::WidthRule& wr, const cell::FlatLayout& flat,
                  const DrcOptions& opts, std::vector<Violation>& out) {
  const auto& layer = flat.on(wr.layer);
  Scratch s;
  for (std::size_t i = 0; i < layer.size(); ++i) {
    const Rect& r = layer[i];
    const Coord w = std::min(r.width(), r.height());
    if (w >= wr.min) continue;
    if (!thinRectCovered(i, r, flat, wr.layer, opts.useSpatialIndex, s)) {
      out.push_back({wr.name, wr.layer, wr.layer, r,
                     "feature " + std::to_string(w) + " < min width " +
                         std::to_string(wr.min)});
    }
  }
}

void runSpacingRule(const tech::SpacingRule& sr, const cell::FlatLayout& flat,
                    const geom::Rect& boundary, const DrcOptions& opts,
                    std::vector<Violation>& out) {
  if (sr.min <= 0) return;  // gap >= 0 can never violate
  const auto& as = flat.on(sr.a);
  const auto& bs = flat.on(sr.b);
  const bool same = sr.a == sr.b;
  const RectIndex* idxB = opts.useSpatialIndex ? &flat.indexOn(sr.b) : nullptr;
  Scratch s;

  for (std::size_t i = 0; i < as.size(); ++i) {
    const Rect& ra = as[i];

    auto checkPair = [&](std::size_t j) {
      const Rect& rb = bs[j];
      if (ra.touches(rb)) return;  // same feature / intentional crossing
      const Coord gap = gapBetween(ra, rb);
      if (gap >= sr.min) return;
      if (same) {
        // Two disjoint pieces bridged by other material on the layer are
        // one feature: skip if some rect touches both.
        bool bridged = false;
        if (idxB) {
          idxB->queryTouching(ra, s.bridge);
          for (const int k : s.bridge) {
            const Rect& o = as[static_cast<std::size_t>(k)];
            if (o == ra || o == rb) continue;
            if (o.touches(rb)) {  // o.touches(ra) held by the query
              bridged = true;
              break;
            }
          }
        } else {
          for (const Rect& o : as) {
            if (o == ra || o == rb) continue;
            if (o.touches(ra) && o.touches(rb)) {
              bridged = true;
              break;
            }
          }
        }
        if (bridged) return;
      }
      if (opts.boundaryConditions && touchesBoundary(ra, boundary) &&
          touchesBoundary(rb, boundary)) {
        return;  // interface wiring; contract guarantees the far side
      }
      out.push_back({sr.name, sr.a, sr.b, ra.unionWith(rb),
                     "gap " + std::to_string(gap) + " < " + std::to_string(sr.min)});
    };

    if (idxB) {
      // Everything violating has gap <= min-1 — exactly the index's
      // Chebyshev margin query. Candidates come back ascending, so the
      // violation order matches the reference j-loop.
      idxB->queryWithin(ra, sr.min - 1, s.cand);
      for (const int j : s.cand) {
        if (same && j <= static_cast<int>(i)) continue;
        checkPair(static_cast<std::size_t>(j));
      }
    } else {
      for (std::size_t j = same ? i + 1 : 0; j < bs.size(); ++j) checkPair(j);
    }
  }
}

/// All poly-over-diffusion intersection regions (candidate gates).
std::vector<Rect> gateRegions(const cell::FlatLayout& flat, bool useIndex) {
  std::vector<Rect> gates;
  const auto& diffs = flat.on(Layer::Diffusion);
  const RectIndex* idx = useIndex ? &flat.indexOn(Layer::Diffusion) : nullptr;
  std::vector<int> cand;
  for (const Rect& p : flat.on(Layer::Poly)) {
    auto consider = [&](const Rect& d) {
      if (auto g = p.intersectWith(d)) gates.push_back(*g);
    };
    if (idx) {
      idx->queryTouching(p, cand);
      for (const int di : cand) consider(diffs[static_cast<std::size_t>(di)]);
    } else {
      for (const Rect& d : diffs) consider(d);
    }
  }
  // Merge duplicates (several poly rects over one diff produce overlaps).
  std::sort(gates.begin(), gates.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
  });
  gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
  return gates;
}

void runTransistorChecks(const cell::FlatLayout& flat, const tech::RuleDeck& deck,
                         const DrcOptions& opts, std::vector<Violation>& out) {
  const auto& comp = deck.composite;
  const bool useIdx = opts.useSpatialIndex;
  Scratch s;
  for (const Rect& g : gateRegions(flat, useIdx)) {
    // Poly must extend past the gate in its run direction, diffusion in
    // the orthogonal one; accept either orientation.
    const Rect extX{g.x0 - comp.polyGateExtension, g.y0, g.x1 + comp.polyGateExtension, g.y1};
    const Rect extY{g.x0, g.y0 - comp.polyGateExtension, g.x1, g.y1 + comp.polyGateExtension};
    const Rect dExtX{g.x0 - comp.diffGateExtension, g.y0, g.x1 + comp.diffGateExtension, g.y1};
    const Rect dExtY{g.x0, g.y0 - comp.diffGateExtension, g.x1, g.y1 + comp.diffGateExtension};
    const bool polyX = coveredByLayer(extX, flat, Layer::Poly, useIdx, s);
    const bool polyY = coveredByLayer(extY, flat, Layer::Poly, useIdx, s);
    const bool diffX = coveredByLayer(dExtX, flat, Layer::Diffusion, useIdx, s);
    const bool diffY = coveredByLayer(dExtY, flat, Layer::Diffusion, useIdx, s);
    const bool ok = (polyX && diffY) || (polyY && diffX);
    if (!ok) {
      // Buried contacts intentionally join poly and diffusion; their
      // overlap is not a transistor.
      if (!anyTouching(g, flat, Layer::Buried, useIdx, s)) {
        out.push_back({"T.gate.ext", Layer::Poly, Layer::Diffusion, g,
                       "gate lacks 2-lambda poly/diff extensions"});
      }
    }
  }
}

void runContactChecks(const cell::FlatLayout& flat, const tech::RuleDeck& deck,
                      const DrcOptions& opts, std::vector<Violation>& out) {
  const auto& comp = deck.composite;
  const bool useIdx = opts.useSpatialIndex;
  Scratch s;
  for (const Rect& cut : flat.on(Layer::Contact)) {
    const Rect need = cut.expanded(comp.contactSurround);
    const bool metalOk = coveredByLayer(need, flat, Layer::Metal, useIdx, s);
    const bool polyOk = coveredByLayer(need, flat, Layer::Poly, useIdx, s);
    const bool diffOk = coveredByLayer(need, flat, Layer::Diffusion, useIdx, s);
    if (!(metalOk && (polyOk || diffOk))) {
      out.push_back({"C.surround.1", Layer::Contact, Layer::Metal, cut,
                     "cut not surrounded by metal and poly-or-diff"});
    }
  }
  for (const Rect& b : flat.on(Layer::Buried)) {
    const bool polyOk = coveredByLayer(b, flat, Layer::Poly, useIdx, s);
    const bool diffOk = coveredByLayer(b, flat, Layer::Diffusion, useIdx, s);
    if (!(polyOk && diffOk)) {
      out.push_back({"C.buried", Layer::Buried, Layer::Poly, b,
                     "buried contact not covered by poly and diffusion"});
    }
  }
}

// ---------------------------------------------------------------------------
// Polygon rule units.
//
// Polygon geometry enters DRC as *regions*: each polygon becomes its
// exact normal-form rect decomposition when rectilinear, or its bbox as
// a documented conservative stand-in otherwise (extraction uses the
// same convention). Every predicate below is exact integer arithmetic
// over those pieces, and the indexed candidate discovery feeds the SAME
// exact pair test as the brute scan, so both modes produce identical
// violations in identical order.

/// The region a polygon occupies for DRC/extraction purposes.
std::vector<Rect> polygonRegion(const geom::Polygon& p) {
  if (geom::poly::isRectilinear(p)) return geom::poly::rectDecompose(p);
  return {p.bbox()};
}

/// One polygon feature on a layer: its region pieces and bbox, in
/// `FlatLayout::polygons` order.
struct PolyFeature {
  std::vector<Rect> region;
  Rect bbox;
};

std::vector<PolyFeature> polyFeaturesOn(const cell::FlatLayout& flat, Layer l) {
  std::vector<PolyFeature> out;
  for (const auto& [pl, p] : flat.polygons) {
    if (pl != l) continue;
    out.push_back({polygonRegion(p), p.bbox()});
  }
  return out;
}

/// Edge index over the layer's polygon features for spacing candidate
/// discovery. Rectilinear features contribute their real edges;
/// bbox-approximated features contribute their bbox's four sides (the
/// probe must see the same outline the exact test uses, or the indexed
/// mode could miss a pair the brute mode reports). `owner[s]` maps
/// segment `s` back to its feature index.
geom::SegmentIndex buildEdgeIndex(const cell::FlatLayout& flat, Layer l,
                                  std::vector<int>& owner) {
  std::vector<geom::Segment> segs;
  int fi = 0;
  for (const auto& [pl, p] : flat.polygons) {
    if (pl != l) continue;
    if (geom::poly::isRectilinear(p)) {
      for (const geom::Segment& s : geom::edgesOf(p)) {
        segs.push_back(s);
        owner.push_back(fi);
      }
    } else {
      const Rect b = p.bbox();
      const geom::Point c00{b.x0, b.y0}, c10{b.x1, b.y0}, c11{b.x1, b.y1}, c01{b.x0, b.y1};
      for (const geom::Segment& s :
           {geom::Segment{c00, c10}, geom::Segment{c10, c11}, geom::Segment{c11, c01},
            geom::Segment{c01, c00}}) {
        segs.push_back(s);
        owner.push_back(fi);
      }
    }
    ++fi;
  }
  return geom::SegmentIndex(std::move(segs));
}

/// Width check over polygon material: morphological opening in doubled
/// coordinates. Scaling by 2 makes the radius `min - 1` representable
/// for every parity, and then an opening with that radius removes
/// exactly the material thinner than `min` (a strip of doubled width 2w
/// dies under erosion by d iff 2w <= 2d, i.e. w <= min-1) while
/// material at least `min` wide survives untouched. The residue
/// `region \ opening` IS the violation geometry; pieces not touching
/// any polygon material are dropped (slivers between plain rects are
/// the classic width rule's jurisdiction). No spatial-index branch:
/// the unit is exact and identical in both modes by construction.
void runPolyWidthRule(const tech::WidthRule& wr, const cell::FlatLayout& flat,
                      const DrcOptions& opts, std::vector<Violation>& out) {
  (void)opts;
  if (wr.min <= 1) return;  // every positive-area piece is >= 1 wide
  const auto x2 = [](const Rect& r) {
    return Rect{2 * r.x0, 2 * r.y0, 2 * r.x1, 2 * r.y1};
  };
  std::vector<Rect> polyMat;  // doubled polygon pieces on the layer
  for (const auto& [pl, p] : flat.polygons) {
    if (pl != wr.layer) continue;
    for (const Rect& r : polygonRegion(p)) polyMat.push_back(x2(r));
  }
  if (polyMat.empty()) return;  // polygon-free layer: classic rule covers it

  std::vector<Rect> mat = polyMat;
  for (const Rect& r : flat.on(wr.layer)) mat.push_back(x2(r));
  const std::vector<Rect> region = geom::sweep::unionRects(std::move(mat));
  const Coord d = wr.min - 1;  // doubled-coordinate opening radius
  const std::vector<Rect> opened =
      geom::poly::dilateRegion(geom::poly::erodeRegion(region, d), d);
  for (const Rect& t : geom::poly::subtractRegions(region, opened)) {
    bool nearPoly = false;
    for (const Rect& pm : polyMat) {
      if (t.touches(pm)) {
        nearPoly = true;
        break;
      }
    }
    if (!nearPoly) continue;
    // Region and opening boundaries both live on even coordinates, so
    // halving is exact (floorHalf only guards the impossible odd case).
    const Rect where{geom::floorHalf(t.x0), geom::floorHalf(t.y0), geom::floorHalf(t.x1),
                     geom::floorHalf(t.y1)};
    const Coord w = std::min(where.width(), where.height());
    out.push_back({wr.name, wr.layer, wr.layer, where,
                   "polygon material " + std::to_string(w) + " < min width " +
                       std::to_string(wr.min)});
  }
}

/// Spacing check involving polygon features: polygon-vs-polygon,
/// polygon-vs-rect, and (for cross-layer rules) rect-vs-polygon pairs.
/// The exact pair test is an offset-and-intersect probe: a violation
/// exists iff some piece of A, dilated by `min - 1`, touches a piece of
/// B — exactly Chebyshev gap <= min-1 < min, the metric the rect rule
/// uses. Candidates come from the `SegmentIndex` over B's edges (or the
/// per-layer `RectIndex` for rect partners); the brute path scans all
/// partners. Both paths run the identical exact test over ascending
/// partner order, so the violations are bit-identical.
void runPolySpacingRule(const tech::SpacingRule& sr, const cell::FlatLayout& flat,
                        const geom::Rect& boundary, const DrcOptions& opts,
                        std::vector<Violation>& out) {
  if (sr.min <= 0) return;
  const Coord m = sr.min - 1;
  const bool same = sr.a == sr.b;
  const std::vector<PolyFeature> fa = polyFeaturesOn(flat, sr.a);
  const std::vector<PolyFeature> fbStore =
      same ? std::vector<PolyFeature>{} : polyFeaturesOn(flat, sr.b);
  const std::vector<PolyFeature>& fb = same ? fa : fbStore;
  if (fa.empty() && fb.empty()) return;  // polygon-free: classic rule covers it

  const auto regionsTouch = [](const std::vector<Rect>& x, const std::vector<Rect>& y) {
    for (const Rect& rx : x) {
      for (const Rect& ry : y) {
        if (rx.touches(ry)) return true;
      }
    }
    return false;
  };
  const auto dilatedTouches = [m](const std::vector<Rect>& x, const std::vector<Rect>& y) {
    for (const Rect& rx : x) {
      const Rect e = rx.expandedXY(m, m);
      for (const Rect& ry : y) {
        if (e.touches(ry)) return true;
      }
    }
    return false;
  };
  const auto anyTouchesBoundary = [&boundary](const std::vector<Rect>& x) {
    for (const Rect& r : x) {
      if (touchesBoundary(r, boundary)) return true;
    }
    return false;
  };
  // Same-layer bridging: a third piece of material on the layer touching
  // both features makes them one feature. Resolved by the same brute
  // scan in both modes (bridge resolution is not candidate discovery —
  // it must see ALL material, and it only runs on near-violations).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const auto bridged = [&](const std::vector<Rect>& ra, const std::vector<Rect>& rb,
                           std::size_t skipA, std::size_t skipB, const Rect* skipRect) {
    for (const Rect& o : flat.on(sr.a)) {
      if (skipRect != nullptr && o == *skipRect) continue;
      bool ta = false, tb = false;
      for (const Rect& rx : ra) {
        if (o.touches(rx)) {
          ta = true;
          break;
        }
      }
      if (!ta) continue;
      for (const Rect& ry : rb) {
        if (o.touches(ry)) {
          tb = true;
          break;
        }
      }
      if (tb) return true;
    }
    for (std::size_t k = 0; k < fa.size(); ++k) {
      if (k == skipA || k == skipB) continue;
      if (regionsTouch(fa[k].region, ra) && regionsTouch(fa[k].region, rb)) return true;
    }
    return false;
  };
  const auto checkPair = [&](const std::vector<Rect>& ra, const std::vector<Rect>& rb,
                             std::size_t skipA, std::size_t skipB, const Rect* skipRect) {
    if (regionsTouch(ra, rb)) return;  // same feature / intentional crossing
    if (!dilatedTouches(ra, rb)) return;  // gap >= sr.min
    if (same && bridged(ra, rb, skipA, skipB, skipRect)) return;
    if (opts.boundaryConditions && anyTouchesBoundary(ra) && anyTouchesBoundary(rb)) {
      return;  // interface wiring; contract guarantees the far side
    }
    // Report the closest piece pair (first minimum wins: deterministic).
    Coord gap = -1;
    Rect where{};
    for (const Rect& rx : ra) {
      for (const Rect& ry : rb) {
        const Coord g = gapBetween(rx, ry);
        if (gap < 0 || g < gap) {
          gap = g;
          where = rx.unionWith(ry);
        }
      }
    }
    out.push_back({sr.name, sr.a, sr.b, where,
                   "polygon gap " + std::to_string(gap) + " < " + std::to_string(sr.min)});
  };

  std::vector<int> edgeOwner;
  std::optional<geom::SegmentIndex> idxB;
  if (opts.useSpatialIndex && !fb.empty()) idxB.emplace(buildEdgeIndex(flat, sr.b, edgeOwner));
  std::vector<int> segCand;
  std::vector<std::size_t> cand;
  const auto polyCandidates = [&](const Rect& q) -> const std::vector<std::size_t>& {
    cand.clear();
    if (idxB) {
      idxB->queryWithin(q, m, segCand);
      for (const int s : segCand) {
        cand.push_back(static_cast<std::size_t>(edgeOwner[static_cast<std::size_t>(s)]));
      }
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    } else {
      for (std::size_t j = 0; j < fb.size(); ++j) cand.push_back(j);
    }
    return cand;
  };

  // 1. polygon(a) vs polygon(b), ascending (i, j); same-layer pairs once.
  for (std::size_t i = 0; i < fa.size(); ++i) {
    for (const std::size_t j : polyCandidates(fa[i].bbox)) {
      if (same && j <= i) continue;
      checkPair(fa[i].region, fb[j].region, i, j, nullptr);
    }
  }

  // 2. polygon(a) vs plain rect(b), ascending (i, rect j).
  const auto& rbs = flat.on(sr.b);
  const RectIndex* ridxB = opts.useSpatialIndex ? &flat.indexOn(sr.b) : nullptr;
  std::vector<int> rcand;
  std::vector<Rect> one(1);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const auto checkRect = [&](std::size_t j) {
      one[0] = rbs[j];
      checkPair(fa[i].region, one, i, kNone, &rbs[j]);
    };
    if (ridxB != nullptr) {
      ridxB->queryWithin(fa[i].bbox, m, rcand);
      for (const int j : rcand) checkRect(static_cast<std::size_t>(j));
    } else {
      for (std::size_t j = 0; j < rbs.size(); ++j) checkRect(j);
    }
  }

  // 3. plain rect(a) vs polygon(b), cross-layer only (the same-layer
  // case is pass 2 with roles swapped — pairing it again would dup).
  if (!same) {
    const auto& ras = flat.on(sr.a);
    for (std::size_t i = 0; i < ras.size(); ++i) {
      one[0] = ras[i];
      for (const std::size_t j : polyCandidates(ras[i])) {
        checkPair(one, fb[j].region, kNone, j, nullptr);
      }
    }
  }
}

/// World-space rects of one hier source (a placement, or the residual
/// when `src == placements().size()`) on layer `l` touching `win`, in
/// ascending local-index order (deterministic).
std::vector<Rect> sourceRectsNear(const cell::HierIndex& hier, std::size_t src, Layer l,
                                  const Rect& win) {
  std::vector<Rect> out;
  std::vector<int> cand;
  const auto& ps = hier.placements();
  if (src < ps.size()) {
    const cell::HierPlacement& p = ps[src];
    const geom::RectIndex& idx = hier.units()[p.unit].flat.indexOn(l);
    idx.queryTouching(p.t.inverted()(win), cand);
    out.reserve(cand.size());
    for (const int i : cand) out.push_back(p.t(idx.rect(static_cast<std::size_t>(i))));
  } else {
    const geom::RectIndex& idx = hier.residual().indexOn(l);
    idx.queryTouching(win, cand);
    out.reserve(cand.size());
    for (const int i : cand) out.push_back(idx.rect(static_cast<std::size_t>(i)));
  }
  return out;
}

Rect sourceBBox(const cell::HierIndex& hier, std::size_t src) {
  const auto& ps = hier.placements();
  return src < ps.size() ? ps[src].worldBBox : hier.residual().bbox();
}

/// One spacing rule across a pair of hier sources: only the rects near
/// the other source's bbox are paired, with the flat checker's exact
/// pair semantics (touch = one feature, same-layer bridging resolved
/// against the WHOLE hierarchy, boundary exemption vs the top boundary).
void runSpacingAcross(const tech::SpacingRule& sr, const cell::HierIndex& hier,
                      std::size_t srcI, std::size_t srcJ, const Rect& boundary,
                      const DrcOptions& opts, std::vector<Violation>& out) {
  if (sr.min <= 0) return;
  const Coord m = sr.min - 1;

  const auto pass = [&](std::size_t sa, std::size_t sb) {
    const Rect nearB = sourceBBox(hier, sb).expandedXY(m, m);
    const std::vector<Rect> A = sourceRectsNear(hier, sa, sr.a, nearB);
    if (A.empty()) return;
    const Rect nearA = sourceBBox(hier, sa).expandedXY(m, m);
    const std::vector<Rect> B = sourceRectsNear(hier, sb, sr.b, nearA);
    for (const Rect& ra : A) {
      for (const Rect& rb : B) {
        if (ra.touches(rb)) continue;
        const Coord gap = gapBetween(ra, rb);
        if (gap >= sr.min) continue;
        if (sr.a == sr.b) {
          bool bridged = false;
          hier.forEachRectTouching(sr.a, ra, [&](const Rect& o) {
            if (bridged || o == ra || o == rb) return;
            if (o.touches(rb)) bridged = true;
          });
          if (bridged) continue;
        }
        if (opts.boundaryConditions && touchesBoundary(ra, boundary) &&
            touchesBoundary(rb, boundary)) {
          continue;
        }
        out.push_back({sr.name, sr.a, sr.b, ra.unionWith(rb),
                       "gap " + std::to_string(gap) + " < " + std::to_string(sr.min)});
      }
    }
  };
  pass(srcI, srcJ);
  if (sr.a != sr.b) pass(srcJ, srcI);  // flat pairs a-rects with b-rects both ways
}

}  // namespace

std::string DrcReport::summary() const {
  std::ostringstream os;
  os << violations.size() << " violation(s) over " << shapesChecked << " shapes";
  for (std::size_t i = 0; i < violations.size() && i < 10; ++i) {
    os << "\n  " << violations[i].rule << " at " << geom::toString(violations[i].where) << ": "
       << violations[i].message;
  }
  if (violations.size() > 10) os << "\n  ...";
  return os.str();
}

DeckChecker::DeckChecker(const tech::RuleDeck& deck, DrcOptions opts)
    : deck_(&deck), opts_(opts) {
  // Resolve the rule-unit plan once per (deck, options) pair: one
  // independent unit per width rule and per spacing rule, plus the
  // transistor and contact groups. A batch of jobs compiling under the
  // same deck pays this setup once instead of per chip.
  units_.reserve(2 * (deck.widths.size() + deck.spacings.size()) + 2);
  for (std::size_t i = 0; i < deck.widths.size(); ++i) {
    units_.push_back({Unit::Kind::Width, i});
  }
  for (std::size_t i = 0; i < deck.spacings.size(); ++i) {
    units_.push_back({Unit::Kind::Spacing, i});
  }
  if (opts_.checkTransistors) units_.push_back({Unit::Kind::Transistors, 0});
  if (opts_.checkContacts) units_.push_back({Unit::Kind::Contacts, 0});
  // Polygon extensions ride AFTER the classic plan: chips without
  // polygon geometry keep their violation order byte-for-byte (each
  // polygon unit early-returns on a polygon-free layer).
  for (std::size_t i = 0; i < deck.widths.size(); ++i) {
    units_.push_back({Unit::Kind::PolyWidth, i});
  }
  for (std::size_t i = 0; i < deck.spacings.size(); ++i) {
    units_.push_back({Unit::Kind::PolySpacing, i});
  }
}

DrcReport DeckChecker::check(const cell::FlatLayout& flat, const geom::Rect& boundary) const {
  return check(flat, boundary, opts_.threads);
}

DrcReport DeckChecker::check(const cell::FlatLayout& flat, const geom::Rect& boundary,
                             unsigned threadsOverride) const {
  DrcReport rep;
  rep.shapesChecked = flat.totalCount();

  // Units share only the (const) flat layout and its prebuilt indexes,
  // so they parallelize freely; results are concatenated in unit order,
  // keeping violations in deck order no matter how many workers run.
  const auto runUnit = [&](const Unit& u, std::vector<Violation>& out) {
    switch (u.kind) {
      case Unit::Kind::Width:
        runWidthRule(deck_->widths[u.index], flat, opts_, out);
        break;
      case Unit::Kind::Spacing:
        runSpacingRule(deck_->spacings[u.index], flat, boundary, opts_, out);
        break;
      case Unit::Kind::Transistors:
        runTransistorChecks(flat, *deck_, opts_, out);
        break;
      case Unit::Kind::Contacts:
        runContactChecks(flat, *deck_, opts_, out);
        break;
      case Unit::Kind::PolyWidth:
        runPolyWidthRule(deck_->widths[u.index], flat, opts_, out);
        break;
      case Unit::Kind::PolySpacing:
        runPolySpacingRule(deck_->spacings[u.index], flat, boundary, opts_, out);
        break;
    }
  };

  std::vector<std::vector<Violation>> found(units_.size());
  if (threadsOverride != 1 && units_.size() > 1) {
    // Lazy index building is not thread-safe; prewarm before fanning out.
    if (opts_.useSpatialIndex) flat.buildIndexes();
    core::runWorkQueue(units_.size(), threadsOverride,
                       [&](std::size_t i) { runUnit(units_[i], found[i]); });
  } else {
    for (std::size_t i = 0; i < units_.size(); ++i) runUnit(units_[i], found[i]);
  }
  for (std::vector<Violation>& v : found) {
    rep.violations.insert(rep.violations.end(), std::make_move_iterator(v.begin()),
                          std::make_move_iterator(v.end()));
  }
  return rep;
}

DrcReport DeckChecker::checkHier(const cell::HierIndex& hier) const {
  return checkHier(hier, opts_.threads);
}

DrcReport DeckChecker::checkHier(const cell::HierIndex& hier,
                                 unsigned threadsOverride) const {
  DrcReport rep;
  rep.shapesChecked = hier.flatCount();
  const geom::Rect boundary = hier.top().boundary();
  const auto& us = hier.units();
  const auto& ps = hier.placements();
  const std::size_t P = ps.size();
  const bool residualUsed = hier.residual().totalCount() > 0;

  // Interacting source pairs: any two sources whose bboxes come within
  // the widest spacing margin can hold a cross-source violation; nothing
  // farther apart can. Sources are the placements plus the residual
  // (index P). Sorted for a deterministic violation order.
  geom::Coord maxMargin = 0;
  for (const auto& sr : deck_->spacings) maxMargin = std::max(maxMargin, sr.min - 1);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < P; ++i) {
    hier.forEachPlacementNear(ps[i].worldBBox, maxMargin, [&](std::size_t j) {
      if (j > i) pairs.emplace_back(i, j);
    });
  }
  if (residualUsed) {
    const geom::Rect rb = hier.residual().bbox();
    for (std::size_t i = 0; i < P; ++i) {
      if (gapBetween(rb, ps[i].worldBBox) <= maxMargin) pairs.emplace_back(i, P);
    }
  }
  std::sort(pairs.begin(), pairs.end());

  // Independent jobs: one per unique-cell interior (checked ONCE against
  // its own boundary), one for the residual, one per interaction pair.
  const std::size_t NU = us.size();
  std::vector<std::vector<Violation>> unitViol(NU);
  std::vector<Violation> residViol;
  std::vector<std::vector<Violation>> pairViol(pairs.size());
  const auto runJob = [&](std::size_t k) {
    if (k < NU) {
      unitViol[k] = check(us[k].flat, us[k].cell->boundary(), 1).violations;
    } else if (k == NU) {
      if (residualUsed) residViol = check(hier.residual(), boundary, 1).violations;
    } else {
      const auto [i, j] = pairs[k - NU - 1];
      for (const Unit& u : units_) {
        if (u.kind != Unit::Kind::Spacing) continue;
        runSpacingAcross(deck_->spacings[u.index], hier, i, j, boundary, opts_,
                         pairViol[k - NU - 1]);
      }
    }
  };
  const std::size_t total = NU + 1 + pairs.size();
  if (threadsOverride != 1 && total > 1) {
    // Pair jobs lazily query shared unit/residual indexes; prewarm so the
    // fan-out only performs const reads.
    hier.buildIndexes();
    core::runWorkQueue(total, threadsOverride, runJob);
  } else {
    for (std::size_t k = 0; k < total; ++k) runJob(k);
  }

  // Assemble: placements in order (interior violations replicated with
  // coordinates mapped through the placement), residual, then pairs.
  for (const cell::HierPlacement& p : ps) {
    for (const Violation& v : unitViol[p.unit]) {
      Violation w = v;
      w.where = p.t(v.where);
      rep.violations.push_back(std::move(w));
    }
  }
  rep.violations.insert(rep.violations.end(), std::make_move_iterator(residViol.begin()),
                        std::make_move_iterator(residViol.end()));
  for (std::vector<Violation>& pv : pairViol) {
    rep.violations.insert(rep.violations.end(), std::make_move_iterator(pv.begin()),
                          std::make_move_iterator(pv.end()));
  }
  return rep;
}

DrcReport checkFlat(const cell::FlatLayout& flat, const geom::Rect& boundary,
                    const tech::RuleDeck& deck, const DrcOptions& opts) {
  return DeckChecker(deck, opts).check(flat, boundary);
}

DrcReport checkCell(const cell::Cell& c, const tech::RuleDeck& deck, const DrcOptions& opts) {
  return checkFlat(cell::flatten(c), c.boundary(), deck, opts);
}

}  // namespace bb::drc
