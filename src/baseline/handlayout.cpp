#include "baseline/handlayout.hpp"

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"
#include "icl/eval.hpp"

#include <algorithm>

namespace bb::baseline {

namespace {
using elements::lam;
using geom::Coord;
}  // namespace

geom::Coord idealHandCoreArea(const core::CompiledChip& chip) {
  // Re-derive natural pitches from the element kinds: every kit element
  // has the contract pitch except the ALU (see AluElement::naturalPitch).
  Coord area = 0;
  for (const core::PlacedElement& pe : chip.placed) {
    Coord natural = elements::contract().naturalPitch;
    if (pe.kind == "alu") natural += lam(8);
    area += pe.column->width() * natural * chip.desc.dataWidth;
  }
  return area;
}

RoutedCoreResult buildRoutedCore(const icl::ChipDesc& desc,
                                 const std::map<std::string, bool>& vars,
                                 cell::CellLibrary& lib, icl::DiagnosticList& diags) {
  RoutedCoreResult res;
  const std::vector<icl::ElementDecl> decls = icl::assembleCore(desc, vars, diags);
  if (diags.hasErrors()) {
    res.error = "conditional assembly failed";
    return res;
  }

  elements::ElementContext ctx;
  ctx.dataWidth = desc.dataWidth;
  ctx.busCount = static_cast<int>(desc.buses.size());
  ctx.microcode = &desc.microcode;
  ctx.lib = &lib;

  struct Col {
    cell::Cell* cell;
    Coord pitch;
  };
  std::vector<Col> cols;
  for (const icl::ElementDecl& d : decls) {
    auto g = elements::makeElement(d, desc, diags);
    if (g == nullptr) {
      res.error = "bad element " + d.name;
      return res;
    }
    // Natural pitch for THIS element only: no stretching at all.
    ctx.pitch = g->naturalPitch(ctx);
    ctx.railWiden = 0;
    elements::GeneratedElement ge = g->generate(ctx);
    cols.push_back({ge.column, ctx.pitch});
  }
  if (cols.empty()) {
    res.error = "no elements";
    return res;
  }

  // Assemble with river channels where the bus tracks misalign: bit i's
  // track sits at i*pitch + offset, so adjacent columns with pitches p,q
  // need jogs up to (dataWidth-1)*|p-q| — a single-layer river channel of
  // that width plus working clearance.
  res.core = lib.create("hand_core");
  Coord x = 0;
  Coord maxH = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) {
      const Coord dp = cols[i].pitch > cols[i - 1].pitch ? cols[i].pitch - cols[i - 1].pitch
                                                         : cols[i - 1].pitch - cols[i].pitch;
      if (dp > 0) {
        const Coord maxJog = static_cast<Coord>(desc.dataWidth - 1) * dp;
        const Coord chanW = maxJog + lam(8);
        // Draw the river: per bit, one jogged metal wire per bus track.
        const auto& k = elements::contract();
        for (int bit = 0; bit < desc.dataWidth; ++bit) {
          const Coord yl = static_cast<Coord>(bit) * cols[i - 1].pitch;
          const Coord yr = static_cast<Coord>(bit) * cols[i].pitch;
          for (Coord off : {k.busAY0 + lam(1), k.busBY0 + lam(1)}) {
            geom::Path p;
            p.width = lam(3);
            p.pts = {{x, yl + off},
                     {x + chanW / 2, yl + off},
                     {x + chanW / 2, yr + off},
                     {x + chanW, yr + off}};
            res.core->addPath(tech::Layer::Metal, p);
          }
        }
        res.routingWidth += chanW;
        ++res.channels;
        x += chanW;
      }
    }
    res.core->addInstance(cols[i].cell, geom::Transform::translate({x, 0}),
                          "hand:" + cols[i].cell->name());
    x += cols[i].cell->width();
    maxH = std::max(maxH, cols[i].pitch * desc.dataWidth);
  }
  res.core->setBoundary(geom::Rect{0, 0, x, maxH});
  res.core->setDoc("hand-layout baseline core (variable pitch + river routing)");
  res.ok = true;
  res.width = x;
  res.height = maxH;
  res.area = x * maxH;
  return res;
}

}  // namespace bb::baseline
