/// \file naive_pads.hpp
/// Pad-placement baselines for the Roto-Router ablation: the strategies a
/// designer (or a lesser compiler) would use instead.

#pragma once

#include "core/chip.hpp"

namespace bb::baseline {

struct PadStrategyReport {
  geom::Coord naive = 0;      ///< clockwise allocation, no rotation
  geom::Coord greedy = 0;     ///< nearest-free-slot heuristic
  geom::Coord rotoRouter = 0; ///< the paper's rotation search
};

/// Re-run the three allocation strategies over the chip's actual pad
/// requests and slot ring, reporting total Manhattan wire length each.
[[nodiscard]] PadStrategyReport comparePadStrategies(const core::CompiledChip& chip);

}  // namespace bb::baseline
