/// \file handlayout.hpp
/// The "hand layout" comparators behind the paper's area claim ("±10% of
/// the area of a chip produced by hand using the structured design
/// methodology") and behind the stretch-vs-routing design decision ("to
/// save the space and costly routing needed if cell widths vary").
///
/// Two baselines:
///   * idealHandCoreArea — a generous lower bound for a hand designer:
///     every element at its own natural pitch, zero routing overhead.
///   * buildRoutedCore — the real alternative to stretching: columns kept
///     at natural pitch and joined by single-layer river-routing channels
///     wherever the bus tracks misalign.

#pragma once

#include "core/chip.hpp"
#include "icl/ast.hpp"

namespace bb::baseline {

/// Idealized hand area of the core: sum of element column areas at their
/// natural pitches (no pitch-matching waste, no routing).
[[nodiscard]] geom::Coord idealHandCoreArea(const core::CompiledChip& chip);

struct RoutedCoreResult {
  bool ok = false;
  std::string error;
  geom::Coord width = 0;
  geom::Coord height = 0;
  geom::Coord area = 0;
  geom::Coord routingWidth = 0;  ///< total river-channel width inserted
  std::size_t channels = 0;
  cell::Cell* core = nullptr;  ///< owned by `lib`
};

/// Build the variable-pitch core: each element at natural pitch, river
/// channels between columns whose bus tracks misalign. `lib` receives the
/// cells.
[[nodiscard]] RoutedCoreResult buildRoutedCore(const icl::ChipDesc& desc,
                                               const std::map<std::string, bool>& vars,
                                               cell::CellLibrary& lib,
                                               icl::DiagnosticList& diags);

}  // namespace bb::baseline
