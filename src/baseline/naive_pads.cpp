#include "baseline/naive_pads.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bb::baseline {

PadStrategyReport comparePadStrategies(const core::CompiledChip& chip) {
  // The compiled chip already knows every (slot pin, target) pair; what
  // changed between strategies is only the assignment. Rebuild the two
  // position sets from the placements.
  std::vector<geom::Point> pins;
  std::vector<geom::Point> targets;
  for (const core::PadPlacement& p : chip.pads) {
    pins.push_back(p.pinAt);
    targets.push_back(p.target);
  }
  const std::size_t n = pins.size();
  PadStrategyReport rep;
  if (n == 0) return rep;

  // Clockwise order of targets around the centroid (the paper's sort).
  geom::Point c{0, 0};
  for (const geom::Point& t : targets) c += t;
  c = {c.x / static_cast<geom::Coord>(n), c.y / static_cast<geom::Coord>(n)};
  auto key = [&](geom::Point p) {
    double a = std::atan2(static_cast<double>(p.x - c.x), static_cast<double>(p.y - c.y));
    if (a < 0) a += 2 * 3.14159265358979323846;
    return a;
  };
  std::vector<std::size_t> tOrder(n), sOrder(n);
  for (std::size_t i = 0; i < n; ++i) tOrder[i] = sOrder[i] = i;
  std::sort(tOrder.begin(), tOrder.end(),
            [&](std::size_t a, std::size_t b) { return key(targets[a]) < key(targets[b]); });
  std::sort(sOrder.begin(), sOrder.end(),
            [&](std::size_t a, std::size_t b) { return key(pins[a]) < key(pins[b]); });

  // Naive: clockwise allocation with no rotation.
  for (std::size_t i = 0; i < n; ++i) {
    rep.naive += geom::manhattan(pins[sOrder[i]], targets[tOrder[i]]);
  }

  // Greedy nearest free slot.
  std::vector<bool> used(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point t = targets[tOrder[i]];
    geom::Coord best = 0;
    std::size_t bestJ = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (used[j]) continue;
      const geom::Coord d = geom::manhattan(pins[j], t);
      if (bestJ == n || d < best) {
        best = d;
        bestJ = j;
      }
    }
    used[bestJ] = true;
    rep.greedy += best;
  }

  // Roto-Router: best rotation of the clockwise allocation.
  geom::Coord bestLen = 0;
  for (std::size_t r = 0; r < n; ++r) {
    geom::Coord len = 0;
    for (std::size_t i = 0; i < n; ++i) {
      len += geom::manhattan(pins[sOrder[(i + r) % n]], targets[tOrder[i]]);
    }
    if (r == 0 || len < bestLen) bestLen = len;
  }
  rep.rotoRouter = bestLen;
  return rep;
}

}  // namespace bb::baseline
