/// \file flatten.hpp
/// Hierarchy flattening: expand a cell and all sub-instances into
/// per-layer primitive lists in a single coordinate system. DRC,
/// extraction and the mask writers operate on the flattened form.

#pragma once

#include "cell/cell.hpp"
#include "geom/rect_index.hpp"

#include <array>
#include <optional>
#include <vector>

namespace bb::cell {

/// Flattened artwork: rectangles per layer (paths are decomposed into
/// rectangles; polygons are kept whole).
///
/// Each layer carries a lazily-built `geom::RectIndex` (see `indexOn`) so
/// the geometric kernels that share one FlatLayout — DRC, extraction,
/// emission — also share one spatial index per layer instead of
/// rebuilding (or worse, brute-scanning) per consumer.
struct FlatLayout {
  std::array<std::vector<geom::Rect>, tech::kLayerCount> rects;
  std::vector<std::pair<tech::Layer, geom::Polygon>> polygons;

  /// Mutable access invalidates the layer's cached index.
  [[nodiscard]] std::vector<geom::Rect>& on(tech::Layer l) noexcept {
    const auto i = static_cast<std::size_t>(l);
    indexCache_[i].reset();
    return rects[i];
  }
  [[nodiscard]] const std::vector<geom::Rect>& on(tech::Layer l) const noexcept {
    return rects[static_cast<std::size_t>(l)];
  }

  /// Spatial index over `on(l)`, built on first use and cached until the
  /// layer is next mutated through the non-const `on()`. Lazy building is
  /// not thread-safe: call `buildIndexes()` first when several threads
  /// will query the same FlatLayout (queries themselves are const and
  /// safe to share).
  [[nodiscard]] const geom::RectIndex& indexOn(tech::Layer l) const;

  /// Prewarm every layer's index (for parallel consumers).
  void buildIndexes() const;

  [[nodiscard]] std::size_t totalCount() const noexcept;
  [[nodiscard]] geom::Rect bbox() const noexcept;

  /// Resident-size estimate: rect storage, polygon vertices, and any
  /// layer indexes built so far — what a byte-budgeted cache should
  /// charge for holding this layout.
  [[nodiscard]] std::size_t approxBytes() const noexcept;

 private:
  mutable std::array<std::optional<geom::RectIndex>, tech::kLayerCount> indexCache_;
};

/// Flatten `c` (optionally pre-transformed by `t`).
[[nodiscard]] FlatLayout flatten(const Cell& c, const geom::Transform& t = {});

/// Flatten into an existing FlatLayout (used when assembling a chip from
/// several placed cells).
void flattenInto(FlatLayout& out, const Cell& c, const geom::Transform& t = {});

}  // namespace bb::cell
