/// \file flatten.hpp
/// Hierarchy flattening: expand a cell and all sub-instances into
/// per-layer primitive lists in a single coordinate system. DRC,
/// extraction and the mask writers operate on the flattened form.

#pragma once

#include "cell/cell.hpp"

#include <array>
#include <vector>

namespace bb::cell {

/// Flattened artwork: rectangles per layer (paths are decomposed into
/// rectangles; polygons are kept whole).
struct FlatLayout {
  std::array<std::vector<geom::Rect>, tech::kLayerCount> rects;
  std::vector<std::pair<tech::Layer, geom::Polygon>> polygons;

  [[nodiscard]] std::vector<geom::Rect>& on(tech::Layer l) noexcept {
    return rects[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const std::vector<geom::Rect>& on(tech::Layer l) const noexcept {
    return rects[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] std::size_t totalCount() const noexcept;
  [[nodiscard]] geom::Rect bbox() const noexcept;
};

/// Flatten `c` (optionally pre-transformed by `t`).
[[nodiscard]] FlatLayout flatten(const Cell& c, const geom::Transform& t = {});

/// Flatten into an existing FlatLayout (used when assembling a chip from
/// several placed cells).
void flattenInto(FlatLayout& out, const Cell& c, const geom::Transform& t = {});

}  // namespace bb::cell
