#include "cell/flatten.hpp"

namespace bb::cell {

const geom::RectIndex& FlatLayout::indexOn(tech::Layer l) const {
  const auto i = static_cast<std::size_t>(l);
  if (!indexCache_[i]) indexCache_[i].emplace(rects[i]);
  return *indexCache_[i];
}

void FlatLayout::buildIndexes() const {
  for (std::size_t i = 0; i < tech::kLayerCount; ++i) {
    if (!indexCache_[i]) indexCache_[i].emplace(rects[i]);
  }
}

std::size_t FlatLayout::totalCount() const noexcept {
  std::size_t n = polygons.size();
  for (const auto& v : rects) n += v.size();
  return n;
}

geom::Rect FlatLayout::bbox() const noexcept {
  geom::Rect acc;
  bool first = true;
  auto grow = [&](const geom::Rect& r) {
    if (first) {
      acc = r;
      first = false;
    } else {
      acc = acc.unionWith(r);
    }
  };
  for (const auto& v : rects) {
    for (const geom::Rect& r : v) grow(r);
  }
  for (const auto& [l, p] : polygons) grow(p.bbox());
  return acc;
}

std::size_t FlatLayout::approxBytes() const noexcept {
  std::size_t b = 0;
  for (const auto& v : rects) b += v.size() * sizeof(geom::Rect);
  for (const auto& [l, p] : polygons) {
    (void)l;
    b += sizeof(p) + p.pts.size() * sizeof(geom::Point);
  }
  for (const auto& idx : indexCache_) {
    if (idx) b += idx->approxBytes();
  }
  return b;
}

void flattenInto(FlatLayout& out, const Cell& c, const geom::Transform& t) {
  for (const Shape& s : c.shapes()) {
    std::visit(
        [&](const auto& g) {
          using T = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<T, geom::Rect>) {
            out.on(s.layer).push_back(t(g));
          } else if constexpr (std::is_same_v<T, geom::Polygon>) {
            out.polygons.emplace_back(s.layer, t(g));
          } else {
            // Transform the path, then decompose: D4 transforms keep
            // segments axis-parallel so the decomposition stays exact.
            const geom::Path tp = t(g);
            for (const geom::Rect& r : tp.toRects()) out.on(s.layer).push_back(r);
          }
        },
        s.geo);
  }
  for (const Instance& i : c.instances()) {
    flattenInto(out, *i.cell, t * i.placement);
  }
}

FlatLayout flatten(const Cell& c, const geom::Transform& t) {
  FlatLayout out;
  flattenInto(out, c, t);
  return out;
}

}  // namespace bb::cell
