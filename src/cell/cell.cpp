#include "cell/cell.hpp"

#include "tech/rules.hpp"

#include <cassert>

namespace bb::cell {

std::string_view flavorName(BristleFlavor f) noexcept {
  switch (f) {
    case BristleFlavor::BusA: return "busA";
    case BristleFlavor::BusB: return "busB";
    case BristleFlavor::Control: return "control";
    case BristleFlavor::Power: return "power";
    case BristleFlavor::Ground: return "ground";
    case BristleFlavor::Clock1: return "phi1";
    case BristleFlavor::Clock2: return "phi2";
    case BristleFlavor::PadIn: return "pad-in";
    case BristleFlavor::PadOut: return "pad-out";
    case BristleFlavor::PadBidir: return "pad-bidir";
    case BristleFlavor::PadVdd: return "pad-vdd";
    case BristleFlavor::PadGnd: return "pad-gnd";
    case BristleFlavor::PadClock: return "pad-clock";
    case BristleFlavor::Microcode: return "microcode";
    case BristleFlavor::Probe: return "probe";
  }
  return "?";
}

bool isPadRequest(BristleFlavor f) noexcept {
  switch (f) {
    case BristleFlavor::PadIn:
    case BristleFlavor::PadOut:
    case BristleFlavor::PadBidir:
    case BristleFlavor::PadVdd:
    case BristleFlavor::PadGnd:
    case BristleFlavor::PadClock:
    case BristleFlavor::Microcode:
    case BristleFlavor::Probe:
      return true;
    default:
      return false;
  }
}

std::string_view sideName(Side s) noexcept {
  switch (s) {
    case Side::North: return "north";
    case Side::East: return "east";
    case Side::South: return "south";
    case Side::West: return "west";
  }
  return "?";
}

geom::Rect Shape::bbox() const noexcept {
  return std::visit(
      [](const auto& g) -> geom::Rect {
        using T = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<T, geom::Rect>) {
          return g;
        } else {
          return g.bbox();
        }
      },
      geo);
}

void Cell::addWire(tech::Layer l, geom::Point a, geom::Point b, geom::Coord w) {
  geom::Path p;
  p.width = w;
  p.pts = {a, b};
  addPath(l, std::move(p));
}

void Cell::addContact(geom::Point c, tech::Layer lower, tech::Layer upper) {
  const auto& comp = tech::meadConwayRules().composite;
  const geom::Coord cut = comp.contactSize;
  const geom::Coord sur = comp.contactSurround;
  addRect(tech::Layer::Contact, geom::Rect::fromCenter(c, cut, cut));
  addRect(lower, geom::Rect::fromCenter(c, cut + 2 * sur, cut + 2 * sur));
  addRect(upper, geom::Rect::fromCenter(c, cut + 2 * sur, cut + 2 * sur));
}

void Cell::addBuriedContact(geom::Point c) {
  const auto& comp = tech::meadConwayRules().composite;
  const geom::Coord cut = comp.contactSize;
  const geom::Coord sur = comp.contactSurround;
  addRect(tech::Layer::Buried, geom::Rect::fromCenter(c, cut + 2 * sur, cut + 2 * sur));
  addRect(tech::Layer::Poly, geom::Rect::fromCenter(c, cut + 2 * sur, cut + 2 * sur));
  addRect(tech::Layer::Diffusion, geom::Rect::fromCenter(c, cut + 2 * sur, cut + 2 * sur));
}

void Cell::addInstance(const Cell* c, geom::Transform t, std::string instName) {
  assert(c != nullptr && "instance of null cell");
  assert(c != this && "self-instantiation");
  instances_.push_back(Instance{c, t, std::move(instName)});
}

void Cell::addStretch(StretchAxis axis, geom::Coord at, std::string sname) {
  stretches_.push_back(StretchLine{axis, at, std::move(sname)});
}

geom::Rect Cell::boundary() const noexcept {
  if (hasBoundary_) return boundary_;
  return shapeBBox();
}

geom::Rect Cell::shapeBBox() const noexcept {
  geom::Rect acc;
  bool first = true;
  auto grow = [&](const geom::Rect& r) {
    if (first) {
      acc = r;
      first = false;
    } else {
      acc = acc.unionWith(r);
    }
  };
  for (const Shape& s : shapes_) grow(s.bbox());
  for (const Instance& i : instances_) grow(i.placement(i.cell->boundary()));
  return acc;
}

double Cell::powerDemand() const noexcept {
  double total = ownPower_ua_;
  for (const Instance& i : instances_) total += i.cell->powerDemand();
  return total;
}

std::size_t Cell::totalShapeCount() const noexcept {
  std::size_t n = shapes_.size();
  for (const Instance& i : instances_) n += i.cell->totalShapeCount();
  return n;
}

const Bristle* Cell::findBristle(std::string_view bname) const noexcept {
  for (const Bristle& b : bristles_) {
    if (b.name == bname) return &b;
  }
  return nullptr;
}

}  // namespace bb::cell
