/// \file library.hpp
/// Cell ownership and lookup. The paper stores cell definitions in disk
/// files "to allow for the use of common cell libraries and sharing of
/// data"; here a CellLibrary owns every Cell created during a compile and
/// provides name lookup, plus save/load of cells in a simple textual cell
/// design language (the equivalent of the paper's "standard cell design
/// language" for entering low-level cells).

#pragma once

#include "cell/cell.hpp"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace bb::cell {

/// Owns cells; pointers returned stay valid for the library's lifetime.
class CellLibrary {
 public:
  CellLibrary() = default;
  CellLibrary(const CellLibrary&) = delete;
  CellLibrary& operator=(const CellLibrary&) = delete;
  CellLibrary(CellLibrary&&) = default;
  CellLibrary& operator=(CellLibrary&&) = default;

  /// Create a new empty cell. Names must be unique; a duplicate name gets
  /// a "#n" suffix so procedural generators can re-run freely.
  Cell* create(std::string name);

  /// Adopt an already-built cell (e.g. the result of a stretch).
  Cell* adopt(Cell c);

  [[nodiscard]] const Cell* find(std::string_view name) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  /// Iterate in creation order.
  [[nodiscard]] const std::vector<Cell*>& all() const noexcept { return order_; }

  /// Deep copy: every cell duplicated (same names, same creation order)
  /// with all instance references retargeted at the copies, so the clone
  /// is a fully independent hierarchy. When `remap` is non-null it
  /// receives the old-cell -> new-cell mapping, so callers holding raw
  /// pointers into this library (a CompiledChip's top/core/decoder, the
  /// placed-element columns) can retarget them too. This is what makes a
  /// compiled chip checkpointable for incremental recompilation.
  [[nodiscard]] CellLibrary clone(
      std::unordered_map<const Cell*, Cell*>* remap = nullptr) const;

  /// Serialize one cell (shapes, bristles, stretch lines, boundary) in the
  /// textual cell design language. Instances are written by reference.
  [[nodiscard]] std::string saveCell(const Cell& c) const;

  /// Parse a cell definition produced by saveCell. Referenced sub-cells
  /// must already exist in the library. Returns nullptr + error on
  /// malformed input.
  struct LoadResult {
    Cell* cell = nullptr;
    std::string error;
  };
  LoadResult loadCell(std::string_view text);

 private:
  std::map<std::string, std::unique_ptr<Cell>, std::less<>> cells_;
  std::vector<Cell*> order_;
};

}  // namespace bb::cell
