#include "cell/library.hpp"

#include <sstream>

namespace bb::cell {

Cell* CellLibrary::create(std::string name) {
  std::string unique = name;
  int n = 1;
  while (cells_.contains(unique)) {
    unique = name + "#" + std::to_string(n++);
  }
  auto cell = std::make_unique<Cell>(unique);
  Cell* raw = cell.get();
  cells_.emplace(std::move(unique), std::move(cell));
  order_.push_back(raw);
  return raw;
}

Cell* CellLibrary::adopt(Cell c) {
  std::string unique = c.name();
  int n = 1;
  while (cells_.contains(unique)) {
    unique = c.name() + "#" + std::to_string(n++);
  }
  auto cell = std::make_unique<Cell>(std::move(c));
  Cell* raw = cell.get();
  cells_.emplace(std::move(unique), std::move(cell));
  order_.push_back(raw);
  return raw;
}

CellLibrary CellLibrary::clone(std::unordered_map<const Cell*, Cell*>* remap) const {
  CellLibrary out;
  std::unordered_map<const Cell*, Cell*> map;
  map.reserve(order_.size());
  // Keys can differ from Cell::name() (adopt() de-duplicates the key but
  // keeps the cell's own name), so copy the map entries verbatim instead
  // of re-deriving keys.
  std::unordered_map<const Cell*, const std::string*> keyOf;
  keyOf.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) keyOf.emplace(cell.get(), &key);
  for (const Cell* c : order_) {
    auto copy = std::make_unique<Cell>(*c);
    map.emplace(c, copy.get());
    out.order_.push_back(copy.get());
    out.cells_.emplace(*keyOf.at(c), std::move(copy));
  }
  // Retarget every instance reference into the clone. A reference to a
  // cell outside this library (none today) is left as-is.
  for (Cell* c : out.order_) {
    for (Instance& inst : c->instances_) {
      const auto it = map.find(inst.cell);
      if (it != map.end()) inst.cell = it->second;
    }
  }
  if (remap != nullptr) *remap = std::move(map);
  return out;
}

const Cell* CellLibrary::find(std::string_view name) const noexcept {
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : it->second.get();
}

namespace {

void writePoint(std::ostream& os, geom::Point p) { os << p.x << ' ' << p.y; }

}  // namespace

std::string CellLibrary::saveCell(const Cell& c) const {
  std::ostringstream os;
  os << "cell " << c.name() << "\n";
  const geom::Rect b = c.boundary();
  os << "boundary " << b.x0 << ' ' << b.y0 << ' ' << b.x1 << ' ' << b.y1 << "\n";
  if (!c.doc().empty()) os << "doc " << c.doc() << "\n";
  if (c.powerDemand() > 0) os << "power " << c.powerDemand() << "\n";
  for (const Shape& s : c.shapes()) {
    std::visit(
        [&](const auto& g) {
          using T = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<T, geom::Rect>) {
            os << "rect " << tech::cifName(s.layer) << ' ' << g.x0 << ' ' << g.y0 << ' ' << g.x1
               << ' ' << g.y1 << "\n";
          } else if constexpr (std::is_same_v<T, geom::Polygon>) {
            os << "poly " << tech::cifName(s.layer);
            for (geom::Point p : g.pts) {
              os << ' ';
              writePoint(os, p);
            }
            os << "\n";
          } else {
            os << "wire " << tech::cifName(s.layer) << ' ' << g.width;
            for (geom::Point p : g.pts) {
              os << ' ';
              writePoint(os, p);
            }
            os << "\n";
          }
        },
        s.geo);
  }
  for (const Bristle& br : c.bristles()) {
    os << "bristle " << br.name << ' ' << flavorName(br.flavor) << ' ' << sideName(br.side) << ' '
       << br.pos.x << ' ' << br.pos.y << ' ' << tech::cifName(br.layer) << ' ' << br.width << "\n";
  }
  for (const StretchLine& sl : c.stretchLines()) {
    os << "stretch " << (sl.axis == StretchAxis::X ? "x" : "y") << ' ' << sl.at << ' '
       << (sl.name.empty() ? std::string("-") : sl.name) << "\n";
  }
  for (const Instance& i : c.instances()) {
    os << "inst " << i.cell->name() << ' ' << geom::name(i.placement.orient) << ' '
       << i.placement.offset.x << ' ' << i.placement.offset.y << "\n";
  }
  os << "end\n";
  return os.str();
}

CellLibrary::LoadResult CellLibrary::loadCell(std::string_view text) {
  LoadResult res;
  std::istringstream is{std::string(text)};
  std::string line;
  Cell* cell = nullptr;
  int lineNo = 0;
  auto fail = [&](const std::string& msg) {
    res.cell = nullptr;
    res.error = "line " + std::to_string(lineNo) + ": " + msg;
    return res;
  };
  while (std::getline(is, line)) {
    ++lineNo;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw.empty() || kw[0] == '#') continue;
    if (kw == "cell") {
      std::string name;
      if (!(ls >> name)) return fail("cell needs a name");
      cell = create(name);
      continue;
    }
    if (cell == nullptr) return fail("expected 'cell <name>' first");
    if (kw == "boundary") {
      geom::Coord a, b, c2, d;
      if (!(ls >> a >> b >> c2 >> d)) return fail("boundary needs 4 coords");
      cell->setBoundary(geom::Rect{a, b, c2, d});
    } else if (kw == "doc") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      cell->setDoc(rest);
    } else if (kw == "power") {
      double p = 0;
      if (!(ls >> p)) return fail("power needs a number");
      cell->setOwnPower(p);
    } else if (kw == "rect") {
      std::string lay;
      geom::Coord a, b, c2, d;
      if (!(ls >> lay >> a >> b >> c2 >> d)) return fail("rect needs layer + 4 coords");
      auto l = tech::layerFromCif(lay);
      if (!l) return fail("unknown layer " + lay);
      cell->addRect(*l, geom::Rect{a, b, c2, d});
    } else if (kw == "poly") {
      std::string lay;
      if (!(ls >> lay)) return fail("poly needs layer");
      auto l = tech::layerFromCif(lay);
      if (!l) return fail("unknown layer " + lay);
      geom::Polygon p;
      geom::Coord x, y;
      while (ls >> x >> y) p.pts.push_back({x, y});
      if (p.pts.size() < 3) return fail("poly needs >= 3 points");
      cell->addPolygon(*l, std::move(p));
    } else if (kw == "wire") {
      std::string lay;
      geom::Coord w;
      if (!(ls >> lay >> w)) return fail("wire needs layer + width");
      auto l = tech::layerFromCif(lay);
      if (!l) return fail("unknown layer " + lay);
      geom::Path p;
      p.width = w;
      geom::Coord x, y;
      while (ls >> x >> y) p.pts.push_back({x, y});
      if (p.pts.empty()) return fail("wire needs points");
      cell->addPath(*l, std::move(p));
    } else if (kw == "bristle") {
      std::string name, flav, side, lay;
      geom::Coord x, y, w;
      if (!(ls >> name >> flav >> side >> x >> y >> lay >> w)) {
        return fail("bristle needs name flavor side x y layer width");
      }
      Bristle b;
      b.name = name;
      bool found = false;
      for (int fi = 0; fi <= static_cast<int>(BristleFlavor::Probe); ++fi) {
        if (flavorName(static_cast<BristleFlavor>(fi)) == flav) {
          b.flavor = static_cast<BristleFlavor>(fi);
          found = true;
          break;
        }
      }
      if (!found) return fail("unknown flavor " + flav);
      if (side == "north") b.side = Side::North;
      else if (side == "east") b.side = Side::East;
      else if (side == "south") b.side = Side::South;
      else if (side == "west") b.side = Side::West;
      else return fail("unknown side " + side);
      auto l = tech::layerFromCif(lay);
      if (!l) return fail("unknown layer " + lay);
      b.layer = *l;
      b.pos = {x, y};
      b.width = w;
      cell->addBristle(std::move(b));
    } else if (kw == "stretch") {
      std::string axis, name;
      geom::Coord at;
      if (!(ls >> axis >> at >> name)) return fail("stretch needs axis at name");
      cell->addStretch(axis == "x" ? StretchAxis::X : StretchAxis::Y, at,
                       name == "-" ? std::string() : name);
    } else if (kw == "inst") {
      std::string ref, orient;
      geom::Coord x, y;
      if (!(ls >> ref >> orient >> x >> y)) return fail("inst needs ref orient x y");
      const Cell* sub = find(ref);
      if (sub == nullptr) return fail("unknown sub-cell " + ref);
      geom::Orientation o = geom::Orientation::R0;
      bool ok = false;
      for (geom::Orientation cand : geom::kAllOrientations) {
        if (geom::name(cand) == orient) {
          o = cand;
          ok = true;
          break;
        }
      }
      if (!ok) return fail("unknown orientation " + orient);
      cell->addInstance(sub, geom::Transform{o, {x, y}});
    } else if (kw == "end") {
      res.cell = cell;
      return res;
    } else {
      return fail("unknown keyword " + kw);
    }
  }
  if (cell != nullptr) {
    res.cell = cell;
    return res;
  }
  return fail("empty cell definition");
}

}  // namespace bb::cell
