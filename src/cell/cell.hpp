/// \file cell.hpp
/// The procedural cell model.
///
/// The fundamental unit of Bristle Blocks is the *cell*: geometric
/// primitives (boxes, lines, polygons on mask layers) plus references to
/// other cells. Unlike a database cell — a static picture — a Bristle
/// Blocks cell is produced by a little program and carries the hooks that
/// make it computable: *bristles* (typed connection points along its
/// edges), *stretch lines* (designated corridors along which the cell can
/// be stretched without violating design rules), and a *power demand*
/// that the compiler aggregates when sizing supply rails.

#pragma once

#include "geom/geometry.hpp"
#include "geom/transform.hpp"
#include "tech/layers.hpp"

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bb::cell {

/// What a connection point is *for*. The flavor decides which compiler
/// pass binds it: bus bristles abut in Pass 1, control bristles get decode
/// buffers in Pass 2, pad-request bristles get pads and routing in Pass 3.
enum class BristleFlavor : std::uint8_t {
  BusA,       ///< upper data bus
  BusB,       ///< lower data bus
  Control,    ///< control line driven by a decoder buffer
  Power,      ///< Vdd rail
  Ground,     ///< GND rail
  Clock1,     ///< phi-1 (bus transfer phase)
  Clock2,     ///< phi-2 (element operation phase)
  PadIn,      ///< requests an input pad
  PadOut,     ///< requests an output pad
  PadBidir,   ///< requests a bidirectional pad
  PadVdd,     ///< requests the Vdd supply pad
  PadGnd,     ///< requests the GND supply pad
  PadClock,   ///< requests a clock-driver pad
  Microcode,  ///< decoder input bit (becomes a pad in Pass 3)
  Probe,      ///< prototype-only observation point (conditional assembly)
};

[[nodiscard]] std::string_view flavorName(BristleFlavor f) noexcept;
/// True for flavors that request a pad from Pass 3.
[[nodiscard]] bool isPadRequest(BristleFlavor f) noexcept;

/// Which edge of the cell the bristle sits on.
enum class Side : std::uint8_t { North, East, South, West };

[[nodiscard]] std::string_view sideName(Side s) noexcept;

/// A connection point — a "bristle" along a cell edge.
///
/// Bristles keep local data local and global data global: the cell states
/// *where* it must be contacted and *what kind* of thing must arrive
/// there; the compiler decides everything global (which pad, where placed,
/// how routed) later.
struct Bristle {
  std::string name;
  BristleFlavor flavor = BristleFlavor::Control;
  Side side = Side::North;
  geom::Point pos;           ///< position on the cell boundary (cell coords)
  tech::Layer layer = tech::Layer::Metal;
  geom::Coord width = 0;     ///< connecting wire width
  /// For Control: the decode function over microcode fields, e.g.
  /// "aluop==2" — one entry of Pass 2's text array.
  std::string decode;
  /// For Control: which clock phase qualifies the signal (1 or 2).
  int timingPhase = 1;
  /// For signals that must reach the sim/logic model: net name.
  std::string net;
};

/// One mask shape: a rectangle, polygon or wire on a layer.
struct Shape {
  tech::Layer layer = tech::Layer::Metal;
  std::variant<geom::Rect, geom::Polygon, geom::Path> geo;

  [[nodiscard]] geom::Rect bbox() const noexcept;
};

class Cell;

/// A placed reference to another cell.
struct Instance {
  const Cell* cell = nullptr;  ///< non-owning; a CellLibrary owns all cells
  geom::Transform placement;
  std::string name;
};

/// Axis along which a stretch line cuts the cell.
/// `X` = a vertical line at x = at (stretching widens the cell in x);
/// `Y` = a horizontal line at y = at (stretching grows the cell in y).
enum class StretchAxis : std::uint8_t { X, Y };

/// A declared stretch line. Generators place them in corridors free of
/// sub-instances so stretching is always the paper's "painless operation".
struct StretchLine {
  StretchAxis axis = StretchAxis::Y;
  geom::Coord at = 0;
  std::string name;  ///< e.g. "pitch", "vdd-widen"
};

/// A procedural cell's materialized form.
///
/// Element generators build `Cell`s; the compiler stretches, places and
/// connects them. A cell's *boundary* is its abutment box — the contract
/// area neighbours may touch — which can be larger than the shape bbox.
class Cell {
 public:
  explicit Cell(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- construction -------------------------------------------------
  void addRect(tech::Layer l, const geom::Rect& r) { shapes_.push_back({l, r}); }
  void addPolygon(tech::Layer l, geom::Polygon p) { shapes_.push_back({l, std::move(p)}); }
  void addPath(tech::Layer l, geom::Path p) { shapes_.push_back({l, std::move(p)}); }
  /// Convenience: a wire from a to b (axis-parallel) of width w.
  void addWire(tech::Layer l, geom::Point a, geom::Point b, geom::Coord w);
  /// Convenience: contact cut + surround on both connected layers at `center`.
  void addContact(geom::Point center, tech::Layer lower, tech::Layer upper);
  /// Convenience: a butting/buried contact between poly and diffusion.
  void addBuriedContact(geom::Point center);
  void addInstance(const Cell* c, geom::Transform t, std::string instName = {});
  void addBristle(Bristle b) { bristles_.push_back(std::move(b)); }
  void addStretch(StretchAxis axis, geom::Coord at, std::string sname = {});
  void setBoundary(const geom::Rect& r) noexcept { boundary_ = r; hasBoundary_ = true; }
  /// Static supply current drawn by this cell's own pull-ups, in uA
  /// (sub-instances are aggregated by powerDemand()).
  void setOwnPower(double ua) noexcept { ownPower_ua_ = ua; }
  void addOwnPower(double ua) noexcept { ownPower_ua_ += ua; }
  /// One-line description used by the Text representation.
  void setDoc(std::string doc) { doc_ = std::move(doc); }

  // --- inspection ----------------------------------------------------
  [[nodiscard]] const std::vector<Shape>& shapes() const noexcept { return shapes_; }
  [[nodiscard]] const std::vector<Instance>& instances() const noexcept { return instances_; }
  [[nodiscard]] const std::vector<Bristle>& bristles() const noexcept { return bristles_; }
  [[nodiscard]] std::vector<Bristle>& bristles() noexcept { return bristles_; }
  [[nodiscard]] const std::vector<StretchLine>& stretchLines() const noexcept {
    return stretches_;
  }
  [[nodiscard]] const std::string& doc() const noexcept { return doc_; }

  /// The abutment box: explicit boundary if set, else the geometric bbox.
  [[nodiscard]] geom::Rect boundary() const noexcept;
  /// True when `boundary()` is a declared abutment contract rather than
  /// the implicit shape bbox (lint's boundary exemption needs to know).
  [[nodiscard]] bool hasExplicitBoundary() const noexcept { return hasBoundary_; }
  /// Bounding box of all shapes and (transformed) sub-instances.
  [[nodiscard]] geom::Rect shapeBBox() const noexcept;

  [[nodiscard]] geom::Coord width() const noexcept { return boundary().width(); }
  [[nodiscard]] geom::Coord height() const noexcept { return boundary().height(); }

  /// Total static current in uA: own pull-ups plus all sub-instances.
  [[nodiscard]] double powerDemand() const noexcept;

  /// Count of shapes including those in sub-instances (hierarchy weight).
  [[nodiscard]] std::size_t totalShapeCount() const noexcept;

  /// Find the first bristle with the given name, or nullptr.
  [[nodiscard]] const Bristle* findBristle(std::string_view bname) const noexcept;

  // Stretch needs to rewrite everything; it lives in stretch.cpp and is a
  // friend so the cell's invariants stay in one file.
  friend Cell stretched(const Cell& c, StretchAxis axis, geom::Coord at, geom::Coord delta,
                        std::string newName);
  // Library cloning must retarget Instance::cell pointers into the clone.
  friend class CellLibrary;

 private:
  std::string name_;
  std::vector<Shape> shapes_;
  std::vector<Instance> instances_;
  std::vector<Bristle> bristles_;
  std::vector<StretchLine> stretches_;
  geom::Rect boundary_{};
  bool hasBoundary_ = false;
  double ownPower_ua_ = 0.0;
  std::string doc_;
};

}  // namespace bb::cell
