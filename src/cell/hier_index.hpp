/// \file hier_index.hpp
/// Hierarchy-aware spatial decomposition of a cell tree — the data
/// structure behind the hierarchical DRC/extraction/emission paths.
///
/// `flatten()` expands every instance, so memory and analysis work scale
/// with *instance count*. Bristle-Blocks chips are arrays of repeated
/// parameterized cells (datapath bit slices, decoder columns, pad rings),
/// so the same hardware is described far more compactly as
///
///   * a set of *units*: the unique repeated cells, each flattened ONCE
///     (its whole subtree) into local coordinates, with the usual lazy
///     per-layer `geom::RectIndex`es;
///   * a list of *placements*: (unit, `geom::Transform`) pairs locating
///     every occurrence in world coordinates, spatially indexed by their
///     world bounding boxes;
///   * a *residual* `FlatLayout`: geometry owned by cells that occur only
///     once (the top cell's own wiring, one-off blocks), flattened into
///     world coordinates as before.
///
/// Every consumer that used to walk the full flatten can instead process
/// each unit's interior once and handle placements through transform-aware
/// queries: `drc::DeckChecker::checkHier`, `extract::extractHier` and the
/// `layout::View` hierarchical constructor all run off this index, so
/// their cost scales with *unique-cell* geometry plus the interaction
/// regions between placements — the ROADMAP's "stop flattening the world"
/// refactor.
///
/// Thread safety: construction does all the flattening eagerly; after
/// `buildIndexes()` every query is a const read and safe to share. The
/// instance-materialization counter is atomic (the `svc` viewport tests
/// assert through it that a window only resolves the placements whose
/// bounding boxes touch it).

#pragma once

#include "cell/cell.hpp"
#include "cell/flatten.hpp"
#include "geom/rect_index.hpp"
#include "geom/transform.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace bb::cell {

/// One unique repeated cell, flattened once in local coordinates.
struct HierUnit {
  const Cell* cell = nullptr;
  FlatLayout flat;            ///< whole-subtree flatten, local coords
  geom::Rect bbox;            ///< bbox of `flat` (local coords)
  std::size_t placementCount = 0;
};

/// One occurrence of a unit in world coordinates.
struct HierPlacement {
  std::size_t unit = 0;
  geom::Transform t;          ///< unit-local -> world
  geom::Rect worldBBox;       ///< t(unit bbox)
};

class HierIndex {
 public:
  /// Decompose `top`. A cell becomes a reuse unit when it occurs more
  /// than once in the fully-expanded tree and its subtree holds at least
  /// `minUnitShapes` primitives (tiny cells are cheaper re-flattened than
  /// indexed); everything else is expanded into the residual. Units
  /// partition the geometry exactly: every flattened primitive lives in
  /// exactly one unit placement or in the residual.
  explicit HierIndex(const Cell& top, std::size_t minUnitShapes = 2);

  HierIndex(const HierIndex&) = delete;
  HierIndex& operator=(const HierIndex&) = delete;

  [[nodiscard]] const Cell& top() const noexcept { return *top_; }
  [[nodiscard]] const FlatLayout& residual() const noexcept { return residual_; }
  [[nodiscard]] const std::vector<HierUnit>& units() const noexcept { return units_; }
  [[nodiscard]] const std::vector<HierPlacement>& placements() const noexcept {
    return placements_;
  }
  /// Bounding box of everything (residual plus placed unit bboxes).
  [[nodiscard]] const geom::Rect& bbox() const noexcept { return bbox_; }

  /// Primitive count the full flatten would hold (sum over placements of
  /// unit counts, plus residual) vs. what is actually resident here.
  [[nodiscard]] std::size_t flatCount() const noexcept { return flatCount_; }
  [[nodiscard]] std::size_t uniqueCount() const noexcept { return uniqueCount_; }

  /// Visit the indices of all placements whose world bbox comes within
  /// Chebyshev distance `margin` of `q` (0 = touching), ascending.
  void forEachPlacementNear(const geom::Rect& q, geom::Coord margin,
                            const std::function<void(std::size_t)>& fn) const;

  /// Visit every world-space rect on layer `l` touching `q`, from the
  /// residual first and then from each near placement in ascending
  /// placement order (rects within a source come back in ascending local
  /// index order — deterministic).
  void forEachRectTouching(tech::Layer l, const geom::Rect& q,
                           const std::function<void(const geom::Rect&)>& fn) const;

  /// Prewarm every lazy index (unit and residual layer indexes) so
  /// concurrent consumers only perform const reads.
  void buildIndexes() const;

  /// Instance materializations performed against this index (placements
  /// resolved into world geometry by `layout::View` and friends).
  [[nodiscard]] std::uint64_t instancesMaterialized() const noexcept {
    return materialized_.load(std::memory_order_relaxed);
  }
  void noteMaterialized(std::uint64_t n) const noexcept {
    materialized_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Resident-size estimate (unit flattens + residual + placement table),
  /// the hierarchical counterpart of `FlatLayout::approxBytes`.
  [[nodiscard]] std::size_t approxBytes() const noexcept;

 private:
  const Cell* top_;
  FlatLayout residual_;
  std::vector<HierUnit> units_;
  std::vector<HierPlacement> placements_;
  geom::RectIndex placementIndex_;  ///< over placement world bboxes
  geom::Rect bbox_{};
  std::size_t flatCount_ = 0;
  std::size_t uniqueCount_ = 0;
  mutable std::atomic<std::uint64_t> materialized_{0};
};

}  // namespace bb::cell
