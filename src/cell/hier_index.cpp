#include "cell/hier_index.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace bb::cell {
namespace {

/// Postorder listing of the distinct cells reachable from `c` (children
/// finish before parents), so the reverse is a topological order of the
/// instance DAG.
void postorder(const Cell* c, std::unordered_set<const Cell*>& seen,
               std::vector<const Cell*>& out) {
  if (!seen.insert(c).second) return;
  for (const Instance& i : c->instances()) {
    if (i.cell != nullptr) postorder(i.cell, seen, out);
  }
  out.push_back(c);
}

/// The shape half of `flattenInto`: this cell's own primitives at `t`,
/// without recursing into instances (expansion decides per-instance
/// whether to recurse or to record a placement).
void addOwnShapes(FlatLayout& out, const Cell& c, const geom::Transform& t) {
  for (const Shape& s : c.shapes()) {
    std::visit(
        [&](const auto& g) {
          using T = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<T, geom::Rect>) {
            out.on(s.layer).push_back(t(g));
          } else if constexpr (std::is_same_v<T, geom::Polygon>) {
            out.polygons.emplace_back(s.layer, t(g));
          } else {
            const geom::Path tp = t(g);
            for (const geom::Rect& r : tp.toRects()) out.on(s.layer).push_back(r);
          }
        },
        s.geo);
  }
}

}  // namespace

HierIndex::HierIndex(const Cell& top, std::size_t minUnitShapes) : top_(&top) {
  // Pass 1: total occurrence count of every cell in the fully expanded
  // tree, by propagating multiplicity down a topological order.
  std::unordered_set<const Cell*> seen;
  std::vector<const Cell*> topo;
  postorder(&top, seen, topo);
  std::reverse(topo.begin(), topo.end());  // parents before children
  std::unordered_map<const Cell*, std::size_t> occ;
  occ[&top] = 1;
  for (const Cell* c : topo) {
    const std::size_t n = occ[c];
    for (const Instance& i : c->instances()) {
      if (i.cell != nullptr) occ[i.cell] += n;
    }
  }

  // Pass 2: expand from the top, stopping at the first cell that
  // qualifies as a reuse unit. Everything above a unit boundary lands in
  // the residual; everything below lives in exactly one unit's flatten —
  // the geometry partitions exactly.
  const auto isUnitCell = [&](const Cell* c) {
    return c != &top && occ[c] > 1 && c->totalShapeCount() >= minUnitShapes;
  };
  struct RawPlacement {
    const Cell* cell;
    geom::Transform t;
  };
  std::vector<RawPlacement> raw;
  std::unordered_set<const Cell*> usedUnits;
  const std::function<void(const Cell&, const geom::Transform&)> expand =
      [&](const Cell& c, const geom::Transform& t) {
        addOwnShapes(residual_, c, t);
        for (const Instance& i : c.instances()) {
          if (i.cell == nullptr) continue;
          const geom::Transform ct = t * i.placement;
          if (isUnitCell(i.cell)) {
            raw.push_back({i.cell, ct});
            usedUnits.insert(i.cell);
          } else {
            expand(*i.cell, ct);
          }
        }
      };
  expand(top, geom::Transform{});

  // Pass 3: flatten each reached unit once, in topological (hence
  // deterministic) order. A qualifying cell nested entirely inside
  // another unit is never reached, so it costs nothing here.
  std::unordered_map<const Cell*, std::size_t> unitOf;
  for (const Cell* c : topo) {
    if (usedUnits.count(c) == 0) continue;
    unitOf.emplace(c, units_.size());
    HierUnit u;
    u.cell = c;
    u.flat = flatten(*c);
    u.bbox = u.flat.bbox();
    units_.push_back(std::move(u));
  }

  // Pass 4: resolve placements and the derived totals/spatial index.
  placements_.reserve(raw.size());
  std::vector<geom::Rect> worldBoxes;
  worldBoxes.reserve(raw.size());
  geom::Rect acc;
  bool first = true;
  const auto grow = [&](const geom::Rect& r) {
    if (first) {
      acc = r;
      first = false;
    } else {
      acc = acc.unionWith(r);
    }
  };
  if (residual_.totalCount() > 0) grow(residual_.bbox());
  flatCount_ = residual_.totalCount();
  uniqueCount_ = residual_.totalCount();
  for (const RawPlacement& rp : raw) {
    const std::size_t ui = unitOf.at(rp.cell);
    HierUnit& u = units_[ui];
    u.placementCount++;
    HierPlacement p;
    p.unit = ui;
    p.t = rp.t;
    p.worldBBox = rp.t(u.bbox);
    worldBoxes.push_back(p.worldBBox);
    grow(p.worldBBox);
    placements_.push_back(p);
    flatCount_ += u.flat.totalCount();
  }
  for (const HierUnit& u : units_) uniqueCount_ += u.flat.totalCount();
  bbox_ = acc;
  placementIndex_ = geom::RectIndex(std::move(worldBoxes));
}

void HierIndex::forEachPlacementNear(const geom::Rect& q, geom::Coord margin,
                                     const std::function<void(std::size_t)>& fn) const {
  for (const int i : placementIndex_.queryWithin(q, margin)) {
    fn(static_cast<std::size_t>(i));
  }
}

void HierIndex::forEachRectTouching(tech::Layer l, const geom::Rect& q,
                                    const std::function<void(const geom::Rect&)>& fn) const {
  const geom::RectIndex& ri = residual_.indexOn(l);
  for (const int i : ri.queryTouching(q)) fn(ri.rect(static_cast<std::size_t>(i)));
  forEachPlacementNear(q, 0, [&](std::size_t pi) {
    const HierPlacement& p = placements_[pi];
    const HierUnit& u = units_[p.unit];
    const geom::Rect lq = p.t.inverted()(q);
    const geom::RectIndex& ui = u.flat.indexOn(l);
    for (const int i : ui.queryTouching(lq)) {
      fn(p.t(ui.rect(static_cast<std::size_t>(i))));
    }
  });
}

void HierIndex::buildIndexes() const {
  residual_.buildIndexes();
  for (const HierUnit& u : units_) u.flat.buildIndexes();
}

std::size_t HierIndex::approxBytes() const noexcept {
  std::size_t b = residual_.approxBytes();
  for (const HierUnit& u : units_) b += sizeof(HierUnit) + u.flat.approxBytes();
  b += placements_.size() * sizeof(HierPlacement);
  b += placementIndex_.approxBytes();
  return b;
}

}  // namespace bb::cell
