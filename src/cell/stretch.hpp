/// \file stretch.hpp
/// The stretch operation — the mechanism that lets Bristle Blocks give
/// every core cell a common pitch without redesign.
///
/// Stretching a cell at a stretch line by `delta`:
///   * shapes wholly at-or-beyond the line translate by delta;
///   * shapes crossing the line widen by delta;
///   * bristles, stretch lines and sub-instances at-or-beyond translate;
///   * the boundary grows by delta.
/// Sub-instances must not straddle a stretch line (generators declare
/// lines in instance-free corridors); a straddling instance is an error
/// reported via StretchResult.

#pragma once

#include "cell/cell.hpp"

#include <string>

namespace bb::cell {

/// Stretch `c` at the line (axis, at) by `delta` (>= 0), producing a new
/// cell named `newName` (default: "<name>+<delta>").
[[nodiscard]] Cell stretched(const Cell& c, StretchAxis axis, geom::Coord at, geom::Coord delta,
                             std::string newName = {});

/// Grow a cell to exactly `target` extent along `axis`, distributing the
/// needed delta evenly over the cell's declared stretch lines on that
/// axis (earlier lines absorb the remainder). Cells with no stretch line
/// on the axis and extent < target are reported as failures.
struct FitResult {
  bool ok = false;
  std::string error;
  Cell cell{""};
};

[[nodiscard]] FitResult stretchedToExtent(const Cell& c, StretchAxis axis, geom::Coord target,
                                          std::string newName = {});

/// True if any sub-instance straddles the given line (which would make
/// the stretch unsound).
[[nodiscard]] bool instanceStraddlesLine(const Cell& c, StretchAxis axis, geom::Coord at) noexcept;

}  // namespace bb::cell
