#include "cell/stretch.hpp"

#include <algorithm>
#include <cassert>

namespace bb::cell {

namespace {

using geom::Coord;
using geom::Point;
using geom::Rect;

/// Coordinate of a point along the stretch axis.
Coord along(StretchAxis axis, Point p) noexcept { return axis == StretchAxis::X ? p.x : p.y; }

Point shift(StretchAxis axis, Coord delta) noexcept {
  return axis == StretchAxis::X ? Point{delta, 0} : Point{0, delta};
}

/// Move a single point if it sits at-or-beyond the line.
Point movePoint(StretchAxis axis, Coord at, Coord delta, Point p) noexcept {
  if (along(axis, p) >= at) return p + shift(axis, delta);
  return p;
}

Rect stretchRect(StretchAxis axis, Coord at, Coord delta, const Rect& r) noexcept {
  const Point a = movePoint(axis, at, delta, {r.x0, r.y0});
  const Point b = movePoint(axis, at, delta, {r.x1, r.y1});
  return Rect{a.x, a.y, b.x, b.y};
}

}  // namespace

bool instanceStraddlesLine(const Cell& c, StretchAxis axis, geom::Coord at) noexcept {
  for (const Instance& i : c.instances()) {
    const Rect b = i.placement(i.cell->boundary());
    const Coord lo = axis == StretchAxis::X ? b.x0 : b.y0;
    const Coord hi = axis == StretchAxis::X ? b.x1 : b.y1;
    if (lo < at && hi > at) return true;
  }
  return false;
}

Cell stretched(const Cell& c, StretchAxis axis, geom::Coord at, geom::Coord delta,
               std::string newName) {
  assert(delta >= 0 && "stretch deltas are non-negative");
  if (newName.empty()) newName = c.name() + "+" + std::to_string(delta);
  Cell out(std::move(newName));
  out.setDoc(c.doc());
  out.setOwnPower(c.powerDemand());
  // Own power must not double-count sub-instances: we copy instances
  // below, so subtract their contribution back out.
  double sub = 0;
  for (const Instance& i : c.instances()) sub += i.cell->powerDemand();
  out.setOwnPower(c.powerDemand() - sub);

  for (const Shape& s : c.shapes()) {
    std::visit(
        [&](const auto& g) {
          using T = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<T, Rect>) {
            out.addRect(s.layer, stretchRect(axis, at, delta, g));
          } else if constexpr (std::is_same_v<T, geom::Polygon>) {
            geom::Polygon p;
            p.pts.reserve(g.pts.size());
            for (Point q : g.pts) p.pts.push_back(movePoint(axis, at, delta, q));
            out.addPolygon(s.layer, std::move(p));
          } else {
            geom::Path p;
            p.width = g.width;
            p.pts.reserve(g.pts.size());
            for (Point q : g.pts) p.pts.push_back(movePoint(axis, at, delta, q));
            out.addPath(s.layer, std::move(p));
          }
        },
        s.geo);
  }

  for (const Instance& i : c.instances()) {
    const Rect b = i.placement(i.cell->boundary());
    const Coord lo = axis == StretchAxis::X ? b.x0 : b.y0;
    geom::Transform t = i.placement;
    if (lo >= at) t.offset += shift(axis, delta);
    // Straddling instances are a generator bug; translate-if-beyond keeps
    // the result well-formed and instanceStraddlesLine() reports it.
    out.addInstance(i.cell, t, i.name);
  }

  for (Bristle b : c.bristles()) {
    b.pos = movePoint(axis, at, delta, b.pos);
    out.addBristle(std::move(b));
  }

  for (const StretchLine& sl : c.stretchLines()) {
    StretchLine ns = sl;
    if (ns.axis == axis && ns.at >= at) ns.at += delta;
    // A line on the other axis is unaffected by where material moved;
    // keep it as declared.
    out.addStretch(ns.axis, ns.at, ns.name);
  }

  out.setBoundary(stretchRect(axis, at, delta, c.boundary()));
  return out;
}

FitResult stretchedToExtent(const Cell& c, StretchAxis axis, geom::Coord target,
                            std::string newName) {
  FitResult res;
  const Coord have = axis == StretchAxis::X ? c.width() : c.height();
  if (have == target) {
    res.ok = true;
    res.cell = c;  // copy; caller owns the result
    if (!newName.empty()) res.cell = stretched(c, axis, 0, 0, std::move(newName));
    return res;
  }
  if (have > target) {
    res.error = "cell '" + c.name() + "' is already larger (" + std::to_string(have) +
                ") than target " + std::to_string(target);
    return res;
  }
  std::vector<StretchLine> lines;
  for (const StretchLine& sl : c.stretchLines()) {
    if (sl.axis == axis) lines.push_back(sl);
  }
  if (lines.empty()) {
    res.error = "cell '" + c.name() + "' has no stretch line on the required axis";
    return res;
  }
  // Distribute target-have over the lines, earlier lines get the remainder.
  const Coord need = target - have;
  const Coord per = need / static_cast<Coord>(lines.size());
  Coord rem = need % static_cast<Coord>(lines.size());
  // Apply from the highest line down so earlier `at` values stay valid.
  std::sort(lines.begin(), lines.end(),
            [](const StretchLine& a, const StretchLine& b) { return a.at > b.at; });
  Cell cur = c;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    Coord d = per + (rem > 0 ? 1 : 0);
    if (rem > 0) --rem;
    if (d == 0) continue;
    if (instanceStraddlesLine(cur, axis, lines[i].at)) {
      res.error = "stretch line '" + lines[i].name + "' of cell '" + c.name() +
                  "' straddles a sub-instance";
      return res;
    }
    cur = stretched(cur, axis, lines[i].at, d);
  }
  if (!newName.empty()) {
    cur = stretched(cur, axis, 0, 0, std::move(newName));
  }
  res.ok = true;
  res.cell = std::move(cur);
  return res;
}

}  // namespace bb::cell
