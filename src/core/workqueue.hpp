/// \file workqueue.hpp
/// Back-compat shim over the persistent thread-pool scheduler. The
/// original runWorkQueue spawned and joined fresh `std::thread`s on
/// every call — thread-creation thrash under the compile service's
/// sustained load — and a throwing `fn` on a spawned worker called
/// `std::terminate`. Every call now lands on
/// `ThreadPool::global().parallelFor`, so:
///
///  * no call ever spawns a thread after pool warmup;
///  * the first exception `fn` throws is rethrown on the caller after
///    all workers drain, instead of terminating the process;
///  * nested calls (a batch job whose DRC fans out rule groups) share
///    the one process-wide thread budget instead of multiplying it —
///    `threads` is a width limit on the shared pool, not a spawn count.

#pragma once

#include "core/pool.hpp"

#include <cstddef>

namespace bb::core {

/// Run `fn(i)` for every i in [0, jobs) up to `threads` wide (0 = full
/// pool width) on the process-shared pool; the calling thread
/// participates. Blocks until all jobs finish; with width 1 it
/// degenerates to a plain loop on the calling thread. `fn` must be safe
/// to call concurrently for distinct indices; its first exception is
/// rethrown here once all workers have drained.
template <typename Fn>
void runWorkQueue(std::size_t jobs, unsigned threads, Fn&& fn) {
  ThreadPool::global().parallelFor(jobs, 1, std::forward<Fn>(fn), threads);
}

}  // namespace bb::core
