/// \file workqueue.hpp
/// The batch work-queue, factored out of BatchCompiler so every
/// embarrassingly-parallel stage shares one scheduler: workers pull job
/// indices from a shared atomic cursor, so stragglers never serialize
/// the batch. Used by BatchCompiler (chips) and the DRC rule groups.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace bb::core {

/// Run `fn(i)` for every i in [0, jobs) on up to `threads` workers
/// (0 = hardware concurrency). Blocks until all jobs finish. `fn` must
/// be safe to call concurrently for distinct indices; with one worker it
/// degenerates to a plain loop on the calling thread.
template <typename Fn>
void runWorkQueue(std::size_t jobs, unsigned threads, Fn&& fn) {
  if (jobs == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const unsigned n = static_cast<unsigned>(
      std::min<std::size_t>(threads, jobs));

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      fn(i);
    }
  };

  if (n <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace bb::core
