/// \file fingerprint.hpp
/// Stable fingerprints of compile inputs, built on `core::Digest`.
///
/// Two consumers:
///  * the content-addressed chip cache (`svc::ChipCache`) keys entries on
///    `requestDigest(desc, opts)` — the canonical `ChipDesc::toString()`
///    (the documented hashing contract: deterministic, construction-order
///    independent) folded with the full `CompileOptions` fingerprint, so
///    identical designs compiled with identical options share one entry
///    and the same design with different options never collides;
///  * incremental recompilation (`CompileSession::setOptions`) — each
///    pipeline stage has its own fingerprint over exactly the option
///    fields that stage reads (`stageOptionsFingerprint`), so an options
///    edit invalidates from the first stage whose inputs actually
///    changed and nothing earlier.

#pragma once

#include "core/digest.hpp"
#include "core/options.hpp"
#include "core/session.hpp"

#include <cstdint>

namespace bb::core {

/// Fold every option field that can influence any stage into `d`
/// (conditional-assembly vars, the three pass-option blocks, and the
/// lint block finalize consumes).
void updateDigest(Digest& d, const CompileOptions& opts);

/// Fold the result-affecting lint option fields into `d` (everything
/// except the thread width, which never changes a report's bytes).
/// Exposed for the service's lint-report cache key.
void updateDigest(Digest& d, const lint::LintOptions& opts);

/// Digest of the complete option set — the cache key's option half.
[[nodiscard]] std::uint64_t optionsFingerprint(const CompileOptions& opts);

/// Digest of only the option fields stage `s` consumes: vars for the
/// vote stage, pass1/pass2/pass3 blocks for their passes; parse and
/// finalize read no options and fingerprint to a stage-tagged constant.
[[nodiscard]] std::uint64_t stageOptionsFingerprint(Stage s, const CompileOptions& opts);

/// The content address of a compile request: canonical description text
/// plus the full options fingerprint. This is the `svc::ChipCache` key.
[[nodiscard]] std::uint64_t requestDigest(const icl::ChipDesc& desc,
                                          const CompileOptions& opts);

}  // namespace bb::core
