/// \file expected.hpp
/// Value-style results for the staged compiler API. An `Expected<T>`
/// carries either a value or the diagnostics that explain its absence
/// (and, on success, any warnings produced along the way) — replacing
/// the old out-param `DiagnosticList&` idiom of the `Compiler` facade.

#pragma once

#include "icl/diagnostics.hpp"

#include <cassert>
#include <optional>
#include <utility>

namespace bb::core {

template <typename T>
class Expected {
 public:
  /// Success. Diagnostics may still carry warnings/notes.
  Expected(T value, icl::DiagnosticList diags = {})
      : value_(std::move(value)), diags_(std::move(diags)) {}

  /// Failure: the diagnostics say why. Asserts they actually contain an
  /// error so a silent empty failure can't be constructed by accident.
  static Expected failure(icl::DiagnosticList diags) {
    assert(diags.hasErrors() && "Expected::failure needs at least one error");
    return Expected(std::move(diags));
  }

  [[nodiscard]] bool hasValue() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return hasValue(); }

  [[nodiscard]] T& value() & {
    assert(hasValue());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(hasValue());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(hasValue());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value or a caller-supplied fallback (copies; for copyable T).
  template <typename U>
  [[nodiscard]] T valueOr(U&& fallback) const& {
    return hasValue() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }
  /// Move-out variant so move-only values (e.g. CompiledChipPtr) work:
  /// `compileChip(src).valueOr(nullptr)`.
  template <typename U>
  [[nodiscard]] T valueOr(U&& fallback) && {
    return hasValue() ? std::move(*value_) : static_cast<T>(std::forward<U>(fallback));
  }

  /// Diagnostics are always available: errors on failure, warnings/notes
  /// (possibly none) on success.
  [[nodiscard]] const icl::DiagnosticList& diagnostics() const noexcept { return diags_; }
  [[nodiscard]] icl::DiagnosticList& diagnostics() noexcept { return diags_; }

 private:
  explicit Expected(icl::DiagnosticList diags) : diags_(std::move(diags)) {}

  std::optional<T> value_;
  icl::DiagnosticList diags_;
};

}  // namespace bb::core
