/// \file chip.hpp
/// The compiled chip: everything the three passes produce, owned in one
/// object — the cell hierarchy (with the top mask cell), the logic model,
/// the decoder PLA, pad placements and the statistics every report and
/// bench draws from.

#pragma once

#include "cell/flatten.hpp"
#include "cell/hier_index.hpp"
#include "cell/library.hpp"
#include "core/pass2_tapes.hpp"
#include "core/pla.hpp"
#include "elements/element.hpp"
#include "icl/ast.hpp"
#include "netlist/logic.hpp"

#include <memory>
#include <string>
#include <vector>

namespace bb::core {

/// One core element after placement.
struct PlacedElement {
  std::string name;
  std::string kind;
  cell::Cell* column = nullptr;
  geom::Coord x = 0;  ///< west edge within the core
  std::vector<elements::ControlLine> controls;
  bool usesBus[2] = {false, false};
};

/// One pad after Pass 3.
struct PadPlacement {
  std::string name;          ///< bristle name it serves
  std::string padCellName;
  cell::Side side = cell::Side::North;  ///< which chip edge
  geom::Point pinAt;         ///< pin position in chip coordinates
  geom::Point target;        ///< the connection point it is wired to
  geom::Coord wireLength = 0;
};

struct ChipStats {
  geom::Coord pitch = 0;            ///< common slice pitch after stretching
  geom::Coord naturalPitchMax = 0;  ///< widest natural pitch found
  geom::Coord coreWidth = 0;
  geom::Coord coreHeight = 0;
  geom::Coord coreArea = 0;
  geom::Coord decoderArea = 0;      ///< buffer row + PLA
  geom::Coord padRingArea = 0;
  geom::Coord dieWidth = 0;
  geom::Coord dieHeight = 0;
  geom::Coord dieArea = 0;
  geom::Coord padWireLength = 0;
  std::size_t padCount = 0;
  std::size_t controlCount = 0;
  std::size_t busSegments[2] = {1, 1};
  std::size_t prechargeColumns = 0;
  double power_ua = 0;
  geom::Coord powerRailWidth = 0;
  std::size_t cellCount = 0;
  std::size_t shapeCount = 0;       ///< flattened primitive count
  std::size_t logicGates = 0;
  std::size_t logicSignals = 0;
};

/// Everything a compile produces. Movable, not copyable (owns the cells).
struct CompiledChip {
  icl::ChipDesc desc;
  cell::CellLibrary lib;
  cell::Cell* top = nullptr;      ///< whole die (core + decoder + pads)
  cell::Cell* core = nullptr;
  cell::Cell* bufferRow = nullptr;
  cell::Cell* decoder = nullptr;  ///< the PLA
  std::vector<PlacedElement> placed;
  std::vector<elements::ControlLine> controls;  ///< absolute x in core coords
  std::vector<PadPlacement> pads;
  netlist::LogicModel logic;
  Pla pla;
  TapeStats tapeStats;
  ChipStats stats;

  [[nodiscard]] std::string statsText() const;

  /// Deep copy: the cell library is cloned with every instance reference
  /// and the chip's own cell pointers (top/core/bufferRow/decoder, the
  /// placed-element columns) retargeted at the copies; all value state
  /// (desc, controls, pads, logic, pla, stats) is copied. The flatten
  /// caches are NOT copied — the clone rebuilds them lazily. This is the
  /// checkpoint primitive behind `CompileSession`'s incremental
  /// recompilation: a pass re-run mutates a clone of the pre-pass chip,
  /// never the original.
  [[nodiscard]] CompiledChip clone() const;

  /// Deterministic estimate of the chip's resident size in bytes: cells,
  /// shapes with polygon/path vertices, bristles, instances, placed
  /// elements, pads, logic gates — PLUS whatever derived artwork is
  /// materialized at call time (the flatten caches with their spatial
  /// indexes, the hierarchical index). Used by `svc::ChipCache` to
  /// charge entries against its byte budget; since the service prewarmes
  /// the caches before inserting, the flattens — which dwarf the shared
  /// cell library on hierarchical chips — are charged, not leaked past
  /// the budget. An estimate, not an accounting of every allocator
  /// header.
  [[nodiscard]] std::size_t approxBytes() const noexcept;

  /// Flattened artwork of the whole die / of the core, built on first use
  /// and cached for the chip's lifetime, so finalize's stats, DRC,
  /// extraction and every emitter share one flatten (and its per-layer
  /// spatial indexes) instead of re-walking the hierarchy each. Requires
  /// the corresponding cell pointer to be set (i.e. the passes have run);
  /// a compiled chip's cells are immutable, so the cache never goes stale.
  /// Like FlatLayout's lazy indexes, the first (cache-filling) call is
  /// not thread-safe: call once before sharing the chip across threads
  /// (finalize fills flatTop; BatchCompiler hands each chip to one
  /// worker). Subsequent calls are const reads.
  [[nodiscard]] const cell::FlatLayout& flatTop() const;
  [[nodiscard]] const cell::FlatLayout& flatCore() const;

  /// Hierarchical index of the whole die (`cell::HierIndex` over `top`):
  /// unique cells flattened once plus a placement index — what the
  /// hierarchical DRC/extract/emission paths and lazy viewports consume.
  /// Same lifetime/caching/thread-safety contract as `flatTop`.
  [[nodiscard]] const cell::HierIndex& hierTop() const;

  /// True when `hierTop` has been materialized (so tests can assert the
  /// flat paths never build it and vice versa).
  [[nodiscard]] bool hierTopBuilt() const noexcept { return hierTop_ != nullptr; }

 private:
  mutable std::unique_ptr<cell::FlatLayout> flatTop_;
  mutable std::unique_ptr<cell::FlatLayout> flatCore_;
  mutable std::unique_ptr<cell::HierIndex> hierTop_;
};

}  // namespace bb::core
