/// \file compiler.hpp
/// DEPRECATED facade. The original API was one opaque call taking the
/// single-page chip description to a complete mask set; it survives as a
/// thin shim over the staged `CompileSession` pipeline (see session.hpp)
/// so old call sites keep building. New code should use `CompileSession`
/// (stage-at-a-time control, observers, `Expected` results) or the
/// one-shot `compileChip()` helper.

#pragma once

#include "core/session.hpp"

#include <memory>
#include <string_view>

namespace bb::core {

class Compiler {
 public:
  explicit Compiler(CompileOptions opts = {}) : opts_(std::move(opts)) {}

  /// Compile from source text. Returns nullptr with diagnostics on error.
  [[deprecated("use CompileSession / compileChip()")]] [[nodiscard]]
  std::unique_ptr<CompiledChip> compile(std::string_view source,
                                        icl::DiagnosticList& diags);

  /// Compile an already-parsed description.
  [[deprecated("use CompileSession / compileChip()")]] [[nodiscard]]
  std::unique_ptr<CompiledChip> compile(const icl::ChipDesc& desc,
                                        icl::DiagnosticList& diags);

  [[nodiscard]] const CompileOptions& options() const noexcept { return opts_; }

 private:
  CompileOptions opts_;
};

}  // namespace bb::core
