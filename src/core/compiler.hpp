/// \file compiler.hpp
/// The Bristle Blocks silicon compiler: one call takes the single-page
/// chip description to a complete mask set, in three passes — core,
/// control, pads — exactly as the paper lays out.

#pragma once

#include "core/chip.hpp"
#include "core/pass1_core.hpp"
#include "core/pass2_control.hpp"
#include "core/pass3_pads.hpp"

#include <map>
#include <memory>
#include <string_view>

namespace bb::core {

struct CompileOptions {
  /// Conditional-assembly variable overrides ("at any time prior to
  /// actually compiling the chip, the user may decide").
  std::map<std::string, bool> vars;
  Pass1Options pass1;
  Pass2Options pass2;
  Pass3Options pass3;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions opts = {}) : opts_(std::move(opts)) {}

  /// Compile from source text. Returns nullptr with diagnostics on error.
  [[nodiscard]] std::unique_ptr<CompiledChip> compile(std::string_view source,
                                                      icl::DiagnosticList& diags);

  /// Compile an already-parsed description.
  [[nodiscard]] std::unique_ptr<CompiledChip> compile(const icl::ChipDesc& desc,
                                                      icl::DiagnosticList& diags);

  [[nodiscard]] const CompileOptions& options() const noexcept { return opts_; }

 private:
  CompileOptions opts_;
};

}  // namespace bb::core
