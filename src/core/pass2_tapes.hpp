/// \file pass2_tapes.hpp
/// The two-tape machine of Pass 2. Quoting the paper: "a text array is
/// constructed which specifies the decode functions needed for each
/// buffer. A two-tape Turing machine operates on one 'tape', which
/// contains the text array, and writes the second 'tape', producing
/// compiled silicon code. When it has finished operating on the array,
/// the Turing machine will have generated and optimized the instruction
/// decoder, and created pad connections for the inputs to the decoder."
///
/// Tape one holds the text array (one decode function per control
/// buffer); tape two receives silicon-code instructions that the PLA
/// renderer in pass2_control.cpp interprets into mask geometry.

#pragma once

#include "core/pla.hpp"
#include "icl/diagnostics.hpp"

#include <string>
#include <vector>

namespace bb::core {

/// One entry of the text array.
struct TextArrayEntry {
  std::string control;  ///< control line name
  std::string decode;   ///< decode function text
  int phase = 1;
};

/// Silicon-code instruction set written to the output tape.
enum class SilOp : std::uint8_t {
  Header,     ///< a = input width, b = output count
  InputCol,   ///< a = microcode bit (true+complement column pair)
  Term,       ///< a = term index: begin a PLA row
  CrossAnd,   ///< a = microcode bit, b = required value (AND-plane point)
  TermLoad,   ///< row pull-up at the end of a term row
  CrossOr,    ///< a = term index, b = output index (OR-plane point)
  OutputCol,  ///< a = output index (control column + output inverter)
  PadConn,    ///< a = microcode bit: create the pad connection point
  End,
};

struct SilInstr {
  SilOp op = SilOp::End;
  int a = 0;
  int b = 0;
};

/// Machine statistics — evidence that the optimizer did its passes.
struct TapeStats {
  std::size_t inputEntries = 0;
  std::size_t rawCubes = 0;       ///< cubes before optimization
  std::size_t sharedTerms = 0;    ///< terms after sharing, before merging
  std::size_t finalTerms = 0;     ///< terms after merge passes
  int mergePasses = 0;
  long long headMoves = 0;        ///< total tape-head movement
  std::size_t outputInstrs = 0;
};

/// Run the machine: read the text array, compile each decode function
/// against the microcode format, build + optimize the PLA, and write the
/// silicon-code tape. Decode errors are diagnosed per entry.
class TwoTapeMachine {
 public:
  TwoTapeMachine(std::vector<TextArrayEntry> textArray, const icl::MicrocodeDecl& mc);

  /// Execute to completion. Returns false if any decode failed.
  bool run(icl::DiagnosticList& diags);

  [[nodiscard]] const Pla& pla() const noexcept { return pla_; }
  [[nodiscard]] const std::vector<SilInstr>& outputTape() const noexcept { return out_; }
  [[nodiscard]] const TapeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<TextArrayEntry>& textArray() const noexcept { return tape1_; }

 private:
  void emit(SilOp op, int a = 0, int b = 0) {
    out_.push_back({op, a, b});
    ++stats_.outputInstrs;
  }

  std::vector<TextArrayEntry> tape1_;
  const icl::MicrocodeDecl& mc_;
  Pla pla_;
  std::vector<SilInstr> out_;
  TapeStats stats_;
};

}  // namespace bb::core
