#include "core/pool.hpp"

#include <algorithm>
#include <chrono>

namespace bb::core {

namespace {
/// The pool the calling thread is a worker of (null for client threads).
/// Per-thread, so pools can be nested without confusion: a test pool's
/// worker is not "inside" the global pool.
thread_local const ThreadPool* tlsWorkerPool = nullptr;
}  // namespace

namespace {
/// Default worker count: hardware concurrency minus the participating
/// caller, and at least one so task-only submitters always make
/// progress even when no caller is draining.
unsigned defaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1u;
}
}  // namespace

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers != 0 ? workers : defaultWorkers()) {}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(qmu_);
    stop_ = true;
  }
  qcv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::insideWorker() const noexcept { return tlsWorkerPool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lk(qmu_);
    if (!started_) {
      // Lazy start: the first submitted task pays the spawns, nothing
      // else ever does. threads_ is only written here and in the dtor
      // (which runs strictly after all submissions), both under qmu_.
      started_ = true;
      threads_.reserve(workers_);
      for (unsigned t = 0; t < workers_; ++t) {
        threads_.emplace_back([this] { workerLoop(); });
      }
      threadsSpawned_.fetch_add(workers_, std::memory_order_relaxed);
    }
    queue_.push_back(std::move(task));
  }
  qcv_.notify_one();
}

bool ThreadPool::tryRunOneTask() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lk(qmu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::drainUntil(ForState& st) {
  std::unique_lock<std::mutex> lk(st.mu);
  while (st.pending > 0) {
    lk.unlock();
    if (tryRunOneTask()) {
      lk.lock();
      continue;
    }
    lk.lock();
    // Queue empty: the remaining tasks are executing on other workers.
    // Every completion notifies, so this wakes promptly; the timeout is
    // a belt-and-suspenders re-check of the queue (a task submitted
    // while we sleep is a task we could be helping with).
    st.cv.wait_for(lk, std::chrono::milliseconds(1),
                   [&] { return st.pending == 0; });
  }
}

void ThreadPool::workerLoop() {
  tlsWorkerPool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      qcv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
    // Tasks never throw: parallelFor slices and TaskGroup wrappers catch
    // at the submission layer and surface the exception on the waiter.
    task();
  }
}

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(&pool), st_(std::make_shared<ThreadPool::ForState>()) {}

TaskGroup::~TaskGroup() { pool_->drainUntil(*st_); }

void TaskGroup::run(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lk(st_->mu);
    ++st_->pending;
  }
  pool_->enqueue([st = st_, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lk(st->mu);
      if (!st->first) st->first = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lk(st->mu);
      --st->pending;
    }
    st->cv.notify_all();
  });
}

void TaskGroup::wait() {
  pool_->drainUntil(*st_);
  std::exception_ptr first;
  {
    const std::lock_guard<std::mutex> lk(st_->mu);
    first = st_->first;
    st_->first = nullptr;
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace bb::core
