#include "core/pass2_tapes.hpp"

namespace bb::core {

TwoTapeMachine::TwoTapeMachine(std::vector<TextArrayEntry> textArray,
                               const icl::MicrocodeDecl& mc)
    : tape1_(std::move(textArray)), mc_(mc) {}

bool TwoTapeMachine::run(icl::DiagnosticList& diags) {
  stats_.inputEntries = tape1_.size();
  pla_ = Pla(mc_.width, static_cast<int>(tape1_.size()));

  // --- pass 1 over tape one: compile every decode function --------------
  bool ok = true;
  for (std::size_t i = 0; i < tape1_.size(); ++i) {
    ++stats_.headMoves;
    icl::DiagnosticList local;
    const icl::SumOfProducts sop = icl::compileDecode(tape1_[i].decode, mc_, local);
    if (local.hasErrors()) {
      diags.error({}, "control '" + tape1_[i].control + "': " + local.all().front().message);
      ok = false;
      continue;
    }
    stats_.rawCubes += sop.cubes.size();
    for (const icl::Cube& c : sop.cubes) pla_.addCube(static_cast<int>(i), c);
  }
  stats_.sharedTerms = pla_.termCount();

  // --- rewind, optimization passes over the work tape -------------------
  stats_.headMoves += static_cast<long long>(tape1_.size());  // rewind
  int merges = 1;
  while (merges > 0) {
    merges = pla_.optimize();
    ++stats_.mergePasses;
    stats_.headMoves += static_cast<long long>(pla_.termCount());
  }
  stats_.finalTerms = pla_.termCount();

  // --- write tape two: the silicon code ----------------------------------
  emit(SilOp::Header, mc_.width, static_cast<int>(tape1_.size()));
  for (int b = 0; b < mc_.width; ++b) {
    emit(SilOp::InputCol, b);
    emit(SilOp::PadConn, b);  // "created pad connections for the inputs"
  }
  for (std::size_t t = 0; t < pla_.termCount(); ++t) {
    emit(SilOp::Term, static_cast<int>(t));
    const icl::Cube& c = pla_.terms()[t];
    for (std::size_t bit = 0; bit < c.bits.size(); ++bit) {
      if (c.bits[bit] >= 0) {
        emit(SilOp::CrossAnd, static_cast<int>(bit), c.bits[bit]);
      }
    }
    emit(SilOp::TermLoad, static_cast<int>(t));
  }
  for (std::size_t o = 0; o < pla_.outputs().size(); ++o) {
    emit(SilOp::OutputCol, static_cast<int>(o));
    for (int t : pla_.outputs()[o]) {
      emit(SilOp::CrossOr, t, static_cast<int>(o));
    }
  }
  emit(SilOp::End);
  return ok;
}

}  // namespace bb::core
