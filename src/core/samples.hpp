/// \file samples.hpp
/// Canonical one-page chip descriptions, shared by tests, benches and
/// examples. Each is a complete Bristle Blocks input: microcode format,
/// data/bus section, and core element list.

#pragma once

#include <string>

namespace bb::core::samples {

/// A small accumulator machine: 2 registers, ALU, I/O — the "small chip"
/// of the paper's timing claim.
///
/// Instruction set (op field):
///   1 LOADRA   pads -> bus A -> RA
///   2 LOADACC  pads -> bus A -> ACC (via ALU passa on the next STORE)
///   3 OPERANDS pads -> bus A -> ALU.a; RA -> bus B -> ALU.b; compute
///   4 STORE    ALU result -> bus A -> ACC
///   5 OUT      ACC -> bus B -> output pads
inline std::string smallChip(int dataWidth = 4) {
  return R"(chip small;
microcode width 8 {
  field op   [0:2];
  field sel  [3:3];
  field misc [4:7];   # ALU operation select
}
data width )" + std::to_string(dataWidth) + R"(;
buses A, B;
core {
  inport  IN   (bus = A, drive = "op==1 | op==2 | op==3");
  register RA  (in = A, out = B, load = "op==1", drive = "op==3");
  alu     ALU  (a = A, b = B, out = A, op = misc, ops = [add, and, or, passa],
                load = "op==3", drive = "op==4");
  register ACC (in = A, out = B, load = "op==4", drive = "op==5");
  outport OUT  (bus = B, sample = "op==5");
}
)";
}

/// A "fairly large" chip: register file, two working registers, ALU,
/// shifter, constants and both ports.
inline std::string largeChip(int dataWidth = 16, int regs = 8) {
  return R"(chip large;
var PROTOTYPE = false;
microcode width 16 {
  field op    [0:3];
  field rsel  [4:7];
  field aluop [8:10];
  field shc   [11:11];
  field misc  [12:15];
}
data width )" + std::to_string(dataWidth) + R"(;
buses A, B;
core {
  inport  IN   (bus = A, drive = "op==1 | op==2");
  regfile RF   (n = )" + std::to_string(regs) + R"(, select = rsel, in = A, out = B,
                write = "op==2", read = "op==3");
  register T1  (in = A, out = B, load = "op==4", drive = "op==5");
  register T2  (in = A, out = B, load = "op==6", drive = "op==7");
  alu     ALU  (a = A, b = B, out = A, op = aluop,
                ops = [add, sub, and, or, xor, passa],
                load = "op==8", drive = "op==9");
  shifter SH   (in = A, out = B, dist = 1, load = "op==10", drive = "op==11");
  constant ONE (bus = B, value = 1, drive = "op==12");
  outport OUT  (bus = B, sample = "op==13");
  if PROTOTYPE {
    probe PC   (bus = A, bit = 0);
  }
}
)";
}

/// The conditional-assembly demo of the paper: a PROTOTYPE flag that
/// routes internal state to pads on prototype chips only.
inline std::string prototypeChip() {
  return R"(chip proto;
var PROTOTYPE = true;
microcode width 8 {
  field op [0:2];
  field x  [3:7];
}
data width 8;
buses A, B;
core {
  inport  IN  (bus = A, drive = "op==1");
  register R0 (in = A, out = B, load = "op==2", drive = "op==3");
  outport OUT (bus = B, sample = "op==3");
  if PROTOTYPE {
    probe P0 (bus = A, bit = 0);
    probe P1 (bus = A, bit = 7);
  }
}
)";
}

/// A chip exercising bus stops: the B bus is segmented in the middle.
inline std::string segmentedChip(int dataWidth = 8) {
  return R"(chip segmented;
microcode width 8 {
  field op [0:3];
  field x  [4:7];
}
data width )" + std::to_string(dataWidth) + R"(;
buses A, B;
core {
  inport  IN  (bus = A, drive = "op==1");
  register R0 (in = A, out = B, load = "op==2", drive = "op==3");
  outport O1  (bus = B, sample = "op==3");
  busstop BS  (bus = B);
  register R1 (in = A, out = B, load = "op==4", drive = "op==5");
  outport O2  (bus = B, sample = "op==5");
}
)";
}

}  // namespace bb::core::samples
