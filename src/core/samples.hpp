/// \file samples.hpp
/// Canonical one-page chip descriptions, shared by tests, benches and
/// examples. Each is a complete Bristle Blocks input — microcode format,
/// data/bus section, core element list — built programmatically with
/// `icl::ChipBuilder` and returned as a typed `icl::ChipDesc`, ready for
/// `CompileSession` / `compileChip` / `BatchCompiler` without a parse.
/// The `*Source()` wrappers render the same descriptions as ICL text for
/// parser round-trip tests (`parseChip(smallChipSource()) == smallChip()`).

#pragma once

#include "icl/builder.hpp"

#include <string>

namespace bb::core::samples {

/// A small accumulator machine: 2 registers, ALU, I/O — the "small chip"
/// of the paper's timing claim.
///
/// Instruction set (op field):
///   1 LOADRA   pads -> bus A -> RA
///   2 LOADACC  pads -> bus A -> ACC (via ALU passa on the next STORE)
///   3 OPERANDS pads -> bus A -> ALU.a; RA -> bus B -> ALU.b; compute
///   4 STORE    ALU result -> bus A -> ACC
///   5 OUT      ACC -> bus B -> output pads
inline icl::ChipDesc smallChip(int dataWidth = 4) {
  using namespace bb::icl;
  return ChipBuilder("small")
      .microcode(8, {field("op", 0, 2), field("sel", 3, 3),
                     field("misc", 4, 7)})  // misc: ALU operation select
      .dataWidth(dataWidth)
      .buses({"A", "B"})
      .element("inport", "IN",
               {{"bus", sym("A")}, {"drive", expr("op==1 | op==2 | op==3")}})
      .element("register", "RA",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==1")},
                {"drive", expr("op==3")}})
      .element("alu", "ALU",
               {{"a", sym("A")}, {"b", sym("B")}, {"out", sym("A")},
                {"op", sym("misc")}, {"ops", syms({"add", "and", "or", "passa"})},
                {"load", expr("op==3")}, {"drive", expr("op==4")}})
      .element("register", "ACC",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==4")},
                {"drive", expr("op==5")}})
      .element("outport", "OUT", {{"bus", sym("B")}, {"sample", expr("op==5")}})
      .buildOrDie();
}

/// A "fairly large" chip: register file, two working registers, ALU,
/// shifter, constants and both ports.
inline icl::ChipDesc largeChip(int dataWidth = 16, int regs = 8) {
  using namespace bb::icl;
  return ChipBuilder("large")
      .var("PROTOTYPE", false)
      .microcode(16, {field("op", 0, 3), field("rsel", 4, 7), field("aluop", 8, 10),
                      field("shc", 11, 11), field("misc", 12, 15)})
      .dataWidth(dataWidth)
      .buses({"A", "B"})
      .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1 | op==2")}})
      .element("regfile", "RF",
               {{"n", num(regs)}, {"select", sym("rsel")}, {"in", sym("A")},
                {"out", sym("B")}, {"write", expr("op==2")}, {"read", expr("op==3")}})
      .element("register", "T1",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==4")},
                {"drive", expr("op==5")}})
      .element("register", "T2",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==6")},
                {"drive", expr("op==7")}})
      .element("alu", "ALU",
               {{"a", sym("A")}, {"b", sym("B")}, {"out", sym("A")},
                {"op", sym("aluop")},
                {"ops", syms({"add", "sub", "and", "or", "xor", "passa"})},
                {"load", expr("op==8")}, {"drive", expr("op==9")}})
      .element("shifter", "SH",
               {{"in", sym("A")}, {"out", sym("B")}, {"dist", num(1)},
                {"load", expr("op==10")}, {"drive", expr("op==11")}})
      .element("constant", "ONE",
               {{"bus", sym("B")}, {"value", num(1)}, {"drive", expr("op==12")}})
      .element("outport", "OUT", {{"bus", sym("B")}, {"sample", expr("op==13")}})
      .when("PROTOTYPE", {item("probe", "PC", {{"bus", sym("A")}, {"bit", num(0)}})})
      .buildOrDie();
}

/// The conditional-assembly demo of the paper: a PROTOTYPE flag that
/// routes internal state to pads on prototype chips only.
inline icl::ChipDesc prototypeChip() {
  using namespace bb::icl;
  return ChipBuilder("proto")
      .var("PROTOTYPE", true)
      .microcode(8, {field("op", 0, 2), field("x", 3, 7)})
      .dataWidth(8)
      .buses({"A", "B"})
      .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
      .element("register", "R0",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==2")},
                {"drive", expr("op==3")}})
      .element("outport", "OUT", {{"bus", sym("B")}, {"sample", expr("op==3")}})
      .when("PROTOTYPE", {item("probe", "P0", {{"bus", sym("A")}, {"bit", num(0)}}),
                          item("probe", "P1", {{"bus", sym("A")}, {"bit", num(7)}})})
      .buildOrDie();
}

/// A chip exercising bus stops: the B bus is segmented in the middle.
inline icl::ChipDesc segmentedChip(int dataWidth = 8) {
  using namespace bb::icl;
  return ChipBuilder("segmented")
      .microcode(8, {field("op", 0, 3), field("x", 4, 7)})
      .dataWidth(dataWidth)
      .buses({"A", "B"})
      .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
      .element("register", "R0",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==2")},
                {"drive", expr("op==3")}})
      .element("outport", "O1", {{"bus", sym("B")}, {"sample", expr("op==3")}})
      .element("busstop", "BS", {{"bus", sym("B")}})
      .element("register", "R1",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==4")},
                {"drive", expr("op==5")}})
      .element("outport", "O2", {{"bus", sym("B")}, {"sample", expr("op==5")}})
      .buildOrDie();
}

// ---- textual forms ------------------------------------------------------
// Thin wrappers for the parser path: the same descriptions rendered as
// ICL source. Kept for parser/round-trip tests and the string-frontend
// benches; everything else should take the typed values above.

inline std::string smallChipSource(int dataWidth = 4) {
  return smallChip(dataWidth).toString();
}
inline std::string largeChipSource(int dataWidth = 16, int regs = 8) {
  return largeChip(dataWidth, regs).toString();
}
inline std::string prototypeChipSource() { return prototypeChip().toString(); }
inline std::string segmentedChipSource(int dataWidth = 8) {
  return segmentedChip(dataWidth).toString();
}

}  // namespace bb::core::samples
