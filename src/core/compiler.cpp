#include "core/compiler.hpp"

namespace bb::core {

namespace {

std::unique_ptr<CompiledChip> drain(CompileSession&& session, icl::DiagnosticList& diags) {
  auto outcome = session.run();
  for (const icl::Diagnostic& d : outcome.diagnostics().all()) {
    switch (d.severity) {
      case icl::Severity::Error: diags.error(d.loc, d.message); break;
      case icl::Severity::Warning: diags.warning(d.loc, d.message); break;
      case icl::Severity::Note: diags.note(d.loc, d.message); break;
    }
  }
  return outcome ? std::move(*outcome) : nullptr;
}

}  // namespace

std::unique_ptr<CompiledChip> Compiler::compile(std::string_view source,
                                                icl::DiagnosticList& diags) {
  return drain(CompileSession(std::string(source), opts_), diags);
}

std::unique_ptr<CompiledChip> Compiler::compile(const icl::ChipDesc& desc,
                                                icl::DiagnosticList& diags) {
  return drain(CompileSession(desc, opts_), diags);
}

}  // namespace bb::core
