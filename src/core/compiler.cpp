#include "core/compiler.hpp"

#include "cell/flatten.hpp"
#include "icl/parser.hpp"

namespace bb::core {

std::unique_ptr<CompiledChip> Compiler::compile(std::string_view source,
                                                icl::DiagnosticList& diags) {
  auto desc = icl::parseChip(source, diags);
  if (!desc) return nullptr;
  return compile(*desc, diags);
}

std::unique_ptr<CompiledChip> Compiler::compile(const icl::ChipDesc& desc,
                                                icl::DiagnosticList& diags) {
  auto chip = std::make_unique<CompiledChip>();
  chip->desc = desc;

  // Conditional assembly resolves the element list before any pass runs.
  const std::vector<icl::ElementDecl> decls = icl::assembleCore(desc, opts_.vars, diags);
  if (diags.hasErrors()) return nullptr;

  if (!runPass1(*chip, decls, opts_.pass1, diags)) return nullptr;
  if (!runPass2(*chip, opts_.pass2, diags)) return nullptr;
  if (!runPass3(*chip, opts_.pass3, diags)) return nullptr;

  // Final bookkeeping for reports.
  chip->stats.cellCount = chip->lib.size();
  chip->stats.shapeCount = cell::flatten(*chip->top).totalCount();
  chip->stats.logicGates = chip->logic.gates().size();
  chip->stats.logicSignals = chip->logic.signalCount();
  return chip;
}

}  // namespace bb::core
