/// \file options.hpp
/// Compile options for the staged pipeline, with a fluent builder so
/// call sites can assemble a configuration in one expression instead of
/// mutating nested structs field by field.

#pragma once

#include "core/pass1_core.hpp"
#include "core/pass2_control.hpp"
#include "core/pass3_pads.hpp"
#include "lint/options.hpp"

#include <map>
#include <string>
#include <utility>

namespace bb::core {

struct CompileOptions {
  /// Conditional-assembly variable overrides ("at any time prior to
  /// actually compiling the chip, the user may decide").
  std::map<std::string, bool> vars;
  Pass1Options pass1;
  Pass2Options pass2;
  Pass3Options pass3;
  /// Static design analysis run during finalize when `lint.enabled`;
  /// findings join the session diagnostics and the full report is kept
  /// on `CompileSession::lintReport()`.
  lint::LintOptions lint;

  class Builder;
  [[nodiscard]] static Builder builder();
};

/// Fluent construction:
///
///   auto opts = CompileOptions::builder()
///                   .var("PROTOTYPE", false)
///                   .rotoRouter(false)
///                   .ringGapLambda(64)
///                   .build();
class CompileOptions::Builder {
 public:
  Builder& var(std::string name, bool value) {
    opts_.vars[std::move(name)] = value;
    return *this;
  }
  Builder& railCapacityUaPerLambda(double ua) {
    opts_.pass1.railCapacityUaPerLambda = ua;
    return *this;
  }
  Builder& optimizeDecoder(bool on) {
    opts_.pass2.optimizeDecoder = on;
    return *this;
  }
  Builder& rotoRouter(bool on) {
    opts_.pass3.rotoRouter = on;
    return *this;
  }
  Builder& evenSpacing(bool on) {
    opts_.pass3.evenSpacing = on;
    return *this;
  }
  Builder& ringGapLambda(geom::Coord gap) {
    opts_.pass3.ringGapLambda = gap;
    return *this;
  }
  Builder& lint(bool on) {
    opts_.lint.enabled = on;
    return *this;
  }
  Builder& lintMinSeverity(icl::Severity floor) {
    opts_.lint.minSeverity = floor;
    return *this;
  }
  Builder& lintSuppress(std::string ruleOrInstance) {
    opts_.lint.suppress.push_back(std::move(ruleOrInstance));
    return *this;
  }
  Builder& lintOptions(lint::LintOptions lo) {
    opts_.lint = std::move(lo);
    return *this;
  }

  [[nodiscard]] CompileOptions build() const { return opts_; }
  operator CompileOptions() const { return opts_; }

 private:
  CompileOptions opts_;
};

inline CompileOptions::Builder CompileOptions::builder() { return Builder{}; }

}  // namespace bb::core
