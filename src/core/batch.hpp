/// \file batch.hpp
/// High-throughput compilation: run many chip descriptions through the
/// staged pipeline concurrently on the process-shared `core::ThreadPool`.
///
/// The default `Mode::Pipelined` scheduler is *stage-granular*: each job
/// is decomposed into its `CompileSession` stages and every stage is one
/// pool task, so one chip's parse overlaps another chip's pass2 instead
/// of each worker being pinned to a whole job. That keeps a mixed batch
/// (many small chips plus a few large ones) from hiding behind its
/// stragglers: small jobs stream through the lanes the moment a big
/// job's stage yields. `Mode::WholeJob` keeps the old one-task-per-job
/// schedule, mainly as the unpipelined reference for the benches.
///
/// `withDrc()` appends a design-rule-check stage to every job. The
/// batch builds ONE `drc::DeckChecker` for the shared rule deck (the
/// per-deck rule-unit plan is paid once, not per chip), and at the tail
/// of the batch — once fewer jobs remain than the batch is wide — each
/// straggler's rule units automatically fan out across the now-idle
/// workers, so the last big chip doesn't finish on a single thread.

#pragma once

#include "core/session.hpp"
#include "drc/drc.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <vector>

namespace bb::core {

struct BatchJob {
  BatchJob() = default;
  /// A job over source text: the worker's session parses it.
  BatchJob(std::string name, std::string source, CompileOptions opts = {})
      : name(std::move(name)), source(std::move(source)), opts(std::move(opts)) {}
  /// A job over a pre-built description (ChipBuilder, samples): the
  /// worker's session skips the parse stage entirely.
  BatchJob(std::string name, icl::ChipDesc desc, CompileOptions opts = {})
      : name(std::move(name)), desc(std::move(desc)), opts(std::move(opts)) {}

  std::string name;    ///< label for reports; defaults to the chip's own name
  std::string source;  ///< chip description text (ignored when `desc` is set)
  std::optional<icl::ChipDesc> desc;  ///< pre-built description; no parse stage
  CompileOptions opts; ///< per-job options (seeded from the batch default)
};

struct BatchResult {
  std::string name;
  CompiledChipPtr chip;  ///< null when the compile failed
  icl::DiagnosticList diags;
  std::chrono::nanoseconds elapsed{};  ///< this job's admission-to-done time
  /// Sojourn time: from `compileAll` entry to this job's completion.
  /// The distribution of these (in particular its p99) is what the
  /// pipelined scheduler improves on mixed-size batches.
  std::chrono::nanoseconds finishedAfter{};
  /// Filled when the batch was configured with `withDrc()` and the job
  /// compiled; absent otherwise.
  std::optional<drc::DrcReport> drc;

  [[nodiscard]] bool ok() const noexcept { return chip != nullptr; }
};

class BatchCompiler {
 public:
  enum class Mode {
    Pipelined,  ///< stage-granular tasks, jobs interleave (default)
    WholeJob,   ///< one task per job, the pre-pool reference schedule
  };

  /// `threads` is a width limit on the process-shared pool — a budget,
  /// not a spawn count; 0 picks the full pool width (workers + caller).
  /// Jobs that themselves go parallel (threaded DRC, nested
  /// parallelFor) draw from the same budget, so batch x DRC nesting
  /// never oversubscribes the machine.
  explicit BatchCompiler(CompileOptions defaults = {}, unsigned threads = 0,
                         Mode mode = Mode::Pipelined);

  /// Append a DRC stage to every job, checking against `deck` (which
  /// must outlive the compiler). One `drc::DeckChecker` is shared by
  /// the whole batch. In `Mode::Pipelined`, `opts.threads` is
  /// overridden per job by the tail fan-out policy (serial while the
  /// batch is full, full width for the stragglers); `Mode::WholeJob`
  /// uses `opts.threads` as given.
  BatchCompiler& withDrc(const tech::RuleDeck& deck, drc::DrcOptions opts = {});

  /// Compile every job; results come back in job order. A failed job
  /// carries its diagnostics, it never aborts the batch.
  [[nodiscard]] std::vector<BatchResult> compileAll(std::vector<BatchJob> jobs) const;

  /// Convenience: bare sources, batch-default options.
  [[nodiscard]] std::vector<BatchResult> compileAll(
      const std::vector<std::string>& sources) const;

  /// Convenience: pre-built descriptions, batch-default options. No job
  /// parses; this is the high-throughput path for programmatic sweeps.
  [[nodiscard]] std::vector<BatchResult> compileAll(
      std::vector<icl::ChipDesc> descs) const;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const CompileOptions& defaults() const noexcept { return defaults_; }

 private:
  [[nodiscard]] std::vector<BatchResult> compilePipelined(std::vector<BatchJob> jobs) const;
  [[nodiscard]] std::vector<BatchResult> compileWholeJob(std::vector<BatchJob> jobs) const;

  CompileOptions defaults_;
  unsigned threads_;
  Mode mode_;
  const tech::RuleDeck* drcDeck_ = nullptr;  ///< non-owning; null = no DRC stage
  drc::DrcOptions drcOpts_;
};

}  // namespace bb::core
