/// \file batch.hpp
/// High-throughput compilation: run many chip descriptions through the
/// staged pipeline concurrently. Every worker drives its own
/// `CompileSession` (the element generators rebuild cells per chip, so
/// sessions share nothing mutable and need no locking); jobs are pulled
/// from a shared atomic cursor so stragglers don't serialize the batch.

#pragma once

#include "core/session.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <vector>

namespace bb::core {

struct BatchJob {
  BatchJob() = default;
  /// A job over source text: the worker's session parses it.
  BatchJob(std::string name, std::string source, CompileOptions opts = {})
      : name(std::move(name)), source(std::move(source)), opts(std::move(opts)) {}
  /// A job over a pre-built description (ChipBuilder, samples): the
  /// worker's session skips the parse stage entirely.
  BatchJob(std::string name, icl::ChipDesc desc, CompileOptions opts = {})
      : name(std::move(name)), desc(std::move(desc)), opts(std::move(opts)) {}

  std::string name;    ///< label for reports; defaults to the chip's own name
  std::string source;  ///< chip description text (ignored when `desc` is set)
  std::optional<icl::ChipDesc> desc;  ///< pre-built description; no parse stage
  CompileOptions opts; ///< per-job options (seeded from the batch default)
};

struct BatchResult {
  std::string name;
  CompiledChipPtr chip;  ///< null when the compile failed
  icl::DiagnosticList diags;
  std::chrono::nanoseconds elapsed{};

  [[nodiscard]] bool ok() const noexcept { return chip != nullptr; }
};

class BatchCompiler {
 public:
  /// `threads` == 0 picks the hardware concurrency.
  explicit BatchCompiler(CompileOptions defaults = {}, unsigned threads = 0);

  /// Compile every job; results come back in job order. A failed job
  /// carries its diagnostics, it never aborts the batch.
  [[nodiscard]] std::vector<BatchResult> compileAll(std::vector<BatchJob> jobs) const;

  /// Convenience: bare sources, batch-default options.
  [[nodiscard]] std::vector<BatchResult> compileAll(
      const std::vector<std::string>& sources) const;

  /// Convenience: pre-built descriptions, batch-default options. No job
  /// parses; this is the high-throughput path for programmatic sweeps.
  [[nodiscard]] std::vector<BatchResult> compileAll(
      std::vector<icl::ChipDesc> descs) const;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] const CompileOptions& defaults() const noexcept { return defaults_; }

 private:
  CompileOptions defaults_;
  unsigned threads_;
};

}  // namespace bb::core
