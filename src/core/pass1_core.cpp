#include "core/pass1_core.hpp"

#include "elements/busparts.hpp"
#include "elements/generators.hpp"
#include "elements/slicekit.hpp"

#include <algorithm>
#include <cmath>

namespace bb::core {

namespace {

using elements::ElementContext;
using elements::lam;
using geom::Coord;
using geom::Rect;

/// Build a power trunk column: a vertical strip connecting one rail kind
/// of every slice row, with a supply-pad bristle. `gnd` selects which
/// rail the stubs reach.
cell::Cell* buildTrunk(cell::CellLibrary& lib, const std::string& name, bool gnd,
                       Coord slicePitch, int rows, Coord gndY1, Coord vddY0, Coord vddY1) {
  cell::Cell* c = lib.create(name);
  const Coord w = lam(8);
  const Coord h = slicePitch * rows;
  using tech::Layer;
  if (gnd) {
    // Strip on the west, stubs east to each GND rail.
    c->addRect(Layer::Metal, Rect{lam(1), 0, lam(5), h});
    for (int r = 0; r < rows; ++r) {
      const Coord y = slicePitch * r;
      c->addRect(Layer::Metal, Rect{lam(1), y, w, y + gndY1});
    }
  } else {
    // Strip on the east, stubs west to each Vdd rail.
    c->addRect(Layer::Metal, Rect{lam(3), 0, lam(7), h});
    for (int r = 0; r < rows; ++r) {
      const Coord y = slicePitch * r;
      c->addRect(Layer::Metal, Rect{0, y + vddY0, lam(7), y + vddY1});
    }
  }
  cell::Bristle b;
  b.name = gnd ? "gnd" : "vdd";
  b.flavor = gnd ? cell::BristleFlavor::PadGnd : cell::BristleFlavor::PadVdd;
  b.side = cell::Side::South;
  b.pos = {gnd ? lam(3) : lam(5), 0};
  b.layer = Layer::Metal;
  b.width = lam(4);
  b.net = b.name;
  c->addBristle(std::move(b));
  c->setBoundary(Rect{0, 0, w, h});
  c->setDoc(gnd ? "GND trunk column" : "Vdd trunk column");
  return c;
}

}  // namespace

bool runPass1(CompiledChip& chip, const std::vector<icl::ElementDecl>& decls,
              const Pass1Options& opts, icl::DiagnosticList& diags) {
  ElementContext ctx;
  ctx.dataWidth = chip.desc.dataWidth;
  ctx.busCount = static_cast<int>(chip.desc.buses.size());
  ctx.microcode = &chip.desc.microcode;
  ctx.lib = &chip.lib;

  // --- instantiate the generators ---------------------------------------
  std::vector<std::unique_ptr<elements::Element>> gens;
  for (const icl::ElementDecl& d : decls) {
    auto e = elements::makeElement(d, chip.desc, diags);
    if (e != nullptr) gens.push_back(std::move(e));
  }
  if (diags.hasErrors()) return false;
  if (gens.empty()) {
    diags.error({}, "the core element list is empty");
    return false;
  }

  // --- step 1+2: vote, find the widest cell ------------------------------
  elements::ParameterBallot ballot;
  for (const auto& g : gens) {
    g->vote(ballot, ctx);
    // Power estimate vote: generation will refine it; the rail width must
    // be fixed before cells are produced, so vote the natural pitch's
    // worst case — one depletion load per kit unit is a safe ceiling;
    // elements with exact knowledge could vote tighter.
    ballot.voteSum("power_ua",
                   static_cast<double>(ctx.dataWidth) * tech::electrical().pullup_current_ua);
  }
  const Coord naturalMax = ballot.maxOf("pitch", elements::contract().naturalPitch);
  chip.stats.naturalPitchMax = naturalMax;
  ctx.pitch = naturalMax;

  // Rail widening from the power vote: rails default to 4L; every extra
  // milliamp beyond the 4L capacity stretches both rails.
  const double totalUa = ballot.sumOf("power_ua");
  const double capacityUa = opts.railCapacityUaPerLambda * 4.0;
  Coord widen = 0;
  if (totalUa > capacityUa) {
    widen = lam(static_cast<Coord>(
        std::ceil((totalUa - capacityUa) / opts.railCapacityUaPerLambda)));
  }
  ctx.railWiden = widen;
  chip.stats.powerRailWidth = lam(4) + widen;
  const Coord slicePitch = ctx.pitch + 2 * widen;  // final stacked pitch
  chip.stats.pitch = slicePitch;

  // --- step 3+4: execute elements, manage bus segments -------------------
  struct Column {
    cell::Cell* cell;
    std::string name;
    std::string kind;
    std::vector<elements::ControlLine> controls;
    bool usesBus[2];
  };
  std::vector<Column> columns;
  int segment[2] = {1, 1};
  auto segPrefix = [&](int bus) {
    const std::string base = bus == 0 ? "busA" : "busB";
    return segment[bus] == 1 ? base : base + "#" + std::to_string(segment[bus]);
  };

  auto insertPrecharge = [&](bool busA, bool busB) {
    const std::string pname = "pre" + std::to_string(chip.stats.prechargeColumns++);
    elements::PrechargeResult pr = elements::buildPrechargeColumn(ctx, pname, busA, busB);
    Column col{pr.column, pname, "precharge", {pr.control}, {busA, busB}};
    columns.push_back(std::move(col));
    if (busA) elements::emitPrechargeLogic(chip.logic, pr.control.name, ctx.busPrefix[0],
                                           ctx.dataWidth);
    if (busB) elements::emitPrechargeLogic(chip.logic, pr.control.name, ctx.busPrefix[1],
                                           ctx.dataWidth);
  };

  // A fresh segment starts at the head of the core for both buses.
  insertPrecharge(true, ctx.busCount > 1);

  std::size_t gi = 0;
  for (const auto& g : gens) {
    (void)gi;
    elements::GeneratedElement ge = g->generate(ctx);
    if (ge.column == nullptr) {
      diags.error({}, "element '" + g->name() + "' produced no column");
      return false;
    }
    g->emitLogic(chip.logic, ctx);
    columns.push_back(Column{ge.column, g->name(), std::string(g->kind()), ge.controls,
                             {ge.usesBus[0], ge.usesBus[1]}});
    chip.stats.power_ua += ge.power_ua;
    // A bus stop ends the segment; the next element sees a fresh bus.
    for (int b = 0; b < 2; ++b) {
      if (ge.stopsBus[b]) {
        ++segment[b];
        ++chip.stats.busSegments[b];
        ctx.busPrefix[b] = segPrefix(b);
        insertPrecharge(b == 0, b == 1);
      }
    }
    ++gi;
  }

  // --- step 5: abut columns into the core cell ---------------------------
  chip.core = chip.lib.create("core");
  Coord x = 0;
  // West GND trunk.
  cell::Cell* gndTrunk =
      buildTrunk(chip.lib, "gnd_trunk", true, slicePitch, ctx.dataWidth,
                 elements::contract().gndY1 + widen,
                 elements::contract().vddY0(ctx.pitch) + widen,
                 elements::contract().vddY1(ctx.pitch) + 2 * widen);
  chip.core->addInstance(gndTrunk, geom::Transform::translate({x, 0}), "gnd_trunk");
  for (const cell::Bristle& b : gndTrunk->bristles()) {
    cell::Bristle nb = b;
    nb.pos += geom::Point{x, 0};
    chip.core->addBristle(std::move(nb));
  }
  x += gndTrunk->width();

  for (Column& col : columns) {
    chip.core->addInstance(col.cell, geom::Transform::translate({x, 0}), col.name);
    PlacedElement pe;
    pe.name = col.name;
    pe.kind = col.kind;
    pe.column = col.cell;
    pe.x = x;
    pe.usesBus[0] = col.usesBus[0];
    pe.usesBus[1] = col.usesBus[1];
    for (elements::ControlLine cl : col.controls) {
      cl.xOffset += x;  // absolute within the core
      pe.controls.push_back(cl);
      chip.controls.push_back(cl);
    }
    // Re-expose pad-request bristles at core level (absolute coords).
    for (const cell::Bristle& b : col.cell->bristles()) {
      if (cell::isPadRequest(b.flavor)) {
        cell::Bristle nb = b;
        nb.pos += geom::Point{x, 0};
        chip.core->addBristle(std::move(nb));
      }
    }
    chip.placed.push_back(std::move(pe));
    x += col.cell->width();
  }

  // East Vdd trunk.
  cell::Cell* vddTrunk =
      buildTrunk(chip.lib, "vdd_trunk", false, slicePitch, ctx.dataWidth,
                 elements::contract().gndY1 + widen,
                 elements::contract().vddY0(ctx.pitch) + widen,
                 elements::contract().vddY1(ctx.pitch) + 2 * widen);
  chip.core->addInstance(vddTrunk, geom::Transform::translate({x, 0}), "vdd_trunk");
  for (const cell::Bristle& b : vddTrunk->bristles()) {
    cell::Bristle nb = b;
    nb.pos += geom::Point{x, 0};
    chip.core->addBristle(std::move(nb));
  }
  x += vddTrunk->width();

  const Coord coreH = slicePitch * ctx.dataWidth;
  chip.core->setBoundary(Rect{0, 0, x, coreH});
  chip.core->setDoc("chip core: " + std::to_string(columns.size()) + " columns at pitch " +
                    std::to_string(slicePitch / geom::kUnitsPerLambda) + "L");
  chip.stats.coreWidth = x;
  chip.stats.coreHeight = coreH;
  chip.stats.coreArea = x * coreH;
  chip.stats.controlCount = chip.controls.size();
  return true;
}

}  // namespace bb::core
