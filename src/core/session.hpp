/// \file session.hpp
/// The staged compiler pipeline. A `CompileSession` walks the paper's
/// flow as six explicit, individually runnable stages:
///
///   parse -> vote -> pass1 -> pass2 -> pass3 -> finalize
///
/// where `vote` is the conditional-assembly step that fixes the element
/// list ("at any time prior to actually compiling the chip, the user may
/// decide ..."), and finalize fills the bookkeeping stats. Each stage can
/// be run one at a time and the partial chip inspected in between — stop
/// after pass1 and look at the placement, attach a `PassObserver` for
/// per-stage timing, or just call `run()` for the whole flow.

#pragma once

#include "core/chip.hpp"
#include "core/expected.hpp"
#include "core/options.hpp"

#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bb::core {

enum class Stage : std::uint8_t { Parse = 0, Vote, Pass1, Pass2, Pass3, Finalize };

inline constexpr std::array<Stage, 6> kAllStages = {Stage::Parse, Stage::Vote,
                                                    Stage::Pass1, Stage::Pass2,
                                                    Stage::Pass3, Stage::Finalize};

[[nodiscard]] std::string_view stageName(Stage s) noexcept;

class CompileSession;

/// Pass-level hook: attach to a session to watch stages run. Used for
/// timing, progress reporting and instrumentation; observers are
/// non-owning and must outlive the session's stage runs.
class PassObserver {
 public:
  virtual ~PassObserver() = default;
  virtual void onStageBegin(Stage, const CompileSession&) {}
  virtual void onStageEnd(Stage, const CompileSession&, bool /*ok*/,
                          std::chrono::nanoseconds) {}
};

/// Ready-made observer: records wall-clock time per stage.
class TimingObserver : public PassObserver {
 public:
  void onStageEnd(Stage s, const CompileSession&, bool,
                  std::chrono::nanoseconds ns) override {
    ns_[static_cast<std::size_t>(s)] += ns;
  }

  [[nodiscard]] std::chrono::nanoseconds elapsed(Stage s) const noexcept {
    return ns_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::chrono::nanoseconds total() const noexcept;
  [[nodiscard]] std::string report() const;

 private:
  std::array<std::chrono::nanoseconds, kAllStages.size()> ns_{};
};

using CompiledChipPtr = std::unique_ptr<CompiledChip>;

class CompileSession {
 public:
  /// A session over source text: starts at the parse stage.
  explicit CompileSession(std::string source, CompileOptions opts = {});

  /// A session over a typed description — the first-class entry point
  /// for programmatically built chips (`icl::ChipBuilder`, the samples,
  /// a description taken from another session). The parse stage is a
  /// no-op that adopts `desc`; every later stage behaves identically to
  /// the text path, so a built description and its `toString()` source
  /// compile to the same chip.
  CompileSession(icl::ChipDesc desc, CompileOptions opts = {});

  CompileSession(CompileSession&&) = default;
  CompileSession& operator=(CompileSession&&) = default;

  void addObserver(PassObserver* obs);

  // ---- driving the pipeline -------------------------------------------
  /// The stage the next `runNext()` would execute. Meaningless once
  /// `finished()` or `failed()`.
  [[nodiscard]] Stage nextStage() const noexcept { return next_; }
  /// True once finalize has completed successfully.
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  /// True once any stage has diagnosed an error; later stages refuse to run.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Run exactly one stage. Returns false if the stage failed, the
  /// session had already failed, or the pipeline is already finished.
  bool runNext();
  /// Run stages up to and including `last`. False on failure.
  bool runTo(Stage last);
  /// Run everything that is left and hand over the chip.
  [[nodiscard]] Expected<CompiledChipPtr> run();

  // ---- inspection between stages --------------------------------------
  [[nodiscard]] const icl::DiagnosticList& diagnostics() const noexcept { return diags_; }
  /// The parsed description (after the parse stage; null before).
  [[nodiscard]] const icl::ChipDesc* description() const noexcept;
  /// The conditionally-assembled element list (after the vote stage).
  [[nodiscard]] const std::vector<icl::ElementDecl>& assembledElements() const noexcept {
    return decls_;
  }
  /// The chip under construction — partial until finalize. Null before
  /// the vote stage or after `takeChip()`.
  [[nodiscard]] const CompiledChip* chip() const noexcept { return chip_.get(); }
  /// Take ownership of the finished chip (after finalize).
  [[nodiscard]] CompiledChipPtr takeChip();

  [[nodiscard]] const CompileOptions& options() const noexcept { return opts_; }

 private:
  bool runStage(Stage s);
  bool execute(Stage s);

  CompileOptions opts_;
  std::string source_;
  bool haveDesc_ = false;  ///< constructed from a ChipDesc (parse adopts it)
  icl::ChipDesc desc_;
  std::vector<icl::ElementDecl> decls_;
  CompiledChipPtr chip_;
  icl::DiagnosticList diags_;
  std::vector<PassObserver*> observers_;
  Stage next_ = Stage::Parse;
  bool parsed_ = false;
  bool finished_ = false;
  bool failed_ = false;
};

/// One-shot convenience: the whole pipeline over source text.
[[nodiscard]] Expected<CompiledChipPtr> compileChip(std::string_view source,
                                                    CompileOptions opts = {});

/// One-shot convenience over a typed description: skips parsing
/// entirely. `compileChip(ChipBuilder("c")....buildOrDie())` and
/// `compileChip(desc.toString())` produce bit-identical chips.
[[nodiscard]] Expected<CompiledChipPtr> compileChip(icl::ChipDesc desc,
                                                    CompileOptions opts = {});

}  // namespace bb::core
