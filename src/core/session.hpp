/// \file session.hpp
/// The staged compiler pipeline. A `CompileSession` walks the paper's
/// flow as six explicit, individually runnable stages:
///
///   parse -> vote -> pass1 -> pass2 -> pass3 -> finalize
///
/// where `vote` is the conditional-assembly step that fixes the element
/// list ("at any time prior to actually compiling the chip, the user may
/// decide ..."), and finalize fills the bookkeeping stats. Each stage can
/// be run one at a time and the partial chip inspected in between — stop
/// after pass1 and look at the placement, attach a `PassObserver` for
/// per-stage timing, or just call `run()` for the whole flow.

#pragma once

#include "core/chip.hpp"
#include "core/expected.hpp"
#include "core/options.hpp"

#include <array>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bb::lint {
struct LintReport;
}

namespace bb::core {

enum class Stage : std::uint8_t { Parse = 0, Vote, Pass1, Pass2, Pass3, Finalize };

inline constexpr std::array<Stage, 6> kAllStages = {Stage::Parse, Stage::Vote,
                                                    Stage::Pass1, Stage::Pass2,
                                                    Stage::Pass3, Stage::Finalize};

[[nodiscard]] std::string_view stageName(Stage s) noexcept;

class CompileSession;

/// Pass-level hook: attach to a session to watch stages run. Used for
/// timing, progress reporting and instrumentation; observers are
/// non-owning and must outlive the session's stage runs.
class PassObserver {
 public:
  virtual ~PassObserver() = default;
  virtual void onStageBegin(Stage, const CompileSession&) {}
  virtual void onStageEnd(Stage, const CompileSession&, bool /*ok*/,
                          std::chrono::nanoseconds) {}
};

/// Ready-made observer: records wall-clock time per stage.
class TimingObserver : public PassObserver {
 public:
  void onStageEnd(Stage s, const CompileSession&, bool,
                  std::chrono::nanoseconds ns) override {
    ns_[static_cast<std::size_t>(s)] += ns;
  }

  [[nodiscard]] std::chrono::nanoseconds elapsed(Stage s) const noexcept {
    return ns_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::chrono::nanoseconds total() const noexcept;
  [[nodiscard]] std::string report() const;

 private:
  std::array<std::chrono::nanoseconds, kAllStages.size()> ns_{};
};

using CompiledChipPtr = std::unique_ptr<CompiledChip>;

class CompileSession {
 public:
  /// A session over source text: starts at the parse stage.
  explicit CompileSession(std::string source, CompileOptions opts = {});

  /// A session over a typed description — the first-class entry point
  /// for programmatically built chips (`icl::ChipBuilder`, the samples,
  /// a description taken from another session). The parse stage is a
  /// no-op that adopts `desc`; every later stage behaves identically to
  /// the text path, so a built description and its `toString()` source
  /// compile to the same chip.
  CompileSession(icl::ChipDesc desc, CompileOptions opts = {});

  CompileSession(CompileSession&&) = default;
  CompileSession& operator=(CompileSession&&) = default;

  void addObserver(PassObserver* obs);

  // ---- driving the pipeline -------------------------------------------
  /// The stage the next `runNext()` would execute. Meaningless once
  /// `finished()` or `failed()`.
  [[nodiscard]] Stage nextStage() const noexcept { return next_; }
  /// True once finalize has completed successfully.
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  /// True once any stage has diagnosed an error; later stages refuse to run.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Run exactly one stage. Returns false if the stage failed, the
  /// session had already failed, or the pipeline is already finished.
  bool runNext();
  /// Run stages up to and including `last`. False on failure.
  bool runTo(Stage last);
  /// Run everything that is left and hand over the chip.
  [[nodiscard]] Expected<CompiledChipPtr> run();

  // ---- incremental recompilation ---------------------------------------
  /// Stage-level memoization. When on, the session checkpoints the chip
  /// after pass1 and pass2 (a deep `CompiledChip::clone()`), so an edit
  /// that dirties a later stage re-runs only from that stage against the
  /// checkpoint instead of recompiling from scratch. Costs ~2 chip copies
  /// of memory per session; the compile service turns it on for sessions
  /// it keeps warm. Turning it on mid-pipeline checkpoints from the next
  /// stage onward only.
  void setIncremental(bool on) noexcept { incremental_ = on; }
  [[nodiscard]] bool incremental() const noexcept { return incremental_; }

  /// Roll the pipeline back so the next run re-executes from `s`. If the
  /// exact restart point is unavailable (no checkpoint — memoization off,
  /// stage never reached, or the chip was taken), degrades to the nearest
  /// earlier restartable stage, down to a full re-run from parse. Returns
  /// the stage actually restarted from; clears `failed()`/`finished()`.
  /// Memoized stage outputs before the restart point are reused as-is:
  /// re-running from pass1 does not re-vote, re-running from pass3 reuses
  /// the post-pass2 checkpoint.
  Stage invalidateFrom(Stage s);

  /// Replace the option set. Compares per-stage input fingerprints
  /// (`core::stageOptionsFingerprint`) and invalidates from the first
  /// stage whose inputs actually changed: editing only pass3 options on a
  /// finished incremental session re-runs pass3 + finalize and nothing
  /// else. Returns the stage the next run starts from, or nullopt when
  /// nothing dirtied an already-executed stage (options updated in place).
  std::optional<Stage> setOptions(const CompileOptions& opts);

  /// Replace the chip description (the session becomes a typed-desc
  /// session regardless of how it was constructed). A description whose
  /// canonical `toString()` is unchanged is a no-op; otherwise
  /// invalidates from the vote stage (the first consumer of the parsed
  /// description). Returns like `setOptions`.
  std::optional<Stage> setDescription(icl::ChipDesc desc);

  /// How many times stage `s` actually executed over the session's life —
  /// memoized skips don't count. This is how tests and the service bench
  /// prove an incremental re-run or a cached viewport request never
  /// re-ran a stage.
  [[nodiscard]] std::size_t executionCount(Stage s) const noexcept {
    return execCount_[static_cast<std::size_t>(s)];
  }
  /// Total stage executions (all stages summed).
  [[nodiscard]] std::size_t totalExecutions() const noexcept;

  // ---- inspection between stages --------------------------------------
  [[nodiscard]] const icl::DiagnosticList& diagnostics() const noexcept { return diags_; }
  /// The parsed description (after the parse stage; null before).
  [[nodiscard]] const icl::ChipDesc* description() const noexcept;
  /// The conditionally-assembled element list (after the vote stage).
  [[nodiscard]] const std::vector<icl::ElementDecl>& assembledElements() const noexcept {
    return decls_;
  }
  /// The chip under construction — partial until finalize. Null before
  /// the vote stage or after `takeChip()`.
  [[nodiscard]] const CompiledChip* chip() const noexcept { return chip_.get(); }
  /// Take ownership of the finished chip (after finalize).
  [[nodiscard]] CompiledChipPtr takeChip();

  /// The lint report finalize produced, when `CompileOptions::lint` was
  /// enabled; null otherwise (or before finalize, or after a rollback).
  [[nodiscard]] std::shared_ptr<const lint::LintReport> lintReport() const noexcept {
    return lintReport_;
  }

  [[nodiscard]] const CompileOptions& options() const noexcept { return opts_; }

 private:
  bool runStage(Stage s);
  bool execute(Stage s);
  [[nodiscard]] bool canRestartAt(Stage s) const noexcept;
  [[nodiscard]] bool& doneFlag(Stage s) noexcept {
    return stageDone_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool done(Stage s) const noexcept {
    return stageDone_[static_cast<std::size_t>(s)];
  }

  CompileOptions opts_;
  std::string source_;
  bool haveDesc_ = false;  ///< constructed from a ChipDesc (parse adopts it)
  icl::ChipDesc desc_;
  std::vector<icl::ElementDecl> decls_;
  CompiledChipPtr chip_;
  icl::DiagnosticList diags_;
  std::vector<PassObserver*> observers_;
  Stage next_ = Stage::Parse;
  bool parsed_ = false;
  bool finished_ = false;
  bool failed_ = false;

  // Incremental-recompilation state. The checkpoints are post-stage chip
  // clones; the diagnostics snapshots record the list as each stage
  // began, so rolling back also rolls the diagnostics back.
  bool incremental_ = false;
  std::array<bool, kAllStages.size()> stageDone_{};
  std::array<std::size_t, kAllStages.size()> execCount_{};
  std::array<std::optional<icl::DiagnosticList>, kAllStages.size()> diagsBefore_;
  CompiledChipPtr afterPass1_;
  CompiledChipPtr afterPass2_;
  std::shared_ptr<const lint::LintReport> lintReport_;
};

/// One-shot convenience: the whole pipeline over source text.
[[nodiscard]] Expected<CompiledChipPtr> compileChip(std::string_view source,
                                                    CompileOptions opts = {});

/// One-shot convenience over a typed description: skips parsing
/// entirely. `compileChip(ChipBuilder("c")....buildOrDie())` and
/// `compileChip(desc.toString())` produce bit-identical chips.
[[nodiscard]] Expected<CompiledChipPtr> compileChip(icl::ChipDesc desc,
                                                    CompileOptions opts = {});

}  // namespace bb::core
