/// \file pass2_control.hpp
/// Pass 2 — control design. "Given the results of the core pass, the
/// control design and layout proceeds": control buffers are inserted
/// along the core's edge (adding timing), the text array of decode
/// functions is built, and the two-tape machine generates and optimizes
/// the instruction decoder, creating pad connections for its inputs.

#pragma once

#include "core/chip.hpp"

namespace bb::core {

struct Pass2Options {
  /// Run the optimizer passes of the two-tape machine (ablation switch).
  bool optimizeDecoder = true;
};

bool runPass2(CompiledChip& chip, const Pass2Options& opts, icl::DiagnosticList& diags);

/// Geometry constants of the rendered PLA (shared with benches/tests).
struct PlaGeometry {
  geom::Coord colW = geom::lambda(14);   ///< crosspoint column width
  geom::Coord rowH = geom::lambda(26);   ///< term row height
  geom::Coord chanPitch = geom::lambda(8);  ///< routing channel track pitch
};
[[nodiscard]] const PlaGeometry& plaGeometry() noexcept;

}  // namespace bb::core
