/// \file digest.hpp
/// Content hashing for the compile service. A `Digest` is an incremental
/// 64-bit FNV-1a hash with typed `update` overloads that fold values into
/// a canonical byte encoding (fixed-width little-endian integers, IEEE
/// bits for doubles, length-delimited strings), so the same logical value
/// always produces the same digest regardless of platform or call-site
/// formatting. It is the keying primitive of the content-addressed chip
/// cache: `svc::ChipCache` keys are digests of the canonical
/// `icl::ChipDesc::toString()` plus a `CompileOptions` fingerprint (see
/// fingerprint.hpp).
///
/// FNV-1a is not cryptographic — it is a fast, well-distributed content
/// hash for cache addressing, where a collision costs a wrong cache hit
/// in-process, not a security boundary.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace bb::core {

class Digest {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  constexpr Digest() = default;
  /// Chain from a previous digest value (stage-fingerprint chaining).
  constexpr explicit Digest(std::uint64_t seed) : h_(seed) {}

  /// Raw bytes.
  Digest& update(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
    return *this;
  }

  /// Length-delimited string: the bytes followed by the length, so
  /// ("ab","c") and ("a","bc") fold differently.
  Digest& update(std::string_view s) noexcept {
    update(s.data(), s.size());
    return update(static_cast<std::uint64_t>(s.size()));
  }

  /// Fixed-width little-endian encoding of any integral (incl. bool,
  /// enums go through the integral overload via a cast at the call site).
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  Digest& update(T v) noexcept {
    std::uint64_t u;
    if constexpr (std::is_same_v<T, bool>) {
      u = v ? 1 : 0;
    } else {
      u = static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
    }
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(u >> (8 * i));
    return update(bytes, sizeof bytes);
  }

  /// IEEE-754 bit pattern, so 1.0 and 1.0000000001 differ and -0.0/0.0
  /// differ (an options edit that flips a double always re-fingerprints).
  Digest& update(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return update(bits);
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

  /// 16 lowercase hex digits — the content address in log/report form.
  [[nodiscard]] std::string hex() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) out[static_cast<std::size_t>(i)] = kHex[(h_ >> (60 - 4 * i)) & 0xF];
    return out;
  }

  /// One-shot convenience.
  [[nodiscard]] static std::uint64_t of(std::string_view s) noexcept {
    return Digest{}.update(s).value();
  }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace bb::core
