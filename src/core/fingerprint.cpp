#include "core/fingerprint.hpp"

namespace bb::core {

namespace {

void updateVars(Digest& d, const CompileOptions& opts) {
  // std::map iterates in key order, so insertion order never leaks in.
  d.update(static_cast<std::uint64_t>(opts.vars.size()));
  for (const auto& [name, value] : opts.vars) {
    d.update(std::string_view{name});
    d.update(value);
  }
}

void updatePass1(Digest& d, const CompileOptions& opts) {
  d.update(opts.pass1.railCapacityUaPerLambda);
}

void updatePass2(Digest& d, const CompileOptions& opts) {
  d.update(opts.pass2.optimizeDecoder);
}

void updatePass3(Digest& d, const CompileOptions& opts) {
  d.update(opts.pass3.rotoRouter);
  d.update(opts.pass3.evenSpacing);
  d.update(static_cast<std::int64_t>(opts.pass3.ringGapLambda));
}

}  // namespace

void updateDigest(Digest& d, const lint::LintOptions& opts) {
  d.update(opts.enabled);
  d.update(static_cast<std::uint8_t>(opts.minSeverity));
  d.update(static_cast<std::uint64_t>(opts.rules.size()));
  for (const std::string& r : opts.rules) d.update(std::string_view{r});
  d.update(static_cast<std::uint64_t>(opts.suppress.size()));
  for (const std::string& s : opts.suppress) d.update(std::string_view{s});
  d.update(opts.boundaryConditions);
  // opts.threads deliberately left out: reports are byte-identical at
  // any fan-out width, so a width change must not re-run anything.
}

void updateDigest(Digest& d, const CompileOptions& opts) {
  updateVars(d, opts);
  updatePass1(d, opts);
  updatePass2(d, opts);
  updatePass3(d, opts);
  updateDigest(d, opts.lint);
}

std::uint64_t optionsFingerprint(const CompileOptions& opts) {
  Digest d;
  updateDigest(d, opts);
  return d.value();
}

std::uint64_t stageOptionsFingerprint(Stage s, const CompileOptions& opts) {
  // Tag with the stage so an empty fingerprint for parse never equals an
  // empty fingerprint for finalize.
  Digest d;
  d.update(static_cast<std::uint64_t>(s));
  switch (s) {
    case Stage::Parse:
      break;  // no option inputs
    case Stage::Finalize:
      updateDigest(d, opts.lint);  // finalize runs the opt-in lint pass
      break;
    case Stage::Vote:
      updateVars(d, opts);
      break;
    case Stage::Pass1:
      updatePass1(d, opts);
      break;
    case Stage::Pass2:
      updatePass2(d, opts);
      break;
    case Stage::Pass3:
      updatePass3(d, opts);
      break;
  }
  return d.value();
}

std::uint64_t requestDigest(const icl::ChipDesc& desc, const CompileOptions& opts) {
  Digest d;
  d.update(std::string_view{"bb-chip-request-v1"});
  d.update(std::string_view{desc.toString()});  // the canonical hashing contract
  updateDigest(d, opts);
  return d.value();
}

}  // namespace bb::core
