#include "core/batch.hpp"

#include "core/workqueue.hpp"

#include <thread>

namespace bb::core {

BatchCompiler::BatchCompiler(CompileOptions defaults, unsigned threads)
    : defaults_(std::move(defaults)),
      threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {}

std::vector<BatchResult> BatchCompiler::compileAll(std::vector<BatchJob> jobs) const {
  std::vector<BatchResult> results(jobs.size());

  runWorkQueue(jobs.size(), threads_, [&](std::size_t i) {
    BatchJob& job = jobs[i];
    BatchResult& res = results[i];
    const auto t0 = std::chrono::steady_clock::now();
    CompileSession session =
        job.desc.has_value()
            ? CompileSession(std::move(*job.desc), std::move(job.opts))
            : CompileSession(std::move(job.source), std::move(job.opts));
    auto outcome = session.run();
    res.elapsed = std::chrono::steady_clock::now() - t0;
    res.diags = outcome.diagnostics();
    if (outcome) res.chip = std::move(*outcome);
    res.name = !job.name.empty()        ? std::move(job.name)
               : res.chip != nullptr    ? res.chip->desc.name
                                        : "<job " + std::to_string(i) + ">";
  });
  return results;
}

std::vector<BatchResult> BatchCompiler::compileAll(
    const std::vector<std::string>& sources) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(sources.size());
  for (const std::string& src : sources) jobs.push_back({"", src, defaults_});
  return compileAll(std::move(jobs));
}

std::vector<BatchResult> BatchCompiler::compileAll(
    std::vector<icl::ChipDesc> descs) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(descs.size());
  for (icl::ChipDesc& desc : descs) jobs.push_back({"", std::move(desc), defaults_});
  return compileAll(std::move(jobs));
}

}  // namespace bb::core
