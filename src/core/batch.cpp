#include "core/batch.hpp"

#include "core/pool.hpp"
#include "core/workqueue.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace bb::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Resolve a job's report name exactly like the original scheduler did.
std::string resolveName(BatchJob& job, const BatchResult& res, std::size_t i) {
  if (!job.name.empty()) return std::move(job.name);
  if (res.chip != nullptr) return res.chip->desc.name;
  return "<job " + std::to_string(i) + ">";
}

/// The pipelined batch: shared by every stage task of one compileAll
/// call. Lives on the caller's stack — `compileAll` does not return
/// until `group.wait()` has retired every task, so references into it
/// are safe to capture.
struct Pipeline {
  std::vector<BatchJob>& jobs;
  std::vector<BatchResult>& results;
  const drc::DeckChecker* checker;  ///< null = no DRC stage
  TaskGroup group;
  Clock::time_point batchStart = Clock::now();
  std::vector<std::unique_ptr<CompileSession>> sessions;
  std::vector<Clock::time_point> jobStart;
  unsigned width;                       ///< admission lanes
  std::atomic<std::size_t> nextJob{0};  ///< admission cursor
  std::atomic<std::size_t> completed{0};

  Pipeline(std::vector<BatchJob>& jobs, std::vector<BatchResult>& results,
           const drc::DeckChecker* checker, unsigned width)
      : jobs(jobs), results(results), checker(checker),
        sessions(jobs.size()), jobStart(jobs.size()), width(width) {}

  /// Claim the next unadmitted job (if any) and submit its first stage.
  void admit() {
    const std::size_t i = nextJob.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs.size()) return;
    group.run([this, i] { start(i); });
  }

  void start(std::size_t i) {
    jobStart[i] = Clock::now();
    BatchJob& job = jobs[i];
    sessions[i] = job.desc.has_value()
                      ? std::make_unique<CompileSession>(std::move(*job.desc),
                                                         std::move(job.opts))
                      : std::make_unique<CompileSession>(std::move(job.source),
                                                         std::move(job.opts));
    step(i);
  }

  /// Run exactly one pipeline stage, then yield the lane: the follow-up
  /// task goes to the back of the queue, so another job's stage can
  /// interleave — this is what lets a small chip stream past a large
  /// one instead of waiting for a whole-job slot.
  void step(std::size_t i) {
    CompileSession& s = *sessions[i];
    s.runNext();
    if (!s.failed() && !s.finished()) {
      group.run([this, i] { step(i); });
      return;
    }
    finish(i);
  }

  void finish(std::size_t i) {
    CompileSession& s = *sessions[i];
    BatchResult& res = results[i];
    res.diags = s.diagnostics();
    if (s.finished()) res.chip = s.takeChip();
    res.name = resolveName(jobs[i], res, i);
    if (checker != nullptr && res.chip != nullptr) {
      // Tail fan-out: while the batch still has at least a lane's worth
      // of jobs in flight, each job checks its rules serially on its own
      // task (job-level parallelism already fills the pool). Once fewer
      // jobs remain than the batch is wide, workers are going idle — so
      // the stragglers' rule units fan out across the full pool instead.
      const std::size_t remaining =
          jobs.size() - completed.load(std::memory_order_relaxed);
      const unsigned drcWidth = remaining < width ? 0u : 1u;
      res.drc = checker->check(res.chip->flatTop(), res.chip->top->boundary(),
                               drcWidth);
    }
    const Clock::time_point now = Clock::now();
    res.elapsed = now - jobStart[i];
    res.finishedAfter = now - batchStart;
    sessions[i].reset();
    completed.fetch_add(1, std::memory_order_relaxed);
    admit();  // keep the lane busy
  }
};

}  // namespace

BatchCompiler::BatchCompiler(CompileOptions defaults, unsigned threads, Mode mode)
    : defaults_(std::move(defaults)),
      threads_(threads != 0 ? threads : ThreadPool::global().workerCount() + 1),
      mode_(mode) {}

BatchCompiler& BatchCompiler::withDrc(const tech::RuleDeck& deck, drc::DrcOptions opts) {
  drcDeck_ = &deck;
  drcOpts_ = opts;
  return *this;
}

std::vector<BatchResult> BatchCompiler::compileAll(std::vector<BatchJob> jobs) const {
  return mode_ == Mode::Pipelined ? compilePipelined(std::move(jobs))
                                  : compileWholeJob(std::move(jobs));
}

std::vector<BatchResult> BatchCompiler::compilePipelined(std::vector<BatchJob> jobs) const {
  std::vector<BatchResult> results(jobs.size());
  if (jobs.empty()) return results;

  // One DeckChecker for the whole batch: the per-deck rule-unit plan is
  // shared by every job instead of being rebuilt per chip.
  std::optional<drc::DeckChecker> checker;
  if (drcDeck_ != nullptr) checker.emplace(*drcDeck_, drcOpts_);

  ThreadPool& pool = ThreadPool::global();
  const unsigned width = std::min(threads_, pool.workerCount() + 1);

  Pipeline p(jobs, results, checker ? &*checker : nullptr, width);
  // Seed one admission per lane; every completion admits a successor, so
  // at most `width` jobs are in flight at once while stages interleave
  // freely across them.
  const std::size_t lanes = std::min<std::size_t>(width, jobs.size());
  for (std::size_t l = 0; l < lanes; ++l) p.admit();
  p.group.wait();  // the caller participates as a lane worker
  return results;
}

std::vector<BatchResult> BatchCompiler::compileWholeJob(std::vector<BatchJob> jobs) const {
  std::vector<BatchResult> results(jobs.size());

  std::optional<drc::DeckChecker> checker;
  if (drcDeck_ != nullptr) checker.emplace(*drcDeck_, drcOpts_);

  const Clock::time_point batchStart = Clock::now();
  runWorkQueue(jobs.size(), threads_, [&](std::size_t i) {
    BatchJob& job = jobs[i];
    BatchResult& res = results[i];
    const Clock::time_point t0 = Clock::now();
    CompileSession session =
        job.desc.has_value()
            ? CompileSession(std::move(*job.desc), std::move(job.opts))
            : CompileSession(std::move(job.source), std::move(job.opts));
    auto outcome = session.run();
    res.diags = outcome.diagnostics();
    if (outcome) res.chip = std::move(*outcome);
    res.name = resolveName(job, res, i);
    if (checker && res.chip != nullptr) {
      res.drc = checker->check(res.chip->flatTop(), res.chip->top->boundary());
    }
    const Clock::time_point now = Clock::now();
    res.elapsed = now - t0;
    res.finishedAfter = now - batchStart;
  });
  return results;
}

std::vector<BatchResult> BatchCompiler::compileAll(
    const std::vector<std::string>& sources) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(sources.size());
  for (const std::string& src : sources) jobs.push_back({"", src, defaults_});
  return compileAll(std::move(jobs));
}

std::vector<BatchResult> BatchCompiler::compileAll(
    std::vector<icl::ChipDesc> descs) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(descs.size());
  for (icl::ChipDesc& desc : descs) jobs.push_back({"", std::move(desc), defaults_});
  return compileAll(std::move(jobs));
}

}  // namespace bb::core
