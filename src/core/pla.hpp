/// \file pla.hpp
/// The instruction decoder's programmable logic array: product terms over
/// the microcode word (AND plane) feeding the control outputs (OR plane).
/// Pass 2's two-tape machine "generates and optimizes" this structure:
/// optimization = canonicalization + term sharing across outputs +
/// adjacent-cube merging (single-bit Quine–McCluskey step), iterated to a
/// fixpoint.

#pragma once

#include "geom/geometry.hpp"
#include "icl/eval.hpp"

#include <string>
#include <vector>

namespace bb::core {

class Pla {
 public:
  Pla() = default;
  Pla(int inputWidth, int outputCount) : width_(inputWidth) {
    outputs_.resize(static_cast<std::size_t>(outputCount));
  }

  /// Add a product term for output `out`; identical terms are shared.
  void addCube(int out, const icl::Cube& cube);

  /// Add a private (unshared) term — the unoptimized decoder a naive
  /// generator would emit; used by the ABL-DECODER ablation.
  void addCubePrivate(int out, const icl::Cube& cube);

  /// Merge terms: two cubes with identical output sets differing in
  /// exactly one cared bit collapse into one. Returns merges performed.
  int optimize();

  [[nodiscard]] int inputWidth() const noexcept { return width_; }
  [[nodiscard]] std::size_t termCount() const noexcept { return terms_.size(); }
  [[nodiscard]] std::size_t outputCount() const noexcept { return outputs_.size(); }
  /// Total cared literals over all terms (PLA transistor cost, AND side).
  [[nodiscard]] std::size_t literalCount() const noexcept;
  /// Crosspoint count on the OR side.
  [[nodiscard]] std::size_t orPointCount() const noexcept;

  [[nodiscard]] const std::vector<icl::Cube>& terms() const noexcept { return terms_; }
  [[nodiscard]] const std::vector<std::vector<int>>& outputs() const noexcept {
    return outputs_;
  }

  /// Evaluate output `out` on a concrete microcode word.
  [[nodiscard]] bool eval(int out, unsigned long long word) const noexcept;

  /// Approximate silicon area of the PLA in grid units^2 (used by the
  /// decoder ablation bench): rows x (2*inputs + outputs) cells.
  [[nodiscard]] geom::Coord areaEstimate(geom::Coord cellW, geom::Coord rowH) const noexcept;

  [[nodiscard]] std::string toText() const;

 private:
  int width_ = 0;
  std::vector<icl::Cube> terms_;
  std::vector<std::vector<int>> outputs_;  ///< per output: term indices
};

}  // namespace bb::core
