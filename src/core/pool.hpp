/// \file pool.hpp
/// The persistent thread-pool scheduler. Every parallel site in the
/// compiler used to spawn and join fresh `std::thread`s per call
/// (`core::runWorkQueue`); under the compile service's sustained load
/// that is thread-creation thrash on the hot path, and nested parallel
/// calls (a service batch whose jobs each run threaded DRC) silently
/// oversubscribed the machine. A `ThreadPool` owns one set of
/// long-lived workers and schedules everything through a blocking task
/// queue instead:
///
///  * `ThreadPool::global()` is the process-shared pool every
///    `runWorkQueue` call site now lands on — one thread budget for
///    batch compilation, DRC rule groups and parallel tile emission.
///    Ownable instances exist for tests and embedders who want an
///    isolated budget.
///  * Workers are started lazily on the first submitted task, so a
///    process that never goes parallel never pays for a single spawn.
///  * `parallelFor(jobs, grain, fn)` chunks the index space and the
///    *calling thread participates as a worker*: a pool of W workers
///    gives W+1-wide loops, and with no workers (or width 1) the loop
///    degenerates to the plain serial loop on the caller.
///  * The first exception thrown by `fn` is captured and rethrown on
///    the caller after all workers drain (the spawn-per-call scheduler
///    called `std::terminate` instead).
///  * Nested submission is safe: a task that itself calls
///    `parallelFor` enqueues helper chunks and runs its own slice
///    inline — never a new thread, never a deadlock. While the pool is
///    saturated the nested loop simply runs serially on its task's
///    thread; when other workers are idle (the tail of a batch) they
///    pick the helper chunks up, which is how intra-chip DRC fan-out
///    kicks in automatically once fewer jobs remain than workers.
///
/// `TaskGroup` is the task-granular face of the same scheduler: submit
/// any number of tasks (tasks may submit follow-up tasks — that is how
/// the pipelined `BatchCompiler` chains one compile stage after
/// another), then `wait()`, which also executes queued tasks on the
/// calling thread instead of idling.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bb::core {

class TaskGroup;

class ThreadPool {
 public:
  /// `workers` = number of background worker threads; 0 picks
  /// hardware_concurrency - 1 (at least 1), so `parallelFor`'s width —
  /// workers plus the participating caller — matches the core count.
  /// Workers are not started until the first task is submitted.
  explicit ThreadPool(unsigned workers = 0);
  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-shared pool. Lazily constructed, workers lazily
  /// started; lives until process exit. This is the one thread budget
  /// every `runWorkQueue` shim call, batch compile, DRC fan-out and
  /// parallel tile emission shares — `ServiceOptions::threads` and
  /// `DrcOptions::threads` are width limits on it, not thread counts,
  /// so nesting them can never multiply threads.
  [[nodiscard]] static ThreadPool& global();

  [[nodiscard]] unsigned workerCount() const noexcept { return workers_; }
  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool insideWorker() const noexcept;

  /// Total tasks executed (helper chunks and group tasks, by workers and
  /// by participating callers). Monotonic; a warm serving path that
  /// stays flat here provably scheduled nothing.
  [[nodiscard]] std::uint64_t tasksExecuted() const noexcept {
    return tasksExecuted_.load(std::memory_order_relaxed);
  }
  /// Worker threads ever created. Flat after warmup — the counter the
  /// service bench asserts to prove the hot path spawns zero threads.
  [[nodiscard]] std::uint64_t threadsSpawned() const noexcept {
    return threadsSpawned_.load(std::memory_order_relaxed);
  }

  /// Run `fn(i)` for every i in [0, jobs), chunked `grain` indices per
  /// task (0 = 1). The caller participates; up to `maxParallel` threads
  /// run concurrently (0 = workers + caller). Blocks until every index
  /// ran; rethrows the first exception `fn` threw after all workers
  /// drain (indices after the throw may be skipped). Safe to call from
  /// inside a pool task (see the nested-submission note above).
  template <typename Fn>
  void parallelFor(std::size_t jobs, std::size_t grain, Fn&& fn,
                   unsigned maxParallel = 0) {
    if (jobs == 0) return;
    if (grain == 0) grain = 1;
    const unsigned width =
        maxParallel == 0 ? workers_ + 1 : std::min(maxParallel, workers_ + 1);
    const std::size_t chunks = (jobs + grain - 1) / grain;
    if (width <= 1 || chunks <= 1) {
      for (std::size_t i = 0; i < jobs; ++i) fn(i);
      return;
    }

    auto st = std::make_shared<ForState>();
    // The slice loop every participant runs: claim the next chunk off the
    // shared cursor until the index space (or the loop, on an exception)
    // is exhausted. `fn` is captured by reference — the caller does not
    // return until every helper has retired, so the referent outlives
    // every use.
    auto slices = [st, jobs, grain, &fn] {
      for (;;) {
        if (st->bailed.load(std::memory_order_relaxed)) return;
        const std::size_t start = st->cursor.fetch_add(grain, std::memory_order_relaxed);
        if (start >= jobs) return;
        const std::size_t end = std::min(jobs, start + grain);
        try {
          for (std::size_t i = start; i < end; ++i) fn(i);
        } catch (...) {
          st->bailed.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lk(st->mu);
          if (!st->first) st->first = std::current_exception();
        }
      }
    };

    const auto helpers =
        static_cast<unsigned>(std::min<std::size_t>(width - 1, chunks - 1));
    {
      const std::lock_guard<std::mutex> lk(st->mu);
      st->pending = helpers;
    }
    for (unsigned h = 0; h < helpers; ++h) {
      enqueue([st, slices] {
        slices();
        {
          const std::lock_guard<std::mutex> lk(st->mu);
          --st->pending;
        }
        st->cv.notify_all();
      });
    }
    slices();      // the caller is a worker too
    drainUntil(*st);  // help-run queued tasks until the helpers retire
    if (st->first) std::rethrow_exception(st->first);
  }

  /// Pop and execute one queued task on the calling thread. False when
  /// the queue was empty. This is how waiting callers participate
  /// instead of idling (and what makes nested waits deadlock-free: a
  /// blocked submitter drains the very tasks it is waiting on).
  bool tryRunOneTask();

 private:
  friend class TaskGroup;

  /// Completion state shared by a parallelFor call or a TaskGroup:
  /// outstanding task count, first captured exception, and the cursor
  /// chunked loops claim slices from.
  struct ForState {
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> bailed{false};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;          ///< guarded by mu
    std::exception_ptr first;         ///< guarded by mu
  };

  void enqueue(std::function<void()> task);
  void drainUntil(ForState& st);
  void workerLoop();

  unsigned workers_;
  std::atomic<std::uint64_t> tasksExecuted_{0};
  std::atomic<std::uint64_t> threadsSpawned_{0};
  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool started_ = false;  ///< guarded by qmu_
  bool stop_ = false;     ///< guarded by qmu_
};

/// A set of tasks on a pool, waited on together. Tasks may submit
/// follow-up tasks into their own group (the pipelined batch chains
/// compile stages this way); `wait()` participates in execution and
/// rethrows the first exception any task threw. Reusable after wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::global());
  /// Waits for outstanding tasks (exceptions swallowed — call wait()
  /// yourself to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task. Thread-safe; callable from inside a group task.
  void run(std::function<void()> task);
  /// Block until every submitted task (including follow-ups) finished,
  /// executing queued tasks on this thread meanwhile. Rethrows the
  /// first captured exception.
  void wait();

  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

 private:
  ThreadPool* pool_;
  std::shared_ptr<ThreadPool::ForState> st_;
};

}  // namespace bb::core
