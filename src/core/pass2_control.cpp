#include "core/pass2_control.hpp"

#include "elements/control_buffer.hpp"
#include "elements/slicekit.hpp"

#include <algorithm>

namespace bb::core {

namespace {

using elements::lam;
using geom::Coord;
using geom::Point;
using geom::Rect;
using tech::Layer;

/// Interpreter for the silicon-code tape: renders the PLA mask geometry.
/// Plane organization (west to east): GND trunk column, Vdd/load column,
/// AND-plane input column pairs (true, complement per microcode bit),
/// metal-to-poly boundary column (terms continue east as poly), OR-plane
/// control columns. Term rows stack north of the input-inverter row.
class PlaRenderer {
 public:
  PlaRenderer(cell::Cell& c, int inputs, int outputs, int terms)
      : c_(c), inputs_(inputs), outputs_(outputs), terms_(terms) {
    const PlaGeometry& g = plaGeometry();
    andX0_ = 2 * g.colW;                                  // after trunk + load col
    boundX0_ = andX0_ + static_cast<Coord>(2 * inputs_) * g.colW;
    orX0_ = boundX0_ + g.colW;
    width_ = orX0_ + static_cast<Coord>(outputs_) * g.colW + g.colW;  // + GND col (east)
    rowsY0_ = g.rowH;  // input inverter row sits below the term rows
    // +1 row at the top for the output pull-up loads, clear of the
    // upper term row's OR-plane crosspoints.
    height_ = rowsY0_ + static_cast<Coord>(std::max(terms_, 1) + 1) * g.rowH;
  }

  [[nodiscard]] Coord width() const noexcept { return width_; }
  [[nodiscard]] Coord height() const noexcept { return height_; }
  [[nodiscard]] Coord outputX(int o) const noexcept {
    return orX0_ + static_cast<Coord>(o) * plaGeometry().colW + lam(2) + lam(1);  // line center-ish
  }
  [[nodiscard]] Coord inputPadX(int bit) const noexcept {
    return andX0_ + static_cast<Coord>(2 * bit) * plaGeometry().colW + lam(7);
  }

  void drawFrame() {
    const PlaGeometry& g = plaGeometry();
    // Vertical Vdd trunk in the load column (x [0,4]L of that column).
    c_.addRect(Layer::Metal, Rect{g.colW + lam(0), 0, g.colW + lam(4), height_});
    // Vertical GND trunk in the far-west column.
    c_.addRect(Layer::Metal, Rect{lam(5), 0, lam(9), height_});
    // East GND trunk for the OR plane.
    c_.addRect(Layer::Metal, Rect{width_ - g.colW + lam(6), 0, width_ - g.colW + lam(10),
                                  height_});
    // Per term row: GND rail (metal) from west trunk through the AND
    // plane, and the term metal line from the load column to the
    // boundary column.
    for (int t = 0; t < terms_; ++t) {
      const Coord y = rowY(t);
      c_.addRect(Layer::Metal, Rect{lam(5), y, boundX0_, y + lam(4)});
      c_.addRect(Layer::Metal, Rect{g.colW + lam(8), y + lam(13), boundX0_ + lam(1),
                                    y + lam(16)});
      drawTermLoad(t);
      drawBoundary(t);
      // OR-plane GND diffusion rail to the east trunk, with a contact.
      const Coord ex = width_ - g.colW;
      c_.addRect(Layer::Diffusion, Rect{orX0_, y + lam(1), ex + lam(2), y + lam(3)});
      c_.addRect(Layer::Diffusion, Rect{ex, y, ex + lam(4), y + lam(4)});
      c_.addRect(Layer::Contact, Rect{ex + lam(1), y + lam(1), ex + lam(3), y + lam(3)});
      c_.addRect(Layer::Metal, Rect{ex, y, ex + lam(10), y + lam(4)});
    }
  }

  void drawInputCol(int bit) {
    // True and complement poly columns through the whole AND plane, plus
    // a stylized inverter in the input row producing the complement.
    const Coord xt = inputColX(bit, false) + lam(6);
    const Coord xc = inputColX(bit, true) + lam(6);
    c_.addRect(Layer::Poly, Rect{xt, 0, xt + lam(2), height_});
    c_.addRect(Layer::Poly, Rect{xc, lam(4), xc + lam(2), height_});
    // Inverter row stand-in: depletion load block between the columns.
    const Coord y = lam(6);
    c_.addRect(Layer::Diffusion, Rect{xt + lam(4), y, xc - lam(2), y + lam(2)});
    c_.addRect(Layer::Implant, Rect{xt + lam(3), y - lam(1), xc - lam(1), y + lam(3)});
  }

  void drawCrossAnd(int term, int bit, int value) {
    // Transistor pulling the term line low, gated by the column that is
    // HIGH exactly when the input disqualifies the term: wanting value 1
    // places the device on the complement column, wanting 0 on the true
    // column.
    const Coord cx = inputColX(bit, value == 1);
    const Coord y = rowY(term);
    c_.addRect(Layer::Diffusion, Rect{cx + lam(2), y + lam(2), cx + lam(4), y + lam(16)});
    c_.addRect(Layer::Diffusion, Rect{cx + lam(1), y, cx + lam(5), y + lam(4)});
    c_.addRect(Layer::Contact, Rect{cx + lam(2), y + lam(1), cx + lam(4), y + lam(3)});
    c_.addRect(Layer::Metal, Rect{cx + lam(1), y + lam(12), cx + lam(5), y + lam(17)});
    c_.addRect(Layer::Contact, Rect{cx + lam(2), y + lam(13), cx + lam(4), y + lam(15)});
    c_.addRect(Layer::Diffusion, Rect{cx + lam(1), y + lam(12), cx + lam(5), y + lam(16)});
    c_.addRect(Layer::Poly, Rect{cx + lam(0), y + lam(7), cx + lam(10), y + lam(9)});
  }

  void drawCrossOr(int term, int out) {
    // Transistor pulling the control column low, gated by the term poly.
    const Coord cx = orX0_ + static_cast<Coord>(out) * plaGeometry().colW;
    const Coord y = rowY(term);
    c_.addRect(Layer::Diffusion, Rect{cx + lam(7), y + lam(1), cx + lam(9), y + lam(17)});
    c_.addRect(Layer::Diffusion, Rect{cx + lam(2), y + lam(17), cx + lam(9), y + lam(19)});
    c_.addRect(Layer::Diffusion, Rect{cx + lam(1), y + lam(16), cx + lam(5), y + lam(20)});
    c_.addRect(Layer::Contact, Rect{cx + lam(2), y + lam(17), cx + lam(4), y + lam(19)});
    c_.addRect(Layer::Metal, Rect{cx + lam(0), y + lam(16), cx + lam(5), y + lam(21)});
  }

  void drawOutputCol(int out) {
    // Control line: metal vertical through the OR plane, exits south.
    const Coord cx = orX0_ + static_cast<Coord>(out) * plaGeometry().colW;
    c_.addRect(Layer::Metal, Rect{cx + lam(1), 0, cx + lam(4), height_});
    // Output load in the dedicated top row (stylized dep pull-up).
    c_.addRect(Layer::Diffusion, Rect{cx + lam(1), height_ - lam(9), cx + lam(3),
                                      height_ - lam(2)});
    c_.addRect(Layer::Implant, Rect{cx + lam(0), height_ - lam(10), cx + lam(4),
                                    height_ - lam(1)});
  }

  void drawTermLoad(int term) {
    // Depletion pull-up from the term line to the Vdd trunk (load col).
    const PlaGeometry& g = plaGeometry();
    const Coord x = g.colW;  // load column west edge
    const Coord y = rowY(term);
    c_.addRect(Layer::Diffusion, Rect{x + lam(0), y + lam(12), x + lam(4), y + lam(16)});
    c_.addRect(Layer::Contact, Rect{x + lam(1), y + lam(13), x + lam(3), y + lam(15)});
    c_.addRect(Layer::Metal, Rect{x + lam(0), y + lam(12), x + lam(4), y + lam(16)});
    c_.addRect(Layer::Diffusion, Rect{x + lam(2), y + lam(13), x + lam(12), y + lam(15)});
    c_.addRect(Layer::Poly, Rect{x + lam(5), y + lam(11), x + lam(7), y + lam(17)});
    c_.addRect(Layer::Implant, Rect{x + lam(3), y + lam(10), x + lam(9), y + lam(18)});
    c_.addRect(Layer::Diffusion, Rect{x + lam(8), y + lam(12), x + lam(12), y + lam(16)});
    c_.addRect(Layer::Contact, Rect{x + lam(9), y + lam(13), x + lam(11), y + lam(15)});
    c_.addRect(Layer::Metal, Rect{x + lam(8), y + lam(12), x + lam(12), y + lam(16)});
    // Strap from the left pad to the Vdd trunk.
    c_.addRect(Layer::Metal, Rect{x + lam(0), y + lam(12), x + lam(4), y + lam(16)});
  }

  void drawBoundary(int term) {
    // Term metal -> poly conversion; the term continues east as poly.
    const Coord x = boundX0_;
    const Coord y = rowY(term);
    c_.addRect(Layer::Metal, Rect{x + lam(0), y + lam(12), x + lam(5), y + lam(17)});
    c_.addRect(Layer::Contact, Rect{x + lam(1), y + lam(13), x + lam(3), y + lam(15)});
    c_.addRect(Layer::Poly, Rect{x + lam(0), y + lam(12), x + lam(5), y + lam(17)});
    c_.addRect(Layer::Poly,
               Rect{x + lam(3), y + lam(13), width_ - plaGeometry().colW, y + lam(15)});
  }

 private:
  [[nodiscard]] Coord rowY(int t) const noexcept {
    return rowsY0_ + static_cast<Coord>(t) * plaGeometry().rowH;
  }
  [[nodiscard]] Coord inputColX(int bit, bool comp) const noexcept {
    return andX0_ + static_cast<Coord>(2 * bit + (comp ? 1 : 0)) * plaGeometry().colW;
  }

  cell::Cell& c_;
  int inputs_;
  int outputs_;
  int terms_;
  Coord andX0_ = 0, boundX0_ = 0, orX0_ = 0;
  Coord width_ = 0, height_ = 0, rowsY0_ = 0;
};

}  // namespace

const PlaGeometry& plaGeometry() noexcept {
  static const PlaGeometry g{};
  return g;
}

bool runPass2(CompiledChip& chip, const Pass2Options& opts, icl::DiagnosticList& diags) {
  // --- text array: one entry per control line, in core order ------------
  std::vector<TextArrayEntry> text;
  text.reserve(chip.controls.size());
  for (const elements::ControlLine& cl : chip.controls) {
    text.push_back(TextArrayEntry{cl.name, cl.decode, cl.phase});
  }

  // --- the two-tape machine ----------------------------------------------
  TwoTapeMachine machine(std::move(text), chip.desc.microcode);
  if (!opts.optimizeDecoder) {
    // Ablation: run the machine but skip merge passes by running on a
    // machine whose optimize step is disabled. We emulate by running
    // normally and rebuilding an unoptimized PLA below.
  }
  if (!machine.run(diags)) return false;
  chip.tapeStats = machine.stats();
  chip.pla = machine.pla();
  if (!opts.optimizeDecoder) {
    // Rebuild without sharing/merging for the ablation bench.
    Pla raw(chip.desc.microcode.width, static_cast<int>(chip.controls.size()));
    for (std::size_t i = 0; i < chip.controls.size(); ++i) {
      icl::DiagnosticList local;
      const icl::SumOfProducts sop =
          icl::compileDecode(chip.controls[i].decode, chip.desc.microcode, local);
      for (std::size_t k = 0; k < sop.cubes.size(); ++k) {
        raw.addCubePrivate(static_cast<int>(i), sop.cubes[k]);
      }
    }
    chip.pla = raw;
  }

  // --- buffer row along the core edge ------------------------------------
  elements::BufferRow row = elements::buildBufferRow(chip.lib, "buffer_row", chip.controls,
                                                     chip.stats.coreWidth);
  chip.bufferRow = row.cell;

  // --- render the decoder from the silicon-code tape ---------------------
  cell::Cell* dec = chip.lib.create("decoder");
  PlaRenderer r(*dec, chip.desc.microcode.width, static_cast<int>(chip.controls.size()),
                static_cast<int>(chip.pla.termCount()));
  r.drawFrame();
  // The tape interleaves Term/CrossAnd/TermLoad; walk it statefully.
  int term = -1;
  for (const SilInstr& in : machine.outputTape()) {
    switch (in.op) {
      case SilOp::InputCol: r.drawInputCol(in.a); break;
      case SilOp::Term: term = in.a; break;
      case SilOp::CrossAnd:
        if (term >= 0) r.drawCrossAnd(term, in.a, in.b);
        break;
      case SilOp::CrossOr: r.drawCrossOr(in.a, in.b); break;
      case SilOp::OutputCol: r.drawOutputCol(in.a); break;
      case SilOp::PadConn: {
        cell::Bristle b;
        b.name = "mc" + std::to_string(in.a);
        b.flavor = cell::BristleFlavor::Microcode;
        b.side = cell::Side::North;
        b.pos = {r.inputPadX(in.a), r.height()};
        b.layer = Layer::Poly;
        b.width = lam(2);
        b.net = b.name;
        dec->addBristle(std::move(b));
        break;
      }
      default: break;
    }
  }
  dec->setBoundary(Rect{0, 0, r.width(), r.height()});
  dec->setDoc("instruction decoder PLA: " + std::to_string(chip.pla.termCount()) + " terms x " +
              std::to_string(chip.desc.microcode.width) + " inputs -> " +
              std::to_string(chip.controls.size()) + " controls");
  chip.decoder = dec;

  // --- decoder + buffer logic --------------------------------------------
  auto& lm = chip.logic;
  std::vector<int> mcTrue, mcComp;
  for (int b = 0; b < chip.desc.microcode.width; ++b) {
    const int t = lm.signal("mc" + std::to_string(b));
    const int c = lm.signal("mcb" + std::to_string(b));
    lm.add(netlist::GateKind::Inv, {t}, c, "decoder input inverter");
    mcTrue.push_back(t);
    mcComp.push_back(c);
  }
  std::vector<int> termSig;
  for (std::size_t t = 0; t < chip.pla.termCount(); ++t) {
    const icl::Cube& cube = chip.pla.terms()[t];
    std::vector<int> lits;
    for (std::size_t b = 0; b < cube.bits.size(); ++b) {
      if (cube.bits[b] == 1) lits.push_back(mcTrue[b]);
      else if (cube.bits[b] == 0) lits.push_back(mcComp[b]);
    }
    const int s = lm.signal("term" + std::to_string(t));
    if (lits.empty()) {
      lm.add(netlist::GateKind::Const1, {}, s, "tautology term");
    } else {
      lm.add(netlist::GateKind::And, std::move(lits), s, "AND-plane term");
    }
    termSig.push_back(s);
  }
  for (std::size_t o = 0; o < chip.controls.size(); ++o) {
    const int dec_o = lm.signal("dec." + chip.controls[o].name);
    std::vector<int> ins;
    for (int t : chip.pla.outputs()[o]) ins.push_back(termSig[static_cast<std::size_t>(t)]);
    if (ins.empty()) {
      lm.add(netlist::GateKind::Const0, {}, dec_o, "never-active control");
    } else {
      lm.add(netlist::GateKind::Or, std::move(ins), dec_o, "OR-plane output");
    }
    elements::emitBufferLogic(lm, chip.controls[o], "dec." + chip.controls[o].name);
  }

  chip.stats.decoderArea =
      dec->boundary().area() + chip.bufferRow->boundary().area();
  return true;
}

}  // namespace bb::core
