/// \file pass1_core.hpp
/// Pass 1 — the core pass. "The core pass takes both the user's input and
/// low level cell definitions to construct the core of the machine."
///
/// Steps, exactly as the paper describes:
///   1. all elements vote on the values of global parameters;
///   2. each element reports the width (pitch) of its cells; the widest
///      is known when the end of the core list is reached;
///   3. each element is executed in turn, producing its cell hierarchy,
///      with every cell stretched to the common pitch (and supply rails
///      widened to carry the voted power demand);
///   4. bus breaks/stops are honoured and a precharge column is inserted
///      at the head of every bus segment — details the user never states;
///   5. the columns are abutted into the core cell, with power trunk
///      columns at the two ends.

#pragma once

#include "core/chip.hpp"
#include "icl/eval.hpp"

#include <memory>

namespace bb::core {

struct Pass1Options {
  /// Metal current capacity, uA per lambda of rail width (sets widening).
  double railCapacityUaPerLambda = 1000.0;
};

/// Run Pass 1 for the already-assembled element list. Results land in
/// `chip` (core cell, placed elements, controls, logic fragments, stats).
/// Returns false on diagnosed errors.
bool runPass1(CompiledChip& chip, const std::vector<icl::ElementDecl>& decls,
              const Pass1Options& opts, icl::DiagnosticList& diags);

}  // namespace bb::core
