#include "core/pla.hpp"

#include <algorithm>
#include <sstream>

namespace bb::core {

void Pla::addCube(int out, const icl::Cube& cube) {
  int idx = -1;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i] == cube) {
      idx = static_cast<int>(i);
      break;
    }
  }
  if (idx < 0) {
    idx = static_cast<int>(terms_.size());
    terms_.push_back(cube);
  }
  auto& list = outputs_[static_cast<std::size_t>(out)];
  if (std::find(list.begin(), list.end(), idx) == list.end()) list.push_back(idx);
}

void Pla::addCubePrivate(int out, const icl::Cube& cube) {
  const int idx = static_cast<int>(terms_.size());
  terms_.push_back(cube);
  outputs_[static_cast<std::size_t>(out)].push_back(idx);
}

namespace {
/// True if cubes differ in exactly one position where both care, and
/// agree everywhere else (the classic adjacency condition).
bool adjacent(const icl::Cube& a, const icl::Cube& b, int& diffBit) {
  diffBit = -1;
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    if (a.bits[i] == b.bits[i]) continue;
    if (a.bits[i] < 0 || b.bits[i] < 0) return false;  // care vs don't-care
    if (diffBit >= 0) return false;                    // second difference
    diffBit = static_cast<int>(i);
  }
  return diffBit >= 0;
}
}  // namespace

int Pla::optimize() {
  int totalMerges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Output set per term (sorted) for the identical-driver condition.
    std::vector<std::vector<int>> drivers(terms_.size());
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
      for (int t : outputs_[o]) drivers[static_cast<std::size_t>(t)].push_back(static_cast<int>(o));
    }
    for (std::size_t i = 0; i < terms_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < terms_.size() && !changed; ++j) {
        if (drivers[i] != drivers[j]) continue;
        int bit = -1;
        if (!adjacent(terms_[i], terms_[j], bit)) continue;
        // Merge j into i: the differing bit becomes don't-care.
        terms_[i].bits[static_cast<std::size_t>(bit)] = -1;
        // Drop term j, remap references.
        terms_.erase(terms_.begin() + static_cast<std::ptrdiff_t>(j));
        for (auto& list : outputs_) {
          std::erase_if(list, [&](int t) { return t == static_cast<int>(j); });
          for (int& t : list) {
            if (t > static_cast<int>(j)) --t;
          }
        }
        ++totalMerges;
        changed = true;
      }
    }
    // Also collapse duplicate terms that merging may have created.
    for (std::size_t i = 0; i < terms_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < terms_.size() && !changed; ++j) {
        if (!(terms_[i] == terms_[j])) continue;
        for (auto& list : outputs_) {
          bool hasI = std::find(list.begin(), list.end(), static_cast<int>(i)) != list.end();
          bool hasJ = std::find(list.begin(), list.end(), static_cast<int>(j)) != list.end();
          std::erase_if(list, [&](int t) { return t == static_cast<int>(j); });
          if (hasJ && !hasI) list.push_back(static_cast<int>(i));
          for (int& t : list) {
            if (t > static_cast<int>(j)) --t;
          }
        }
        terms_.erase(terms_.begin() + static_cast<std::ptrdiff_t>(j));
        ++totalMerges;
        changed = true;
      }
    }
  }
  return totalMerges;
}

std::size_t Pla::literalCount() const noexcept {
  std::size_t n = 0;
  for (const icl::Cube& c : terms_) n += static_cast<std::size_t>(c.literals());
  return n;
}

std::size_t Pla::orPointCount() const noexcept {
  std::size_t n = 0;
  for (const auto& list : outputs_) n += list.size();
  return n;
}

bool Pla::eval(int out, unsigned long long word) const noexcept {
  for (int t : outputs_[static_cast<std::size_t>(out)]) {
    if (terms_[static_cast<std::size_t>(t)].matches(word)) return true;
  }
  return false;
}

geom::Coord Pla::areaEstimate(geom::Coord cellW, geom::Coord rowH) const noexcept {
  const geom::Coord cols = static_cast<geom::Coord>(2 * width_) +
                           static_cast<geom::Coord>(outputs_.size()) + 3;  // trunks + loads
  const geom::Coord rows = static_cast<geom::Coord>(terms_.size()) + 2;    // inverter rows
  return cols * cellW * rows * rowH;
}

std::string Pla::toText() const {
  std::ostringstream os;
  os << "PLA: " << width_ << " inputs, " << terms_.size() << " terms, " << outputs_.size()
     << " outputs, " << literalCount() << " AND literals, " << orPointCount() << " OR points\n";
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    os << "  t" << t << " = " << terms_[t].toString() << " ->";
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
      if (std::find(outputs_[o].begin(), outputs_[o].end(), static_cast<int>(t)) !=
          outputs_[o].end()) {
        os << " o" << o;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bb::core
