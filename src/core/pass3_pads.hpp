/// \file pass3_pads.hpp
/// Pass 3 — the pad pass. "The pad layout pass begins by collecting all
/// of the connection points which need to be connected to pads. These
/// connection points are sorted in clockwise order, and pads are
/// allocated in the same order. The pads and connection points are
/// examined by a Roto-Router, which rotates the pads around the
/// perimeter of the chip in an attempt to minimize the length of wire
/// between pads and connection points. The Roto-Router spaces the pads
/// evenly around the chip to avoid generating pad layouts that would be
/// difficult to bond. The third pass concludes by adding wires between
/// the pads and the connection points."
///
/// This pass also assembles the final floorplan (core, buffer row,
/// routing channel, decoder) into the top cell before ringing it with
/// pads.

#pragma once

#include "core/chip.hpp"

namespace bb::core {

struct Pass3Options {
  /// Enable the Roto-Router rotation search (ablation: off = pads are
  /// allocated in clockwise order starting at slot 0, unrotated).
  bool rotoRouter = true;
  /// Space pads evenly around the perimeter (ablation: off = pads pack
  /// from the north-west corner at minimum bondable spacing).
  bool evenSpacing = true;
  /// Clearance between the core block and the pad ring, in lambda.
  geom::Coord ringGapLambda = 40;
};

bool runPass3(CompiledChip& chip, const Pass3Options& opts, icl::DiagnosticList& diags);

}  // namespace bb::core
