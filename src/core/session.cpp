#include "core/session.hpp"

#include "cell/flatten.hpp"
#include "icl/parser.hpp"

#include <sstream>

namespace bb::core {

std::string_view stageName(Stage s) noexcept {
  switch (s) {
    case Stage::Parse: return "parse";
    case Stage::Vote: return "vote";
    case Stage::Pass1: return "pass1";
    case Stage::Pass2: return "pass2";
    case Stage::Pass3: return "pass3";
    case Stage::Finalize: return "finalize";
  }
  return "?";
}

std::chrono::nanoseconds TimingObserver::total() const noexcept {
  std::chrono::nanoseconds sum{};
  for (const auto ns : ns_) sum += ns;
  return sum;
}

std::string TimingObserver::report() const {
  std::ostringstream os;
  for (const Stage s : kAllStages) {
    os << stageName(s) << ": " << elapsed(s).count() / 1e6 << " ms\n";
  }
  os << "total: " << total().count() / 1e6 << " ms\n";
  return os.str();
}

CompileSession::CompileSession(std::string source, CompileOptions opts)
    : opts_(std::move(opts)), source_(std::move(source)) {}

CompileSession::CompileSession(icl::ChipDesc desc, CompileOptions opts)
    : opts_(std::move(opts)), haveDesc_(true), desc_(std::move(desc)) {}

void CompileSession::addObserver(PassObserver* obs) {
  if (obs != nullptr) observers_.push_back(obs);
}

const icl::ChipDesc* CompileSession::description() const noexcept {
  return parsed_ ? &desc_ : nullptr;
}

bool CompileSession::runNext() {
  if (failed_ || finished_) return false;
  return runStage(next_);
}

bool CompileSession::runTo(Stage last) {
  while (!failed_ && !finished_ && next_ <= last) {
    if (!runStage(next_)) return false;
  }
  return !failed_;
}

Expected<CompiledChipPtr> CompileSession::run() {
  runTo(Stage::Finalize);
  if (failed_) return Expected<CompiledChipPtr>::failure(diags_);
  CompiledChipPtr chip = takeChip();
  if (chip == nullptr) {
    // Finished but the chip is gone: a second run() (or run() after
    // takeChip()) must not hand back a truthy-but-null result.
    icl::DiagnosticList diags = diags_;
    diags.error({}, "compile session already surrendered its chip");
    return Expected<CompiledChipPtr>::failure(std::move(diags));
  }
  return Expected<CompiledChipPtr>(std::move(chip), diags_);
}

CompiledChipPtr CompileSession::takeChip() {
  return finished_ ? std::move(chip_) : nullptr;
}

bool CompileSession::runStage(Stage s) {
  for (PassObserver* obs : observers_) obs->onStageBegin(s, *this);
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = execute(s);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  if (ok) {
    if (s == Stage::Finalize) {
      finished_ = true;
    } else {
      next_ = static_cast<Stage>(static_cast<std::uint8_t>(s) + 1);
    }
  } else {
    failed_ = true;
  }
  for (PassObserver* obs : observers_) obs->onStageEnd(s, *this, ok, elapsed);
  return ok;
}

bool CompileSession::execute(Stage s) {
  switch (s) {
    case Stage::Parse: {
      if (!haveDesc_) {
        auto desc = icl::parseChip(source_, diags_);
        if (!desc) return false;
        desc_ = std::move(*desc);
      }
      parsed_ = true;
      return true;
    }
    case Stage::Vote: {
      // Conditional assembly resolves the element list before any pass
      // runs; this is where the user's last-minute variable overrides
      // take effect.
      decls_ = icl::assembleCore(desc_, opts_.vars, diags_);
      if (diags_.hasErrors()) return false;
      chip_ = std::make_unique<CompiledChip>();
      chip_->desc = desc_;
      return true;
    }
    case Stage::Pass1:
      return runPass1(*chip_, decls_, opts_.pass1, diags_);
    case Stage::Pass2:
      return runPass2(*chip_, opts_.pass2, diags_);
    case Stage::Pass3:
      return runPass3(*chip_, opts_.pass3, diags_);
    case Stage::Finalize: {
      chip_->stats.cellCount = chip_->lib.size();
      chip_->stats.shapeCount = chip_->flatTop().totalCount();
      chip_->stats.logicGates = chip_->logic.gates().size();
      chip_->stats.logicSignals = chip_->logic.signalCount();
      return true;
    }
  }
  return false;
}

Expected<CompiledChipPtr> compileChip(std::string_view source, CompileOptions opts) {
  return CompileSession(std::string(source), std::move(opts)).run();
}

Expected<CompiledChipPtr> compileChip(icl::ChipDesc desc, CompileOptions opts) {
  return CompileSession(std::move(desc), std::move(opts)).run();
}

}  // namespace bb::core
