#include "core/session.hpp"

#include "cell/flatten.hpp"
#include "core/fingerprint.hpp"
#include "icl/parser.hpp"
#include "lint/lint.hpp"

#include <sstream>

namespace bb::core {

std::string_view stageName(Stage s) noexcept {
  switch (s) {
    case Stage::Parse: return "parse";
    case Stage::Vote: return "vote";
    case Stage::Pass1: return "pass1";
    case Stage::Pass2: return "pass2";
    case Stage::Pass3: return "pass3";
    case Stage::Finalize: return "finalize";
  }
  return "?";
}

std::chrono::nanoseconds TimingObserver::total() const noexcept {
  std::chrono::nanoseconds sum{};
  for (const auto ns : ns_) sum += ns;
  return sum;
}

std::string TimingObserver::report() const {
  std::ostringstream os;
  for (const Stage s : kAllStages) {
    os << stageName(s) << ": " << elapsed(s).count() / 1e6 << " ms\n";
  }
  os << "total: " << total().count() / 1e6 << " ms\n";
  return os.str();
}

CompileSession::CompileSession(std::string source, CompileOptions opts)
    : opts_(std::move(opts)), source_(std::move(source)) {}

CompileSession::CompileSession(icl::ChipDesc desc, CompileOptions opts)
    : opts_(std::move(opts)), haveDesc_(true), desc_(std::move(desc)) {}

void CompileSession::addObserver(PassObserver* obs) {
  if (obs != nullptr) observers_.push_back(obs);
}

const icl::ChipDesc* CompileSession::description() const noexcept {
  return parsed_ ? &desc_ : nullptr;
}

bool CompileSession::runNext() {
  if (failed_ || finished_) return false;
  return runStage(next_);
}

bool CompileSession::runTo(Stage last) {
  while (!failed_ && !finished_ && next_ <= last) {
    if (!runStage(next_)) return false;
  }
  return !failed_;
}

Expected<CompiledChipPtr> CompileSession::run() {
  runTo(Stage::Finalize);
  if (failed_) return Expected<CompiledChipPtr>::failure(diags_);
  CompiledChipPtr chip = takeChip();
  if (chip == nullptr) {
    // Finished but the chip is gone: a second run() (or run() after
    // takeChip()) must not hand back a truthy-but-null result.
    icl::DiagnosticList diags = diags_;
    diags.error({}, "compile session already surrendered its chip");
    return Expected<CompiledChipPtr>::failure(std::move(diags));
  }
  return Expected<CompiledChipPtr>(std::move(chip), diags_);
}

CompiledChipPtr CompileSession::takeChip() {
  return finished_ ? std::move(chip_) : nullptr;
}

std::size_t CompileSession::totalExecutions() const noexcept {
  std::size_t sum = 0;
  for (const std::size_t c : execCount_) sum += c;
  return sum;
}

bool CompileSession::canRestartAt(Stage s) const noexcept {
  switch (s) {
    case Stage::Parse: return true;
    case Stage::Vote: return parsed_;
    case Stage::Pass1: return done(Stage::Vote);  // decls_ memoized
    case Stage::Pass2: return afterPass1_ != nullptr;
    case Stage::Pass3: return afterPass2_ != nullptr;
    case Stage::Finalize: return done(Stage::Pass3) && chip_ != nullptr;
  }
  return false;
}

Stage CompileSession::invalidateFrom(Stage want) {
  Stage s = want;
  while (s != Stage::Parse && !canRestartAt(s)) {
    s = static_cast<Stage>(static_cast<std::uint8_t>(s) - 1);
  }
  failed_ = false;
  finished_ = false;
  for (std::size_t i = static_cast<std::size_t>(s); i < kAllStages.size(); ++i) {
    stageDone_[i] = false;
  }
  // Roll the diagnostics back to the moment stage `s` last began; if the
  // stage never ran, no stage >= s contributed, so the list is already
  // the pre-s state.
  if (const auto& snap = diagsBefore_[static_cast<std::size_t>(s)]; snap.has_value()) {
    diags_ = *snap;
  }
  // Later stages' snapshots are now stale (they describe a run that was
  // just rolled back); drop them so a future rollback degrades to
  // leaving the list as-is instead of restoring the wrong one.
  for (std::size_t i = static_cast<std::size_t>(s) + 1; i < kAllStages.size(); ++i) {
    diagsBefore_[i].reset();
  }
  switch (s) {
    case Stage::Parse:
      parsed_ = false;
      decls_.clear();
      chip_.reset();
      afterPass1_.reset();
      afterPass2_.reset();
      break;
    case Stage::Vote:
      decls_.clear();
      chip_.reset();
      afterPass1_.reset();
      afterPass2_.reset();
      break;
    case Stage::Pass1:
      // Vote's memoized element list is reused; recreate only the chip
      // shell Vote would have made.
      chip_ = std::make_unique<CompiledChip>();
      chip_->desc = desc_;
      afterPass1_.reset();
      afterPass2_.reset();
      break;
    case Stage::Pass2:
      chip_ = std::make_unique<CompiledChip>(afterPass1_->clone());
      afterPass2_.reset();
      break;
    case Stage::Pass3:
      chip_ = std::make_unique<CompiledChip>(afterPass2_->clone());
      break;
    case Stage::Finalize:
      break;  // finalize rewrites stats + lint report; re-running is idempotent
  }
  lintReport_.reset();  // finalize recomputes it (or leaves it unset)
  next_ = s;
  return s;
}

std::optional<Stage> CompileSession::setOptions(const CompileOptions& opts) {
  // The first stage whose option inputs changed is the first dirty one.
  std::optional<Stage> dirty;
  for (const Stage s :
       {Stage::Vote, Stage::Pass1, Stage::Pass2, Stage::Pass3, Stage::Finalize}) {
    if (stageOptionsFingerprint(s, opts_) != stageOptionsFingerprint(s, opts)) {
      dirty = s;
      break;
    }
  }
  opts_ = opts;
  if (!dirty.has_value()) {
    // Identical inputs; a failed session may still want to resume.
    return failed_ ? std::optional<Stage>(invalidateFrom(next_)) : std::nullopt;
  }
  if (!done(*dirty) && !failed_) return std::nullopt;  // not reached yet: nothing to redo
  const Stage restart = failed_ && next_ < *dirty ? next_ : *dirty;
  return invalidateFrom(restart);
}

std::optional<Stage> CompileSession::setDescription(icl::ChipDesc desc) {
  if (parsed_ && Digest::of(desc_.toString()) == Digest::of(desc.toString())) {
    return std::nullopt;  // canonically identical: every memo stays valid
  }
  const bool hadParsed = parsed_;
  desc_ = std::move(desc);
  haveDesc_ = true;
  source_.clear();
  if (!hadParsed) {
    // Nothing has consumed a description yet; the parse stage will adopt
    // this one when it runs. A session that failed in parse restarts
    // there (adoption is free) so its stale parse diagnostics roll back.
    return failed_ ? std::optional<Stage>(invalidateFrom(Stage::Parse)) : std::nullopt;
  }
  // The parse "stage" for a typed session just adopts the description, so
  // the first real consumer — vote — is the first dirty stage.
  parsed_ = true;
  return invalidateFrom(Stage::Vote);
}

bool CompileSession::runStage(Stage s) {
  for (PassObserver* obs : observers_) obs->onStageBegin(s, *this);
  diagsBefore_[static_cast<std::size_t>(s)] = diags_;
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = execute(s);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  if (ok) {
    doneFlag(s) = true;
    if (incremental_) {
      if (s == Stage::Pass1) {
        afterPass1_ = std::make_unique<CompiledChip>(chip_->clone());
      } else if (s == Stage::Pass2) {
        afterPass2_ = std::make_unique<CompiledChip>(chip_->clone());
      }
    }
    if (s == Stage::Finalize) {
      finished_ = true;
    } else {
      next_ = static_cast<Stage>(static_cast<std::uint8_t>(s) + 1);
    }
  } else {
    failed_ = true;
  }
  for (PassObserver* obs : observers_) obs->onStageEnd(s, *this, ok, elapsed);
  return ok;
}

bool CompileSession::execute(Stage s) {
  ++execCount_[static_cast<std::size_t>(s)];
  switch (s) {
    case Stage::Parse: {
      if (!haveDesc_) {
        auto desc = icl::parseChip(source_, diags_);
        if (!desc) return false;
        desc_ = std::move(*desc);
      }
      parsed_ = true;
      return true;
    }
    case Stage::Vote: {
      // Conditional assembly resolves the element list before any pass
      // runs; this is where the user's last-minute variable overrides
      // take effect.
      decls_ = icl::assembleCore(desc_, opts_.vars, diags_);
      if (diags_.hasErrors()) return false;
      chip_ = std::make_unique<CompiledChip>();
      chip_->desc = desc_;
      return true;
    }
    case Stage::Pass1:
      return runPass1(*chip_, decls_, opts_.pass1, diags_);
    case Stage::Pass2:
      return runPass2(*chip_, opts_.pass2, diags_);
    case Stage::Pass3:
      return runPass3(*chip_, opts_.pass3, diags_);
    case Stage::Finalize: {
      chip_->stats.cellCount = chip_->lib.size();
      chip_->stats.shapeCount = chip_->flatTop().totalCount();
      chip_->stats.logicGates = chip_->logic.gates().size();
      chip_->stats.logicSignals = chip_->logic.signalCount();
      lintReport_.reset();
      if (opts_.lint.enabled) {
        // Static design analysis over the finished chip. Findings join
        // the session diagnostics (after every compile diagnostic — the
        // deterministic interleave the diagnostics tests pin down); an
        // Error-severity finding flags the design, not the compile, so
        // the stage still succeeds and the chip stays available.
        auto report =
            std::make_shared<const lint::LintReport>(lint::lintChip(*chip_, opts_.lint));
        report->toDiagnostics(diags_);
        lintReport_ = std::move(report);
      }
      return true;
    }
  }
  return false;
}

Expected<CompiledChipPtr> compileChip(std::string_view source, CompileOptions opts) {
  return CompileSession(std::string(source), std::move(opts)).run();
}

Expected<CompiledChipPtr> compileChip(icl::ChipDesc desc, CompileOptions opts) {
  return CompileSession(std::move(desc), std::move(opts)).run();
}

}  // namespace bb::core
