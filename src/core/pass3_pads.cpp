#include "core/pass3_pads.hpp"

#include "core/pass2_control.hpp"
#include "elements/pads.hpp"
#include "elements/slicekit.hpp"

#include <algorithm>
#include <cmath>

namespace bb::core {

namespace {

using elements::lam;
using geom::Coord;
using geom::Point;
using geom::Rect;
using tech::Layer;

/// A connection point awaiting a pad.
struct PadRequest {
  cell::Bristle bristle;  ///< position already in chip coordinates
  elements::PadKind kind;
};

/// One slot on the pad ring.
struct Slot {
  Point center;      ///< pad cell center
  cell::Side side;   ///< which chip edge
  Point pin;         ///< pin position (inner edge midpoint)
};

/// Clockwise angle from "north" around `c` (0 at top, increasing
/// clockwise) — the paper's clockwise sort key.
double clockwiseKey(Point p, Point c) {
  const double dx = static_cast<double>(p.x - c.x);
  const double dy = static_cast<double>(p.y - c.y);
  double a = std::atan2(dx, dy);  // 0 at north, positive toward east
  if (a < 0) a += 2 * 3.14159265358979323846;
  return a;
}

geom::Orientation padOrient(cell::Side side) {
  switch (side) {
    case cell::Side::North: return geom::Orientation::R180;  // pin faces south
    case cell::Side::East: return geom::Orientation::R90;    // pin faces west
    case cell::Side::South: return geom::Orientation::R0;    // pin faces north
    case cell::Side::West: return geom::Orientation::R270;   // pin faces east
  }
  return geom::Orientation::R0;
}

}  // namespace

bool runPass3(CompiledChip& chip, const Pass3Options& opts, icl::DiagnosticList& diags) {
  // --- assemble the floorplan into the top cell --------------------------
  chip.top = chip.lib.create(chip.desc.name);
  const Coord coreH = chip.stats.coreHeight;
  const Coord bufH = chip.bufferRow->height();
  const std::size_t nCtl = chip.controls.size();
  const Coord chanH =
      static_cast<Coord>(nCtl) * plaGeometry().chanPitch + lam(8);
  const Coord decY = coreH + bufH + chanH;
  const Coord decX = 0;

  chip.top->addInstance(chip.core, geom::Transform::translate({0, 0}), "core");
  chip.top->addInstance(chip.bufferRow, geom::Transform::translate({0, coreH}), "buffers");
  chip.top->addInstance(chip.decoder, geom::Transform::translate({decX, decY}), "decoder");

  // --- routing channel: decoder outputs down to the buffers --------------
  // Verticals run in poly (crossing the metal tracks harmlessly); each
  // control gets one metal track.
  for (std::size_t i = 0; i < nCtl; ++i) {
    // Output column x within the decoder: mirror of pass2's renderer.
    const Coord xp = decX + chip.decoder->boundary().width() -
                     (static_cast<Coord>(nCtl - i)) * plaGeometry().colW - plaGeometry().colW +
                     lam(1);
    const Coord xb = chip.controls[i].xOffset;
    const Coord trackY = coreH + bufH + lam(4) + static_cast<Coord>(i) * plaGeometry().chanPitch;
    // Poly drop from the decoder's south edge.
    chip.top->addRect(Layer::Poly, Rect{xp, trackY, xp + lam(2), decY});
    chip.top->addRect(Layer::Poly, Rect{xp - lam(1), trackY - lam(1), xp + lam(3), trackY + lam(3)});
    chip.top->addRect(Layer::Metal,
                      Rect{xp - lam(1), trackY - lam(1), xp + lam(3), trackY + lam(3)});
    chip.top->addRect(Layer::Contact, Rect{xp, trackY, xp + lam(2), trackY + lam(2)});
    // Metal track.
    const Coord tx0 = std::min(xp - lam(1), xb - lam(1));
    const Coord tx1 = std::max(xp + lam(3), xb + lam(3));
    chip.top->addRect(Layer::Metal, Rect{tx0, trackY - lam(1), tx1, trackY + lam(2)});
    // Contact + poly drop to the buffer's decode input.
    chip.top->addRect(Layer::Metal, Rect{xb - lam(2), trackY - lam(1), xb + lam(2), trackY + lam(3)});
    chip.top->addRect(Layer::Poly, Rect{xb - lam(2), trackY - lam(1), xb + lam(2), trackY + lam(3)});
    chip.top->addRect(Layer::Contact, Rect{xb - lam(1), trackY, xb + lam(1), trackY + lam(2)});
    chip.top->addRect(Layer::Poly, Rect{xb - lam(1), coreH + bufH, xb + lam(1), trackY});
  }

  // --- collect the connection points -------------------------------------
  std::vector<PadRequest> reqs;
  auto collect = [&](const cell::Cell* c, Point at) {
    for (const cell::Bristle& b : c->bristles()) {
      if (!cell::isPadRequest(b.flavor)) continue;
      PadRequest r;
      r.bristle = b;
      r.bristle.pos += at;
      r.kind = elements::padKindForFlavor(b.flavor);
      reqs.push_back(std::move(r));
    }
  };
  collect(chip.core, {0, 0});
  collect(chip.bufferRow, {0, coreH});
  collect(chip.decoder, {decX, decY});
  if (reqs.empty()) {
    diags.error({}, "no pad connection points found (no ports, clocks or supplies?)");
    return false;
  }

  // --- ring geometry -------------------------------------------------------
  const Coord blockW = std::max(chip.stats.coreWidth, chip.decoder->boundary().width());
  const Coord blockH = decY + chip.decoder->boundary().height();
  const Rect block{0, 0, blockW, blockH};
  const Coord gap = lam(opts.ringGapLambda);
  const Coord padS = elements::padSize();
  // Pad centers sit on this rectangle.
  const Rect ring = block.expanded(gap + padS / 2);
  const Point center = block.center();

  const std::size_t n = reqs.size();
  // Slot positions: clockwise from the north-west corner.
  const Coord perim = 2 * (ring.width() + ring.height());
  std::vector<Slot> slots(n);
  const Coord minPitch = padS + lam(10);
  for (std::size_t i = 0; i < n; ++i) {
    Coord s;
    if (opts.evenSpacing) {
      s = static_cast<Coord>(static_cast<double>(perim) * static_cast<double>(i) /
                             static_cast<double>(n));
    } else {
      s = static_cast<Coord>(i) * minPitch;  // packed from the corner
      s = s % perim;
    }
    Slot& sl = slots[i];
    if (s < ring.width()) {
      sl.side = cell::Side::North;
      sl.center = {ring.x0 + s, ring.y1};
    } else if (s < ring.width() + ring.height()) {
      sl.side = cell::Side::East;
      sl.center = {ring.x1, ring.y1 - (s - ring.width())};
    } else if (s < 2 * ring.width() + ring.height()) {
      sl.side = cell::Side::South;
      sl.center = {ring.x1 - (s - ring.width() - ring.height()), ring.y0};
    } else {
      sl.side = cell::Side::West;
      sl.center = {ring.x0, ring.y0 + (s - 2 * ring.width() - ring.height())};
    }
    switch (sl.side) {
      case cell::Side::North: sl.pin = {sl.center.x, sl.center.y - padS / 2}; break;
      case cell::Side::East: sl.pin = {sl.center.x - padS / 2, sl.center.y}; break;
      case cell::Side::South: sl.pin = {sl.center.x, sl.center.y + padS / 2}; break;
      case cell::Side::West: sl.pin = {sl.center.x + padS / 2, sl.center.y}; break;
    }
  }

  // --- clockwise sort of the connection points ---------------------------
  std::sort(reqs.begin(), reqs.end(), [&](const PadRequest& a, const PadRequest& b) {
    return clockwiseKey(a.bristle.pos, center) < clockwiseKey(b.bristle.pos, center);
  });

  // --- Roto-Router: rotate the allocation to minimize wire length --------
  std::size_t bestRot = 0;
  Coord bestLen = 0;
  const std::size_t rotations = opts.rotoRouter ? n : 1;
  for (std::size_t r = 0; r < rotations; ++r) {
    Coord len = 0;
    for (std::size_t i = 0; i < n; ++i) {
      len += geom::manhattan(slots[(i + r) % n].pin, reqs[i].bristle.pos);
    }
    if (r == 0 || len < bestLen) {
      bestLen = len;
      bestRot = r;
    }
  }

  // --- place pads, route wires -------------------------------------------
  Coord totalWire = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& sl = slots[(i + bestRot) % n];
    cell::Cell* pc = elements::padCell(chip.lib, reqs[i].kind);
    const geom::Orientation o = padOrient(sl.side);
    // Pad cell local center is (padS/2, padS/2); place so its center
    // lands on the slot center.
    const Point halfT = geom::apply(o, Point{padS / 2, padS / 2});
    chip.top->addInstance(pc, geom::Transform{o, sl.center - halfT},
                          "pad:" + reqs[i].bristle.name);
    // L-shaped wire: from the pin, run perpendicular to the edge first,
    // then along to the target.
    const Point pin = sl.pin;
    const Point tgt = reqs[i].bristle.pos;
    const Coord w = lam(3);
    geom::Path path;
    path.width = w;
    if (sl.side == cell::Side::North || sl.side == cell::Side::South) {
      path.pts = {pin, Point{pin.x, tgt.y}, tgt};
    } else {
      path.pts = {pin, Point{tgt.x, pin.y}, tgt};
    }
    chip.top->addPath(Layer::Metal, path);
    const Coord len = path.length();
    totalWire += len;

    PadPlacement pp;
    pp.name = reqs[i].bristle.name;
    pp.padCellName = pc->name();
    pp.side = sl.side;
    pp.pinAt = pin;
    pp.target = tgt;
    pp.wireLength = len;
    chip.pads.push_back(std::move(pp));

    elements::emitPadLogic(chip.logic, reqs[i].kind, reqs[i].bristle.name,
                           reqs[i].bristle.net.empty() ? reqs[i].bristle.name
                                                       : reqs[i].bristle.net);
  }

  // --- die boundary + stats ------------------------------------------------
  const Rect die = ring.expanded(padS / 2 + lam(6));
  chip.top->setBoundary(die);
  chip.top->setDoc("compiled chip '" + chip.desc.name + "'");
  chip.stats.padCount = n;
  chip.stats.padWireLength = totalWire;
  chip.stats.dieWidth = die.width();
  chip.stats.dieHeight = die.height();
  chip.stats.dieArea = die.area();
  chip.stats.padRingArea = die.area() - block.expanded(gap).area();
  return true;
}

}  // namespace bb::core
