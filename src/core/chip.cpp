#include "core/chip.hpp"

#include <sstream>

namespace bb::core {

namespace {
double toLambda(geom::Coord v) { return static_cast<double>(v) / geom::kUnitsPerLambda; }
double toLambda2(geom::Coord v) {
  return static_cast<double>(v) / (geom::kUnitsPerLambda * geom::kUnitsPerLambda);
}
}  // namespace

std::string CompiledChip::statsText() const {
  std::ostringstream os;
  os << "chip '" << desc.name << "': " << desc.dataWidth << "-bit, " << placed.size()
     << " core elements, " << desc.buses.size() << " buses\n";
  os << "  pitch:        " << toLambda(stats.pitch) << "L (widest natural "
     << toLambda(stats.naturalPitchMax) << "L)\n";
  os << "  core:         " << toLambda(stats.coreWidth) << " x " << toLambda(stats.coreHeight)
     << "L = " << toLambda2(stats.coreArea) << " L^2\n";
  os << "  decoder:      " << toLambda2(stats.decoderArea) << " L^2, "
     << pla.termCount() << " terms, " << stats.controlCount << " control lines\n";
  os << "  pads:         " << stats.padCount << " (wire length "
     << toLambda(stats.padWireLength) << "L)\n";
  os << "  die:          " << toLambda(stats.dieWidth) << " x " << toLambda(stats.dieHeight)
     << "L = " << toLambda2(stats.dieArea) << " L^2\n";
  os << "  bus segments: " << stats.busSegments[0] << " + " << stats.busSegments[1] << " ("
     << stats.prechargeColumns << " precharge columns)\n";
  os << "  power:        " << stats.power_ua / 1000.0 << " mA static, rails "
     << toLambda(stats.powerRailWidth) << "L\n";
  os << "  logic:        " << stats.logicGates << " gates, " << stats.logicSignals
     << " signals\n";
  os << "  artwork:      " << stats.cellCount << " cells, " << stats.shapeCount
     << " flattened primitives\n";
  return os.str();
}

const cell::FlatLayout& CompiledChip::flatTop() const {
  if (!flatTop_) flatTop_ = std::make_unique<cell::FlatLayout>(cell::flatten(*top));
  return *flatTop_;
}

const cell::FlatLayout& CompiledChip::flatCore() const {
  if (!flatCore_) flatCore_ = std::make_unique<cell::FlatLayout>(cell::flatten(*core));
  return *flatCore_;
}

}  // namespace bb::core
