#include "core/chip.hpp"

#include <sstream>
#include <unordered_map>
#include <variant>

namespace bb::core {

namespace {
double toLambda(geom::Coord v) { return static_cast<double>(v) / geom::kUnitsPerLambda; }
double toLambda2(geom::Coord v) {
  return static_cast<double>(v) / (geom::kUnitsPerLambda * geom::kUnitsPerLambda);
}
}  // namespace

std::string CompiledChip::statsText() const {
  std::ostringstream os;
  os << "chip '" << desc.name << "': " << desc.dataWidth << "-bit, " << placed.size()
     << " core elements, " << desc.buses.size() << " buses\n";
  os << "  pitch:        " << toLambda(stats.pitch) << "L (widest natural "
     << toLambda(stats.naturalPitchMax) << "L)\n";
  os << "  core:         " << toLambda(stats.coreWidth) << " x " << toLambda(stats.coreHeight)
     << "L = " << toLambda2(stats.coreArea) << " L^2\n";
  os << "  decoder:      " << toLambda2(stats.decoderArea) << " L^2, "
     << pla.termCount() << " terms, " << stats.controlCount << " control lines\n";
  os << "  pads:         " << stats.padCount << " (wire length "
     << toLambda(stats.padWireLength) << "L)\n";
  os << "  die:          " << toLambda(stats.dieWidth) << " x " << toLambda(stats.dieHeight)
     << "L = " << toLambda2(stats.dieArea) << " L^2\n";
  os << "  bus segments: " << stats.busSegments[0] << " + " << stats.busSegments[1] << " ("
     << stats.prechargeColumns << " precharge columns)\n";
  os << "  power:        " << stats.power_ua / 1000.0 << " mA static, rails "
     << toLambda(stats.powerRailWidth) << "L\n";
  os << "  logic:        " << stats.logicGates << " gates, " << stats.logicSignals
     << " signals\n";
  os << "  artwork:      " << stats.cellCount << " cells, " << stats.shapeCount
     << " flattened primitives\n";
  return os.str();
}

CompiledChip CompiledChip::clone() const {
  CompiledChip out;
  out.desc = desc;
  std::unordered_map<const cell::Cell*, cell::Cell*> map;
  out.lib = lib.clone(&map);
  const auto retarget = [&map](cell::Cell* p) -> cell::Cell* {
    if (p == nullptr) return nullptr;
    const auto it = map.find(p);
    return it == map.end() ? p : it->second;
  };
  out.top = retarget(top);
  out.core = retarget(core);
  out.bufferRow = retarget(bufferRow);
  out.decoder = retarget(decoder);
  out.placed = placed;
  for (PlacedElement& e : out.placed) e.column = retarget(e.column);
  out.controls = controls;
  out.pads = pads;
  out.logic = logic;
  out.pla = pla;
  out.tapeStats = tapeStats;
  out.stats = stats;
  return out;  // flatTop_/flatCore_ stay null: rebuilt lazily on demand
}

std::size_t CompiledChip::approxBytes() const noexcept {
  std::size_t bytes = sizeof(CompiledChip);
  for (const cell::Cell* c : lib.all()) {
    bytes += sizeof(cell::Cell) + c->name().size();
    for (const cell::Shape& s : c->shapes()) {
      bytes += sizeof(cell::Shape);
      if (const auto* poly = std::get_if<geom::Polygon>(&s.geo)) {
        bytes += poly->pts.size() * sizeof(geom::Point);
      } else if (const auto* path = std::get_if<geom::Path>(&s.geo)) {
        bytes += path->pts.size() * sizeof(geom::Point);
      }
    }
    bytes += c->instances().size() * sizeof(cell::Instance);
    for (const cell::Bristle& b : c->bristles()) {
      bytes += sizeof(cell::Bristle) + b.name.size() + b.decode.size() + b.net.size();
    }
    bytes += c->stretchLines().size() * sizeof(cell::StretchLine);
  }
  bytes += placed.size() * sizeof(PlacedElement);
  bytes += controls.size() * sizeof(elements::ControlLine);
  bytes += pads.size() * sizeof(PadPlacement);
  bytes += logic.gates().size() * sizeof(netlist::Gate);
  bytes += logic.signalCount() * 32;  // names + bus flags, order of magnitude
  // Materialized derived artwork. The flattens replicate every instance's
  // geometry, so on a hierarchical chip they dominate the shared cell
  // library above — omitting them is exactly the under-charge the svc
  // cache regression test pins down.
  if (flatTop_) bytes += sizeof(cell::FlatLayout) + flatTop_->approxBytes();
  if (flatCore_) bytes += sizeof(cell::FlatLayout) + flatCore_->approxBytes();
  if (hierTop_) bytes += sizeof(cell::HierIndex) + hierTop_->approxBytes();
  return bytes;
}

const cell::FlatLayout& CompiledChip::flatTop() const {
  if (!flatTop_) flatTop_ = std::make_unique<cell::FlatLayout>(cell::flatten(*top));
  return *flatTop_;
}

const cell::FlatLayout& CompiledChip::flatCore() const {
  if (!flatCore_) flatCore_ = std::make_unique<cell::FlatLayout>(cell::flatten(*core));
  return *flatCore_;
}

const cell::HierIndex& CompiledChip::hierTop() const {
  if (!hierTop_) hierTop_ = std::make_unique<cell::HierIndex>(*top);
  return *hierTop_;
}

}  // namespace bb::core
