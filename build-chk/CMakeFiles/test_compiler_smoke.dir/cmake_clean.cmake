file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_smoke.dir/tests/test_compiler_smoke.cpp.o"
  "CMakeFiles/test_compiler_smoke.dir/tests/test_compiler_smoke.cpp.o.d"
  "test_compiler_smoke"
  "test_compiler_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
