file(REMOVE_RECURSE
  "CMakeFiles/bench_emit_scaling.dir/bench/bench_emit_scaling.cpp.o"
  "CMakeFiles/bench_emit_scaling.dir/bench/bench_emit_scaling.cpp.o.d"
  "bench_emit_scaling"
  "bench_emit_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emit_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
