# Empty dependencies file for bench_ablation_stretch.
# This may be replaced when dependencies are built.
