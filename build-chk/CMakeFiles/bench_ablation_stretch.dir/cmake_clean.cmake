file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stretch.dir/bench/bench_ablation_stretch.cpp.o"
  "CMakeFiles/bench_ablation_stretch.dir/bench/bench_ablation_stretch.cpp.o.d"
  "bench_ablation_stretch"
  "bench_ablation_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
