# Empty dependencies file for test_view.
# This may be replaced when dependencies are built.
