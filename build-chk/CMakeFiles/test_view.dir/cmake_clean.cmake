file(REMOVE_RECURSE
  "CMakeFiles/test_view.dir/tests/test_view.cpp.o"
  "CMakeFiles/test_view.dir/tests/test_view.cpp.o.d"
  "test_view"
  "test_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
