# Empty compiler generated dependencies file for bench_ablation_rotorouter.
# This may be replaced when dependencies are built.
