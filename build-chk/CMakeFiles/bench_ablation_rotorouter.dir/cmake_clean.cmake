file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rotorouter.dir/bench/bench_ablation_rotorouter.cpp.o"
  "CMakeFiles/bench_ablation_rotorouter.dir/bench/bench_ablation_rotorouter.cpp.o.d"
  "bench_ablation_rotorouter"
  "bench_ablation_rotorouter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rotorouter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
