file(REMOVE_RECURSE
  "CMakeFiles/bench_union_scaling.dir/bench/bench_union_scaling.cpp.o"
  "CMakeFiles/bench_union_scaling.dir/bench/bench_union_scaling.cpp.o.d"
  "bench_union_scaling"
  "bench_union_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_union_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
