# Empty dependencies file for bench_union_scaling.
# This may be replaced when dependencies are built.
