file(REMOVE_RECURSE
  "CMakeFiles/test_pass1.dir/tests/test_pass1.cpp.o"
  "CMakeFiles/test_pass1.dir/tests/test_pass1.cpp.o.d"
  "test_pass1"
  "test_pass1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pass1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
