# Empty compiler generated dependencies file for test_pass1.
# This may be replaced when dependencies are built.
