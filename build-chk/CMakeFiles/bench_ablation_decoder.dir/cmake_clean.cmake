file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decoder.dir/bench/bench_ablation_decoder.cpp.o"
  "CMakeFiles/bench_ablation_decoder.dir/bench/bench_ablation_decoder.cpp.o.d"
  "bench_ablation_decoder"
  "bench_ablation_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
