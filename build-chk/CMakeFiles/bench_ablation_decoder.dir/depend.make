# Empty dependencies file for bench_ablation_decoder.
# This may be replaced when dependencies are built.
