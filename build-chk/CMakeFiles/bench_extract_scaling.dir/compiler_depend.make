# Empty compiler generated dependencies file for bench_extract_scaling.
# This may be replaced when dependencies are built.
