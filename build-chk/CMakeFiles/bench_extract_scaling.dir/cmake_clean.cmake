file(REMOVE_RECURSE
  "CMakeFiles/bench_extract_scaling.dir/bench/bench_extract_scaling.cpp.o"
  "CMakeFiles/bench_extract_scaling.dir/bench/bench_extract_scaling.cpp.o.d"
  "bench_extract_scaling"
  "bench_extract_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extract_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
