file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_compile.dir/bench/bench_batch_compile.cpp.o"
  "CMakeFiles/bench_batch_compile.dir/bench/bench_batch_compile.cpp.o.d"
  "bench_batch_compile"
  "bench_batch_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
