file(REMOVE_RECURSE
  "CMakeFiles/bench_area_vs_hand.dir/bench/bench_area_vs_hand.cpp.o"
  "CMakeFiles/bench_area_vs_hand.dir/bench/bench_area_vs_hand.cpp.o.d"
  "bench_area_vs_hand"
  "bench_area_vs_hand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_vs_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
