# Empty compiler generated dependencies file for bench_area_vs_hand.
# This may be replaced when dependencies are built.
