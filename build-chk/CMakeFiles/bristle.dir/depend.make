# Empty dependencies file for bristle.
# This may be replaced when dependencies are built.
