
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/handlayout.cpp" "CMakeFiles/bristle.dir/src/baseline/handlayout.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/baseline/handlayout.cpp.o.d"
  "/root/repo/src/baseline/naive_pads.cpp" "CMakeFiles/bristle.dir/src/baseline/naive_pads.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/baseline/naive_pads.cpp.o.d"
  "/root/repo/src/cell/cell.cpp" "CMakeFiles/bristle.dir/src/cell/cell.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/cell/cell.cpp.o.d"
  "/root/repo/src/cell/flatten.cpp" "CMakeFiles/bristle.dir/src/cell/flatten.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/cell/flatten.cpp.o.d"
  "/root/repo/src/cell/library.cpp" "CMakeFiles/bristle.dir/src/cell/library.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/cell/library.cpp.o.d"
  "/root/repo/src/cell/stretch.cpp" "CMakeFiles/bristle.dir/src/cell/stretch.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/cell/stretch.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "CMakeFiles/bristle.dir/src/core/batch.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/batch.cpp.o.d"
  "/root/repo/src/core/chip.cpp" "CMakeFiles/bristle.dir/src/core/chip.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/chip.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "CMakeFiles/bristle.dir/src/core/compiler.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/compiler.cpp.o.d"
  "/root/repo/src/core/pass1_core.cpp" "CMakeFiles/bristle.dir/src/core/pass1_core.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/pass1_core.cpp.o.d"
  "/root/repo/src/core/pass2_control.cpp" "CMakeFiles/bristle.dir/src/core/pass2_control.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/pass2_control.cpp.o.d"
  "/root/repo/src/core/pass2_tapes.cpp" "CMakeFiles/bristle.dir/src/core/pass2_tapes.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/pass2_tapes.cpp.o.d"
  "/root/repo/src/core/pass3_pads.cpp" "CMakeFiles/bristle.dir/src/core/pass3_pads.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/pass3_pads.cpp.o.d"
  "/root/repo/src/core/pla.cpp" "CMakeFiles/bristle.dir/src/core/pla.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/pla.cpp.o.d"
  "/root/repo/src/core/session.cpp" "CMakeFiles/bristle.dir/src/core/session.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/core/session.cpp.o.d"
  "/root/repo/src/drc/drc.cpp" "CMakeFiles/bristle.dir/src/drc/drc.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/drc/drc.cpp.o.d"
  "/root/repo/src/elements/alu.cpp" "CMakeFiles/bristle.dir/src/elements/alu.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/alu.cpp.o.d"
  "/root/repo/src/elements/busparts.cpp" "CMakeFiles/bristle.dir/src/elements/busparts.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/busparts.cpp.o.d"
  "/root/repo/src/elements/constant.cpp" "CMakeFiles/bristle.dir/src/elements/constant.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/constant.cpp.o.d"
  "/root/repo/src/elements/control_buffer.cpp" "CMakeFiles/bristle.dir/src/elements/control_buffer.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/control_buffer.cpp.o.d"
  "/root/repo/src/elements/element.cpp" "CMakeFiles/bristle.dir/src/elements/element.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/element.cpp.o.d"
  "/root/repo/src/elements/pads.cpp" "CMakeFiles/bristle.dir/src/elements/pads.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/pads.cpp.o.d"
  "/root/repo/src/elements/ports.cpp" "CMakeFiles/bristle.dir/src/elements/ports.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/ports.cpp.o.d"
  "/root/repo/src/elements/regfile.cpp" "CMakeFiles/bristle.dir/src/elements/regfile.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/regfile.cpp.o.d"
  "/root/repo/src/elements/register.cpp" "CMakeFiles/bristle.dir/src/elements/register.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/register.cpp.o.d"
  "/root/repo/src/elements/shifter.cpp" "CMakeFiles/bristle.dir/src/elements/shifter.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/shifter.cpp.o.d"
  "/root/repo/src/elements/slicekit.cpp" "CMakeFiles/bristle.dir/src/elements/slicekit.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/elements/slicekit.cpp.o.d"
  "/root/repo/src/extract/extract.cpp" "CMakeFiles/bristle.dir/src/extract/extract.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/extract/extract.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "CMakeFiles/bristle.dir/src/geom/geometry.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/geom/geometry.cpp.o.d"
  "/root/repo/src/geom/rect_index.cpp" "CMakeFiles/bristle.dir/src/geom/rect_index.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/geom/rect_index.cpp.o.d"
  "/root/repo/src/geom/sweep.cpp" "CMakeFiles/bristle.dir/src/geom/sweep.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/geom/sweep.cpp.o.d"
  "/root/repo/src/geom/transform.cpp" "CMakeFiles/bristle.dir/src/geom/transform.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/geom/transform.cpp.o.d"
  "/root/repo/src/icl/ast.cpp" "CMakeFiles/bristle.dir/src/icl/ast.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/icl/ast.cpp.o.d"
  "/root/repo/src/icl/diagnostics.cpp" "CMakeFiles/bristle.dir/src/icl/diagnostics.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/icl/diagnostics.cpp.o.d"
  "/root/repo/src/icl/eval.cpp" "CMakeFiles/bristle.dir/src/icl/eval.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/icl/eval.cpp.o.d"
  "/root/repo/src/icl/lexer.cpp" "CMakeFiles/bristle.dir/src/icl/lexer.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/icl/lexer.cpp.o.d"
  "/root/repo/src/icl/parser.cpp" "CMakeFiles/bristle.dir/src/icl/parser.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/icl/parser.cpp.o.d"
  "/root/repo/src/layout/cif.cpp" "CMakeFiles/bristle.dir/src/layout/cif.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/layout/cif.cpp.o.d"
  "/root/repo/src/layout/cif_parser.cpp" "CMakeFiles/bristle.dir/src/layout/cif_parser.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/layout/cif_parser.cpp.o.d"
  "/root/repo/src/layout/gds.cpp" "CMakeFiles/bristle.dir/src/layout/gds.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/layout/gds.cpp.o.d"
  "/root/repo/src/layout/svg.cpp" "CMakeFiles/bristle.dir/src/layout/svg.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/layout/svg.cpp.o.d"
  "/root/repo/src/layout/view.cpp" "CMakeFiles/bristle.dir/src/layout/view.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/layout/view.cpp.o.d"
  "/root/repo/src/netlist/logic.cpp" "CMakeFiles/bristle.dir/src/netlist/logic.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/netlist/logic.cpp.o.d"
  "/root/repo/src/netlist/spice.cpp" "CMakeFiles/bristle.dir/src/netlist/spice.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/netlist/spice.cpp.o.d"
  "/root/repo/src/netlist/transistor.cpp" "CMakeFiles/bristle.dir/src/netlist/transistor.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/netlist/transistor.cpp.o.d"
  "/root/repo/src/reps/blockrep.cpp" "CMakeFiles/bristle.dir/src/reps/blockrep.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/reps/blockrep.cpp.o.d"
  "/root/repo/src/reps/emitter.cpp" "CMakeFiles/bristle.dir/src/reps/emitter.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/reps/emitter.cpp.o.d"
  "/root/repo/src/reps/reps.cpp" "CMakeFiles/bristle.dir/src/reps/reps.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/reps/reps.cpp.o.d"
  "/root/repo/src/reps/sticks.cpp" "CMakeFiles/bristle.dir/src/reps/sticks.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/reps/sticks.cpp.o.d"
  "/root/repo/src/reps/textrep.cpp" "CMakeFiles/bristle.dir/src/reps/textrep.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/reps/textrep.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "CMakeFiles/bristle.dir/src/sim/clock.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/sim/clock.cpp.o.d"
  "/root/repo/src/sim/signal.cpp" "CMakeFiles/bristle.dir/src/sim/signal.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/sim/signal.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/bristle.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/testbench.cpp" "CMakeFiles/bristle.dir/src/sim/testbench.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/sim/testbench.cpp.o.d"
  "/root/repo/src/tech/layers.cpp" "CMakeFiles/bristle.dir/src/tech/layers.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/tech/layers.cpp.o.d"
  "/root/repo/src/tech/rules.cpp" "CMakeFiles/bristle.dir/src/tech/rules.cpp.o" "gcc" "CMakeFiles/bristle.dir/src/tech/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
