file(REMOVE_RECURSE
  "libbristle.a"
)
