file(REMOVE_RECURSE
  "CMakeFiles/bench_representations.dir/bench/bench_representations.cpp.o"
  "CMakeFiles/bench_representations.dir/bench/bench_representations.cpp.o.d"
  "bench_representations"
  "bench_representations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
