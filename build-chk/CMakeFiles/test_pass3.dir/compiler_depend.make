# Empty compiler generated dependencies file for test_pass3.
# This may be replaced when dependencies are built.
