file(REMOVE_RECURSE
  "CMakeFiles/test_pass3.dir/tests/test_pass3.cpp.o"
  "CMakeFiles/test_pass3.dir/tests/test_pass3.cpp.o.d"
  "test_pass3"
  "test_pass3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pass3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
