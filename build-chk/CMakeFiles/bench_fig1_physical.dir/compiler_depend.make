# Empty compiler generated dependencies file for bench_fig1_physical.
# This may be replaced when dependencies are built.
