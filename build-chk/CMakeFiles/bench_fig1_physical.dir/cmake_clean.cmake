file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_physical.dir/bench/bench_fig1_physical.cpp.o"
  "CMakeFiles/bench_fig1_physical.dir/bench/bench_fig1_physical.cpp.o.d"
  "bench_fig1_physical"
  "bench_fig1_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
