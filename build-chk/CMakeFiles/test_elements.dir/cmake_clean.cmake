file(REMOVE_RECURSE
  "CMakeFiles/test_elements.dir/tests/test_elements.cpp.o"
  "CMakeFiles/test_elements.dir/tests/test_elements.cpp.o.d"
  "test_elements"
  "test_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
