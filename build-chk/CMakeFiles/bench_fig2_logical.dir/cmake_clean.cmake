file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_logical.dir/bench/bench_fig2_logical.cpp.o"
  "CMakeFiles/bench_fig2_logical.dir/bench/bench_fig2_logical.cpp.o.d"
  "bench_fig2_logical"
  "bench_fig2_logical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_logical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
