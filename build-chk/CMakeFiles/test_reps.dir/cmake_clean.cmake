file(REMOVE_RECURSE
  "CMakeFiles/test_reps.dir/tests/test_reps.cpp.o"
  "CMakeFiles/test_reps.dir/tests/test_reps.cpp.o.d"
  "test_reps"
  "test_reps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
