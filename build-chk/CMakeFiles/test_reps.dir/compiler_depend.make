# Empty compiler generated dependencies file for test_reps.
# This may be replaced when dependencies are built.
