file(REMOVE_RECURSE
  "CMakeFiles/test_rect_index.dir/tests/test_rect_index.cpp.o"
  "CMakeFiles/test_rect_index.dir/tests/test_rect_index.cpp.o.d"
  "test_rect_index"
  "test_rect_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rect_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
