# Empty dependencies file for test_rect_index.
# This may be replaced when dependencies are built.
