file(REMOVE_RECURSE
  "CMakeFiles/bench_conditional_assembly.dir/bench/bench_conditional_assembly.cpp.o"
  "CMakeFiles/bench_conditional_assembly.dir/bench/bench_conditional_assembly.cpp.o.d"
  "bench_conditional_assembly"
  "bench_conditional_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conditional_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
