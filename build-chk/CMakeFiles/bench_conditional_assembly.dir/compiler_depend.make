# Empty compiler generated dependencies file for bench_conditional_assembly.
# This may be replaced when dependencies are built.
