# Empty compiler generated dependencies file for bench_drc_scaling.
# This may be replaced when dependencies are built.
