file(REMOVE_RECURSE
  "CMakeFiles/bench_drc_scaling.dir/bench/bench_drc_scaling.cpp.o"
  "CMakeFiles/bench_drc_scaling.dir/bench/bench_drc_scaling.cpp.o.d"
  "bench_drc_scaling"
  "bench_drc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
