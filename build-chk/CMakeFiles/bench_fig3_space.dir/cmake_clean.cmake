file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_space.dir/bench/bench_fig3_space.cpp.o"
  "CMakeFiles/bench_fig3_space.dir/bench/bench_fig3_space.cpp.o.d"
  "bench_fig3_space"
  "bench_fig3_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
