# Empty dependencies file for test_icl.
# This may be replaced when dependencies are built.
