file(REMOVE_RECURSE
  "CMakeFiles/test_icl.dir/tests/test_icl.cpp.o"
  "CMakeFiles/test_icl.dir/tests/test_icl.cpp.o.d"
  "test_icl"
  "test_icl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
