file(REMOVE_RECURSE
  "CMakeFiles/test_chipsim.dir/tests/test_chipsim.cpp.o"
  "CMakeFiles/test_chipsim.dir/tests/test_chipsim.cpp.o.d"
  "test_chipsim"
  "test_chipsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chipsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
