# Empty compiler generated dependencies file for test_chipsim.
# This may be replaced when dependencies are built.
