#!/usr/bin/env python3
"""Gate for the CI perf trajectory: fail if BENCH.json is missing, empty,
or malformed.

The perf-smoke job uploads BENCH.json as the per-commit perf record; an
empty or unparseable file means the trajectory silently stops being
recorded, which is exactly the failure mode this script exists to catch.

Usage:
    check_bench_json.py BENCH.json [--require PREFIX]...

Each --require PREFIX demands at least one row whose name starts with
PREFIX, so the job also fails when a whole bench family stops reporting
(e.g. a bench exits early before recording).
"""

import argparse
import json
import math
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_]+$")
REQUIRED_KEYS = {"name": str, "n": int, "ns_per_op": (int, float), "items_per_sec": (int, float)}
# Optional provenance fields newer writers add; rows from older writers
# lack them, so they are validated only when present.
TIMESTAMP_RE = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")
COMMIT_RE = re.compile(r"^[0-9A-Za-z_.-]{1,64}$")


def fail(msg: str) -> None:
    print(f"BENCH.json check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("path")
    ap.add_argument("--require", action="append", default=[],
                    help="require at least one row whose name starts with this prefix")
    args = ap.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{args.path} does not exist")
    except json.JSONDecodeError as e:
        fail(f"{args.path} is not valid JSON: {e}")

    if not isinstance(data, list):
        fail("top-level value must be a JSON array of rows")
    if not data:
        fail("trajectory is empty (zero rows recorded)")

    for i, row in enumerate(data):
        if not isinstance(row, dict):
            fail(f"row {i} is not an object: {row!r}")
        for key, types in REQUIRED_KEYS.items():
            if key not in row:
                fail(f"row {i} is missing key {key!r}: {row!r}")
            if not isinstance(row[key], types) or isinstance(row[key], bool):
                fail(f"row {i} key {key!r} has wrong type: {row!r}")
        if not NAME_RE.match(row["name"]):
            fail(f"row {i} name is not a bench identifier: {row['name']!r}")
        if row["n"] <= 0:
            fail(f"row {i} has non-positive n: {row!r}")
        for key in ("ns_per_op", "items_per_sec"):
            v = float(row[key])
            if not math.isfinite(v) or v < 0:
                fail(f"row {i} key {key!r} is not a finite non-negative number: {row!r}")
        if "timestamp" in row:
            if not isinstance(row["timestamp"], str) or not TIMESTAMP_RE.match(row["timestamp"]):
                fail(f"row {i} timestamp is not ISO-8601 UTC (YYYY-MM-DDTHH:MM:SSZ): {row!r}")
        if "commit" in row:
            if not isinstance(row["commit"], str) or not COMMIT_RE.match(row["commit"]):
                fail(f"row {i} commit is not an identifier-safe revision string: {row!r}")

    names = [row["name"] for row in data]
    for prefix in args.require:
        if not any(n.startswith(prefix) for n in names):
            fail(f"no row from required bench family {prefix!r} "
                 f"(recorded families: {sorted(set(names))})")

    print(f"BENCH.json OK: {len(data)} rows, families {sorted(set(names))}")


if __name__ == "__main__":
    main()
