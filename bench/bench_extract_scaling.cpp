/// EXTRACT-SCALING — spatial-index extraction vs the reference all-pairs
/// piece merging, on a synthetic transistor array swept from 1k to 100k
/// rects (4 rects per device: diffusion strip, poly gate, metal strap,
/// contact cut). Rows where both engines run assert the extracted
/// netlists are bit-identical.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings); BB_BENCH_FULL=1 extends brute-force to
/// the largest sizes.

#include "bench_util.hpp"

#include "cell/flatten.hpp"
#include "extract/extract.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bb;

namespace {

using geom::Coord;
using geom::lambda;
using geom::Rect;
using tech::Layer;

/// ~n rects forming isolated transistors on a 12L-pitch square grid.
/// Each device: a 2L diffusion strip crossed by a poly gate (2L overhang
/// both sides), a metal strap over the drain end and a contact cut
/// joining them — one enhancement device and a handful of nets per unit.
cell::FlatLayout makeFlat(std::size_t n) {
  cell::FlatLayout flat;
  const std::size_t units = std::max<std::size_t>(n / 4, 1);
  auto& diff = flat.on(Layer::Diffusion);
  auto& poly = flat.on(Layer::Poly);
  auto& metal = flat.on(Layer::Metal);
  auto& cuts = flat.on(Layer::Contact);
  diff.reserve(units);
  poly.reserve(units);
  metal.reserve(units);
  cuts.reserve(units);
  const Coord pitch = lambda(12);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(units))));
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < units; ++j) {
    for (std::size_t i = 0; i < k && placed < units; ++i, ++placed) {
      const Coord x = static_cast<Coord>(i) * pitch;
      const Coord y = static_cast<Coord>(j) * pitch;
      diff.emplace_back(x + lambda(2), y, x + lambda(4), y + lambda(10));
      poly.emplace_back(x, y + lambda(4), x + lambda(6), y + lambda(6));
      metal.emplace_back(x + lambda(1), y + lambda(8), x + lambda(5), y + lambda(10));
      cuts.emplace_back(x + lambda(2), y + lambda(8), x + lambda(4), y + lambda(10));
    }
  }
  return flat;
}

struct Run {
  double seconds = 0;
  std::size_t devices = 0;
  std::size_t nets = 0;
  std::string netlistText;
};

Run runExtract(const cell::FlatLayout& flat, bool useIndex) {
  extract::ExtractOptions opts;
  opts.useSpatialIndex = useIndex;
  const auto t0 = std::chrono::steady_clock::now();
  const extract::ExtractResult ex = extract::extractFlat(flat, {}, opts);
  Run run;
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.devices = ex.netlist.transistors().size();
  run.nets = ex.netCount;
  run.netlistText = ex.netlist.toText();
  return run;
}

void recordRow(const char* name, std::size_t n, const Run& run) {
  bench::BenchJson::instance().recordRun(name, static_cast<long long>(n), run.seconds);
}

void printTable(bool smoke) {
  const bool full = std::getenv("BB_BENCH_FULL") != nullptr;
  std::vector<std::size_t> sizes = smoke ? std::vector<std::size_t>{1000, 5000}
                                         : std::vector<std::size_t>{1000, 5000, 20000,
                                                                    50000, 100000};
  const std::size_t bruteCap = full ? sizes.back() : 20000;

  std::printf("== EXTRACT-SCALING: indexed vs brute-force extractFlat ==\n");
  std::printf("%8s %12s %12s %10s %10s %10s\n", "rects", "brute_ms", "indexed_ms",
              "speedup", "devices", "nets");
  for (const std::size_t n : sizes) {
    const cell::FlatLayout flat = makeFlat(n);
    const Run indexed = runExtract(flat, true);
    recordRow("extract_indexed", n, indexed);
    if (n <= bruteCap) {
      const Run brute = runExtract(flat, false);
      recordRow("extract_brute", n, brute);
      if (brute.netlistText != indexed.netlistText || brute.nets != indexed.nets) {
        std::fprintf(stderr, "FATAL: indexed extraction diverged from brute force at n=%zu\n",
                     n);
        std::abort();
      }
      std::printf("%8zu %12.2f %12.2f %9.1fx %10zu %10zu\n", n, brute.seconds * 1e3,
                  indexed.seconds * 1e3, brute.seconds / indexed.seconds, indexed.devices,
                  indexed.nets);
    } else {
      std::printf("%8zu %12s %12.2f %10s %10zu %10zu\n", n, "-", indexed.seconds * 1e3, "-",
                  indexed.devices, indexed.nets);
    }
  }
  std::printf("(brute force capped at %zu rects%s)\n\n", bruteCap,
              full ? "" : "; BB_BENCH_FULL=1 for the full curve");
}

void BM_ExtractIndexed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cell::FlatLayout flat = makeFlat(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runExtract(flat, true).devices);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExtractIndexed)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_ExtractBrute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cell::FlatLayout flat = makeFlat(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runExtract(flat, false).devices);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExtractBrute)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
