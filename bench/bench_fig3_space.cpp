/// FIG3 — Figure 3, "Hierarchy of Systems": the current Bristle Blocks
/// compiles one class of chip architectures within the larger compiler
/// space. This bench sweeps the architecture space the current system
/// covers (widths x element mixes x bus configurations) and reports
/// coverage — the measurable counterpart of the figure.

#include "bench_util.hpp"

using namespace bb;

namespace {

icl::ChipDesc chipFor(int width, int nregs, bool twoBuses, bool segmented) {
  using namespace bb::icl;
  const std::string outBus = twoBuses ? "B" : "A";
  ChipBuilder b("sweep");
  b.microcode(12, {field("op", 0, 3), field("sel", 4, 7), field("misc", 8, 11)})
      .dataWidth(width)
      .bus("A");
  if (twoBuses) b.bus("B");
  b.element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}});
  for (int r = 0; r < nregs; ++r) {
    b.element("register", "R" + std::to_string(r),
              {{"in", sym("A")},
               {"out", sym(outBus)},
               {"load", expr("op==2 & sel==" + std::to_string(r))},
               {"drive", expr("op==3 & sel==" + std::to_string(r))}});
  }
  if (segmented) b.element("busstop", "BS", {{"bus", sym("A")}});
  b.element("outport", "OUT", {{"bus", sym(outBus)}, {"sample", expr("op==4")}});
  return b.buildOrDie();
}

void printTable() {
  std::printf("== FIG3: compiler space coverage (current architecture class) ==\n");
  std::printf("%6s %6s %7s %10s %10s %12s %10s\n", "bits", "regs", "buses", "segmented",
              "compiles", "die L^2", "controls");
  int ok = 0, total = 0;
  for (int width : {2, 4, 8, 16, 32}) {
    for (int regs : {1, 4, 8}) {
      for (bool two : {false, true}) {
        for (bool seg : {false, true}) {
          if (seg && !two) continue;  // segmenting the only bus isolates the port
          ++total;
          auto chip = core::compileChip(chipFor(width, regs, two, seg)).valueOr(nullptr);
          const bool good = chip != nullptr;
          ok += good ? 1 : 0;
          std::printf("%6d %6d %7d %10s %10s %12.0f %10zu\n", width, regs, two ? 2 : 1,
                      seg ? "yes" : "no", good ? "yes" : "NO",
                      good ? bench::lambda2(chip->stats.dieArea) : 0.0,
                      good ? chip->controls.size() : 0u);
        }
      }
    }
  }
  std::printf("coverage: %d/%d points of the swept architecture class compile\n\n", ok, total);
}

void BM_SweepPoint(benchmark::State& state) {
  const icl::ChipDesc desc = chipFor(static_cast<int>(state.range(0)), 4, true, false);
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    benchmark::DoNotOptimize(chip->stats.dieArea);
  }
}
BENCHMARK(BM_SweepPoint)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
