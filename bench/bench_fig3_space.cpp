/// FIG3 — Figure 3, "Hierarchy of Systems": the current Bristle Blocks
/// compiles one class of chip architectures within the larger compiler
/// space. This bench sweeps the architecture space the current system
/// covers (widths x element mixes x bus configurations) and reports
/// coverage — the measurable counterpart of the figure.

#include "bench_util.hpp"

#include "icl/parser.hpp"

using namespace bb;

namespace {

std::string chipFor(int width, int nregs, bool twoBuses, bool segmented) {
  std::string src = "chip sweep;\nmicrocode width 12 { field op [0:3]; field sel [4:7]; "
                    "field misc [8:11]; }\ndata width " +
                    std::to_string(width) + ";\nbuses A" +
                    (twoBuses ? std::string(", B") : std::string()) + ";\ncore {\n";
  const char* outBus = twoBuses ? "B" : "A";
  src += "  inport IN (bus = A, drive = \"op==1\");\n";
  for (int r = 0; r < nregs; ++r) {
    src += "  register R" + std::to_string(r) + " (in = A, out = " + outBus +
           ", load = \"op==2 & sel==" + std::to_string(r) + "\", drive = \"op==3 & sel==" +
           std::to_string(r) + "\");\n";
  }
  if (segmented) src += "  busstop BS (bus = A);\n";
  src += "  outport OUT (bus = " + std::string(outBus) + ", sample = \"op==4\");\n}\n";
  return src;
}

void printTable() {
  std::printf("== FIG3: compiler space coverage (current architecture class) ==\n");
  std::printf("%6s %6s %7s %10s %10s %12s %10s\n", "bits", "regs", "buses", "segmented",
              "compiles", "die L^2", "controls");
  int ok = 0, total = 0;
  for (int width : {2, 4, 8, 16, 32}) {
    for (int regs : {1, 4, 8}) {
      for (bool two : {false, true}) {
        for (bool seg : {false, true}) {
          if (seg && !two) continue;  // segmenting the only bus isolates the port
          ++total;
          auto chip = core::compileChip(chipFor(width, regs, two, seg)).valueOr(nullptr);
          const bool good = chip != nullptr;
          ok += good ? 1 : 0;
          std::printf("%6d %6d %7d %10s %10s %12.0f %10zu\n", width, regs, two ? 2 : 1,
                      seg ? "yes" : "no", good ? "yes" : "NO",
                      good ? bench::lambda2(chip->stats.dieArea) : 0.0,
                      good ? chip->controls.size() : 0u);
        }
      }
    }
  }
  std::printf("coverage: %d/%d points of the swept architecture class compile\n\n", ok, total);
}

void BM_SweepPoint(benchmark::State& state) {
  const std::string src = chipFor(static_cast<int>(state.range(0)), 4, true, false);
  for (auto _ : state) {
    auto chip = bench::compile(src);
    benchmark::DoNotOptimize(chip->stats.dieArea);
  }
}
BENCHMARK(BM_SweepPoint)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
