/// UNION-SCALING — the sweep-line union/coverage core against the
/// reference O(n^2) slab scan, on synthetic overlapping artwork swept
/// from 1k to 100k rects. Three kernels per row:
///   * unionArea: boundary sweep vs unionAreaBrute (the acceptance bar
///     is >=10x at 50k rects; in practice it is orders of magnitude),
///   * unionRects: maximal decomposition, checked against the sweep
///     area (piece areas must sum to it exactly),
///   * subtractRects: index-filtered hole subtraction vs the sequential
///     subtractRectsBrute, compared bit-for-bit (values AND order).
/// Every row where both engines run asserts exact equivalence, so the
/// speedup is never bought with a wrong answer.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings); BB_BENCH_FULL=1 extends brute-force to
/// the largest sizes.

#include "bench_util.hpp"

#include "extract/extract.hpp"
#include "geom/geometry.hpp"
#include "geom/sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

using namespace bb;

namespace {

using geom::Coord;
using geom::lambda;
using geom::Rect;

/// ~n tiles on a square grid at 9L pitch, deterministically jittered
/// off-grid at quarter-lambda resolution so jittered 7L tiles spill
/// into their neighbors and nearly every rect contributes distinct x
/// edges (grid-aligned artwork would collapse the slab scan's slab
/// count and flatter the reference — and keep the pitch large enough
/// that the slab count keeps growing with n instead of saturating at
/// the domain width). Every 7th tile grows into a 12L blob overlapping
/// its neighbors and every 13th is duplicated exactly. The grid is
/// recentered so half the artwork sits in negative space.
std::vector<Rect> makeRects(std::size_t n) {
  std::vector<Rect> rs;
  rs.reserve(n + n / 13 + 1);
  const Coord pitch = lambda(9);
  const Coord size = lambda(7);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const Coord shift = static_cast<Coord>(k / 2) * pitch;  // recenter on origin
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;  // fixed seed: runs are reproducible
  const auto jitter = [&lcg](Coord range) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((lcg >> 33) % static_cast<std::uint64_t>(range));
  };
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < n; ++j) {
    for (std::size_t i = 0; i < k && placed < n; ++i, ++placed) {
      const Coord x = static_cast<Coord>(i) * pitch - shift + jitter(pitch);
      const Coord y = static_cast<Coord>(j) * pitch - shift + jitter(pitch);
      Coord s = size + jitter(lambda(2));
      if (placed % 7 == 3) s = lambda(12);
      rs.emplace_back(x, y, x + s, y + s);
      if (placed % 13 == 5) rs.emplace_back(x, y, x + s, y + s);  // exact duplicate
    }
  }
  return rs;
}

/// Hole set for the subtraction kernel: disjoint gate-like slots over
/// the base, every 3rd skipped so live fragments stay connected and the
/// fragment count grows with n.
std::vector<Rect> makeHoles(const Rect& base, std::size_t n) {
  std::vector<Rect> holes;
  holes.reserve(n);
  const Coord pitch = lambda(6);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < n; ++j) {
    for (std::size_t i = 0; i < k && placed < n; ++i, ++placed) {
      if (placed % 3 == 0) continue;
      const Coord x = base.x0 + static_cast<Coord>(i) * pitch;
      const Coord y = base.y0 + static_cast<Coord>(j) * pitch;
      holes.emplace_back(x, y, x + lambda(2), y + lambda(4));
    }
  }
  return holes;
}

template <typename F>
double timeIt(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void printTable(bool smoke) {
  const bool full = std::getenv("BB_BENCH_FULL") != nullptr;
  std::vector<std::size_t> sizes = smoke ? std::vector<std::size_t>{1000, 5000}
                                         : std::vector<std::size_t>{1000, 5000, 20000,
                                                                    50000, 100000};
  // The slab scan is quadratic; keep its largest run a few seconds
  // unless explicitly asked for the full curve. 50k stays in so the
  // >=10x acceptance row is always measured in full mode.
  const std::size_t bruteCap = full ? sizes.back() : 50000;
  // Sequential subtraction is O(holes x fragments); cap it lower.
  const std::size_t subBruteCap = full ? sizes.back() : 20000;

  std::printf("== UNION-SCALING: sweep-line union/coverage core vs brute reference ==\n");
  std::printf("%8s %12s %12s %10s %12s %12s %10s\n", "rects", "brute_ms", "sweep_ms",
              "speedup", "decomp_ms", "sub_brute_ms", "sub_idx_ms");
  for (const std::size_t n : sizes) {
    const std::vector<Rect> rects = makeRects(n);

    Coord sweepArea = 0;
    const double sweepS = timeIt([&] { sweepArea = geom::unionArea(rects); });
    bench::BenchJson::instance().recordRun("union_sweep", static_cast<long long>(n), sweepS);

    std::vector<Rect> pieces;
    const double decompS = timeIt([&] { pieces = geom::sweep::unionRects(rects); });
    bench::BenchJson::instance().recordRun("union_rects", static_cast<long long>(n), decompS);
    Coord pieceArea = 0;
    for (const Rect& p : pieces) pieceArea += p.area();
    if (pieceArea != sweepArea) {
      std::fprintf(stderr, "FATAL: unionRects decomposition area diverged at n=%zu\n", n);
      std::abort();
    }

    double bruteS = -1;
    if (n <= bruteCap) {
      Coord bruteArea = 0;
      bruteS = timeIt([&] { bruteArea = geom::unionAreaBrute(rects); });
      bench::BenchJson::instance().recordRun("union_brute", static_cast<long long>(n), bruteS);
      if (bruteArea != sweepArea) {
        std::fprintf(stderr, "FATAL: sweep unionArea diverged from brute force at n=%zu\n", n);
        std::abort();
      }
    }

    // Subtraction: holes over the artwork bbox, indexed vs sequential.
    const Rect base = geom::bboxOf(rects);
    const std::vector<Rect> holes = makeHoles(base, n);
    std::vector<Rect> subIdx;
    const double subIdxS = timeIt([&] { subIdx = extract::subtractRects(base, holes); });
    bench::BenchJson::instance().recordRun("subtract_indexed", static_cast<long long>(n),
                                           subIdxS);
    double subBruteS = -1;
    if (n <= subBruteCap) {
      std::vector<Rect> subBrute;
      subBruteS = timeIt([&] { subBrute = extract::subtractRectsBrute(base, holes); });
      bench::BenchJson::instance().recordRun("subtract_brute", static_cast<long long>(n),
                                             subBruteS);
      if (subBrute != subIdx) {
        std::fprintf(stderr,
                     "FATAL: indexed subtractRects diverged from brute force at n=%zu\n", n);
        std::abort();
      }
    }

    char bruteCol[16], speedCol[16], subBruteCol[16];
    if (bruteS >= 0) {
      std::snprintf(bruteCol, sizeof(bruteCol), "%.2f", bruteS * 1e3);
      std::snprintf(speedCol, sizeof(speedCol), "%.1fx", bruteS / (sweepS > 0 ? sweepS : 1e-9));
    } else {
      std::snprintf(bruteCol, sizeof(bruteCol), "-");
      std::snprintf(speedCol, sizeof(speedCol), "-");
    }
    if (subBruteS >= 0) std::snprintf(subBruteCol, sizeof(subBruteCol), "%.2f", subBruteS * 1e3);
    else std::snprintf(subBruteCol, sizeof(subBruteCol), "-");
    std::printf("%8zu %12s %12.2f %10s %12.2f %12s %10.2f\n", n, bruteCol, sweepS * 1e3,
                speedCol, decompS * 1e3, subBruteCol, subIdxS * 1e3);
  }
  std::printf("(union brute capped at %zu, subtract brute at %zu rects%s)\n\n", bruteCap,
              subBruteCap, full ? "" : "; BB_BENCH_FULL=1 for the full curves");
}

void BM_UnionSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Rect> rects = makeRects(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::unionArea(rects));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionSweep)->RangeMultiplier(4)->Range(1024, 65536)->Unit(benchmark::kMillisecond);

void BM_UnionBrute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Rect> rects = makeRects(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::unionAreaBrute(rects));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionBrute)->RangeMultiplier(4)->Range(1024, 16384)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
