/// DRC-SCALING — the spatial-index DRC engine against the reference
/// all-pairs scan, on synthetic flat artwork swept from 1k to 100k
/// rects. The table is the paper-artifact: brute-force seconds grow
/// quadratically while the indexed checker stays near-linear (the
/// acceptance bar is >=10x at 50k rects; in practice it is orders of
/// magnitude). Every row where both engines run also asserts the
/// violation lists are bit-identical, so the speedup is never bought
/// with a wrong answer.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings); BB_BENCH_FULL=1 extends brute-force to
/// the largest sizes.

#include "bench_util.hpp"

#include "cell/flatten.hpp"
#include "drc/drc.hpp"
#include "tech/rules.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bb;

namespace {

using geom::Coord;
using geom::lambda;
using geom::Rect;
using tech::Layer;

/// ~n metal tiles on a square grid at 7L pitch (4L gaps — clean), with
/// every 101st tile nudged 2L left (gap 2L < 3L: spacing violation) and
/// every 97th thinned to 2L (< 3L min width: width violation). Violation
/// density stays constant as n grows, so the engines chase real work.
cell::FlatLayout makeFlat(std::size_t n) {
  cell::FlatLayout flat;
  auto& metal = flat.on(Layer::Metal);
  metal.reserve(n);
  const Coord pitch = lambda(7);
  const Coord size = lambda(3);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < n; ++j) {
    for (std::size_t i = 0; i < k && placed < n; ++i, ++placed) {
      Coord x = static_cast<Coord>(i) * pitch;
      const Coord y = static_cast<Coord>(j) * pitch;
      Coord h = size;
      if (placed % 101 == 13) x -= lambda(2);
      if (placed % 97 == 7) h = lambda(2);
      metal.emplace_back(x, y, x + size, y + h);
    }
  }
  return flat;
}

struct Run {
  double seconds = 0;
  std::size_t violations = 0;
  std::string fingerprint;  ///< rule@where per violation, order-sensitive
};

Run runDrc(const cell::FlatLayout& flat, bool useIndex, unsigned threads) {
  drc::DrcOptions opts;
  opts.useSpatialIndex = useIndex;
  opts.threads = threads;
  opts.boundaryConditions = false;
  const auto t0 = std::chrono::steady_clock::now();
  const drc::DrcReport rep =
      drc::checkFlat(flat, flat.bbox(), tech::meadConwayRules(), opts);
  Run run;
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.violations = rep.violations.size();
  for (const drc::Violation& v : rep.violations) {
    run.fingerprint += v.rule + "@" + geom::toString(v.where) + ";";
  }
  return run;
}

void recordRow(const char* name, std::size_t n, const Run& run) {
  bench::BenchJson::instance().recordRun(name, static_cast<long long>(n), run.seconds);
}

void printTable(bool smoke) {
  const bool full = std::getenv("BB_BENCH_FULL") != nullptr;
  std::vector<std::size_t> sizes = smoke ? std::vector<std::size_t>{1000, 5000}
                                         : std::vector<std::size_t>{1000, 5000, 20000,
                                                                    50000, 100000};
  // Brute-force is quadratic; keep its largest run a few seconds unless
  // explicitly asked for the full curve.
  const std::size_t bruteCap = full ? sizes.back() : 50000;

  std::printf("== DRC-SCALING: indexed vs brute-force checkFlat ==\n");
  std::printf("%8s %12s %12s %12s %10s %11s\n", "rects", "brute_ms", "indexed_ms",
              "indexed4_ms", "speedup", "violations");
  for (const std::size_t n : sizes) {
    const cell::FlatLayout flat = makeFlat(n);
    const Run indexed = runDrc(flat, true, 1);
    const Run indexed4 = runDrc(flat, true, 4);
    recordRow("drc_indexed", n, indexed);
    recordRow("drc_indexed_mt4", n, indexed4);
    if (n <= bruteCap) {
      const Run brute = runDrc(flat, false, 1);
      recordRow("drc_brute", n, brute);
      if (brute.fingerprint != indexed.fingerprint ||
          brute.fingerprint != indexed4.fingerprint) {
        std::fprintf(stderr, "FATAL: indexed DRC diverged from brute force at n=%zu\n", n);
        std::abort();
      }
      std::printf("%8zu %12.2f %12.2f %12.2f %9.1fx %11zu\n", n, brute.seconds * 1e3,
                  indexed.seconds * 1e3, indexed4.seconds * 1e3,
                  brute.seconds / indexed.seconds, indexed.violations);
    } else {
      std::printf("%8zu %12s %12.2f %12.2f %10s %11zu\n", n, "-", indexed.seconds * 1e3,
                  indexed4.seconds * 1e3, "-", indexed.violations);
    }
  }
  std::printf("(brute force capped at %zu rects%s)\n\n", bruteCap,
              full ? "" : "; BB_BENCH_FULL=1 for the full curve");
}

void BM_DrcIndexed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cell::FlatLayout flat = makeFlat(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runDrc(flat, true, 1).violations);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DrcIndexed)->RangeMultiplier(4)->Range(1024, 65536)->Unit(benchmark::kMillisecond);

void BM_DrcBrute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cell::FlatLayout flat = makeFlat(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runDrc(flat, false, 1).violations);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DrcBrute)->RangeMultiplier(4)->Range(1024, 16384)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
