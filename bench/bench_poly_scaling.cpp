/// POLY-SCALING — the polygon geometry engine on synthetic rectilinear
/// combs swept from 1k to 100k vertices. Four kernels per row:
///   * poly_decomp: rectDecompose into region normal form, checked
///     against the shoelace area (piece areas must sum to it exactly),
///   * poly_clip: clipToRect against a half-comb window, checked
///     bit-for-bit against intersectRegions on the decomposition,
///   * poly_offset: offsetOutward by 1 lambda, checked bit-for-bit
///     against dilateRegion on the decomposition,
///   * poly_query_indexed vs poly_query_brute: SegmentIndex probes vs a
///     brute scan over all edges, compared exactly (values AND order).
/// Every row where both engines run asserts exact equivalence, so the
/// speedup is never bought with a wrong answer.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings); BB_BENCH_FULL=1 extends the brute edge
/// scan to the largest sizes.

#include "bench_util.hpp"

#include "geom/geometry.hpp"
#include "geom/poly.hpp"
#include "geom/segment_index.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

using namespace bb;

namespace {

using geom::Coord;
using geom::lambda;
using geom::Point;
using geom::Polygon;
using geom::Rect;

/// One rectilinear comb with ~n vertices: a 3L-thick spine with 2L-wide
/// teeth of deterministically jittered height every 4L along the top.
/// Each tooth contributes 4 vertices, so the ring both stresses the
/// even-odd decomposition scan (every tooth is an event pair) and gives
/// the segment index a long, spatially spread edge set.
Polygon makeComb(std::size_t n) {
  const std::size_t teeth = std::max<std::size_t>(n / 4, 1);
  const Coord pitch = lambda(4);
  const Coord toothW = lambda(2);
  const Coord spineH = lambda(3);
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;  // fixed seed: runs are reproducible
  const auto jitter = [&lcg](Coord range) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((lcg >> 33) % static_cast<std::uint64_t>(range));
  };
  Polygon p;
  p.pts.reserve(4 * teeth + 4);
  const Coord width = static_cast<Coord>(teeth) * pitch + toothW;
  p.pts.push_back({0, 0});
  p.pts.push_back({width, 0});
  p.pts.push_back({width, spineH});
  // Walk the top edge right-to-left, carving one tooth per pitch.
  for (std::size_t t = teeth; t-- > 0;) {
    const Coord x1 = static_cast<Coord>(t) * pitch + toothW;
    const Coord x0 = static_cast<Coord>(t) * pitch;
    const Coord h = spineH + lambda(2) + jitter(lambda(6));
    p.pts.push_back({x1, spineH});
    p.pts.push_back({x1, h});
    p.pts.push_back({x0, h});
    p.pts.push_back({x0, spineH});
  }
  p.pts.push_back({0, spineH});
  return geom::poly::cleanPolygon(p);
}

/// Deterministic probe windows over the comb's bbox, sized around a few
/// teeth so indexed queries return small candidate sets.
std::vector<Rect> makeProbes(const Rect& bb, std::size_t count) {
  std::vector<Rect> probes;
  probes.reserve(count);
  std::uint64_t lcg = 0xC0FFEE123456789ull;
  const auto pick = [&lcg](Coord range) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((lcg >> 33) % static_cast<std::uint64_t>(range));
  };
  for (std::size_t i = 0; i < count; ++i) {
    const Coord x = bb.x0 + pick(std::max<Coord>(bb.width(), 1));
    const Coord y = bb.y0 - lambda(1) + pick(std::max<Coord>(bb.height() + lambda(2), 1));
    probes.emplace_back(x, y, x + lambda(6), y + lambda(4));
  }
  return probes;
}

template <typename F>
double timeIt(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Normal-form regions are order-sensitive only via unionRects' sort;
/// compare as sorted sets so stitch-then-decompose roundtrips compare
/// bit-for-bit without depending on emission order.
std::vector<Rect> sorted(std::vector<Rect> rs) {
  std::sort(rs.begin(), rs.end(), [](const Rect& a, const Rect& b) {
    if (a.x0 != b.x0) return a.x0 < b.x0;
    if (a.y0 != b.y0) return a.y0 < b.y0;
    if (a.x1 != b.x1) return a.x1 < b.x1;
    return a.y1 < b.y1;
  });
  return rs;
}

bool sameRegion(const std::vector<Rect>& a, const std::vector<Rect>& b) {
  const std::vector<Rect> sa = sorted(a), sb = sorted(b);
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].x0 != sb[i].x0 || sa[i].y0 != sb[i].y0 || sa[i].x1 != sb[i].x1 ||
        sa[i].y1 != sb[i].y1) {
      return false;
    }
  }
  return true;
}

void printTable(bool smoke) {
  const bool full = std::getenv("BB_BENCH_FULL") != nullptr;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1000, 5000}
            : std::vector<std::size_t>{1000, 5000, 20000, 50000, 100000};
  // The brute probe scan is O(probes x edges); cap it so the default run
  // stays seconds, but keep 50k in so a speedup row is always measured.
  const std::size_t bruteCap = full ? sizes.back() : 50000;
  const std::size_t probeCount = 2000;

  std::printf("== POLY-SCALING: polygon engine + segment index vs brute reference ==\n");
  std::printf("%8s %10s %10s %10s %12s %12s %10s\n", "verts", "decomp_ms", "clip_ms",
              "offset_ms", "q_brute_ms", "q_index_ms", "speedup");
  for (const std::size_t n : sizes) {
    const Polygon comb = makeComb(n);
    const auto nv = static_cast<long long>(comb.pts.size());

    // Decomposition: region normal form, area must match the shoelace.
    std::vector<Rect> region;
    const double decompS = timeIt([&] { region = geom::poly::rectDecompose(comb); });
    bench::BenchJson::instance().recordRun("poly_decomp", nv, decompS);
    Coord pieceArea = 0;
    for (const Rect& r : region) pieceArea += r.area();
    if (pieceArea != geom::polygonArea(comb)) {
      std::fprintf(stderr, "FATAL: rectDecompose area diverged at n=%zu\n", n);
      std::abort();
    }

    // Clip: left half of the comb, vs intersectRegions on the region.
    const Rect bb = comb.bbox();
    const Rect window{bb.x0 - lambda(1), bb.y0 - lambda(1),
                      bb.x0 + bb.width() / 2, bb.y1 + lambda(1)};
    geom::poly::PolySet clipped;
    const double clipS = timeIt([&] { clipped = geom::poly::clipToRect(comb, window); });
    bench::BenchJson::instance().recordRun("poly_clip", nv, clipS);
    if (!sameRegion(geom::poly::regionOf(clipped),
                    geom::poly::intersectRegions(region, {window}))) {
      std::fprintf(stderr, "FATAL: clipToRect diverged from intersectRegions at n=%zu\n", n);
      std::abort();
    }

    // Offset: outward by 1 lambda, vs dilateRegion on the region.
    const geom::poly::PolySet combSet{comb};
    geom::poly::PolySet grown;
    const double offS =
        timeIt([&] { grown = geom::poly::offsetOutward(combSet, lambda(1)); });
    bench::BenchJson::instance().recordRun("poly_offset", nv, offS);
    if (!sameRegion(geom::poly::regionOf(grown), geom::poly::dilateRegion(region, lambda(1)))) {
      std::fprintf(stderr, "FATAL: offsetOutward diverged from dilateRegion at n=%zu\n", n);
      std::abort();
    }

    // Probe queries: SegmentIndex vs brute edge scan, exact compare.
    const std::vector<geom::Segment> edges = geom::edgesOf(comb);
    const std::vector<Rect> probes = makeProbes(bb, probeCount);
    geom::SegmentIndex idx(edges);
    std::vector<std::vector<int>> idxHits(probes.size());
    const double qIdxS = timeIt([&] {
      for (std::size_t i = 0; i < probes.size(); ++i) idx.queryTouching(probes[i], idxHits[i]);
    });
    bench::BenchJson::instance().recordRun("poly_query_indexed", nv, qIdxS);
    double qBruteS = -1;
    if (n <= bruteCap) {
      std::vector<std::vector<int>> bruteHits(probes.size());
      qBruteS = timeIt([&] {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          for (std::size_t e = 0; e < edges.size(); ++e) {
            if (geom::segmentTouchesRect(edges[e], probes[i])) {
              bruteHits[i].push_back(static_cast<int>(e));
            }
          }
        }
      });
      bench::BenchJson::instance().recordRun("poly_query_brute", nv, qBruteS);
      if (bruteHits != idxHits) {
        std::fprintf(stderr, "FATAL: SegmentIndex diverged from brute edge scan at n=%zu\n",
                     n);
        std::abort();
      }
    }

    char bruteCol[16], speedCol[16];
    if (qBruteS >= 0) {
      std::snprintf(bruteCol, sizeof(bruteCol), "%.2f", qBruteS * 1e3);
      std::snprintf(speedCol, sizeof(speedCol), "%.1fx",
                    qBruteS / (qIdxS > 0 ? qIdxS : 1e-9));
    } else {
      std::snprintf(bruteCol, sizeof(bruteCol), "-");
      std::snprintf(speedCol, sizeof(speedCol), "-");
    }
    std::printf("%8lld %10.2f %10.2f %10.2f %12s %12.2f %10s\n", nv, decompS * 1e3,
                clipS * 1e3, offS * 1e3, bruteCol, qIdxS * 1e3, speedCol);
  }
  std::printf("(%zu probes per row; brute edge scan capped at %zu verts%s)\n\n", probeCount,
              bruteCap, full ? "" : "; BB_BENCH_FULL=1 for the full curve");
}

void BM_PolyDecompose(benchmark::State& state) {
  const Polygon comb = makeComb(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::poly::rectDecompose(comb));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(comb.pts.size()));
}
BENCHMARK(BM_PolyDecompose)->RangeMultiplier(4)->Range(1024, 65536)->Unit(benchmark::kMillisecond);

void BM_SegIndexQuery(benchmark::State& state) {
  const Polygon comb = makeComb(static_cast<std::size_t>(state.range(0)));
  const geom::SegmentIndex idx(geom::edgesOf(comb));
  const std::vector<Rect> probes = makeProbes(comb.bbox(), 256);
  std::vector<int> hits;
  for (auto _ : state) {
    for (const Rect& q : probes) {
      idx.queryTouching(q, hits);
      benchmark::DoNotOptimize(hits.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SegIndexQuery)->RangeMultiplier(4)->Range(1024, 65536)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
