/// ABL-STRETCH — the design decision behind stretchable cells: "To save
/// the space and costly routing needed if cell widths vary, a design
/// constraint states that all cells must be of equal width." This
/// ablation compares the compiled (stretched, common-pitch) core with
/// the variable-pitch + river-routed alternative.

#include "baseline/handlayout.hpp"
#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== ABL-STRETCH: common pitch (stretch) vs variable pitch + routing ==\n");
  std::printf("%-12s %14s %14s %10s %10s\n", "chip", "stretched L^2", "routed L^2",
              "channels", "delta");
  struct Row {
    const char* name;
    bb::icl::ChipDesc desc;
  };
  const Row rows[] = {
      {"small4", core::samples::smallChip(4)},
      {"small8", core::samples::smallChip(8)},
      {"small16", core::samples::smallChip(16)},
      {"large16", core::samples::largeChip(16, 8)},
  };
  for (const Row& r : rows) {
    auto chip = bench::compile(r.desc);
    icl::DiagnosticList diags;
    cell::CellLibrary lib;
    const auto routed = baseline::buildRoutedCore(r.desc, {}, lib, diags);
    if (!routed.ok) {
      std::printf("%-12s routed baseline failed: %s\n", r.name, routed.error.c_str());
      continue;
    }
    const double a = bench::lambda2(chip->stats.coreArea);
    const double b = bench::lambda2(routed.area);
    std::printf("%-12s %14.0f %14.0f %10zu %+9.1f%%\n", r.name, a, b, routed.channels,
                (a / b - 1.0) * 100.0);
  }
  std::printf("(negative delta: the stretched core is smaller — the paper's argument)\n\n");
}

void BM_StretchedCore(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::smallChip(8);
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    benchmark::DoNotOptimize(chip->stats.coreArea);
  }
}
BENCHMARK(BM_StretchedCore);

void BM_RoutedCore(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::smallChip(8);
  for (auto _ : state) {
    cell::CellLibrary lib;
    icl::DiagnosticList d;
    auto routed = baseline::buildRoutedCore(desc, {}, lib, d);
    benchmark::DoNotOptimize(routed.area);
  }
}
BENCHMARK(BM_RoutedCore);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
