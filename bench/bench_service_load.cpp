/// SERVICE-LOAD — the compile service under a concurrent request load,
/// sweeping the three request classes a design environment generates:
///   * cold: distinct designs, every request a cache miss running the
///     full staged pipeline,
///   * hot: repeats of known designs, served from the content-addressed
///     cache (asserted: every request hits, the served chip is the same
///     immutable object, and the mean hot latency is >= 10x faster than
///     the mean cold latency),
///   * viewport: pan/zoom windows streamed off cached chips through the
///     tiled layout::View path (asserted: zero compile stages run while
///     serving them — `ServiceStats::compilesExecuted` is flat),
/// plus a mixed workload (10% cold / 60% hot / 30% viewport) as the
/// realistic steady state. Rows land in BENCH.json as the `svc_` family:
/// per-class throughput (requests == items), tail latency (`*_p99` rows
/// carry the 99th-percentile request latency in ns_per_op), and the
/// mixed-workload cache hit rate (`svc_mixed_hit_rate_pct`, percent in
/// items_per_sec — the one row whose "items" are not requests).
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings).

#include "bench_util.hpp"

#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace bb;

namespace {

constexpr int kClients = 4;  // concurrent client threads per phase

/// Distinct designs, cycling widths over both sample families so cold
/// requests exercise different pipeline costs.
icl::ChipDesc designAt(std::size_t i) {
  if (i % 4 == 3) {
    return core::samples::largeChip(8 + static_cast<int>(i % 8), 4 + static_cast<int>(i % 3));
  }
  return core::samples::smallChip(2 + static_cast<int>(i % 15));
}

double seconds(std::chrono::nanoseconds ns) {
  return static_cast<double>(ns.count()) / 1e9;
}

double p99(std::vector<double>& latenciesSeconds) {
  if (latenciesSeconds.empty()) return 0;
  std::sort(latenciesSeconds.begin(), latenciesSeconds.end());
  const std::size_t idx =
      (latenciesSeconds.size() * 99 + 99) / 100 - 1;  // ceil(0.99n)-1
  return latenciesSeconds[std::min(idx, latenciesSeconds.size() - 1)];
}

template <typename F>
double timeIt(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Issue `total` requests from `kClients` threads, each request built by
/// `makeAndSend(i)` returning its latency in seconds.
template <typename F>
std::vector<double> drive(std::size_t total, F&& makeAndSend) {
  std::vector<double> latencies(total);
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = cursor.fetch_add(1); i < total; i = cursor.fetch_add(1)) {
        latencies[i] = makeAndSend(i);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  return latencies;
}

void printTable(bool smoke) {
  const std::size_t nDesigns = smoke ? 6 : 16;
  const std::size_t nHot = smoke ? 120 : 1200;
  const std::size_t nViewport = smoke ? 48 : 400;
  const std::size_t nMixed = smoke ? 100 : 2000;

  svc::ServiceOptions sopts;
  sopts.cacheBudgetBytes = 512ull << 20;  // no eviction: this bench times serving
  svc::CompileService service(sopts);

  std::printf("== SERVICE-LOAD: compile service under %d concurrent clients ==\n",
              kClients);

  // -- cold: every request a distinct design ------------------------------
  std::vector<svc::CompileResponse> cold(nDesigns);
  const double coldS = timeIt([&] {
    auto lats = drive(nDesigns, [&](std::size_t i) {
      cold[i] = service.compile(svc::CompileRequest::ofDesc(designAt(i)));
      return seconds(cold[i].latency);
    });
    bench::BenchJson::instance().record("svc_cold_p99", static_cast<long long>(nDesigns),
                                        p99(lats) * 1e9, 0);
  });
  bench::BenchJson::instance().recordRun("svc_cold_compile",
                                         static_cast<long long>(nDesigns), coldS);
  double coldMeanS = 0;
  for (const auto& r : cold) {
    if (!r.ok() || r.cacheHit) {
      std::fprintf(stderr, "FATAL: cold request failed or hit a cache that must be empty\n");
      std::abort();
    }
    coldMeanS += seconds(r.latency);
  }
  coldMeanS /= static_cast<double>(nDesigns);
  if (service.stats().compilesExecuted != nDesigns) {
    std::fprintf(stderr, "FATAL: %llu compiles for %zu distinct cold designs\n",
                 static_cast<unsigned long long>(service.stats().compilesExecuted),
                 nDesigns);
    std::abort();
  }

  // Warm the shared thread pool (the first tiled viewport spawns its
  // workers) and pin the spawn counter: the entire hot + viewport
  // serving load must then run on the warm pool without creating a
  // single thread.
  {
    const geom::Rect art = cold[0].chip->flatTop().bbox();
    svc::ViewportRequest warm;
    warm.chip = svc::CompileRequest::ofDesc(designAt(0));
    warm.window = art;
    // A guaranteed multi-tile grid regardless of the design's size, so
    // this request really does fan out over (and thereby start) the pool.
    warm.tileSize = std::max<geom::Coord>(art.width() / 4, 1);
    if (!service.viewport(warm).ok) {
      std::fprintf(stderr, "FATAL: pool-warmup viewport failed\n");
      std::abort();
    }
  }
  const std::uint64_t poolSpawnsWarm = service.stats().poolThreadsSpawned;

  // -- hot: repeats served from the cache ---------------------------------
  std::atomic<std::size_t> hotMisses{0};
  double hotMeanS = 0;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;  // fixed seed: reproducible mix
  std::vector<std::size_t> hotPick(nHot);
  for (std::size_t i = 0; i < nHot; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    hotPick[i] = (lcg >> 33) % nDesigns;
  }
  const double hotS = timeIt([&] {
    auto lats = drive(nHot, [&](std::size_t i) {
      const svc::CompileResponse r =
          service.compile(svc::CompileRequest::ofDesc(designAt(hotPick[i])));
      if (!r.cacheHit || r.chip.get() != cold[hotPick[i]].chip.get()) {
        hotMisses.fetch_add(1);
      }
      return seconds(r.latency);
    });
    for (const double s : lats) hotMeanS += s;
    hotMeanS /= static_cast<double>(nHot);
    bench::BenchJson::instance().record("svc_hot_p99", static_cast<long long>(nHot),
                                        p99(lats) * 1e9, 0);
  });
  bench::BenchJson::instance().recordRun("svc_hot_compile", static_cast<long long>(nHot),
                                         hotS);
  if (hotMisses.load() != 0) {
    std::fprintf(stderr, "FATAL: %zu hot requests missed the warm cache (or served a "
                 "different chip object)\n", hotMisses.load());
    std::abort();
  }
  // The acceptance bar: a warm hit must be at least 10x cheaper than a
  // cold compile, or the cache is not earning its memory.
  if (hotMeanS * 10 > coldMeanS) {
    std::fprintf(stderr, "FATAL: warm-cache speedup below 10x (cold %.3f ms, hot %.3f ms)\n",
                 coldMeanS * 1e3, hotMeanS * 1e3);
    std::abort();
  }

  // -- viewport: pan/zoom windows off cached chips ------------------------
  const std::uint64_t compilesBefore = service.stats().compilesExecuted;
  std::atomic<std::size_t> vpFailures{0};
  const double vpS = timeIt([&] {
    auto lats = drive(nViewport, [&](std::size_t i) {
      const std::size_t d = i % nDesigns;
      const geom::Rect art = cold[d].chip->flatTop().bbox();
      const geom::Coord w = art.width() / 4, h = art.height() / 4;
      const geom::Coord span = art.width() - w > 0 ? art.width() - w : 1;
      svc::ViewportRequest vp;
      vp.chip = svc::CompileRequest::ofDesc(designAt(d));
      const geom::Coord x = art.x0 + static_cast<geom::Coord>(i % 8) * span / 8;
      vp.window = geom::Rect{x, art.y0, x + w, art.y0 + h};
      vp.tileSize = geom::lambda(256);
      const svc::EmitResponse r = service.viewport(vp);
      if (!r.ok || !r.cacheHit) vpFailures.fetch_add(1);
      return seconds(r.latency);
    });
    bench::BenchJson::instance().record("svc_viewport_p99",
                                        static_cast<long long>(nViewport),
                                        p99(lats) * 1e9, 0);
  });
  bench::BenchJson::instance().recordRun("svc_viewport_serve",
                                         static_cast<long long>(nViewport), vpS);
  if (vpFailures.load() != 0) {
    std::fprintf(stderr, "FATAL: %zu viewport requests failed or missed the cache\n",
                 vpFailures.load());
    std::abort();
  }
  // The serving guarantee: a cached viewport never runs a compile stage.
  if (service.stats().compilesExecuted != compilesBefore) {
    std::fprintf(stderr, "FATAL: viewport serving ran %llu compile(s)\n",
                 static_cast<unsigned long long>(service.stats().compilesExecuted -
                                                 compilesBefore));
    std::abort();
  }
  // ... and never spawns a thread: tile collection fans out over the
  // persistent pool's existing workers, so past warmup the spawn
  // counter must be flat across the whole hot + viewport load.
  const svc::ServiceStats poolStats = service.stats();
  if (poolStats.poolThreadsSpawned != poolSpawnsWarm) {
    std::fprintf(stderr,
                 "FATAL: warm serving spawned %llu thread(s) (pool should be warm)\n",
                 static_cast<unsigned long long>(poolStats.poolThreadsSpawned -
                                                 poolSpawnsWarm));
    std::abort();
  }

  // -- mixed steady state: 10% cold / 60% hot / 30% viewport --------------
  svc::CompileService mixedService(sopts);
  const svc::CacheStats before = mixedService.cache().stats();
  (void)before;
  const double mixedS = timeIt([&] {
    drive(nMixed, [&](std::size_t i) {
      // Derived from the request index alone: deterministic and race-free
      // across the client threads.
      const std::uint64_t h = i * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t roll = (h >> 33) % 10;
      const std::size_t d = (h >> 13) % nDesigns;
      if (roll < 1) {  // cold-ish: a design outside the hot set
        const svc::CompileResponse r = mixedService.compile(
            svc::CompileRequest::ofDesc(designAt(nDesigns + i % (2 * nDesigns))));
        return seconds(r.latency);
      }
      if (roll < 7) {  // hot
        const svc::CompileResponse r =
            mixedService.compile(svc::CompileRequest::ofDesc(designAt(d)));
        return seconds(r.latency);
      }
      svc::ViewportRequest vp;  // viewport over a hot design
      vp.chip = svc::CompileRequest::ofDesc(designAt(d));
      vp.tileSize = geom::lambda(256);
      const svc::EmitResponse r = mixedService.viewport(vp);
      return seconds(r.latency);
    });
  });
  bench::BenchJson::instance().recordRun("svc_mixed_requests",
                                         static_cast<long long>(nMixed), mixedS);
  const double hitPct = mixedService.cache().stats().hitRate() * 100.0;
  bench::BenchJson::instance().record("svc_mixed_hit_rate_pct",
                                      static_cast<long long>(nMixed), mixedS * 1e9,
                                      hitPct);

  std::printf("%10s %10s %14s %14s\n", "phase", "requests", "req_per_sec", "mean_ms");
  std::printf("%10s %10zu %14.1f %14.3f\n", "cold", nDesigns,
              static_cast<double>(nDesigns) / coldS, coldMeanS * 1e3);
  std::printf("%10s %10zu %14.1f %14.3f\n", "hot", nHot,
              static_cast<double>(nHot) / hotS, hotMeanS * 1e3);
  std::printf("%10s %10zu %14.1f\n", "viewport", nViewport,
              static_cast<double>(nViewport) / vpS);
  std::printf("%10s %10zu %14.1f   (cache hit rate %.0f%%)\n", "mixed", nMixed,
              static_cast<double>(nMixed) / mixedS, hitPct);
  std::printf("(warm speedup %.0fx over cold; viewports ran 0 compile stages)\n",
              coldMeanS / (hotMeanS > 0 ? hotMeanS : 1e-9));
  std::printf("(pool: %llu tasks executed, %llu threads spawned, 0 spawns during "
              "warm serving)\n\n",
              static_cast<unsigned long long>(poolStats.poolTasksExecuted),
              static_cast<unsigned long long>(poolStats.poolThreadsSpawned));
}

void BM_ServiceHotCompile(benchmark::State& state) {
  svc::CompileService service;
  const auto req = svc::CompileRequest::ofDesc(core::samples::smallChip(4));
  if (!service.compile(req).ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.compile(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceHotCompile);

void BM_ServiceViewport(benchmark::State& state) {
  svc::CompileService service;
  const auto req = svc::CompileRequest::ofDesc(core::samples::largeChip(16, 8));
  const svc::CompileResponse whole = service.compile(req);
  if (!whole.ok()) std::abort();
  const geom::Rect art = whole.chip->flatTop().bbox();
  svc::ViewportRequest vp;
  vp.chip = req;
  vp.window = geom::Rect{art.x0, art.y0, art.x0 + art.width() / 4,
                         art.y0 + art.height() / 4};
  vp.tileSize = geom::lambda(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.viewport(vp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceViewport)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
