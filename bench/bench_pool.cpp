/// POOL — scheduling overhead of the persistent thread pool against the
/// spawn-per-call scheduler it replaced: many small parallel loops, the
/// compile service's hot-path shape, where thread-creation cost used to
/// dominate the actual work. Also times a nested fan-out (parallelFor
/// inside parallelFor), the batch x DRC shape that now shares one
/// budget instead of multiplying threads.
///
/// The gate: per-call overhead through the warm pool must be at least
/// 5x lower than spawn-per-call (skipped on single-core boxes, where
/// neither scheduler goes parallel). Rows land in BENCH.json as
/// `pool_spawn_call` / `pool_persistent_call` / `pool_nested`.
///
/// Env knobs: BB_BENCH_SMOKE=1 shrinks call counts for CI (and skips
/// the google-benchmark timings).

#include "bench_util.hpp"

#include "core/pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

using namespace bb;

namespace {

constexpr std::size_t kJobsPerCall = 64;
constexpr std::size_t kGrain = 8;
constexpr unsigned kWidth = 4;

/// The pre-pool scheduler, verbatim shape: spawn fresh threads, pull
/// jobs off a shared cursor, join. Kept here as the bench's reference.
template <typename Fn>
void spawnWorkQueue(std::size_t jobs, unsigned threads, Fn&& fn) {
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      fn(i);
    }
  };
  const auto n = static_cast<unsigned>(
      std::min<std::size_t>(threads != 0 ? threads : 1, jobs));
  std::vector<std::thread> workers;
  for (unsigned t = 1; t < n; ++t) workers.emplace_back(worker);
  worker();
  for (std::thread& t : workers) t.join();
}

/// One tiny parallel loop; returns its checksum so the work is real.
template <typename Sched>
std::uint64_t oneCall(Sched&& sched) {
  std::atomic<std::uint64_t> sum{0};
  sched([&](std::size_t i) { sum.fetch_add(i + 1, std::memory_order_relaxed); });
  return sum.load();
}

constexpr std::uint64_t kCallChecksum = kJobsPerCall * (kJobsPerCall + 1) / 2;

double timeCalls(std::size_t calls, const std::function<std::uint64_t()>& call) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < calls; ++c) {
    if (call() != kCallChecksum) std::abort();  // a scheduler lost jobs
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void printTable(bool smoke) {
  const std::size_t calls = smoke ? 50 : 2000;
  core::ThreadPool& pool = core::ThreadPool::global();

  const auto spawnCall = [] {
    return oneCall([](auto&& fn) { spawnWorkQueue(kJobsPerCall, kWidth, fn); });
  };
  const auto poolCall = [&pool] {
    return oneCall([&pool](auto&& fn) {
      pool.parallelFor(kJobsPerCall, kGrain, fn, kWidth);
    });
  };

  (void)poolCall();  // warm the pool: spawn the workers outside the timing
  const double tSpawn = timeCalls(calls, spawnCall);
  const double tPool = timeCalls(calls, poolCall);
  const double nsSpawn = tSpawn * 1e9 / static_cast<double>(calls);
  const double nsPool = tPool * 1e9 / static_cast<double>(calls);

  // Nested fan-out: an outer loop whose every job runs an inner loop on
  // the same pool — the pipelined-batch x DRC shape.
  constexpr std::size_t kOuter = 8;
  const auto nestedCall = [&pool] {
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(kOuter, 1, [&](std::size_t) {
      pool.parallelFor(kJobsPerCall, kGrain, [&](std::size_t i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      });
    });
    return sum.load();
  };
  const std::size_t nestedCalls = std::max<std::size_t>(calls / 8, 1);
  const auto tn0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < nestedCalls; ++c) {
    if (nestedCall() != kOuter * kCallChecksum) std::abort();
  }
  const double tNested =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - tn0).count();

  std::printf("== POOL: per-call overhead, %zu-job loops, width %u ==\n",
              kJobsPerCall, kWidth);
  std::printf("%-28s %12s %14s\n", "scheduler", "ns/call", "calls/sec");
  std::printf("%-28s %12.0f %14.0f\n", "spawn per call", nsSpawn,
              static_cast<double>(calls) / tSpawn);
  std::printf("%-28s %12.0f %14.0f\n", "persistent pool", nsPool,
              static_cast<double>(calls) / tPool);
  std::printf("%-28s %12.0f %14.0f\n", "pool, nested 8x fan-out",
              tNested * 1e9 / static_cast<double>(nestedCalls),
              static_cast<double>(nestedCalls) / tNested);
  std::printf("(pool overhead %.1fx lower than spawn; threads spawned: %llu, "
              "hardware concurrency: %u)\n\n",
              nsSpawn / nsPool,
              static_cast<unsigned long long>(pool.threadsSpawned()),
              std::thread::hardware_concurrency());

  bench::BenchJson::instance().recordRun("pool_spawn_call",
                                         static_cast<long long>(calls), tSpawn);
  bench::BenchJson::instance().recordRun("pool_persistent_call",
                                         static_cast<long long>(calls), tPool);
  bench::BenchJson::instance().recordRun(
      "pool_nested", static_cast<long long>(nestedCalls), tNested);

  // The acceptance gate. On a single-core box neither scheduler goes
  // parallel (the pool degenerates to an inline loop), so the ratio is
  // meaningless there and the gate is skipped.
  if (std::thread::hardware_concurrency() >= 2 && nsPool * 5.0 > nsSpawn) {
    std::fprintf(stderr,
                 "FATAL: pool per-call overhead (%.0f ns) not >=5x lower than "
                 "spawn-per-call (%.0f ns)\n",
                 nsPool, nsSpawn);
    std::exit(1);
  }
}

void BM_SpawnPerCall(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oneCall([](auto&& fn) { spawnWorkQueue(kJobsPerCall, kWidth, fn); }));
  }
}
BENCHMARK(BM_SpawnPerCall)->Unit(benchmark::kMicrosecond);

void BM_PersistentPoolCall(benchmark::State& state) {
  core::ThreadPool& pool = core::ThreadPool::global();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oneCall([&pool](auto&& fn) {
      pool.parallelFor(kJobsPerCall, kGrain, fn, kWidth);
    }));
  }
}
BENCHMARK(BM_PersistentPoolCall)->Unit(benchmark::kMicrosecond);

void BM_PoolNestedFanOut(benchmark::State& state) {
  core::ThreadPool& pool = core::ThreadPool::global();
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(8, 1, [&](std::size_t) {
      pool.parallelFor(kJobsPerCall, kGrain, [&](std::size_t i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      });
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_PoolNestedFanOut)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
