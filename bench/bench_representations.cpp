/// PCT80 — the paper's completeness statement: "Given a high level
/// description of the chip and definitions for core elements, the system
/// produces a complete layout, sticks diagram, transistor diagram, logic
/// diagram, and block diagram" (5 of the 7 representations in 1979; the
/// simulator and text manual were hooks). This implementation completes
/// all seven; the bench verifies and times them.

#include "bench_util.hpp"

#include "reps/reps.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== PCT80: representations produced per chip (paper: 5 of 7 in 1979) ==\n");
  auto chip = bench::compile(core::samples::smallChip(8));
  const reps::RepresentationSet rs = reps::generateAll(*chip);
  std::printf("%-14s %10s %12s\n", "representation", "produced", "bytes");
  std::printf("%-14s %10s %12zu\n", "layout(CIF)", rs.cif.empty() ? "NO" : "yes",
              rs.cif.size());
  std::printf("%-14s %10s %12zu\n", "layout(GDS)", rs.gds.empty() ? "NO" : "yes",
              rs.gds.size());
  std::printf("%-14s %10s %12zu\n", "sticks", rs.sticksText.empty() ? "NO" : "yes",
              rs.sticksSvg.size());
  std::printf("%-14s %10s %12zu\n", "transistors", rs.transistorText.empty() ? "NO" : "yes",
              rs.transistorText.size());
  std::printf("%-14s %10s %12zu\n", "logic", rs.logicText.empty() ? "NO" : "yes",
              rs.logicText.size());
  std::printf("%-14s %10s %12zu\n", "text", rs.userManual.empty() ? "NO" : "yes",
              rs.userManual.size());
  std::printf("%-14s %10s %12zu\n", "simulation", rs.simulationText.empty() ? "NO" : "yes",
              rs.simulationText.size());
  std::printf("%-14s %10s %12zu\n", "block", rs.blockText.empty() ? "NO" : "yes",
              rs.blockText.size());
  std::printf("populated: %d/7 (1979 system: 5/7 at ~80%% implementation)\n\n",
              rs.populatedCount());
}

void BM_GenerateAllReps(benchmark::State& state) {
  auto chip = bench::compile(core::samples::smallChip(8));
  for (auto _ : state) {
    const reps::RepresentationSet rs = reps::generateAll(*chip);
    benchmark::DoNotOptimize(rs.populatedCount());
  }
}
BENCHMARK(BM_GenerateAllReps);

void BM_CifOnly(benchmark::State& state) {
  auto chip = bench::compile(core::samples::smallChip(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reps::generateText(*chip, reps::Representation::Layout).size());
  }
}
BENCHMARK(BM_CifOnly);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
