/// ABL-CONDASM — the paper's conditional assembly example: "when
/// designing prototype chips, the internal state of a state machine may
/// need to be routed to pads, but when production chips are produced,
/// the area of the pad and wires may need to be reclaimed."

#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== ABL-CONDASM: PROTOTYPE flag reclaims pads and area ==\n");
  core::CompileOptions protoOpts;
  protoOpts.vars["PROTOTYPE"] = true;
  auto proto = bench::compile(core::samples::prototypeChip(), protoOpts);
  core::CompileOptions prodOpts;
  prodOpts.vars["PROTOTYPE"] = false;
  auto prod = bench::compile(core::samples::prototypeChip(), prodOpts);

  std::printf("%-14s %8s %12s %14s %12s\n", "variant", "pads", "wire L", "die L^2",
              "controls");
  std::printf("%-14s %8zu %12.0f %14.0f %12zu\n", "PROTOTYPE", proto->stats.padCount,
              bench::lambdaLen(proto->stats.padWireLength),
              bench::lambda2(proto->stats.dieArea), proto->controls.size());
  std::printf("%-14s %8zu %12.0f %14.0f %12zu\n", "production", prod->stats.padCount,
              bench::lambdaLen(prod->stats.padWireLength),
              bench::lambda2(prod->stats.dieArea), prod->controls.size());
  std::printf("reclaimed: %zu pads, %.0f L^2 of die (%.1f%%)\n\n",
              proto->stats.padCount - prod->stats.padCount,
              bench::lambda2(proto->stats.dieArea - prod->stats.dieArea),
              (1.0 - static_cast<double>(prod->stats.dieArea) /
                         static_cast<double>(proto->stats.dieArea)) *
                  100.0);
}

void BM_CompileProto(benchmark::State& state) {
  core::CompileOptions opts;
  opts.vars["PROTOTYPE"] = state.range(0) != 0;
  const icl::ChipDesc desc = core::samples::prototypeChip();
  for (auto _ : state) {
    auto chip = bench::compile(desc, opts);
    benchmark::DoNotOptimize(chip->stats.padCount);
  }
}
BENCHMARK(BM_CompileProto)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
