/// FIG2 — Figure 2, "Logical Chip Format": two buses running through the
/// core elements (stopping where told, with compiler-inserted precharge),
/// control buffers latching decoder outputs per clock phase. This bench
/// reports the logical-format statistics across configurations.

#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== FIG2: logical chip format ==\n");
  std::printf("%-12s %8s %8s %10s %10s %10s %10s\n", "chip", "segsA", "segsB",
              "precharge", "controls", "phi1-ctl", "phi2-ctl");
  struct Row {
    const char* name;
    bb::icl::ChipDesc desc;
  };
  const Row rows[] = {
      {"small8", core::samples::smallChip(8)},
      {"segmented8", core::samples::segmentedChip(8)},
      {"large16", core::samples::largeChip(16, 8)},
  };
  for (const Row& r : rows) {
    auto chip = bench::compile(r.desc);
    std::size_t p1 = 0, p2 = 0;
    for (const auto& cl : chip->controls) {
      (cl.phase == 1 ? p1 : p2) += 1;
    }
    std::printf("%-12s %8zu %8zu %10zu %10zu %10zu %10zu\n", r.name,
                chip->stats.busSegments[0], chip->stats.busSegments[1],
                chip->stats.prechargeColumns, chip->controls.size(), p1, p2);
  }
  std::printf("microcode enters the decoder once per phase (phi1 + phi2 qualified\n");
  std::printf("control sets) — both phases present in every chip above.\n\n");
}

void BM_CompileSegmented(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::segmentedChip(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    benchmark::DoNotOptimize(chip->stats.busSegments[1]);
  }
}
BENCHMARK(BM_CompileSegmented)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
