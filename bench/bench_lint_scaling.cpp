/// LINT-SCALING — `bb::lint` ERC over a synthetic transistor array swept
/// from 1k to 100k rects (the extract-scaling generator: diffusion strip,
/// poly gate, metal strap, contact cut per device). Every size runs the
/// rule set serially and fanned out over the shared pool; the reports
/// must be byte-identical or the bench aborts — the determinism contract
/// measured, not just asserted in unit tests.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings).

#include "bench_util.hpp"

#include "cell/flatten.hpp"
#include "lint/lint.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bb;

namespace {

using geom::Coord;
using geom::lambda;
using geom::Rect;
using tech::Layer;

/// ~n rects of isolated transistors on a 12L-pitch grid (same fabric as
/// bench_extract_scaling, so the two benches measure the same artwork).
cell::FlatLayout makeFlat(std::size_t n) {
  cell::FlatLayout flat;
  const std::size_t units = std::max<std::size_t>(n / 4, 1);
  auto& diff = flat.on(Layer::Diffusion);
  auto& poly = flat.on(Layer::Poly);
  auto& metal = flat.on(Layer::Metal);
  auto& cuts = flat.on(Layer::Contact);
  diff.reserve(units);
  poly.reserve(units);
  metal.reserve(units);
  cuts.reserve(units);
  const Coord pitch = lambda(12);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(units))));
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < units; ++j) {
    for (std::size_t i = 0; i < k && placed < units; ++i, ++placed) {
      const Coord x = static_cast<Coord>(i) * pitch;
      const Coord y = static_cast<Coord>(j) * pitch;
      diff.emplace_back(x + lambda(2), y, x + lambda(4), y + lambda(10));
      poly.emplace_back(x, y + lambda(4), x + lambda(6), y + lambda(6));
      metal.emplace_back(x + lambda(1), y + lambda(8), x + lambda(5), y + lambda(10));
      cuts.emplace_back(x + lambda(2), y + lambda(8), x + lambda(4), y + lambda(10));
    }
  }
  return flat;
}

struct Run {
  double seconds = 0;
  std::size_t findings = 0;
  std::string json;
};

Run runLint(const cell::FlatLayout& flat, unsigned threads) {
  lint::LintOptions opts;
  opts.minSeverity = icl::Severity::Note;  // every rule's output in the report
  opts.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const lint::LintReport rep = lint::lintFlat("bench", flat, {}, std::nullopt, opts);
  Run run;
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.findings = rep.findings.size();
  run.json = rep.toJson();
  return run;
}

void printTable(bool smoke) {
  const std::vector<std::size_t> sizes = smoke
                                             ? std::vector<std::size_t>{1000, 5000}
                                             : std::vector<std::size_t>{1000, 5000, 20000,
                                                                        50000, 100000};
  std::printf("== LINT-SCALING: ERC rule fan-out, serial vs pooled ==\n");
  std::printf("%8s %12s %12s %10s %10s\n", "rects", "serial_ms", "parallel_ms", "speedup",
              "findings");
  for (const std::size_t n : sizes) {
    const cell::FlatLayout flat = makeFlat(n);
    const Run serial = runLint(flat, 1);
    const Run parallel = runLint(flat, 0);
    bench::BenchJson::instance().recordRun("lint_serial", static_cast<long long>(n),
                                           serial.seconds);
    bench::BenchJson::instance().recordRun("lint_parallel", static_cast<long long>(n),
                                           parallel.seconds);
    if (serial.json != parallel.json) {
      std::fprintf(stderr, "FATAL: parallel lint report diverged from serial at n=%zu\n", n);
      std::abort();
    }
    std::printf("%8zu %12.2f %12.2f %9.1fx %10zu\n", n, serial.seconds * 1e3,
                parallel.seconds * 1e3, serial.seconds / parallel.seconds, serial.findings);
  }
  std::printf("(reports byte-identical at every size and width)\n\n");
}

void BM_LintSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cell::FlatLayout flat = makeFlat(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runLint(flat, 1).findings);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LintSerial)->RangeMultiplier(4)->Range(1024, 65536)->Unit(benchmark::kMillisecond);

void BM_LintParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cell::FlatLayout flat = makeFlat(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runLint(flat, 0).findings);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LintParallel)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
