/// BATCH — throughput of the concurrent BatchCompiler: chips/sec at
/// 1/4/8 worker threads against a sequential CompileSession loop over
/// the same job mix, for both frontends: ICL source (every job parses)
/// and pre-built `icl::ChipDesc` jobs (the parse stage is skipped, the
/// ChipBuilder/typed path). The pipeline shares nothing mutable between
/// sessions, so the batch should scale with cores until memory
/// bandwidth takes over (on a single-core box the table degenerates to
/// "no speedup", which is itself the interesting datum).
///
/// A second table runs the *mixed-size* workload (many small chips plus
/// a few large ones, every job DRC-checked) through the pipelined
/// scheduler against the whole-job reference. The interesting number is
/// the p99 of per-job sojourn time (`BatchResult::finishedAfter`):
/// whole-job scheduling lets small chips queue behind stragglers, while
/// the pipelined scheduler interleaves stages and fans the last big
/// chips' DRC out over the idle tail.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the job mix for CI (and skips the
/// google-benchmark timings). Perf rows land in BENCH.json as
/// `batch_src_t{N}` / `batch_desc_t{N}` plus `batch_mixed_t{N}` /
/// `batch_mixed_p99_t{N}` / `batch_mixed_whole_p99_t{N}`.

#include "bench_util.hpp"

#include "core/batch.hpp"
#include "tech/rules.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace bb;

namespace {

std::vector<icl::ChipDesc> descMix(int copies) {
  std::vector<icl::ChipDesc> descs;
  for (int i = 0; i < copies; ++i) {
    descs.push_back(core::samples::smallChip(4));
    descs.push_back(core::samples::smallChip(8));
    descs.push_back(core::samples::segmentedChip(8));
    descs.push_back(core::samples::largeChip(16, 8));
  }
  return descs;
}

std::vector<std::string> sourcesOf(const std::vector<icl::ChipDesc>& descs) {
  std::vector<std::string> sources;
  sources.reserve(descs.size());
  for (const icl::ChipDesc& d : descs) sources.push_back(d.toString());
  return sources;
}

double sequentialSeconds(const std::vector<std::string>& sources) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& src : sources) {
    auto result = core::CompileSession(src).run();
    if (!result) std::abort();
    benchmark::DoNotOptimize(result->get()->stats.dieArea);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

template <typename Jobs>
double batchSeconds(const Jobs& jobs, unsigned threads) {
  const core::BatchCompiler batch({}, threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = batch.compileAll(jobs);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const core::BatchResult& r : results) {
    if (!r.ok()) std::abort();
  }
  return s;
}

void printTable(bool smoke) {
  const std::vector<icl::ChipDesc> descs = descMix(smoke ? 2 : 6);
  const std::vector<std::string> sources = sourcesOf(descs);
  const auto jobs = static_cast<long long>(descs.size());
  const double n = static_cast<double>(jobs);

  std::printf("== BATCH: chips/sec through the staged pipeline (%lld jobs) ==\n", jobs);
  std::printf("%-28s %10s %12s %10s\n", "configuration", "seconds", "chips/sec",
              "speedup");
  const double tSeq = sequentialSeconds(sources);
  std::printf("%-28s %10.3f %12.1f %9.2fx\n", "sequential session", tSeq, n / tSeq, 1.0);
  for (const unsigned threads : {1u, 4u, 8u}) {
    // Source jobs: every worker parses its chip before compiling.
    const double tSrc = batchSeconds(sources, threads);
    std::printf("batch src,  %2u thread%s      %10.3f %12.1f %9.2fx\n", threads,
                threads == 1 ? " " : "s", tSrc, n / tSrc, tSeq / tSrc);
    bench::BenchJson::instance().recordRun("batch_src_t" + std::to_string(threads),
                                           jobs, tSrc);
    // Pre-built descriptions: the parse stage is skipped entirely.
    const double tDesc = batchSeconds(descs, threads);
    std::printf("batch desc, %2u thread%s      %10.3f %12.1f %9.2fx\n", threads,
                threads == 1 ? " " : "s", tDesc, n / tDesc, tSeq / tDesc);
    bench::BenchJson::instance().recordRun("batch_desc_t" + std::to_string(threads),
                                           jobs, tDesc);
  }
  std::printf("(hardware concurrency: %u)\n\n", std::thread::hardware_concurrency());
}

/// The tail-latency workload: mostly small chips with a few big ones
/// mixed in, every job DRC-checked against the shared Mead-Conway deck.
std::vector<icl::ChipDesc> mixedMix(int copies) {
  std::vector<icl::ChipDesc> descs;
  for (int i = 0; i < copies; ++i) {
    for (int w : {2, 4, 6, 8}) descs.push_back(core::samples::smallChip(w));
    descs.push_back(core::samples::segmentedChip(8));
    descs.push_back(core::samples::largeChip(16, 8));
  }
  return descs;
}

double p99Seconds(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::size_t idx = (xs.size() * 99) / 100;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

struct MixedRun {
  double totalSeconds = 0;
  double p99 = 0;  ///< p99 of per-job sojourn (finishedAfter), seconds
};

MixedRun runMixed(const std::vector<icl::ChipDesc>& descs, unsigned threads,
                  core::BatchCompiler::Mode mode) {
  core::BatchCompiler batch({}, threads, mode);
  drc::DrcOptions dopts;
  if (mode == core::BatchCompiler::Mode::WholeJob) {
    dopts.threads = 1;  // the pre-pool reference: serial DRC per job
  }
  batch.withDrc(tech::meadConwayRules(), dopts);

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = batch.compileAll(descs);
  MixedRun run;
  run.totalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::vector<double> sojourns;
  sojourns.reserve(results.size());
  for (const core::BatchResult& r : results) {
    if (!r.ok() || !r.drc.has_value()) std::abort();
    sojourns.push_back(std::chrono::duration<double>(r.finishedAfter).count());
  }
  run.p99 = p99Seconds(std::move(sojourns));
  return run;
}

void printMixedTable(bool smoke) {
  const std::vector<icl::ChipDesc> descs = mixedMix(smoke ? 1 : 4);
  const auto jobs = static_cast<long long>(descs.size());

  std::printf("== BATCH MIXED: small+large jobs with DRC, sojourn p99 (%lld jobs) ==\n",
              jobs);
  std::printf("%-30s %10s %12s %12s\n", "configuration", "seconds", "p99 ms",
              "p99 gain");
  for (const unsigned threads : {4u, 8u}) {
    const MixedRun whole =
        runMixed(descs, threads, core::BatchCompiler::Mode::WholeJob);
    const MixedRun piped =
        runMixed(descs, threads, core::BatchCompiler::Mode::Pipelined);
    std::printf("whole-job,  %2u lanes          %10.3f %12.2f %11s\n", threads,
                whole.totalSeconds, whole.p99 * 1e3, "--");
    std::printf("pipelined,  %2u lanes          %10.3f %12.2f %11.2fx\n", threads,
                piped.totalSeconds, piped.p99 * 1e3, whole.p99 / piped.p99);
    bench::BenchJson::instance().recordRun("batch_mixed_t" + std::to_string(threads),
                                           jobs, piped.totalSeconds);
    // p99 rows: one "op" is one job's p99 sojourn; throughput is not
    // meaningful for a percentile, so items_per_sec is recorded as 0.
    bench::BenchJson::instance().record(
        "batch_mixed_p99_t" + std::to_string(threads), jobs, piped.p99 * 1e9, 0);
    bench::BenchJson::instance().record(
        "batch_mixed_whole_p99_t" + std::to_string(threads), jobs, whole.p99 * 1e9, 0);
  }
  std::printf("(whole-job runs DRC serially per job; pipelined fans the tail "
              "stragglers' rule units out over idle workers)\n\n");
}

void BM_SequentialCompile(benchmark::State& state) {
  const std::vector<std::string> sources = sourcesOf(descMix(1));
  for (auto _ : state) {
    for (const std::string& src : sources) {
      auto result = core::CompileSession(src).run();
      benchmark::DoNotOptimize(result.hasValue());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources.size()));
}
BENCHMARK(BM_SequentialCompile)->Unit(benchmark::kMillisecond);

void BM_BatchCompile(benchmark::State& state) {
  const std::vector<std::string> sources = sourcesOf(descMix(1));
  const core::BatchCompiler batch({}, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto results = batch.compileAll(sources);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources.size()));
}
BENCHMARK(BM_BatchCompile)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_BatchCompileDesc(benchmark::State& state) {
  const std::vector<icl::ChipDesc> descs = descMix(1);
  const core::BatchCompiler batch({}, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto results = batch.compileAll(descs);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(descs.size()));
}
BENCHMARK(BM_BatchCompileDesc)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  printMixedTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
