/// BATCH — throughput of the concurrent BatchCompiler: chips/sec at
/// 1/4/8 worker threads against a sequential CompileSession loop over
/// the same job mix. The pipeline shares nothing mutable between
/// sessions, so the batch should scale with cores until memory
/// bandwidth takes over (on a single-core box the table degenerates to
/// "no speedup", which is itself the interesting datum).

#include "bench_util.hpp"

#include "core/batch.hpp"

#include <chrono>
#include <thread>
#include <vector>

using namespace bb;

namespace {

std::vector<std::string> jobMix(int copies) {
  std::vector<std::string> sources;
  for (int i = 0; i < copies; ++i) {
    sources.push_back(core::samples::smallChip(4));
    sources.push_back(core::samples::smallChip(8));
    sources.push_back(core::samples::segmentedChip(8));
    sources.push_back(core::samples::largeChip(16, 8));
  }
  return sources;
}

double sequentialSeconds(const std::vector<std::string>& sources) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& src : sources) {
    auto result = core::CompileSession(src).run();
    if (!result) std::abort();
    benchmark::DoNotOptimize(result->get()->stats.dieArea);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double batchSeconds(const std::vector<std::string>& sources, unsigned threads) {
  const core::BatchCompiler batch({}, threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = batch.compileAll(sources);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const core::BatchResult& r : results) {
    if (!r.ok()) std::abort();
  }
  return s;
}

void printTable() {
  const std::vector<std::string> sources = jobMix(6);
  const double n = static_cast<double>(sources.size());

  std::printf("== BATCH: chips/sec through the staged pipeline (%zu jobs) ==\n",
              sources.size());
  std::printf("%-24s %10s %12s %10s\n", "configuration", "seconds", "chips/sec",
              "speedup");
  const double tSeq = sequentialSeconds(sources);
  std::printf("%-24s %10.3f %12.1f %9.2fx\n", "sequential session", tSeq, n / tSeq, 1.0);
  for (const unsigned threads : {1u, 4u, 8u}) {
    const double t = batchSeconds(sources, threads);
    std::printf("batch, %2u thread%s       %10.3f %12.1f %9.2fx\n", threads,
                threads == 1 ? " " : "s", t, n / t, tSeq / t);
  }
  std::printf("(hardware concurrency: %u)\n\n", std::thread::hardware_concurrency());
}

void BM_SequentialCompile(benchmark::State& state) {
  const std::vector<std::string> sources = jobMix(1);
  for (auto _ : state) {
    for (const std::string& src : sources) {
      auto result = core::CompileSession(src).run();
      benchmark::DoNotOptimize(result.hasValue());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources.size()));
}
BENCHMARK(BM_SequentialCompile)->Unit(benchmark::kMillisecond);

void BM_BatchCompile(benchmark::State& state) {
  const std::vector<std::string> sources = jobMix(1);
  const core::BatchCompiler batch({}, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto results = batch.compileAll(sources);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources.size()));
}
BENCHMARK(BM_BatchCompile)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
