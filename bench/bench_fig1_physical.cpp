/// FIG1 — Figure 1, "Physical Chip Format": a central core controlled by
/// an instruction decoder, both surrounded by pads. This bench compiles a
/// sweep of chips and reports the physical decomposition (core, decoder,
/// pad ring), verifying the format holds at every size.

#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== FIG1: physical chip format (areas in lambda^2) ==\n");
  std::printf("%-10s %6s %8s %12s %12s %12s %12s %6s\n", "chip", "bits", "elems",
              "core", "decoder", "pad ring", "die", "pads");
  struct Row {
    const char* name;
    bb::icl::ChipDesc desc;
  };
  const Row rows[] = {
      {"small4", core::samples::smallChip(4)},
      {"small8", core::samples::smallChip(8)},
      {"small16", core::samples::smallChip(16)},
      {"large8", core::samples::largeChip(8, 4)},
      {"large16", core::samples::largeChip(16, 8)},
  };
  for (const Row& r : rows) {
    auto chip = bench::compile(r.desc);
    std::printf("%-10s %6d %8zu %12.0f %12.0f %12.0f %12.0f %6zu\n", r.name,
                chip->desc.dataWidth, chip->placed.size(),
                bench::lambda2(chip->stats.coreArea), bench::lambda2(chip->stats.decoderArea),
                bench::lambda2(chip->stats.padRingArea), bench::lambda2(chip->stats.dieArea),
                chip->stats.padCount);
    // The format invariants of Figure 1.
    if (chip->stats.decoderArea <= 0 || chip->stats.padCount == 0) {
      std::printf("  !! physical format violated\n");
    }
  }
  std::printf("shape check: core+decoder surrounded by pads on all four sides; decoder\n");
  std::printf("abuts the core through the control buffer row (see test_pass3).\n\n");
}

void BM_AssembleSmall(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::smallChip(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    benchmark::DoNotOptimize(chip->stats.dieArea);
  }
}
BENCHMARK(BM_AssembleSmall)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
