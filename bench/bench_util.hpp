/// Shared helpers for the experiment benches. Every bench prints the
/// paper-artifact table first (the rows EXPERIMENTS.md records), then
/// runs its google-benchmark timings.

#pragma once

#include "core/samples.hpp"
#include "core/session.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace bb::bench {

/// Machine-readable perf records. Benches `record()` one row per
/// (configuration, problem size) and `write()` a JSON array to
/// BENCH.json; an existing file is merged into, so several benches run
/// back-to-back (the CI perf-smoke job) build one combined file and the
/// perf trajectory is recorded rather than scrolled away.
///
/// Row shape: {"name": ..., "n": ..., "ns_per_op": ..., "items_per_sec": ...}
/// where items are whatever the bench processes (chips, rects, ...).
class BenchJson {
 public:
  static BenchJson& instance() {
    static BenchJson inst;
    return inst;
  }

  void record(std::string name, long long n, double nsPerOp, double itemsPerSec) {
    rows_.push_back({std::move(name), n, nsPerOp, itemsPerSec});
  }

  /// Names are bench-internal identifiers ([a-z0-9_]), not user text, so
  /// no JSON string escaping is needed.
  void write(const std::string& path = "BENCH.json") const {
    std::string existing;
    {
      std::ifstream in(path);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        existing = ss.str();
      }
    }
    // Merge with a previous array: strip its closing bracket and append.
    const auto close = existing.rfind(']');
    std::ofstream out(path, std::ios::trunc);
    bool first = true;
    if (close != std::string::npos && existing.find('[') != std::string::npos) {
      out << existing.substr(0, close);
      first = existing.find('{') == std::string::npos;  // was it empty?
    } else {
      out << "[\n";
    }
    for (const Row& r : rows_) {
      if (!first) out << ",\n";
      first = false;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  {\"name\": \"%s\", \"n\": %lld, \"ns_per_op\": %.1f, "
                    "\"items_per_sec\": %.1f}",
                    r.name.c_str(), r.n, r.nsPerOp, r.itemsPerSec);
      out << buf;
    }
    out << "\n]\n";
  }

 private:
  struct Row {
    std::string name;
    long long n;
    double nsPerOp;
    double itemsPerSec;
  };
  std::vector<Row> rows_;
};

inline std::unique_ptr<core::CompiledChip> compile(const std::string& src,
                                                   core::CompileOptions opts = {}) {
  auto result = core::compileChip(src, std::move(opts));
  if (!result) {
    std::fprintf(stderr, "bench compile failed:\n%s\n",
                 result.diagnostics().toString().c_str());
    std::abort();
  }
  return std::move(*result);
}

inline double lambda2(geom::Coord area) {
  return static_cast<double>(area) /
         (geom::kUnitsPerLambda * geom::kUnitsPerLambda);
}

inline double lambdaLen(geom::Coord len) {
  return static_cast<double>(len) / geom::kUnitsPerLambda;
}

}  // namespace bb::bench
