/// Shared helpers for the experiment benches. Every bench prints the
/// paper-artifact table first (the rows EXPERIMENTS.md records), then
/// runs its google-benchmark timings.

#pragma once

#include "core/samples.hpp"
#include "core/session.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

namespace bb::bench {

inline std::unique_ptr<core::CompiledChip> compile(const std::string& src,
                                                   core::CompileOptions opts = {}) {
  auto result = core::compileChip(src, std::move(opts));
  if (!result) {
    std::fprintf(stderr, "bench compile failed:\n%s\n",
                 result.diagnostics().toString().c_str());
    std::abort();
  }
  return std::move(*result);
}

inline double lambda2(geom::Coord area) {
  return static_cast<double>(area) /
         (geom::kUnitsPerLambda * geom::kUnitsPerLambda);
}

inline double lambdaLen(geom::Coord len) {
  return static_cast<double>(len) / geom::kUnitsPerLambda;
}

}  // namespace bb::bench
