/// Shared helpers for the experiment benches. Every bench prints the
/// paper-artifact table first (the rows EXPERIMENTS.md records), then
/// runs its google-benchmark timings.

#pragma once

#include "core/samples.hpp"
#include "core/session.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace bb::bench {

/// Machine-readable perf records. Benches `record()` one row per
/// (configuration, problem size) and `write()` a JSON array to
/// BENCH.json; an existing file is merged into, so several benches run
/// back-to-back (the CI perf-smoke job) build one combined file and the
/// perf trajectory is recorded rather than scrolled away.
///
/// Row shape: {"name": ..., "n": ..., "ns_per_op": ..., "items_per_sec": ...,
/// "timestamp": ISO-8601 UTC write time, "commit": the BB_BENCH_COMMIT
/// environment value (CI sets it to the commit SHA; omitted when unset)}
/// where items are whatever the bench processes (chips, rects, ...).
/// The trajectory file thus records *when* and *at which commit* each
/// row was measured; rows from older writers lack the two fields, which
/// the checker accepts.
class BenchJson {
 public:
  static BenchJson& instance() {
    static BenchJson inst;
    return inst;
  }

  /// Non-finite rates (a sub-resolution timing divides by zero) are
  /// clamped to 0 so the file always stays parseable JSON — "inf"/"nan"
  /// are not JSON tokens and one such row used to poison the whole
  /// trajectory.
  void record(std::string name, long long n, double nsPerOp, double itemsPerSec) {
    if (!std::isfinite(nsPerOp) || nsPerOp < 0) nsPerOp = 0;
    if (!std::isfinite(itemsPerSec) || itemsPerSec < 0) itemsPerSec = 0;
    rows_.push_back({std::move(name), n, nsPerOp, itemsPerSec});
  }

  /// Record one timed run of `n` items: one "op" is the whole run (one
  /// engine invocation over n items), so ns_per_op is the run's wall
  /// time and items_per_sec is n over it — the shape every scaling
  /// bench records. The elapsed time is clamped to clock resolution so
  /// smoke-mode runs on tiny problem sizes can never produce a
  /// division-by-zero row.
  void recordRun(std::string name, long long n, double seconds) {
    const double s = seconds > 1e-9 ? seconds : 1e-9;
    record(std::move(name), n, s * 1e9, static_cast<double>(n) / s);
  }

  /// Names are bench-internal identifiers ([a-z0-9_]), not user text, so
  /// no JSON string escaping is needed. Writes to a temp file and renames
  /// over `path` so a crash mid-write never leaves a truncated array.
  /// Returns false when THIS process recorded no rows or the write
  /// itself failed (each cause reported on stderr separately) — rows
  /// merged from earlier benches don't count, so a bench that silently
  /// stopped reporting exits nonzero even when it runs after one that
  /// didn't.
  bool write(const std::string& path = "BENCH.json") const {
    std::string existing;
    {
      std::ifstream in(path);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        existing = ss.str();
      }
    }
    const std::string tmp = path + ".tmp";
    {
      // Merge with a previous array: strip its closing bracket and append.
      const auto close = existing.rfind(']');
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "BenchJson: cannot open %s for writing\n", tmp.c_str());
        return false;
      }
      bool first = true;
      if (close != std::string::npos && existing.find('[') != std::string::npos) {
        out << existing.substr(0, close);
        if (existing.find('{') != std::string::npos) {
          first = false;  // previous array had rows; separate with a comma
        }
      } else {
        out << "[\n";
      }
      const std::string stamp = isoTimestampUtc();
      const std::string commit = commitFromEnv();
      for (const Row& r : rows_) {
        if (!first) out << ",\n";
        first = false;
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "  {\"name\": \"%s\", \"n\": %lld, \"ns_per_op\": %.1f, "
                      "\"items_per_sec\": %.1f, \"timestamp\": \"%s\"",
                      r.name.c_str(), r.n, r.nsPerOp, r.itemsPerSec, stamp.c_str());
        out << buf;
        if (!commit.empty()) out << ", \"commit\": \"" << commit << '"';
        out << '}';
      }
      out << "\n]\n";
      if (!out.good()) {
        std::fprintf(stderr, "BenchJson: write to %s failed\n", tmp.c_str());
        std::remove(tmp.c_str());
        return false;
      }
    }
    // POSIX rename replaces atomically; Windows refuses to clobber, so
    // fall back to remove-then-rename there (a crash in between loses
    // only the old file, never leaves a truncated one).
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(path.c_str());
      if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "BenchJson: cannot rename %s over %s\n", tmp.c_str(),
                     path.c_str());
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (rows_.empty()) {
      std::fprintf(stderr, "BenchJson: this bench recorded zero rows\n");
      return false;
    }
    return true;
  }

 private:
  struct Row {
    std::string name;
    long long n;
    double nsPerOp;
    double itemsPerSec;
  };

  /// Write time as ISO-8601 UTC ("2026-08-08T12:34:56Z").
  static std::string isoTimestampUtc() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
  }

  /// BB_BENCH_COMMIT, restricted to identifier-safe characters (it goes
  /// into JSON unescaped) and a git-SHA-ish length. Empty when unset.
  static std::string commitFromEnv() {
    const char* env = std::getenv("BB_BENCH_COMMIT");
    if (env == nullptr) return {};
    std::string out;
    for (const char* p = env; *p != '\0' && out.size() < 64; ++p) {
      const char c = *p;
      const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                      (c >= 'A' && c <= 'Z') || c == '_' || c == '.' || c == '-';
      if (ok) out.push_back(c);
    }
    return out;
  }

  std::vector<Row> rows_;
};

inline std::unique_ptr<core::CompiledChip> compile(const std::string& src,
                                                   core::CompileOptions opts = {}) {
  auto result = core::compileChip(src, std::move(opts));
  if (!result) {
    std::fprintf(stderr, "bench compile failed:\n%s\n",
                 result.diagnostics().toString().c_str());
    std::abort();
  }
  return std::move(*result);
}

/// Typed-description frontend: no parse stage, same pipeline.
inline std::unique_ptr<core::CompiledChip> compile(const icl::ChipDesc& desc,
                                                   core::CompileOptions opts = {}) {
  auto result = core::compileChip(desc, std::move(opts));
  if (!result) {
    std::fprintf(stderr, "bench compile failed:\n%s\n",
                 result.diagnostics().toString().c_str());
    std::abort();
  }
  return std::move(*result);
}

inline double lambda2(geom::Coord area) {
  return static_cast<double>(area) /
         (geom::kUnitsPerLambda * geom::kUnitsPerLambda);
}

inline double lambdaLen(geom::Coord len) {
  return static_cast<double>(len) / geom::kUnitsPerLambda;
}

}  // namespace bb::bench
