/// TIME — the paper's compile-time claim: "The compiler takes
/// approximately 4 minutes to generate a small chip, in all five of the
/// current representations. The time needed to generate a fairly large
/// chip should be in the neighborhood of 10-15 minutes."
///
/// Absolute 1979 PDP-10 minutes are meaningless on modern hardware; the
/// claim's *shape* is the large/small ratio (~2.5-4x) and near-linear
/// scaling with chip size. This bench measures full compilation plus all
/// representations.

#include "bench_util.hpp"

#include "reps/reps.hpp"

#include <chrono>

using namespace bb;

namespace {

double fullCompileSeconds(const icl::ChipDesc& desc, int iters = 5) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto chip = bench::compile(desc);
    const reps::RepresentationSet rs = reps::generateAll(*chip);
    benchmark::DoNotOptimize(rs.cif.size());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

void printTable() {
  std::printf("== TIME: full compile incl. all representations ==\n");
  const double tSmall = fullCompileSeconds(core::samples::smallChip(4));
  const double tLarge = fullCompileSeconds(core::samples::largeChip(16, 8));
  std::printf("%-24s %12s\n", "chip", "seconds");
  std::printf("%-24s %12.4f   (paper: ~4 min on a PDP-10)\n", "small (5 elem, 4-bit)",
              tSmall);
  std::printf("%-24s %12.4f   (paper: 10-15 min)\n", "large (9 elem, 16-bit)", tLarge);
  std::printf("large/small ratio: %.2fx (paper's claim implies ~2.5-4x)\n", tLarge / tSmall);

  std::printf("\nscaling in chip size (elements x width):\n");
  std::printf("%8s %8s %12s\n", "bits", "regs", "seconds");
  for (int width : {4, 8, 16}) {
    for (int regs : {4, 8}) {
      const double t = fullCompileSeconds(core::samples::largeChip(width, regs), 3);
      std::printf("%8d %8d %12.4f\n", width, regs, t);
    }
  }

  // Per-stage breakdown through the pipeline's own observer hook —
  // which of the paper's three passes the minutes actually go to.
  std::printf("\nper-stage breakdown (large chip, via PassObserver):\n");
  core::TimingObserver timing;
  core::CompileSession session(core::samples::largeChip(16, 8));
  session.addObserver(&timing);
  auto result = session.run();
  if (!result) {
    std::fprintf(stderr, "bench compile failed:\n%s\n",
                 result.diagnostics().toString().c_str());
    std::abort();
  }
  for (const core::Stage s : core::kAllStages) {
    std::printf("%10s %10.3f ms\n", std::string(core::stageName(s)).c_str(),
                static_cast<double>(timing.elapsed(s).count()) / 1e6);
  }
  std::printf("\n");
}

void BM_FullCompileSmall(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::smallChip(4);
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    const reps::RepresentationSet rs = reps::generateAll(*chip);
    benchmark::DoNotOptimize(rs.cif.size());
  }
}
BENCHMARK(BM_FullCompileSmall);

void BM_FullCompileLarge(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::largeChip(16, 8);
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    const reps::RepresentationSet rs = reps::generateAll(*chip);
    benchmark::DoNotOptimize(rs.cif.size());
  }
}
BENCHMARK(BM_FullCompileLarge);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
