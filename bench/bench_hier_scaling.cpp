/// HIER-SCALING — the hierarchical compile paths (cell-level DRC and
/// extraction reuse, SREF/AREF mask emission) against their flat
/// oracles, on NxN arrays of a DRC-clean transistor leaf swept from
/// 4x4 to 64x64. The table is the paper-artifact: the hierarchy is the
/// paper's whole premise ("rather than on fully instantiated artwork"),
/// so flat cost grows with N^2 instances while the hierarchical paths
/// check/extract one unique cell plus interaction regions and emit one
/// symbol plus an AREF. Acceptance bars: >=10x DRC items/sec and >=10x
/// smaller CIF/GDS at 32x32.
///
/// Every row is also an equivalence gate, aborting on divergence:
///   * DRC: identical violation sets (both empty — the leaf is clean);
///   * extraction: `netlistsEquivalent` (same circuit up to renaming);
///   * emission: hierarchical CIF parses back (`parseCif`) and its
///     flattened per-layer union areas equal the flat artwork's, and the
///     GDS AREF stream stays well-formed with exactly one AREF.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings).

#include "bench_util.hpp"

#include "cell/flatten.hpp"
#include "cell/hier_index.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "geom/sweep.hpp"
#include "layout/cif.hpp"
#include "layout/cif_parser.hpp"
#include "layout/gds.hpp"
#include "tech/rules.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bb;

namespace {

using geom::Coord;
using geom::lambda;
using geom::Rect;
using tech::Layer;

constexpr Coord kMotifSide = 20;                 // lambda
constexpr std::size_t kMotifsPerSide = 4;        // leaf = 4x4 motifs
constexpr Coord kLeafSide = kMotifSide * static_cast<Coord>(kMotifsPerSide);

/// A DRC-clean 80Lx80L leaf built from a 4x4 tiling of a transistor
/// motif: one enhancement transistor (poly crossing diffusion, generous
/// gate extensions), a poly/metal contact stack, and a full-width metal
/// strip that reaches both side edges so horizontally abutting motifs —
/// and abutting leaf instances — merge into one net per row (the stitch
/// the hierarchical extractor must reproduce). 96 primitives per leaf:
/// the interior-work-dominates regime the per-cell DRC reuse targets (a
/// real Bristle-Blocks slice cell, not a degenerate 6-rect tile).
cell::Cell* makeLeaf(cell::CellLibrary& lib) {
  cell::Cell* c = lib.create("hier_leaf");
  c->setBoundary({0, 0, lambda(kLeafSide), lambda(kLeafSide)});
  for (std::size_t mj = 0; mj < kMotifsPerSide; ++mj) {
    for (std::size_t mi = 0; mi < kMotifsPerSide; ++mi) {
      const Coord x = lambda(kMotifSide) * static_cast<Coord>(mi);
      const Coord y = lambda(kMotifSide) * static_cast<Coord>(mj);
      const auto at = [x, y](Coord x0, Coord y0, Coord x1, Coord y1) {
        return Rect{x + x0, y + y0, x + x1, y + y1};
      };
      c->addRect(Layer::Diffusion, at(lambda(8), lambda(2), lambda(10), lambda(18)));
      c->addRect(Layer::Poly, at(lambda(2), lambda(9), lambda(18), lambda(11)));
      // Contact stack: 4L poly and metal pads with a 2L cut, 1L surround.
      c->addRect(Layer::Poly, at(lambda(3), lambda(8), lambda(7), lambda(12)));
      c->addRect(Layer::Metal, at(lambda(3), lambda(8), lambda(7), lambda(12)));
      c->addRect(Layer::Contact, at(lambda(4), lambda(9), lambda(6), lambda(11)));
      // Interface wiring: metal strip across the full motif width.
      c->addRect(Layer::Metal, at(0, lambda(15), lambda(kMotifSide), lambda(18)));
    }
  }
  return c;
}

cell::Cell* makeArray(cell::CellLibrary& lib, std::size_t n) {
  cell::Cell* leaf = makeLeaf(lib);
  cell::Cell* top = lib.create("hier_array");
  const Coord pitch = lambda(kLeafSide);
  top->setBoundary({0, 0, static_cast<Coord>(n) * pitch, static_cast<Coord>(n) * pitch});
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      top->addInstance(leaf, geom::Transform{geom::Orientation::R0,
                                             {static_cast<Coord>(i) * pitch,
                                              static_cast<Coord>(j) * pitch}});
    }
  }
  return top;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

[[noreturn]] void die(const char* what, std::size_t n, const std::string& detail = {}) {
  std::fprintf(stderr, "FATAL: hierarchical %s diverged from flat at n=%zux%zu%s%s\n", what,
               n, n, detail.empty() ? "" : ": ", detail.c_str());
  std::abort();
}

/// Violations as an order-insensitive fingerprint set.
std::vector<std::string> violationSet(const drc::DrcReport& rep) {
  std::vector<std::string> v;
  v.reserve(rep.violations.size());
  for (const drc::Violation& x : rep.violations) {
    v.push_back(x.rule + "@" + geom::toString(x.where));
  }
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<Coord> layerAreas(const cell::FlatLayout& flat) {
  std::vector<Coord> areas;
  for (Layer l : tech::kAllLayers) {
    areas.push_back(geom::sweep::unionArea(flat.rects[static_cast<std::size_t>(l)]));
  }
  return areas;
}

void printTable(bool smoke) {
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{4, 8} : std::vector<std::size_t>{4, 8, 16, 32, 64};
  const tech::RuleDeck& deck = tech::meadConwayRules();
  drc::DrcOptions dopts;  // defaults: indexed, boundary conditions on
  const drc::DeckChecker checker(deck, dopts);

  std::printf("== HIER-SCALING: cell-level reuse vs fully instantiated artwork ==\n");
  std::printf("%6s %9s %12s %12s %9s %12s %12s %9s %11s %11s %9s\n", "array", "rects",
              "drc_flat_ms", "drc_hier_ms", "drc_x", "ext_flat_ms", "ext_hier_ms", "ext_x",
              "cif_flat_b", "cif_hier_b", "cif_x");
  for (const std::size_t n : sizes) {
    cell::CellLibrary lib;
    cell::Cell* top = makeArray(lib, n);
    const cell::FlatLayout flat = cell::flatten(*top);
    const cell::HierIndex hier(*top);
    const auto rects = static_cast<long long>(hier.flatCount());

    // --- DRC: flat oracle vs hierarchical, identical violation sets.
    auto t0 = std::chrono::steady_clock::now();
    const drc::DrcReport flatRep = checker.check(flat, top->boundary());
    const double drcFlatS = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    const drc::DrcReport hierRep = checker.checkHier(hier);
    const double drcHierS = secondsSince(t0);
    if (violationSet(flatRep) != violationSet(hierRep)) {
      die("DRC", n,
          "flat=" + std::to_string(flatRep.violations.size()) +
              " hier=" + std::to_string(hierRep.violations.size()));
    }
    bench::BenchJson::instance().recordRun("hier_drc_flat", rects, drcFlatS);
    bench::BenchJson::instance().recordRun("hier_drc", rects, drcHierS);

    // --- Extraction: one netlist per unique cell, stitched; must be the
    // same circuit as the flat oracle up to renaming.
    t0 = std::chrono::steady_clock::now();
    const extract::ExtractResult flatEx = extract::extractFlat(flat, {});
    const double extFlatS = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    const extract::ExtractResult hierEx = extract::extractHier(hier, {});
    const double extHierS = secondsSince(t0);
    std::string why;
    if (!extract::netlistsEquivalent(flatEx, hierEx, &why)) die("extraction", n, why);
    bench::BenchJson::instance().recordRun("hier_extract_flat", rects, extFlatS);
    bench::BenchJson::instance().recordRun("hier_extract", rects, extHierS);

    // --- Emission: symbol calls + AREF vs flattened copies. Size is the
    // metric; correctness is the CIF round-trip (parse the hierarchical
    // file back, flatten, compare per-layer union areas) and the GDS
    // structure walk (well-formed, exactly one AREF, no SREF flood).
    t0 = std::chrono::steady_clock::now();
    const std::string cifFlat = layout::writeCif(flat, {});
    const std::vector<std::uint8_t> gdsFlat = layout::writeGds(flat, {}, {});
    const double emitFlatS = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    const std::string cifHier = layout::writeCifHier(*top);
    const std::vector<std::uint8_t> gdsHier = layout::writeGdsHier(*top);
    const double emitHierS = secondsSince(t0);

    {
      cell::CellLibrary rt;
      const layout::CifParseResult parsed = layout::parseCif(cifHier, rt);
      if (!parsed.ok) die("CIF round-trip", n, parsed.error);
      const cell::FlatLayout rtFlat = cell::flatten(*parsed.top);
      if (layerAreas(rtFlat) != layerAreas(flat)) die("CIF area", n);
    }
    const layout::GdsStats gs = layout::gdsStats(gdsHier);
    if (!gs.wellFormed || gs.arefs != 1 || gs.srefs != 0) {
      die("GDS AREF", n,
          "arefs=" + std::to_string(gs.arefs) + " srefs=" + std::to_string(gs.srefs));
    }
    bench::BenchJson::instance().recordRun("hier_emit_flat", rects, emitFlatS);
    bench::BenchJson::instance().recordRun("hier_emit", rects, emitHierS);
    const double cifRatio =
        static_cast<double>(cifFlat.size()) / static_cast<double>(cifHier.size());
    const double gdsRatio =
        static_cast<double>(gdsFlat.size()) / static_cast<double>(gdsHier.size());
    bench::BenchJson::instance().record("hier_cif_ratio", rects, 0, cifRatio);
    bench::BenchJson::instance().record("hier_gds_ratio", rects, 0, gdsRatio);

    // --- Acceptance bars at 32x32: >=10x DRC throughput, >=10x smaller
    // masks. (Timing bar only off smoke — smoke never reaches n=32.)
    if (n >= 32) {
      if (drcFlatS < 10.0 * drcHierS) {
        std::fprintf(stderr, "FATAL: hier DRC speedup %.1fx below 10x bar at %zux%zu\n",
                     drcFlatS / drcHierS, n, n);
        std::abort();
      }
      if (cifRatio < 10.0 || gdsRatio < 10.0) {
        std::fprintf(stderr, "FATAL: mask shrink below 10x bar at %zux%zu (cif %.1fx, gds %.1fx)\n",
                     n, n, cifRatio, gdsRatio);
        std::abort();
      }
    }

    std::printf("%3zux%-3zu %9lld %12.2f %12.2f %8.1fx %12.2f %12.2f %8.1fx %11zu %11zu %8.1fx\n",
                n, n, rects, drcFlatS * 1e3, drcHierS * 1e3, drcFlatS / drcHierS,
                extFlatS * 1e3, extHierS * 1e3, extFlatS / extHierS, cifFlat.size(),
                cifHier.size(), cifRatio);
  }
  std::printf("(every row gated on flat/hier equivalence: DRC sets, netlists, mask areas)\n\n");
}

void BM_HierDrc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cell::CellLibrary lib;
  cell::Cell* top = makeArray(lib, n);
  const cell::HierIndex hier(*top);
  const drc::DeckChecker checker(tech::meadConwayRules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.checkHier(hier).violations.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(hier.flatCount()));
}
BENCHMARK(BM_HierDrc)->RangeMultiplier(2)->Range(4, 32)->Unit(benchmark::kMillisecond);

void BM_FlatDrc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cell::CellLibrary lib;
  cell::Cell* top = makeArray(lib, n);
  const cell::FlatLayout flat = cell::flatten(*top);
  const drc::DeckChecker checker(tech::meadConwayRules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(flat, top->boundary()).violations.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flat.totalCount()));
}
BENCHMARK(BM_FlatDrc)->RangeMultiplier(2)->Range(4, 16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
