/// AREA — the paper's headline quality claim: "The chips produced by the
/// system are fairly well optimized, having +/-10% of the area of a chip
/// produced by hand using the structured design methodology."
///
/// Hand baseline (generous to the hand designer): every element at its
/// own natural pitch with zero routing overhead. The compiled/hand ratio
/// measures the pitch-matching overhead the compiler pays.

#include "baseline/handlayout.hpp"
#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== AREA: compiled core vs hand layout (paper claim: within ~10%%) ==\n");
  std::printf("%-12s %14s %14s %8s\n", "chip", "compiled L^2", "ideal-hand L^2", "ratio");
  struct Row {
    const char* name;
    bb::icl::ChipDesc desc;
  };
  const Row rows[] = {
      {"small4", core::samples::smallChip(4)},
      {"small8", core::samples::smallChip(8)},
      {"small16", core::samples::smallChip(16)},
      {"large8", core::samples::largeChip(8, 4)},
      {"large16", core::samples::largeChip(16, 8)},
      {"segmented8", core::samples::segmentedChip(8)},
  };
  double worst = 0;
  for (const Row& r : rows) {
    auto chip = bench::compile(r.desc);
    const double compiled = bench::lambda2(chip->stats.coreArea);
    const double hand = bench::lambda2(baseline::idealHandCoreArea(*chip));
    const double ratio = compiled / hand;
    worst = std::max(worst, ratio);
    std::printf("%-12s %14.0f %14.0f %7.1f%%\n", r.name, compiled, hand,
                (ratio - 1.0) * 100.0);
  }
  std::printf("worst overhead vs ideal hand: +%.1f%% (paper reports +/-10%% vs real hand\n",
              (worst - 1.0) * 100.0);
  std::printf("layout, which itself pays routing the ideal bound ignores)\n\n");
}

void BM_CompiledCoreArea(benchmark::State& state) {
  const icl::ChipDesc desc = core::samples::largeChip(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto chip = bench::compile(desc);
    benchmark::DoNotOptimize(chip->stats.coreArea);
  }
}
BENCHMARK(BM_CompiledCoreArea)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
