/// ABL-ROTO — the Roto-Router design decision: rotating the pad
/// allocation around the perimeter "in an attempt to minimize the length
/// of wire between pads and connection points". Compared against the
/// naive clockwise allocation and a greedy nearest-slot heuristic, over
/// growing pad counts.

#include "baseline/naive_pads.hpp"
#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== ABL-ROTO: total pad wire length (lambda) by strategy ==\n");
  std::printf("%6s %6s %12s %12s %12s %10s\n", "bits", "pads", "naive", "greedy",
              "roto-router", "saving");
  for (int width : {4, 8, 12, 16}) {
    auto chip = bench::compile(core::samples::smallChip(width));
    const baseline::PadStrategyReport rep = baseline::comparePadStrategies(*chip);
    std::printf("%6d %6zu %12.0f %12.0f %12.0f %9.1f%%\n", width, chip->pads.size(),
                bench::lambdaLen(rep.naive), bench::lambdaLen(rep.greedy),
                bench::lambdaLen(rep.rotoRouter),
                (1.0 - static_cast<double>(rep.rotoRouter) /
                           static_cast<double>(rep.naive)) *
                    100.0);
  }
  std::printf("(roto-router <= naive by construction; greedy can win or lose on\n");
  std::printf("wire length but does not preserve bondable even spacing)\n\n");
}

void BM_RotoSearch(benchmark::State& state) {
  auto chip = bench::compile(core::samples::smallChip(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const auto rep = baseline::comparePadStrategies(*chip);
    benchmark::DoNotOptimize(rep.rotoRouter);
  }
}
BENCHMARK(BM_RotoSearch)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
