/// ABL-DECODER — "the Turing machine will have generated and OPTIMIZED
/// the instruction decoder": what the optimization (term sharing +
/// adjacent-cube merging) buys, swept over chip sizes.

#include "bench_util.hpp"

using namespace bb;

namespace {

void printTable() {
  std::printf("== ABL-DECODER: PLA cost with and without optimization ==\n");
  std::printf("%-12s %10s %10s %10s %12s %12s %8s\n", "chip", "raw cubes", "terms-opt",
              "terms-raw", "area-opt", "area-raw", "saving");
  struct Row {
    const char* name;
    bb::icl::ChipDesc desc;
  };
  const Row rows[] = {
      {"small8", core::samples::smallChip(8)},
      {"large8", core::samples::largeChip(8, 4)},
      {"large16", core::samples::largeChip(16, 8)},
  };
  const auto& g = core::plaGeometry();
  for (const Row& r : rows) {
    core::CompileOptions on;
    auto optimized = bench::compile(r.desc, on);
    core::CompileOptions off;
    off.pass2.optimizeDecoder = false;
    auto raw = bench::compile(r.desc, off);
    const double aOpt = bench::lambda2(optimized->pla.areaEstimate(g.colW, g.rowH));
    const double aRaw = bench::lambda2(raw->pla.areaEstimate(g.colW, g.rowH));
    std::printf("%-12s %10zu %10zu %10zu %12.0f %12.0f %7.1f%%\n", r.name,
                optimized->tapeStats.rawCubes, optimized->pla.termCount(),
                raw->pla.termCount(), aOpt, aRaw, (1.0 - aOpt / aRaw) * 100.0);
  }
  std::printf("(functional equivalence of the optimized decoder is proven exhaustively\n");
  std::printf("in test_compiler_smoke.DecoderMatchesDecodeFunctions)\n\n");
}

void BM_TwoTapeMachine(benchmark::State& state) {
  auto chip = bench::compile(core::samples::largeChip(16, 8));
  std::vector<core::TextArrayEntry> text;
  for (const auto& cl : chip->controls) {
    text.push_back({cl.name, cl.decode, cl.phase});
  }
  for (auto _ : state) {
    core::TwoTapeMachine m(text, chip->desc.microcode);
    icl::DiagnosticList d;
    m.run(d);
    benchmark::DoNotOptimize(m.pla().termCount());
  }
}
BENCHMARK(BM_TwoTapeMachine);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
