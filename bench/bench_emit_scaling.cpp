/// EMIT-SCALING — windowed layout emission through `layout::View`
/// against full-chip emission, on synthetic multi-layer artwork swept
/// from 1k to 100k rects. Three configurations per row:
///   * full: whole-artwork CIF emission (the window == bbox special
///     case; asserted byte-identical to an explicit-bbox window on
///     every run),
///   * window: a fixed small viewport (1/8 x 1/8 of the bbox), tiled —
///     the acceptance bar is output-sensitivity: its cost must track
///     the viewport's geometry, not the chip size,
///   * merged: whole-artwork emission with per-tile unionRects merging
///     (asserted area-identical to the unmerged mask per layer via
///     sweep::unionArea).
/// SVG rendering is timed for the full and windowed configurations as a
/// second writer family. Every row where two configurations must agree
/// asserts exact equivalence, so streaming is never bought with a wrong
/// mask.
///
/// Env knobs: BB_BENCH_SMOKE=1 caps the sweep for CI (and skips the
/// google-benchmark timings).

#include "bench_util.hpp"

#include "geom/sweep.hpp"
#include "layout/cif.hpp"
#include "layout/svg.hpp"
#include "layout/view.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

using namespace bb;

namespace {

using cell::FlatLayout;
using geom::Coord;
using geom::lambda;
using geom::Rect;
using layout::ViewOptions;

/// ~n jittered tiles over four layers with overlapping blobs, half in
/// negative space — the union-scaling recipe spread across a layer
/// stack so per-layer indexes and the tile stream all do real work.
FlatLayout makeFlat(std::size_t n) {
  FlatLayout flat;
  const tech::Layer layers[] = {tech::Layer::Diffusion, tech::Layer::Poly, tech::Layer::Metal,
                                tech::Layer::Contact};
  const Coord pitch = lambda(9);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const Coord shift = static_cast<Coord>(k / 2) * pitch;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;  // fixed seed: runs are reproducible
  const auto jitter = [&lcg](Coord range) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((lcg >> 33) % static_cast<std::uint64_t>(range));
  };
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < n; ++j) {
    for (std::size_t i = 0; i < k && placed < n; ++i, ++placed) {
      const Coord x = static_cast<Coord>(i) * pitch - shift + jitter(pitch);
      const Coord y = static_cast<Coord>(j) * pitch - shift + jitter(pitch);
      Coord s = lambda(7) + jitter(lambda(2));
      if (placed % 7 == 3) s = lambda(12);
      flat.on(layers[placed % 4]).emplace_back(x, y, x + s, y + s);
    }
  }
  return flat;
}

/// The fixed small viewport: 1/8 x 1/8 of the bbox, centered.
Rect viewportOf(const Rect& bb) {
  const Coord w = bb.width() / 8;
  const Coord h = bb.height() / 8;
  const geom::Point c = bb.center();
  return Rect{c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2};
}

template <typename F>
double timeIt(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void printTable(bool smoke) {
  const std::vector<std::size_t> sizes = smoke
      ? std::vector<std::size_t>{1000, 5000}
      : std::vector<std::size_t>{1000, 5000, 20000, 50000, 100000};
  const Coord tile = lambda(200);

  std::printf("== EMIT-SCALING: windowed/tiled layout emission vs full-chip ==\n");
  std::printf("%8s %12s %12s %10s %12s %12s %12s\n", "rects", "full_ms", "window_ms",
              "speedup", "merged_ms", "svg_full_ms", "svg_win_ms");
  for (const std::size_t n : sizes) {
    const FlatLayout flat = makeFlat(n);
    flat.buildIndexes();  // prewarm so rows time emission, not index builds
    const Rect bb = flat.bbox();
    const Rect vp = viewportOf(bb);

    std::string full;
    const double fullS = timeIt([&] { full = layout::writeCif(flat, ViewOptions{}); });
    bench::BenchJson::instance().recordRun("emit_full_cif", static_cast<long long>(n), fullS);

    // The golden invariant: full emission IS the window == bbox case.
    ViewOptions atBbox;
    atBbox.window = bb;
    if (layout::writeCif(flat, atBbox) != full) {
      std::fprintf(stderr, "FATAL: window==bbox CIF diverged from full emission at n=%zu\n", n);
      std::abort();
    }

    ViewOptions windowed;
    windowed.window = vp;
    windowed.tileSize = tile;
    std::string win;
    const double winS = timeIt([&] { win = layout::writeCif(flat, windowed); });
    bench::BenchJson::instance().recordRun("emit_window_cif", static_cast<long long>(n), winS);
    if (win.size() >= full.size()) {
      std::fprintf(stderr, "FATAL: windowed CIF not smaller than full at n=%zu\n", n);
      std::abort();
    }

    ViewOptions mergedOpts;
    mergedOpts.merge = true;
    mergedOpts.tileSize = tile;
    std::string merged;
    const double mergedS = timeIt([&] { merged = layout::writeCif(flat, mergedOpts); });
    bench::BenchJson::instance().recordRun("emit_merged_cif", static_cast<long long>(n),
                                           mergedS);
    // Merging must preserve the mask: per-layer union area of the merged
    // View equals the raw layer's union area exactly.
    {
      const layout::View mv{flat, mergedOpts};
      for (tech::Layer l : tech::kAllLayers) {
        if (geom::sweep::unionArea(mv.rectsOn(l)) != geom::sweep::unionArea(flat.on(l))) {
          std::fprintf(stderr, "FATAL: merged emission changed the %s mask at n=%zu\n",
                       std::string(tech::layerName(l)).c_str(), n);
          std::abort();
        }
      }
    }

    layout::SvgOptions svgFull;
    const double svgFullS =
        timeIt([&] { benchmark::DoNotOptimize(layout::renderSvg(flat, {}, svgFull)); });
    bench::BenchJson::instance().recordRun("emit_full_svg", static_cast<long long>(n),
                                           svgFullS);
    layout::SvgOptions svgWin;
    svgWin.view.window = vp;
    svgWin.view.tileSize = tile;
    const double svgWinS =
        timeIt([&] { benchmark::DoNotOptimize(layout::renderSvg(flat, {}, svgWin)); });
    bench::BenchJson::instance().recordRun("emit_window_svg", static_cast<long long>(n),
                                           svgWinS);

    std::printf("%8zu %12.2f %12.2f %9.1fx %12.2f %12.2f %12.2f\n", n, fullS * 1e3, winS * 1e3,
                fullS / (winS > 0 ? winS : 1e-9), mergedS * 1e3, svgFullS * 1e3, svgWinS * 1e3);
  }
  std::printf("(viewport 1/8 x 1/8 of bbox, tile pitch 200L)\n\n");
}

void BM_EmitFullCif(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FlatLayout flat = makeFlat(n);
  flat.buildIndexes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::writeCif(flat, ViewOptions{}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmitFullCif)->RangeMultiplier(4)->Range(1024, 65536)->Unit(benchmark::kMillisecond);

void BM_EmitWindowCif(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FlatLayout flat = makeFlat(n);
  flat.buildIndexes();
  ViewOptions windowed;
  windowed.window = viewportOf(flat.bbox());
  windowed.tileSize = lambda(200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::writeCif(flat, windowed));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmitWindowCif)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("BB_BENCH_SMOKE") != nullptr;
  printTable(smoke);
  if (!bench::BenchJson::instance().write()) {
    std::fprintf(stderr, "FATAL: failed to land perf rows in BENCH.json (cause above)\n");
    return 1;
  }
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
