/// Compile service demo: Bristle Blocks as a persistent in-process
/// server instead of a batch run. A `svc::CompileService` fronts the
/// staged pipeline with a content-addressed chip cache, so a design
/// environment can keep asking for chips and artifacts and only pay for
/// compilation when the design or the options actually change:
///
///   1. cold compile — a request (typed ChipDesc or ICL source text)
///      misses the cache and runs the full pipeline once,
///   2. warm requests — the same design, whether sent as a typed value
///      or as source text, hits the cache and returns the same
///      immutable chip without running a single stage,
///   3. viewport serving — pan/zoom windows of the mask set stream
///      through the tile-based layout::View path straight off the
///      cached chip (a map-server for the die),
///   4. pipelined batch — `compileAll` decomposes a mixed batch into
///      per-stage tasks on the process-wide `core::ThreadPool`
///      (cache/dedup included), so one request's parse overlaps
///      another's passes and the warm server never spawns a thread,
///   5. incremental recompilation — a CompileSession with memoization
///      re-runs only the stages downstream of an option edit,
///   6. service, cache and scheduler-pool statistics.
///
/// Run from the build tree:  ./service_demo

#include "core/samples.hpp"
#include "core/session.hpp"
#include "svc/service.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace {

void showCompile(const char* tag, const bb::svc::CompileResponse& r) {
  std::printf("  %-28s %s  key=%016llx  %.2f ms\n", tag,
              r.cacheHit ? "HIT " : "MISS",
              static_cast<unsigned long long>(r.key),
              static_cast<double>(r.latency.count()) / 1e6);
}

}  // namespace

int main() {
  bb::svc::CompileService service;
  const bb::icl::ChipDesc small = bb::core::samples::smallChip(4);
  const bb::icl::ChipDesc large = bb::core::samples::largeChip(16, 8);

  // -- cold vs warm --------------------------------------------------------
  std::printf("compile requests:\n");
  showCompile("small (typed, cold)",
              service.compile(bb::svc::CompileRequest::ofDesc(small)));
  showCompile("small (typed, warm)",
              service.compile(bb::svc::CompileRequest::ofDesc(small)));
  // The same design as source text lands on the same cache entry: the
  // key is the digest of the canonical description, not of the request.
  showCompile("small (source text)",
              service.compile(bb::svc::CompileRequest::ofSource("small", small.toString())));
  // Different compile options fingerprint differently: a real miss.
  showCompile("small (rotoRouter off)",
              service.compile(bb::svc::CompileRequest::ofDesc(
                  small, bb::core::CompileOptions::builder().rotoRouter(false).build())));
  showCompile("large (typed, cold)",
              service.compile(bb::svc::CompileRequest::ofDesc(large)));

  // -- viewport serving ----------------------------------------------------
  // Stream windows of the compiled artwork off the cache — pan and zoom
  // without ever re-running a compile stage.
  const bb::svc::CompileResponse whole =
      service.compile(bb::svc::CompileRequest::ofDesc(large));
  const bb::geom::Rect art = whole.chip->flatTop().bbox();
  std::printf("\nviewport requests over '%s' (%lld x %lld units):\n",
              whole.chip->desc.name.c_str(), static_cast<long long>(art.width()),
              static_cast<long long>(art.height()));
  const bb::geom::Coord quarterW = art.width() / 4;
  const bb::geom::Coord quarterH = art.height() / 4;
  for (int step = 0; step < 4; ++step) {  // pan a quarter-size window across
    bb::svc::ViewportRequest vp;
    vp.chip = bb::svc::CompileRequest::ofDesc(large);
    const bb::geom::Coord x = art.x0 + (step * (art.width() - quarterW)) / 3;
    vp.window = bb::geom::Rect{x, art.y0, x + quarterW, art.y0 + quarterH};
    vp.tileSize = bb::geom::lambda(256);
    const bb::svc::EmitResponse tile = service.viewport(vp);
    std::printf("  pan %d/4: window x=[%lld..%lld]  %s  %zu bytes of CIF  %.2f ms\n",
                step + 1, static_cast<long long>(vp.window->x0),
                static_cast<long long>(vp.window->x1), tile.cacheHit ? "HIT " : "MISS",
                tile.payload.size(), static_cast<double>(tile.latency.count()) / 1e6);
  }

  // -- pipelined batch -----------------------------------------------------
  // A mixed batch through compileAll: stages interleave across requests
  // on the shared thread pool, and anything already cached (or duplicated
  // within the batch) is served without recompiling.
  std::vector<bb::svc::CompileRequest> batch;
  batch.push_back(bb::svc::CompileRequest::ofDesc(small));  // warm: cache hit
  batch.push_back(bb::svc::CompileRequest::ofDesc(bb::core::samples::segmentedChip(8)));
  batch.push_back(bb::svc::CompileRequest::ofDesc(bb::core::samples::smallChip(6)));
  batch.push_back(bb::svc::CompileRequest::ofDesc(bb::core::samples::smallChip(6)));
  const auto batched = service.compileAll(batch);
  std::printf("\npipelined batch (%zu requests):\n", batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    showCompile(batched[i].chip ? batched[i].chip->desc.name.c_str() : "(failed)",
                batched[i]);
  }

  // -- incremental recompilation ------------------------------------------
  // The session-level counterpart: edit an option, re-run only the
  // stages downstream of it (here pass3 — ring routing — and finalize).
  std::printf("\nincremental session on '%s':\n", small.name.c_str());
  bb::core::CompileSession session(small, {});
  session.setIncremental(true);
  if (!session.runTo(bb::core::Stage::Finalize)) {
    std::fprintf(stderr, "compile failed:\n%s", session.diagnostics().toString().c_str());
    return 1;
  }
  std::printf("  full run:        %zu stage executions\n", session.totalExecutions());
  const auto restart = session.setOptions(
      bb::core::CompileOptions::builder().rotoRouter(false).build());
  if (restart.has_value() && session.runTo(bb::core::Stage::Finalize)) {
    std::printf("  rotoRouter edit: restarted at '%s', now %zu executions "
                "(pass1/pass2 reused)\n",
                std::string(bb::core::stageName(*restart)).c_str(),
                session.totalExecutions());
  }

  // -- statistics ----------------------------------------------------------
  const bb::svc::ServiceStats s = service.stats();
  const bb::svc::CacheStats c = service.cache().stats();
  std::printf("\nservice stats:\n");
  std::printf("  compile requests   %llu (%llu executed, %llu deduped in flight)\n",
              static_cast<unsigned long long>(s.compileRequests),
              static_cast<unsigned long long>(s.compilesExecuted),
              static_cast<unsigned long long>(s.dedupedInFlight));
  std::printf("  emit/viewport      %llu / %llu\n",
              static_cast<unsigned long long>(s.emitRequests),
              static_cast<unsigned long long>(s.viewportRequests));
  std::printf("  cache              %llu hits / %llu misses (%.0f%% hit rate), "
              "%zu chips, %zu / %zu bytes\n",
              static_cast<unsigned long long>(c.hits),
              static_cast<unsigned long long>(c.misses), c.hitRate() * 100.0,
              c.entries, c.bytes, c.budgetBytes);
  std::printf("  scheduler pool     %llu tasks executed on %llu threads "
              "(spawned once, reused for every batch)\n",
              static_cast<unsigned long long>(s.poolTasksExecuted),
              static_cast<unsigned long long>(s.poolThreadsSpawned));
  return 0;
}
