/// Polygon engine tour: the `geom::poly` kernels one at a time, then
/// the end-to-end path a CIF polygon travels through the compiler —
/// import validation, DRC, extraction connectivity, GDS emission.
///
///   1. decompose a rectilinear ring into its exact region (disjoint
///      rects in normal form) and stitch it back,
///   2. boolean two polygon sets against each other and clip against a
///      window,
///   3. offset outward/inward (a narrow mouth closes into a hole; a
///      thin limb erodes away) and simplify under an area bound,
///   4. probe the edge set through a SegmentIndex,
///   5. run a CIF deck with `P` polygons through parse -> DRC ->
///      extract -> GDS.
///
/// Run from the build tree:  ./poly_demo

#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "geom/poly.hpp"
#include "geom/segment_index.hpp"
#include "layout/cif_parser.hpp"
#include "layout/gds.hpp"
#include "tech/rules.hpp"

#include <cstdio>
#include <string>

using namespace bb;
using geom::lambda;
using geom::Point;
using geom::Polygon;
using geom::Rect;

namespace {

Polygon ring(std::initializer_list<Point> pts) {
  Polygon p;
  p.pts = pts;
  return p;
}

void show(const char* label, const geom::poly::PolySet& ps) {
  std::printf("%s: %zu ring(s)\n", label, ps.size());
  for (const Polygon& p : ps) {
    std::printf("   %2zu verts, area %lld, %s\n", p.pts.size(),
                static_cast<long long>(geom::polygonArea(p)),
                geom::isCounterClockwise(p) ? "outer (ccw)" : "hole (cw)");
  }
}

}  // namespace

int main() {
  // 1. Decompose and stitch: an L-shape becomes two disjoint rects and
  //    comes back as one minimal ring.
  const Polygon ell = ring({{0, 0},
                            {lambda(8), 0},
                            {lambda(8), lambda(3)},
                            {lambda(3), lambda(3)},
                            {lambda(3), lambda(8)},
                            {0, lambda(8)}});
  const std::vector<Rect> region = geom::poly::rectDecompose(ell);
  std::printf("L-shape decomposes into %zu rects (area %lld = shoelace %lld)\n",
              region.size(), [&] {
                long long a = 0;
                for (const Rect& r : region) a += r.area();
                return a;
              }(),
              static_cast<long long>(geom::polygonArea(ell)));
  show("stitched back", geom::poly::regionToPolygons(region));

  // 2. Booleans and clipping.
  const geom::poly::PolySet a{ell};
  const geom::poly::PolySet b{
      ring({{lambda(2), lambda(2)}, {lambda(6), lambda(2)}, {lambda(6), lambda(6)},
            {lambda(2), lambda(6)}})};
  show("\nA union B", geom::poly::unite(a, b));
  show("A intersect B", geom::poly::intersect(a, b));
  show("A minus B", geom::poly::subtract(a, b));
  show("A clipped to left half",
       geom::poly::clipToRect(ell, Rect{-lambda(1), -lambda(1), lambda(4), lambda(9)}));

  // 3. Offsets: a 12L square enclosing a 6L chamber reached through a
  //    2L-tall mouth. A 1L outward offset closes the mouth — the
  //    chamber survives as a clockwise hole ring — while a 2L inward
  //    offset erodes the 3L walls away entirely.
  const Polygon cShape = ring({{0, 0},
                               {lambda(12), 0},
                               {lambda(12), lambda(5)},
                               {lambda(9), lambda(5)},
                               {lambda(9), lambda(3)},
                               {lambda(3), lambda(3)},
                               {lambda(3), lambda(9)},
                               {lambda(9), lambda(9)},
                               {lambda(9), lambda(7)},
                               {lambda(12), lambda(7)},
                               {lambda(12), lambda(12)},
                               {0, lambda(12)}});
  show("\nchamber +1L (2L mouth closes into a hole)",
       geom::poly::offsetOutward({cShape}, lambda(1)));
  show("chamber -2L (3L walls erode away)", geom::poly::offsetInward({cShape}, lambda(2)));
  const Polygon noisy = geom::poly::simplify(cShape, lambda(1) * lambda(1));
  std::printf("simplify under 1L^2 area bound: %zu -> %zu verts\n", cShape.pts.size(),
              noisy.pts.size());

  // 4. Segment index over the C-shape's edges.
  const geom::SegmentIndex idx(geom::edgesOf(cShape));
  const Rect probe{lambda(2), lambda(2), lambda(4), lambda(4)};
  std::printf("\n%zu edges indexed (%zu bytes); probe window touches edges:",
              idx.size(), idx.approxBytes());
  for (const int e : idx.queryTouching(probe)) std::printf(" %d", e);
  std::printf("\n");

  // 5. End to end: a CIF deck drawing a polygon bridge between two
  //    metal rects. Import validates the ring, DRC checks it against
  //    the lambda rules, extraction sees one net, GDS emits BOUNDARYs.
  const std::string cif =
      "DS 1 1 1;\n"
      "9 bridge;\n"
      "L NM;\n"
      "B 16 16 8 8;\n"
      "B 16 16 104 8;\n"
      "P 12 2 100 2 100 14 12 14;\n"
      "DF;\n"
      "C 1;\n"
      "E\n";
  cell::CellLibrary lib;
  const layout::CifParseResult parsed = layout::parseCif(cif, lib);
  if (!parsed.ok) {
    std::fprintf(stderr, "CIF rejected: %s\n", parsed.error.c_str());
    return 1;
  }
  const drc::DrcReport rep = drc::checkCell(*parsed.top, tech::meadConwayRules());
  const extract::ExtractResult nets = extract::extractCell(*parsed.top);
  const std::vector<std::uint8_t> gds = layout::writeGds(*parsed.top);
  const layout::GdsStats stats = layout::gdsStats(gds);
  std::printf("\nCIF bridge: DRC %s, %d net(s), GDS %zu bytes (%zu boundaries)\n",
              rep.clean() ? "clean" : rep.summary().c_str(), nets.netCount, gds.size(),
              stats.boundaries);
  return 0;
}
