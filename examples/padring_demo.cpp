/// padring_demo: watch the Roto-Router work. Compiles the same chip with
/// (a) naive clockwise pad allocation and (b) the Roto-Router, prints the
/// wire-length comparison, and renders both pad rings to SVG so the
/// difference is visible.
///
/// Run from the build tree:  ./examples/padring_demo [output-dir]

#include "baseline/naive_pads.hpp"
#include "cell/flatten.hpp"
#include "core/samples.hpp"
#include "core/session.hpp"
#include "layout/svg.hpp"

#include <cstdio>
#include <fstream>

namespace {

void renderRing(const bb::core::CompiledChip& chip, const std::string& path) {
  // Flatten the top cell and overlay pad pins + targets.
  const bb::cell::FlatLayout flat = bb::cell::flatten(*chip.top);
  std::vector<bb::layout::SvgOverlayPoint> overlay;
  for (const bb::core::PadPlacement& p : chip.pads) {
    overlay.push_back({p.pinAt, p.name, "#cc0000"});
    overlay.push_back({p.target, "", "#0000cc"});
  }
  bb::layout::SvgOptions opts;
  opts.pixelsPerUnit = 0.18;
  opts.fillOpacity = 0.35;
  opts.title = "pad ring";
  std::ofstream f(path, std::ios::binary);
  f << bb::layout::renderSvg(flat, overlay, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";
  const bb::icl::ChipDesc desc = bb::core::samples::smallChip(8);

  auto naiveResult = bb::core::compileChip(
      desc, bb::core::CompileOptions::builder().rotoRouter(false).build());
  auto rotoResult = bb::core::compileChip(desc);
  if (!naiveResult || !rotoResult) {
    std::fprintf(stderr, "compile failed:\n%s%s",
                 naiveResult.diagnostics().toString().c_str(),
                 rotoResult.diagnostics().toString().c_str());
    return 1;
  }
  const auto naive = std::move(*naiveResult);
  const auto roto = std::move(*rotoResult);

  const double unit = bb::geom::kUnitsPerLambda;
  std::printf("pad ring wire length (%zu pads):\n", roto->pads.size());
  std::printf("  naive clockwise : %8.0f lambda\n",
              static_cast<double>(naive->stats.padWireLength) / unit);
  std::printf("  roto-router     : %8.0f lambda  (%.1f%% shorter)\n",
              static_cast<double>(roto->stats.padWireLength) / unit,
              (1.0 - static_cast<double>(roto->stats.padWireLength) /
                         static_cast<double>(naive->stats.padWireLength)) *
                  100.0);

  const auto strategies = bb::baseline::comparePadStrategies(*roto);
  std::printf("  greedy heuristic: %8.0f lambda (no even-spacing guarantee)\n",
              static_cast<double>(strategies.greedy) / unit);

  renderRing(*naive, outDir + "/padring_naive.svg");
  renderRing(*roto, outDir + "/padring_roto.svg");
  std::printf("wrote %s/padring_naive.svg and %s/padring_roto.svg\n", outDir.c_str(),
              outDir.c_str());
  return 0;
}
