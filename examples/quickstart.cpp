/// Quickstart: the whole Bristle Blocks flow in one page — exactly the
/// experience the paper promises ("What if a person were able to sit
/// down and design a complete chip in a single afternoon?").
///
///   1. write a one-page chip description,
///   2. open a CompileSession and run the staged pipeline
///      (parse -> vote -> pass1 -> pass2 -> pass3 -> finalize),
///      watching each stage through a PassObserver,
///   3. emit the mask set and every other artifact through the
///      unified Emitter registry — each backend discoverable by name.
///
/// Run from the build tree:  ./quickstart [output-dir]

#include "core/session.hpp"
#include "reps/emitter.hpp"

#include <cstdio>
#include <fstream>
#include <string>

namespace {

const char* kChip = R"(
chip afternoon;

microcode width 8 {
  field op   [0:2];
  field misc [4:7];
}
data width 4;
buses A, B;

core {
  inport  IN  (bus = A, drive = "op==1 | op==2");
  register R0 (in = A, out = B, load = "op==1", drive = "op==2");
  alu     ALU (a = A, b = B, out = A, op = misc, ops = [add, and, passa],
               load = "op==2", drive = "op==3");
  register R1 (in = A, out = B, load = "op==3", drive = "op==4");
  outport OUT (bus = B, sample = "op==4");
}
)";

/// Watch the pipeline: one line per stage as it completes.
class ProgressObserver : public bb::core::PassObserver {
 public:
  void onStageEnd(bb::core::Stage s, const bb::core::CompileSession&, bool ok,
                  std::chrono::nanoseconds ns) override {
    std::printf("  stage %-8s %s  (%.2f ms)\n",
                std::string(bb::core::stageName(s)).c_str(), ok ? "ok" : "FAILED",
                static_cast<double>(ns.count()) / 1e6);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";

  // The staged pipeline, with a pass-level observer attached.
  bb::core::CompileSession session(kChip);
  ProgressObserver progress;
  session.addObserver(&progress);

  std::printf("compiling:\n");

  // Stages can be driven one at a time: stop after pass1 to inspect the
  // core placement before any control or pad work has happened.
  if (!session.runTo(bb::core::Stage::Pass1)) {
    std::fprintf(stderr, "compile failed:\n%s", session.diagnostics().toString().c_str());
    return 1;
  }
  std::printf("\nafter pass1: %zu placed columns, core not yet ringed\n",
              session.chip()->placed.size());

  // Then let the rest of the pipeline run.
  auto result = session.run();
  if (!result) {
    std::fprintf(stderr, "compile failed:\n%s", result.diagnostics().toString().c_str());
    return 1;
  }
  const auto chip = std::move(*result);
  std::printf("\ncompiled chip '%s'\n\n%s\n", chip->desc.name.c_str(),
              chip->statsText().c_str());

  // Every output format lives in one registry, discoverable by name.
  const bb::reps::EmitterRegistry& emitters = bb::reps::EmitterRegistry::global();
  std::printf("emitters (%zu registered):\n", emitters.size());
  for (const std::string_view name : emitters.names()) {
    const bb::reps::Emitter* e = emitters.find(name);
    const std::string file = "afternoon_" + std::string(name) + "." +
                             std::string(e->fileExtension());
    std::ofstream out(outDir + "/" + file, std::ios::binary);
    e->emit(*chip, out);
    std::printf("  %-10s -> %s/%s  (%s)\n", std::string(name).c_str(), outDir.c_str(),
                file.c_str(), std::string(e->description()).c_str());
  }
  return 0;
}
