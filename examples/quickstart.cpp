/// Quickstart: the whole Bristle Blocks flow in one page — exactly the
/// experience the paper promises ("What if a person were able to sit
/// down and design a complete chip in a single afternoon?").
///
///   1. build a chip description in code with the fluent ChipBuilder —
///      microcode format, data/bus section, core element list — and get
///      a validated, typed icl::ChipDesc (no source text, no parsing;
///      the ICL language remains available as a second frontend via
///      parseChip, and desc.toString() renders this same description
///      as one page of it),
///   2. open a CompileSession on the description and run the staged
///      pipeline (parse -> vote -> pass1 -> pass2 -> pass3 -> finalize;
///      parse is a no-op for a typed description), watching each stage
///      through a PassObserver,
///   3. emit the mask set and every other artifact through the
///      unified Emitter registry — each backend discoverable by name.
///
/// Run from the build tree:  ./quickstart [output-dir]
///
/// This is the one-shot batch flow. For the persistent, interactive
/// flow — a compile server with a content-addressed chip cache,
/// incremental recompilation and pan/zoom viewport serving — see
/// examples/service_demo.cpp (`./service_demo`).

#include "core/session.hpp"
#include "icl/builder.hpp"
#include "reps/emitter.hpp"

#include <cstdio>
#include <fstream>
#include <string>

namespace {

/// The "single afternoon" chip, built programmatically: two working
/// registers and an ALU between two buses, with I/O ports. `sym` names
/// a bus or microcode field, `expr` is a decode expression, and the
/// element order is the placement order on the die.
bb::icl::ChipDesc afternoonChip() {
  using namespace bb::icl;
  return ChipBuilder("afternoon")
      .microcode(8, {field("op", 0, 2), field("misc", 4, 7)})
      .dataWidth(4)
      .buses({"A", "B"})
      .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1 | op==2")}})
      .element("register", "R0",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==1")},
                {"drive", expr("op==2")}})
      .element("alu", "ALU",
               {{"a", sym("A")}, {"b", sym("B")}, {"out", sym("A")},
                {"op", sym("misc")}, {"ops", syms({"add", "and", "passa"})},
                {"load", expr("op==2")}, {"drive", expr("op==3")}})
      .element("register", "R1",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==3")},
                {"drive", expr("op==4")}})
      .element("outport", "OUT", {{"bus", sym("B")}, {"sample", expr("op==4")}})
      .buildOrDie();
}

/// Watch the pipeline: one line per stage as it completes.
class ProgressObserver : public bb::core::PassObserver {
 public:
  void onStageEnd(bb::core::Stage s, const bb::core::CompileSession&, bool ok,
                  std::chrono::nanoseconds ns) override {
    std::printf("  stage %-8s %s  (%.2f ms)\n",
                std::string(bb::core::stageName(s)).c_str(), ok ? "ok" : "FAILED",
                static_cast<double>(ns.count()) / 1e6);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";

  // The staged pipeline over the typed description, with a pass-level
  // observer attached.
  bb::core::CompileSession session(afternoonChip());
  ProgressObserver progress;
  session.addObserver(&progress);

  std::printf("compiling:\n");

  // Stages can be driven one at a time: stop after pass1 to inspect the
  // core placement before any control or pad work has happened.
  if (!session.runTo(bb::core::Stage::Pass1)) {
    std::fprintf(stderr, "compile failed:\n%s", session.diagnostics().toString().c_str());
    return 1;
  }
  std::printf("\nafter pass1: %zu placed columns, core not yet ringed\n",
              session.chip()->placed.size());

  // Then let the rest of the pipeline run.
  auto result = session.run();
  if (!result) {
    std::fprintf(stderr, "compile failed:\n%s", result.diagnostics().toString().c_str());
    return 1;
  }
  const auto chip = std::move(*result);
  std::printf("\ncompiled chip '%s'\n\n%s\n", chip->desc.name.c_str(),
              chip->statsText().c_str());

  // Every output format lives in one registry, discoverable by name.
  const bb::reps::EmitterRegistry& emitters = bb::reps::EmitterRegistry::global();
  std::printf("emitters (%zu registered):\n", emitters.size());
  for (const std::string_view name : emitters.names()) {
    const bb::reps::Emitter* e = emitters.find(name);
    const std::string file = "afternoon_" + std::string(name) + "." +
                             std::string(e->fileExtension());
    std::ofstream out(outDir + "/" + file, std::ios::binary);
    e->emit(*chip, out);
    std::printf("  %-10s -> %s/%s  (%s)\n", std::string(name).c_str(), outDir.c_str(),
                file.c_str(), std::string(e->description()).c_str());
  }
  return 0;
}
