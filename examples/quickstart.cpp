/// Quickstart: the whole Bristle Blocks flow in one page — exactly the
/// experience the paper promises ("What if a person were able to sit
/// down and design a complete chip in a single afternoon?").
///
///   1. write a one-page chip description,
///   2. compile it (three passes: core, control, pads),
///   3. get the mask set and every other representation.
///
/// Run from the build tree:  ./examples/quickstart [output-dir]

#include "core/compiler.hpp"
#include "reps/reps.hpp"

#include <cstdio>
#include <fstream>

namespace {

const char* kChip = R"(
chip afternoon;

microcode width 8 {
  field op   [0:2];
  field misc [4:7];
}
data width 4;
buses A, B;

core {
  inport  IN  (bus = A, drive = "op==1 | op==2");
  register R0 (in = A, out = B, load = "op==1", drive = "op==2");
  alu     ALU (a = A, b = B, out = A, op = misc, ops = [add, and, passa],
               load = "op==2", drive = "op==3");
  register R1 (in = A, out = B, load = "op==3", drive = "op==4");
  outport OUT (bus = B, sample = "op==4");
}
)";

void save(const std::string& dir, const std::string& name, const std::string& text) {
  std::ofstream f(dir + "/" + name, std::ios::binary);
  f << text;
  std::printf("  wrote %s/%s (%zu bytes)\n", dir.c_str(), name.c_str(), text.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";

  bb::icl::DiagnosticList diags;
  bb::core::Compiler compiler;
  auto chip = compiler.compile(kChip, diags);
  if (chip == nullptr) {
    std::fprintf(stderr, "compile failed:\n%s", diags.toString().c_str());
    return 1;
  }

  std::printf("compiled chip '%s'\n\n%s\n", chip->desc.name.c_str(),
              chip->statsText().c_str());

  const bb::reps::RepresentationSet rs = bb::reps::generateAll(*chip);
  std::printf("representations (%d/7):\n", rs.populatedCount());
  save(outDir, "afternoon.cif", rs.cif);
  save(outDir, "afternoon.svg", rs.layoutSvg);
  save(outDir, "afternoon_sticks.svg", rs.sticksSvg);
  save(outDir, "afternoon_manual.txt", rs.userManual);
  std::ofstream gds(outDir + "/afternoon.gds", std::ios::binary);
  gds.write(reinterpret_cast<const char*>(rs.gds.data()),
            static_cast<std::streamsize>(rs.gds.size()));
  std::printf("  wrote %s/afternoon.gds (%zu bytes)\n\n", outDir.c_str(), rs.gds.size());

  std::printf("%s\n", rs.blockText.c_str());
  return 0;
}
