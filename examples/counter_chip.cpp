/// counter_chip: compile an 8-bit accumulator chip, then *write software
/// for it* — a counting loop in microcode — and run it on the simulated
/// silicon. This is the paper's Simulation representation earning its
/// keep: "software can be written for the chip to explore the
/// feasibility of the design."

#include "core/samples.hpp"
#include "core/session.hpp"
#include "sim/testbench.hpp"

#include <cstdio>

namespace {

// Microcode for the small-chip instruction set (see core/samples.hpp).
unsigned long long mc(unsigned op, unsigned alu = 0) { return (op & 7u) | (alu << 4); }
constexpr unsigned kLoadRA = 1, kOperands = 3, kStore = 4, kOut = 5;
constexpr unsigned kAdd = 0;

}  // namespace

int main() {
  auto result = bb::core::compileChip(bb::core::samples::smallChip(8));
  if (!result) {
    std::fprintf(stderr, "compile failed:\n%s", result.diagnostics().toString().c_str());
    return 1;
  }
  const auto chip = std::move(*result);
  std::printf("%s\n", chip->statsText().c_str());

  bb::sim::Simulator sim(chip->logic);
  bb::sim::Testbench tb(sim, chip->desc.microcode.width, 8);

  auto setPads = [&](unsigned long long v) {
    for (int i = 0; i < 8; ++i) {
      sim.setBool("pad.IN.pad" + std::to_string(i), (v >> i) & 1);
    }
  };
  auto readOut = [&] {
    unsigned long long v = 0;
    for (int i = 0; i < 8; ++i) {
      if (sim.getBool("pad.OUT.pad" + std::to_string(i))) v |= 1ull << i;
    }
    return v;
  };

  std::printf("running a counting loop on the simulated chip:\n");
  std::printf("  RA := 1; then repeatedly ACC := pads + RA, pads := ACC\n\n");
  std::printf("%8s %12s %12s\n", "step", "expected", "observed");

  setPads(1);
  tb.run({mc(0), mc(kLoadRA)});  // warm-up + RA := 1
  unsigned long long value = 0;
  bool allGood = true;
  for (int step = 1; step <= 10; ++step) {
    setPads(value);
    tb.run({mc(kOperands, kAdd), mc(kStore, kAdd), mc(kOut)});
    value = (value + 1) & 0xff;
    const unsigned long long got = readOut();
    const bool ok = got == value;
    allGood &= ok;
    std::printf("%8d %12llu %12llu %s\n", step, value, got, ok ? "" : "  <-- MISMATCH");
  }
  std::printf("\n%s\n", allGood ? "the chip counts. software works before silicon does."
                                : "simulation mismatch — the design needs work!");
  return allGood ? 0 : 1;
}
