/// Lint demo: the static design analyzer end to end.
///
///   1. compile a healthy chip and see it lint clean (the Note-tier
///      patterns it does contain sit below the default severity floor),
///   2. seed a classic layout defect — a poly gate whose input is
///      connected to nothing — and watch ERC name it,
///   3. print the machine-readable JSON report CI diffs against a
///      baseline, and show suppression silencing a known finding.
///
/// Run from the build tree:  ./lint_demo

#include "core/samples.hpp"
#include "core/session.hpp"
#include "lint/lint.hpp"

#include <cstdio>

using namespace bb;

int main() {
  // 1. A healthy chip: enable lint right in the compile options — the
  // finalize stage runs the analysis and appends findings (if any) to
  // the session diagnostics.
  auto opts = core::CompileOptions::builder().lint(true).build();
  core::CompileSession session(core::samples::smallChip(), opts);
  auto result = session.run();
  if (!result) {
    std::fprintf(stderr, "compile failed:\n%s", result.diagnostics().toString().c_str());
    return 1;
  }
  const auto report = session.lintReport();
  std::printf("chip '%s': %s\n", report->chip.c_str(), report->summary().c_str());
  std::printf("  (%zu rules ran; %zu findings below the default severity floor)\n\n",
              report->rulesRun.size(), report->belowFloor);

  // 2. A seeded defect: a diffusion strip crossed by a gate poly that
  // connects to nothing else. The gate's input floats — the transistor
  // can never switch. ERC reports it with a layout position.
  cell::Cell defect("demo_defect");
  defect.addRect(tech::Layer::Diffusion,
                 geom::Rect{0, geom::lambda(4), geom::lambda(20), geom::lambda(6)});
  defect.addRect(tech::Layer::Poly,
                 geom::Rect{geom::lambda(9), 0, geom::lambda(11), geom::lambda(10)});
  const lint::LintReport bad = lint::lintCell(defect);
  std::printf("seeded defect cell:\n%s\n", bad.summary().c_str());

  // 3. The JSON report — rule ids, severities, stable fingerprints.
  std::printf("machine-readable report:\n%s\n\n", bad.toJson().c_str());

  // Suppress the finding once it is triaged: by rule, or by the exact
  // instance address from the report.
  lint::LintOptions quiet;
  quiet.suppress = {"erc-floating-gate@demo_defect/net#0"};
  const lint::LintReport triaged = lint::lintCell(defect, quiet);
  std::printf("after suppression: %zu findings, %zu suppressed\n",
              triaged.findings.size(), triaged.suppressed);
  return 0;
}
