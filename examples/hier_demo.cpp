/// Hierarchical compile demo: the paper's "rather than on fully
/// instantiated artwork" premise, end to end on one page.
///
///   1. compile a datapath chip from a fluent ChipBuilder description,
///   2. tile the compiled top cell into an NxN array — the repeated-cell
///      regime every Bristle Blocks chip lives in (bit slices, decoder
///      columns, pad rings),
///   3. decompose the array with cell::HierIndex (unique cells flattened
///      once + a placement table) and run DRC both ways: the flat oracle
///      over the fully instantiated artwork vs drc::DeckChecker::checkHier
///      over the index, printing the timings side by side,
///   4. emit the mask set hierarchically — CIF symbol calls and a GDS
///      AREF instead of N^2 flattened copies — and compare file sizes,
///   5. open a lazy viewport: a layout::View built from the HierIndex
///      resolves only the instances whose boxes touch the window
///      (watch cell::HierIndex::instancesMaterialized).
///
/// Run from the build tree:  ./hier_demo [n]   (default 6 -> 6x6 array)

#include "cell/hier_index.hpp"
#include "core/session.hpp"
#include "drc/drc.hpp"
#include "icl/builder.hpp"
#include "layout/cif.hpp"
#include "layout/gds.hpp"
#include "layout/view.hpp"
#include "tech/rules.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/// A small datapath slice: two registers and an ALU between two buses.
bb::icl::ChipDesc datapathChip() {
  using namespace bb::icl;
  return ChipBuilder("hier_datapath")
      .microcode(8, {field("op", 0, 2)})
      .dataWidth(4)
      .buses({"A", "B"})
      .element("register", "R0",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==1")},
                {"drive", expr("op==2")}})
      .element("alu", "ALU",
               {{"a", sym("A")}, {"b", sym("B")}, {"out", sym("A")},
                {"op", sym("op")}, {"ops", syms({"add", "and", "passa"})},
                {"load", expr("op==2")}, {"drive", expr("op==3")}})
      .element("register", "R1",
               {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==3")},
                {"drive", expr("op==4")}})
      .buildOrDie();
}

double ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  if (n < 2 || n > 64) {
    std::fprintf(stderr, "usage: hier_demo [n]  (2 <= n <= 64)\n");
    return 1;
  }

  // 1. One compiled chip = the repeated cell.
  bb::core::CompileSession session(datapathChip());
  auto result = session.run();
  if (!result) {
    std::fprintf(stderr, "compile failed:\n%s", result.diagnostics().toString().c_str());
    return 1;
  }
  const auto chip = std::move(*result);
  bb::cell::Cell* unit = chip->top;
  const bb::geom::Rect ub = unit->boundary();
  std::printf("unit chip '%s': %zu flattened primitives, %lld x %lld units\n",
              chip->desc.name.c_str(), chip->stats.shapeCount,
              static_cast<long long>(ub.width()), static_cast<long long>(ub.height()));

  // 2. Tile it into an n x n array inside the same cell library.
  bb::cell::Cell* array = chip->lib.create("hier_demo_array");
  array->setBoundary({0, 0, ub.width() * n, ub.height() * n});
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      array->addInstance(unit, bb::geom::Transform::translate(
                                   {ub.width() * i - ub.x0, ub.height() * j - ub.y0}));
    }
  }

  // 3. Decompose once; DRC flat vs hierarchical.
  auto t0 = std::chrono::steady_clock::now();
  const bb::cell::FlatLayout flat = bb::cell::flatten(*array);
  const double flattenMs = ms(t0);
  t0 = std::chrono::steady_clock::now();
  const bb::cell::HierIndex hier(*array);
  const double indexMs = ms(t0);
  std::printf("\n%dx%d array: %zu instances, %zu flat primitives\n", n, n,
              hier.placements().size(), hier.flatCount());
  std::printf("  flatten %.1f ms (%zu rects resident)  |  HierIndex %.1f ms "
              "(%zu unique resident)\n",
              flattenMs, hier.flatCount(), indexMs, hier.uniqueCount());

  const bb::drc::DeckChecker checker(bb::tech::meadConwayRules());
  t0 = std::chrono::steady_clock::now();
  const bb::drc::DrcReport flatRep = checker.check(flat, array->boundary());
  const double flatMs = ms(t0);
  t0 = std::chrono::steady_clock::now();
  const bb::drc::DrcReport hierRep = checker.checkHier(hier);
  const double hierMs = ms(t0);
  std::printf("  DRC flat %.1f ms, hier %.1f ms (%.1fx) — %zu vs %zu violations\n", flatMs,
              hierMs, flatMs / hierMs, flatRep.violations.size(), hierRep.violations.size());

  // 4. Hierarchical mask emission: symbol calls + AREF vs flat copies.
  const std::string cifFlat = bb::layout::writeCif(flat, bb::layout::ViewOptions{});
  const std::string cifHier = bb::layout::writeCifHier(*array);
  const auto gdsFlat = bb::layout::writeGds(flat, bb::layout::ViewOptions{});
  const auto gdsHier = bb::layout::writeGdsHier(*array);
  const bb::layout::GdsStats gs = bb::layout::gdsStats(gdsHier);
  std::printf("  CIF %zu -> %zu bytes (%.1fx); GDS %zu -> %zu bytes (%.1fx, %zu AREF %zu "
              "SREF)\n",
              cifFlat.size(), cifHier.size(),
              static_cast<double>(cifFlat.size()) / static_cast<double>(cifHier.size()),
              gdsFlat.size(), gdsHier.size(),
              static_cast<double>(gdsFlat.size()) / static_cast<double>(gdsHier.size()),
              gs.arefs, gs.srefs);

  // 5. Lazy viewport: a corner window resolves a corner's instances.
  bb::layout::ViewOptions w;
  const bb::geom::Rect& ab = hier.bbox();
  w.window = bb::geom::Rect{ab.x0, ab.y0, ab.x0 + ab.width() / n, ab.y0 + ab.height() / n};
  const bb::layout::View view(hier, w);
  std::printf("  viewport %s: materialized %llu of %zu instances, %zu metal rects in "
              "window\n",
              bb::geom::toString(*w.window).c_str(),
              static_cast<unsigned long long>(hier.instancesMaterialized()),
              hier.placements().size(), view.rectsOn(bb::tech::Layer::Metal).size());
  return 0;
}
