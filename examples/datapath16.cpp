/// datapath16: the "fairly large chip" — a 16-bit datapath with a
/// register file, two working registers, ALU, shifter, constant and both
/// ports. Compiles it, runs the per-cell DRC discipline over every cell
/// in the library, extracts the core, and dumps all seven
/// representations plus the SPICE deck.
///
/// Run from the build tree:  ./examples/datapath16 [output-dir]

#include "core/samples.hpp"
#include "core/session.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "netlist/spice.hpp"
#include "reps/reps.hpp"

#include <cstdio>
#include <fstream>

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : ".";

  auto result = bb::core::compileChip(bb::core::samples::largeChip(16, 8));
  if (!result) {
    std::fprintf(stderr, "compile failed:\n%s", result.diagnostics().toString().c_str());
    return 1;
  }
  const auto chip = std::move(*result);
  std::printf("%s\n", chip->statsText().c_str());

  // Per-cell DRC — the paper's hierarchical discipline.
  std::size_t cellsChecked = 0, dirty = 0;
  for (const bb::cell::Cell* c : chip->lib.all()) {
    if (c == chip->top) continue;  // ring wiring is checked by its own pass
    const auto rep = bb::drc::checkCell(*c, bb::tech::meadConwayRules());
    ++cellsChecked;
    if (!rep.clean()) {
      ++dirty;
      std::printf("DRC: cell '%s': %s\n", c->name().c_str(), rep.summary().c_str());
    }
  }
  std::printf("DRC: %zu cells checked, %zu with violations\n", cellsChecked, dirty);

  // Extraction + SPICE. The registry's "spice" emitter extracts
  // internally; here the netlist is already in hand for the stats
  // line, so write the deck from it directly rather than extract twice.
  const auto ex = bb::extract::extractCell(*chip->core);
  std::printf("extracted: %zu transistors (%zu enh / %zu dep), %zu nets\n",
              ex.netlist.transistors().size(), ex.netlist.enhancementCount(),
              ex.netlist.depletionCount(), ex.netCount);
  {
    std::ofstream f(outDir + "/datapath16.sp");
    f << bb::netlist::writeSpice(ex.netlist);
  }

  // All seven representations to disk.
  const bb::reps::RepresentationSet rs = bb::reps::generateAll(*chip);
  std::printf("representations produced: %d/7\n", rs.populatedCount());
  const struct {
    const char* file;
    const std::string* text;
  } outs[] = {
      {"datapath16.cif", &rs.cif},
      {"datapath16.svg", &rs.layoutSvg},
      {"datapath16_sticks.svg", &rs.sticksSvg},
      {"datapath16_logic.txt", &rs.logicText},
      {"datapath16_manual.txt", &rs.userManual},
      {"datapath16_block.txt", &rs.blockText},
  };
  for (const auto& o : outs) {
    std::ofstream f(outDir + "/" + o.file, std::ios::binary);
    f << *o.text;
  }
  std::printf("wrote mask set + diagrams to %s/\n", outDir.c_str());
  return dirty == 0 ? 0 : 1;
}
